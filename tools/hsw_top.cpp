// hsw_top: live terminal dashboard for a running hsw_surveyd.
//
//   hsw_top --port-file /tmp/hswd.port
//
// polls the daemon's `metrics` verb (JSON form) once per interval and
// renders the numbers that matter when watching the service under load:
// request rate (computed from counter deltas between polls), queue depth,
// cache hit ratios at every tier, and latency quantiles from the
// request-latency histogram. `--once` prints a single snapshot and exits,
// which is what the CI smoke job uses.
//
// Pointed at an hsw_router (or hsw_fleet) instead, `--fleet` adds the
// per-shard breakdown the router embeds under the "shards" key of its
// aggregated metrics document; without the flag the merged top level
// renders exactly like a single daemon's.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <chrono>
#include <fstream>
#include <optional>
#include <string>
#include <thread>

#include "service/server.hpp"
#include "util/minijson.hpp"

using namespace hsw;

namespace {

int usage(const char* argv0, int code) {
    std::FILE* out = code == 0 ? stdout : stderr;
    std::fprintf(
        out,
        "usage: %s [options]\n"
        "\n"
        "Terminal dashboard for hsw_surveyd: polls the `metrics` verb and\n"
        "renders request rate, queue depth, cache hit ratios and latency\n"
        "quantiles.\n"
        "\n"
        "  --host H         daemon host (default: 127.0.0.1)\n"
        "  --port P         daemon port\n"
        "  --port-file F    read the port from F (written by hsw_surveyd)\n"
        "  --interval-ms N  poll interval (default: 1000)\n"
        "  --count N        exit after N refreshes (default: run forever)\n"
        "  --once           print one snapshot without screen control, exit\n"
        "  --fleet          render the per-shard breakdown a router embeds\n"
        "                   under \"shards\" (needs an hsw_router target)\n",
        argv0);
    return code;
}

bool parse_unsigned(const char* text, unsigned long& out, unsigned long max) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(text, &end, 10);
    if (end == text || *end != '\0' || v > max) return false;
    out = v;
    return true;
}

std::optional<std::uint16_t> read_port_file(const std::string& path) {
    for (int attempt = 0; attempt < 250; ++attempt) {
        std::ifstream in{path};
        unsigned long port = 0;
        if (in && (in >> port) && port > 0 && port <= 65535) {
            return static_cast<std::uint16_t>(port);
        }
        std::this_thread::sleep_for(std::chrono::milliseconds{20});
    }
    return std::nullopt;
}

/// One decoded metrics snapshot; every field defaults to zero so a daemon
/// that has not yet seen traffic still renders.
struct Sample {
    double requests = 0, completed = 0, rejected = 0;
    double hot_hits = 0, disk_hits = 0, computed = 0, coalesced = 0;
    double hot_cache_hits = 0, hot_cache_misses = 0, hot_cache_bytes = 0;
    double result_cache_hits = 0, result_cache_misses = 0;
    double connections = 0, open_connections = 0, frames = 0, malformed = 0;
    double queue_depth = 0;
    double trace_dropped = 0, accesslog_dropped = 0;
    double ejected = 0;
    double lat_count = 0, lat_p50 = 0, lat_p90 = 0, lat_p99 = 0;
    std::chrono::steady_clock::time_point when;
};

Sample decode_sample(const util::json::Value& doc) {
    Sample s;
    s.when = std::chrono::steady_clock::now();
    const util::json::Value* counters = doc.find("counters");
    const util::json::Value* gauges = doc.find("gauges");
    const util::json::Value* histograms = doc.find("histograms");
    const auto counter = [&](const char* metric) {
        return counters ? counters->number_or(metric, 0.0) : 0.0;
    };
    s.requests = counter("hsw_service_requests");
    s.completed = counter("hsw_service_requests_completed");
    s.rejected = counter("hsw_service_requests_rejected");
    s.hot_hits = counter("hsw_service_hot_hits");
    s.disk_hits = counter("hsw_service_disk_hits");
    s.computed = counter("hsw_service_computed");
    s.coalesced = counter("hsw_service_coalesced");
    s.hot_cache_hits = counter("hsw_hot_cache_hits");
    s.hot_cache_misses = counter("hsw_hot_cache_misses");
    s.result_cache_hits = counter("hsw_result_cache_hits");
    s.result_cache_misses = counter("hsw_result_cache_misses");
    s.connections = counter("hsw_server_connections");
    s.frames = counter("hsw_server_frames");
    s.malformed = counter("hsw_server_frames_malformed");
    if (gauges) {
        s.queue_depth = gauges->number_or("hsw_service_queue_depth", 0.0);
        s.open_connections = gauges->number_or("hsw_server_open_connections", 0.0);
        s.hot_cache_bytes = gauges->number_or("hsw_hot_cache_bytes", 0.0);
        s.trace_dropped = gauges->number_or("obs_trace_dropped_spans", 0.0);
        s.accesslog_dropped = gauges->number_or("obs_accesslog_dropped", 0.0);
        s.ejected = gauges->number_or("router_shard_ejected", 0.0);
    }
    if (histograms) {
        if (const util::json::Value* lat =
                histograms->find("hsw_service_request_latency_ms")) {
            s.lat_count = lat->number_or("count", 0.0);
            s.lat_p50 = lat->number_or("p50", 0.0);
            s.lat_p90 = lat->number_or("p90", 0.0);
            s.lat_p99 = lat->number_or("p99", 0.0);
        }
    }
    return s;
}

/// The merged fleet-level view plus (when the target is a router and
/// --fleet asked for it) one Sample per shard, in document order.
struct FleetSample {
    Sample merged;
    std::vector<std::pair<std::string, Sample>> shards;
};

std::optional<FleetSample> fetch(service::ServiceClient& client, bool fleet,
                                 std::string& error) {
    service::protocol::Request request;
    request.verb = service::protocol::Verb::Metrics;
    request.format = service::protocol::MetricsFormat::Json;
    service::protocol::Response response;
    try {
        response = client.call(request);
    } catch (const std::exception& e) {
        error = e.what();
        return std::nullopt;
    }
    if (!response.ok()) {
        error = "daemon error: " + std::string{service::protocol::name(response.code)};
        return std::nullopt;
    }
    const std::optional<util::json::Value> doc = util::json::parse(response.payload, &error);
    if (!doc || !doc->is_object()) {
        if (error.empty()) error = "metrics payload is not a JSON object";
        return std::nullopt;
    }

    FleetSample out;
    out.merged = decode_sample(*doc);
    if (fleet) {
        const util::json::Value* shards = doc->find("shards");
        if (!shards || !shards->is_object()) {
            error = "no \"shards\" key in metrics payload -- is the target an "
                    "hsw_router?";
            return std::nullopt;
        }
        for (const auto& [name, snapshot] : shards->as_object()) {
            out.shards.emplace_back(name, decode_sample(snapshot));
        }
    }
    return out;
}

double ratio_pct(double hits, double misses) {
    const double total = hits + misses;
    return total > 0.0 ? 100.0 * hits / total : 0.0;
}

double request_rate(const Sample& now, const Sample* prev) {
    if (!prev) return 0.0;
    const double dt = std::chrono::duration<double>(now.when - prev->when).count();
    return dt > 0.0 ? (now.requests - prev->requests) / dt : 0.0;
}

void render(const FleetSample& fs, const FleetSample* prev_fs,
            const std::string& target, bool screen_control) {
    if (screen_control) std::fputs("\x1b[H\x1b[2J", stdout);

    const Sample& now = fs.merged;
    const Sample* prev = prev_fs ? &prev_fs->merged : nullptr;
    const double rate = request_rate(now, prev);

    std::printf("hsw_top -- %s\n\n", target.c_str());
    std::printf("requests    %10.0f total   %8.1f req/s   completed %.0f   rejected %.0f\n",
                now.requests, rate, now.completed, now.rejected);
    std::printf("latency ms  p50 %.3f   p90 %.3f   p99 %.3f   (n=%.0f)\n", now.lat_p50,
                now.lat_p90, now.lat_p99, now.lat_count);
    std::printf("queue       depth %.0f\n", now.queue_depth);
    std::printf("sources     hot %.0f   disk %.0f   computed %.0f   coalesced %.0f\n",
                now.hot_hits, now.disk_hits, now.computed, now.coalesced);
    std::printf("hot cache   hit %5.1f%%   (%.0f/%.0f)   %.2f MiB resident\n",
                ratio_pct(now.hot_cache_hits, now.hot_cache_misses), now.hot_cache_hits,
                now.hot_cache_hits + now.hot_cache_misses,
                now.hot_cache_bytes / (1024.0 * 1024.0));
    std::printf("disk cache  hit %5.1f%%   (%.0f/%.0f)\n",
                ratio_pct(now.result_cache_hits, now.result_cache_misses),
                now.result_cache_hits,
                now.result_cache_hits + now.result_cache_misses);
    std::printf("server      connections %.0f (open %.0f)   frames %.0f   malformed %.0f\n",
                now.connections, now.open_connections, now.frames, now.malformed);
    std::printf("obs drops   trace spans %.0f   access-log records %.0f\n",
                now.trace_dropped, now.accesslog_dropped);

    if (!fs.shards.empty()) {
        std::printf("\n%-12s %10s %9s %7s %9s %9s  %s\n", "shard", "requests",
                    "req/s", "hot%", "computed", "p99 ms", "health");
        for (const auto& [name, shard] : fs.shards) {
            const Sample* shard_prev = nullptr;
            if (prev_fs) {
                for (const auto& [prev_name, prev_sample] : prev_fs->shards) {
                    if (prev_name == name) {
                        shard_prev = &prev_sample;
                        break;
                    }
                }
            }
            std::printf("%-12s %10.0f %9.1f %6.1f%% %9.0f %9.3f  %s\n", name.c_str(),
                        shard.requests, request_rate(shard, shard_prev),
                        ratio_pct(shard.hot_cache_hits, shard.hot_cache_misses),
                        shard.computed, shard.lat_p99,
                        shard.ejected > 0 ? "EJECTED" : "ok");
        }
    }
    std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
    std::string port_file;
    unsigned long interval_ms = 1000;
    unsigned long count = 0;  // 0 = forever
    bool once = false;
    bool fleet = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
        unsigned long n = 0;
        if (arg == "--help" || arg == "-h") return usage(argv[0], 0);
        if (arg == "--once") {
            once = true;
        } else if (arg == "--fleet") {
            fleet = true;
        } else if (arg == "--host") {
            const char* v = value();
            if (!v) return usage(argv[0], 2);
            host = v;
        } else if (arg == "--port") {
            const char* v = value();
            if (!v || !parse_unsigned(v, n, 65535) || n == 0) return usage(argv[0], 2);
            port = static_cast<std::uint16_t>(n);
        } else if (arg == "--port-file") {
            const char* v = value();
            if (!v) return usage(argv[0], 2);
            port_file = v;
        } else if (arg == "--interval-ms") {
            const char* v = value();
            if (!v || !parse_unsigned(v, interval_ms, 3600'000) || interval_ms == 0) {
                return usage(argv[0], 2);
            }
        } else if (arg == "--count") {
            const char* v = value();
            if (!v || !parse_unsigned(v, count, 1u << 30) || count == 0) {
                return usage(argv[0], 2);
            }
        } else {
            std::fprintf(stderr, "%s: unknown option '%s'\n", argv[0], arg.c_str());
            return usage(argv[0], 2);
        }
    }

    if (!port_file.empty()) {
        const std::optional<std::uint16_t> p = read_port_file(port_file);
        if (!p) {
            std::fprintf(stderr, "hsw_top: no port published in %s\n", port_file.c_str());
            return 1;
        }
        port = *p;
    }
    if (port == 0) {
        std::fprintf(stderr, "hsw_top: need --port or --port-file\n");
        return usage(argv[0], 2);
    }

    const std::string target = host + ":" + std::to_string(port);
    std::optional<service::ServiceClient> client;
    std::optional<FleetSample> prev;
    unsigned long refreshes = 0;
    while (true) {
        std::string error;
        std::optional<FleetSample> sample;
        try {
            if (!client) client.emplace(host, port);
            sample = fetch(*client, fleet, error);
        } catch (const std::exception& e) {
            error = e.what();
        }
        if (!sample) {
            // Drop the connection and retry next tick; --once fails hard so
            // the CI job notices a broken daemon.
            client.reset();
            std::fprintf(stderr, "hsw_top: %s\n", error.c_str());
            if (once) return 1;
        } else {
            render(*sample, prev ? &*prev : nullptr, target, !once);
            prev = sample;
            ++refreshes;
        }
        if (once || (count > 0 && refreshes >= count)) break;
        std::this_thread::sleep_for(std::chrono::milliseconds{interval_ms});
    }
    return 0;
}
