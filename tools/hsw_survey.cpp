// hsw_survey: one-shot runner for the whole Fig. 2-8 / Table III-V survey.
//
//   hsw_survey --jobs 8 --out csv/
//
// fans the survey's independent sweep points across 8 worker threads,
// consults the content-addressed result cache (so an unchanged rerun is a
// near-no-op) and writes one CSV per figure/table into csv/. Output bytes
// are identical for every --jobs value.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <algorithm>

#include "engine/survey_experiments.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "platform/registry.hpp"

using namespace hsw;

namespace {

int usage(const char* argv0, int code) {
    std::FILE* out = code == 0 ? stdout : stderr;
    std::fprintf(
        out,
        "usage: %s [options]\n"
        "\n"
        "Runs every survey experiment (Figs. 2-8, Tables III-V) through the\n"
        "parallel experiment engine and writes one CSV per figure/table.\n"
        "\n"
        "  --jobs N          worker threads (default: hardware concurrency)\n"
        "  --out DIR         artifact directory (default: .)\n"
        "  --cache DIR       result-cache directory (default: .hsw-cache)\n"
        "  --no-cache        always recompute, never read or write the cache\n"
        "  --only NAMES      comma-separated experiment subset (e.g. fig3,table5)\n"
        "  --generation G    keep only experiments that build nodes of the\n"
        "                    named generation (e.g. skylake-sp, haswell-ep)\n"
        "  --seed S          base seed, decimal or 0x-hex (default: 0xC0FFEE)\n"
        "  --audit MODE      off | warn | strict invariant audit (default: off)\n"
        "  --renders         also write the rendered .txt tables\n"
        "  --quick           heavily reduced sampling (smoke tests)\n"
        "  --max-attempts N  attempts per job before permanent failure (default: 2)\n"
        "  --trace FILE      capture span tracing for the run; write Chrome\n"
        "                    trace-event JSON to FILE (open in Perfetto)\n"
        "  --quiet           suppress per-job progress lines\n"
        "  --list            list experiments and their job counts, then exit\n"
        "  --list-generations  list the platform backends --generation accepts\n",
        argv0);
    return code;
}

bool parse_unsigned(const char* text, unsigned& out) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(text, &end, 10);
    if (end == text || *end != '\0' || v == 0 || v > 1u << 20) return false;
    out = static_cast<unsigned>(v);
    return true;
}

std::vector<std::string> split_commas(const std::string& list) {
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= list.size()) {
        const std::size_t comma = list.find(',', start);
        const std::size_t end = comma == std::string::npos ? list.size() : comma;
        if (end > start) out.push_back(list.substr(start, end - start));
        if (comma == std::string::npos) break;
        start = comma + 1;
    }
    return out;
}

}  // namespace

int main(int argc, char** argv) {
    engine::SurveyTuning tuning;
    engine::RunOptions options;
    options.jobs = std::max(1u, std::thread::hardware_concurrency());
    options.cache_dir = ".hsw-cache";
    std::string out_dir = ".";
    std::string trace_file;
    std::vector<std::string> only;
    std::string generation;
    bool renders = false;
    bool quick = false;
    bool quiet = false;
    bool list = false;
    bool list_generations = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
        if (arg == "--help" || arg == "-h") return usage(argv[0], 0);
        if (arg == "--list") {
            list = true;
        } else if (arg == "--list-generations") {
            list_generations = true;
        } else if (arg == "--generation") {
            const char* v = value();
            if (!v) return usage(argv[0], 2);
            generation = v;
        } else if (arg == "--no-cache") {
            options.cache_dir.reset();
        } else if (arg == "--renders") {
            renders = true;
        } else if (arg == "--quick") {
            quick = true;
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--jobs") {
            const char* v = value();
            if (!v || !parse_unsigned(v, options.jobs)) return usage(argv[0], 2);
        } else if (arg == "--max-attempts") {
            const char* v = value();
            if (!v || !parse_unsigned(v, options.max_attempts)) return usage(argv[0], 2);
        } else if (arg == "--out") {
            const char* v = value();
            if (!v) return usage(argv[0], 2);
            out_dir = v;
        } else if (arg == "--cache") {
            const char* v = value();
            if (!v) return usage(argv[0], 2);
            options.cache_dir = v;
        } else if (arg == "--trace") {
            const char* v = value();
            if (!v) return usage(argv[0], 2);
            trace_file = v;
        } else if (arg == "--only") {
            const char* v = value();
            if (!v) return usage(argv[0], 2);
            for (auto& name : split_commas(v)) only.push_back(std::move(name));
        } else if (arg == "--seed") {
            const char* v = value();
            if (!v) return usage(argv[0], 2);
            char* end = nullptr;
            tuning.seed = std::strtoull(v, &end, 0);
            if (end == v || *end != '\0') return usage(argv[0], 2);
        } else if (arg == "--audit") {
            const char* v = value();
            if (!v) return usage(argv[0], 2);
            if (std::strcmp(v, "off") == 0) {
                tuning.audit = analysis::AuditMode::Off;
            } else if (std::strcmp(v, "warn") == 0) {
                tuning.audit = analysis::AuditMode::Warn;
            } else if (std::strcmp(v, "strict") == 0) {
                tuning.audit = analysis::AuditMode::Strict;
            } else {
                return usage(argv[0], 2);
            }
        } else {
            std::fprintf(stderr, "%s: unknown option '%s'\n", argv[0], arg.c_str());
            return usage(argv[0], 2);
        }
    }

    if (quick) {
        const std::uint64_t seed = tuning.seed;
        const analysis::AuditMode audit = tuning.audit;
        tuning = engine::SurveyTuning::quick();
        tuning.seed = seed;
        tuning.audit = audit;
    }

    std::vector<engine::Experiment> experiments = engine::survey_experiments(tuning);

    if (list_generations) {
        for (const auto* b : platform::all_backends()) {
            std::string names;
            for (const auto& e : experiments) {
                if (std::find(e.generations.begin(), e.generations.end(),
                              b->generation()) == e.generations.end()) {
                    continue;
                }
                if (!names.empty()) names += ' ';
                names += e.name;
            }
            std::printf("%-16s %-16s %s\n", platform::name_slug(b->name()).c_str(),
                        b->hwp_capable() ? "(hwp, per-core)" : "", names.c_str());
        }
        return 0;
    }

    if (list) {
        for (const auto& e : experiments) {
            std::printf("%-8s %2zu job%s  %s\n", e.name.c_str(), e.jobs.size(),
                        e.jobs.size() == 1 ? " " : "s", e.description.c_str());
        }
        return 0;
    }

    if (!only.empty()) {
        std::vector<engine::Experiment> subset;
        for (const auto& name : only) {
            const engine::Experiment* e = engine::find_experiment(experiments, name);
            if (!e) {
                std::fprintf(stderr,
                             "%s: no experiment named '%s'; registered experiments:\n",
                             argv[0], name.c_str());
                for (const auto& known : experiments) {
                    std::fprintf(stderr, "  %-8s %s\n", known.name.c_str(),
                                 known.description.c_str());
                }
                return 2;
            }
            subset.push_back(*e);
        }
        experiments = std::move(subset);
    }

    if (!generation.empty()) {
        const platform::PlatformBackend* backend = platform::backend_by_name(generation);
        if (backend == nullptr) {
            std::fprintf(stderr,
                         "%s: no generation named '%s'; registered generations:\n",
                         argv[0], generation.c_str());
            for (const auto* b : platform::all_backends()) {
                std::fprintf(stderr, "  %s\n", platform::name_slug(b->name()).c_str());
            }
            return 2;
        }
        std::vector<engine::Experiment> subset;
        for (auto& e : experiments) {
            if (std::find(e.generations.begin(), e.generations.end(),
                          backend->generation()) != e.generations.end()) {
                subset.push_back(std::move(e));
            }
        }
        if (subset.empty()) {
            std::fprintf(stderr, "%s: no selected experiment targets generation '%s'\n",
                         argv[0], generation.c_str());
            return 2;
        }
        experiments = std::move(subset);
    }

    if (!quiet) {
        options.on_progress = [](const engine::ProgressEvent& ev) {
            const char* what = ev.kind == engine::ProgressEvent::Kind::CacheHit ? "cached"
                               : ev.kind == engine::ProgressEvent::Kind::Failed ? "FAILED"
                                                                                : "done";
            if (ev.events_per_sec > 0.0) {
                std::fprintf(stderr, "[%3zu/%3zu] %-7s %s (%.0f ms, %.2fM events/sec)\n",
                             ev.done, ev.total, what, ev.label.c_str(), ev.wall_ms,
                             ev.events_per_sec / 1e6);
            } else {
                std::fprintf(stderr, "[%3zu/%3zu] %-7s %s (%.0f ms)\n", ev.done, ev.total,
                             what, ev.label.c_str(), ev.wall_ms);
            }
        };
    }

    if (!trace_file.empty()) {
        // Telemetry observes the run without touching its output bytes:
        // artifacts are identical with or without --trace.
        obs::set_metrics_enabled(true);
        obs::trace::enable();
    }

    const engine::RunReport report = engine::run_experiments(experiments, options);
    engine::write_artifacts(report, out_dir, renders);

    if (!trace_file.empty()) {
        obs::trace::disable();
        if (!obs::trace::write_chrome_json(trace_file)) {
            std::fprintf(stderr, "hsw_survey: cannot write trace %s\n",
                         trace_file.c_str());
            return 1;
        }
        std::fprintf(stderr, "hsw_survey: wrote %zu trace events to %s\n",
                     obs::trace::recorded_events(), trace_file.c_str());
    }

    std::fputs(report.summary().c_str(), stderr);
    if (!report.ok()) {
        std::fprintf(stderr, "hsw_survey: %zu job(s) failed permanently\n",
                     report.failures);
        return 1;
    }
    return 0;
}
