// hsw_fleet: one-command local fleet -- N hsw_surveyd shards behind a
// router, all on loopback.
//
//   hsw_fleet --shards 4 --port 7700
//
// forks one hsw_surveyd per shard (kernel-assigned ports, separate disk
// caches and port/pid files under --state-dir), waits for every shard to
// publish its port, then runs the router *in-process* on --port. Clients
// talk to the router exactly as they would to a single daemon:
//
//   hsw_query --port 7700 --experiment turbo_residency --all
//
// SIGINT/SIGTERM (or hsw_query --shutdown) stops the router, SIGTERMs
// every shard, and reaps them before exit. A shard that dies mid-run is
// logged but NOT fatal: the router fails its keys over to replicas,
// which is the failure mode the fleet exists to absorb (and what the CI
// fleet-smoke job exercises by killing a shard under load).
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "obs/accesslog.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "router/router.hpp"
#include "router/server.hpp"
#include "router/upstream.hpp"
#include "util/port_file.hpp"

using namespace hsw;

namespace {

int usage(const char* argv0, int code) {
    std::FILE* out = code == 0 ? stdout : stderr;
    std::fprintf(
        out,
        "usage: %s [options]\n"
        "\n"
        "Launches N hsw_surveyd shards plus a router front door on one\n"
        "machine. Point hsw_query / hsw_top at the router port.\n"
        "\n"
        "  --shards N           shard daemons to launch (default: 2)\n"
        "  --port P             router listen port (default: 0 = kernel)\n"
        "  --port-file PATH     write the router's bound port to PATH\n"
        "  --bind ADDR          router bind address (default: 127.0.0.1)\n"
        "  --replicas R         replica set size per key (default: 2)\n"
        "  --vnodes N           ring points per shard (default: 150)\n"
        "  --workers N          compute workers per shard (default: 2)\n"
        "  --hot-cache-mb N     hot cache budget per shard (default: 64)\n"
        "  --state-dir DIR      port/pid/cache files root (default: .hsw-fleet)\n"
        "  --surveyd PATH       shard binary (default: hsw_surveyd next to %s)\n"
        "  --trace-sample N     enable span tracing fleet-wide; N/1000 of\n"
        "                       untraced requests head-sampled (default: 0)\n"
        "  --access-log         per-process JSON access logs under the state\n"
        "                       dir (router.access.jsonl, shardN.access.jsonl)\n"
        "  --quiet              suppress startup / shutdown chatter\n"
        "\n"
        "Every process dumps flight-<pid>-<reason>.json into the state dir on\n"
        "SIGQUIT or a crash; dumps from dead shards are preserved and logged\n"
        "when the shard is reaped.\n",
        argv0, argv0);
    return code;
}

bool parse_unsigned(const char* text, unsigned long& out, unsigned long max) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(text, &end, 10);
    if (end == text || *end != '\0' || v > max) return false;
    out = v;
    return true;
}

struct ShardProc {
    pid_t pid = -1;
    std::string name;
    std::string port_path;
    std::string pid_path;
    bool reaped = false;
};

// A reaped shard may have left flight-<pid>-*.json behind (SIGQUIT, crash
// handler). The launcher never deletes them; it reports them so a CI run
// (or a human) knows the evidence survived the process.
void report_flight_dumps(const std::string& state_dir, const ShardProc& shard,
                         bool quiet) {
    if (quiet) return;
    const std::string prefix = "flight-" + std::to_string(shard.pid) + "-";
    std::error_code ec;
    for (const auto& entry :
         std::filesystem::directory_iterator{state_dir, ec}) {
        const std::string file = entry.path().filename().string();
        if (file.rfind(prefix, 0) == 0) {
            std::fprintf(stderr, "hsw_fleet: preserved flight dump %s from %s\n",
                         entry.path().string().c_str(), shard.name.c_str());
        }
    }
}

// Fork+exec one shard daemon publishing its port to `port_path`.
pid_t spawn_shard(const std::string& surveyd, const ShardProc& shard,
                  const std::string& cache_dir, unsigned workers,
                  unsigned long hot_cache_mb, const std::string& state_dir,
                  unsigned long trace_sample, bool access_log) {
    std::vector<std::string> args = {
        surveyd,        "--quiet",
        "--port",       "0",
        "--port-file",  shard.port_path,
        "--cache",      cache_dir,
        "--workers",    std::to_string(workers),
        "--hot-cache-mb", std::to_string(hot_cache_mb),
        // Observability identity + flight dumps land in the state dir,
        // where the launcher preserves them past the shard's death.
        "--name",       shard.name,
        "--flight-dir", state_dir,
    };
    if (trace_sample > 0) {
        args.push_back("--trace-sample");
        args.push_back(std::to_string(trace_sample));
    }
    if (access_log) {
        args.push_back("--access-log");
        args.push_back(state_dir + "/" + shard.name + ".access.jsonl");
    }
    const pid_t pid = fork();
    if (pid != 0) return pid;  // parent (or fork failure, -1)

    // Child: restore default signal dispositions/mask before exec so the
    // daemon's own sigtimedwait loop starts from a clean slate.
    sigset_t none;
    sigemptyset(&none);
    pthread_sigmask(SIG_SETMASK, &none, nullptr);
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (auto& a : args) argv.push_back(a.data());
    argv.push_back(nullptr);
    execv(surveyd.c_str(), argv.data());
    std::fprintf(stderr, "hsw_fleet: exec %s: %s\n", surveyd.c_str(),
                 std::strerror(errno));
    _exit(127);
}

}  // namespace

int main(int argc, char** argv) {
    unsigned long shard_count = 2;
    unsigned long workers = 2;
    unsigned long hot_cache_mb = 64;
    std::string state_dir = ".hsw-fleet";
    std::string surveyd;
    std::string port_file;
    router::RouterConfig cfg;
    router::RouterServerConfig server_cfg;
    unsigned long trace_sample_permille = 0;
    bool access_log = false;
    bool quiet = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
        unsigned long n = 0;
        if (arg == "--help" || arg == "-h") return usage(argv[0], 0);
        if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--shards") {
            const char* v = value();
            if (!v || !parse_unsigned(v, shard_count, 64) || shard_count == 0) {
                return usage(argv[0], 2);
            }
        } else if (arg == "--port") {
            const char* v = value();
            if (!v || !parse_unsigned(v, n, 65535)) return usage(argv[0], 2);
            server_cfg.port = static_cast<std::uint16_t>(n);
        } else if (arg == "--port-file") {
            const char* v = value();
            if (!v) return usage(argv[0], 2);
            port_file = v;
        } else if (arg == "--bind") {
            const char* v = value();
            if (!v) return usage(argv[0], 2);
            server_cfg.bind_address = v;
        } else if (arg == "--replicas") {
            const char* v = value();
            if (!v || !parse_unsigned(v, n, 64) || n == 0) return usage(argv[0], 2);
            cfg.fleet.replicas = static_cast<unsigned>(n);
        } else if (arg == "--vnodes") {
            const char* v = value();
            if (!v || !parse_unsigned(v, n, 4096) || n == 0) return usage(argv[0], 2);
            cfg.fleet.vnodes = static_cast<unsigned>(n);
        } else if (arg == "--workers") {
            const char* v = value();
            if (!v || !parse_unsigned(v, workers, 1024) || workers == 0) {
                return usage(argv[0], 2);
            }
        } else if (arg == "--hot-cache-mb") {
            const char* v = value();
            if (!v || !parse_unsigned(v, hot_cache_mb, 4096)) return usage(argv[0], 2);
        } else if (arg == "--state-dir") {
            const char* v = value();
            if (!v) return usage(argv[0], 2);
            state_dir = v;
        } else if (arg == "--surveyd") {
            const char* v = value();
            if (!v) return usage(argv[0], 2);
            surveyd = v;
        } else if (arg == "--trace-sample") {
            const char* v = value();
            if (!v || !parse_unsigned(v, trace_sample_permille, 1000)) {
                return usage(argv[0], 2);
            }
        } else if (arg == "--access-log") {
            access_log = true;
        } else {
            std::fprintf(stderr, "%s: unknown option '%s'\n", argv[0], arg.c_str());
            return usage(argv[0], 2);
        }
    }

    if (surveyd.empty()) {
        // Sibling binary: hsw_fleet and hsw_surveyd install side by side.
        const auto self = std::filesystem::path{argv[0]};
        surveyd = (self.parent_path() / "hsw_surveyd").string();
        if (self.parent_path().empty()) surveyd = "hsw_surveyd";
    }

    std::error_code ec;
    std::filesystem::create_directories(state_dir, ec);
    if (ec) {
        std::fprintf(stderr, "hsw_fleet: cannot create %s: %s\n",
                     state_dir.c_str(), ec.message().c_str());
        return 1;
    }

    obs::set_metrics_enabled(true);
    if (trace_sample_permille > 0) obs::trace::enable();
    obs::accesslog::set_policy(
        static_cast<double>(trace_sample_permille) / 1000.0, 0);
    obs::accesslog::set_identity("router");
    if (access_log) obs::accesslog::set_enabled(true);

    obs::flight::Config flight_cfg;
    flight_cfg.dir = state_dir;
    flight_cfg.process = "router";
    obs::flight::configure(flight_cfg);
    obs::flight::install_crash_handlers();

    obs::accesslog::Writer access_log_writer;
    if (access_log &&
        !access_log_writer.start(state_dir + "/router.access.jsonl")) {
        std::fprintf(stderr, "hsw_fleet: cannot open %s/router.access.jsonl\n",
                     state_dir.c_str());
        return 1;
    }

    // Block stop signals before forking so a ^C during startup still runs
    // the teardown path. The mask is inherited across exec, which is why
    // spawn_shard resets it in the child before handing off to surveyd.
    sigset_t stop_signals;
    sigemptyset(&stop_signals);
    sigaddset(&stop_signals, SIGINT);
    sigaddset(&stop_signals, SIGTERM);
    sigaddset(&stop_signals, SIGQUIT);
    pthread_sigmask(SIG_BLOCK, &stop_signals, nullptr);

    std::vector<ShardProc> procs(shard_count);
    for (unsigned long i = 0; i < shard_count; ++i) {
        auto& p = procs[i];
        p.name = "shard" + std::to_string(i);
        p.port_path = state_dir + "/" + p.name + ".port";
        p.pid_path = state_dir + "/" + p.name + ".pid";
        util::remove_port_file(p.port_path);  // never read a stale port
        const std::string cache_dir = state_dir + "/" + p.name + ".cache";
        p.pid = spawn_shard(surveyd, p, cache_dir, static_cast<unsigned>(workers),
                            hot_cache_mb, state_dir, trace_sample_permille,
                            access_log);
        if (p.pid < 0) {
            std::fprintf(stderr, "hsw_fleet: fork: %s\n", std::strerror(errno));
            break;
        }
        if (std::FILE* f = std::fopen(p.pid_path.c_str(), "w")) {
            std::fprintf(f, "%ld\n", static_cast<long>(p.pid));
            std::fclose(f);
        }
    }

    // Normal teardown SIGTERMs the shards; a SIGQUIT teardown forwards
    // SIGQUIT instead so every shard writes its flight dump before
    // draining. Dumps are never cleaned up here -- they are the point.
    auto teardown = [&](int shard_signal) {
        for (auto& p : procs) {
            if (p.pid > 0 && !p.reaped) kill(p.pid, shard_signal);
        }
        for (auto& p : procs) {
            if (p.pid > 0 && !p.reaped) {
                int status = 0;
                waitpid(p.pid, &status, 0);
                p.reaped = true;
                report_flight_dumps(state_dir, p, quiet);
            }
            if (!p.pid_path.empty()) std::remove(p.pid_path.c_str());
        }
    };

    // Collect every shard's published port; a shard that never publishes
    // (exec failed, crashed at startup) aborts the launch.
    std::vector<router::ShardEndpoint> endpoints;
    for (auto& p : procs) {
        if (p.pid <= 0) {
            teardown(SIGTERM);
            return 1;
        }
        const auto port = util::read_port_file(p.port_path);
        if (!port) {
            std::fprintf(stderr, "hsw_fleet: %s never published %s\n",
                         p.name.c_str(), p.port_path.c_str());
            teardown(SIGTERM);
            return 1;
        }
        endpoints.push_back({p.name, "127.0.0.1", *port});
    }

    router::TcpTransport transport;
    std::optional<router::Router> rtr;
    std::optional<router::RouterServer> server;
    try {
        rtr.emplace(router::FleetMap{std::move(endpoints), cfg.fleet},
                    transport, cfg);
        server.emplace(*rtr, server_cfg);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "hsw_fleet: %s\n", e.what());
        teardown(SIGTERM);
        return 1;
    }
    server->start();

    if (!port_file.empty() &&
        !util::write_port_file(port_file, server->port())) {
        std::fprintf(stderr, "hsw_fleet: cannot write %s\n", port_file.c_str());
        server->stop();
        server->wait();
        rtr->stop();
        teardown(SIGTERM);
        return 1;
    }
    if (!quiet) {
        std::fprintf(stderr,
                     "hsw_fleet: router on %s:%u, %lu shards (%u replicas):\n",
                     server_cfg.bind_address.c_str(),
                     static_cast<unsigned>(server->port()), shard_count,
                     rtr->fleet().replicas());
        for (const auto& ep : rtr->fleet().shards()) {
            std::fprintf(stderr, "hsw_fleet:   %s -> %s\n", ep.name.c_str(),
                         ep.address().c_str());
        }
    }

    int teardown_signal = SIGTERM;
    while (!server->stopped()) {
        timespec tick{0, 200 * 1000 * 1000};
        const int sig = sigtimedwait(&stop_signals, nullptr, &tick);
        if (sig == SIGQUIT) {
            // Flight-dump teardown: the router dumps here, the shards dump
            // when the forwarded SIGQUIT reaches them in teardown().
            const std::string path = obs::flight::dump("sigquit");
            if (!quiet) {
                std::fprintf(stderr,
                             "hsw_fleet: SIGQUIT, flight dump %s, stopping fleet\n",
                             path.empty() ? "FAILED" : path.c_str());
            }
            teardown_signal = SIGQUIT;
            server->stop();
            break;
        }
        if (sig == SIGINT || sig == SIGTERM) {
            if (!quiet) {
                std::fprintf(stderr, "hsw_fleet: %s, stopping fleet\n",
                             sig == SIGINT ? "SIGINT" : "SIGTERM");
            }
            server->stop();
            break;
        }
        // Notice (but survive) shard deaths: the router fails their keys
        // over to replicas; a restarted launcher gets a clean slate.
        for (auto& p : procs) {
            if (p.pid <= 0 || p.reaped) continue;
            int status = 0;
            if (waitpid(p.pid, &status, WNOHANG) == p.pid) {
                p.reaped = true;
                if (!quiet) {
                    std::fprintf(stderr, "hsw_fleet: %s (pid %ld) exited\n",
                                 p.name.c_str(), static_cast<long>(p.pid));
                }
                report_flight_dumps(state_dir, p, quiet);
            }
        }
    }
    server->wait();
    rtr->stop();
    teardown(teardown_signal);
    access_log_writer.stop();
    if (!port_file.empty()) util::remove_port_file(port_file);

    if (!quiet) {
        std::fputs(rtr->stats().render().c_str(), stderr);
        std::fprintf(stderr, "hsw_fleet: stopped\n");
    }
    return 0;
}
