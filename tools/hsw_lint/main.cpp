// hsw_lint CLI: lints the given roots and exits nonzero on findings.
//
//   hsw_lint <dir-or-file>...
//
// Exit codes: 0 clean, 1 findings, 2 usage / missing path. CI runs it
// over src/ tools/ bench/; ctest runs the same invocation locally.
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "hsw_lint/lint.hpp"

int main(int argc, char** argv) {
    if (argc < 2) {
        std::fprintf(stderr, "usage: %s <dir-or-file>...\n", argv[0]);
        return 2;
    }
    std::vector<std::filesystem::path> roots;
    for (int i = 1; i < argc; ++i) {
        const std::filesystem::path p{argv[i]};
        if (!std::filesystem::exists(p)) {
            std::fprintf(stderr, "hsw_lint: no such path: %s\n", argv[i]);
            return 2;
        }
        roots.push_back(p);
    }

    const auto result = hsw::lint::lint_tree(roots);
    for (const auto& finding : result.findings) {
        std::printf("%s\n", hsw::lint::format(finding).c_str());
    }
    std::printf("hsw_lint: %zu files scanned, %zu finding%s\n", result.files_scanned,
                result.findings.size(), result.findings.size() == 1 ? "" : "s");
    return result.findings.empty() ? 0 : 1;
}
