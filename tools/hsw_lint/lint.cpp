#include "hsw_lint/lint.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string_view>
#include <unordered_map>
#include <unordered_set>

namespace hsw::lint {

namespace {

// Marker and suppression needles are assembled from adjacent pieces so the
// linter's own source never contains the literal text it searches raw
// lines for (the tree scan includes tools/hsw_lint itself).
const std::string kHotBegin = std::string{"hsw:"} + "hot-path";
const std::string kHotEnd = std::string{"hsw:"} + "end-hot-path";
const std::string kReactorBegin = std::string{"hsw:"} + "reactor-thread";
const std::string kReactorEnd = std::string{"hsw:"} + "end-reactor-thread";
const std::string kAllow = std::string{"hsw-"} + "lint: allow(";
// The access log's JSON field emitter: its name argument must be a string
// literal so no request can ever pay for (or corrupt) field-name
// formatting.
const std::string kAppendField = std::string{"append_"} + "field";

// --- rule tables -------------------------------------------------------------

const std::unordered_set<std::string_view> kWallClockTokens = {
    "system_clock", "gettimeofday", "localtime", "localtime_r",
    "gmtime",       "gmtime_r",     "ftime",     "timespec_get",
};

const std::unordered_set<std::string_view> kRawRngTokens = {
    "rand",    "srand",   "rand_r",        "drand48",
    "lrand48", "mrand48", "random_device", "random_shuffle",
};

const std::unordered_set<std::string_view> kHotAllocTokens = {
    "new",          "malloc", "calloc",  "realloc",     "free",
    "make_shared",  "make_unique",       "push_back",   "emplace_back",
    "emplace",      "resize", "reserve", "make_pair",
};

const std::unordered_set<std::string_view> kHotBlockingTokens = {
    "sleep_for", "sleep_until", "usleep", "nanosleep", "fopen",
    "ifstream",  "ofstream",    "fstream", "mmap",     "ioctl",
};

// Calls that park the calling thread on a socket (or outright sleep).
// Nonblocking recv/sendmsg on O_NONBLOCK fds are the reactor's bread and
// butter and are deliberately absent; what must never appear on a reactor
// thread is a call that waits for the *peer*: the blocking frame helpers
// (read_frame/write_frame loop until a whole frame moved), accept/connect,
// the legacy readiness muxes, and sleeps.
const std::unordered_set<std::string_view> kReactorBlockingTokens = {
    "read_frame", "write_frame", "accept",      "connect",
    "poll",       "select",      "sleep_for",   "sleep_until",
    "usleep",     "nanosleep",   "getline",
};

// Deliberately excludes ::shutdown(2): it never blocks, and stop() paths
// legitimately shut sockets down under the registry lock.
const std::unordered_set<std::string_view> kLockIoTokens = {
    "fopen",  "fwrite",   "fread",    "fclose",     "ifstream", "ofstream",
    "fstream", "read_frame", "write_frame", "accept", "connect", "send",
    "recv",   "sendto",   "recvfrom", "printf",     "fprintf",  "puts",
    "cout",   "cerr",     "system",   "popen",      "getline",
};

// Tokens that start (or re-enter) a lock-held region.
const std::unordered_set<std::string_view> kGuardTokens = {
    "LockGuard",     "lock_guard",        "unique_lock",
    "scoped_lock",   "SharedLockGuard",   "ExclusiveLockGuard",
};

const std::array<std::string_view, 9> kStdSyncTypes = {
    "std::mutex",          "std::timed_mutex",
    "std::recursive_mutex", "std::shared_mutex",
    "std::lock_guard",     "std::unique_lock",
    "std::scoped_lock",    "std::condition_variable",
    "std::condition_variable_any",
};

// --- lexing helpers ----------------------------------------------------------

bool ident_char(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Blanks comments and string/char literal *contents* with spaces,
/// preserving column positions. `in_block` carries /* */ state across
/// lines. Raw strings are treated as plain strings -- good enough for this
/// tree, which has none.
std::string strip_line(const std::string& raw, bool& in_block) {
    std::string out(raw.size(), ' ');
    bool in_string = false, in_char = false;
    for (std::size_t i = 0; i < raw.size(); ++i) {
        const char c = raw[i];
        if (in_block) {
            if (c == '*' && i + 1 < raw.size() && raw[i + 1] == '/') {
                in_block = false;
                ++i;
            }
            continue;
        }
        if (in_string) {
            if (c == '\\') {
                ++i;
            } else if (c == '"') {
                in_string = false;
                out[i] = '"';
            }
            continue;
        }
        if (in_char) {
            if (c == '\\') {
                ++i;
            } else if (c == '\'') {
                in_char = false;
                out[i] = '\'';
            }
            continue;
        }
        if (c == '/' && i + 1 < raw.size() && raw[i + 1] == '/') break;
        if (c == '/' && i + 1 < raw.size() && raw[i + 1] == '*') {
            in_block = true;
            ++i;
            continue;
        }
        if (c == '"') {
            in_string = true;
            out[i] = '"';
            continue;
        }
        if (c == '\'') {
            in_char = true;
            out[i] = '\'';
            continue;
        }
        out[i] = c;
    }
    return out;
}

struct Token {
    std::string_view text;
    std::size_t pos = 0;
};

std::vector<Token> tokens_of(const std::string& stripped) {
    std::vector<Token> out;
    std::size_t i = 0;
    while (i < stripped.size()) {
        if (ident_char(stripped[i]) &&
            std::isdigit(static_cast<unsigned char>(stripped[i])) == 0) {
            const std::size_t start = i;
            while (i < stripped.size() && ident_char(stripped[i])) ++i;
            out.push_back(Token{
                std::string_view{stripped}.substr(start, i - start), start});
        } else {
            ++i;
        }
    }
    return out;
}

/// The module a path belongs to: the component after the last "src/"
/// (so fixture trees under tests/lint_fixtures/src/... classify exactly
/// like the real tree). Top-level tools/, bench/, tests/ files have no
/// module; only path-agnostic rules apply to them.
std::string module_of(const std::string& path) {
    const auto pos = path.rfind("src/");
    if (pos == std::string::npos) return {};
    if (pos != 0 && path[pos - 1] != '/') return {};
    const std::size_t start = pos + 4;
    const auto slash = path.find('/', start);
    if (slash == std::string::npos) return {};
    return path.substr(start, slash - start);
}

bool is_catalog_path(const std::string& path) {
    const std::string suffix = "msr/addresses.hpp";
    return path.size() >= suffix.size() &&
           path.compare(path.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Rule IDs named in `allow(...)` on this raw line; "all" suppresses
/// every rule.
std::vector<std::string> allowed_rules(const std::string& raw) {
    std::vector<std::string> out;
    const auto at = raw.find(kAllow);
    if (at == std::string::npos) return out;
    const std::size_t open = at + kAllow.size();
    const auto close = raw.find(')', open);
    if (close == std::string::npos) return out;
    std::string inside = raw.substr(open, close - open);
    std::stringstream ss{inside};
    std::string rule;
    while (std::getline(ss, rule, ',')) {
        const auto begin = rule.find_first_not_of(" \t");
        const auto end = rule.find_last_not_of(" \t");
        if (begin != std::string::npos) {
            out.push_back(rule.substr(begin, end - begin + 1));
        }
    }
    return out;
}

// --- include layering --------------------------------------------------------

/// Returns empty when `from_module` may include `header`, else the reason.
std::string layering_violation(const std::string& from_module,
                               const std::string& header) {
    const auto slash = header.find('/');
    if (slash == std::string::npos) return {};  // same-directory include
    const std::string target = header.substr(0, slash);

    if (from_module == "util" && target != "util") {
        return "util is the bottom layer and must not include \"" + header + "\"";
    }
    if (from_module == "msr" && target != "msr" && target != "util") {
        return "msr may only include msr/ and util/, not \"" + header + "\"";
    }
    if (from_module == "obs" && target != "obs" && target != "util") {
        return "obs may only include obs/ and util/, not \"" + header + "\"";
    }
    if (from_module == "sim") {
        if (target == "obs") {
            // The simulator may emit telemetry through the two public obs
            // facades, but never reach into obs internals.
            if (header != "obs/metrics.hpp" && header != "obs/trace.hpp") {
                return "sim may only use the obs facades metrics.hpp/trace.hpp, "
                       "not \"" + header + "\"";
            }
        } else if (target != "sim" && target != "util" && target != "msr") {
            return "sim must stay below the engine/service layers and cannot "
                   "include \"" + header + "\"";
        }
    }
    if (from_module == "platform" && target != "platform" && target != "arch" &&
        target != "msr" && target != "pcu" && target != "cstates" &&
        target != "rapl" && target != "power" && target != "util") {
        return "platform backends compose the device models and may only "
               "include arch/, msr/, pcu/, cstates/, rapl/, power/ and util/, "
               "not \"" + header + "\"";
    }
    if (target == "platform" && from_module != "platform" && from_module != "core" &&
        from_module != "os" && from_module != "survey" && from_module != "engine" &&
        !from_module.empty()) {
        return "only core/, os/, survey/ and engine/ may select platform "
               "backends; " + from_module + " must stay generation-agnostic "
               "through the pcu::PcuPolicy hook";
    }
    if (from_module == "router" && target != "router" && target != "service" &&
        target != "obs" && target != "util") {
        return "router sits atop service and may only include router/, "
               "service/, obs/ and util/, not \"" + header + "\"";
    }
    if (target == "service" && from_module != "service" &&
        from_module != "router" && !from_module.empty()) {
        return "only service/ and router/ may include service internals, not " +
               from_module;
    }
    if (target == "engine" && from_module != "engine" && from_module != "service" &&
        !from_module.empty()) {
        return "only engine/ and service/ may include engine internals, not " +
               from_module;
    }
    if (target == "router" && from_module != "router" && !from_module.empty()) {
        return "router is the top of the service stack; " + from_module +
               " must not include \"" + header + "\"";
    }
    return {};
}

// --- per-file scan -----------------------------------------------------------

struct GuardScope {
    int depth = 0;     // brace depth the guard was declared at
    bool active = true;  // false between .unlock() and .lock()
};

struct FileScanner {
    const std::string& path;
    const Catalog& catalog;
    std::string module;
    std::vector<Finding> findings;

    bool in_block_comment = false;
    bool in_hot_region = false;
    int hot_region_line = 0;
    bool in_reactor_region = false;
    int reactor_region_line = 0;
    int depth = 0;
    std::vector<GuardScope> guards;
    std::vector<std::string> prev_allows;

    FileScanner(const std::string& p, const Catalog& c)
        : path{p}, catalog{c}, module{module_of(p)} {}

    void report(int line, const std::vector<std::string>& allows,
                std::string rule, std::string message) {
        for (const auto& a : allows) {
            if (a == rule || a == "all") return;
        }
        findings.push_back(Finding{path, line, std::move(rule), std::move(message)});
    }

    void scan_line(int lineno, const std::string& raw) {
        const std::vector<std::string> here = allowed_rules(raw);
        std::vector<std::string> allows = here;
        allows.insert(allows.end(), prev_allows.begin(), prev_allows.end());

        // Region markers live in comments, so they are matched on the raw
        // line before stripping.
        if (raw.find(kHotBegin) != std::string::npos &&
            raw.find(kHotEnd) == std::string::npos) {
            in_hot_region = true;
            hot_region_line = lineno;
        } else if (raw.find(kHotEnd) != std::string::npos) {
            in_hot_region = false;
        }
        if (raw.find(kReactorBegin) != std::string::npos &&
            raw.find(kReactorEnd) == std::string::npos) {
            in_reactor_region = true;
            reactor_region_line = lineno;
        } else if (raw.find(kReactorEnd) != std::string::npos) {
            in_reactor_region = false;
        }

        // #include lines are parsed from the raw text (the quoted path is
        // exactly what strip_line blanks out).
        if (!in_block_comment) {
            const auto hash = raw.find_first_not_of(" \t");
            if (hash != std::string::npos && raw[hash] == '#' &&
                raw.find("include", hash) != std::string::npos) {
                const auto q1 = raw.find('"');
                const auto q2 = q1 == std::string::npos ? q1 : raw.find('"', q1 + 1);
                if (q2 != std::string::npos) {
                    const std::string header = raw.substr(q1 + 1, q2 - q1 - 1);
                    if (!module.empty()) {
                        const std::string why = layering_violation(module, header);
                        if (!why.empty()) {
                            report(lineno, allows, "include-layering", why);
                        }
                    }
                }
            }
        }

        const std::string stripped = strip_line(raw, in_block_comment);
        scan_tokens(lineno, allows, stripped);
        scan_hex(lineno, allows, stripped);
        update_regions(stripped);

        prev_allows = here;
    }

    void scan_tokens(int lineno, const std::vector<std::string>& allows,
                     const std::string& stripped) {
        const bool det_module = module == "sim" || module == "engine";
        const bool wrapper_module = module == "engine" || module == "service" ||
                                    module == "obs" || module == "router";

        if (wrapper_module) {
            for (const auto type : kStdSyncTypes) {
                if (stripped.find(type) != std::string::npos) {
                    report(lineno, allows, "concurrency-wrappers",
                           std::string{type} +
                               " is banned here; use the annotated util::Mutex / "
                               "util::LockGuard / util::CondVar wrappers");
                }
            }
        }

        const auto toks = tokens_of(stripped);
        const bool line_has_derive =
            stripped.find("derive") != std::string::npos ||
            stripped.find("split") != std::string::npos;

        for (std::size_t t = 0; t < toks.size(); ++t) {
            const Token& tok = toks[t];
            if (det_module) {
                if (kWallClockTokens.count(tok.text) != 0) {
                    report(lineno, allows, "determinism-wallclock",
                           "wall-clock source '" + std::string{tok.text} +
                               "' in deterministic module " + module +
                               "; use sim time or steady_clock");
                }
                if (kRawRngTokens.count(tok.text) != 0) {
                    report(lineno, allows, "determinism-rng",
                           "unseeded/global RNG '" + std::string{tok.text} +
                               "' in deterministic module " + module +
                               "; use util::Rng");
                }
            }
            if (module == "engine" && tok.text == "Rng" && !line_has_derive) {
                // Direct construction (`Rng{...}` / `Rng r{seed}` /
                // `Rng r(seed)`) smuggles an unmanaged seed into the
                // engine; type mentions (Rng&, Rng>, Rng::) are fine.
                std::size_t after = tok.pos + tok.text.size();
                while (after < stripped.size() && stripped[after] == ' ') ++after;
                bool construction = false;
                if (after < stripped.size()) {
                    const char c = stripped[after];
                    if (c == '{' || c == '(') construction = true;
                    if (ident_char(c) && t + 1 < toks.size()) {
                        // `Rng name ...`: a declaration; its initializer
                        // must route through derive()/split().
                        construction = true;
                    }
                }
                if (construction) {
                    report(lineno, allows, "engine-rng-derive",
                           "engine code must obtain Rng via util::Rng::derive() "
                           "or .split(), never from a raw seed");
                }
            }
            if (in_hot_region) {
                if (kHotAllocTokens.count(tok.text) != 0) {
                    report(lineno, allows, "hot-path-alloc",
                           "'" + std::string{tok.text} +
                               "' allocates inside the hot-path region opened at "
                               "line " + std::to_string(hot_region_line));
                }
                if (kHotBlockingTokens.count(tok.text) != 0) {
                    report(lineno, allows, "hot-path-alloc",
                           "'" + std::string{tok.text} +
                               "' may block inside the hot-path region opened at "
                               "line " + std::to_string(hot_region_line));
                }
            }
            if (in_reactor_region && kReactorBlockingTokens.count(tok.text) != 0) {
                report(lineno, allows, "reactor-blocking",
                       "'" + std::string{tok.text} +
                           "' can block the event loop inside the reactor-thread "
                           "region opened at line " +
                           std::to_string(reactor_region_line) +
                           "; reactor fds are nonblocking, park on epoll instead");
            }
            if (kLockIoTokens.count(tok.text) != 0 && holding_lock()) {
                report(lineno, allows, "lock-across-io",
                       "I/O call '" + std::string{tok.text} +
                           "' while a lock guard is held; copy under the lock, "
                           "do I/O outside it");
            }
            if (tok.text == kAppendField) check_append_field(lineno, allows, stripped, tok);
        }
    }

    /// `append_field(out, NAME, ...)` call sites must pass NAME as a
    /// string literal: a computed field name means someone is building
    /// JSON keys per record, which the access-log design forbids. The
    /// check is line-local (a call split across lines is not checked) and
    /// skips the function's own declaration/definition.
    void check_append_field(int lineno, const std::vector<std::string>& allows,
                            const std::string& stripped, const Token& tok) {
        // Declaration ("void append_field(...)" etc.): an identifier
        // immediately precedes the name.
        std::size_t before = tok.pos;
        while (before > 0 && stripped[before - 1] == ' ') --before;
        if (before > 0 && ident_char(stripped[before - 1])) return;

        std::size_t i = tok.pos + tok.text.size();
        while (i < stripped.size() && stripped[i] == ' ') ++i;
        if (i >= stripped.size() || stripped[i] != '(') return;
        // First comma at paren depth 1 ends the destination argument.
        int paren = 1;
        ++i;
        while (i < stripped.size() && (paren > 1 || stripped[i] != ',')) {
            if (stripped[i] == '(') ++paren;
            if (stripped[i] == ')' && --paren == 0) return;  // one-arg call
            ++i;
        }
        if (i >= stripped.size()) return;  // name argument on the next line
        ++i;
        while (i < stripped.size() && stripped[i] == ' ') ++i;
        if (i < stripped.size() && stripped[i] != '"') {
            report(lineno, allows, "accesslog-literal-field",
                   "access-log field name is not a string literal at this "
                   "call site; field names must never be computed per record");
        }
    }

    void scan_hex(int lineno, const std::vector<std::string>& allows,
                  const std::string& stripped) {
        if (catalog.msr_values.empty() || is_catalog_path(path)) return;
        for (std::size_t i = 0; i + 2 < stripped.size(); ++i) {
            if (stripped[i] != '0' || (stripped[i + 1] != 'x' && stripped[i + 1] != 'X')) {
                continue;
            }
            // A hex literal, not the tail of an identifier.
            if (i > 0 && ident_char(stripped[i - 1])) continue;
            std::size_t end = i + 2;
            while (end < stripped.size() &&
                   std::isxdigit(static_cast<unsigned char>(stripped[end])) != 0) {
                ++end;
            }
            if (end == i + 2) continue;
            const std::uint64_t value =
                std::strtoull(stripped.substr(i + 2, end - i - 2).c_str(), nullptr, 16);
            if (catalog.msr_values.count(value) != 0) {
                report(lineno, allows, "msr-catalog",
                       "raw MSR address 0x" + stripped.substr(i + 2, end - i - 2) +
                           "; use the named constant from msr/addresses.hpp");
            }
            i = end - 1;
        }
    }

    bool holding_lock() const {
        return std::any_of(guards.begin(), guards.end(),
                           [](const GuardScope& g) { return g.active; });
    }

    void update_regions(const std::string& stripped) {
        // Guard declarations are registered at the depth of the line they
        // appear on; the scope dies when its enclosing brace closes.
        for (const auto& tok : tokens_of(stripped)) {
            if (kGuardTokens.count(tok.text) != 0) {
                guards.push_back(GuardScope{depth, true});
                break;
            }
        }
        if (stripped.find(".unlock(") != std::string::npos) {
            for (auto it = guards.rbegin(); it != guards.rend(); ++it) {
                if (it->active) {
                    it->active = false;
                    break;
                }
            }
        } else if (stripped.find(".lock(") != std::string::npos) {
            for (auto it = guards.rbegin(); it != guards.rend(); ++it) {
                if (!it->active) {
                    it->active = true;
                    break;
                }
            }
        }
        for (const char c : stripped) {
            if (c == '{') ++depth;
            if (c == '}') {
                --depth;
                while (!guards.empty() && guards.back().depth > depth) {
                    guards.pop_back();
                }
            }
        }
    }
};

}  // namespace

std::string format(const Finding& finding) {
    return finding.path + ":" + std::to_string(finding.line) + ": [" +
           finding.rule + "] " + finding.message;
}

Catalog load_catalog(const std::string& content) {
    Catalog catalog;
    bool in_block = false;
    std::stringstream ss{content};
    std::string raw;
    while (std::getline(ss, raw)) {
        const std::string stripped = strip_line(raw, in_block);
        std::size_t i = 0;
        while ((i = stripped.find("0x", i)) != std::string::npos) {
            std::size_t end = i + 2;
            while (end < stripped.size() &&
                   std::isxdigit(static_cast<unsigned char>(stripped[end])) != 0) {
                ++end;
            }
            if (end > i + 2 && (i == 0 || !ident_char(stripped[i - 1]))) {
                catalog.msr_values.insert(std::strtoull(
                    stripped.substr(i + 2, end - i - 2).c_str(), nullptr, 16));
            }
            i = end;
        }
    }
    return catalog;
}

std::vector<Finding> lint_file(const std::string& display_path,
                               const std::string& content, const Catalog& catalog) {
    FileScanner scanner{display_path, catalog};
    std::stringstream ss{content};
    std::string raw;
    int lineno = 0;
    while (std::getline(ss, raw)) {
        scanner.scan_line(++lineno, raw);
    }
    return std::move(scanner.findings);
}

TreeResult lint_tree(const std::vector<std::filesystem::path>& roots) {
    namespace fs = std::filesystem;
    std::vector<fs::path> files;
    for (const auto& root : roots) {
        if (fs::is_regular_file(root)) {
            files.push_back(root);
            continue;
        }
        if (!fs::is_directory(root)) continue;
        for (const auto& entry : fs::recursive_directory_iterator{root}) {
            if (!entry.is_regular_file()) continue;
            const auto ext = entry.path().extension();
            if (ext == ".hpp" || ext == ".h" || ext == ".cpp" || ext == ".cc") {
                files.push_back(entry.path());
            }
        }
    }
    std::sort(files.begin(), files.end());

    const auto slurp = [](const fs::path& p) {
        std::ifstream in{p, std::ios::binary};
        std::stringstream ss;
        ss << in.rdbuf();
        return ss.str();
    };

    Catalog catalog;
    for (const auto& f : files) {
        if (is_catalog_path(f.generic_string())) {
            catalog = load_catalog(slurp(f));
            break;
        }
    }

    TreeResult result;
    for (const auto& f : files) {
        const std::string display = f.generic_string();
        auto findings = lint_file(display, slurp(f), catalog);
        result.findings.insert(result.findings.end(),
                               std::make_move_iterator(findings.begin()),
                               std::make_move_iterator(findings.end()));
        ++result.files_scanned;
    }
    return result;
}

}  // namespace hsw::lint
