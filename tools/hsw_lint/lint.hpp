// hsw_lint: domain rules the compiler cannot check.
//
// A deliberately small, dependency-free linter over the repo's own source
// conventions: determinism in the simulation core, allocation-free hot
// paths, no I/O while holding a lock, no blocking socket calls on reactor
// threads, include layering, and the MSR catalog as the single source of
// register addresses. It is line-based --
// comments and string/char literals are blanked before token scans, so a
// rule name in a comment never fires -- and it is self-hosted: the real
// tree must lint clean, and `ctest` runs it on every build.
//
// Findings print as `path:line: [rule-id] message`. A finding is
// suppressed by `// hsw-` `lint: allow(<rule-id>)` (or `allow(all)`) on
// the same line or the line directly above.
#pragma once

#include <cstdint>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

namespace hsw::lint {

struct Finding {
    std::string path;
    int line = 0;  // 1-based
    std::string rule;
    std::string message;
};

/// `path:line: [rule] message` -- the one format both the CLI and the
/// tests consume.
[[nodiscard]] std::string format(const Finding& finding);

/// The MSR address catalog parsed out of msr/addresses.hpp: the set of
/// hex values that must never appear as raw literals anywhere else.
struct Catalog {
    std::set<std::uint64_t> msr_values;
};

[[nodiscard]] Catalog load_catalog(const std::string& content);

/// Lints one translation unit. `display_path` drives both module
/// classification (the path component after "src/") and finding output;
/// pass paths relative to the repo root so reports are stable.
[[nodiscard]] std::vector<Finding> lint_file(const std::string& display_path,
                                             const std::string& content,
                                             const Catalog& catalog);

struct TreeResult {
    std::vector<Finding> findings;
    std::size_t files_scanned = 0;
};

/// Walks `roots` for C++ sources (.hpp/.h/.cpp/.cc), locates the MSR
/// catalog (any file ending in msr/addresses.hpp) among them, and lints
/// every file. Paths in findings are relative to the deepest of cwd and
/// root that contains them; scanning order is sorted for determinism.
[[nodiscard]] TreeResult lint_tree(const std::vector<std::filesystem::path>& roots);

}  // namespace hsw::lint
