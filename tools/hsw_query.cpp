// hsw_query: client and load generator for hsw_surveyd.
//
//   hsw_query --port-file /tmp/port --experiment fig3 --out csv/
//   hsw_query --port 7788 --bench --threads 16 --requests 200
//             --duplicate-ratio 0.8 --mix fig3,fig7,table3
//   hsw_query --port 7788 --stats
//   hsw_query --port 7788 --shutdown
//
// A plain query fetches one experiment (or one named sweep point) and
// writes the artifacts; --bench replays a deterministic request mix from N
// client threads and reports requests/s plus p50/p99 latency. The
// duplicate ratio controls how many requests share a spec (and therefore
// exercise the daemon's coalescing and hot cache) versus carrying a unique
// seed (forcing a fresh computation).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "engine/blob.hpp"
#include "obs/ctx.hpp"
#include "obs/trace.hpp"
#include "service/server.hpp"
#include "util/hash.hpp"
#include "util/port_file.hpp"
#include "util/stats.hpp"

using namespace hsw;

namespace {

int usage(const char* argv0, int code) {
    std::FILE* out = code == 0 ? stdout : stderr;
    std::fprintf(
        out,
        "usage: %s [options]\n"
        "\n"
        "Queries a running hsw_surveyd (see --port / --port-file).\n"
        "\n"
        "connection:\n"
        "  --host ADDR          daemon address (default: 127.0.0.1)\n"
        "  --port P             daemon port\n"
        "  --port-file PATH     read the port from PATH (polls up to 5 s)\n"
        "  --retries N          retry a refused connect or failed request up\n"
        "                       to N times with exponential backoff + jitter\n"
        "                       (default: 0 = fail immediately)\n"
        "\n"
        "single query:\n"
        "  --experiment NAME    experiment to fetch (e.g. fig3)\n"
        "  --point NAME         one sweep point instead of the whole\n"
        "                       experiment; raw payload blob to stdout\n"
        "  --out DIR            artifact directory (default: .)\n"
        "  --renders            also write the rendered .txt tables\n"
        "  --quick              reduced-sampling tuning (must match daemon use)\n"
        "  --seed S             base seed, decimal or 0x-hex (default: 0xC0FFEE)\n"
        "  --audit MODE         off | warn | strict (default: off)\n"
        "  --deadline-ms N      per-request deadline, 0 = none (default: 0)\n"
        "\n"
        "load generation:\n"
        "  --bench              run the load generator instead of one query\n"
        "  --threads N          concurrent client connections (default: 4)\n"
        "  --requests M         total requests across all threads (default: 64)\n"
        "  --duplicate-ratio R  fraction of requests sharing the base seed,\n"
        "                       0..1 (default: 0.5); the rest get unique seeds\n"
        "  --mix LIST           comma-separated experiments to rotate through\n"
        "                       (default: fig3)\n"
        "  --pipeline N         send N requests per batch frame (v1.3\n"
        "                       pipelining; default 1 = one request per\n"
        "                       round-trip, works against any server)\n"
        "\n"
        "tracing:\n"
        "  --trace              originate a sampled trace context for every\n"
        "                       request (the daemons keep the matching spans\n"
        "                       for hsw_trace / trace_dump)\n"
        "  --trace-sample N     originate contexts but head-sample only\n"
        "                       N/1000 of them (default with --trace: 1000)\n"
        "  --trace-out FILE     also record this client's own spans and write\n"
        "                       Chrome trace-event JSON to FILE on exit\n"
        "\n"
        "control verbs:\n"
        "  --ping               round-trip check\n"
        "  --stats              print the daemon's stats block\n"
        "  --metrics [FORMAT]   scrape the metrics registry; FORMAT is\n"
        "                       prometheus (default) or json\n"
        "  --shutdown           drain and stop the daemon\n",
        argv0);
    return code;
}

bool parse_unsigned(const char* text, unsigned long& out, unsigned long max) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(text, &end, 10);
    if (end == text || *end != '\0' || v > max) return false;
    out = v;
    return true;
}

/// Retrying protocol client: reconnects and re-sends on transport errors,
/// with exponential backoff + deterministic jitter between attempts.
/// Queries are idempotent (content-addressed results), so re-sending a
/// request whose response was lost is always safe.
class RetryingClient {
public:
    RetryingClient(std::string host, std::uint16_t port, unsigned retries)
        : host_{std::move(host)}, port_{port}, retries_{retries} {}

    [[nodiscard]] service::protocol::Response call(
        const service::protocol::Request& request) {
        for (unsigned attempt = 0;; ++attempt) {
            try {
                if (!client_) client_.emplace(host_, port_);
                return client_->call(request);
            } catch (const std::exception&) {
                client_.reset();  // stale stream: reconnect on next attempt
                if (attempt >= retries_) throw;
                std::this_thread::sleep_for(backoff(attempt));
            }
        }
    }

    /// Pipelined window with the same reconnect/backoff policy; the whole
    /// window is re-sent on a transport error (idempotent queries).
    [[nodiscard]] std::vector<service::protocol::Response> call_pipelined(
        const std::vector<service::protocol::Request>& window) {
        for (unsigned attempt = 0;; ++attempt) {
            try {
                if (!client_) client_.emplace(host_, port_);
                return client_->call_pipelined(window);
            } catch (const std::exception&) {
                client_.reset();
                if (attempt >= retries_) throw;
                std::this_thread::sleep_for(backoff(attempt));
            }
        }
    }

private:
    [[nodiscard]] std::chrono::milliseconds backoff(unsigned attempt) {
        // 50ms, 100ms, 200ms, ... capped at 2s, plus jitter in [0, 50ms)
        // from a splitmix64 walk so colliding clients desynchronize.
        const std::uint64_t draw = util::mix64(jitter_state_++);
        const long long exp = 50LL << (attempt < 6 ? attempt : 6);
        return std::chrono::milliseconds{
            std::min<long long>(exp, 2000) + static_cast<long long>(draw % 50)};
    }

    std::string host_;
    std::uint16_t port_;
    unsigned retries_;
    std::uint64_t jitter_state_ = 0x5EED;
    std::optional<service::ServiceClient> client_;
};

std::vector<std::string> split_commas(const std::string& list) {
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= list.size()) {
        const std::size_t comma = list.find(',', start);
        const std::size_t end = comma == std::string::npos ? list.size() : comma;
        if (end > start) out.push_back(list.substr(start, end - start));
        if (comma == std::string::npos) break;
        start = comma + 1;
    }
    return out;
}

bool write_file(const std::filesystem::path& path, std::string_view bytes) {
    std::ofstream out{path, std::ios::binary | std::ios::trunc};
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    return static_cast<bool>(out);
}

struct BenchSlice {
    std::vector<double> latencies_ms;
    std::uint64_t ok = 0;
    std::uint64_t rejected = 0;
    std::uint64_t hot = 0, disk = 0, computed = 0;
    double wall_s = 0;  // this client's own elapsed time
    std::string first_error;
};

}  // namespace

int main(int argc, char** argv) {
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
    std::string port_file;
    std::string out_dir = ".";
    bool renders = false;
    bool bench = false;
    bool ping = false, stats = false, shutdown = false, metrics = false;
    service::protocol::MetricsFormat metrics_format =
        service::protocol::MetricsFormat::Prometheus;
    unsigned threads = 4;
    unsigned retries = 0;
    unsigned pipeline = 1;
    unsigned long requests = 64;
    double duplicate_ratio = 0.5;
    std::vector<std::string> mix;
    bool trace = false;
    unsigned long trace_sample_permille = 1000;
    std::string trace_out;

    service::protocol::Request request;
    request.verb = service::protocol::Verb::Query;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
        unsigned long n = 0;
        if (arg == "--help" || arg == "-h") return usage(argv[0], 0);
        if (arg == "--renders") {
            renders = true;
        } else if (arg == "--quick") {
            request.quick = true;
        } else if (arg == "--bench") {
            bench = true;
        } else if (arg == "--ping") {
            ping = true;
        } else if (arg == "--stats") {
            stats = true;
        } else if (arg == "--metrics") {
            metrics = true;
            // Optional format operand; anything else is the next option.
            if (i + 1 < argc && argv[i + 1][0] != '-') {
                const std::string fmt = argv[++i];
                if (fmt == "prometheus") {
                    metrics_format = service::protocol::MetricsFormat::Prometheus;
                } else if (fmt == "json") {
                    metrics_format = service::protocol::MetricsFormat::Json;
                } else {
                    return usage(argv[0], 2);
                }
            }
        } else if (arg == "--shutdown") {
            shutdown = true;
        } else if (arg == "--host") {
            const char* v = value();
            if (!v) return usage(argv[0], 2);
            host = v;
        } else if (arg == "--port") {
            const char* v = value();
            if (!v || !parse_unsigned(v, n, 65535) || n == 0) return usage(argv[0], 2);
            port = static_cast<std::uint16_t>(n);
        } else if (arg == "--port-file") {
            const char* v = value();
            if (!v) return usage(argv[0], 2);
            port_file = v;
        } else if (arg == "--experiment") {
            const char* v = value();
            if (!v) return usage(argv[0], 2);
            request.experiment = v;
        } else if (arg == "--point") {
            const char* v = value();
            if (!v) return usage(argv[0], 2);
            request.point = v;
        } else if (arg == "--out") {
            const char* v = value();
            if (!v) return usage(argv[0], 2);
            out_dir = v;
        } else if (arg == "--seed") {
            const char* v = value();
            if (!v) return usage(argv[0], 2);
            char* end = nullptr;
            request.seed = std::strtoull(v, &end, 0);
            if (end == v || *end != '\0') return usage(argv[0], 2);
        } else if (arg == "--audit") {
            const char* v = value();
            if (!v) return usage(argv[0], 2);
            if (std::strcmp(v, "off") == 0) {
                request.audit = analysis::AuditMode::Off;
            } else if (std::strcmp(v, "warn") == 0) {
                request.audit = analysis::AuditMode::Warn;
            } else if (std::strcmp(v, "strict") == 0) {
                request.audit = analysis::AuditMode::Strict;
            } else {
                return usage(argv[0], 2);
            }
        } else if (arg == "--deadline-ms") {
            const char* v = value();
            if (!v || !parse_unsigned(v, n, 1u << 30)) return usage(argv[0], 2);
            request.deadline_ms = static_cast<std::uint32_t>(n);
        } else if (arg == "--retries") {
            const char* v = value();
            if (!v || !parse_unsigned(v, n, 100)) return usage(argv[0], 2);
            retries = static_cast<unsigned>(n);
        } else if (arg == "--threads") {
            const char* v = value();
            if (!v || !parse_unsigned(v, n, 256) || n == 0) return usage(argv[0], 2);
            threads = static_cast<unsigned>(n);
        } else if (arg == "--pipeline") {
            const char* v = value();
            if (!v || !parse_unsigned(v, n, service::protocol::kMaxBatchRequests) ||
                n == 0) {
                return usage(argv[0], 2);
            }
            pipeline = static_cast<unsigned>(n);
        } else if (arg == "--requests") {
            const char* v = value();
            if (!v || !parse_unsigned(v, requests, 1u << 20) || requests == 0) {
                return usage(argv[0], 2);
            }
        } else if (arg == "--duplicate-ratio") {
            const char* v = value();
            if (!v) return usage(argv[0], 2);
            char* end = nullptr;
            duplicate_ratio = std::strtod(v, &end);
            if (end == v || *end != '\0' || duplicate_ratio < 0.0 ||
                duplicate_ratio > 1.0) {
                return usage(argv[0], 2);
            }
        } else if (arg == "--mix") {
            const char* v = value();
            if (!v) return usage(argv[0], 2);
            mix = split_commas(v);
        } else if (arg == "--trace") {
            trace = true;
        } else if (arg == "--trace-sample") {
            const char* v = value();
            if (!v || !parse_unsigned(v, trace_sample_permille, 1000)) {
                return usage(argv[0], 2);
            }
            trace = true;
        } else if (arg == "--trace-out") {
            const char* v = value();
            if (!v) return usage(argv[0], 2);
            trace_out = v;
            trace = true;
        } else {
            std::fprintf(stderr, "%s: unknown option '%s'\n", argv[0], arg.c_str());
            return usage(argv[0], 2);
        }
    }

    if (!port_file.empty()) {
        const auto p = util::read_port_file(port_file);
        if (!p) {
            std::fprintf(stderr, "hsw_query: no port in %s after 5 s\n",
                         port_file.c_str());
            return 1;
        }
        port = *p;
    }
    if (port == 0) {
        std::fprintf(stderr, "hsw_query: --port or --port-file required\n");
        return 2;
    }

    // Propagating a context downstream needs no local recording; the span
    // ring only runs when the client's own spans were asked for.
    if (!trace_out.empty()) obs::trace::enable();
    // Head-sampling decision at the origin, from a deterministic walk so
    // reruns sample the same request indexes.
    auto make_traced_root = [&](std::uint64_t& walk) {
        const bool sampled = trace_sample_permille >= 1000 ||
                             util::mix64(walk++) % 1000 < trace_sample_permille;
        return obs::trace::make_root(sampled);
    };

    auto write_client_trace = [&] {
        if (trace_out.empty()) return true;
        obs::trace::disable();
        if (!obs::trace::write_chrome_json(trace_out)) {
            std::fprintf(stderr, "hsw_query: cannot write trace %s\n",
                         trace_out.c_str());
            return false;
        }
        return true;
    };

    try {
        if (ping || stats || metrics || shutdown) {
            RetryingClient client{host, port, retries};
            service::protocol::Request verb;
            verb.verb = ping      ? service::protocol::Verb::Ping
                        : stats   ? service::protocol::Verb::Stats
                        : metrics ? service::protocol::Verb::Metrics
                                  : service::protocol::Verb::Shutdown;
            verb.format = metrics_format;
            const auto response = client.call(verb);
            if (!response.ok()) {
                std::fprintf(stderr, "hsw_query: %s: %s\n",
                             std::string{name(response.code)}.c_str(),
                             response.payload.c_str());
                return 1;
            }
            if (!response.payload.empty()) std::puts(response.payload.c_str());
            return 0;
        }

        if (bench) {
            if (mix.empty()) mix.push_back("fig3");
            const std::uint64_t total = requests;
            std::vector<BenchSlice> slices(threads);
            std::vector<std::thread> workers;
            const auto t0 = std::chrono::steady_clock::now();
            for (unsigned t = 0; t < threads; ++t) {
                workers.emplace_back([&, t] {
                    BenchSlice& slice = slices[t];
                    const auto slice_t0 = std::chrono::steady_clock::now();
                    std::uint64_t trace_walk = 0x51D0 + t;
                    try {
                        RetryingClient client{host, port, retries};
                        std::vector<service::protocol::Request> window;
                        auto flush_window = [&] {
                            if (window.empty()) return;
                            // One root per window: pipelined requests share
                            // a round-trip, so they share a trace too.
                            std::optional<obs::trace::ContextScope> scope;
                            if (trace) scope.emplace(make_traced_root(trace_walk));
                            const auto q0 = std::chrono::steady_clock::now();
                            const auto responses = pipeline > 1
                                                       ? client.call_pipelined(window)
                                                       : std::vector{client.call(
                                                             window.front())};
                            const auto q1 = std::chrono::steady_clock::now();
                            // Pipelined requests share the window's
                            // round-trip: that IS the latency each of them
                            // observes from the caller's seat.
                            const double ms =
                                std::chrono::duration<double, std::milli>{q1 - q0}
                                    .count();
                            for (const auto& response : responses) {
                                slice.latencies_ms.push_back(ms);
                                if (response.ok()) {
                                    ++slice.ok;
                                    using Source = service::protocol::Source;
                                    if (response.source == Source::HotCache) {
                                        ++slice.hot;
                                    }
                                    if (response.source == Source::DiskCache) {
                                        ++slice.disk;
                                    }
                                    if (response.source == Source::Computed) {
                                        ++slice.computed;
                                    }
                                } else {
                                    ++slice.rejected;
                                    if (slice.first_error.empty()) {
                                        slice.first_error =
                                            std::string{name(response.code)} + ": " +
                                            response.payload;
                                    }
                                }
                            }
                            window.clear();
                        };
                        for (std::uint64_t i = t; i < total; i += threads) {
                            service::protocol::Request r = request;
                            r.experiment = mix[i % mix.size()];
                            // Deterministic duplicate pattern: request i is a
                            // duplicate iff its bucket falls below the ratio;
                            // the rest get a unique seed (fresh spec).
                            const bool duplicate =
                                static_cast<double>(i % 100) < duplicate_ratio * 100.0;
                            if (!duplicate) r.seed = request.seed + i + 1;
                            window.push_back(std::move(r));
                            if (window.size() >= pipeline) flush_window();
                        }
                        flush_window();
                    } catch (const std::exception& e) {
                        if (slice.first_error.empty()) slice.first_error = e.what();
                    }
                    slice.wall_s = std::chrono::duration<double>{
                        std::chrono::steady_clock::now() - slice_t0}
                                       .count();
                });
            }
            for (auto& w : workers) w.join();
            const double wall_s =
                std::chrono::duration<double>{std::chrono::steady_clock::now() - t0}
                    .count();

            BenchSlice all;
            for (const auto& slice : slices) {
                all.latencies_ms.insert(all.latencies_ms.end(),
                                        slice.latencies_ms.begin(),
                                        slice.latencies_ms.end());
                all.ok += slice.ok;
                all.rejected += slice.rejected;
                all.hot += slice.hot;
                all.disk += slice.disk;
                all.computed += slice.computed;
                if (all.first_error.empty()) all.first_error = slice.first_error;
            }
            const double sent = static_cast<double>(all.latencies_ms.size());
            std::printf(
                "bench: %llu requests (%u threads, pipeline %u, duplicate ratio "
                "%.2f, mix",
                static_cast<unsigned long long>(all.latencies_ms.size()), threads,
                pipeline, duplicate_ratio);
            for (const auto& m : mix) std::printf(" %s", m.c_str());
            std::printf(")\n");
            std::printf("  ok %llu  rejected %llu  (hot %llu, disk %llu, "
                        "computed %llu)\n",
                        static_cast<unsigned long long>(all.ok),
                        static_cast<unsigned long long>(all.rejected),
                        static_cast<unsigned long long>(all.hot),
                        static_cast<unsigned long long>(all.disk),
                        static_cast<unsigned long long>(all.computed));
            if (!all.latencies_ms.empty()) {
                const util::QuantileSummary q = util::quantile_summary(all.latencies_ms);
                std::printf("  wall %.3f s  %.1f req/s  p50 %.2f ms  p99 %.2f ms  "
                            "p99.9 %.2f ms\n",
                            wall_s, sent / wall_s, q.p50, q.p99, q.p999);
                // Per-client spread: a fair server keeps min and max close;
                // a convoying one starves some connections while others fly.
                double min_rate = 0, max_rate = 0;
                bool first = true;
                for (const auto& slice : slices) {
                    if (slice.latencies_ms.empty() || slice.wall_s <= 0) continue;
                    const double rate =
                        static_cast<double>(slice.latencies_ms.size()) / slice.wall_s;
                    min_rate = first ? rate : std::min(min_rate, rate);
                    max_rate = first ? rate : std::max(max_rate, rate);
                    first = false;
                }
                if (!first) {
                    std::printf("  per-client %.1f..%.1f req/s (min..max of %u)\n",
                                min_rate, max_rate, threads);
                }
            }
            if (!all.first_error.empty()) {
                std::fprintf(stderr, "hsw_query: first error: %s\n",
                             all.first_error.c_str());
            }
            if (!write_client_trace()) return 1;
            return all.ok == total ? 0 : 1;
        }

        // Single query.
        if (request.experiment.empty()) {
            std::fprintf(stderr, "hsw_query: --experiment required\n");
            return 2;
        }
        RetryingClient client{host, port, retries};
        std::uint64_t trace_walk = 0x51D0;
        std::optional<obs::trace::ContextScope> scope;
        if (trace) {
            const auto root = make_traced_root(trace_walk);
            scope.emplace(root);
            std::fprintf(stderr, "hsw_query: trace id %016llx%s\n",
                         static_cast<unsigned long long>(root.trace_id),
                         root.sampled() ? "" : " (unsampled)");
        }
        const auto response = client.call(request);
        if (!response.ok()) {
            std::fprintf(stderr, "hsw_query: %s: %s\n",
                         std::string{name(response.code)}.c_str(),
                         response.payload.c_str());
            return 1;
        }
        if (request.point != "*") {
            std::fwrite(response.payload.data(), 1, response.payload.size(), stdout);
            std::fprintf(stderr, "hsw_query: %s/%s: %zu bytes (%s)\n",
                         request.experiment.c_str(), request.point.c_str(),
                         response.payload.size(),
                         std::string{name(response.source)}.c_str());
            return write_client_trace() ? 0 : 1;
        }
        const auto sections = engine::unpack_sections(response.payload);
        if (!sections) {
            std::fprintf(stderr, "hsw_query: malformed artifact blob\n");
            return 1;
        }
        std::filesystem::create_directories(out_dir);
        std::size_t written = 0;
        for (const auto& [section_name, bytes] : *sections) {
            std::string_view sv = section_name;
            std::string_view kind;
            if (sv.starts_with("csv:")) {
                kind = "csv";
                sv.remove_prefix(4);
            } else if (sv.starts_with("render:")) {
                if (!renders) continue;
                kind = "render";
                sv.remove_prefix(7);
            } else {
                continue;
            }
            const std::filesystem::path path =
                std::filesystem::path{out_dir} / std::string{sv};
            if (!write_file(path, bytes)) {
                std::fprintf(stderr, "hsw_query: cannot write %s\n",
                             path.string().c_str());
                return 1;
            }
            std::fprintf(stderr, "hsw_query: wrote %s (%s, %zu bytes)\n",
                         path.string().c_str(), std::string{kind}.c_str(),
                         bytes.size());
            ++written;
        }
        std::fprintf(stderr, "hsw_query: %s: %zu artifact(s) (%s)\n",
                     request.experiment.c_str(), written,
                     std::string{name(response.source)}.c_str());
        return write_client_trace() ? 0 : 1;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "hsw_query: %s\n", e.what());
        return 1;
    }
}
