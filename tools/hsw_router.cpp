// hsw_router: fleet front door for hsw-survey-rpc.
//
//   hsw_router --shard a=127.0.0.1:7788 --shard b=127.0.0.1:7789 --port 7700
//
// terminates the survey protocol on one socket and routes each query by
// its content identity (SHA-256 of the spec) to a shard of hsw_surveyd
// daemons over a consistent-hash ring. Transport failures and
// Overloaded/ShuttingDown answers fail over to the key's replicas with
// bounded, jittered retry; shards that keep failing are ejected and
// re-probed in the background until they answer again. The `metrics`
// verb aggregates across the whole fleet, so `hsw_top --fleet` pointed
// at the router sees every shard.
//
// The `shutdown` verb (hsw_query --shutdown) stops the router only:
// shards are independent daemons with their own lifecycle.
#include <signal.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "obs/accesslog.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "router/router.hpp"
#include "router/server.hpp"
#include "router/upstream.hpp"
#include "util/port_file.hpp"

using namespace hsw;

namespace {

int usage(const char* argv0, int code) {
    std::FILE* out = code == 0 ? stdout : stderr;
    std::fprintf(
        out,
        "usage: %s --shard NAME=HOST:PORT [--shard ...] [options]\n"
        "\n"
        "Routes survey queries across a fleet of hsw_surveyd shards\n"
        "(consistent-hash placement, replica failover, fleet metrics).\n"
        "\n"
        "  --shard NAME=HOST:PORT  add a shard (repeat per shard; required)\n"
        "  --port P                listen port (default: 0 = kernel-assigned)\n"
        "  --port-file PATH        write the bound port to PATH (for port 0)\n"
        "  --bind ADDR             bind address (default: 127.0.0.1)\n"
        "  --replicas R            replica set size per key (default: 2)\n"
        "  --vnodes N              ring points per shard (default: 150)\n"
        "  --max-passes N          replica-set walks before Unavailable (default: 3)\n"
        "  --probe-interval-ms N   ejected-shard probe cadence, 0 = off (default: 250)\n"
        "  --connect-timeout-ms N  upstream dial timeout (default: 1000)\n"
        "  --upstream-timeout-ms N upstream per-call IO timeout (default: 10000)\n"
        "  --max-connections N     concurrent client connections (default: 128)\n"
        "  --trace-sample N        keep routing spans; N/1000 of untraced\n"
        "                          requests head-sampled into the access log\n"
        "  --access-log FILE       append one JSON line per routed request\n"
        "  --slow-us N             force-keep requests slower than N us\n"
        "  --flight-dir DIR        where flight-<pid>-<reason>.json dumps land\n"
        "                          (default: .); SIGQUIT and the crash\n"
        "                          handlers dump there\n"
        "  --quiet                 suppress startup / shutdown chatter\n",
        argv0);
    return code;
}

bool parse_unsigned(const char* text, unsigned long& out, unsigned long max) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(text, &end, 10);
    if (end == text || *end != '\0' || v > max) return false;
    out = v;
    return true;
}

// "NAME=HOST:PORT" -> endpoint; nullopt on any malformed piece.
std::optional<router::ShardEndpoint> parse_shard(const std::string& spec) {
    const auto eq = spec.find('=');
    if (eq == std::string::npos || eq == 0) return std::nullopt;
    const auto colon = spec.rfind(':');
    if (colon == std::string::npos || colon <= eq + 1) return std::nullopt;
    unsigned long port = 0;
    if (!parse_unsigned(spec.c_str() + colon + 1, port, 65535) || port == 0) {
        return std::nullopt;
    }
    router::ShardEndpoint ep;
    ep.name = spec.substr(0, eq);
    ep.host = spec.substr(eq + 1, colon - eq - 1);
    ep.port = static_cast<std::uint16_t>(port);
    return ep;
}

}  // namespace

int main(int argc, char** argv) {
    std::vector<router::ShardEndpoint> shards;
    router::RouterConfig cfg;
    router::RouterServerConfig server_cfg;
    std::string port_file;
    std::string access_log_file;
    std::string flight_dir;
    unsigned long trace_sample_permille = 0;
    unsigned long slow_us = 0;
    bool quiet = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
        unsigned long n = 0;
        if (arg == "--help" || arg == "-h") return usage(argv[0], 0);
        if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--shard") {
            const char* v = value();
            if (!v) return usage(argv[0], 2);
            auto ep = parse_shard(v);
            if (!ep) {
                std::fprintf(stderr, "%s: bad --shard '%s' (want NAME=HOST:PORT)\n",
                             argv[0], v);
                return 2;
            }
            shards.push_back(std::move(*ep));
        } else if (arg == "--port") {
            const char* v = value();
            if (!v || !parse_unsigned(v, n, 65535)) return usage(argv[0], 2);
            server_cfg.port = static_cast<std::uint16_t>(n);
        } else if (arg == "--port-file") {
            const char* v = value();
            if (!v) return usage(argv[0], 2);
            port_file = v;
        } else if (arg == "--bind") {
            const char* v = value();
            if (!v) return usage(argv[0], 2);
            server_cfg.bind_address = v;
        } else if (arg == "--replicas") {
            const char* v = value();
            if (!v || !parse_unsigned(v, n, 64) || n == 0) return usage(argv[0], 2);
            cfg.fleet.replicas = static_cast<unsigned>(n);
        } else if (arg == "--vnodes") {
            const char* v = value();
            if (!v || !parse_unsigned(v, n, 4096) || n == 0) return usage(argv[0], 2);
            cfg.fleet.vnodes = static_cast<unsigned>(n);
        } else if (arg == "--max-passes") {
            const char* v = value();
            if (!v || !parse_unsigned(v, n, 100) || n == 0) return usage(argv[0], 2);
            cfg.max_passes = static_cast<unsigned>(n);
        } else if (arg == "--probe-interval-ms") {
            const char* v = value();
            if (!v || !parse_unsigned(v, n, 1u << 30)) return usage(argv[0], 2);
            cfg.probe_interval = std::chrono::milliseconds{n};
        } else if (arg == "--connect-timeout-ms") {
            const char* v = value();
            if (!v || !parse_unsigned(v, n, 1u << 30) || n == 0) return usage(argv[0], 2);
            cfg.transport.connect_timeout = std::chrono::milliseconds{n};
        } else if (arg == "--upstream-timeout-ms") {
            const char* v = value();
            if (!v || !parse_unsigned(v, n, 1u << 30) || n == 0) return usage(argv[0], 2);
            cfg.transport.io_timeout = std::chrono::milliseconds{n};
        } else if (arg == "--max-connections") {
            const char* v = value();
            if (!v || !parse_unsigned(v, n, 1u << 16) || n == 0) return usage(argv[0], 2);
            server_cfg.max_connections = static_cast<unsigned>(n);
        } else if (arg == "--trace-sample") {
            const char* v = value();
            if (!v || !parse_unsigned(v, trace_sample_permille, 1000)) {
                return usage(argv[0], 2);
            }
        } else if (arg == "--access-log") {
            const char* v = value();
            if (!v) return usage(argv[0], 2);
            access_log_file = v;
        } else if (arg == "--slow-us") {
            const char* v = value();
            if (!v || !parse_unsigned(v, slow_us, 1ul << 40)) return usage(argv[0], 2);
        } else if (arg == "--flight-dir") {
            const char* v = value();
            if (!v) return usage(argv[0], 2);
            flight_dir = v;
        } else {
            std::fprintf(stderr, "%s: unknown option '%s'\n", argv[0], arg.c_str());
            return usage(argv[0], 2);
        }
    }
    if (shards.empty()) {
        std::fprintf(stderr, "%s: at least one --shard is required\n", argv[0]);
        return usage(argv[0], 2);
    }

    // The router's own counters ride the same registry the fleet scrape
    // merges in (pseudo-shard "router").
    obs::set_metrics_enabled(true);
    if (trace_sample_permille > 0) obs::trace::enable();
    obs::accesslog::set_policy(
        static_cast<double>(trace_sample_permille) / 1000.0, slow_us);
    obs::accesslog::set_identity("router");
    if (!access_log_file.empty()) obs::accesslog::set_enabled(true);

    obs::flight::Config flight_cfg;
    if (!flight_dir.empty()) flight_cfg.dir = flight_dir;
    flight_cfg.process = "router";
    obs::flight::configure(flight_cfg);
    obs::flight::install_crash_handlers();

    obs::accesslog::Writer access_log_writer;
    if (!access_log_file.empty() &&
        !access_log_writer.start(access_log_file)) {
        std::fprintf(stderr, "hsw_router: cannot open access log %s\n",
                     access_log_file.c_str());
        return 1;
    }

    sigset_t stop_signals;
    sigemptyset(&stop_signals);
    sigaddset(&stop_signals, SIGINT);
    sigaddset(&stop_signals, SIGTERM);
    sigaddset(&stop_signals, SIGQUIT);
    pthread_sigmask(SIG_BLOCK, &stop_signals, nullptr);

    router::TcpTransport transport;
    std::optional<router::Router> rtr;
    std::optional<router::RouterServer> server;
    try {
        rtr.emplace(router::FleetMap{std::move(shards), cfg.fleet}, transport,
                    cfg);
        server.emplace(*rtr, server_cfg);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "hsw_router: %s\n", e.what());
        return 1;
    }
    server->start();

    if (!port_file.empty() &&
        !util::write_port_file(port_file, server->port())) {
        std::fprintf(stderr, "hsw_router: cannot write %s\n", port_file.c_str());
        server->stop();
        return 1;
    }
    if (!quiet) {
        std::fprintf(stderr,
                     "hsw_router: listening on %s:%u (%zu shards, %u replicas, "
                     "%u vnodes/shard)\n",
                     server_cfg.bind_address.c_str(),
                     static_cast<unsigned>(server->port()),
                     rtr->fleet().shards().size(), rtr->fleet().replicas(),
                     cfg.fleet.vnodes);
    }

    while (!server->stopped()) {
        timespec tick{0, 200 * 1000 * 1000};
        const int sig = sigtimedwait(&stop_signals, nullptr, &tick);
        if (sig == SIGQUIT) {
            const std::string path = obs::flight::dump("sigquit");
            if (!quiet) {
                std::fprintf(stderr, "hsw_router: SIGQUIT, flight dump %s, draining\n",
                             path.empty() ? "FAILED" : path.c_str());
            }
            server->stop();
            break;
        }
        if (sig == SIGINT || sig == SIGTERM) {
            if (!quiet) {
                std::fprintf(stderr, "hsw_router: %s, draining\n",
                             sig == SIGINT ? "SIGINT" : "SIGTERM");
            }
            server->stop();
            break;
        }
    }
    server->wait();
    rtr->stop();
    access_log_writer.stop();
    if (!port_file.empty()) util::remove_port_file(port_file);

    if (!quiet) {
        std::fputs(rtr->stats().render().c_str(), stderr);
        std::fprintf(stderr, "hsw_router: stopped\n");
    }
    return 0;
}
