// hsw_trace: distributed trace collector for the survey fleet.
//
//   hsw_trace --from router=127.0.0.1:7700 --from shard0=127.0.0.1:7788
//             --from shard1=127.0.0.1:7789 --out merged.json
//
// pulls each process's span ring over the protocol's v1.4 `trace_dump`
// verb (or reads a Chrome trace-event file written by --trace / a flight
// dump), merges everything onto one timeline -- one named process track
// per source, spans correlated across processes by the trace_id each of
// them carries -- and writes a single JSON document Perfetto or
// chrome://tracing can open directly. A text critical-path summary of the
// slowest end-to-end traces is printed so the terminal answers "where did
// the time go" without a browser.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "obs/flight.hpp"
#include "obs/trace_merge.hpp"
#include "service/server.hpp"
#include "util/port_file.hpp"

using namespace hsw;

namespace {

int usage(const char* argv0, int code) {
    std::FILE* out = code == 0 ? stdout : stderr;
    std::fprintf(
        out,
        "usage: %s [--from NAME=HOST:PORT ...] [--file NAME=PATH ...] [options]\n"
        "\n"
        "Collects span traces from running daemons (protocol v1.4\n"
        "`trace_dump` verb) and/or trace files, merges them onto one\n"
        "Perfetto-compatible timeline keyed by trace_id, and prints a\n"
        "critical-path summary of the slowest traces.\n"
        "\n"
        "  --from NAME=HOST:PORT  pull the span ring of a live daemon; NAME\n"
        "                         becomes its process track (repeatable)\n"
        "  --file NAME=PATH       merge an existing Chrome trace-event file\n"
        "                         (hsw_query --trace-out, surveyd --trace,\n"
        "                         or the \"trace\" member of a flight dump)\n"
        "  --out FILE             write the merged timeline to FILE\n"
        "                         (atomic tmp+rename)\n"
        "  --slowest N            summarize the N slowest traces (default: 3)\n"
        "  --no-summary           skip the text summary (merge only)\n",
        argv0);
    return code;
}

// "NAME=REST" -> {name, rest}; nullopt when either half is empty.
std::optional<std::pair<std::string, std::string>> split_named(
    const std::string& spec) {
    const auto eq = spec.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= spec.size()) {
        return std::nullopt;
    }
    return std::make_pair(spec.substr(0, eq), spec.substr(eq + 1));
}

std::optional<std::string> pull_trace_dump(const std::string& host_port,
                                           std::string& error) {
    const auto colon = host_port.rfind(':');
    if (colon == std::string::npos || colon == 0) {
        error = "want HOST:PORT";
        return std::nullopt;
    }
    char* end = nullptr;
    const unsigned long port =
        std::strtoul(host_port.c_str() + colon + 1, &end, 10);
    if (end == host_port.c_str() + colon + 1 || *end != '\0' || port == 0 ||
        port > 65535) {
        error = "bad port in '" + host_port + "'";
        return std::nullopt;
    }
    try {
        service::ServiceClient client{host_port.substr(0, colon),
                                      static_cast<std::uint16_t>(port)};
        service::protocol::Request request;
        request.verb = service::protocol::Verb::TraceDump;
        const auto response = client.call(request);
        if (!response.ok()) {
            error = std::string{name(response.code)} + ": " + response.payload;
            return std::nullopt;
        }
        return response.payload;
    } catch (const std::exception& e) {
        error = e.what();
        return std::nullopt;
    }
}

std::optional<std::string> read_file(const std::string& path,
                                     std::string& error) {
    std::ifstream in{path, std::ios::binary};
    if (!in) {
        error = "cannot open " + path;
        return std::nullopt;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

}  // namespace

int main(int argc, char** argv) {
    std::vector<obs::trace_merge::ProcessTrace> traces;
    std::string out_file;
    unsigned long slowest = 3;
    bool summary = true;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
        if (arg == "--help" || arg == "-h") return usage(argv[0], 0);
        if (arg == "--from") {
            const char* v = value();
            if (!v) return usage(argv[0], 2);
            const auto named = split_named(v);
            if (!named) {
                std::fprintf(stderr, "%s: bad --from '%s' (want NAME=HOST:PORT)\n",
                             argv[0], v);
                return 2;
            }
            std::string error;
            const auto json = pull_trace_dump(named->second, error);
            if (!json) {
                std::fprintf(stderr, "hsw_trace: %s (%s): %s\n",
                             named->first.c_str(), named->second.c_str(),
                             error.c_str());
                return 1;
            }
            traces.push_back({named->first, *json});
        } else if (arg == "--file") {
            const char* v = value();
            if (!v) return usage(argv[0], 2);
            const auto named = split_named(v);
            if (!named) {
                std::fprintf(stderr, "%s: bad --file '%s' (want NAME=PATH)\n",
                             argv[0], v);
                return 2;
            }
            std::string error;
            const auto json = read_file(named->second, error);
            if (!json) {
                std::fprintf(stderr, "hsw_trace: %s\n", error.c_str());
                return 1;
            }
            traces.push_back({named->first, *json});
        } else if (arg == "--out") {
            const char* v = value();
            if (!v) return usage(argv[0], 2);
            out_file = v;
        } else if (arg == "--slowest") {
            const char* v = value();
            char* end = nullptr;
            if (!v) return usage(argv[0], 2);
            slowest = std::strtoul(v, &end, 10);
            if (end == v || *end != '\0' || slowest == 0) return usage(argv[0], 2);
        } else if (arg == "--no-summary") {
            summary = false;
        } else {
            std::fprintf(stderr, "%s: unknown option '%s'\n", argv[0], arg.c_str());
            return usage(argv[0], 2);
        }
    }
    if (traces.empty()) {
        std::fprintf(stderr, "hsw_trace: at least one --from or --file is required\n");
        return usage(argv[0], 2);
    }

    std::string merged;
    std::string error;
    if (!obs::trace_merge::merge_chrome_traces(traces, merged, &error)) {
        std::fprintf(stderr, "hsw_trace: merge failed: %s\n", error.c_str());
        return 1;
    }

    if (!out_file.empty()) {
        if (!obs::flight::write_text_atomic(out_file, merged)) {
            std::fprintf(stderr, "hsw_trace: cannot write %s\n", out_file.c_str());
            return 1;
        }
        std::fprintf(stderr, "hsw_trace: merged %zu source(s) into %s\n",
                     traces.size(), out_file.c_str());
    }

    if (summary) {
        const std::string text =
            obs::trace_merge::critical_path_summary(merged, slowest);
        if (text.empty()) {
            std::fprintf(stderr,
                         "hsw_trace: no trace-tagged spans in any source "
                         "(was the request traced?)\n");
        } else {
            std::fputs(text.c_str(), stdout);
        }
    }
    return 0;
}
