// hsw_surveyd: long-lived survey query daemon.
//
//   hsw_surveyd --port 7788 --workers 8 --cache .hsw-cache
//
// binds a loopback TCP socket and serves experiment queries through
// SurveyService: identical in-flight queries coalesce into one
// computation, repeat queries hit the sharded in-memory hot cache, and an
// overloaded service answers with structured rejections instead of
// stalling. Stop it with the protocol `shutdown` verb (hsw_query
// --shutdown) or SIGINT/SIGTERM; either way in-flight work drains before
// exit and the final stats block is printed to stderr. SIGQUIT first
// writes a flight-recorder dump (trace rings + metrics + access-log tail)
// and then drains like SIGTERM; SIGSEGV/SIGABRT attempt the same dump on
// a best-effort basis before the process dies.
#include <signal.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "obs/accesslog.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "service/server.hpp"
#include "util/port_file.hpp"

using namespace hsw;

namespace {

int usage(const char* argv0, int code) {
    std::FILE* out = code == 0 ? stdout : stderr;
    std::fprintf(
        out,
        "usage: %s [options]\n"
        "\n"
        "Serves survey experiment queries over a loopback TCP socket (see\n"
        "hsw_query for the matching client).\n"
        "\n"
        "  --port P             listen port (default: 0 = kernel-assigned)\n"
        "  --port-file PATH     write the bound port to PATH (for port 0)\n"
        "  --bind ADDR          bind address (default: 127.0.0.1)\n"
        "  --workers N          compute worker threads (default: 4)\n"
        "  --queue N            pending-job bound before Overloaded (default: 64)\n"
        "  --hot-cache-mb N     in-memory hot cache budget, 0 disables (default: 64)\n"
        "  --cache DIR          on-disk result cache (default: .hsw-cache)\n"
        "  --no-disk-cache      in-memory caching only\n"
        "  --max-connections N  concurrent client connections (default: 64)\n"
        "  --deadline-ms N      default per-request deadline, 0 = none (default: 0)\n"
        "  --trace FILE         capture span tracing; write Chrome trace-event\n"
        "                       JSON to FILE on shutdown (open in Perfetto)\n"
        "  --trace-sample N     keep spans for queries; N/1000 of untraced\n"
        "                       requests head-sampled into the access log\n"
        "                       (default: 0 = follow the client's decision)\n"
        "  --access-log FILE    append one JSON line per kept request to FILE\n"
        "  --slow-us N          force-keep requests slower than N us (default:\n"
        "                       0 = off)\n"
        "  --name NAME          identity stamped into access-log records and\n"
        "                       flight dumps (default: surveyd:<port>)\n"
        "  --flight-dir DIR     where flight-<pid>-<reason>.json dumps land\n"
        "                       (default: .); also enables a dump on graceful\n"
        "                       shutdown when given explicitly\n"
        "  --quiet              suppress startup / shutdown chatter\n",
        argv0);
    return code;
}

bool parse_unsigned(const char* text, unsigned long& out, unsigned long max) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(text, &end, 10);
    if (end == text || *end != '\0' || v > max) return false;
    out = v;
    return true;
}

}  // namespace

int main(int argc, char** argv) {
    service::ServerConfig cfg;
    cfg.service.disk_cache_dir = ".hsw-cache";
    std::string port_file;
    std::string trace_file;
    std::string access_log_file;
    std::string name;
    std::string flight_dir;
    unsigned long trace_sample_permille = 0;
    unsigned long slow_us = 0;
    bool quiet = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
        unsigned long n = 0;
        if (arg == "--help" || arg == "-h") return usage(argv[0], 0);
        if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--no-disk-cache") {
            cfg.service.disk_cache_dir.reset();
        } else if (arg == "--port") {
            const char* v = value();
            if (!v || !parse_unsigned(v, n, 65535)) return usage(argv[0], 2);
            cfg.port = static_cast<std::uint16_t>(n);
        } else if (arg == "--port-file") {
            const char* v = value();
            if (!v) return usage(argv[0], 2);
            port_file = v;
        } else if (arg == "--bind") {
            const char* v = value();
            if (!v) return usage(argv[0], 2);
            cfg.bind_address = v;
        } else if (arg == "--workers") {
            const char* v = value();
            if (!v || !parse_unsigned(v, n, 1024) || n == 0) return usage(argv[0], 2);
            cfg.service.workers = static_cast<unsigned>(n);
        } else if (arg == "--queue") {
            const char* v = value();
            if (!v || !parse_unsigned(v, n, 1u << 20) || n == 0) return usage(argv[0], 2);
            cfg.service.max_queue = n;
        } else if (arg == "--hot-cache-mb") {
            const char* v = value();
            if (!v || !parse_unsigned(v, n, 4096)) return usage(argv[0], 2);
            cfg.service.hot_cache.max_bytes = n << 20;
        } else if (arg == "--cache") {
            const char* v = value();
            if (!v) return usage(argv[0], 2);
            cfg.service.disk_cache_dir = v;
        } else if (arg == "--max-connections") {
            const char* v = value();
            if (!v || !parse_unsigned(v, n, 1u << 16) || n == 0) return usage(argv[0], 2);
            cfg.max_connections = static_cast<unsigned>(n);
        } else if (arg == "--deadline-ms") {
            const char* v = value();
            if (!v || !parse_unsigned(v, n, 1u << 30)) return usage(argv[0], 2);
            cfg.service.default_deadline = std::chrono::milliseconds{n};
        } else if (arg == "--trace") {
            const char* v = value();
            if (!v) return usage(argv[0], 2);
            trace_file = v;
        } else if (arg == "--trace-sample") {
            const char* v = value();
            if (!v || !parse_unsigned(v, trace_sample_permille, 1000)) {
                return usage(argv[0], 2);
            }
        } else if (arg == "--access-log") {
            const char* v = value();
            if (!v) return usage(argv[0], 2);
            access_log_file = v;
        } else if (arg == "--slow-us") {
            const char* v = value();
            if (!v || !parse_unsigned(v, slow_us, 1ul << 40)) return usage(argv[0], 2);
        } else if (arg == "--name") {
            const char* v = value();
            if (!v) return usage(argv[0], 2);
            name = v;
        } else if (arg == "--flight-dir") {
            const char* v = value();
            if (!v) return usage(argv[0], 2);
            flight_dir = v;
        } else {
            std::fprintf(stderr, "%s: unknown option '%s'\n", argv[0], arg.c_str());
            return usage(argv[0], 2);
        }
    }

    // The daemon always serves the metrics verb; spans are captured when
    // --trace asks for a shutdown file or --trace-sample turns the ring on
    // for the trace_dump verb.
    obs::set_metrics_enabled(true);
    if (!trace_file.empty() || trace_sample_permille > 0) obs::trace::enable();
    obs::accesslog::set_policy(
        static_cast<double>(trace_sample_permille) / 1000.0, slow_us);
    if (!access_log_file.empty()) obs::accesslog::set_enabled(true);

    // Flight recorder: graceful shutdown, the `dump` verb and the crash
    // handlers all share this configuration (and the same atomic writer).
    obs::flight::Config flight_cfg;
    if (!flight_dir.empty()) flight_cfg.dir = flight_dir;
    flight_cfg.process = name.empty() ? "surveyd" : name;
    obs::flight::configure(flight_cfg);
    obs::flight::install_crash_handlers();

    // Handle SIGINT/SIGTERM/SIGQUIT synchronously via sigtimedwait: a
    // plain handler could not safely call stop() (mutexes, condvars).
    sigset_t stop_signals;
    sigemptyset(&stop_signals);
    sigaddset(&stop_signals, SIGINT);
    sigaddset(&stop_signals, SIGTERM);
    sigaddset(&stop_signals, SIGQUIT);
    pthread_sigmask(SIG_BLOCK, &stop_signals, nullptr);

    std::optional<service::SurveyServer> server;
    try {
        server.emplace(cfg);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "hsw_surveyd: %s\n", e.what());
        return 1;
    }

    obs::accesslog::set_identity(
        name.empty() ? "surveyd:" + std::to_string(server->port()) : name);
    obs::accesslog::Writer access_log_writer;
    if (!access_log_file.empty() &&
        !access_log_writer.start(access_log_file)) {
        std::fprintf(stderr, "hsw_surveyd: cannot open access log %s\n",
                     access_log_file.c_str());
        return 1;
    }

    server->start();

    if (!port_file.empty()) {
        // Atomic publish (tmp + rename) so a polling client never reads a
        // half-written port number; removed again on graceful shutdown so
        // a fleet launcher can never dial a dead daemon's stale port.
        if (!util::write_port_file(port_file, server->port())) {
            std::fprintf(stderr, "hsw_surveyd: cannot write %s\n",
                         port_file.c_str());
            server->stop();
            return 1;
        }
    }
    if (!quiet) {
        std::fprintf(stderr,
                     "hsw_surveyd: listening on %s:%u (%u workers, queue %zu, "
                     "hot cache %zu MiB, disk cache %s)\n",
                     cfg.bind_address.c_str(), static_cast<unsigned>(server->port()),
                     cfg.service.workers, cfg.service.max_queue,
                     cfg.service.hot_cache.max_bytes >> 20,
                     cfg.service.disk_cache_dir
                         ? cfg.service.disk_cache_dir->string().c_str()
                         : "off");
    }

    // Wake every 200 ms to notice a protocol-driven shutdown; otherwise
    // park in sigtimedwait until SIGINT/SIGTERM/SIGQUIT.
    bool dumped_on_signal = false;
    while (!server->stopped()) {
        timespec tick{0, 200 * 1000 * 1000};
        const int sig = sigtimedwait(&stop_signals, nullptr, &tick);
        if (sig == SIGQUIT) {
            // Dump first, while the in-flight load is still visible in the
            // trace ring and metrics; then drain like SIGTERM.
            const std::string path = obs::flight::dump("sigquit");
            dumped_on_signal = !path.empty();
            if (!quiet) {
                std::fprintf(stderr, "hsw_surveyd: SIGQUIT, flight dump %s, draining\n",
                             path.empty() ? "FAILED" : path.c_str());
            }
            server->stop();
            break;
        }
        if (sig == SIGINT || sig == SIGTERM) {
            if (!quiet) {
                std::fprintf(stderr, "hsw_surveyd: %s, draining\n",
                             sig == SIGINT ? "SIGINT" : "SIGTERM");
            }
            server->stop();
            break;
        }
    }
    server->wait();
    access_log_writer.stop();  // final drain: graceful shutdown loses nothing
    if (!port_file.empty()) util::remove_port_file(port_file);

    // Graceful-shutdown snapshot rides the same dump path as the crash
    // handlers when a flight directory was asked for explicitly.
    if (!flight_dir.empty() && !dumped_on_signal) {
        const std::string path = obs::flight::dump("shutdown");
        if (!quiet && !path.empty()) {
            std::fprintf(stderr, "hsw_surveyd: flight dump %s\n", path.c_str());
        }
    }

    // A short-lived daemon run should leave a usable record: the final
    // ServiceStats block plus the full metrics snapshot, then the trace.
    if (!quiet) {
        std::fputs(server->service().stats().render().c_str(), stderr);
        std::fputs(obs::render_prometheus().c_str(), stderr);
    }
    if (!trace_file.empty()) {
        obs::trace::disable();
        if (!obs::trace::write_chrome_json(trace_file)) {
            std::fprintf(stderr, "hsw_surveyd: cannot write trace %s\n",
                         trace_file.c_str());
            return 1;
        }
        if (!quiet) {
            std::fprintf(stderr, "hsw_surveyd: wrote %zu trace events to %s\n",
                         obs::trace::recorded_events(), trace_file.c_str());
        }
    }
    if (!quiet) std::fprintf(stderr, "hsw_surveyd: stopped\n");
    return 0;
}
