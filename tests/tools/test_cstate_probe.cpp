#include <gtest/gtest.h>

#include "core/node.hpp"
#include "tools/cstate_probe.hpp"

namespace hsw::tools {
namespace {

using util::Frequency;

TEST(CstateProbe, LocalC3NearModelMean) {
    core::Node node;
    CstateProbe probe{node};
    CstateProbeConfig cfg;
    cfg.state = cstates::CState::C3;
    cfg.scenario = cstates::WakeScenario::Local;
    cfg.core_frequency = Frequency::ghz(2.5);
    cfg.samples = 60;
    const auto r = probe.measure(cfg);
    ASSERT_EQ(r.latencies_us.size(), 60u);
    EXPECT_NEAR(r.mean(), 15.5, 0.5);  // 14 us base + 1.5 us above 1.5 GHz
    EXPECT_LT(r.stddev(), 0.5);
}

TEST(CstateProbe, C6SlowerAtLowFrequency) {
    core::Node node;
    CstateProbe probe{node};
    CstateProbeConfig cfg;
    cfg.state = cstates::CState::C6;
    cfg.samples = 40;
    cfg.core_frequency = Frequency::ghz(1.2);
    const double slow = probe.measure(cfg).mean();
    cfg.core_frequency = Frequency::ghz(2.5);
    const double fast = probe.measure(cfg).mean();
    EXPECT_GT(slow, fast + 4.0);  // 8 us extra at 1.2 vs 2 us at 2.5
}

TEST(CstateProbe, PackageScenarioSlowest) {
    core::Node node;
    CstateProbe probe{node};
    CstateProbeConfig cfg;
    cfg.state = cstates::CState::C6;
    cfg.samples = 40;
    cfg.core_frequency = Frequency::ghz(2.0);
    cfg.scenario = cstates::WakeScenario::Local;
    const double local = probe.measure(cfg).mean();
    cfg.scenario = cstates::WakeScenario::RemoteActive;
    const double remote = probe.measure(cfg).mean();
    cfg.scenario = cstates::WakeScenario::RemoteIdle;
    const double pkg = probe.measure(cfg).mean();
    EXPECT_LT(local, remote);
    EXPECT_LT(remote, pkg);
    EXPECT_GT(pkg - remote, 7.0);  // package C6 adds ~8 us + pkg C3 extra
}

TEST(CstateProbe, RemoteScenarioNeedsTwoSockets) {
    core::NodeConfig cfg;
    cfg.sockets = 1;
    core::Node node{cfg};
    CstateProbe probe{node};
    CstateProbeConfig pc;
    pc.scenario = cstates::WakeScenario::RemoteActive;
    EXPECT_THROW((void)probe.measure(pc), std::invalid_argument);
}

TEST(CstateProbe, MeasurementsBelowAcpiClaims) {
    core::Node node;
    CstateProbe probe{node};
    for (auto state : {cstates::CState::C3, cstates::CState::C6}) {
        CstateProbeConfig cfg;
        cfg.state = state;
        cfg.samples = 30;
        const auto r = probe.measure(cfg);
        EXPECT_LT(r.mean(), cstates::acpi_reported_latency(state).as_us());
    }
}

}  // namespace
}  // namespace hsw::tools
