#include <gtest/gtest.h>

#include "core/node.hpp"
#include "tools/ftalat.hpp"

namespace hsw::tools {
namespace {

using util::Time;

FtalatConfig quick_config(DelayMode mode, unsigned samples = 60) {
    FtalatConfig cfg;
    cfg.cpu = 0;
    cfg.from_ratio = 12;
    cfg.to_ratio = 13;
    cfg.delay_mode = mode;
    cfg.samples = samples;
    return cfg;
}

TEST(Ftalat, RandomModeSpansTheOpportunityGrid) {
    core::Node node;
    Ftalat ftalat{node};
    const auto r = ftalat.measure(quick_config(DelayMode::Random, 200));
    ASSERT_EQ(r.latencies_us.size(), 200u);
    // Figure 3: minimum ~21 us, maximum ~524 us.
    EXPECT_LT(r.min(), 60.0);
    EXPECT_GT(r.min(), 15.0);
    EXPECT_GT(r.max(), 450.0);
    EXPECT_LT(r.max(), 560.0);
}

TEST(Ftalat, ImmediateModeClustersNearFullPeriod) {
    // "around 500 us in the majority of the results" -- a few samples race
    // the grid when the request coincides with an opportunity.
    core::Node node;
    Ftalat ftalat{node};
    const auto r = ftalat.measure(quick_config(DelayMode::Immediate, 100));
    EXPECT_NEAR(r.median(), 500.0, 40.0);
    unsigned near_full_period = 0;
    for (double v : r.latencies_us) {
        if (v > 430.0 && v < 560.0) ++near_full_period;
    }
    EXPECT_GT(near_full_period, 80u);
}

TEST(Ftalat, FourHundredMicrosecondDelayYieldsAboutHundred) {
    core::Node node;
    Ftalat ftalat{node};
    auto cfg = quick_config(DelayMode::Fixed, 100);
    cfg.fixed_delay = Time::us(400);
    const auto r = ftalat.measure(cfg);
    EXPECT_NEAR(r.median(), 100.0, 35.0);
}

TEST(Ftalat, FiveHundredMicrosecondDelayIsBimodal) {
    core::Node node;
    Ftalat ftalat{node};
    auto cfg = quick_config(DelayMode::Fixed, 300);
    cfg.fixed_delay = Time::us(500);
    const auto r = ftalat.measure(cfg);
    unsigned immediate = 0;
    unsigned long_wait = 0;
    for (double v : r.latencies_us) {
        if (v < 150.0) ++immediate;
        if (v > 400.0) ++long_wait;
    }
    // "some yield an immediate frequency change while others require over
    // 500 us" (Section VI-A).
    EXPECT_GT(immediate, 10u);
    EXPECT_GT(long_wait, 10u);
    EXPECT_EQ(immediate + long_wait, r.latencies_us.size());
}

TEST(Ftalat, StatisticsHelpers) {
    FtalatResult r;
    r.latencies_us = {10, 20, 30, 40, 50};
    EXPECT_DOUBLE_EQ(r.min(), 10);
    EXPECT_DOUBLE_EQ(r.max(), 50);
    EXPECT_DOUBLE_EQ(r.median(), 30);
    EXPECT_DOUBLE_EQ(r.mean(), 30);
    EXPECT_GT(r.ci99(), 0.0);
}

TEST(Ftalat, SameSocketCoresSwitchTogether) {
    core::Node node;
    Ftalat ftalat{node};
    const auto pair = ftalat.measure_pair(node.cpu_id(0, 0), node.cpu_id(0, 5), 12, 13);
    ASSERT_NE(pair.change_a, Time::zero());
    ASSERT_NE(pair.change_b, Time::zero());
    EXPECT_LT(std::abs((pair.change_a - pair.change_b).as_us()), 25.0);
}

TEST(Ftalat, DifferentSocketsSwitchIndependently) {
    // With independent grid phases the completion times differ by hundreds
    // of microseconds on average; assert they are NOT locked together.
    double max_delta = 0.0;
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        core::NodeConfig cfg;
        cfg.seed = seed * 97;
        core::Node node{cfg};
        Ftalat ftalat{node};
        const auto pair =
            ftalat.measure_pair(node.cpu_id(0, 0), node.cpu_id(1, 0), 12, 13);
        max_delta = std::max(max_delta,
                             std::abs((pair.change_a - pair.change_b).as_us()));
    }
    EXPECT_GT(max_delta, 40.0);
}

TEST(Ftalat, LegacyPartSwitchesImmediately) {
    static arch::Sku he = arch::xeon_e5_2680_v3();
    he.generation = arch::Generation::HaswellHE;
    core::NodeConfig cfg;
    cfg.sku = &he;
    core::Node node{cfg};
    Ftalat ftalat{node};
    const auto r = ftalat.measure(quick_config(DelayMode::Random, 50));
    EXPECT_LT(r.median(), 40.0);  // only the ~10 us switching time
}

}  // namespace
}  // namespace hsw::tools
