#include <gtest/gtest.h>

#include "tools/perfctr.hpp"
#include "workloads/mixes.hpp"

namespace hsw::tools {
namespace {

using util::Time;

TEST(Perfctr, ClockGroupReportsFrequencies) {
    core::Node node;
    node.set_workload(0, &workloads::while_one(), 1);
    node.set_pstate(0, util::Frequency::ghz(2.0));
    node.run_for(Time::ms(5));
    Perfctr tool{node};
    const auto g = tool.measure(MetricGroup::Clock, 0, Time::ms(500));
    EXPECT_NEAR(g.value("Clock [MHz]"), 2000.0, 20.0);
    EXPECT_NEAR(g.value("Uncore Clock [MHz]"), 1750.0, 20.0);  // Table III ladder
    EXPECT_NEAR(g.value("C0 residency"), 1.0, 0.01);
    EXPECT_GT(g.value("IPC"), 0.0);
    EXPECT_NEAR(g.value("CPI") * g.value("IPC"), 1.0, 1e-9);
}

TEST(Perfctr, EnergyGroupMatchesRaplWindow) {
    core::Node node;
    node.set_all_workloads(&workloads::firestarter(), 2);
    node.request_turbo_all();
    node.run_for(Time::ms(50));
    Perfctr tool{node};
    const auto g = tool.measure(MetricGroup::Energy, 0, Time::sec(1));
    EXPECT_NEAR(g.value("Power PKG [W]"), 120.0, 2.5);  // TDP limited
    EXPECT_GT(g.value("Power DRAM [W]"), 10.0);
    EXPECT_NEAR(g.value("Energy PKG [J]"), g.value("Power PKG [W]"), 0.01);
}

TEST(Perfctr, MemGroupReportsBandwidths) {
    core::Node node;
    for (unsigned c = 0; c < 12; ++c) {
        node.set_workload(node.cpu_id(0, c), &workloads::memory_stream(), 1);
    }
    node.run_for(Time::ms(20));
    Perfctr tool{node};
    const auto g = tool.measure(MetricGroup::Mem, 0, Time::ms(200));
    EXPECT_GT(g.value("Memory read BW [GB/s]"), 40.0);
    EXPECT_GT(g.value("L3 read BW [GB/s]"), 100.0);
}

TEST(Perfctr, RenderAndUnknownMetric) {
    core::Node node;
    Perfctr tool{node};
    const auto g = tool.measure(MetricGroup::Clock, 0, Time::ms(100));
    EXPECT_NE(g.render().find("CLOCK"), std::string::npos);
    EXPECT_THROW((void)g.value("does not exist"), std::out_of_range);
}

}  // namespace
}  // namespace hsw::tools
