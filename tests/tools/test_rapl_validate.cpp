#include <gtest/gtest.h>

#include "core/node.hpp"
#include "tools/rapl_validate.hpp"
#include "workloads/mixes.hpp"

namespace hsw::tools {
namespace {

using util::Time;

TEST(RaplValidator, IdlePointMatchesBaseline) {
    core::Node node;
    RaplValidator validator{node};
    const auto p = validator.run_point(nullptr, 0, 1, Time::sec(1));
    EXPECT_EQ(p.workload, "idle");
    EXPECT_NEAR(p.ac_watts, 261.5, 3.0);
    EXPECT_NEAR(p.rapl_watts, 32.3, 3.0);
}

TEST(RaplValidator, LoadedPointScalesWithConcurrency) {
    core::Node node;
    RaplValidator validator{node};
    const auto one = validator.run_point(&workloads::compute(), 1, 1, Time::sec(1));
    const auto twelve = validator.run_point(&workloads::compute(), 12, 1, Time::sec(1));
    EXPECT_GT(twelve.rapl_watts, one.rapl_watts + 30.0);
    EXPECT_GT(twelve.ac_watts, one.ac_watts + 30.0);
}

TEST(RaplValidator, AnalyzeComputesGlobalAndPerWorkloadFits) {
    std::vector<RaplSamplePoint> pts;
    // Two synthetic workloads on the same global line: spread ~0.
    for (double ac = 300; ac <= 500; ac += 50) {
        pts.push_back({"a", 1, 1, ac, 0.9 * ac - 200});
        pts.push_back({"b", 1, 1, ac + 10, 0.9 * (ac + 10) - 200});
    }
    const auto report = analyze(pts);
    EXPECT_NEAR(report.linear.slope, 0.9, 1e-6);
    EXPECT_GT(report.linear.r_squared, 0.999);
    EXPECT_EQ(report.per_workload.size(), 2u);
    EXPECT_LT(report.slope_spread, 0.01);
}

TEST(RaplValidator, BiasedWorkloadsShowSlopeSpread) {
    std::vector<RaplSamplePoint> pts;
    for (double ac = 300; ac <= 500; ac += 50) {
        pts.push_back({"lean", 1, 1, ac, 0.5 * ac - 100});
        pts.push_back({"steep", 1, 1, ac, 1.2 * ac - 300});
    }
    const auto report = analyze(pts);
    EXPECT_GT(report.slope_spread, 0.2);
}

TEST(RaplValidator, SuiteCoversAllWorkloadsPlusIdle) {
    core::Node node;
    RaplValidator validator{node};
    const auto report = validator.run_suite(Time::ms(500));
    // idle + 6 workloads x (3 concurrency + 1 HT) = 25 points.
    EXPECT_EQ(report.points.size(), 25u);
    EXPECT_EQ(report.points.front().workload, "idle");
    // Haswell: near-perfect global fit.
    EXPECT_GT(report.quadratic.r_squared, 0.999);
}

}  // namespace
}  // namespace hsw::tools
