#include <gtest/gtest.h>

#include "core/node.hpp"
#include "tools/membench.hpp"

namespace hsw::tools {
namespace {

using util::Frequency;

TEST(Membench, WorkingSetSizesMatchPaper) {
    EXPECT_EQ(Membench::kL3WorkingSet, 17u * 1024 * 1024);
    EXPECT_EQ(Membench::kDramWorkingSet, 350u * 1024 * 1024);
}

TEST(Membench, MeasuresOnRequestedSocket) {
    core::Node node;
    Membench bench{node, 1};
    const auto p = bench.measure(4, 1, Frequency::ghz(2.0));
    EXPECT_EQ(p.cores, 4u);
    EXPECT_NEAR(p.core_ghz, 2.0, 0.01);
    EXPECT_GT(p.l3_gbs, 0.0);
    EXPECT_GT(p.dram_gbs, 0.0);
    // Memory-stall scenario drives the uncore to max (Section V-A).
    EXPECT_NEAR(p.uncore_ghz, 3.0, 0.05);
}

TEST(Membench, ConcurrencyClampedToSocketCores) {
    core::Node node;
    Membench bench{node, 1};
    const auto p = bench.measure(64, 1, Frequency::ghz(2.0));
    EXPECT_EQ(p.cores, 12u);
}

TEST(Membench, DramFlatL3ScalesWithFrequency) {
    core::Node node;
    Membench bench{node, 1};
    const auto lo = bench.measure(12, 2, Frequency::ghz(1.2));
    const auto hi = bench.measure(12, 2, Frequency::ghz(2.5));
    EXPECT_NEAR(lo.dram_gbs / hi.dram_gbs, 1.0, 0.03);  // Fig. 7b
    EXPECT_LT(lo.l3_gbs / hi.l3_gbs, 0.7);              // Fig. 7a
}

TEST(Membench, CleansUpWorkloads) {
    core::Node node;
    Membench bench{node, 1};
    (void)bench.measure(12, 2, Frequency::ghz(2.0));
    for (unsigned cpu = 0; cpu < node.cpu_count(); ++cpu) {
        EXPECT_NE(node.core_state(cpu), cstates::CState::C0);
    }
}

}  // namespace
}  // namespace hsw::tools
