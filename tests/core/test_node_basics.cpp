#include <gtest/gtest.h>

#include "core/node.hpp"
#include "msr/addresses.hpp"
#include "workloads/mixes.hpp"

namespace hsw::core {
namespace {

using util::Frequency;
using util::Time;

TEST(Node, DefaultIsThePaperTestSystem) {
    Node node;
    EXPECT_EQ(node.socket_count(), 2u);
    EXPECT_EQ(node.cores_per_socket(), 12u);
    EXPECT_EQ(node.cpu_count(), 24u);
    EXPECT_EQ(node.sku().model, "Intel Xeon E5-2680 v3");
    EXPECT_EQ(node.generation(), arch::Generation::HaswellEP);
}

TEST(Node, CpuIdMapping) {
    Node node;
    EXPECT_EQ(node.cpu_id(0, 0), 0u);
    EXPECT_EQ(node.cpu_id(1, 0), 12u);
    EXPECT_EQ(node.socket_of(13), 1u);
    EXPECT_EQ(node.core_of(13), 1u);
}

TEST(Node, TimeAdvances) {
    Node node;
    EXPECT_EQ(node.now().as_ns(), 0);
    node.run_for(Time::ms(3));
    EXPECT_EQ(node.now(), Time::ms(3));
    node.run_until(Time::ms(10));
    EXPECT_EQ(node.now(), Time::ms(10));
}

TEST(Node, WorkloadWakesCoreAndCountersAdvance) {
    Node node;
    node.set_workload(0, &workloads::while_one(), 1);
    EXPECT_EQ(node.core_state(0), cstates::CState::C0);
    const auto a0 = node.msrs().read(0, msr::IA32_APERF);
    node.run_for(Time::ms(5));
    const auto a1 = node.msrs().read(0, msr::IA32_APERF);
    EXPECT_GT(a1, a0);
    // A parked core's APERF does not move.
    const auto b0 = node.msrs().read(5, msr::IA32_APERF);
    node.run_for(Time::ms(5));
    EXPECT_EQ(node.msrs().read(5, msr::IA32_APERF), b0);
}

TEST(Node, PstateRequestAppliesAtOpportunity) {
    Node node;
    node.set_workload(0, &workloads::while_one(), 1);
    node.set_pstate(0, Frequency::ghz(1.5));
    // Not instantaneous: the change waits for the PCU grid.
    node.run_for(Time::ms(2));  // > one full grid period
    EXPECT_DOUBLE_EQ(node.core_frequency(0).as_ghz(), 1.5);
    // IA32_PERF_STATUS reflects the granted ratio.
    EXPECT_EQ((node.msrs().read(0, msr::IA32_PERF_STATUS) >> 8) & 0xFF, 15u);
}

TEST(Node, MperfCountsAtNominalWhileRunning) {
    Node node;
    node.set_workload(0, &workloads::while_one(), 1);
    node.set_pstate(0, Frequency::ghz(1.2));
    node.run_for(Time::ms(2));
    const auto m0 = node.msrs().read(0, msr::IA32_MPERF);
    const auto a0 = node.msrs().read(0, msr::IA32_APERF);
    node.run_for(Time::ms(10));
    const auto dm = node.msrs().read(0, msr::IA32_MPERF) - m0;
    const auto da = node.msrs().read(0, msr::IA32_APERF) - a0;
    // APERF/MPERF ratio = actual/nominal = 1.2/2.5.
    EXPECT_NEAR(static_cast<double>(da) / static_cast<double>(dm), 1.2 / 2.5, 0.01);
}

TEST(Node, EpbWritesReachTheSocketPolicy) {
    Node node;
    node.set_epb(msr::EpbPolicy::Performance);
    EXPECT_EQ(node.socket(0).epb(), msr::EpbPolicy::Performance);
    EXPECT_EQ(node.socket(1).epb(), msr::EpbPolicy::Performance);
    EXPECT_EQ(node.msrs().read(0, msr::IA32_ENERGY_PERF_BIAS), 0u);
    node.msrs().write(13, msr::IA32_ENERGY_PERF_BIAS, 15);
    EXPECT_EQ(node.socket(1).epb(), msr::EpbPolicy::EnergySaving);
    EXPECT_EQ(node.socket(0).epb(), msr::EpbPolicy::Performance);
}

TEST(Node, UncoreCounterTracksUncoreClock) {
    Node node;
    node.set_workload(0, &workloads::while_one(), 1);
    node.set_pstate_all(Frequency::ghz(2.0));
    node.run_for(Time::ms(5));
    const auto u0 = node.msrs().read(0, msr::U_MSR_PMON_UCLK_FIXED_CTR);
    node.run_for(Time::sec(1));
    const auto u1 = node.msrs().read(0, msr::U_MSR_PMON_UCLK_FIXED_CTR);
    const double ghz = static_cast<double>(u1 - u0) * 1e-9;
    EXPECT_NEAR(ghz, 1.75, 0.02);  // Table III: 2.0 GHz core -> 1.75 uncore
}

TEST(Node, TraceRecordsPstateLifecycle) {
    NodeConfig cfg;
    cfg.trace_enabled = true;
    Node node{cfg};
    node.set_workload(0, &workloads::while_one(), 1);
    node.run_for(Time::ms(2));
    node.trace().clear();
    node.set_pstate(0, Frequency::ghz(1.3));
    node.run_for(Time::ms(2));
    EXPECT_FALSE(node.trace().filter("pstate", "cpu0").empty());
    EXPECT_FALSE(node.trace().filter("pcu", "socket0").empty());
}

TEST(Node, UnknownMsrFaults) {
    Node node;
    EXPECT_THROW((void)node.msrs().read(0, 0x123), msr::MsrError);
}

TEST(Node, SingleSocketConfig) {
    NodeConfig cfg;
    cfg.sockets = 1;
    Node node{cfg};
    EXPECT_EQ(node.cpu_count(), 12u);
    node.set_workload(0, &workloads::compute(), 1);
    node.run_for(Time::ms(10));
    EXPECT_GT(node.msrs().read(0, msr::IA32_FIXED_CTR0), 0u);
}

TEST(Node, EighteenCoreSkuWorks) {
    NodeConfig cfg;
    cfg.sku = &arch::xeon_e5_2699_v3();
    Node node{cfg};
    EXPECT_EQ(node.cores_per_socket(), 18u);
    node.set_all_workloads(&workloads::compute(), 1);
    node.run_for(Time::ms(10));
    EXPECT_GT(node.msrs().read(17, msr::IA32_FIXED_CTR0), 0u);
}

}  // namespace
}  // namespace hsw::core
