#include <gtest/gtest.h>

#include "core/node.hpp"
#include "msr/addresses.hpp"
#include "workloads/mixes.hpp"

namespace hsw::core {
namespace {

using util::Time;

TEST(Residency, CoreCountersTrackParkState) {
    Node node;
    node.set_workload(0, &workloads::while_one(), 1);  // keep system alive
    node.park(1, cstates::CState::C3);
    node.park(2, cstates::CState::C6);
    node.run_for(Time::ms(100));

    const double tsc_per_100ms = 2.5e9 * 0.1;
    const auto c3 = node.msrs().read(1, msr::MSR_CORE_C3_RESIDENCY);
    const auto c6 = node.msrs().read(2, msr::MSR_CORE_C6_RESIDENCY);
    EXPECT_NEAR(static_cast<double>(c3), tsc_per_100ms, tsc_per_100ms * 0.05);
    EXPECT_NEAR(static_cast<double>(c6), tsc_per_100ms, tsc_per_100ms * 0.05);
    // Cross-state counters stay at zero.
    EXPECT_EQ(node.msrs().read(1, msr::MSR_CORE_C6_RESIDENCY), 0u);
    EXPECT_EQ(node.msrs().read(2, msr::MSR_CORE_C3_RESIDENCY), 0u);
    // The running core accumulates no idle residency.
    EXPECT_EQ(node.msrs().read(0, msr::MSR_CORE_C3_RESIDENCY), 0u);
}

TEST(Residency, PackageC6OnlyWhenWholeSystemIdle) {
    Node node;
    node.run_for(Time::ms(50));  // fully idle: all cores default to C6
    const auto pc6_idle = node.msrs().read(0, msr::MSR_PKG_C6_RESIDENCY);
    EXPECT_GT(pc6_idle, 0u);

    // A single busy core anywhere blocks package sleep on BOTH sockets.
    node.set_workload(node.cpu_id(1, 0), &workloads::while_one(), 1);
    node.run_for(Time::ms(50));
    const auto pc6_after = node.msrs().read(0, msr::MSR_PKG_C6_RESIDENCY);
    EXPECT_NEAR(static_cast<double>(pc6_after), static_cast<double>(pc6_idle),
                2.5e9 * 0.002);  // at most ~2 ms of slack from event timing
}

TEST(Residency, PackageC3WhenShallowestCoreIsC3) {
    Node node;
    for (unsigned cpu = 0; cpu < node.cpu_count(); ++cpu) {
        node.park(cpu, cstates::CState::C3);
    }
    node.run_for(Time::ms(50));
    EXPECT_GT(node.msrs().read(0, msr::MSR_PKG_C3_RESIDENCY), 0u);
    EXPECT_EQ(node.msrs().read(0, msr::MSR_PKG_C6_RESIDENCY), 0u);
}

TEST(Voltage, PerfStatusReportsVoltage) {
    Node node;
    node.set_workload(0, &workloads::compute(), 1);
    node.set_pstate(0, util::Frequency::ghz(2.0));
    node.run_for(Time::ms(3));
    const auto status = node.msrs().read(0, msr::IA32_PERF_STATUS);
    const double volts = static_cast<double>((status >> 32) & 0xFFFF) / 8192.0;
    // V(2.0) = 0.55 + 0.2 + 0.14 = 0.89 V, +- socket/core factors.
    EXPECT_NEAR(volts, 0.9, 0.05);
}

TEST(Voltage, Socket0CoresReadHigherThanSocket1) {
    // Section III: "the cores' voltages for a given p-state differ on the
    // two processors" -- averaged over the cores, socket 0 is higher.
    Node node;
    node.set_all_workloads(&workloads::compute(), 1);
    node.set_pstate_all(util::Frequency::ghz(2.0));
    node.run_for(Time::ms(3));
    auto avg_voltage = [&](unsigned socket) {
        double sum = 0.0;
        for (unsigned c = 0; c < node.cores_per_socket(); ++c) {
            const auto status =
                node.msrs().read(node.cpu_id(socket, c), msr::IA32_PERF_STATUS);
            sum += static_cast<double>((status >> 32) & 0xFFFF) / 8192.0;
        }
        return sum / node.cores_per_socket();
    };
    EXPECT_GT(avg_voltage(0), avg_voltage(1));
}

TEST(Voltage, CoresOnOneSocketDiffer) {
    Node node;
    node.set_all_workloads(&workloads::compute(), 1);
    node.set_pstate_all(util::Frequency::ghz(2.0));
    node.run_for(Time::ms(3));
    double lo = 10.0;
    double hi = 0.0;
    for (unsigned c = 0; c < node.cores_per_socket(); ++c) {
        const auto status = node.msrs().read(c, msr::IA32_PERF_STATUS);
        const double v = static_cast<double>((status >> 32) & 0xFFFF) / 8192.0;
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }
    EXPECT_GT(hi - lo, 0.001);  // per-core silicon variation visible
    EXPECT_LT(hi - lo, 0.06);
}

}  // namespace
}  // namespace hsw::core
