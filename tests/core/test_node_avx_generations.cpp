// End-to-end checks for AVX frequency licensing (Section II-F) and the
// generation-specific uncore clocking at the node level.
#include <gtest/gtest.h>

#include "core/node.hpp"
#include "msr/addresses.hpp"
#include "perfmon/counters.hpp"
#include "workloads/mixes.hpp"

namespace hsw::core {
namespace {

using util::Frequency;
using util::Time;

TEST(NodeAvx, AvxHeavyCodeCappedAtAvxTurbo) {
    // A single dgemm core at turbo request: non-AVX bin would be 3.3 GHz,
    // but the AVX license caps it at the 1-2 core AVX bin (3.1 GHz).
    Node node;
    node.set_workload(0, &workloads::dgemm(), 1);
    node.request_turbo_all();
    node.run_for(Time::ms(5));
    EXPECT_NEAR(node.core_frequency(0).as_ghz(), 3.1, 0.01);
}

TEST(NodeAvx, ScalarCodeReachesFullTurbo) {
    Node node;
    node.set_workload(0, &workloads::while_one(), 1);  // no AVX at all
    node.request_turbo_all();
    node.run_for(Time::ms(5));
    EXPECT_NEAR(node.core_frequency(0).as_ghz(), 3.3, 0.01);
}

TEST(NodeAvx, LicenseRelaxesOneMillisecondAfterAvxEnds) {
    Node node;
    node.set_workload(0, &workloads::dgemm(), 1);
    node.request_turbo_all();
    node.run_for(Time::ms(5));
    ASSERT_NEAR(node.core_frequency(0).as_ghz(), 3.1, 0.01);

    // Switch to scalar code: the license persists for ~1 ms, then the next
    // opportunity grants the full turbo bin.
    node.set_workload(0, &workloads::while_one(), 1);
    node.run_for(Time::us(300));
    EXPECT_NEAR(node.core_frequency(0).as_ghz(), 3.1, 0.01);  // still licensed
    node.run_for(Time::ms(2));
    EXPECT_NEAR(node.core_frequency(0).as_ghz(), 3.3, 0.01);  // relaxed
}

TEST(NodeAvx, GuaranteedFloorUnderFullAvxLoad) {
    // All cores dgemm at turbo: TDP-limited, but never below the 2.1 GHz
    // AVX base (Section II-F: the only guaranteed level).
    Node node;
    node.set_all_workloads(&workloads::dgemm(), 2);
    node.request_turbo_all();
    node.run_for(Time::ms(50));
    for (unsigned cpu = 0; cpu < node.cpu_count(); ++cpu) {
        EXPECT_GE(node.core_frequency(cpu).as_ghz(), 2.1 - 1e-9);
    }
}

TEST(NodeGenerations, SandyBridgeUncoreFollowsCoreClock) {
    NodeConfig cfg;
    cfg.sku = &arch::xeon_e5_2670();
    Node node{cfg};
    node.set_workload(0, &workloads::memory_stream(), 1);  // stalls irrelevant
    for (double ghz : {1.4, 2.0, 2.6}) {
        node.set_pstate_all(Frequency::ghz(ghz));
        node.run_for(Time::ms(3));
        EXPECT_NEAR(node.uncore_frequency(0).as_ghz(), ghz, 0.01) << ghz;
    }
}

TEST(NodeGenerations, WestmereUncoreFixed) {
    NodeConfig cfg;
    cfg.sku = &arch::xeon_x5670();
    Node node{cfg};
    node.set_workload(0, &workloads::memory_stream(), 1);
    for (double ghz : {1.6, 2.4, 2.93}) {
        node.set_pstate_all(Frequency::ghz(ghz));
        node.run_for(Time::ms(3));
        EXPECT_NEAR(node.uncore_frequency(0).as_ghz(), 2.66, 0.01) << ghz;
    }
}

TEST(NodeGenerations, HyperThreadingRaisesFirestarterIpc) {
    // Section VIII: 3.1 executed instructions per cycle with HT, 2.8 without.
    auto measure_ipc = [](unsigned threads) {
        Node node;
        node.set_all_workloads(&workloads::firestarter(), threads);
        node.set_pstate_all(Frequency::ghz(2.1));  // below TDP: ratio fixed
        node.run_for(Time::ms(20));
        perfmon::CounterReader reader{node.msrs(), node.sku().nominal_frequency};
        const auto before = reader.snapshot(0, node.now());
        node.run_for(Time::sec(1));
        return reader.derive(before, reader.snapshot(0, node.now())).ipc;
    };
    const double ht = measure_ipc(2);
    const double no_ht = measure_ipc(1);
    EXPECT_GT(ht, no_ht);
    // At 2.1 GHz the uncore reaches 3.0, so IPC sits above the unity-ratio
    // anchors (3.1/2.8) by the uncore-sensitivity term.
    EXPECT_NEAR(ht, 3.38, 0.08);
    EXPECT_NEAR(no_ht, 3.08, 0.08);
}

}  // namespace
}  // namespace hsw::core
