#include <gtest/gtest.h>

#include "core/node.hpp"
#include "workloads/mixes.hpp"

namespace hsw::core {
namespace {

using util::Frequency;
using util::Time;

TEST(NodeCstates, DefaultParkStateIsC6) {
    Node node;
    for (unsigned cpu = 0; cpu < node.cpu_count(); ++cpu) {
        EXPECT_EQ(node.core_state(cpu), cstates::CState::C6);
    }
}

TEST(NodeCstates, IdleSystemEntersPackageC6) {
    Node node;
    node.run_for(Time::ms(5));
    EXPECT_EQ(node.package_state(0), cstates::PackageCState::PC6);
    EXPECT_EQ(node.package_state(1), cstates::PackageCState::PC6);
    EXPECT_TRUE(node.socket(0).uncore_halted());
}

TEST(NodeCstates, RemoteActiveCoreBlocksPackageSleep) {
    // Section V-A: "these states are not used when there is still any core
    // active in the system -- even if this core is located on the other
    // processor".
    Node node;
    node.set_workload(node.cpu_id(1, 0), &workloads::while_one(), 1);
    node.run_for(Time::ms(5));
    EXPECT_EQ(node.package_state(0), cstates::PackageCState::PC0);
    EXPECT_FALSE(node.socket(0).uncore_halted());
}

TEST(NodeCstates, WakeLatencyDependsOnState) {
    Node node;
    node.set_workload(0, &workloads::while_one(), 1);
    node.run_for(Time::ms(5));

    node.park(1, cstates::CState::C1);
    node.run_for(Time::ms(1));
    const Time c1 = node.wake(0, 1);
    node.run_for(Time::ms(1));

    node.park(1, cstates::CState::C3);
    node.run_for(Time::ms(1));
    const Time c3 = node.wake(0, 1);
    node.run_for(Time::ms(1));

    node.park(1, cstates::CState::C6);
    node.run_for(Time::ms(1));
    const Time c6 = node.wake(0, 1);

    EXPECT_LT(c1, c3);
    EXPECT_LT(c3, c6);
    EXPECT_LT(c6.as_us(), 40.0);
}

TEST(NodeCstates, WakeeReachesC0AfterLatency) {
    Node node;
    node.set_workload(0, &workloads::while_one(), 1);
    node.park(1, cstates::CState::C6);
    node.run_for(Time::ms(1));
    const Time latency = node.wake(0, 1);
    EXPECT_EQ(node.core_state(1), cstates::CState::C6);  // not yet
    node.run_for(latency + Time::us(1));
    EXPECT_EQ(node.core_state(1), cstates::CState::C0);
}

TEST(NodeCstates, WakingARunningCoreIsFree) {
    Node node;
    node.set_workload(1, &workloads::while_one(), 1);
    node.run_for(Time::ms(1));
    EXPECT_EQ(node.wake(0, 1), Time::zero());
}

TEST(NodeCstates, RemoteIdleScenarioSlowerThanRemoteActive) {
    Node node;
    node.set_workload(node.cpu_id(0, 0), &workloads::while_one(), 1);
    node.run_for(Time::ms(5));

    // Remote idle: wakee socket fully asleep.
    node.park(node.cpu_id(1, 0), cstates::CState::C6);
    node.run_for(Time::ms(1));
    double idle_sum = 0;
    for (int i = 0; i < 30; ++i) {
        node.park(node.cpu_id(1, 0), cstates::CState::C6);
        node.run_for(Time::us(500));
        idle_sum += node.wake(node.cpu_id(0, 0), node.cpu_id(1, 0)).as_us();
        node.run_for(Time::us(100));
    }

    // Remote active: a second core keeps the wakee's package awake.
    node.set_workload(node.cpu_id(1, 5), &workloads::while_one(), 1);
    node.run_for(Time::ms(1));
    double active_sum = 0;
    for (int i = 0; i < 30; ++i) {
        node.park(node.cpu_id(1, 0), cstates::CState::C6);
        node.run_for(Time::us(500));
        active_sum += node.wake(node.cpu_id(0, 0), node.cpu_id(1, 0)).as_us();
        node.run_for(Time::us(100));
    }
    EXPECT_GT(idle_sum / 30.0, active_sum / 30.0 + 5.0);  // package C6 ~ +8 us
}

TEST(NodeCstates, GatedCoresSavePower) {
    NodeConfig deep;
    deep.park_state = cstates::CState::C6;
    Node gated{deep};
    NodeConfig shallow;
    shallow.park_state = cstates::CState::C1;
    Node halted{shallow};
    // Apply the configured park state to every core, then keep one core
    // active so both systems' uncores stay awake -- isolating the core
    // leakage difference (C6 gates it, C1 does not).
    gated.clear_all_workloads();
    halted.clear_all_workloads();
    gated.set_workload(0, &workloads::while_one(), 1);
    halted.set_workload(0, &workloads::while_one(), 1);
    gated.run_for(Time::ms(50));
    halted.run_for(Time::ms(50));
    EXPECT_LT(gated.true_node_dc_power().as_watts(),
              halted.true_node_dc_power().as_watts());
}

}  // namespace
}  // namespace hsw::core
