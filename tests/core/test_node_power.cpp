#include <gtest/gtest.h>

#include "core/node.hpp"
#include "util/stats.hpp"
#include "workloads/mixes.hpp"

namespace hsw::core {
namespace {

using util::Frequency;
using util::Power;
using util::Time;

TEST(NodePower, IdleAcMatchesTable2) {
    Node node;
    node.run_for(Time::ms(200));
    const Time t0 = node.now();
    node.run_for(Time::sec(2));
    const double idle = node.meter().average(t0, node.now()).as_watts();
    EXPECT_NEAR(idle, 261.5, 2.0);  // Table II: 261.5 W at max fan speed
}

TEST(NodePower, FirestarterReachesTdpOnBothSockets) {
    Node node;
    node.set_all_workloads(&workloads::firestarter(), 2);
    node.request_turbo_all();
    node.run_for(Time::ms(100));
    for (unsigned s = 0; s < 2; ++s) {
        const auto w = node.rapl_window(s, Time::sec(2));
        EXPECT_NEAR(w.package.as_watts(), 120.0, 1.5) << "socket " << s;
    }
}

TEST(NodePower, FullLoadAcNearPaperValue) {
    Node node;
    node.set_all_workloads(&workloads::firestarter(), 2);
    node.request_turbo_all();
    node.run_for(Time::ms(100));
    const Time t0 = node.now();
    node.run_for(Time::sec(2));
    const double ac = node.meter().average(t0, node.now()).as_watts();
    EXPECT_NEAR(ac, 560.0, 12.0);  // Table V: ~560 W
}

TEST(NodePower, RaplWindowMatchesTrueEnergy) {
    Node node;
    node.set_all_workloads(&workloads::compute(), 1);
    node.run_for(Time::ms(50));
    const double true_before = node.socket(0).rapl().true_pkg_energy().as_joules();
    const auto w = node.rapl_window(0, Time::sec(1));
    const double true_delta =
        node.socket(0).rapl().true_pkg_energy().as_joules() - true_before;
    EXPECT_NEAR(w.package.as_watts(), true_delta, true_delta * 0.02);
}

TEST(NodePower, DramPowerScalesWithTraffic) {
    Node node;
    node.set_all_workloads(&workloads::memory_stream(), 1);
    node.run_for(Time::ms(50));
    const auto busy = node.rapl_window(0, Time::sec(1));
    Node idle_node;
    idle_node.run_for(Time::ms(50));
    const auto idle = idle_node.rapl_window(0, Time::sec(1));
    EXPECT_GT(busy.dram.as_watts(), idle.dram.as_watts() + 10.0);
}

TEST(NodePower, MeterSeriesAccumulatesAt20SaPerSec) {
    Node node;
    node.meter().clear();
    node.run_for(Time::sec(2));
    // 20 Sa/s over 2 s.
    EXPECT_NEAR(static_cast<double>(node.meter().series().size()), 40.0, 2.0);
}

TEST(NodePower, AcPowerConsistentWithPsuModel) {
    Node node;
    node.set_all_workloads(&workloads::dgemm(), 1);
    node.run_for(Time::ms(100));
    const Power dc = node.true_node_dc_power();
    const Power ac = node.ac_power();
    const double expected =
        0.0003 * dc.as_watts() * dc.as_watts() + 1.097 * dc.as_watts() + 225.7;
    EXPECT_NEAR(ac.as_watts(), expected, 0.5);
}

TEST(NodePower, Socket0DrawsMorePowerAtSameFrequency) {
    // Fixed sub-TDP frequency: socket 0's higher voltage costs power.
    Node node;
    node.set_all_workloads(&workloads::compute(), 1);
    node.set_pstate_all(Frequency::ghz(1.8));
    node.run_for(Time::ms(50));
    const double p0_before = node.socket(0).rapl().true_pkg_energy().as_joules();
    const double p1_before = node.socket(1).rapl().true_pkg_energy().as_joules();
    node.run_for(Time::sec(1));
    const double p0 = node.socket(0).rapl().true_pkg_energy().as_joules() - p0_before;
    const double p1 = node.socket(1).rapl().true_pkg_energy().as_joules() - p1_before;
    EXPECT_GT(p0, p1 * 1.01);
}

TEST(NodePower, SinusWorkloadModulatesPower) {
    Node node;
    for (unsigned c = 0; c < 12; ++c) {
        node.set_workload(node.cpu_id(0, c), &workloads::sinus(), 1);
    }
    node.run_for(Time::ms(100));
    // Sample power over half a modulation period apart.
    std::vector<double> samples;
    for (int i = 0; i < 20; ++i) {
        node.run_for(Time::ms(100));
        samples.push_back(node.true_node_dc_power().as_watts());
    }
    const double spread = util::max_of(samples) - util::min_of(samples);
    EXPECT_GT(spread, 10.0);  // visibly non-constant (2 s period, 0.7 depth)
}

}  // namespace
}  // namespace hsw::core
