#include <gtest/gtest.h>

#include "workloads/mixes.hpp"
#include "workloads/workload.hpp"

namespace hsw::workloads {
namespace {

using util::Time;

TEST(Workload, ConstantModulationIsUnity) {
    const Workload& w = compute();
    EXPECT_DOUBLE_EQ(w.modulation_factor(Time::sec(0)), 1.0);
    EXPECT_DOUBLE_EQ(w.modulation_factor(Time::sec(17)), 1.0);
}

TEST(Workload, SinusoidOscillatesAroundDepth) {
    const Workload& w = sinus();
    double lo = 1e9;
    double hi = -1e9;
    for (int ms = 0; ms < 4000; ms += 10) {
        const double m = w.modulation_factor(Time::ms(ms));
        lo = std::min(lo, m);
        hi = std::max(hi, m);
    }
    EXPECT_NEAR(hi, 1.0, 0.01);
    EXPECT_NEAR(lo, 1.0 - w.modulation_depth, 0.01);
}

TEST(Workload, SquareWaveAlternates) {
    const Workload& w = mprime();
    const double high = w.modulation_factor(Time::sec(1));
    const double low = w.modulation_factor(
        Time::from_seconds(w.modulation_period_s * 0.75));
    EXPECT_DOUBLE_EQ(high, 1.0);
    EXPECT_NEAR(low, 1.0 - w.modulation_depth, 1e-9);
}

TEST(Workload, HyperThreadingIncreasesCdyn) {
    for (const Workload* w : {&firestarter(), &linpack(), &mprime(), &compute()}) {
        EXPECT_GT(w->cdyn_at(Time::zero(), true), w->cdyn_at(Time::zero(), false))
            << w->name;
    }
}

TEST(Workload, IpcDropsWithSlowerUncore) {
    const Workload& w = firestarter();
    // ratio = f_core / f_uncore: larger ratio means relatively slower uncore.
    EXPECT_GT(w.ipc(0.7, true), w.ipc(1.0, true));
    EXPECT_GT(w.ipc(1.0, true), w.ipc(1.3, true));
}

TEST(Workload, IpcNeverNonPositive) {
    for (const Workload* w : {&firestarter(), &memory_stream(), &linpack()}) {
        EXPECT_GT(w->ipc(10.0, true), 0.0) << w->name;
        EXPECT_GT(w->ipc(10.0, false), 0.0) << w->name;
    }
}

TEST(Workload, FirestarterAnchorsFromPaper) {
    const Workload& fs = firestarter();
    EXPECT_NEAR(fs.ipc(1.0, true), 3.1, 0.05);   // Section VIII: 3.1 with HT
    EXPECT_NEAR(fs.ipc(1.0, false), 2.8, 0.05);  // 2.8 without
    EXPECT_GT(fs.avx_fraction, 0.9);
    EXPECT_DOUBLE_EQ(fs.cdyn_ht, 1.0);  // the reference payload
}

TEST(Workload, IdleIsInert) {
    const Workload& w = idle();
    EXPECT_EQ(w.cdyn_at(Time::sec(1), true), 0.0);
    EXPECT_EQ(w.dram_gbs_per_core, 0.0);
}

TEST(Workload, ValidationSetHasSixBenchmarks) {
    // Fig. 2 legend: sinus, busy wait, memory, compute, dgemm, sqrt
    // (plus idle, handled separately).
    const auto set = rapl_validation_set();
    EXPECT_EQ(set.size(), 6u);
    for (const Workload* w : set) {
        EXPECT_GT(w->cdyn_noht, 0.0);
        EXPECT_GT(w->ipc_unity_noht, 0.0);
    }
}

TEST(Workload, WhileOneHasNoMemoryTraffic) {
    // Table III lower-bound scenario: "a benchmark that does not access any
    // memory".
    const Workload& w = while_one();
    EXPECT_EQ(w.dram_gbs_per_core, 0.0);
    EXPECT_EQ(w.stall_fraction, 0.0);
}

TEST(Workload, StressTestPowerOrdering) {
    // LINPACK has the densest execution (highest current intensity);
    // mprime the lowest cdyn of the three (highest TDP frequency).
    EXPECT_GT(linpack().current_intensity, firestarter().current_intensity);
    EXPECT_LT(mprime().cdyn_noht, firestarter().cdyn_noht);
}

}  // namespace
}  // namespace hsw::workloads
