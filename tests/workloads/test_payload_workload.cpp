#include <gtest/gtest.h>

#include "workloads/mixes.hpp"
#include "workloads/payload_workload.hpp"

namespace hsw::workloads {
namespace {

TEST(PayloadWorkload, CanonicalPayloadRecoversFirestarterProfile) {
    const FirestarterPayload canonical;
    const Workload derived = workload_from_payload(canonical, "derived FS");
    const Workload& reference = firestarter();
    // The bridge derives power/IPC from the instruction groups; it must
    // land near the hand-calibrated reference for the canonical mix.
    EXPECT_NEAR(derived.cdyn_ht, reference.cdyn_ht, 0.12);
    EXPECT_NEAR(derived.ipc_unity_ht, reference.ipc_unity_ht, 0.2);
    EXPECT_NEAR(derived.ipc_unity_noht, reference.ipc_unity_noht, 0.2);
    EXPECT_GT(derived.avx_fraction, 0.8);
    EXPECT_GT(derived.dram_gbs_per_core, 1.0);
}

TEST(PayloadWorkload, CustomRatiosApportionExactly) {
    const auto payload = payload_with_ratios({0.5, 0.5, 0.0, 0.0, 0.0}, 100);
    const auto p = payload.analyze();
    EXPECT_EQ(p.group_count, 100u);
    EXPECT_NEAR(p.target_ratios[0], 0.5, 0.01);
    EXPECT_NEAR(p.target_ratios[1], 0.5, 0.01);
    EXPECT_EQ(p.target_ratios[2], 0.0);
}

TEST(PayloadWorkload, RatiosAreNormalized) {
    const auto a = payload_with_ratios({2.0, 2.0, 0.0, 0.0, 0.0}, 100);
    const auto b = payload_with_ratios({0.5, 0.5, 0.0, 0.0, 0.0}, 100);
    EXPECT_EQ(a.analyze().target_ratios, b.analyze().target_ratios);
}

TEST(PayloadWorkload, MemoryHeavyMixStallsMore) {
    const auto reg = workload_from_payload(
        payload_with_ratios({1.0, 0.0, 0.0, 0.0, 0.0}), "reg");
    const auto mem = workload_from_payload(
        payload_with_ratios({0.2, 0.3, 0.0, 0.0, 0.5}), "mem");
    EXPECT_GT(mem.stall_fraction, reg.stall_fraction + 0.2);
    EXPECT_GT(mem.dram_gbs_per_core, reg.dram_gbs_per_core);
    EXPECT_LT(mem.ipc_unity_ht, reg.ipc_unity_ht);
}

TEST(PayloadWorkload, RegisterOnlyMixUnderusesDataPaths) {
    const auto reg = workload_from_payload(
        payload_with_ratios({1.0, 0.0, 0.0, 0.0, 0.0}), "reg");
    const Workload& fs = firestarter();
    // Higher IPC but no memory traffic: the canonical mix makes up for its
    // slightly lower issue rate with data-path activity.
    EXPECT_GT(reg.ipc_unity_ht, fs.ipc_unity_ht);
    EXPECT_EQ(reg.dram_gbs_per_core, 0.0);
}

TEST(PayloadWorkload, DegenerateInputsAreSafe) {
    const auto zero = payload_with_ratios({0.0, 0.0, 0.0, 0.0, 0.0}, 50);
    EXPECT_EQ(zero.groups().size(), 50u);  // falls back to uniform-ish
    const auto w = workload_from_payload(zero, "degenerate");
    EXPECT_GE(w.cdyn_ht, 0.0);
    EXPECT_LE(w.avx_fraction, 1.0);
    EXPECT_LE(w.stall_fraction, 0.95);
}

}  // namespace
}  // namespace hsw::workloads
