#include <gtest/gtest.h>

#include "workloads/asm_emitter.hpp"
#include "workloads/payload_workload.hpp"

namespace hsw::workloads {
namespace {

TEST(AsmEmitter, EmitsCompleteTranslationUnit) {
    const FirestarterPayload payload{64};
    const std::string s = emit_asm(payload);
    EXPECT_NE(s.find(".globl firestarter_kernel"), std::string::npos);
    EXPECT_NE(s.find("firestarter_kernel:"), std::string::npos);
    EXPECT_NE(s.find(".Lfirestarter_kernel_loop:"), std::string::npos);
    EXPECT_NE(s.find("\tret\n"), std::string::npos);
    EXPECT_NE(s.find(".align 16"), std::string::npos);
}

TEST(AsmEmitter, InstructionCountsMatchTheIr) {
    const FirestarterPayload payload{200};
    const auto props = payload.analyze();
    const AsmStats stats = analyze_asm(emit_asm(payload));

    // Every IR instruction appears, plus the fixed prologue/epilogue.
    EXPECT_GE(stats.instruction_lines, props.instruction_count);
    EXPECT_LE(stats.instruction_lines, props.instruction_count + 40);

    // FMA count = I1-of-reg/mem + all I2 = (reg+mem groups)*2 + others*1.
    std::size_t expected_fma = 0;
    std::size_t expected_store = 0;
    for (const auto& g : payload.groups()) {
        for (const auto& i : g.instructions) {
            if (i.op == Op::Fma || i.op == Op::FmaLoad) ++expected_fma;
            if (i.op == Op::Store) ++expected_store;
        }
    }
    EXPECT_EQ(stats.fma_count, expected_fma);
    EXPECT_EQ(stats.store_count, expected_store);
}

TEST(AsmEmitter, LoadFmasTargetTheirLevelPointers) {
    const FirestarterPayload payload{500};
    const std::string s = emit_asm(payload);
    // Each cache/memory level owns one pointer register.
    EXPECT_NE(s.find("32(%r9)"), std::string::npos);   // L1 loads
    EXPECT_NE(s.find("32(%r10)"), std::string::npos);  // L2 loads
    EXPECT_NE(s.find("32(%r11)"), std::string::npos);  // L3 loads
    // mem groups do FMA on registers (I1) and FMA+load (I2) on %r12.
    EXPECT_NE(s.find("32(%r12)"), std::string::npos);
}

TEST(AsmEmitter, RegisterOnlyPayloadTouchesNoMemoryInLoop) {
    const auto payload = payload_with_ratios({1.0, 0.0, 0.0, 0.0, 0.0}, 64);
    const AsmStats stats = analyze_asm(emit_asm(payload));
    EXPECT_EQ(stats.store_count, 0u);
    EXPECT_EQ(stats.load_fma_count, 0u);
    EXPECT_GT(stats.fma_count, 0u);
}

TEST(AsmEmitter, CustomFunctionName) {
    AsmEmitOptions opt;
    opt.function_name = "my_kernel";
    const std::string s = emit_asm(FirestarterPayload{16}, opt);
    EXPECT_NE(s.find("my_kernel:"), std::string::npos);
    EXPECT_NE(s.find(".Lmy_kernel_loop"), std::string::npos);
    EXPECT_EQ(s.find("firestarter_kernel"), std::string::npos);
}

TEST(AsmEmitter, PointerSpansConfigurable) {
    AsmEmitOptions opt;
    opt.l1_span = 1234;
    const std::string s = emit_asm(FirestarterPayload{16}, opt);
    EXPECT_NE(s.find("lea 1234(%rdi), %r10"), std::string::npos);
}

}  // namespace
}  // namespace hsw::workloads
