#include <gtest/gtest.h>

#include "arch/calibration.hpp"
#include "workloads/firestarter.hpp"

namespace hsw::workloads {
namespace {

namespace cal = hsw::arch::cal;

TEST(FirestarterPayload, GroupRatiosMatchPaper) {
    // 27.8 % reg, 62.7 % L1, 7.1 % L2, 0.8 % L3, 1.6 % mem (Section VIII).
    const FirestarterPayload payload{1000};
    const auto p = payload.analyze();
    EXPECT_NEAR(p.target_ratios[0], 0.278, 0.002);
    EXPECT_NEAR(p.target_ratios[1], 0.627, 0.002);
    EXPECT_NEAR(p.target_ratios[2], 0.071, 0.002);
    EXPECT_NEAR(p.target_ratios[3], 0.008, 0.002);
    EXPECT_NEAR(p.target_ratios[4], 0.016, 0.002);
}

TEST(FirestarterPayload, LoopSizeConstraints) {
    // "the stresstest loop has to be larger than the micro-op cache but
    // small enough for the L1 instruction cache".
    const FirestarterPayload payload;  // default size
    const auto p = payload.analyze();
    EXPECT_TRUE(p.exceeds_uop_cache);
    EXPECT_TRUE(p.fits_l1i);
    EXPECT_GT(p.uop_count, cal::kUopCacheCapacityUops);
    EXPECT_LE(p.code_bytes, cal::kL1ICapacityBytes);
}

TEST(FirestarterPayload, GroupsAreFourInstructionsInFetchWindow) {
    const FirestarterPayload payload{100};
    for (const auto& g : payload.groups()) {
        EXPECT_EQ(g.instructions.size(), 4u);
        EXPECT_LE(g.bytes(), cal::kFetchWindowBytes);
    }
}

TEST(FirestarterPayload, GroupStructureByTarget) {
    // reg group: FMA/FMA/shift/xor; cache groups: store/FMA+load/shift/add.
    const auto reg = make_group(GroupTarget::Reg);
    EXPECT_EQ(reg.instructions[0].op, Op::Fma);
    EXPECT_EQ(reg.instructions[1].op, Op::Fma);
    EXPECT_EQ(reg.instructions[2].op, Op::Shift);
    EXPECT_EQ(reg.instructions[3].op, Op::Xor);
    EXPECT_DOUBLE_EQ(reg.flops(), 16.0);  // two 256-bit FMAs

    const auto l2 = make_group(GroupTarget::L2);
    EXPECT_EQ(l2.instructions[0].op, Op::Store);
    EXPECT_EQ(l2.instructions[1].op, Op::FmaLoad);
    EXPECT_EQ(l2.instructions[3].op, Op::AddPtr);
    EXPECT_TRUE(l2.instructions[0].stores);
    EXPECT_TRUE(l2.instructions[1].loads);

    // mem group: I1 is an FMA on registers (not a store).
    const auto mem = make_group(GroupTarget::Mem);
    EXPECT_EQ(mem.instructions[0].op, Op::Fma);
}

TEST(FirestarterPayload, EstimatedIpcMatchesPaper) {
    const FirestarterPayload payload;
    EXPECT_NEAR(payload.estimated_ipc(true), 3.1, 0.2);   // HT
    EXPECT_NEAR(payload.estimated_ipc(false), 2.8, 0.2);  // no HT
    EXPECT_GT(payload.estimated_ipc(true), payload.estimated_ipc(false));
}

TEST(FirestarterPayload, RareGroupsSpreadThroughLoop) {
    // The low-discrepancy interleaving must not clump the 1.6 % mem groups.
    const FirestarterPayload payload{1000};
    std::vector<std::size_t> mem_positions;
    const auto& gs = payload.groups();
    for (std::size_t i = 0; i < gs.size(); ++i) {
        if (gs[i].target == GroupTarget::Mem) mem_positions.push_back(i);
    }
    ASSERT_GE(mem_positions.size(), 10u);
    for (std::size_t i = 1; i < mem_positions.size(); ++i) {
        const auto gap = mem_positions[i] - mem_positions[i - 1];
        EXPECT_GT(gap, 30u);   // roughly evenly spaced (expected ~62)
        EXPECT_LT(gap, 100u);
    }
}

TEST(FirestarterPayload, DeterministicConstruction) {
    const FirestarterPayload a{560};
    const FirestarterPayload b{560};
    ASSERT_EQ(a.groups().size(), b.groups().size());
    for (std::size_t i = 0; i < a.groups().size(); ++i) {
        EXPECT_EQ(a.groups()[i].target, b.groups()[i].target);
    }
}

TEST(FirestarterPayload, DisassembleListsGroups) {
    const FirestarterPayload payload{8};
    const std::string s = payload.disassemble(2);
    EXPECT_NE(s.find("group 0"), std::string::npos);
    EXPECT_NE(s.find("vfmadd231pd"), std::string::npos);
    EXPECT_NE(s.find("; ..."), std::string::npos);
}

TEST(FirestarterPayload, AvxFractionIsHalfOfInstructions) {
    // I1/I2 are 256-bit, I3/I4 scalar -> AVX fraction 0.5 of instruction
    // count (the *workload* avx_fraction refers to execution-slot share).
    const auto p = FirestarterPayload{500}.analyze();
    EXPECT_NEAR(p.avx_fraction, 0.5, 0.01);
}

// Parameterized sweep over payload sizes.
class PayloadSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PayloadSizes, ApportionmentExact) {
    const FirestarterPayload payload{GetParam()};
    EXPECT_EQ(payload.groups().size(), GetParam());
    const auto p = payload.analyze();
    double total = 0.0;
    for (double r : p.target_ratios) total += r;
    EXPECT_NEAR(total, 1.0, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PayloadSizes,
                         ::testing::Values(10, 63, 127, 560, 1000, 4096));

}  // namespace
}  // namespace hsw::workloads
