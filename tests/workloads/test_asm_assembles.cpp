// End-to-end validation of the assembly emitter: on an x86-64 host with a
// toolchain available, the emitted FIRESTARTER kernel must actually
// assemble. Skipped gracefully elsewhere.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "workloads/asm_emitter.hpp"

namespace hsw::workloads {
namespace {

bool have_assembler() {
#if defined(__x86_64__) && defined(__linux__)
    return std::system("command -v cc >/dev/null 2>&1 || command -v c++ "
                       ">/dev/null 2>&1") == 0;
#else
    return false;
#endif
}

TEST(AsmAssembles, EmittedKernelPassesTheSystemAssembler) {
    if (!have_assembler()) {
        GTEST_SKIP() << "no x86-64 toolchain available";
    }
    const FirestarterPayload payload{560};  // the full-size loop
    const std::string asm_text = emit_asm(payload);

    const std::string dir = ::testing::TempDir();
    const std::string src = dir + "hsw_fs_kernel.s";
    const std::string obj = dir + "hsw_fs_kernel.o";
    {
        std::ofstream out{src};
        ASSERT_TRUE(out.good());
        out << asm_text;
    }
    const std::string cmd = "c++ -c " + src + " -o " + obj + " 2>" + dir +
                            "hsw_fs_kernel.err";
    const int rc = std::system(cmd.c_str());
    if (rc != 0) {
        std::ifstream err{dir + "hsw_fs_kernel.err"};
        std::string msg((std::istreambuf_iterator<char>(err)),
                        std::istreambuf_iterator<char>());
        FAIL() << "assembler rejected the emitted kernel:\n" << msg.substr(0, 2000);
    }
    std::remove(src.c_str());
    std::remove(obj.c_str());
    std::remove((dir + "hsw_fs_kernel.err").c_str());
}

}  // namespace
}  // namespace hsw::workloads
