#include <gtest/gtest.h>

#include "msr/addresses.hpp"
#include "msr/msr_file.hpp"

namespace hsw::msr {
namespace {

TEST(MsrFile, UnimplementedAccessFaults) {
    MsrFile file;
    EXPECT_THROW((void)file.read(0, 0x999), MsrError);
    EXPECT_THROW(file.write(0, 0x999, 1), MsrError);
    EXPECT_FALSE(file.exists(0x999));
}

TEST(MsrFile, ReadOnlyRegisterRejectsWrites) {
    MsrFile file;
    file.register_msr(IA32_APERF, [](unsigned) { return 42ULL; });
    EXPECT_EQ(file.read(3, IA32_APERF), 42ULL);
    EXPECT_THROW(file.write(3, IA32_APERF, 1), MsrError);
}

TEST(MsrFile, StorageIsPerCpu) {
    MsrFile file;
    file.register_storage(IA32_ENERGY_PERF_BIAS, 6);
    EXPECT_EQ(file.read(0, IA32_ENERGY_PERF_BIAS), 6ULL);  // initial
    file.write(0, IA32_ENERGY_PERF_BIAS, 15);
    file.write(1, IA32_ENERGY_PERF_BIAS, 0);
    EXPECT_EQ(file.read(0, IA32_ENERGY_PERF_BIAS), 15ULL);
    EXPECT_EQ(file.read(1, IA32_ENERGY_PERF_BIAS), 0ULL);
    EXPECT_EQ(file.read(2, IA32_ENERGY_PERF_BIAS), 6ULL);
}

TEST(MsrFile, RangeRegistrationDispatchesByCpu) {
    MsrFile file;
    file.register_msr_range(MSR_PKG_ENERGY_STATUS, 0, 11,
                            [](unsigned) { return 100ULL; });
    file.register_msr_range(MSR_PKG_ENERGY_STATUS, 12, 23,
                            [](unsigned) { return 200ULL; });
    EXPECT_EQ(file.read(0, MSR_PKG_ENERGY_STATUS), 100ULL);
    EXPECT_EQ(file.read(11, MSR_PKG_ENERGY_STATUS), 100ULL);
    EXPECT_EQ(file.read(12, MSR_PKG_ENERGY_STATUS), 200ULL);
    EXPECT_EQ(file.read(23, MSR_PKG_ENERGY_STATUS), 200ULL);
    EXPECT_THROW((void)file.read(24, MSR_PKG_ENERGY_STATUS), MsrError);
}

TEST(MsrFile, LaterRegistrationTakesPrecedence) {
    MsrFile file;
    file.register_msr(IA32_PERF_STATUS, [](unsigned) { return 1ULL; });
    file.register_msr_range(IA32_PERF_STATUS, 5, 5, [](unsigned) { return 2ULL; });
    EXPECT_EQ(file.read(0, IA32_PERF_STATUS), 1ULL);
    EXPECT_EQ(file.read(5, IA32_PERF_STATUS), 2ULL);
}

TEST(MsrFile, WriteHandlerReceivesCpuAndValue) {
    MsrFile file;
    unsigned got_cpu = 0;
    std::uint64_t got_value = 0;
    file.register_msr(
        IA32_PERF_CTL, [](unsigned) { return 0ULL; },
        [&](unsigned cpu, std::uint64_t v) {
            got_cpu = cpu;
            got_value = v;
        });
    file.write(7, IA32_PERF_CTL, 13ULL << 8);
    EXPECT_EQ(got_cpu, 7u);
    EXPECT_EQ(got_value, 13ULL << 8);
}

// --- EPB semantics (Section II-C): 0/6/15 defined; measured mapping of the
// undefined values: 1-7 balanced, 8-14 energy saving. ---

TEST(Epb, DefinedValues) {
    EXPECT_EQ(decode_epb(0), EpbPolicy::Performance);
    EXPECT_EQ(decode_epb(6), EpbPolicy::Balanced);
    EXPECT_EQ(decode_epb(15), EpbPolicy::EnergySaving);
}

class EpbMapping : public ::testing::TestWithParam<unsigned> {};

TEST_P(EpbMapping, UndefinedValuesMapAsMeasured) {
    const unsigned raw = GetParam();
    const EpbPolicy expected = raw == 0   ? EpbPolicy::Performance
                               : raw <= 7 ? EpbPolicy::Balanced
                                          : EpbPolicy::EnergySaving;
    EXPECT_EQ(decode_epb(raw), expected) << "raw = " << raw;
}

INSTANTIATE_TEST_SUITE_P(AllSixteenSettings, EpbMapping, ::testing::Range(0u, 16u));

TEST(Epb, OnlyLowFourBitsMatter) {
    EXPECT_EQ(decode_epb(0xF0), EpbPolicy::Performance);
    EXPECT_EQ(decode_epb(0x16), EpbPolicy::Balanced);
}

TEST(Epb, EncodeDecodeRoundTrip) {
    for (EpbPolicy p : {EpbPolicy::Performance, EpbPolicy::Balanced,
                        EpbPolicy::EnergySaving}) {
        EXPECT_EQ(decode_epb(encode_epb(p)), p);
    }
    EXPECT_EQ(encode_epb(EpbPolicy::Performance), 0ULL);
    EXPECT_EQ(encode_epb(EpbPolicy::Balanced), 6ULL);
    EXPECT_EQ(encode_epb(EpbPolicy::EnergySaving), 15ULL);
}

}  // namespace
}  // namespace hsw::msr
