// SurveyService: determinism against the batch engine, coalescing,
// admission control (overload, deadline, drain), and structured rejection.
#include "service/service.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "engine/blob.hpp"
#include "engine/engine.hpp"
#include "obs/metrics.hpp"
#include "util/minijson.hpp"

using namespace hsw;
using namespace hsw::service;

namespace {

namespace fs = std::filesystem;

fs::path fresh_dir(const std::string& leaf) {
    const fs::path dir = fs::path{testing::TempDir()} / ("hsw-service-" + leaf);
    fs::remove_all(dir);
    return dir;
}

protocol::Request query_request(const std::string& experiment,
                                const std::string& point = "*") {
    protocol::Request req;
    req.verb = protocol::Verb::Query;
    req.experiment = experiment;
    req.point = point;
    req.quick = true;
    return req;
}

/// Open/closed latch test jobs can block on, so tests control exactly when
/// a "computation" finishes.
struct Gate {
    std::mutex lock;
    std::condition_variable cv;
    bool open = false;
    std::atomic<int> entered{0};

    void wait() {
        entered.fetch_add(1);
        std::unique_lock guard{lock};
        cv.wait(guard, [this] { return open; });
    }
    void release() {
        {
            std::lock_guard guard{lock};
            open = true;
        }
        cv.notify_all();
    }
    void await_entered(int n) {
        while (entered.load() < n) std::this_thread::yield();
    }
};

/// Registry with two experiments: "toy" (three instant points) and "slow"
/// (one point that blocks on `gate` and counts its invocations).
struct TestRegistry {
    std::shared_ptr<Gate> gate = std::make_shared<Gate>();
    std::shared_ptr<std::atomic<int>> slow_runs = std::make_shared<std::atomic<int>>(0);

    std::function<std::vector<engine::Experiment>(const protocol::Request&)>
    factory() const {
        auto gate_ref = gate;
        auto runs_ref = slow_runs;
        return [gate_ref, runs_ref](const protocol::Request& request) {
            std::vector<engine::Experiment> out;

            engine::Experiment toy;
            toy.name = "toy";
            toy.description = "instant three-point experiment";
            for (int p = 0; p < 3; ++p) {
                engine::Job job;
                job.spec.experiment = "toy";
                job.spec.point = "p" + std::to_string(p);
                job.spec.base_seed = request.seed;
                job.run = [](const engine::ExperimentSpec& spec) {
                    return "payload(" + spec.label() + ", seed=" +
                           std::to_string(spec.job_seed()) + ")";
                };
                toy.jobs.push_back(std::move(job));
            }
            toy.assemble = [](const std::vector<std::string>& payloads) {
                std::string merged;
                for (const auto& p : payloads) merged += p + '\n';
                return std::vector<engine::Artifact>{
                    {"toy.csv", engine::ArtifactKind::Csv, merged},
                    {"toy.txt", engine::ArtifactKind::Render, "render\n" + merged}};
            };
            out.push_back(std::move(toy));

            engine::Experiment slow;
            slow.name = "slow";
            slow.description = "blocks until the test opens the gate";
            engine::Job job;
            job.spec.experiment = "slow";
            job.spec.point = "all";
            job.spec.base_seed = request.seed;
            job.run = [gate_ref, runs_ref](const engine::ExperimentSpec& spec) {
                runs_ref->fetch_add(1);
                gate_ref->wait();
                return "slow-payload seed=" + std::to_string(spec.job_seed());
            };
            slow.jobs.push_back(std::move(job));
            slow.assemble = [](const std::vector<std::string>& payloads) {
                return std::vector<engine::Artifact>{
                    {"slow.csv", engine::ArtifactKind::Csv, payloads.at(0)}};
            };
            out.push_back(std::move(slow));
            return out;
        };
    }
};

/// The batch engine's answer for one quick-tuning experiment, packed the
/// way the service packs a whole-experiment response.
std::string batch_artifacts_blob(const std::string& experiment_name,
                                 std::uint64_t seed) {
    engine::SurveyTuning tuning = engine::SurveyTuning::quick();
    tuning.seed = seed;
    auto experiments = engine::survey_experiments(tuning);
    const engine::Experiment* e =
        engine::find_experiment(experiments, experiment_name);
    EXPECT_NE(e, nullptr);
    engine::RunOptions options;
    options.jobs = 2;  // any thread count: engine output is deterministic
    const engine::RunReport report = engine::run_experiments({*e}, options);
    EXPECT_TRUE(report.ok());
    engine::BlobSections sections;
    for (const auto& artifact : report.artifacts) {
        const char* prefix =
            artifact.kind == engine::ArtifactKind::Render ? "render:" : "csv:";
        sections.emplace_back(prefix + artifact.filename, artifact.contents);
    }
    return engine::pack_sections(sections);
}

}  // namespace

// --- Determinism: the acceptance bar for the whole subsystem ---

TEST(ServiceDeterminism, ByteIdenticalAcrossColdWarmAndHotPaths) {
    const std::string expected = batch_artifacts_blob("fig3", 0xC0FFEE);
    const fs::path disk = fresh_dir("det-disk");

    ServiceConfig cfg;
    cfg.workers = 2;
    cfg.disk_cache_dir = disk;
    {
        SurveyService svc{cfg};
        // Cold: nothing cached anywhere.
        auto cold = svc.query(query_request("fig3"));
        ASSERT_TRUE(cold.ok()) << cold.message;
        EXPECT_EQ(cold.source, protocol::Source::Computed);
        EXPECT_EQ(*cold.payload, expected);

        // Hot: second identical query is served from memory, same bytes.
        auto hot = svc.query(query_request("fig3"));
        ASSERT_TRUE(hot.ok());
        EXPECT_EQ(hot.source, protocol::Source::HotCache);
        EXPECT_EQ(*hot.payload, expected);
    }

    // Warm disk: a fresh service sharing the cache dir, hot cache disabled
    // so the payload must come through the on-disk path.
    ServiceConfig warm_cfg = cfg;
    warm_cfg.hot_cache.max_bytes = 0;
    SurveyService warm{warm_cfg};
    auto disk_hit = warm.query(query_request("fig3"));
    ASSERT_TRUE(disk_hit.ok());
    EXPECT_EQ(disk_hit.source, protocol::Source::DiskCache);
    EXPECT_EQ(*disk_hit.payload, expected);
}

TEST(ServiceDeterminism, ByteIdenticalAcrossClientConcurrency) {
    const std::string expected = batch_artifacts_blob("fig3", 0xC0FFEE);

    ServiceConfig cfg;
    cfg.workers = 4;  // no disk cache: exercise compute + coalesce + hot
    SurveyService svc{cfg};

    constexpr int kClients = 16;
    std::vector<std::future<SurveyService::QueryResult>> results;
    for (int i = 0; i < kClients; ++i) {
        results.push_back(std::async(std::launch::async, [&svc] {
            return svc.query(query_request("fig3"));
        }));
    }
    for (auto& f : results) {
        auto r = f.get();
        ASSERT_TRUE(r.ok()) << r.message;
        EXPECT_EQ(*r.payload, expected);
    }
}

TEST(ServiceDeterminism, NamedPointMatchesEngineJobBytes) {
    TestRegistry registry;
    ServiceConfig cfg;
    cfg.registry_factory = registry.factory();
    SurveyService svc{cfg};

    auto result = svc.query(query_request("toy", "p1"));
    ASSERT_TRUE(result.ok()) << result.message;

    // Recompute the same job directly through the engine's entry point.
    protocol::Request req = query_request("toy", "p1");
    const auto experiments = registry.factory()(req);
    const engine::Job& job = experiments.at(0).jobs.at(1);
    EXPECT_EQ(*result.payload, engine::run_job(job).payload);
}

// --- Coalescing ---

TEST(ServiceTest, ConcurrentIdenticalQueriesComputeExactlyOnce) {
    TestRegistry registry;
    ServiceConfig cfg;
    cfg.workers = 4;
    cfg.registry_factory = registry.factory();
    SurveyService svc{cfg};

    constexpr int kClients = 8;
    std::vector<std::future<SurveyService::QueryResult>> results;
    for (int i = 0; i < kClients; ++i) {
        results.push_back(std::async(std::launch::async, [&svc] {
            return svc.query(query_request("slow", "all"));
        }));
    }
    // Exactly one compute enters the gate no matter how many clients wait.
    registry.gate->await_entered(1);
    std::this_thread::sleep_for(std::chrono::milliseconds{20});
    EXPECT_EQ(registry.slow_runs->load(), 1);
    registry.gate->release();

    const void* first_bytes = nullptr;
    for (auto& f : results) {
        auto r = f.get();
        ASSERT_TRUE(r.ok()) << r.message;
        // Followers and hot-cache hits share the leader's allocation.
        if (!first_bytes) first_bytes = r.payload.get();
        EXPECT_EQ(r.payload.get(), first_bytes);
    }
    EXPECT_EQ(registry.slow_runs->load(), 1);
    const auto stats = svc.stats();
    EXPECT_EQ(stats.computed, 1u);
    // A straggler that starts after the leader completes is served by the
    // hot or response cache instead of coalescing; all three share the
    // leader's allocation.
    EXPECT_EQ(stats.coalesced + stats.hot_hits + stats.response_hits,
              static_cast<std::uint64_t>(kClients - 1));
}

TEST(ServiceTest, TinyHotCacheStillServesEveryWaiter) {
    // A hot cache far smaller than the payload: the pinned in-flight entry
    // must survive the fan-out, then become evictable.
    TestRegistry registry;
    ServiceConfig cfg;
    cfg.workers = 2;
    cfg.hot_cache.max_bytes = 8;
    cfg.hot_cache.shards = 1;
    cfg.registry_factory = registry.factory();
    SurveyService svc{cfg};
    registry.gate->release();  // slow jobs run instantly in this test

    std::vector<std::future<SurveyService::QueryResult>> results;
    for (int i = 0; i < 6; ++i) {
        results.push_back(std::async(std::launch::async, [&svc] {
            return svc.query(query_request("slow", "all"));
        }));
    }
    for (auto& f : results) {
        auto r = f.get();
        ASSERT_TRUE(r.ok()) << r.message;
        EXPECT_NE(r.payload->find("slow-payload"), std::string::npos);
    }
}

// --- Admission control ---

TEST(ServiceTest, OverloadRejectsInsteadOfHanging) {
    TestRegistry registry;
    ServiceConfig cfg;
    cfg.workers = 1;
    cfg.max_queue = 1;
    cfg.registry_factory = registry.factory();
    SurveyService svc{cfg};

    // Distinct seeds = distinct specs: no coalescing, each needs a slot.
    auto run = [&svc](std::uint64_t seed) {
        protocol::Request req = query_request("slow", "all");
        req.seed = seed;
        return svc.query(req);
    };
    auto q1 = std::async(std::launch::async, run, 1);
    registry.gate->await_entered(1);  // worker occupied
    auto q2 = std::async(std::launch::async, run, 2);
    std::this_thread::sleep_for(std::chrono::milliseconds{50});
    auto q3 = std::async(std::launch::async, run, 3);

    // The queue holds one; with the worker blocked, one of q2/q3 must be
    // refused -- promptly, with a structured code, while the gate is still
    // shut (i.e. the rejection cannot depend on the compute finishing).
    const auto reject_deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds{10};
    while (svc.stats().rejected_overload == 0 &&
           std::chrono::steady_clock::now() < reject_deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds{1});
    }
    EXPECT_EQ(svc.stats().rejected_overload, 1u);

    registry.gate->release();
    std::vector<SurveyService::QueryResult> outcomes;
    outcomes.push_back(q1.get());
    outcomes.push_back(q2.get());
    outcomes.push_back(q3.get());

    int ok = 0, overloaded = 0;
    for (const auto& r : outcomes) {
        if (r.ok()) ++ok;
        if (r.code == protocol::ErrorCode::Overloaded) ++overloaded;
    }
    EXPECT_EQ(ok, 2);
    EXPECT_EQ(overloaded, 1);
    EXPECT_EQ(svc.stats().rejected_overload, 1u);

    // The rejection is also mirrored as a ServiceAdmission diagnostic.
    const auto diags = svc.admission_diagnostics();
    ASSERT_FALSE(diags.empty());
    bool found = false;
    for (const auto& d : diags) {
        if (d.invariant == analysis::Invariant::ServiceAdmission &&
            d.message.find("overloaded") != std::string::npos) {
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(ServiceTest, DeadlineExceededIsStructuredAndPrompt) {
    TestRegistry registry;
    ServiceConfig cfg;
    cfg.workers = 1;
    cfg.registry_factory = registry.factory();
    SurveyService svc{cfg};

    protocol::Request req = query_request("slow", "all");
    req.deadline_ms = 50;
    const auto t0 = std::chrono::steady_clock::now();
    auto result = svc.query(req);
    const auto elapsed = std::chrono::steady_clock::now() - t0;

    EXPECT_EQ(result.code, protocol::ErrorCode::DeadlineExceeded);
    EXPECT_LT(elapsed, std::chrono::seconds{5});
    EXPECT_EQ(svc.stats().rejected_deadline, 1u);

    registry.gate->release();  // let the in-flight leader finish for drain
}

TEST(ServiceTest, DrainFinishesInFlightWorkAndRefusesNewWork) {
    TestRegistry registry;
    ServiceConfig cfg;
    cfg.workers = 1;
    cfg.registry_factory = registry.factory();
    SurveyService svc{cfg};

    auto in_flight = std::async(std::launch::async, [&svc] {
        return svc.query(query_request("slow", "all"));
    });
    registry.gate->await_entered(1);

    auto drainer = std::async(std::launch::async, [&svc] { svc.drain(); });
    std::this_thread::sleep_for(std::chrono::milliseconds{30});
    EXPECT_TRUE(svc.draining());
    registry.gate->release();
    drainer.get();

    // The request that was already in flight completed with real bytes.
    auto r = in_flight.get();
    ASSERT_TRUE(r.ok()) << r.message;
    EXPECT_NE(r.payload->find("slow-payload"), std::string::npos);

    // Anything after drain is a structured refusal.
    auto late = svc.query(query_request("toy"));
    EXPECT_EQ(late.code, protocol::ErrorCode::ShuttingDown);
    EXPECT_GE(svc.stats().rejected_draining, 1u);
}

// --- Request validation ---

TEST(ServiceTest, UnknownExperimentListsRegisteredNames) {
    TestRegistry registry;
    ServiceConfig cfg;
    cfg.registry_factory = registry.factory();
    SurveyService svc{cfg};

    auto result = svc.query(query_request("fig99"));
    EXPECT_EQ(result.code, protocol::ErrorCode::UnknownExperiment);
    EXPECT_NE(result.message.find("toy"), std::string::npos);
    EXPECT_NE(result.message.find("slow"), std::string::npos);
    EXPECT_EQ(svc.stats().rejected_unknown, 1u);
}

TEST(ServiceTest, UnknownPointListsExperimentPoints) {
    TestRegistry registry;
    ServiceConfig cfg;
    cfg.registry_factory = registry.factory();
    SurveyService svc{cfg};

    auto result = svc.query(query_request("toy", "p9"));
    EXPECT_EQ(result.code, protocol::ErrorCode::UnknownPoint);
    EXPECT_NE(result.message.find("p0"), std::string::npos);
    EXPECT_NE(result.message.find("p2"), std::string::npos);
}

TEST(ServiceTest, JobFailureMapsToInternalWithoutPoisoningRetries) {
    auto fail_once = std::make_shared<std::atomic<bool>>(true);
    ServiceConfig cfg;
    cfg.registry_factory = [fail_once](const protocol::Request& request) {
        engine::Experiment e;
        e.name = "flaky";
        e.description = "fails on the first run only";
        engine::Job job;
        job.spec.experiment = "flaky";
        job.spec.point = "all";
        job.spec.base_seed = request.seed;
        job.run = [fail_once](const engine::ExperimentSpec&) -> std::string {
            if (fail_once->exchange(false)) throw std::runtime_error{"transient"};
            return "recovered";
        };
        e.jobs.push_back(std::move(job));
        return std::vector<engine::Experiment>{std::move(e)};
    };
    SurveyService svc{cfg};

    auto first = svc.query(query_request("flaky", "all"));
    EXPECT_EQ(first.code, protocol::ErrorCode::Internal);
    EXPECT_NE(first.message.find("transient"), std::string::npos);

    // Failure is cached nowhere: the retry computes fresh and succeeds.
    auto second = svc.query(query_request("flaky", "all"));
    ASSERT_TRUE(second.ok()) << second.message;
    EXPECT_EQ(*second.payload, "recovered");
    EXPECT_EQ(svc.stats().failed, 1u);
}

// --- Verb dispatch ---

TEST(ServiceTest, HandleDispatchesControlVerbs) {
    TestRegistry registry;
    ServiceConfig cfg;
    cfg.registry_factory = registry.factory();
    SurveyService svc{cfg};

    protocol::Request ping;
    ping.verb = protocol::Verb::Ping;
    EXPECT_EQ(svc.handle(ping).payload, "pong");

    protocol::Request stats;
    stats.verb = protocol::Verb::Stats;
    const auto stats_response = svc.handle(stats);
    EXPECT_TRUE(stats_response.ok());
    EXPECT_NE(stats_response.payload.find("survey-service stats"),
              std::string::npos);

    EXPECT_FALSE(svc.shutdown_requested());
    protocol::Request shutdown;
    shutdown.verb = protocol::Verb::Shutdown;
    EXPECT_EQ(svc.handle(shutdown).payload, "draining");
    EXPECT_TRUE(svc.shutdown_requested());
}

TEST(ServiceTest, MetricsVerbServesBothExpositionFormats) {
    obs::set_metrics_enabled(true);
    TestRegistry registry;
    ServiceConfig cfg;
    cfg.registry_factory = registry.factory();
    SurveyService svc{cfg};
    // Route through handle(): that is where the request counter and the
    // latency histogram live.
    ASSERT_EQ(svc.handle(query_request("toy")).code, protocol::ErrorCode::None);

    protocol::Request metrics;
    metrics.verb = protocol::Verb::Metrics;
    const auto prom = svc.handle(metrics);
    ASSERT_TRUE(prom.ok());
    EXPECT_NE(prom.payload.find("# TYPE hsw_service_requests counter"),
              std::string::npos);
    EXPECT_NE(prom.payload.find("hsw_service_requests_total"), std::string::npos);

    metrics.format = protocol::MetricsFormat::Json;
    const auto json_response = svc.handle(metrics);
    ASSERT_TRUE(json_response.ok());
    std::string error;
    const auto doc = util::json::parse(json_response.payload, &error);
    ASSERT_TRUE(doc.has_value()) << error;
    const util::json::Value* counters = doc->find("counters");
    ASSERT_NE(counters, nullptr);
    EXPECT_GE(counters->number_or("hsw_service_requests", -1), 1.0);
    obs::set_metrics_enabled(false);
}

TEST(ServiceTest, StatsCountProvenancePerJob) {
    TestRegistry registry;
    ServiceConfig cfg;
    cfg.workers = 2;
    cfg.disk_cache_dir = fresh_dir("stats-disk");
    cfg.registry_factory = registry.factory();

    {
        SurveyService svc{cfg};
        ASSERT_TRUE(svc.query(query_request("toy")).ok());  // 3 jobs computed
        // The repeat is a route-key response-cache hit: it never reaches
        // the per-job layer, so job tallies stay at the first query's.
        ASSERT_TRUE(svc.query(query_request("toy")).ok());
        const auto stats = svc.stats();
        EXPECT_EQ(stats.computed, 3u);
        EXPECT_EQ(stats.hot_hits, 0u);
        EXPECT_EQ(stats.response_hits, 1u);
        EXPECT_EQ(stats.disk_cache.stores, 3u);
        EXPECT_EQ(stats.received, 2u);
        EXPECT_EQ(stats.completed, 2u);
    }

    // Fresh service, same disk dir: the disk layer answers.
    SurveyService svc2{cfg};
    ASSERT_TRUE(svc2.query(query_request("toy")).ok());
    const auto stats = svc2.stats();
    EXPECT_EQ(stats.disk_hits, 3u);
    EXPECT_EQ(stats.computed, 0u);
}
