// HotCache: LRU ordering, byte budget, pinning, sharding, concurrency.
#include "service/hot_cache.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

using namespace hsw::service;

namespace {

HotCacheConfig single_shard(std::size_t max_bytes) {
    HotCacheConfig cfg;
    cfg.max_bytes = max_bytes;
    cfg.shards = 1;  // one LRU list so eviction order is observable
    return cfg;
}

std::string payload(std::size_t bytes, char fill) { return std::string(bytes, fill); }

}  // namespace

TEST(HotCacheTest, InsertThenLookupReturnsSameBytes) {
    HotCache cache;
    const auto stored = cache.insert("k1", "hello");
    ASSERT_NE(stored, nullptr);
    EXPECT_EQ(*stored, "hello");

    const auto found = cache.lookup("k1");
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(*found, "hello");
    // Same allocation handed to every reader, not a copy.
    EXPECT_EQ(found.get(), stored.get());
}

TEST(HotCacheTest, MissReturnsNullAndCounts) {
    HotCache cache;
    EXPECT_EQ(cache.lookup("absent"), nullptr);
    const auto stats = cache.stats();
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.hits, 0u);
    EXPECT_EQ(stats.entries, 0u);
}

TEST(HotCacheTest, EvictsLeastRecentlyUsedFirst) {
    HotCache cache{single_shard(100)};
    cache.insert("a", payload(40, 'a'));
    cache.insert("b", payload(40, 'b'));
    // 40 + 40 + 40 > 100: inserting c must evict exactly the LRU entry (a).
    cache.insert("c", payload(40, 'c'));

    EXPECT_EQ(cache.lookup("a"), nullptr);
    EXPECT_NE(cache.lookup("b"), nullptr);
    EXPECT_NE(cache.lookup("c"), nullptr);
    EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(HotCacheTest, LookupRefreshesRecency) {
    HotCache cache{single_shard(100)};
    cache.insert("a", payload(40, 'a'));
    cache.insert("b", payload(40, 'b'));
    ASSERT_NE(cache.lookup("a"), nullptr);  // a becomes most recent
    cache.insert("c", payload(40, 'c'));

    EXPECT_NE(cache.lookup("a"), nullptr);
    EXPECT_EQ(cache.lookup("b"), nullptr);  // b was LRU at eviction time
    EXPECT_NE(cache.lookup("c"), nullptr);
}

TEST(HotCacheTest, PinnedEntrySurvivesTinyBudget) {
    // Budget far below the payload size: an unpinned entry would be evicted
    // by the very next insert, but a pinned (in-flight) one must survive.
    HotCache cache{single_shard(16)};
    cache.insert("inflight", payload(64, 'p'), /*pinned=*/true);
    cache.insert("other", payload(64, 'q'));

    EXPECT_NE(cache.lookup("inflight"), nullptr);
    EXPECT_EQ(cache.lookup("other"), nullptr);  // over budget, evictable

    // After unpin, the next insert may evict it like any other entry.
    cache.unpin("inflight");
    cache.insert("later", payload(8, 'r'));
    EXPECT_EQ(cache.lookup("inflight"), nullptr);
    EXPECT_NE(cache.lookup("later"), nullptr);
}

TEST(HotCacheTest, EvictionNeverDropsBytesAReaderHolds) {
    HotCache cache{single_shard(32)};
    const auto held = cache.insert("a", payload(32, 'a'));
    cache.insert("b", payload(32, 'b'));  // evicts a from the cache
    EXPECT_EQ(cache.lookup("a"), nullptr);
    // ... but the reader's shared_ptr still owns the bytes.
    EXPECT_EQ(*held, payload(32, 'a'));
}

TEST(HotCacheTest, ZeroBudgetDisablesRetention) {
    HotCacheConfig cfg;
    cfg.max_bytes = 0;
    HotCache cache{cfg};
    const auto stored = cache.insert("k", "bytes");
    ASSERT_NE(stored, nullptr);  // caller still gets the value back
    EXPECT_EQ(*stored, "bytes");
    EXPECT_EQ(cache.lookup("k"), nullptr);
    EXPECT_EQ(cache.stats().entries, 0u);
    EXPECT_EQ(cache.stats().bytes, 0u);
}

TEST(HotCacheTest, ReinsertRefreshesValueWithoutLeakingBytes) {
    HotCache cache{single_shard(1024)};
    cache.insert("k", payload(100, 'x'));
    cache.insert("k", payload(50, 'y'));
    const auto stats = cache.stats();
    EXPECT_EQ(stats.entries, 1u);
    EXPECT_EQ(stats.bytes, 50u);
    EXPECT_EQ(*cache.lookup("k"), payload(50, 'y'));
}

TEST(HotCacheTest, ClearEmptiesEveryShard) {
    HotCache cache;
    for (int i = 0; i < 32; ++i) {
        std::string key = "k";
        key += std::to_string(i);
        cache.insert(key, "v");
    }
    cache.clear();
    EXPECT_EQ(cache.stats().entries, 0u);
    EXPECT_EQ(cache.stats().bytes, 0u);
    EXPECT_EQ(cache.lookup("k0"), nullptr);
}

TEST(HotCacheTest, BudgetHoldsUnderConcurrentHammer) {
    HotCacheConfig cfg;
    cfg.max_bytes = 64 * 1024;
    cfg.shards = 4;
    HotCache cache{cfg};

    constexpr int kThreads = 8;
    constexpr int kOpsPerThread = 2000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&cache, t] {
            for (int i = 0; i < kOpsPerThread; ++i) {
                const std::string key = "key-" + std::to_string((t * 37 + i) % 257);
                if (i % 3 == 0) {
                    cache.insert(key, payload(128 + static_cast<std::size_t>(i % 64),
                                              static_cast<char>('a' + t)));
                } else if (const auto v = cache.lookup(key)) {
                    // Touch the bytes so TSan sees reader/evictor interplay.
                    ASSERT_GE(v->size(), 128u);
                }
            }
        });
    }
    for (auto& th : threads) th.join();

    const auto stats = cache.stats();
    EXPECT_LE(stats.bytes, cfg.max_bytes);
    const std::uint64_t lookups_per_thread = kOpsPerThread - (kOpsPerThread + 2) / 3;
    EXPECT_EQ(stats.hits + stats.misses, kThreads * lookups_per_thread);
}
