// RequestCoalescer: single-flight semantics under real thread contention.
#include "service/coalescer.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <barrier>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

using namespace hsw::service;

namespace {

RequestCoalescer::Value make_value(std::string bytes,
                                   protocol::Source source = protocol::Source::Computed) {
    return {std::make_shared<const std::string>(std::move(bytes)), source};
}

}  // namespace

TEST(CoalescerTest, FirstJoinerIsLeader) {
    RequestCoalescer coalescer;
    auto first = coalescer.join("spec");
    auto second = coalescer.join("spec");
    EXPECT_TRUE(first.leader);
    EXPECT_FALSE(second.leader);

    coalescer.complete("spec", make_value("payload"));
    EXPECT_EQ(*first.result.get().payload, "payload");
    EXPECT_EQ(*second.result.get().payload, "payload");
    // Both waiters share the leader's allocation.
    EXPECT_EQ(first.result.get().payload.get(), second.result.get().payload.get());
}

TEST(CoalescerTest, ExactlyOneLeaderAmongConcurrentJoiners) {
    RequestCoalescer coalescer;
    constexpr int kThreads = 16;
    std::atomic<int> leaders{0};
    std::atomic<int> delivered{0};
    std::barrier sync{kThreads};
    std::barrier all_joined{kThreads};

    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
            sync.arrive_and_wait();  // maximize join() contention
            auto ticket = coalescer.join("hot-spec");
            if (ticket.leader) leaders.fetch_add(1);
            // Nobody completes until everyone joined, so no thread can
            // arrive after the flight retired and start a fresh one.
            all_joined.arrive_and_wait();
            if (ticket.leader) coalescer.complete("hot-spec", make_value("once"));
            if (*ticket.result.get().payload == "once") delivered.fetch_add(1);
        });
    }
    for (auto& th : threads) th.join();

    EXPECT_EQ(leaders.load(), 1);
    EXPECT_EQ(delivered.load(), kThreads);
    EXPECT_EQ(coalescer.stats().in_flight, 0u);
    EXPECT_EQ(coalescer.stats().leaders, 1u);
    EXPECT_EQ(coalescer.stats().followers,
              static_cast<std::uint64_t>(kThreads - 1));
}

TEST(CoalescerTest, DistinctKeysGetDistinctLeaders) {
    RequestCoalescer coalescer;
    auto a = coalescer.join("spec-a");
    auto b = coalescer.join("spec-b");
    EXPECT_TRUE(a.leader);
    EXPECT_TRUE(b.leader);
    coalescer.complete("spec-a", make_value("A"));
    coalescer.complete("spec-b", make_value("B"));
    EXPECT_EQ(*a.result.get().payload, "A");
    EXPECT_EQ(*b.result.get().payload, "B");
}

TEST(CoalescerTest, ValueCarriesProvenance) {
    RequestCoalescer coalescer;
    auto leader = coalescer.join("k");
    auto follower = coalescer.join("k");
    coalescer.complete("k", make_value("bytes", protocol::Source::DiskCache));
    EXPECT_EQ(follower.result.get().source, protocol::Source::DiskCache);
    EXPECT_EQ(leader.result.get().source, protocol::Source::DiskCache);
}

TEST(CoalescerTest, FailurePropagatesToEveryWaiter) {
    RequestCoalescer coalescer;
    auto leader = coalescer.join("doomed");
    auto follower = coalescer.join("doomed");
    ASSERT_TRUE(leader.leader);

    coalescer.fail("doomed",
                   std::make_exception_ptr(std::runtime_error{"job exploded"}));
    EXPECT_THROW((void)leader.result.get(), std::runtime_error);
    EXPECT_THROW((void)follower.result.get(), std::runtime_error);
}

TEST(CoalescerTest, FailureIsNotCached) {
    RequestCoalescer coalescer;
    auto first = coalescer.join("retry");
    coalescer.fail("retry", std::make_exception_ptr(std::runtime_error{"transient"}));
    EXPECT_THROW((void)first.result.get(), std::runtime_error);

    // The failed flight left the table: the next join starts fresh and can
    // succeed.
    auto second = coalescer.join("retry");
    EXPECT_TRUE(second.leader);
    coalescer.complete("retry", make_value("recovered"));
    EXPECT_EQ(*second.result.get().payload, "recovered");
}

TEST(CoalescerTest, PostCompletionJoinStartsFreshFlight) {
    RequestCoalescer coalescer;
    auto first = coalescer.join("k");
    coalescer.complete("k", make_value("v1"));
    ASSERT_EQ(*first.result.get().payload, "v1");

    auto second = coalescer.join("k");
    EXPECT_TRUE(second.leader);  // not attached to the retired flight
    coalescer.complete("k", make_value("v2"));
    EXPECT_EQ(*second.result.get().payload, "v2");
}

TEST(CoalescerTest, ConcurrentDistinctKeysComputeExactlyOnceEach) {
    RequestCoalescer coalescer;
    constexpr int kKeys = 8;
    constexpr int kThreadsPerKey = 4;
    std::atomic<int> computations{0};
    std::barrier all_joined{kKeys * kThreadsPerKey};

    std::vector<std::thread> threads;
    for (int k = 0; k < kKeys; ++k) {
        for (int t = 0; t < kThreadsPerKey; ++t) {
            threads.emplace_back([&, k] {
                const std::string key = "key-" + std::to_string(k);
                auto ticket = coalescer.join(key);
                all_joined.arrive_and_wait();  // see ExactlyOneLeader test
                if (ticket.leader) {
                    computations.fetch_add(1);
                    coalescer.complete(key, make_value(key + "-payload"));
                }
                EXPECT_EQ(*ticket.result.get().payload, key + "-payload");
            });
        }
    }
    for (auto& th : threads) th.join();

    EXPECT_EQ(computations.load(), kKeys);
    EXPECT_EQ(coalescer.stats().leaders, static_cast<std::uint64_t>(kKeys));
}
