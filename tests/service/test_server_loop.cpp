// SurveyServer: loopback round trips, malformed-frame handling, connection
// admission, and the shutdown verb.
#include "service/server.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <string>

#include "engine/engine.hpp"

using namespace hsw;
using namespace hsw::service;

namespace {

/// Server over a tiny synthetic registry so every test query is instant.
ServerConfig fast_config() {
    ServerConfig cfg;
    cfg.service.workers = 2;
    cfg.service.registry_factory = [](const protocol::Request& request) {
        engine::Experiment e;
        e.name = "echo";
        e.description = "one instant point";
        engine::Job job;
        job.spec.experiment = "echo";
        job.spec.point = "all";
        job.spec.base_seed = request.seed;
        job.run = [](const engine::ExperimentSpec& spec) {
            return "echo seed=" + std::to_string(spec.job_seed());
        };
        e.jobs.push_back(std::move(job));
        e.assemble = [](const std::vector<std::string>& payloads) {
            return std::vector<engine::Artifact>{
                {"echo.csv", engine::ArtifactKind::Csv, payloads.at(0)}};
        };
        return std::vector<engine::Experiment>{std::move(e)};
    };
    return cfg;
}

int connect_raw(std::uint16_t port) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr), 0);
    return fd;
}

}  // namespace

TEST(ServerLoop, PingRoundTripOverLoopback) {
    SurveyServer server{fast_config()};
    server.start();

    ServiceClient client{"127.0.0.1", server.port()};
    protocol::Request ping;
    ping.verb = protocol::Verb::Ping;
    const auto response = client.call(ping);
    EXPECT_TRUE(response.ok());
    EXPECT_EQ(response.payload, "pong");
    server.stop();
}

TEST(ServerLoop, QueryRoundTripAndPipelining) {
    SurveyServer server{fast_config()};
    server.start();

    ServiceClient client{"127.0.0.1", server.port()};
    protocol::Request req;
    req.verb = protocol::Verb::Query;
    req.experiment = "echo";
    req.point = "all";

    // Several requests down one connection; the second answers from the
    // hot cache with identical bytes.
    const auto first = client.call(req);
    ASSERT_TRUE(first.ok()) << first.payload;
    EXPECT_EQ(first.source, protocol::Source::Computed);
    const auto second = client.call(req);
    ASSERT_TRUE(second.ok());
    EXPECT_EQ(second.source, protocol::Source::HotCache);
    EXPECT_EQ(first.payload, second.payload);
    server.stop();
}

TEST(ServerLoop, UnknownExperimentComesBackStructured) {
    SurveyServer server{fast_config()};
    server.start();

    ServiceClient client{"127.0.0.1", server.port()};
    protocol::Request req;
    req.verb = protocol::Verb::Query;
    req.experiment = "no-such-thing";
    const auto response = client.call(req);
    EXPECT_EQ(response.code, protocol::ErrorCode::UnknownExperiment);
    EXPECT_NE(response.payload.find("echo"), std::string::npos);
    server.stop();
}

TEST(ServerLoop, GarbageFrameGetsMalformedRequestNotDisconnect) {
    SurveyServer server{fast_config()};
    server.start();

    const int fd = connect_raw(server.port());
    ASSERT_TRUE(protocol::write_frame(fd, "this is not a request"));
    const auto frame = protocol::read_frame(fd);
    ASSERT_TRUE(frame.has_value());
    const auto response = protocol::parse_response(*frame);
    ASSERT_TRUE(response.has_value());
    EXPECT_EQ(response->code, protocol::ErrorCode::MalformedRequest);

    // The connection survives: a well-formed request still works.
    protocol::Request ping;
    ping.verb = protocol::Verb::Ping;
    ASSERT_TRUE(protocol::write_frame(fd, ping.encode()));
    const auto pong = protocol::read_frame(fd);
    ASSERT_TRUE(pong.has_value());
    EXPECT_NE(pong->find("pong"), std::string::npos);
    ::close(fd);
    server.stop();
}

TEST(ServerLoop, ShutdownVerbStopsTheServer) {
    SurveyServer server{fast_config()};
    server.start();

    {
        ServiceClient client{"127.0.0.1", server.port()};
        protocol::Request shutdown;
        shutdown.verb = protocol::Verb::Shutdown;
        const auto response = client.call(shutdown);
        EXPECT_TRUE(response.ok());
        EXPECT_EQ(response.payload, "draining");
    }

    server.wait();  // returns because the verb drove stop()
    EXPECT_TRUE(server.stopped());
    EXPECT_TRUE(server.service().draining());
}

TEST(ServerLoop, ConnectionLimitRefusesStructurally) {
    ServerConfig cfg = fast_config();
    cfg.max_connections = 1;
    SurveyServer server{cfg};
    server.start();

    ServiceClient first{"127.0.0.1", server.port()};
    protocol::Request ping;
    ping.verb = protocol::Verb::Ping;
    ASSERT_TRUE(first.call(ping).ok());  // connection 1 is live and counted

    // Connection 2 is refused with one Overloaded response, then closed.
    const int fd = connect_raw(server.port());
    const auto frame = protocol::read_frame(fd);
    ASSERT_TRUE(frame.has_value());
    const auto response = protocol::parse_response(*frame);
    ASSERT_TRUE(response.has_value());
    EXPECT_EQ(response->code, protocol::ErrorCode::Overloaded);
    ::close(fd);
    server.stop();
}
