// SurveyServer: loopback round trips, malformed-frame handling, connection
// admission, and the shutdown verb.
#include "service/server.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.hpp"
#include "obs/ctx.hpp"
#include "obs/trace.hpp"

using namespace hsw;
using namespace hsw::service;

namespace {

/// Server over a tiny synthetic registry so every test query is instant.
ServerConfig fast_config() {
    ServerConfig cfg;
    cfg.service.workers = 2;
    cfg.service.registry_factory = [](const protocol::Request& request) {
        engine::Experiment e;
        e.name = "echo";
        e.description = "one instant point";
        engine::Job job;
        job.spec.experiment = "echo";
        job.spec.point = "all";
        job.spec.base_seed = request.seed;
        job.run = [](const engine::ExperimentSpec& spec) {
            return "echo seed=" + std::to_string(spec.job_seed());
        };
        e.jobs.push_back(std::move(job));
        e.assemble = [](const std::vector<std::string>& payloads) {
            return std::vector<engine::Artifact>{
                {"echo.csv", engine::ArtifactKind::Csv, payloads.at(0)}};
        };
        return std::vector<engine::Experiment>{std::move(e)};
    };
    return cfg;
}

int connect_raw(std::uint16_t port) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr), 0);
    return fd;
}

}  // namespace

TEST(ServerLoop, PingRoundTripOverLoopback) {
    SurveyServer server{fast_config()};
    server.start();

    ServiceClient client{"127.0.0.1", server.port()};
    protocol::Request ping;
    ping.verb = protocol::Verb::Ping;
    const auto response = client.call(ping);
    EXPECT_TRUE(response.ok());
    EXPECT_EQ(response.payload, "pong");
    server.stop();
}

TEST(ServerLoop, QueryRoundTripAndPipelining) {
    SurveyServer server{fast_config()};
    server.start();

    ServiceClient client{"127.0.0.1", server.port()};
    protocol::Request req;
    req.verb = protocol::Verb::Query;
    req.experiment = "echo";
    req.point = "all";

    // Several requests down one connection; the second answers from the
    // hot cache with identical bytes.
    const auto first = client.call(req);
    ASSERT_TRUE(first.ok()) << first.payload;
    EXPECT_EQ(first.source, protocol::Source::Computed);
    const auto second = client.call(req);
    ASSERT_TRUE(second.ok());
    EXPECT_EQ(second.source, protocol::Source::HotCache);
    EXPECT_EQ(first.payload, second.payload);
    server.stop();
}

TEST(ServerLoop, UnknownExperimentComesBackStructured) {
    SurveyServer server{fast_config()};
    server.start();

    ServiceClient client{"127.0.0.1", server.port()};
    protocol::Request req;
    req.verb = protocol::Verb::Query;
    req.experiment = "no-such-thing";
    const auto response = client.call(req);
    EXPECT_EQ(response.code, protocol::ErrorCode::UnknownExperiment);
    EXPECT_NE(response.payload.find("echo"), std::string::npos);
    server.stop();
}

TEST(ServerLoop, GarbageFrameGetsMalformedRequestNotDisconnect) {
    SurveyServer server{fast_config()};
    server.start();

    const int fd = connect_raw(server.port());
    ASSERT_TRUE(protocol::write_frame(fd, "this is not a request"));
    const auto frame = protocol::read_frame(fd);
    ASSERT_TRUE(frame.has_value());
    const auto response = protocol::parse_response(*frame);
    ASSERT_TRUE(response.has_value());
    EXPECT_EQ(response->code, protocol::ErrorCode::MalformedRequest);

    // The connection survives: a well-formed request still works.
    protocol::Request ping;
    ping.verb = protocol::Verb::Ping;
    ASSERT_TRUE(protocol::write_frame(fd, ping.encode()));
    const auto pong = protocol::read_frame(fd);
    ASSERT_TRUE(pong.has_value());
    EXPECT_NE(pong->find("pong"), std::string::npos);
    ::close(fd);
    server.stop();
}

TEST(ServerLoop, ShutdownVerbStopsTheServer) {
    SurveyServer server{fast_config()};
    server.start();

    {
        ServiceClient client{"127.0.0.1", server.port()};
        protocol::Request shutdown;
        shutdown.verb = protocol::Verb::Shutdown;
        const auto response = client.call(shutdown);
        EXPECT_TRUE(response.ok());
        EXPECT_EQ(response.payload, "draining");
    }

    server.wait();  // returns because the verb drove stop()
    EXPECT_TRUE(server.stopped());
    EXPECT_TRUE(server.service().draining());
}

TEST(ServerLoop, ConnectionLimitRefusesStructurally) {
    ServerConfig cfg = fast_config();
    cfg.max_connections = 1;
    SurveyServer server{cfg};
    server.start();

    ServiceClient first{"127.0.0.1", server.port()};
    protocol::Request ping;
    ping.verb = protocol::Verb::Ping;
    ASSERT_TRUE(first.call(ping).ok());  // connection 1 is live and counted

    // Connection 2 is refused with one Overloaded response, then closed.
    const int fd = connect_raw(server.port());
    const auto frame = protocol::read_frame(fd);
    ASSERT_TRUE(frame.has_value());
    const auto response = protocol::parse_response(*frame);
    ASSERT_TRUE(response.has_value());
    EXPECT_EQ(response->code, protocol::ErrorCode::Overloaded);
    ::close(fd);
    server.stop();
}

namespace {

/// fast_config plus a "slow" experiment whose single job parks the handler
/// thread long enough to observe tagged out-of-order completion.
ServerConfig slow_and_fast_config() {
    ServerConfig cfg = fast_config();
    const auto echo_factory = cfg.service.registry_factory;
    cfg.service.registry_factory =
        [echo_factory](const protocol::Request& request) {
            auto experiments = echo_factory(request);
            engine::Experiment slow;
            slow.name = "slow";
            slow.description = "one deliberately slow point";
            engine::Job job;
            job.spec.experiment = "slow";
            job.spec.point = "all";
            job.spec.base_seed = request.seed;
            job.run = [](const engine::ExperimentSpec&) {
                std::this_thread::sleep_for(std::chrono::milliseconds{200});
                return std::string{"slow bytes"};
            };
            slow.jobs.push_back(std::move(job));
            slow.assemble = [](const std::vector<std::string>& payloads) {
                return std::vector<engine::Artifact>{
                    {"slow.csv", engine::ArtifactKind::Csv, payloads.at(0)}};
            };
            experiments.push_back(std::move(slow));
            return experiments;
        };
    return cfg;
}

void write_all_raw(int fd, const char* data, std::size_t len) {
    std::size_t done = 0;
    while (done < len) {
        const ssize_t n = ::write(fd, data + done, len - done);
        ASSERT_GT(n, 0);
        done += static_cast<std::size_t>(n);
    }
}

/// One length-prefixed frame as raw bytes, ready for dribbling.
std::string raw_frame(const std::string& body) {
    const std::uint32_t len = static_cast<std::uint32_t>(body.size());
    std::string out;
    out.push_back(static_cast<char>(len >> 24));
    out.push_back(static_cast<char>(len >> 16));
    out.push_back(static_cast<char>(len >> 8));
    out.push_back(static_cast<char>(len));
    out += body;
    return out;
}

}  // namespace

TEST(ServerLoop, PartialWritesAcrossFrameBoundariesReassemble) {
    SurveyServer server{fast_config()};
    server.start();
    const int fd = connect_raw(server.port());

    protocol::Request ping;
    ping.verb = protocol::Verb::Ping;
    const std::string one = raw_frame(ping.encode());

    // Dribble the first frame one byte at a time -- every read the reactor
    // does lands mid-prefix or mid-body.
    for (const char c : one) {
        write_all_raw(fd, &c, 1);
    }
    auto response = protocol::read_frame(fd);
    ASSERT_TRUE(response.has_value());
    EXPECT_NE(response->find("pong"), std::string::npos);

    // Then two frames plus a torn third in one write: both whole frames
    // answer, the tail waits for its remainder instead of desyncing.
    const std::string torn = one + one + one.substr(0, 7);
    write_all_raw(fd, torn.data(), torn.size());
    ASSERT_TRUE(protocol::read_frame(fd).has_value());
    ASSERT_TRUE(protocol::read_frame(fd).has_value());
    write_all_raw(fd, one.data() + 7, one.size() - 7);
    response = protocol::read_frame(fd);
    ASSERT_TRUE(response.has_value());
    EXPECT_NE(response->find("pong"), std::string::npos);

    ::close(fd);
    server.stop();
}

TEST(ServerLoop, TaggedResponsesCompleteOutOfOrder) {
    SurveyServer server{slow_and_fast_config()};
    server.start();
    const int fd = connect_raw(server.port());

    // One batch: a slow compute (tag 1) then a ping (tag 2). The ping
    // finishes first and, being tagged, is flushed immediately; the slow
    // response follows when its job lands.
    protocol::Request slow;
    slow.verb = protocol::Verb::Query;
    slow.experiment = "slow";
    slow.point = "all";
    slow.tag = 1;
    protocol::Request ping;
    ping.verb = protocol::Verb::Ping;
    ping.tag = 2;
    ASSERT_TRUE(protocol::write_frame(fd, protocol::encode_batch({slow, ping})));

    const auto first = protocol::read_frame(fd);
    ASSERT_TRUE(first.has_value());
    const auto first_response = protocol::parse_response(*first);
    ASSERT_TRUE(first_response.has_value());
    EXPECT_EQ(first_response->tag, 2u);  // the ping overtook the compute
    EXPECT_EQ(first_response->payload, "pong");

    const auto second = protocol::read_frame(fd);
    ASSERT_TRUE(second.has_value());
    const auto second_response = protocol::parse_response(*second);
    ASSERT_TRUE(second_response.has_value());
    EXPECT_EQ(second_response->tag, 1u);
    EXPECT_TRUE(second_response->ok());

    ::close(fd);
    server.stop();
}

TEST(ServerLoop, MalformedBatchRejectedWholeAndConnectionSurvives) {
    SurveyServer server{fast_config()};
    server.start();
    const int fd = connect_raw(server.port());

    // Structurally a batch, but the count lies about the body.
    const std::string bogus =
        std::string{protocol::kMagic} + "\nverb batch\ncount 2\njunk";
    ASSERT_TRUE(protocol::write_frame(fd, bogus));
    const auto frame = protocol::read_frame(fd);
    ASSERT_TRUE(frame.has_value());
    const auto response = protocol::parse_response(*frame);
    ASSERT_TRUE(response.has_value());
    EXPECT_EQ(response->code, protocol::ErrorCode::MalformedRequest);
    EXPECT_EQ(response->tag, 0u);  // one untagged rejection for the whole batch

    // No further responses for the bogus batch, and the connection still
    // serves well-formed traffic.
    protocol::Request ping;
    ping.verb = protocol::Verb::Ping;
    ASSERT_TRUE(protocol::write_frame(fd, ping.encode()));
    const auto pong = protocol::read_frame(fd);
    ASSERT_TRUE(pong.has_value());
    EXPECT_NE(pong->find("pong"), std::string::npos);

    ::close(fd);
    server.stop();
}

TEST(ServerLoop, PipelinedReplayIsByteIdenticalToSingleCalls) {
    SurveyServer server{fast_config()};
    server.start();

    ServiceClient client{"127.0.0.1", server.port()};
    protocol::Request req;
    req.verb = protocol::Verb::Query;
    req.experiment = "echo";
    req.point = "all";
    const auto reference = client.call(req);
    ASSERT_TRUE(reference.ok()) << reference.payload;

    const std::vector<protocol::Request> window(8, req);
    const auto responses = client.call_pipelined(window);
    EXPECT_EQ(client.batch_supported(), true);
    ASSERT_EQ(responses.size(), window.size());
    for (const auto& response : responses) {
        ASSERT_TRUE(response.ok());
        EXPECT_EQ(response.payload, reference.payload);
        EXPECT_EQ(response.source, protocol::Source::HotCache);
    }
    server.stop();
}

// --- v1.4: distributed trace context ----------------------------------------

namespace {

/// Scripted legacy peer: a raw listening socket whose accept loop the test
/// drives frame by frame, for exercising the client's capability fallback
/// against servers that predate v1.4.
struct RawListener {
    int listen_fd = -1;
    std::uint16_t port = 0;
    RawListener() {
        listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
        EXPECT_GE(listen_fd, 0);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        EXPECT_EQ(::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr),
                         sizeof addr),
                  0);
        socklen_t len = sizeof addr;
        EXPECT_EQ(::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                                &len),
                  0);
        port = ntohs(addr.sin_port);
        EXPECT_EQ(::listen(listen_fd, 1), 0);
    }
    ~RawListener() {
        if (listen_fd >= 0) ::close(listen_fd);
    }
    [[nodiscard]] int accept() const { return ::accept(listen_fd, nullptr, nullptr); }
};

}  // namespace

TEST(ServerLoop, TracedQueryLinksClientAndServerSpans) {
    // Client and server share this process, so both ends' spans land in
    // the same rings: the export must show one tree under one trace_id.
    obs::trace::enable();
    SurveyServer server{fast_config()};
    server.start();

    const auto root = obs::trace::make_root(true);
    {
        obs::trace::ContextScope scope{root};
        ServiceClient client{"127.0.0.1", server.port()};
        protocol::Request req;
        req.verb = protocol::Verb::Query;
        req.experiment = "echo";
        req.point = "all";
        const auto response = client.call(req);
        ASSERT_TRUE(response.ok()) << response.payload;
    }
    server.stop();
    obs::trace::disable();

    char want_trace[32];
    std::snprintf(want_trace, sizeof want_trace, "\"trace_id\":\"%016llx\"",
                  static_cast<unsigned long long>(root.trace_id));
    const std::string json = obs::trace::export_chrome_json();
    obs::trace::clear();

    // Both hops carry the shared trace_id.
    EXPECT_NE(json.find("client.call"), std::string::npos);
    EXPECT_NE(json.find("server.request"), std::string::npos);
    const auto first = json.find(want_trace);
    ASSERT_NE(first, std::string::npos) << json;
    EXPECT_NE(json.find(want_trace, first + 1), std::string::npos)
        << "only one span carries the trace_id";
}

TEST(ServerLoop, TraceDumpVerbReturnsTheSpanRing) {
    obs::trace::enable();
    SurveyServer server{fast_config()};
    server.start();

    ServiceClient client{"127.0.0.1", server.port()};
    protocol::Request req;
    req.verb = protocol::Verb::TraceDump;
    const auto response = client.call(req);
    ASSERT_TRUE(response.ok()) << response.payload;
    EXPECT_NE(response.payload.find("traceEvents"), std::string::npos);
    server.stop();
    obs::trace::disable();
    obs::trace::clear();
}

TEST(ServerLoop, TracedClientFallsBackAgainstPreV14Server) {
    RawListener legacy;
    std::thread peer{[&legacy] {
        const int fd = legacy.accept();
        ASSERT_GE(fd, 0);
        // Round 1: the traced request earns the pre-v1.4 rejection.
        auto frame = protocol::read_frame(fd);
        ASSERT_TRUE(frame.has_value());
        ASSERT_NE(frame->find("\ntrace "), std::string::npos);
        protocol::Response reject;
        reject.code = protocol::ErrorCode::MalformedRequest;
        reject.payload = "unknown request field: trace";
        ASSERT_TRUE(protocol::write_frame(fd, reject.encode()));
        // Round 2: the same request, header stripped.
        frame = protocol::read_frame(fd);
        ASSERT_TRUE(frame.has_value());
        EXPECT_EQ(frame->find("\ntrace "), std::string::npos);
        protocol::Response pong;
        pong.payload = "pong";
        ASSERT_TRUE(protocol::write_frame(fd, pong.encode()));
        // A second call must skip the probe: no trace header, no retry.
        frame = protocol::read_frame(fd);
        ASSERT_TRUE(frame.has_value());
        EXPECT_EQ(frame->find("\ntrace "), std::string::npos);
        ASSERT_TRUE(protocol::write_frame(fd, pong.encode()));
        ::close(fd);
    }};

    const auto root = obs::trace::make_root(true);
    obs::trace::ContextScope scope{root};
    ServiceClient client{"127.0.0.1", legacy.port};
    protocol::Request ping;
    ping.verb = protocol::Verb::Ping;
    const auto first = client.call(ping);
    EXPECT_TRUE(first.ok());
    EXPECT_EQ(first.payload, "pong");
    const auto second = client.call(ping);
    EXPECT_TRUE(second.ok());
    peer.join();
}

TEST(ServerLoop, TracedPipelineFallsBackAgainstV13Server) {
    // A v1.3 peer understands batch frames but rejects the trace header
    // with the batched form of the capability probe. The client must stay
    // batched, strip the headers, and deliver every response.
    RawListener legacy;
    std::thread peer{[&legacy] {
        const int fd = legacy.accept();
        ASSERT_GE(fd, 0);
        auto frame = protocol::read_frame(fd);
        ASSERT_TRUE(frame.has_value());
        ASSERT_TRUE(protocol::looks_like_batch(*frame));
        {
            const auto batch = protocol::parse_batch(*frame);
            ASSERT_TRUE(batch.has_value());
            ASSERT_TRUE((*batch)[0].has_trace());
        }
        protocol::Response reject;
        reject.code = protocol::ErrorCode::MalformedRequest;
        reject.payload = "batch sub-request 0: unknown request field: trace";
        ASSERT_TRUE(protocol::write_frame(fd, reject.encode()));

        frame = protocol::read_frame(fd);
        ASSERT_TRUE(frame.has_value());
        ASSERT_TRUE(protocol::looks_like_batch(*frame));
        const auto batch = protocol::parse_batch(*frame);
        ASSERT_TRUE(batch.has_value());
        ASSERT_EQ(batch->size(), 3u);
        for (const auto& sub : *batch) {
            EXPECT_FALSE(sub.has_trace());
            protocol::Response resp;
            resp.payload = "pong";
            resp.tag = sub.tag;
            ASSERT_TRUE(protocol::write_frame(fd, resp.encode()));
        }
        ::close(fd);
    }};

    const auto root = obs::trace::make_root(true);
    obs::trace::ContextScope scope{root};
    ServiceClient client{"127.0.0.1", legacy.port};
    std::vector<protocol::Request> window(3);
    for (auto& req : window) req.verb = protocol::Verb::Ping;
    const auto responses = client.call_pipelined(window);
    ASSERT_EQ(responses.size(), 3u);
    for (const auto& response : responses) {
        EXPECT_TRUE(response.ok());
        EXPECT_EQ(response.payload, "pong");
    }
    EXPECT_EQ(client.batch_supported(), true);
    peer.join();
}

TEST(ServerLoop, TracedPipelineAgainstV14ServerKeepsGoldenBytes) {
    // Trace headers are pure telemetry: a traced pipelined window returns
    // payloads byte-identical to an untraced single call.
    SurveyServer server{fast_config()};
    server.start();
    ServiceClient client{"127.0.0.1", server.port()};
    protocol::Request req;
    req.verb = protocol::Verb::Query;
    req.experiment = "echo";
    req.point = "all";
    const auto reference = client.call(req);
    ASSERT_TRUE(reference.ok());

    const auto root = obs::trace::make_root(true);
    obs::trace::ContextScope scope{root};
    const std::vector<protocol::Request> window(4, req);
    const auto responses = client.call_pipelined(window);
    ASSERT_EQ(responses.size(), window.size());
    for (const auto& response : responses) {
        ASSERT_TRUE(response.ok());
        EXPECT_EQ(response.payload, reference.payload);
    }
    server.stop();
}
