// Wire protocol: encode/parse round trips, malformed-input rejection, and
// frame I/O over a real pipe.
#include "service/protocol.hpp"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

using namespace hsw::service::protocol;

namespace {

struct Pipe {
    int read_fd = -1;
    int write_fd = -1;
    Pipe() {
        int fds[2];
        EXPECT_EQ(::pipe(fds), 0);
        read_fd = fds[0];
        write_fd = fds[1];
    }
    ~Pipe() {
        if (read_fd >= 0) ::close(read_fd);
        if (write_fd >= 0) ::close(write_fd);
    }
    void close_write() {
        ::close(write_fd);
        write_fd = -1;
    }
};

}  // namespace

TEST(ProtocolTest, RequestRoundTripPreservesEveryField) {
    Request req;
    req.verb = Verb::Query;
    req.experiment = "fig7";
    req.point = "stride=64";
    req.seed = 0xDEADBEEFCAFEull;
    req.audit = hsw::analysis::AuditMode::Strict;
    req.quick = true;
    req.deadline_ms = 1500;

    std::string error;
    const auto parsed = parse_request(req.encode(), &error);
    ASSERT_TRUE(parsed.has_value()) << error;
    EXPECT_EQ(parsed->verb, Verb::Query);
    EXPECT_EQ(parsed->experiment, "fig7");
    EXPECT_EQ(parsed->point, "stride=64");
    EXPECT_EQ(parsed->seed, 0xDEADBEEFCAFEull);
    EXPECT_EQ(parsed->audit, hsw::analysis::AuditMode::Strict);
    EXPECT_TRUE(parsed->quick);
    EXPECT_EQ(parsed->deadline_ms, 1500u);
}

TEST(ProtocolTest, NonQueryVerbsOmitQueryFields) {
    Request req;
    req.verb = Verb::Ping;
    const std::string wire = req.encode();
    EXPECT_EQ(wire.find("experiment"), std::string::npos);
    const auto parsed = parse_request(wire);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->verb, Verb::Ping);
}

TEST(ProtocolTest, RequestParseRejectsMalformedInput) {
    const struct {
        const char* wire;
        const char* why;
    } cases[] = {
        {"not-the-magic\nverb ping\n", "bad magic"},
        {"hsw-survey-rpc v1\n", "missing verb"},
        {"hsw-survey-rpc v1\nverb frobnicate\n", "unknown verb"},
        {"hsw-survey-rpc v1\nverb query\n", "query without experiment"},
        {"hsw-survey-rpc v1\nverb query\nexperiment fig3\nseed zzz\n", "bad seed"},
        {"hsw-survey-rpc v1\nverb query\nexperiment fig3\naudit loud\n", "bad audit"},
        {"hsw-survey-rpc v1\nverb query\nexperiment fig3\nquick maybe\n",
         "bad quick"},
        {"hsw-survey-rpc v1\nverb ping\nbogus-field 1\n", "unknown field"},
        {"hsw-survey-rpc v1\nverb query\nexperiment fig3\npoint\n", "empty point"},
        {"hsw-survey-rpc v1\nverb ping\ndeadline-ms 99999999999\n",
         "deadline overflow"},
    };
    for (const auto& c : cases) {
        std::string error;
        EXPECT_FALSE(parse_request(c.wire, &error).has_value()) << c.why;
        EXPECT_FALSE(error.empty()) << c.why;
    }
}

TEST(ProtocolTest, SuccessResponseRoundTrip) {
    Response resp;
    resp.code = ErrorCode::None;
    resp.source = Source::DiskCache;
    // Payload with newlines and a fake header line: the length prefix must
    // keep the parser from reading it as protocol text.
    resp.payload = "line1\npayload-bytes 9999\nline3";

    std::string error;
    const auto parsed = parse_response(resp.encode(), &error);
    ASSERT_TRUE(parsed.has_value()) << error;
    EXPECT_TRUE(parsed->ok());
    EXPECT_EQ(parsed->source, Source::DiskCache);
    EXPECT_EQ(parsed->payload, resp.payload);
}

TEST(ProtocolTest, ErrorResponseRoundTrip) {
    Response resp;
    resp.code = ErrorCode::Overloaded;
    resp.payload = "queue full (64 pending)";
    const auto parsed = parse_response(resp.encode());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_FALSE(parsed->ok());
    EXPECT_EQ(parsed->code, ErrorCode::Overloaded);
    EXPECT_EQ(parsed->payload, "queue full (64 pending)");
}

TEST(ProtocolTest, ResponseParseRejectsLengthMismatch) {
    std::string wire = "hsw-survey-rpc v1\nstatus ok\nsource computed\n";
    wire += "payload-bytes 10\nshort";  // claims 10, carries 5
    std::string error;
    EXPECT_FALSE(parse_response(wire, &error).has_value());
    EXPECT_EQ(error, "payload length mismatch");
}

TEST(ProtocolTest, ResponseParseRejectsErrorWithoutCode) {
    std::string error;
    EXPECT_FALSE(
        parse_response("hsw-survey-rpc v1\nstatus error\npayload-bytes 0\n", &error)
            .has_value());
    EXPECT_EQ(error, "error status without code");
}

TEST(ProtocolTest, FrameRoundTripOverPipe) {
    Pipe pipe;
    const std::string payload{"hello frame \x00\x01\x02 binary", 22};  // embedded NUL
    ASSERT_TRUE(write_frame(pipe.write_fd, payload));
    const auto read_back = read_frame(pipe.read_fd);
    ASSERT_TRUE(read_back.has_value());
    EXPECT_EQ(*read_back, payload);
}

TEST(ProtocolTest, EmptyFrameIsLegal) {
    Pipe pipe;
    ASSERT_TRUE(write_frame(pipe.write_fd, ""));
    const auto read_back = read_frame(pipe.read_fd);
    ASSERT_TRUE(read_back.has_value());
    EXPECT_TRUE(read_back->empty());
}

TEST(ProtocolTest, SequentialFramesStayDelimited) {
    Pipe pipe;
    ASSERT_TRUE(write_frame(pipe.write_fd, "first"));
    ASSERT_TRUE(write_frame(pipe.write_fd, "second\nwith newline"));
    EXPECT_EQ(*read_frame(pipe.read_fd), "first");
    EXPECT_EQ(*read_frame(pipe.read_fd), "second\nwith newline");
}

TEST(ProtocolTest, CleanEofYieldsNullopt) {
    Pipe pipe;
    pipe.close_write();
    EXPECT_FALSE(read_frame(pipe.read_fd).has_value());
}

TEST(ProtocolTest, TruncatedFrameYieldsNullopt) {
    Pipe pipe;
    // Length prefix says 100 bytes, writer hangs up after 3.
    const char prefix[4] = {0, 0, 0, 100};
    ASSERT_EQ(::write(pipe.write_fd, prefix, 4), 4);
    ASSERT_EQ(::write(pipe.write_fd, "abc", 3), 3);
    pipe.close_write();
    EXPECT_FALSE(read_frame(pipe.read_fd).has_value());
}

TEST(ProtocolTest, OversizedLengthPrefixIsRejectedBeforeAllocating) {
    Pipe pipe;
    const char prefix[4] = {static_cast<char>(0xFF), static_cast<char>(0xFF),
                            static_cast<char>(0xFF), static_cast<char>(0xFF)};
    ASSERT_EQ(::write(pipe.write_fd, prefix, 4), 4);
    EXPECT_FALSE(read_frame(pipe.read_fd).has_value());
}

TEST(ProtocolTest, NamesAreStableWireStrings) {
    // These strings are wire ABI (clients match on them); lock them down.
    EXPECT_EQ(name(ErrorCode::Overloaded), "overloaded");
    EXPECT_EQ(name(ErrorCode::DeadlineExceeded), "deadline-exceeded");
    EXPECT_EQ(name(ErrorCode::ShuttingDown), "shutting-down");
    EXPECT_EQ(name(Source::HotCache), "hot-cache");
    EXPECT_EQ(name(Source::DiskCache), "disk-cache");
    EXPECT_EQ(name(Source::Computed), "computed");
    EXPECT_EQ(name(Verb::Query), "query");
    EXPECT_EQ(name(Verb::Metrics), "metrics");
    EXPECT_EQ(name(MetricsFormat::Prometheus), "prometheus");
    EXPECT_EQ(name(MetricsFormat::Json), "json");
}

TEST(ProtocolTest, MetricsVerbRoundTripsWithFormat) {
    Request req;
    req.verb = Verb::Metrics;
    req.format = MetricsFormat::Json;
    const std::string wire = req.encode();
    EXPECT_NE(wire.find("verb metrics\n"), std::string::npos);
    EXPECT_NE(wire.find("format json\n"), std::string::npos);

    std::string error;
    const auto parsed = parse_request(wire, &error);
    ASSERT_TRUE(parsed.has_value()) << error;
    EXPECT_EQ(parsed->verb, Verb::Metrics);
    EXPECT_EQ(parsed->format, MetricsFormat::Json);
}

TEST(ProtocolTest, MetricsFormatDefaultsToPrometheus) {
    const auto parsed = parse_request("hsw-survey-rpc v1\nverb metrics\n");
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->verb, Verb::Metrics);
    EXPECT_EQ(parsed->format, MetricsFormat::Prometheus);
}

TEST(ProtocolTest, MetricsFormatRejectsUnknownValue) {
    std::string error;
    EXPECT_FALSE(
        parse_request("hsw-survey-rpc v1\nverb metrics\nformat xml\n", &error)
            .has_value());
    EXPECT_EQ(error, "bad metrics format");
}

TEST(ProtocolTest, MinorRevisionMagicIsAccepted) {
    // A v1.<minor> peer self-identifies additive capabilities; both sides
    // must still parse its frames.
    const auto parsed = parse_request("hsw-survey-rpc v1.1\nverb ping\n");
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->verb, Verb::Ping);

    const auto response =
        parse_response("hsw-survey-rpc v1.42\nstatus ok\nsource computed\n"
                       "payload-bytes 2\nok");
    ASSERT_TRUE(response.has_value());
    EXPECT_EQ(response->payload, "ok");
}

TEST(ProtocolTest, MajorRevisionOrJunkMagicIsRejected) {
    std::string error;
    EXPECT_FALSE(parse_request("hsw-survey-rpc v2\nverb ping\n", &error).has_value());
    EXPECT_FALSE(parse_request("hsw-survey-rpc v1.x\nverb ping\n").has_value());
    EXPECT_FALSE(parse_request("hsw-survey-rpc v1.\nverb ping\n").has_value());
}

TEST(ProtocolTest, OldServerAnswersMetricsVerbWithUnknownVerb) {
    // Capability detection: a v1.0 server has no Metrics case in its verb
    // table, so the client sees MalformedRequest("unknown verb") and falls
    // back. Simulate the old parser by feeding a verb it never knew.
    std::string error;
    EXPECT_FALSE(
        parse_request("hsw-survey-rpc v1\nverb telemetry\n", &error).has_value());
    EXPECT_EQ(error, "unknown verb");
}

TEST(ProtocolTest, MultiDigitMinorRevisionIsAccepted) {
    // "v1.10" must parse as minor ten, not be confused with "v1.1" plus a
    // stray zero: the minor is the whole digit run after the dot.
    const auto parsed = parse_request("hsw-survey-rpc v1.10\nverb ping\n");
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->verb, Verb::Ping);
}

TEST(ProtocolTest, TrailingJunkAfterMinorIsRejected) {
    // Additive minors are digits only; any suffix is a different (future,
    // incompatible) dialect and must not half-parse.
    EXPECT_FALSE(parse_request("hsw-survey-rpc v1.2beta\nverb ping\n").has_value());
    EXPECT_FALSE(parse_request("hsw-survey-rpc v1.2.3\nverb ping\n").has_value());
    EXPECT_FALSE(parse_request("hsw-survey-rpc v1.2 \nverb ping\n").has_value());
}

TEST(ProtocolTest, HealthVerbRoundTrips) {
    Request req;
    req.verb = Verb::Health;
    const std::string wire = req.encode();
    EXPECT_NE(wire.find("verb health\n"), std::string::npos);
    const auto parsed = parse_request(wire);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->verb, Verb::Health);
}

TEST(ProtocolTest, HealthVerbAgainstV11ServerIsUnknownVerb) {
    // The router's capability probe depends on this exact failure mode: a
    // v1.1 shard rejects `health` as an unknown verb (MalformedRequest on
    // the wire), and the router falls back to probing via `metrics`.
    std::string error;
    EXPECT_FALSE(
        parse_request("hsw-survey-rpc v1\nverb nothealth\n", &error).has_value());
    EXPECT_EQ(error, "unknown verb");
}

TEST(ProtocolTest, UnavailableCodeRoundTrips) {
    Response resp;
    resp.code = ErrorCode::Unavailable;
    resp.payload = "every replica of shard fig3 is down";
    const auto parsed = parse_response(resp.encode());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_FALSE(parsed->ok());
    EXPECT_EQ(parsed->code, ErrorCode::Unavailable);
    EXPECT_EQ(name(ErrorCode::Unavailable), "unavailable");
}

TEST(ProtocolTest, RouteKeyIsContentIdentityOnly) {
    Request req;
    req.verb = Verb::Query;
    req.experiment = "fig7";
    req.point = "stride=64";
    req.seed = 42;
    const std::string key = route_key(req);
    EXPECT_EQ(key.size(), 64u);  // sha256 hex

    // Delivery preferences must not move a key between shards: the same
    // spec with a different deadline or metrics format routes identically.
    Request other = req;
    other.deadline_ms = 9999;
    EXPECT_EQ(route_key(other), key);

    // Identity fields do move it.
    other = req;
    other.seed = 43;
    EXPECT_NE(route_key(other), key);
    other = req;
    other.point = "stride=128";
    EXPECT_NE(route_key(other), key);
    other = req;
    other.quick = true;
    EXPECT_NE(route_key(other), key);
}

// --- v1.3: tags and batch frames ---------------------------------------------

TEST(ProtocolTest, TagRoundTripsAndDefaultsToUntagged) {
    Request req;
    req.verb = Verb::Query;
    req.experiment = "fig3";
    req.tag = 0xABCDEF0123456789ull;
    const auto parsed = parse_request(req.encode());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->tag, 0xABCDEF0123456789ull);

    // Tag is delivery metadata, not identity: it must not move the key.
    Request untagged = req;
    untagged.tag = 0;
    EXPECT_EQ(route_key(req), route_key(untagged));
    const auto plain = parse_request(untagged.encode());
    ASSERT_TRUE(plain.has_value());
    EXPECT_EQ(plain->tag, 0u);

    Response resp;
    resp.payload = "bytes";
    resp.tag = 77;
    const auto back = parse_response(resp.encode());
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->tag, 77u);
}

TEST(ProtocolTest, BatchEncodeParseRoundTrip) {
    std::vector<Request> batch(3);
    for (std::size_t i = 0; i < batch.size(); ++i) {
        batch[i].verb = Verb::Query;
        batch[i].experiment = "fig" + std::to_string(i);
        batch[i].tag = i + 1;
    }
    const std::string frame = encode_batch(batch);
    EXPECT_TRUE(looks_like_batch(frame));
    EXPECT_FALSE(looks_like_batch(batch[0].encode()));

    std::string error;
    const auto parsed = parse_batch(frame, &error);
    ASSERT_TRUE(parsed.has_value()) << error;
    ASSERT_EQ(parsed->size(), 3u);
    for (std::size_t i = 0; i < parsed->size(); ++i) {
        EXPECT_EQ((*parsed)[i].experiment, "fig" + std::to_string(i));
        EXPECT_EQ((*parsed)[i].tag, i + 1);
    }
}

TEST(ProtocolTest, BatchRejectsBadCount) {
    const std::string head = std::string{kMagic} + "\nverb batch\n";
    std::string error;
    EXPECT_FALSE(parse_batch(head + "count 0\n", &error).has_value());
    EXPECT_FALSE(parse_batch(head + "count 1025\n", &error).has_value());
    EXPECT_EQ(error, "bad batch count");
    EXPECT_FALSE(parse_batch(head + "count banana\n", &error).has_value());
    EXPECT_FALSE(parse_batch(head, &error).has_value());  // missing count
}

TEST(ProtocolTest, BatchRejectsTruncationWhole) {
    Request req;
    req.verb = Verb::Ping;
    const std::string frame = encode_batch({req, req});

    // Cut inside the second length prefix, then inside the second body:
    // both reject the batch whole rather than yielding a partial vector.
    std::string error;
    EXPECT_FALSE(parse_batch(frame.substr(0, frame.size() - req.encode().size() - 2),
                             &error)
                     .has_value());
    EXPECT_EQ(error, "truncated batch length prefix");
    EXPECT_FALSE(parse_batch(frame.substr(0, frame.size() - 1), &error).has_value());
    EXPECT_EQ(error, "truncated batch sub-request");
}

TEST(ProtocolTest, BatchRejectsTrailingBytesAndBadSubRequest) {
    Request req;
    req.verb = Verb::Ping;
    std::string error;
    EXPECT_FALSE(parse_batch(encode_batch({req}) + "x", &error).has_value());
    EXPECT_EQ(error, "trailing bytes after batch");

    // A sub-request that is not a valid request poisons the whole frame.
    std::string frame = std::string{kMagic} + "\nverb batch\ncount 1\n";
    const std::string junk = "not a request";
    const std::uint32_t len = static_cast<std::uint32_t>(junk.size());
    const char prefix[4] = {static_cast<char>(len >> 24), static_cast<char>(len >> 16),
                            static_cast<char>(len >> 8), static_cast<char>(len)};
    frame.append(prefix, sizeof prefix);
    frame += junk;
    EXPECT_FALSE(parse_batch(frame, &error).has_value());
    EXPECT_NE(error.find("batch sub-request 0"), std::string::npos);
}

namespace {

/// A connected stream pair: `client` drives call_batch_over_fd, `server`
/// is scripted by the test.
struct StreamPair {
    int client = -1;
    int server = -1;
    StreamPair() {
        int fds[2];
        EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
        client = fds[0];
        server = fds[1];
    }
    ~StreamPair() {
        if (client >= 0) ::close(client);
        if (server >= 0) ::close(server);
    }
};

}  // namespace

TEST(ProtocolTest, CallBatchReordersTaggedResponses) {
    StreamPair fds;
    std::vector<Request> requests(3);
    for (std::size_t i = 0; i < requests.size(); ++i) {
        requests[i].verb = Verb::Query;
        requests[i].experiment = "fig" + std::to_string(i);
    }
    requests[2].tag = 99;  // caller-chosen tag must be preserved

    std::thread server{[&fds] {
        const auto frame = read_frame(fds.server);
        ASSERT_TRUE(frame.has_value());
        ASSERT_TRUE(looks_like_batch(*frame));
        const auto batch = parse_batch(*frame);
        ASSERT_TRUE(batch.has_value());
        ASSERT_EQ(batch->size(), 3u);
        // Answer in reverse order: tags let the client reorder.
        for (std::size_t i = batch->size(); i-- > 0;) {
            Response resp;
            resp.payload = "payload for " + (*batch)[i].experiment;
            resp.tag = (*batch)[i].tag;
            ASSERT_TRUE(write_frame(fds.server, resp.encode()));
        }
    }};

    std::optional<bool> batch_supported;
    const auto responses = call_batch_over_fd(fds.client, requests, batch_supported);
    server.join();
    EXPECT_EQ(batch_supported, true);
    ASSERT_EQ(responses.size(), 3u);
    for (std::size_t i = 0; i < responses.size(); ++i) {
        EXPECT_EQ(responses[i].payload, "payload for fig" + std::to_string(i));
    }
    // The helper's bookkeeping tags are stripped; the caller's own survives.
    EXPECT_EQ(responses[0].tag, 0u);
    EXPECT_EQ(responses[1].tag, 0u);
    EXPECT_EQ(responses[2].tag, 99u);
}

TEST(ProtocolTest, CallBatchFallsBackAgainstPreV13Server) {
    StreamPair fds;
    std::vector<Request> requests(2);
    requests[0].verb = Verb::Ping;
    requests[1].verb = Verb::Ping;

    std::thread server{[&fds] {
        // A pre-v1.3 server: rejects the batch frame whole with one
        // untagged MalformedRequest, then answers singles normally.
        const auto frame = read_frame(fds.server);
        ASSERT_TRUE(frame.has_value());
        ASSERT_TRUE(looks_like_batch(*frame));
        Response reject;
        reject.code = ErrorCode::MalformedRequest;
        reject.payload = "unknown verb";
        ASSERT_TRUE(write_frame(fds.server, reject.encode()));
        for (int i = 0; i < 2; ++i) {
            const auto single = read_frame(fds.server);
            ASSERT_TRUE(single.has_value());
            ASSERT_FALSE(looks_like_batch(*single));
            Response resp;
            resp.payload = "pong";
            ASSERT_TRUE(write_frame(fds.server, resp.encode()));
        }
    }};

    std::optional<bool> batch_supported;
    const auto responses = call_batch_over_fd(fds.client, requests, batch_supported);
    server.join();
    EXPECT_EQ(batch_supported, false);  // memoized: next call skips the probe
    ASSERT_EQ(responses.size(), 2u);
    EXPECT_EQ(responses[0].payload, "pong");
    EXPECT_EQ(responses[1].payload, "pong");
}

TEST(ProtocolTest, CallBatchRejectsDuplicateCallerTags) {
    StreamPair fds;
    std::vector<Request> requests(2);
    requests[0].tag = 5;
    requests[1].tag = 5;
    std::optional<bool> batch_supported;
    EXPECT_THROW(
        { (void)call_batch_over_fd(fds.client, requests, batch_supported); },
        std::runtime_error);
}

// --- v1.4: trace context header and capability fallback ----------------------

TEST(ProtocolTest, TraceHeaderRoundTripsAndDefaultsToNone) {
    Request req;
    req.verb = Verb::Query;
    req.experiment = "fig3";
    req.trace_id = 0x0123456789ABCDEFull;
    req.trace_parent = 0xFEDCBA9876543210ull;
    req.trace_flags = 3;
    ASSERT_TRUE(req.has_trace());

    std::string error;
    const auto parsed = parse_request(req.encode(), &error);
    ASSERT_TRUE(parsed.has_value()) << error;
    EXPECT_EQ(parsed->trace_id, 0x0123456789ABCDEFull);
    EXPECT_EQ(parsed->trace_parent, 0xFEDCBA9876543210ull);
    EXPECT_EQ(parsed->trace_flags, 3u);

    // An untraced request omits the header entirely.
    Request plain = req;
    plain.clear_trace();
    EXPECT_FALSE(plain.has_trace());
    EXPECT_EQ(plain.encode().find("trace "), std::string::npos);
    const auto plain_parsed = parse_request(plain.encode());
    ASSERT_TRUE(plain_parsed.has_value());
    EXPECT_EQ(plain_parsed->trace_id, 0u);
    EXPECT_EQ(plain_parsed->trace_flags, 0u);
}

TEST(ProtocolTest, TraceHeaderNeverMovesRouteKey) {
    Request req;
    req.verb = Verb::Query;
    req.experiment = "fig7";
    req.seed = 42;
    const std::string key = route_key(req);
    Request traced = req;
    traced.trace_id = 0xABC;
    traced.trace_parent = 0xDEF;
    traced.trace_flags = 1;
    EXPECT_EQ(route_key(traced), key);
}

TEST(ProtocolTest, MalformedTraceHeaderIsRejected) {
    const struct {
        const char* trace_line;
    } cases[] = {
        {"trace\n"},                       // no fields
        {"trace 0x1\n"},                   // too few
        {"trace 0x1 0x2\n"},               // too few
        {"trace 0x1 0x2 1 junk\n"},        // too many
        {"trace zzz 0x2 1\n"},             // bad trace_id
        {"trace 0x1 yyy 1\n"},             // bad parent
        {"trace 0x1 0x2 banana\n"},        // bad flags
    };
    for (const auto& c : cases) {
        const std::string wire = std::string{"hsw-survey-rpc v1\nverb ping\n"} +
                                 c.trace_line + "deadline-ms 0\n";
        std::string error;
        EXPECT_FALSE(parse_request(wire, &error).has_value()) << c.trace_line;
        EXPECT_NE(error.find("trace"), std::string::npos) << error;
    }
}

TEST(ProtocolTest, IsUnknownTraceFieldMatchesOnlyTheCapabilityProbe) {
    Response probe;
    probe.code = ErrorCode::MalformedRequest;
    probe.payload = "unknown request field: trace";
    EXPECT_TRUE(is_unknown_trace_field(probe));

    // The v1.3 batch wrapper of the same rejection counts too.
    Response batched = probe;
    batched.payload = "batch sub-request 2: unknown request field: trace";
    EXPECT_TRUE(is_unknown_trace_field(batched));

    Response other_field = probe;
    other_field.payload = "unknown request field: frobnicate";
    EXPECT_FALSE(is_unknown_trace_field(other_field));

    Response other_code = probe;
    other_code.code = ErrorCode::Overloaded;
    EXPECT_FALSE(is_unknown_trace_field(other_code));

    Response success;
    success.payload = "unknown request field: trace";
    EXPECT_FALSE(is_unknown_trace_field(success));
}

TEST(ProtocolTest, TraceDumpAndDumpVerbsRoundTrip) {
    for (const Verb verb : {Verb::TraceDump, Verb::Dump}) {
        Request req;
        req.verb = verb;
        const auto parsed = parse_request(req.encode());
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(parsed->verb, verb);
    }
    EXPECT_EQ(name(Verb::TraceDump), "trace_dump");
    EXPECT_EQ(name(Verb::Dump), "dump");
}

TEST(ProtocolTest, CallBatchStripsTraceForKnownLegacyPeer) {
    // trace_supported == false: the helper strips headers up front; the
    // scripted v1.3 server never sees one and no probe round-trip happens.
    StreamPair fds;
    std::vector<Request> requests(2);
    for (auto& r : requests) {
        r.verb = Verb::Ping;
        r.trace_id = 0x1111;
        r.trace_parent = 0x2222;
        r.trace_flags = 1;
    }

    std::thread server{[&fds] {
        const auto frame = read_frame(fds.server);
        ASSERT_TRUE(frame.has_value());
        ASSERT_TRUE(looks_like_batch(*frame));
        const auto batch = parse_batch(*frame);
        ASSERT_TRUE(batch.has_value());
        for (const auto& sub : *batch) {
            EXPECT_FALSE(sub.has_trace());
            Response resp;
            resp.payload = "pong";
            resp.tag = sub.tag;
            ASSERT_TRUE(write_frame(fds.server, resp.encode()));
        }
    }};

    std::optional<bool> batch_supported = true;
    std::optional<bool> trace_supported = false;
    const auto responses =
        call_batch_over_fd(fds.client, requests, batch_supported, trace_supported);
    server.join();
    ASSERT_EQ(responses.size(), 2u);
    EXPECT_EQ(responses[0].payload, "pong");
    EXPECT_EQ(trace_supported, false);
}

TEST(ProtocolTest, CallBatchProbesTraceAndFallsBackWithoutLosingBatch) {
    // A v1.3 peer: batches fine, rejects the trace header. The first
    // batched attempt comes back "batch sub-request 0: unknown request
    // field: trace"; the helper must memoize trace_supported=false, keep
    // batch_supported=true, strip headers and retry the SAME batch.
    StreamPair fds;
    std::vector<Request> requests(2);
    for (auto& r : requests) {
        r.verb = Verb::Ping;
        r.trace_id = 0x3333;
        r.trace_flags = 1;
    }

    std::thread server{[&fds] {
        // Round 1: traced batch -> the v1.3 sub-request rejection.
        auto frame = read_frame(fds.server);
        ASSERT_TRUE(frame.has_value());
        ASSERT_TRUE(looks_like_batch(*frame));
        {
            Response reject;
            reject.code = ErrorCode::MalformedRequest;
            reject.payload = "batch sub-request 0: unknown request field: trace";
            ASSERT_TRUE(write_frame(fds.server, reject.encode()));
        }
        // Round 2: the same batch, headers stripped.
        frame = read_frame(fds.server);
        ASSERT_TRUE(frame.has_value());
        ASSERT_TRUE(looks_like_batch(*frame));
        const auto batch = parse_batch(*frame);
        ASSERT_TRUE(batch.has_value());
        ASSERT_EQ(batch->size(), 2u);
        for (const auto& sub : *batch) {
            EXPECT_FALSE(sub.has_trace());
            Response resp;
            resp.payload = "pong";
            resp.tag = sub.tag;
            ASSERT_TRUE(write_frame(fds.server, resp.encode()));
        }
    }};

    std::optional<bool> batch_supported;
    std::optional<bool> trace_supported;
    const auto responses =
        call_batch_over_fd(fds.client, requests, batch_supported, trace_supported);
    server.join();
    EXPECT_EQ(batch_supported, true);
    EXPECT_EQ(trace_supported, false);
    ASSERT_EQ(responses.size(), 2u);
    EXPECT_EQ(responses[0].payload, "pong");
    EXPECT_EQ(responses[1].payload, "pong");
}

TEST(ProtocolTest, CallBatchRecordsTraceSupportOnSuccess) {
    StreamPair fds;
    std::vector<Request> requests(1);
    requests[0].verb = Verb::Ping;
    requests[0].trace_id = 0x4444;
    requests[0].trace_flags = 1;

    std::thread server{[&fds] {
        const auto frame = read_frame(fds.server);
        ASSERT_TRUE(frame.has_value());
        const auto batch = parse_batch(*frame);
        ASSERT_TRUE(batch.has_value());
        ASSERT_EQ(batch->size(), 1u);
        EXPECT_TRUE((*batch)[0].has_trace());  // v1.4 peer keeps the header
        Response resp;
        resp.payload = "pong";
        resp.tag = (*batch)[0].tag;
        ASSERT_TRUE(write_frame(fds.server, resp.encode()));
    }};

    std::optional<bool> batch_supported;
    std::optional<bool> trace_supported;
    const auto responses =
        call_batch_over_fd(fds.client, requests, batch_supported, trace_supported);
    server.join();
    EXPECT_EQ(trace_supported, true);
    ASSERT_EQ(responses.size(), 1u);
    EXPECT_EQ(responses[0].payload, "pong");
}
