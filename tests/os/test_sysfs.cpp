#include <gtest/gtest.h>

#include "os/sysfs.hpp"
#include "workloads/mixes.hpp"

namespace hsw::os {
namespace {

using util::Time;

class Sysfs : public ::testing::Test {
protected:
    core::Node node;
    VirtualSysfs fs{node};
};

TEST_F(Sysfs, CpufreqAttributesInKhz) {
    EXPECT_EQ(fs.read("/sys/devices/system/cpu/cpu0/cpufreq/scaling_min_freq"),
              "1200000");
    EXPECT_EQ(fs.read("/sys/devices/system/cpu/cpu0/cpufreq/scaling_max_freq"),
              "3300000");
    EXPECT_EQ(fs.read("/sys/devices/system/cpu/cpu0/cpufreq/scaling_governor"),
              "userspace");
}

TEST_F(Sysfs, SetspeedWriteRequestsPstate) {
    node.set_workload(0, &workloads::while_one(), 1);
    fs.write("/sys/devices/system/cpu/cpu0/cpufreq/scaling_setspeed", "1500000");
    node.run_for(Time::ms(2));
    EXPECT_DOUBLE_EQ(node.core_frequency(0).as_ghz(), 1.5);
}

TEST_F(Sysfs, ScalingCurFreqEchoesTheRequest) {
    node.set_workload(0, &workloads::while_one(), 1);
    fs.write("/sys/devices/system/cpu/cpu0/cpufreq/scaling_setspeed", "1200000");
    node.run_for(Time::ms(2));
    fs.write("/sys/devices/system/cpu/cpu0/cpufreq/scaling_setspeed", "2000000");
    // No time passes: sysfs already claims 2.0 GHz, hardware is at 1.2.
    EXPECT_EQ(fs.read("/sys/devices/system/cpu/cpu0/cpufreq/scaling_cur_freq"),
              "2000000");
    EXPECT_EQ(fs.read("/sys/devices/system/cpu/cpu0/cpufreq/cpuinfo_cur_freq"),
              "1200000");
}

TEST_F(Sysfs, TopologyIdentifiesSockets) {
    EXPECT_EQ(fs.read("/sys/devices/system/cpu/cpu0/topology/physical_package_id"),
              "0");
    EXPECT_EQ(fs.read("/sys/devices/system/cpu/cpu13/topology/physical_package_id"),
              "1");
    EXPECT_EQ(fs.read("/sys/devices/system/cpu/cpu13/topology/core_id"), "1");
}

TEST_F(Sysfs, CpuidleExposesAcpiLatencies) {
    EXPECT_EQ(fs.read("/sys/devices/system/cpu/cpu0/cpuidle/state0/name"), "C1");
    EXPECT_EQ(fs.read("/sys/devices/system/cpu/cpu0/cpuidle/state1/name"), "C3");
    EXPECT_EQ(fs.read("/sys/devices/system/cpu/cpu0/cpuidle/state2/name"), "C6");
    // Section VI-B: the tables claim 33/133 us.
    EXPECT_EQ(fs.read("/sys/devices/system/cpu/cpu0/cpuidle/state1/latency"), "33");
    EXPECT_EQ(fs.read("/sys/devices/system/cpu/cpu0/cpuidle/state2/latency"), "133");
}

TEST_F(Sysfs, UnknownPathsFault) {
    EXPECT_THROW((void)fs.read("/sys/nope"), std::invalid_argument);
    EXPECT_THROW((void)fs.read("/sys/devices/system/cpu/cpu99/cpufreq/scaling_cur_freq"),
                 std::invalid_argument);
    EXPECT_THROW(fs.write("/sys/devices/system/cpu/cpu0/cpufreq/scaling_min_freq", "1"),
                 std::invalid_argument);
    EXPECT_FALSE(fs.exists("/sys/devices/system/cpu/cpu0/cpufreq/bogus"));
    EXPECT_TRUE(fs.exists("/sys/devices/system/cpu/cpu0/cpufreq/scaling_cur_freq"));
}

}  // namespace
}  // namespace hsw::os
