#include <gtest/gtest.h>

#include "os/cpufreq.hpp"
#include "os/perf_events.hpp"
#include "workloads/mixes.hpp"

namespace hsw::os {
namespace {

using util::Frequency;
using util::Time;

TEST(Cpufreq, UserspaceSetSpeedRequestsPstate) {
    core::Node node;
    CpufreqPolicy policy{node, 0};
    node.set_workload(0, &workloads::while_one(), 1);
    policy.set_speed(Frequency::ghz(1.4));
    node.run_for(Time::ms(2));
    EXPECT_DOUBLE_EQ(node.core_frequency(0).as_ghz(), 1.4);
}

TEST(Cpufreq, ScalingCurFreqIsTheRequestNotTheHardwareState) {
    // The FTaLaT pitfall (Section VI-A): right after a request the sysfs
    // value already shows the target although the hardware has not switched.
    core::Node node;
    CpufreqPolicy policy{node, 0};
    node.set_workload(0, &workloads::while_one(), 1);
    policy.set_speed(Frequency::ghz(1.2));
    node.run_for(Time::ms(2));

    policy.set_speed(Frequency::ghz(2.0));
    // No time has passed: hardware still at 1.2, sysfs already says 2.0.
    EXPECT_DOUBLE_EQ(policy.scaling_cur_freq().as_ghz(), 2.0);
    EXPECT_DOUBLE_EQ(node.core_frequency(0).as_ghz(), 1.2);

    // The reliable method: count cycles over a busy-wait window.
    PerfCounter cycles{node, 0, PerfEvent::CpuCycles};
    const Frequency measured_now = cycles.measure_frequency(Time::us(20));
    EXPECT_NEAR(measured_now.as_ghz(), 1.2, 0.06);
    node.run_for(Time::ms(2));
    const Frequency measured_later = cycles.measure_frequency(Time::us(20));
    EXPECT_NEAR(measured_later.as_ghz(), 2.0, 0.06);
}

TEST(Cpufreq, PerformanceGovernorRequestsTurbo) {
    core::Node node;
    CpufreqPolicy policy{node, 0};
    node.set_workload(0, &workloads::compute(), 1);
    policy.set_governor(Governor::Performance);
    node.run_for(Time::ms(2));
    // Single active core: non-AVX turbo bin is 3.3 GHz.
    EXPECT_GT(node.core_frequency(0).as_ghz(), 2.5);
}

TEST(Cpufreq, PowersaveGovernorRequestsMinimum) {
    core::Node node;
    CpufreqPolicy policy{node, 0};
    node.set_workload(0, &workloads::compute(), 1);
    policy.set_governor(Governor::Powersave);
    node.run_for(Time::ms(2));
    EXPECT_DOUBLE_EQ(node.core_frequency(0).as_ghz(), 1.2);
}

TEST(Cpufreq, SetSpeedRequiresUserspaceGovernor) {
    core::Node node;
    CpufreqPolicy policy{node, 0};
    policy.set_governor(Governor::Performance);
    EXPECT_THROW(policy.set_speed(Frequency::ghz(1.5)), std::logic_error);
}

TEST(Cpufreq, AvailableFrequenciesDescending) {
    core::Node node;
    CpufreqPolicy policy{node, 0};
    const auto fs = policy.available_frequencies();
    ASSERT_FALSE(fs.empty());
    for (std::size_t i = 1; i < fs.size(); ++i) EXPECT_LT(fs[i], fs[i - 1]);
    EXPECT_DOUBLE_EQ(policy.scaling_min_freq().as_ghz(), 1.2);
    EXPECT_DOUBLE_EQ(policy.scaling_max_freq().as_ghz(), 3.3);
}

}  // namespace
}  // namespace hsw::os
