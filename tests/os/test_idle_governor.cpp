#include <gtest/gtest.h>

#include "os/idle_governor.hpp"

namespace hsw::os {
namespace {

using util::Frequency;
using util::Time;

TEST(IdleGovernor, ShortIdleStaysAwake) {
    IdleGovernor gov;
    EXPECT_EQ(gov.select(Time::us(2)), cstates::CState::C0);
}

TEST(IdleGovernor, StateDeepensWithPredictedIdle) {
    IdleGovernor gov;
    EXPECT_EQ(gov.select(Time::us(10)), cstates::CState::C1);
    EXPECT_EQ(gov.select(Time::us(100)), cstates::CState::C3);
    EXPECT_EQ(gov.select(Time::us(300)), cstates::CState::C6);
}

TEST(IdleGovernor, AcpiTablesAreTooConservative) {
    // Section VI-B: with measured latencies the governor would pick C6 far
    // earlier (measured C6 ~ 17 us vs ACPI's 133 us).
    IdleGovernor gov;
    const cstates::WakeLatencyModel model{arch::Generation::HaswellEP};
    const Time predicted = Time::us(120);
    EXPECT_EQ(gov.select(predicted), cstates::CState::C3);
    EXPECT_EQ(gov.select_with_measured(predicted, model, Frequency::ghz(2.5)),
              cstates::CState::C6);
}

TEST(IdleGovernor, HeadroomQuantifiesTheDiscrepancy) {
    const cstates::WakeLatencyModel model{arch::Generation::HaswellEP};
    // ACPI claims 133 us for C6; the model measures ~17.5 us at 2.5 GHz.
    const double h6 = IdleGovernor::latency_headroom(model, cstates::CState::C6,
                                                     Frequency::ghz(2.5));
    EXPECT_GT(h6, 5.0);
    const double h3 = IdleGovernor::latency_headroom(model, cstates::CState::C3,
                                                     Frequency::ghz(2.5));
    EXPECT_GT(h3, 1.5);
    EXPECT_LT(h3, h6);
}

TEST(IdleGovernor, MultiplierShiftsThresholds) {
    IdleGovernor strict{4.0};
    IdleGovernor lax{1.0};
    const Time predicted = Time::us(140);
    EXPECT_EQ(strict.select(predicted), cstates::CState::C3);
    EXPECT_EQ(lax.select(predicted), cstates::CState::C6);
}

}  // namespace
}  // namespace hsw::os
