#include <gtest/gtest.h>

#include "pcu/avx_license.hpp"

namespace hsw::pcu {
namespace {

using util::Time;

TEST(AvxLicense, GrantsOnDenseAvx) {
    AvxLicense lic;
    EXPECT_FALSE(lic.licensed());
    lic.update(0.95, Time::us(10));
    EXPECT_TRUE(lic.licensed());
}

TEST(AvxLicense, SparseAvxDoesNotTrigger) {
    AvxLicense lic;
    lic.update(0.1, Time::us(10));
    EXPECT_FALSE(lic.licensed());
    EXPECT_DOUBLE_EQ(lic.voltage_adder().as_volts(), 0.0);
}

TEST(AvxLicense, VoltageAdderWhileHeld) {
    AvxLicense lic;
    lic.update(0.9, Time::us(10));
    EXPECT_NEAR(lic.voltage_adder().as_volts(), AvxLicense::kLicenseVoltageAdderVolts,
                1e-12);
}

TEST(AvxLicense, RampThrottlesExecutionBriefly) {
    // "The core signals the PCU ... and slows the execution of AVX
    // instructions" until the voltage is adjusted.
    AvxLicense lic;
    lic.update(0.9, Time::us(100));
    EXPECT_TRUE(lic.ramping(Time::us(105)));
    EXPECT_LT(lic.throughput_factor(Time::us(105)), 1.0);
    EXPECT_FALSE(lic.ramping(Time::us(100) + AvxLicense::kRampDuration + Time::us(1)));
    EXPECT_DOUBLE_EQ(
        lic.throughput_factor(Time::us(100) + AvxLicense::kRampDuration + Time::us(1)),
        1.0);
}

TEST(AvxLicense, DropsOneMillisecondAfterLastAvx) {
    // "The PCU returns to regular (non-AVX) operating mode 1 ms after AVX
    // instructions are completed" (Section II-F).
    AvxLicense lic;
    lic.update(0.9, Time::us(0));
    ASSERT_TRUE(lic.licensed());
    lic.update(0.0, Time::us(500));
    EXPECT_TRUE(lic.licensed());  // only 0.5 ms since last AVX
    lic.update(0.0, Time::us(999));
    EXPECT_TRUE(lic.licensed());
    lic.update(0.0, Time::us(1001));
    EXPECT_FALSE(lic.licensed());
}

TEST(AvxLicense, ContinuedAvxKeepsLicenseAlive) {
    AvxLicense lic;
    for (int t = 0; t < 10; ++t) {
        lic.update(0.9, Time::ms(t));
        ASSERT_TRUE(lic.licensed());
    }
    // No re-ramp while continuously held.
    EXPECT_FALSE(lic.ramping(Time::ms(9)));
}

TEST(AvxLicense, RelicensingRestartsRamp) {
    AvxLicense lic;
    lic.update(0.9, Time::ms(0));
    lic.update(0.0, Time::ms(5));   // license expires (> 1 ms since AVX)
    ASSERT_FALSE(lic.licensed());
    lic.update(0.9, Time::ms(6));
    EXPECT_TRUE(lic.licensed());
    EXPECT_TRUE(lic.ramping(Time::ms(6) + Time::us(2)));
}

}  // namespace
}  // namespace hsw::pcu
