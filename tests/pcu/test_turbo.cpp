#include <gtest/gtest.h>

#include "arch/sku.hpp"
#include "pcu/turbo.hpp"

namespace hsw::pcu {
namespace {

using util::Frequency;

TurboContext ctx(unsigned active, bool turbo = true,
                 msr::EpbPolicy epb = msr::EpbPolicy::Balanced) {
    return TurboContext{&arch::xeon_e5_2680_v3(), active, turbo, epb};
}

TEST(Turbo, TurboRequestResolvesToActiveCoreBin) {
    const Frequency turbo_req = Frequency::from_ratio(26);
    EXPECT_DOUBLE_EQ(resolve_cap(ctx(1), turbo_req, false).as_ghz(), 3.3);
    EXPECT_DOUBLE_EQ(resolve_cap(ctx(12), turbo_req, false).as_ghz(), 2.9);
}

TEST(Turbo, FixedRequestHonored) {
    EXPECT_DOUBLE_EQ(resolve_cap(ctx(12), Frequency::ghz(1.8), false).as_ghz(), 1.8);
    EXPECT_DOUBLE_EQ(resolve_cap(ctx(1), Frequency::ghz(2.5), false).as_ghz(), 2.5);
}

TEST(Turbo, DisabledTurboClampsToNominal) {
    const Frequency turbo_req = Frequency::from_ratio(26);
    EXPECT_DOUBLE_EQ(resolve_cap(ctx(1, /*turbo=*/false), turbo_req, false).as_ghz(), 2.5);
}

TEST(Turbo, AvxLicenseSelectsAvxBins) {
    const Frequency turbo_req = Frequency::from_ratio(26);
    // All-core AVX turbo is 2.8 GHz on the test system (Section II-F).
    EXPECT_DOUBLE_EQ(resolve_cap(ctx(12), turbo_req, true).as_ghz(), 2.8);
    EXPECT_DOUBLE_EQ(resolve_cap(ctx(1), turbo_req, true).as_ghz(), 3.1);
}

TEST(Turbo, AvxLicensePullsDownNominalRequests) {
    // Even a fixed 2.5 GHz (nominal) request is capped below the AVX bins
    // would be... but only when the bins are lower than the request.
    const Frequency nominal = Frequency::ghz(2.5);
    const Frequency cap = resolve_cap(ctx(12), nominal, true);
    EXPECT_LE(cap.as_ghz(), 2.8);
    EXPECT_DOUBLE_EQ(cap.as_ghz(), 2.5);  // 2.5 < 2.8, so the request stands
}

TEST(Turbo, EpbPerformanceActivatesTurboAtNominal) {
    // Section II-C: "turbo mode will be active even when the base frequency
    // is selected".
    const Frequency nominal = Frequency::ghz(2.5);
    const Frequency cap = resolve_cap(ctx(12, true, msr::EpbPolicy::Performance),
                                      nominal, false);
    EXPECT_DOUBLE_EQ(cap.as_ghz(), 2.9);
}

TEST(Turbo, EpbPerformanceDoesNotBoostLowRequests) {
    const Frequency cap = resolve_cap(ctx(12, true, msr::EpbPolicy::Performance),
                                      Frequency::ghz(1.5), false);
    EXPECT_DOUBLE_EQ(cap.as_ghz(), 1.5);
}

TEST(Eet, PerformanceEpbNeverDemotes) {
    const Frequency cap = Frequency::ghz(3.3);
    EXPECT_DOUBLE_EQ(
        eet_demote(ctx(1, true, msr::EpbPolicy::Performance), cap, 0.9).as_ghz(), 3.3);
}

TEST(Eet, BalancedDemotesStallBoundTurboToNominal) {
    const Frequency cap = Frequency::ghz(3.3);
    EXPECT_DOUBLE_EQ(eet_demote(ctx(1), cap, 0.8).as_ghz(), 2.5);
    // Low-stall code keeps its turbo.
    EXPECT_DOUBLE_EQ(eet_demote(ctx(1), cap, 0.05).as_ghz(), 3.3);
}

TEST(Eet, EnergySavingDemotesDeeper) {
    const Frequency cap = Frequency::ghz(3.3);
    const Frequency demoted =
        eet_demote(ctx(1, true, msr::EpbPolicy::EnergySaving), cap, 0.8);
    EXPECT_LT(demoted.as_ghz(), 2.5);
    EXPECT_GE(demoted.as_ghz(), 1.2);
}

TEST(Eet, NonTurboCapsUntouched) {
    EXPECT_DOUBLE_EQ(eet_demote(ctx(1), Frequency::ghz(2.0), 0.9).as_ghz(), 2.0);
}

}  // namespace
}  // namespace hsw::pcu
