#include <gtest/gtest.h>

#include "core/node.hpp"
#include "msr/addresses.hpp"
#include "pcu/uncore_scaling.hpp"
#include "workloads/mixes.hpp"

namespace hsw::pcu {
namespace {

using util::Frequency;
using util::Time;

TEST(UncoreRatioLimit, EncodeDecodeRoundTrip) {
    const auto lim = decode_uncore_ratio_limit(encode_uncore_ratio_limit(28, 15));
    EXPECT_EQ(lim.max_ratio, 28u);
    EXPECT_EQ(lim.min_ratio, 15u);
    const auto none = decode_uncore_ratio_limit(0);
    EXPECT_EQ(none.max_ratio, 0u);
    EXPECT_EQ(none.min_ratio, 0u);
}

TEST(UncoreRatioLimit, MaxClampsPolicy) {
    UfsInputs in;
    in.sku = &arch::xeon_e5_2680_v3();
    in.socket_active = true;
    in.system_active = true;
    in.stall_fraction = 0.8;  // would demand 3.0 GHz
    in.fastest_local_core = Frequency::ghz(2.5);
    in.msr_max_ratio = 24;    // clamp to 2.4 GHz
    const auto d = uncore_policy(in);
    EXPECT_NEAR(d.target.as_ghz(), 2.4, 1e-9);
}

TEST(UncoreRatioLimit, MinRaisesFloor) {
    UfsInputs in;
    in.sku = &arch::xeon_e5_2680_v3();
    in.socket_active = true;
    in.system_active = true;
    in.stall_fraction = 0.0;
    in.fastest_local_core = Frequency::ghz(1.2);  // ladder -> 1.2
    in.msr_min_ratio = 20;
    const auto d = uncore_policy(in);
    EXPECT_NEAR(d.floor.as_ghz(), 2.0, 1e-9);
    EXPECT_NEAR(d.target.as_ghz(), 2.0, 1e-9);
}

TEST(UncoreRatioLimit, EndToEndThroughTheMsr) {
    core::Node node;
    // Memory-bound load would pin the uncore at 3.0 GHz...
    node.set_workload(0, &workloads::memory_stream(), 1);
    node.run_for(Time::ms(5));
    EXPECT_NEAR(node.uncore_frequency(0).as_ghz(), 3.0, 0.01);
    // ...until software writes a 2.2 GHz cap into the MSR.
    node.msrs().write(0, msr::MSR_UNCORE_RATIO_LIMIT, encode_uncore_ratio_limit(22, 0));
    node.run_for(Time::ms(5));
    EXPECT_NEAR(node.uncore_frequency(0).as_ghz(), 2.2, 0.01);
    // Per-package scope: the other socket is unaffected.
    EXPECT_EQ(node.msrs().read(12, msr::MSR_UNCORE_RATIO_LIMIT), 0u);
    // Clearing the register restores hardware control.
    node.msrs().write(0, msr::MSR_UNCORE_RATIO_LIMIT, 0);
    node.run_for(Time::ms(5));
    EXPECT_NEAR(node.uncore_frequency(0).as_ghz(), 3.0, 0.01);
}

TEST(UncoreRatioLimit, CapCostsMemoryBandwidth) {
    core::Node node;
    for (unsigned c = 0; c < 12; ++c) {
        node.set_workload(node.cpu_id(0, c), &workloads::memory_stream(), 1);
    }
    node.run_for(Time::ms(10));
    const double free_bw = node.socket(0).achieved_dram_bandwidth().as_gb_per_sec();
    node.msrs().write(0, msr::MSR_UNCORE_RATIO_LIMIT, encode_uncore_ratio_limit(15, 0));
    node.run_for(Time::ms(10));
    const double capped_bw = node.socket(0).achieved_dram_bandwidth().as_gb_per_sec();
    EXPECT_LT(capped_bw, free_bw * 0.9);
}

}  // namespace
}  // namespace hsw::pcu
