#include <gtest/gtest.h>

#include "arch/calibration.hpp"
#include "pcu/avx_license.hpp"

namespace hsw::pcu {
namespace {

namespace cal = hsw::arch::cal;

TEST(AvxLicenseLevels, StartsAtLevelZero) {
    AvxLicenseLevels lic;
    EXPECT_EQ(lic.level(), 0u);
    EXPECT_FALSE(lic.licensed());
    EXPECT_FALSE(lic.ramping(Time::zero()));
    EXPECT_DOUBLE_EQ(lic.throughput_factor(Time::zero()), 1.0);
}

TEST(AvxLicenseLevels, DenseAvxGrantsLevelOne) {
    AvxLicenseLevels lic;
    lic.update(AvxLicense::kLicenseThreshold + 0.01, 0.0, Time::ms(1));
    EXPECT_EQ(lic.level(), 1u);
    EXPECT_TRUE(lic.licensed());
}

TEST(AvxLicenseLevels, DenseAvx512JumpsStraightToLevelTwo) {
    AvxLicenseLevels lic;
    lic.update(0.0, AvxLicenseLevels::kAvx512Threshold + 0.01, Time::ms(1));
    EXPECT_EQ(lic.level(), 2u);
    EXPECT_TRUE(lic.ramping(Time::ms(1)));
    EXPECT_DOUBLE_EQ(lic.throughput_factor(Time::ms(1)),
                     AvxLicense::kRampThroughputFactor);
    // One voltage ramp for the whole jump, not one per level.
    const Time after_ramp = Time::ms(1) + AvxLicense::kRampDuration;
    EXPECT_FALSE(lic.ramping(after_ramp));
    EXPECT_DOUBLE_EQ(lic.throughput_factor(after_ramp), 1.0);
}

TEST(AvxLicenseLevels, SparseAvx512StaysUnlicensed) {
    AvxLicenseLevels lic;
    lic.update(0.0, AvxLicenseLevels::kAvx512Threshold - 0.01, Time::ms(1));
    EXPECT_EQ(lic.level(), 0u);
}

TEST(AvxLicenseLevels, RelaxesOneLevelPerDelay) {
    AvxLicenseLevels lic;
    const Time grant = Time::ms(1);
    lic.update(0.5, 0.5, grant);
    ASSERT_EQ(lic.level(), 2u);

    // Scalar-only from here on: the relax timer runs from `grant`.
    const Time before_first = grant + cal::kAvxRelaxDelay - Time::us(1);
    lic.update(0.0, 0.0, before_first);
    EXPECT_EQ(lic.level(), 2u);

    const Time first_drop = grant + cal::kAvxRelaxDelay + Time::us(1);
    lic.update(0.0, 0.0, first_drop);
    EXPECT_EQ(lic.level(), 1u) << "drops one level at a time, not straight to 0";
    EXPECT_TRUE(lic.licensed());

    const Time second_drop = first_drop + cal::kAvxRelaxDelay + Time::us(1);
    lic.update(0.0, 0.0, second_drop);
    EXPECT_EQ(lic.level(), 0u);
    EXPECT_FALSE(lic.licensed());
}

TEST(AvxLicenseLevels, ReGrantWhileRelaxingJumpsBackUp) {
    AvxLicenseLevels lic;
    lic.update(0.5, 0.5, Time::ms(1));
    ASSERT_EQ(lic.level(), 2u);
    const Time after_drop = Time::ms(1) + cal::kAvxRelaxDelay + Time::us(1);
    lic.update(0.0, 0.0, after_drop);
    ASSERT_EQ(lic.level(), 1u);
    lic.update(0.0, 0.5, after_drop + Time::us(5));
    EXPECT_EQ(lic.level(), 2u);
}

TEST(AvxLicenseLevels, MatchesSingleLevelMachineWithoutAvx512) {
    // The multi-level machine must be behavior-identical to AvxLicense when
    // no AVX-512 instructions appear -- this is what keeps every Haswell
    // golden artifact byte-identical.
    AvxLicense base;
    AvxLicenseLevels levels;
    const double fractions[] = {0.0, 0.1, 0.35, 0.5, 0.0, 0.0, 0.31,
                                0.29, 0.0,  0.4, 0.0, 0.0, 0.0,  0.6};
    Time now = Time::zero();
    for (double f : fractions) {
        base.update(f, now);
        levels.update(f, 0.0, now);
        EXPECT_EQ(levels.licensed(), base.licensed()) << "at " << now.as_seconds() << " s";
        EXPECT_EQ(levels.ramping(now), base.ramping(now));
        EXPECT_DOUBLE_EQ(levels.throughput_factor(now), base.throughput_factor(now));
        now = now + Time::us(400);  // straddles the 1 ms relax delay
    }
}

}  // namespace
}  // namespace hsw::pcu
