#include <gtest/gtest.h>

#include "arch/sku.hpp"
#include "pcu/uncore_scaling.hpp"

namespace hsw::pcu {
namespace {

using util::Frequency;

UfsInputs base_inputs() {
    UfsInputs in;
    in.sku = &arch::xeon_e5_2680_v3();
    in.epb = msr::EpbPolicy::Balanced;
    in.socket_active = true;
    in.system_active = true;
    return in;
}

// --- The Table III ladder, parameterized over every row. ---
struct LadderRow {
    unsigned core_ratio;
    double uncore_ghz;
};

class LadderSweep : public ::testing::TestWithParam<LadderRow> {};

TEST_P(LadderSweep, MatchesTable3) {
    const auto [ratio, expected] = GetParam();
    EXPECT_NEAR(ladder_frequency(ratio).as_ghz(), expected, 1e-9) << "ratio " << ratio;
}

INSTANTIATE_TEST_SUITE_P(
    Table3Rows, LadderSweep,
    ::testing::Values(LadderRow{25, 2.2}, LadderRow{24, 2.1}, LadderRow{23, 2.0},
                      LadderRow{22, 1.9}, LadderRow{21, 1.8}, LadderRow{20, 1.75},
                      LadderRow{19, 1.65}, LadderRow{18, 1.6}, LadderRow{17, 1.5},
                      LadderRow{16, 1.4}, LadderRow{15, 1.3}, LadderRow{14, 1.2},
                      LadderRow{13, 1.2}, LadderRow{12, 1.2}));

TEST(Ladder, ClampsOutsideRange) {
    EXPECT_NEAR(ladder_frequency(33).as_ghz(), 2.2, 1e-9);  // above nominal
    EXPECT_NEAR(ladder_frequency(5).as_ghz(), 1.2, 1e-9);   // below minimum
}

// --- Policy regimes ---

TEST(UfsPolicy, NoStallFollowsLadder) {
    UfsInputs in = base_inputs();
    in.stall_fraction = 0.0;
    in.fastest_local_core = Frequency::ghz(2.0);
    const auto d = uncore_policy(in);
    EXPECT_FALSE(d.clock_halted);
    EXPECT_NEAR(d.target.as_ghz(), 1.75, 1e-9);
    EXPECT_NEAR(d.floor.as_ghz(), 1.75, 1e-9);
}

TEST(UfsPolicy, TurboRequestTargetsMaximum) {
    UfsInputs in = base_inputs();
    in.stall_fraction = 0.0;
    in.turbo_requested = true;
    in.fastest_local_core = Frequency::ghz(3.0);
    const auto d = uncore_policy(in);
    EXPECT_NEAR(d.target.as_ghz(), 3.0, 1e-9);
    EXPECT_LE(d.floor.as_ghz(), 2.2);  // ladder floor, cores keep priority
}

TEST(UfsPolicy, ModerateStallsTrackTheCore) {
    UfsInputs in = base_inputs();
    in.stall_fraction = 0.10;
    in.fastest_local_core = Frequency::ghz(2.3);
    const auto d = uncore_policy(in);
    EXPECT_NEAR(d.floor.as_ghz(), 2.3, 1e-9);
    EXPECT_NEAR(d.target.as_ghz(), 3.0, 1e-9);
}

TEST(UfsPolicy, HighStallsDemandMaximum) {
    UfsInputs in = base_inputs();
    in.stall_fraction = 0.8;
    in.fastest_local_core = Frequency::ghz(1.2);
    const auto d = uncore_policy(in);
    EXPECT_NEAR(d.target.as_ghz(), 3.0, 1e-9);
    EXPECT_NEAR(d.floor.as_ghz(), 1.2, 1e-9);
}

TEST(UfsPolicy, EpbPerformancePinsTarget) {
    UfsInputs in = base_inputs();
    in.epb = msr::EpbPolicy::Performance;
    in.stall_fraction = 0.0;
    in.fastest_local_core = Frequency::ghz(1.5);
    const auto d = uncore_policy(in);
    EXPECT_NEAR(d.target.as_ghz(), 3.0, 1e-9);
}

TEST(UfsPolicy, PassiveSocketOneStepLower) {
    // Table III second row: the passive processor's uncore runs one
    // 100 MHz step below the active one's ladder value.
    UfsInputs in = base_inputs();
    in.socket_active = false;
    in.fastest_system_core = Frequency::ghz(2.0);  // active ladder -> 1.75
    const auto d = uncore_policy(in);
    EXPECT_NEAR(d.target.as_ghz(), 1.65, 1e-9);
}

TEST(UfsPolicy, PassiveSocketFloorsAtMinimum) {
    UfsInputs in = base_inputs();
    in.socket_active = false;
    in.fastest_system_core = Frequency::ghz(1.2);  // ladder 1.2, -0.1 clamps
    const auto d = uncore_policy(in);
    EXPECT_NEAR(d.target.as_ghz(), 1.2, 1e-9);
}

TEST(UfsPolicy, FullyIdleSystemHaltsUncoreClock) {
    // Section V-A: the uncore clock is halted in deep package sleep.
    UfsInputs in = base_inputs();
    in.socket_active = false;
    in.system_active = false;
    const auto d = uncore_policy(in);
    EXPECT_TRUE(d.clock_halted);
}

TEST(UfsPolicy, SandyBridgeCouplesUncoreToCore) {
    UfsInputs in = base_inputs();
    in.sku = &arch::xeon_e5_2670();
    in.stall_fraction = 0.8;  // irrelevant pre-Haswell
    in.fastest_local_core = Frequency::ghz(1.8);
    const auto d = uncore_policy(in);
    EXPECT_NEAR(d.target.as_ghz(), 1.8, 1e-9);
    EXPECT_NEAR(d.floor.as_ghz(), 1.8, 1e-9);
}

TEST(UfsPolicy, WestmereUncoreFixed) {
    UfsInputs in = base_inputs();
    in.sku = &arch::xeon_x5670();
    in.fastest_local_core = Frequency::ghz(1.6);
    const auto d = uncore_policy(in);
    EXPECT_NEAR(d.target.as_ghz(), 2.66, 1e-2);
}

}  // namespace
}  // namespace hsw::pcu
