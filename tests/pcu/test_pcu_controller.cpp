#include <gtest/gtest.h>

#include "arch/sku.hpp"
#include "pcu/pcu.hpp"

#include <numeric>

namespace hsw::pcu {
namespace {

using util::Frequency;
using util::Power;
using util::Time;

/// All cores in C0 running a FIRESTARTER-like profile.
PcuInputs firestarter_inputs(unsigned requested_ratio) {
    PcuInputs in;
    in.cores.resize(12);
    for (auto& c : in.cores) {
        c.state = cstates::CState::C0;
        c.requested_ratio = requested_ratio;
        c.avx_fraction = 0.95;
        c.stall_fraction = 0.06;
        c.cdyn_utilization = 1.0;
    }
    in.uncore_traffic = 1.0;
    in.current_intensity = 0.85;
    in.fastest_system_core = Frequency::ghz(2.5);
    return in;
}

/// Run the controller to steady state (several opportunity ticks) and
/// average the dithered output.
struct SteadyState {
    double core_ghz;
    double uncore_ghz;
    double watts;
    bool tdp_limited;
};

SteadyState settle(PcuController& pcu, const PcuInputs& in, int ticks = 200) {
    double core = 0;
    double unc = 0;
    double watts = 0;
    bool limited = false;
    Time t = Time::zero();
    for (int i = 0; i < ticks; ++i) {
        t += Time::us(500);
        const auto out = pcu.evaluate(in, t);
        core += out.cores[0].frequency.as_ghz();
        unc += out.uncore_frequency.as_ghz();
        watts += out.estimated_package_power.as_watts();
        limited = out.tdp_limited;
    }
    return SteadyState{core / ticks, unc / ticks, watts / ticks, limited};
}

TEST(PcuController, TurboEquilibriumMatchesTable4) {
    PcuController pcu{arch::xeon_e5_2680_v3(), 1};
    const auto s = settle(pcu, firestarter_inputs(26));
    EXPECT_TRUE(s.tdp_limited);
    EXPECT_NEAR(s.core_ghz, 2.32, 0.06);     // paper: 2.30-2.32 (P1)
    EXPECT_NEAR(s.uncore_ghz, 2.35, 0.08);   // paper: 2.33-2.37
    EXPECT_NEAR(s.watts, 120.0, 0.8);        // average power == TDP
}

TEST(PcuController, AveragePowerNeverExceedsBudgetByMuch) {
    PcuController pcu{arch::xeon_e5_2680_v3(), 0};
    for (unsigned ratio : {26u, 25u, 23u, 22u, 21u}) {
        PcuController fresh{arch::xeon_e5_2680_v3(), 0};
        const auto s = settle(fresh, firestarter_inputs(ratio));
        EXPECT_LE(s.watts, 120.5) << "ratio " << ratio;
    }
}

TEST(PcuController, LowSettingFreesBudgetForUncore) {
    // Table IV: at the 2.2 GHz setting the uncore rises to ~2.8-2.9 GHz;
    // at 2.1 GHz it reaches 3.0 with power below TDP.
    PcuController pcu22{arch::xeon_e5_2680_v3(), 1};
    const auto s22 = settle(pcu22, firestarter_inputs(22));
    EXPECT_NEAR(s22.core_ghz, 2.2, 0.01);
    EXPECT_GT(s22.uncore_ghz, 2.6);
    EXPECT_LT(s22.uncore_ghz, 3.0);

    PcuController pcu21{arch::xeon_e5_2680_v3(), 1};
    const auto s21 = settle(pcu21, firestarter_inputs(21));
    EXPECT_NEAR(s21.core_ghz, 2.1, 0.01);
    EXPECT_NEAR(s21.uncore_ghz, 3.0, 0.01);
    EXPECT_LT(s21.watts, 120.0);
}

TEST(PcuController, Socket0RunsSlowerThanSocket1) {
    // Section III: socket 0 needs more voltage, so it sustains less turbo.
    PcuController p0{arch::xeon_e5_2680_v3(), 0};
    PcuController p1{arch::xeon_e5_2680_v3(), 1};
    const auto s0 = settle(p0, firestarter_inputs(26));
    const auto s1 = settle(p1, firestarter_inputs(26));
    EXPECT_LT(s0.core_ghz, s1.core_ghz);
}

TEST(PcuController, GuaranteedFloorIsAvxBase) {
    // Even under an absurd power cap the cores never fall below the AVX
    // base frequency (2.1 GHz) -- that is the guaranteed level.
    PcuInputs in = firestarter_inputs(26);
    in.power_limit_watts = 30.0;
    PcuController pcu{arch::xeon_e5_2680_v3(), 1};
    const auto out = pcu.evaluate(in, Time::us(500));
    for (const auto& g : out.cores) {
        EXPECT_GE(g.frequency.as_ghz(), 2.1 - 1e-9);
    }
}

TEST(PcuController, PowerLimitMsrTightensBudget) {
    PcuInputs in = firestarter_inputs(26);
    PcuController unlimited{arch::xeon_e5_2680_v3(), 1};
    const auto s_unlimited = settle(unlimited, in);
    in.power_limit_watts = 105.0;
    PcuController capped{arch::xeon_e5_2680_v3(), 1};
    const auto s_capped = settle(capped, in);
    EXPECT_LT(s_capped.core_ghz, s_unlimited.core_ghz);
    EXPECT_LE(s_capped.watts, 105.5);
}

TEST(PcuController, IdleSocketParksAndHaltsUncore) {
    PcuInputs in;
    in.cores.resize(12);  // all C6 by default
    in.system_active = false;
    in.fastest_system_core = Frequency::zero();
    PcuController pcu{arch::xeon_e5_2680_v3(), 0};
    const auto out = pcu.evaluate(in, Time::us(500));
    EXPECT_TRUE(out.uncore_clock_halted);
    EXPECT_LT(out.estimated_package_power.as_watts(), 15.0);
}

TEST(PcuController, PassiveSocketTracksSystemFastestCore) {
    PcuInputs in;
    in.cores.resize(12);
    in.system_active = true;  // the *other* socket is busy
    in.fastest_system_core = Frequency::ghz(2.0);
    PcuController pcu{arch::xeon_e5_2680_v3(), 1};
    const auto out = pcu.evaluate(in, Time::us(500));
    EXPECT_FALSE(out.uncore_clock_halted);
    EXPECT_NEAR(out.uncore_frequency.as_ghz(), 1.65, 1e-6);  // ladder - 0.1
}

TEST(PcuController, PerCorePstatesGrantDifferentFrequencies) {
    // PCPS: two cores request different p-states and actually get them.
    PcuInputs in;
    in.cores.resize(12);
    in.cores[0].state = cstates::CState::C0;
    in.cores[0].requested_ratio = 24;
    in.cores[0].cdyn_utilization = 0.4;
    in.cores[3].state = cstates::CState::C0;
    in.cores[3].requested_ratio = 13;
    in.cores[3].cdyn_utilization = 0.4;
    in.fastest_system_core = Frequency::ghz(2.4);
    PcuController pcu{arch::xeon_e5_2680_v3(), 0};
    const auto out = pcu.evaluate(in, Time::us(500));
    EXPECT_DOUBLE_EQ(out.cores[0].frequency.as_ghz(), 2.4);
    EXPECT_DOUBLE_EQ(out.cores[3].frequency.as_ghz(), 1.3);
}

TEST(PcuController, MemoryBoundTurboDemotedByEet) {
    PcuInputs in;
    in.cores.resize(12);
    for (auto& c : in.cores) {
        c.state = cstates::CState::C0;
        c.requested_ratio = 26;  // turbo
        c.stall_fraction = 0.8;  // memory bound
        c.cdyn_utilization = 0.5;
    }
    in.uncore_traffic = 1.0;
    in.epb = msr::EpbPolicy::Balanced;
    in.fastest_system_core = Frequency::ghz(2.5);
    PcuController pcu{arch::xeon_e5_2680_v3(), 1};
    const auto out = pcu.evaluate(in, Time::us(500));
    // EET strips the turbo range; UFS drives the uncore toward max.
    EXPECT_LE(out.cores[0].frequency.as_ghz(), 2.5);
    EXPECT_GT(out.uncore_frequency.as_ghz(), 2.5);
}

TEST(PcuController, EstimateMatchesEvaluateOutput) {
    PcuController pcu{arch::xeon_e5_2680_v3(), 1};
    const PcuInputs in = firestarter_inputs(21);
    const auto out = pcu.evaluate(in, Time::us(500));
    std::vector<unsigned> ratios;
    for (const auto& g : out.cores) ratios.push_back(g.frequency.ratio());
    const Power re = pcu.estimate_package_power(in, ratios, out.uncore_frequency);
    EXPECT_NEAR(re.as_watts(), out.estimated_package_power.as_watts(), 1e-9);
}

}  // namespace
}  // namespace hsw::pcu
