#include <gtest/gtest.h>

#include "arch/sku.hpp"
#include "pcu/hwp.hpp"

namespace hsw::pcu {
namespace {

HwpCapabilities skx_caps() { return capabilities_for(arch::xeon_gold_6150()); }

TEST(Hwp, RequestEncodingRoundTrips) {
    const HwpRequest req{12, 37, 27, 200};
    const HwpRequest back = decode_hwp_request(encode_hwp_request(req));
    EXPECT_EQ(back.min_ratio, req.min_ratio);
    EXPECT_EQ(back.max_ratio, req.max_ratio);
    EXPECT_EQ(back.desired_ratio, req.desired_ratio);
    EXPECT_EQ(back.epp, req.epp);
}

TEST(Hwp, CapabilitiesEncodingRoundTrips) {
    const HwpCapabilities caps = skx_caps();
    const HwpCapabilities back = decode_hwp_capabilities(encode_hwp_capabilities(caps));
    EXPECT_EQ(back.highest, caps.highest);
    EXPECT_EQ(back.guaranteed, caps.guaranteed);
    EXPECT_EQ(back.most_efficient, caps.most_efficient);
    EXPECT_EQ(back.lowest, caps.lowest);
}

TEST(Hwp, CapabilitiesMatchSkuRange) {
    const auto& sku = arch::xeon_gold_6150();
    const HwpCapabilities caps = skx_caps();
    EXPECT_EQ(caps.highest, sku.max_turbo(1).ratio());
    EXPECT_EQ(caps.guaranteed, sku.nominal_frequency.ratio());
    EXPECT_EQ(caps.lowest, sku.min_frequency.ratio());
    EXPECT_GE(caps.most_efficient, caps.lowest);
    EXPECT_LE(caps.most_efficient, caps.guaranteed);
}

TEST(Hwp, EppLadderIsMonotoneNonIncreasing) {
    const HwpCapabilities caps = skx_caps();
    unsigned prev = caps.highest + 1;
    for (unsigned epp = 0; epp <= 255; ++epp) {
        HwpRequest req;  // autonomous: min/max/desired = 0
        req.epp = epp;
        const unsigned r = resolve_hwp_ratio(caps, req);
        EXPECT_LE(r, prev) << "EPP " << epp;
        EXPECT_GE(r, caps.lowest);
        EXPECT_LE(r, caps.highest);
        prev = r;
    }
}

TEST(Hwp, EppLadderEndpoints) {
    const HwpCapabilities caps = skx_caps();
    HwpRequest req;
    req.epp = 0;  // performance band
    EXPECT_EQ(resolve_hwp_ratio(caps, req), caps.highest);
    req.epp = 63;  // whole band below 64 pins the window maximum
    EXPECT_EQ(resolve_hwp_ratio(caps, req), caps.highest);
    req.epp = 255;  // full energy preference lands on the window minimum
    EXPECT_EQ(resolve_hwp_ratio(caps, req), caps.lowest);
}

TEST(Hwp, DesiredRatioClampsIntoWindow) {
    const HwpCapabilities caps = skx_caps();
    HwpRequest req;
    req.min_ratio = 20;
    req.max_ratio = 30;
    req.desired_ratio = 35;
    EXPECT_EQ(resolve_hwp_ratio(caps, req), 30u);
    req.desired_ratio = 15;
    EXPECT_EQ(resolve_hwp_ratio(caps, req), 20u);
    req.desired_ratio = 25;
    EXPECT_EQ(resolve_hwp_ratio(caps, req), 25u);
}

TEST(Hwp, ZeroMinMaxFallBackToCapabilities) {
    const HwpCapabilities caps = skx_caps();
    HwpRequest req;
    req.desired_ratio = 255;  // far above the range
    EXPECT_EQ(resolve_hwp_ratio(caps, req), caps.highest);
    req.desired_ratio = 1;  // far below
    EXPECT_EQ(resolve_hwp_ratio(caps, req), caps.lowest);
}

TEST(Hwp, MinAboveMaxCollapsesToMin) {
    const HwpCapabilities caps = skx_caps();
    HwpRequest req;
    req.min_ratio = 30;
    req.max_ratio = 20;  // inverted window: eff_max is floored at eff_min
    req.desired_ratio = 25;
    EXPECT_EQ(resolve_hwp_ratio(caps, req), 30u);
}

TEST(Hwp, OutOfRangeBoundsClampToCapabilities) {
    const HwpCapabilities caps = skx_caps();
    HwpRequest req;
    req.min_ratio = 1;    // below lowest
    req.max_ratio = 200;  // above highest
    req.epp = 0;
    EXPECT_EQ(resolve_hwp_ratio(caps, req), caps.highest);
    req.epp = 255;
    EXPECT_EQ(resolve_hwp_ratio(caps, req), caps.lowest);
}

TEST(Hwp, EppCollapsesToEpbTiers) {
    EXPECT_EQ(epp_to_epb(0), msr::EpbPolicy::Performance);
    EXPECT_EQ(epp_to_epb(63), msr::EpbPolicy::Performance);
    EXPECT_EQ(epp_to_epb(64), msr::EpbPolicy::Balanced);
    EXPECT_EQ(epp_to_epb(128), msr::EpbPolicy::Balanced);
    EXPECT_EQ(epp_to_epb(191), msr::EpbPolicy::Balanced);
    EXPECT_EQ(epp_to_epb(192), msr::EpbPolicy::EnergySaving);
    EXPECT_EQ(epp_to_epb(255), msr::EpbPolicy::EnergySaving);
}

}  // namespace
}  // namespace hsw::pcu
