// Violates reactor-blocking: a blocking socket call inside the
// reactor-thread region. The suppressed call and the identical call
// outside the region stay clean.
#include <sys/socket.h>

namespace hsw::service {

// hsw:reactor-thread
void fixture_drain(int fd, sockaddr* addr, socklen_t* len) {
    ::accept(fd, addr, len);  // flagged: blocks the event loop
    // hsw-lint: allow(reactor-blocking) -- fixture: probe is nonblocking
    ::accept(fd, addr, len);
}
// hsw:end-reactor-thread

void fixture_accept_loop(int fd, sockaddr* addr, socklen_t* len) {
    ::accept(fd, addr, len);  // clean: a dedicated acceptor thread may block
}

}  // namespace hsw::service
