// Violates lock-across-io: file I/O while a lock guard is held.
#include <cstdio>

#include "util/sync.hpp"

namespace hsw::service {

util::Mutex fixture_lock;

void fixture_flush(const char* path) {
    util::LockGuard lock{fixture_lock};
    std::FILE* f = std::fopen(path, "wb");  // flagged: guard still held
    lock.unlock();
    if (f != nullptr) std::fclose(f);  // clean: guard released above
}

void fixture_flush_ok(const char* path) {
    {
        util::LockGuard lock{fixture_lock};
    }
    std::FILE* f = std::fopen(path, "wb");  // clean: guard scope closed
    if (f != nullptr) std::fclose(f);
}

}  // namespace hsw::service
