// Exercises suppressions: every violation here is explicitly allowed, so
// this file must lint clean.
#include <cstdlib>
#include <chrono>

namespace hsw::sim {

// hsw-lint: allow(determinism-rng)
int fixture_seeded() { return std::rand(); }

long long fixture_stamp() {
    return std::chrono::system_clock::now()  // hsw-lint: allow(determinism-wallclock)
        .time_since_epoch()
        .count();
}

// hsw-lint: allow(all)
int fixture_both() { return std::rand(); }

}  // namespace hsw::sim
