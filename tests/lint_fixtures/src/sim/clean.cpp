// A fully clean sim file: deterministic time, facade includes only,
// catalog-safe hex, no raw sync primitives.
#include <chrono>
#include <cstdint>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace hsw::sim {

std::uint64_t fixture_elapsed(std::chrono::steady_clock::time_point start) {
    const auto now = std::chrono::steady_clock::now();
    return static_cast<std::uint64_t>((now - start).count());
}

unsigned fixture_flags() { return 0xFF; }

}  // namespace hsw::sim
