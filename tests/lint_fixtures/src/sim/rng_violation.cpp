// Violates determinism-rng: global RNG in the deterministic core.
#include <cstdlib>

namespace hsw::sim {

// A mention of rand in a comment must NOT fire; only the call below does.
int fixture_roll() { return std::rand() % 6; }

}  // namespace hsw::sim
