// Violates determinism-wallclock: real time in the deterministic core.
#include <chrono>

namespace hsw::sim {

long long fixture_now() {
    return std::chrono::system_clock::now().time_since_epoch().count();
}

}  // namespace hsw::sim
