// Violates include-layering twice: sim reaching up into service/ and
// into an obs internal that is not one of the two public facades.
#include "obs/registry_detail.hpp"
#include "service/service.hpp"

namespace hsw::sim {

void fixture_noop() {}

}  // namespace hsw::sim
