// Violates include-layering: a device model reaching up into the platform
// backends. Generation differences reach rapl through arch::GenerationTraits.
#include "platform/registry.hpp"

namespace hsw::rapl {

void fixture_noop() {}

}  // namespace hsw::rapl
