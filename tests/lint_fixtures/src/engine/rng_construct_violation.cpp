// Violates engine-rng-derive: raw-seed Rng construction in the engine.
#include "util/rng.hpp"

namespace hsw::engine {

unsigned fixture_draw() {
    util::Rng rng{42};
    return static_cast<unsigned>(rng.next_u64());
}

}  // namespace hsw::engine
