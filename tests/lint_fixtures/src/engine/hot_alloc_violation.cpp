// Violates hot-path-alloc: heap growth inside a marked hot region.
#include <vector>

namespace hsw::engine {

// hsw:hot-path
int fixture_hot(std::vector<int>& out) {
    out.push_back(1);
    return static_cast<int>(out.size());
}
// hsw:end-hot-path

// Outside the region the same call is fine.
void fixture_cold(std::vector<int>& out) { out.push_back(2); }

}  // namespace hsw::engine
