// Violates msr-catalog: a raw MSR address that addresses.hpp names.
namespace hsw::core {

// "0x611 in a string" and the comment mention 0x1B0 must not fire.
unsigned fixture_read_energy() {
    const char* doc = "reads MSR 0x611";
    (void)doc;
    return 0x611;  // flagged: MSR_PKG_ENERGY_STATUS spelled raw
}

unsigned fixture_mask() { return 0x7FFF; }  // clean: not a catalog value

}  // namespace hsw::core
