// Violates include-layering: router/ is the top of the service stack;
// nothing below it may depend on fleet routing.
#include "router/fleet_map.hpp"

namespace hsw::core {

void fixture_noop() {}

}  // namespace hsw::core
