// Fixture: the access-log JSON emitter's field names must be string
// literals at every call site; a computed name means per-record key
// formatting, which the ring design forbids.
#include <string>

void append_field(std::string& out, const char* name, const char* value,
                  bool quote);

void emit(std::string& out, const std::string& key) {
    append_field(out, "outcome", "ok", true);
    append_field(out, key.c_str(), "ok", true);
}
