// Violates concurrency-wrappers: raw std primitives where the annotated
// util wrappers are mandatory.
#include <mutex>

namespace hsw::obs {

std::mutex fixture_lock;

void fixture_locked() { std::lock_guard<std::mutex> lock{fixture_lock}; }

}  // namespace hsw::obs
