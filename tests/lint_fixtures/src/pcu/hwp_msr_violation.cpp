// Violates msr-catalog: raw HWP MSR addresses that addresses.hpp names.
namespace hsw::pcu {

unsigned fixture_read_hwp_request() {
    return 0x774;  // flagged: IA32_HWP_REQUEST spelled raw
}

unsigned fixture_enable_hwp() {
    return 0x770;  // flagged: MSR_PM_ENABLE spelled raw
}

unsigned fixture_epp_mask() { return 0xFF; }  // clean: not a catalog value

}  // namespace hsw::pcu
