// Violates include-layering twice: platform backends reaching up into the
// simulated machine and into the engine above it.
#include "core/node.hpp"
#include "engine/experiment.hpp"

namespace hsw::platform {

void fixture_noop() {}

}  // namespace hsw::platform
