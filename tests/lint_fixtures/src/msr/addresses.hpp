// Fixture catalog: the two addresses the msr-catalog fixtures reference.
#pragma once

namespace hsw::msr {

using MsrAddress = unsigned;

inline constexpr MsrAddress MSR_PKG_ENERGY_STATUS = 0x611;
inline constexpr MsrAddress IA32_ENERGY_PERF_BIAS = 0x1B0;

}  // namespace hsw::msr
