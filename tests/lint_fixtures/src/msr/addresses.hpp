// Fixture catalog: the addresses the msr-catalog fixtures reference.
#pragma once

namespace hsw::msr {

using MsrAddress = unsigned;

inline constexpr MsrAddress MSR_PKG_ENERGY_STATUS = 0x611;
inline constexpr MsrAddress IA32_ENERGY_PERF_BIAS = 0x1B0;
inline constexpr MsrAddress MSR_PM_ENABLE = 0x770;
inline constexpr MsrAddress IA32_HWP_REQUEST = 0x774;

}  // namespace hsw::msr
