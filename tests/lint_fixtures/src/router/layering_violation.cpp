// Violates include-layering twice: the router must route compute through
// service/, never reach into the engine or the simulator directly.
#include "engine/executor.hpp"
#include "sim/clock.hpp"

namespace hsw::router {

void fixture_noop() {}

}  // namespace hsw::router
