#include <gtest/gtest.h>

#include "sim/trace_json.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace hsw::sim {
namespace {

using util::Time;

Trace make_trace() {
    Trace t;
    t.enable();
    t.record(Time::us(100), "pstate", "cpu0", "request 12->13", 1.3);
    t.record(Time::us(600), "pcu", "socket0", "opportunity");
    t.record(Time::us(621), "pstate", "socket0", "change complete", 1.3);
    return t;
}

TEST(TraceJson, ContainsEventsAndMetadata) {
    const std::string json = to_chrome_trace_json(make_trace(), "my-node");
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("my-node"), std::string::npos);
    EXPECT_NE(json.find("request 12->13"), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);   // instant event
    EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);   // counter series
    EXPECT_NE(json.find("\"ts\":100.000"), std::string::npos); // microseconds
}

TEST(TraceJson, ZeroValuedRecordsSkipCounterSeries) {
    Trace t;
    t.enable();
    t.record(Time::us(1), "pcu", "socket0", "opportunity");  // value 0
    const std::string json = to_chrome_trace_json(t);
    EXPECT_EQ(json.find("\"ph\":\"C\""), std::string::npos);
}

TEST(TraceJson, EscapesQuotesAndBackslashes) {
    Trace t;
    t.enable();
    t.record(Time::us(1), "cat", "sub", "say \"hi\" \\ bye");
    const std::string json = to_chrome_trace_json(t);
    EXPECT_NE(json.find("say \\\"hi\\\" \\\\ bye"), std::string::npos);
}

TEST(TraceJson, BalancedBracesAndBrackets) {
    const std::string json = to_chrome_trace_json(make_trace());
    int braces = 0;
    int brackets = 0;
    bool in_string = false;
    for (std::size_t i = 0; i < json.size(); ++i) {
        const char c = json[i];
        if (c == '"' && (i == 0 || json[i - 1] != '\\')) in_string = !in_string;
        if (in_string) continue;
        if (c == '{') ++braces;
        if (c == '}') --braces;
        if (c == '[') ++brackets;
        if (c == ']') --brackets;
    }
    EXPECT_EQ(braces, 0);
    EXPECT_EQ(brackets, 0);
}

TEST(TraceJson, WritesFile) {
    const std::string path = ::testing::TempDir() + "hsw_trace.json";
    write_chrome_trace(make_trace(), path);
    std::ifstream in{path};
    std::stringstream ss;
    ss << in.rdbuf();
    EXPECT_NE(ss.str().find("traceEvents"), std::string::npos);
    std::remove(path.c_str());
}

TEST(TraceJson, ThrowsOnBadPath) {
    EXPECT_THROW(write_chrome_trace(make_trace(), "/no-such-dir-xyz/t.json"),
                 std::runtime_error);
}

}  // namespace
}  // namespace hsw::sim
