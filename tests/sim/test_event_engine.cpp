// Engine-internals tests for the slab/heap event core: exact pending
// counts, stale-handle cancels, in-place periodic rescheduling, and the
// allocation-free steady-state guarantee.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <stdexcept>
#include <vector>

#include "sim/simulator.hpp"
#include "util/inline_function.hpp"

// Binary-wide replaceable allocation counter: the steady-state test
// brackets a dispatch window and asserts the simulator made zero trips to
// the allocator. Pass-through otherwise, so every other test in this
// binary is unaffected.
namespace {
std::atomic<std::uint64_t> g_heap_allocs{0};
}  // namespace

// noinline keeps the malloc/free bodies opaque at call sites; with them
// inlined, GCC's -Wmismatched-new-delete pairs the exposed free() against
// `new` expressions and misfires (seen under -fsanitize=thread).
#if defined(__GNUC__)
#define HSW_TEST_NOINLINE __attribute__((noinline))
#else
#define HSW_TEST_NOINLINE
#endif

HSW_TEST_NOINLINE void* operator new(std::size_t size) {
    g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(size)) return p;
    throw std::bad_alloc{};
}

HSW_TEST_NOINLINE void operator delete(void* p) noexcept { std::free(p); }
HSW_TEST_NOINLINE void operator delete(void* p, std::size_t) noexcept {
    std::free(p);
}

namespace hsw::sim {
namespace {

using util::Time;

TEST(EventEngine, PendingEventsIsExact) {
    Simulator sim;
    EXPECT_EQ(sim.pending_events(), 0u);

    const EventId a = sim.schedule_at(Time::us(10), [] {});
    const EventId b = sim.schedule_at(Time::us(20), [] {});
    sim.schedule_periodic(Time::us(5), Time::us(5), [](Time) {});
    EXPECT_EQ(sim.pending_events(), 3u);

    EXPECT_TRUE(sim.cancel(a));
    EXPECT_EQ(sim.pending_events(), 2u);

    sim.run_until(Time::us(12));  // fires the periodic at 5 and 10
    EXPECT_EQ(sim.pending_events(), 2u);  // b + rescheduled periodic

    EXPECT_TRUE(sim.cancel(b));
    EXPECT_EQ(sim.pending_events(), 1u);
}

TEST(EventEngine, CancelStaleIdsReturnsFalseWithoutStateGrowth) {
    Simulator sim;
    EXPECT_FALSE(sim.cancel(EventId{}));  // never scheduled

    const EventId a = sim.schedule_at(Time::us(1), [] {});
    sim.run_until(Time::us(2));
    EXPECT_FALSE(sim.cancel(a));  // already fired

    const EventId b = sim.schedule_at(Time::us(5), [] {});
    EXPECT_TRUE(sim.cancel(b));
    EXPECT_FALSE(sim.cancel(b));  // already cancelled

    // A stale cancel must not poison the slot's current occupant.
    const EventId c = sim.schedule_at(Time::us(9), [] {});
    EXPECT_FALSE(sim.cancel(b));  // b's slot may now belong to c
    EXPECT_EQ(sim.pending_events(), 1u);
    bool fired = false;
    sim.schedule_at(Time::us(10), [&fired] { fired = true; });
    sim.run_until(Time::us(10));
    EXPECT_TRUE(fired);
    (void)c;
}

TEST(EventEngine, CancelPeriodicStaleReturnsFalse) {
    Simulator sim;
    EXPECT_FALSE(sim.cancel_periodic(0));
    EXPECT_FALSE(sim.cancel_periodic(12345));

    const auto pid = sim.schedule_periodic(Time::us(1), Time::us(1), [](Time) {});
    EXPECT_TRUE(sim.cancel_periodic(pid));
    EXPECT_FALSE(sim.cancel_periodic(pid));
    EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(EventEngine, PeriodicCancelFromOwnCallbackStopsTheChain) {
    Simulator sim;
    int fires = 0;
    std::uint64_t pid = 0;
    pid = sim.schedule_periodic(Time::us(1), Time::us(1), [&](Time) {
        if (++fires == 3) {
            EXPECT_TRUE(sim.cancel_periodic(pid));
        }
    });
    sim.run_until(Time::us(100));
    EXPECT_EQ(fires, 3);
    EXPECT_EQ(sim.pending_events(), 0u);
    EXPECT_FALSE(sim.cancel_periodic(pid));
}

TEST(EventEngine, PeriodicCancelThenRescheduleSameTick) {
    // Cancel a periodic and schedule its replacement at the very tick the
    // old one would have fired next: exactly one of the two fires there.
    Simulator sim;
    std::vector<int> fired;
    const auto pid = sim.schedule_periodic(Time::us(10), Time::us(10),
                                           [&](Time) { fired.push_back(1); });
    sim.run_until(Time::us(10));
    ASSERT_EQ(fired, (std::vector<int>{1}));

    EXPECT_TRUE(sim.cancel_periodic(pid));
    const auto pid2 = sim.schedule_periodic(Time::us(20), Time::us(10),
                                            [&](Time) { fired.push_back(2); });
    sim.run_until(Time::us(30));
    EXPECT_EQ(fired, (std::vector<int>{1, 2, 2}));
    EXPECT_TRUE(sim.cancel_periodic(pid2));
}

TEST(EventEngine, PeriodicRescheduleFromOwnCallbackSameTickKeepsOrdering) {
    // A periodic that cancels itself mid-callback and plants a replacement
    // at its own fire time: the replacement was scheduled "now", which is
    // legal, and fires in the same run_until pass.
    Simulator sim;
    std::vector<int> fired;
    std::uint64_t pid = 0;
    pid = sim.schedule_periodic(Time::us(10), Time::us(10), [&](Time t) {
        fired.push_back(1);
        EXPECT_TRUE(sim.cancel_periodic(pid));
        sim.schedule_at(t, [&] { fired.push_back(2); });
    });
    sim.run_until(Time::us(10));
    EXPECT_EQ(fired, (std::vector<int>{1, 2}));
    EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(EventEngine, MemoryStatsTracksSlabAndFreeList) {
    Simulator sim;
    const auto e0 = sim.memory_stats();
    EXPECT_EQ(e0.live_events, 0u);

    std::vector<EventId> ids;
    ids.reserve(64);
    for (int i = 0; i < 64; ++i) {
        ids.push_back(sim.schedule_at(Time::us(1 + i), [] {}));
    }
    const auto e1 = sim.memory_stats();
    EXPECT_EQ(e1.live_events, 64u);
    EXPECT_GE(e1.slab_capacity, 64u);

    for (const EventId& id : ids) EXPECT_TRUE(sim.cancel(id));
    const auto e2 = sim.memory_stats();
    EXPECT_EQ(e2.live_events, 0u);
    EXPECT_EQ(e2.free_slots, e2.slab_capacity);
    EXPECT_EQ(e2.slab_capacity, e1.slab_capacity);  // slots recycled, not freed
}

TEST(EventEngine, SteadyStateDispatchIsAllocationFree) {
    Simulator sim;

    // A self-rescheduling ring of one-shots plus a handful of periodics --
    // the simulation core's steady-state shape.
    struct Ring {
        Simulator* sim;
        std::uint64_t* fired;
        void operator()() const {
            ++*fired;
            sim->schedule_after(Time::ns(250), Ring{*this});
        }
    };
    static_assert(Simulator::Callback::fits_inline<Ring>);

    std::uint64_t fired = 0;
    for (int i = 0; i < 32; ++i) {
        sim.schedule_after(Time::ns(100 + i), Ring{&sim, &fired});
    }
    for (int i = 0; i < 8; ++i) {
        sim.schedule_periodic(Time::ns(150 + i), Time::ns(300 + 7 * i),
                              [&fired](Time) { ++fired; });
    }

    // Warm up: slab/heap reach their steady-state capacities.
    sim.run_until(Time::us(50));
    const auto warm = sim.memory_stats();
    const std::uint64_t fired_warm = fired;

    const std::uint64_t inline_spills_before = util::inline_function_heap_allocations();
    const std::uint64_t heap_allocs_before = g_heap_allocs.load();
    sim.run_until(Time::ms(2));
    const std::uint64_t heap_allocs_after = g_heap_allocs.load();
    const std::uint64_t inline_spills_after = util::inline_function_heap_allocations();
    const auto steady = sim.memory_stats();

    EXPECT_GT(fired - fired_warm, 10000u);  // the window actually dispatched
    EXPECT_EQ(heap_allocs_after, heap_allocs_before);
    EXPECT_EQ(inline_spills_after, inline_spills_before);
    EXPECT_EQ(steady.slab_capacity, warm.slab_capacity);
    EXPECT_EQ(steady.heap_capacity, warm.heap_capacity);
}

TEST(EventEngine, ThreadEventsProcessedTicksWithDispatch) {
    const std::uint64_t before = Simulator::thread_events_processed();
    Simulator sim;
    for (int i = 0; i < 10; ++i) sim.schedule_at(Time::us(i), [] {});
    sim.run_all();
    EXPECT_EQ(Simulator::thread_events_processed(), before + 10);
    EXPECT_EQ(sim.processed_events(), 10u);
}

TEST(EventEngine, SchedulingInThePastThrows) {
    Simulator sim;
    sim.schedule_at(Time::us(5), [] {});
    sim.run_until(Time::us(10));
    EXPECT_THROW(sim.schedule_at(Time::us(9), [] {}), std::invalid_argument);
    EXPECT_THROW(sim.schedule_periodic(Time::us(20), Time::zero(), [](Time) {}),
                 std::invalid_argument);
}

}  // namespace
}  // namespace hsw::sim
