// Tests for the SoA trace storage: bulk append, borrowed views, observer
// taps on the batch path, and materialized rows.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/trace.hpp"

namespace hsw::sim {
namespace {

using util::Time;

TEST(TraceBatch, AppendNStoresSamplesInOrder) {
    Trace trace;
    trace.enable();
    const std::vector<Trace::Sample> samples{
        {Time::us(1), 1.0}, {Time::us(2), 2.0}, {Time::us(3), 3.0}};
    trace.append_n("rapl", "socket0", "pkg power", samples);

    ASSERT_EQ(trace.size(), 3u);
    for (std::size_t i = 0; i < trace.size(); ++i) {
        const TraceView v = trace.view(i);
        EXPECT_EQ(v.when, samples[i].when);
        EXPECT_EQ(v.value, samples[i].value);
        EXPECT_EQ(v.category, "rapl");
        EXPECT_EQ(v.subject, "socket0");
        EXPECT_EQ(v.detail, "pkg power");
    }
}

TEST(TraceBatch, AppendNInterleavesWithPointRecords) {
    Trace trace;
    trace.enable();
    trace.record(Time::us(1), "pstate", "cpu0", "request 12->13", 13.0);
    const std::vector<Trace::Sample> samples{{Time::us(2), 0.5}, {Time::us(3), 0.7}};
    trace.append_n("rapl", "socket0", "sample", samples);
    trace.record(Time::us(4), "pstate", "cpu0", "change complete", 13.0);

    ASSERT_EQ(trace.size(), 4u);
    EXPECT_EQ(trace.view(0).detail, "request 12->13");
    EXPECT_EQ(trace.view(2).value, 0.7);
    EXPECT_EQ(trace.view(3).detail, "change complete");

    const auto rapl_rows = trace.filter("rapl");
    ASSERT_EQ(rapl_rows.size(), 2u);
    EXPECT_EQ(rapl_rows[0].subject, "socket0");
    EXPECT_EQ(rapl_rows[1].value, 0.7);
}

TEST(TraceBatch, ObserversSeeEveryBatchedSampleEvenWhenDisabled) {
    Trace trace;  // recording stays off
    std::vector<double> seen;
    trace.add_observer([&seen](const TraceView& v) { seen.push_back(v.value); });

    const std::vector<Trace::Sample> samples{{Time::us(1), 1.5}, {Time::us(2), 2.5}};
    trace.append_n("meter", "lmg450", "reading", samples);
    EXPECT_EQ(seen, (std::vector<double>{1.5, 2.5}));
    EXPECT_EQ(trace.size(), 0u);  // nothing stored while disabled
}

TEST(TraceBatch, EmptyBatchIsANoOp) {
    Trace trace;
    trace.enable();
    trace.append_n("rapl", "socket0", "pkg", {});
    EXPECT_TRUE(trace.empty());
}

TEST(TraceBatch, RecordsMaterializesOwningRows) {
    Trace trace;
    trace.enable();
    trace.record(Time::us(1), "cat", "subj", "detail", 42.0);
    auto rows = trace.records();
    trace.clear();  // views into the trace would now dangle; rows must not
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0].category, "cat");
    EXPECT_EQ(rows[0].subject, "subj");
    EXPECT_EQ(rows[0].detail, "detail");
    EXPECT_EQ(rows[0].value, 42.0);
}

TEST(TraceBatch, ReserveAvoidsColumnReallocations) {
    Trace trace;
    trace.enable();
    trace.reserve(1000, 8000);
    for (int i = 0; i < 1000; ++i) {
        trace.record(Time::ns(i), "cat", "subj", "detail", i);
    }
    EXPECT_EQ(trace.size(), 1000u);
    EXPECT_EQ(trace.view(999).value, 999.0);
}

TEST(TraceBatch, TraceViewConvertsFromOwningRecord) {
    const TraceRecord rec{Time::us(7), "cat", "subj", "det", 1.0};
    const TraceView v = rec;
    EXPECT_EQ(v.when, rec.when);
    EXPECT_EQ(v.category, "cat");
    EXPECT_EQ(v.detail, "det");
}

TEST(TraceBatch, InternerSharesTagsAcrossManyRecords) {
    Trace trace;
    trace.enable();
    for (int i = 0; i < 100; ++i) {
        trace.record(Time::ns(i), i % 2 == 0 ? "pstate" : "cstate", "cpu0", "tick", i);
    }
    ASSERT_EQ(trace.size(), 100u);
    EXPECT_EQ(trace.filter("pstate").size(), 50u);
    EXPECT_EQ(trace.filter("cstate", "cpu0").size(), 50u);
}

}  // namespace
}  // namespace hsw::sim
