#include <gtest/gtest.h>

#include "sim/simulator.hpp"

#include <vector>

namespace hsw::sim {
namespace {

using util::Time;

TEST(Simulator, ProcessesEventsInTimeOrder) {
    Simulator sim;
    std::vector<int> order;
    sim.schedule_at(Time::us(30), [&] { order.push_back(3); });
    sim.schedule_at(Time::us(10), [&] { order.push_back(1); });
    sim.schedule_at(Time::us(20), [&] { order.push_back(2); });
    sim.run_all();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(sim.now(), Time::us(30));
}

TEST(Simulator, TieBreaksByInsertionOrder) {
    Simulator sim;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i) {
        sim.schedule_at(Time::us(5), [&order, i] { order.push_back(i); });
    }
    sim.run_all();
    for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, RunUntilAdvancesClockEvenWithoutEvents) {
    Simulator sim;
    sim.run_until(Time::ms(5));
    EXPECT_EQ(sim.now(), Time::ms(5));
}

TEST(Simulator, RunUntilStopsAtBoundary) {
    Simulator sim;
    int fired = 0;
    sim.schedule_at(Time::us(10), [&] { ++fired; });
    sim.schedule_at(Time::us(20), [&] { ++fired; });
    sim.run_until(Time::us(15));
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(sim.now(), Time::us(15));
    sim.run_until(Time::us(25));
    EXPECT_EQ(fired, 2);
}

TEST(Simulator, EventsAtBoundaryIncluded) {
    Simulator sim;
    int fired = 0;
    sim.schedule_at(Time::us(10), [&] { ++fired; });
    sim.run_until(Time::us(10));
    EXPECT_EQ(fired, 1);
}

TEST(Simulator, SchedulingInThePastThrows) {
    Simulator sim;
    sim.run_until(Time::us(100));
    EXPECT_THROW(sim.schedule_at(Time::us(50), [] {}), std::invalid_argument);
}

TEST(Simulator, CancelPreventsExecution) {
    Simulator sim;
    int fired = 0;
    const EventId id = sim.schedule_at(Time::us(10), [&] { ++fired; });
    EXPECT_TRUE(sim.cancel(id));
    EXPECT_FALSE(sim.cancel(id));  // double cancel
    sim.run_all();
    EXPECT_EQ(fired, 0);
}

TEST(Simulator, EventsCanScheduleEvents) {
    Simulator sim;
    std::vector<std::int64_t> at;
    sim.schedule_at(Time::us(1), [&] {
        at.push_back(sim.now().as_ns());
        sim.schedule_after(Time::us(2), [&] { at.push_back(sim.now().as_ns()); });
    });
    sim.run_all();
    EXPECT_EQ(at, (std::vector<std::int64_t>{1000, 3000}));
}

TEST(Simulator, PeriodicFiresOnGrid) {
    Simulator sim;
    std::vector<std::int64_t> fires;
    sim.schedule_periodic(Time::us(100), Time::us(500),
                          [&](Time t) { fires.push_back(t.as_ns() / 1000); });
    sim.run_until(Time::us(1700));
    EXPECT_EQ(fires, (std::vector<std::int64_t>{100, 600, 1100, 1600}));
}

TEST(Simulator, PeriodicCancellationStopsChain) {
    Simulator sim;
    int fired = 0;
    const auto pid = sim.schedule_periodic(Time::us(10), Time::us(10),
                                           [&](Time) { ++fired; });
    sim.run_until(Time::us(35));
    EXPECT_EQ(fired, 3);
    sim.cancel_periodic(pid);
    sim.run_until(Time::us(100));
    EXPECT_EQ(fired, 3);
}

TEST(Simulator, ProcessedEventCount) {
    Simulator sim;
    for (int i = 1; i <= 5; ++i) sim.schedule_at(Time::us(i), [] {});
    sim.run_all();
    EXPECT_EQ(sim.processed_events(), 5u);
}

TEST(Simulator, StepReturnsFalseWhenIdle) {
    Simulator sim;
    EXPECT_FALSE(sim.step());
    sim.schedule_at(Time::us(1), [] {});
    EXPECT_TRUE(sim.step());
    EXPECT_FALSE(sim.step());
}

}  // namespace
}  // namespace hsw::sim
