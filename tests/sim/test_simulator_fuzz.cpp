// Randomized differential test: the slab/4-ary-heap event engine against a
// naive sorted-vector reference model. Both execute the same random
// interleaving of schedule / cancel / run_until / step operations
// (periodics included) and must agree on fire order, pending counts,
// cancel results, and the clock -- the heap is an optimization, never a
// semantic change.
//
// The model mirrors the engine's determinism contract exactly: events fire
// in (when, seq) order, and a periodic's next occurrence takes its seq
// *after* the current one fired.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <unordered_set>
#include <vector>

#include "sim/simulator.hpp"

namespace hsw::sim {
namespace {

using util::Time;

/// Reference event: a flat struct in an unsorted vector; firing scans for
/// the (when, seq) minimum. O(n) per op and obviously correct.
struct ModelEvent {
    std::int64_t when_ns = 0;
    std::uint64_t seq = 0;
    std::uint64_t label = 0;   // what firing appends to the log
    std::uint64_t pid = 0;     // nonzero => periodic
    std::int64_t period_ns = 0;
};

class ReferenceModel {
public:
    std::uint64_t schedule_at(std::int64_t when_ns, std::uint64_t label) {
        const std::uint64_t seq = next_seq_++;
        events_.push_back({when_ns, seq, label, 0, 0});
        return seq;
    }

    std::uint64_t schedule_periodic(std::int64_t start_ns, std::int64_t period_ns,
                                    std::uint64_t label) {
        const std::uint64_t pid = next_pid_++;
        events_.push_back({start_ns, next_seq_++, label, pid, period_ns});
        return pid;
    }

    bool cancel(std::uint64_t seq) {
        const auto it = std::find_if(events_.begin(), events_.end(), [&](const auto& e) {
            return e.seq == seq && e.pid == 0;
        });
        if (it == events_.end()) return false;
        events_.erase(it);
        return true;
    }

    bool cancel_periodic(std::uint64_t pid) {
        const auto it = std::find_if(events_.begin(), events_.end(),
                                     [&](const auto& e) { return e.pid == pid; });
        if (it == events_.end()) return false;
        events_.erase(it);
        return true;
    }

    bool step(std::vector<std::uint64_t>& fired) {
        const auto it = min_pending();
        if (it == events_.end()) return false;
        now_ns_ = it->when_ns;
        fired.push_back(it->label);
        if (it->pid != 0) {
            it->when_ns += it->period_ns;
            it->seq = next_seq_++;  // seq allocated after the fire, like the engine
        } else {
            events_.erase(it);
        }
        return true;
    }

    void run_until(std::int64_t t_ns, std::vector<std::uint64_t>& fired) {
        while (true) {
            const auto it = min_pending();
            if (it == events_.end() || it->when_ns > t_ns) break;
            step(fired);
        }
        now_ns_ = std::max(now_ns_, t_ns);
    }

    [[nodiscard]] std::size_t pending() const { return events_.size(); }
    [[nodiscard]] std::int64_t now_ns() const { return now_ns_; }

private:
    std::vector<ModelEvent>::iterator min_pending() {
        return std::min_element(events_.begin(), events_.end(),
                                [](const auto& a, const auto& b) {
                                    return a.when_ns != b.when_ns ? a.when_ns < b.when_ns
                                                                  : a.seq < b.seq;
                                });
    }

    std::vector<ModelEvent> events_;
    std::uint64_t next_seq_ = 1;
    std::uint64_t next_pid_ = 1;
    std::int64_t now_ns_ = 0;
};

struct OneShotHandle {
    std::uint64_t label = 0;
    std::uint64_t seq = 0;   // model handle
    EventId id;              // engine handle
};

void fuzz_round(std::uint64_t seed, unsigned ops) {
    std::mt19937_64 rng{seed};
    Simulator sim;
    ReferenceModel model;
    std::vector<OneShotHandle> oneshots;
    std::vector<OneShotHandle> stale;  // fired or cancelled handles
    std::vector<std::pair<std::uint64_t, std::uint64_t>> periodics;  // model -> engine
    std::vector<std::uint64_t> sim_fired;
    std::vector<std::uint64_t> model_fired;
    std::unordered_set<std::uint64_t> fired_labels;
    std::size_t compare_cursor = 0;
    std::uint64_t next_label = 1;

    const auto rand_in = [&](std::int64_t lo, std::int64_t hi) {
        return lo +
               static_cast<std::int64_t>(rng() % static_cast<std::uint64_t>(hi - lo + 1));
    };

    for (unsigned op = 0; op < ops; ++op) {
        switch (rng() % 10) {
            case 0:
            case 1:
            case 2: {  // one-shot at now + [0, 1000] ns
                const std::int64_t when = model.now_ns() + rand_in(0, 1000);
                const std::uint64_t label = next_label++;
                const std::uint64_t seq = model.schedule_at(when, label);
                const EventId id = sim.schedule_at(
                    Time::ns(when), [&sim_fired, label] { sim_fired.push_back(label); });
                ASSERT_EQ(id.seq, seq) << "seq allocation diverged at op " << op;
                oneshots.push_back({label, seq, id});
                break;
            }
            case 3: {  // periodic, period in [1, 300] ns
                const std::int64_t start = model.now_ns() + rand_in(0, 500);
                const std::int64_t period = rand_in(1, 300);
                const std::uint64_t label = next_label++;
                const std::uint64_t mpid = model.schedule_periodic(start, period, label);
                const std::uint64_t pid = sim.schedule_periodic(
                    Time::ns(start), Time::ns(period),
                    [&sim_fired, label](Time) { sim_fired.push_back(label); });
                periodics.emplace_back(mpid, pid);
                break;
            }
            case 4: {  // cancel a random outstanding one-shot
                if (oneshots.empty()) break;
                const std::size_t pick = rng() % oneshots.size();
                const OneShotHandle h = oneshots[pick];
                oneshots.erase(oneshots.begin() + static_cast<std::ptrdiff_t>(pick));
                ASSERT_EQ(sim.cancel(h.id), model.cancel(h.seq)) << "op " << op;
                stale.push_back(h);
                break;
            }
            case 5: {  // cancel a stale (already fired or cancelled) handle
                if (stale.empty()) break;
                const OneShotHandle& h = stale[rng() % stale.size()];
                ASSERT_EQ(sim.cancel(h.id), model.cancel(h.seq)) << "op " << op;
                break;
            }
            case 6: {  // cancel a periodic (sometimes twice -> stale)
                if (periodics.empty()) break;
                const std::size_t pick = rng() % periodics.size();
                const auto [mpid, pid] = periodics[pick];
                ASSERT_EQ(sim.cancel_periodic(pid), model.cancel_periodic(mpid))
                    << "op " << op;
                if (rng() % 2 == 0) {
                    periodics.erase(periodics.begin() +
                                    static_cast<std::ptrdiff_t>(pick));
                }
                break;
            }
            case 7:
            case 8: {  // run_until now + [0, 800] ns
                const std::int64_t t = model.now_ns() + rand_in(0, 800);
                sim.run_until(Time::ns(t));
                model.run_until(t, model_fired);
                ASSERT_EQ(sim.now().as_ns(), t);
                break;
            }
            case 9: {  // single step
                const bool stepped = model.step(model_fired);
                ASSERT_EQ(sim.step(), stepped) << "op " << op;
                if (stepped) {
                    ASSERT_EQ(sim.now().as_ns(), model.now_ns());
                }
                break;
            }
        }

        ASSERT_EQ(sim.pending_events(), model.pending()) << "op " << op;
        ASSERT_EQ(sim_fired.size(), model_fired.size()) << "op " << op;
        for (; compare_cursor < sim_fired.size(); ++compare_cursor) {
            ASSERT_EQ(sim_fired[compare_cursor], model_fired[compare_cursor])
                << "fire order diverged at index " << compare_cursor << ", op " << op;
            fired_labels.insert(sim_fired[compare_cursor]);
        }

        // Sweep fired one-shots into the stale-handle pool.
        std::erase_if(oneshots, [&](const OneShotHandle& h) {
            if (!fired_labels.contains(h.label)) return false;
            stale.push_back(h);
            return true;
        });
    }

    ASSERT_EQ(sim.processed_events(), sim_fired.size());
}

TEST(SimulatorFuzz, MatchesReferenceModelAcrossSeeds) {
    for (std::uint64_t seed = 1; seed <= 24; ++seed) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        fuzz_round(seed, 400);
    }
}

TEST(SimulatorFuzz, LongRunSingleSeed) {
    fuzz_round(0xD1CEu, 3000);
}

}  // namespace
}  // namespace hsw::sim
