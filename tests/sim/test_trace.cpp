#include <gtest/gtest.h>

#include "sim/trace.hpp"

namespace hsw::sim {
namespace {

using util::Time;

TEST(Trace, DisabledByDefault) {
    Trace t;
    t.record(Time::us(1), "pstate", "cpu0", "request");
    EXPECT_TRUE(t.records().empty());
}

TEST(Trace, RecordsWhenEnabled) {
    Trace t;
    t.enable();
    t.record(Time::us(1), "pstate", "cpu0", "request", 1.2);
    t.record(Time::us(2), "cstate", "cpu1", "wake", 14.0);
    ASSERT_EQ(t.records().size(), 2u);
    EXPECT_EQ(t.records()[0].category, "pstate");
    EXPECT_EQ(t.records()[1].value, 14.0);
}

TEST(Trace, FilterByCategoryAndSubject) {
    Trace t;
    t.enable();
    t.record(Time::us(1), "pstate", "cpu0", "a");
    t.record(Time::us(2), "pstate", "cpu1", "b");
    t.record(Time::us(3), "cstate", "cpu0", "c");
    EXPECT_EQ(t.filter("pstate").size(), 2u);
    EXPECT_EQ(t.filter("pstate", "cpu1").size(), 1u);
    EXPECT_EQ(t.filter("nothing").size(), 0u);
}

TEST(Trace, RenderAndClear) {
    Trace t;
    t.enable();
    t.record(Time::us(123), "pcu", "socket0", "opportunity");
    const std::string s = t.render();
    EXPECT_NE(s.find("socket0"), std::string::npos);
    EXPECT_NE(s.find("opportunity"), std::string::npos);
    t.clear();
    EXPECT_TRUE(t.records().empty());
}

}  // namespace
}  // namespace hsw::sim
