#include <gtest/gtest.h>

#include "core/node.hpp"
#include "perfmon/counters.hpp"
#include "workloads/mixes.hpp"

namespace hsw::perfmon {
namespace {

using util::Frequency;
using util::Time;

TEST(Counters, EffectiveFrequencyFromAperfMperf) {
    core::Node node;
    node.set_workload(0, &workloads::while_one(), 1);
    node.set_pstate(0, Frequency::ghz(1.8));
    node.run_for(Time::ms(5));

    CounterReader reader{node.msrs(), node.sku().nominal_frequency};
    const auto before = reader.snapshot(0, node.now());
    node.run_for(Time::sec(1));
    const auto after = reader.snapshot(0, node.now());
    const auto m = reader.derive(before, after);
    EXPECT_NEAR(m.effective_frequency.as_ghz(), 1.8, 0.01);
    EXPECT_NEAR(m.wall_seconds, 1.0, 1e-9);
    EXPECT_NEAR(m.c0_residency, 1.0, 0.01);
}

TEST(Counters, UncoreFrequencyFromUboxfix) {
    core::Node node;
    node.set_workload(0, &workloads::memory_stream(), 1);
    node.set_pstate(0, Frequency::ghz(2.0));
    node.run_for(Time::ms(10));
    CounterReader reader{node.msrs(), node.sku().nominal_frequency};
    const auto before = reader.snapshot(0, node.now());
    node.run_for(Time::sec(1));
    const auto m = reader.derive(before, reader.snapshot(0, node.now()));
    // Memory-stall scenario: uncore at its 3.0 GHz maximum (Section V-A).
    EXPECT_NEAR(m.uncore_frequency.as_ghz(), 3.0, 0.01);
}

TEST(Counters, IpcAndIpsForKnownWorkload) {
    core::Node node;
    node.set_all_workloads(&workloads::firestarter(), 2);
    node.set_pstate_all(Frequency::ghz(2.1));
    node.run_for(Time::ms(20));
    CounterReader reader{node.msrs(), node.sku().nominal_frequency};
    const auto before = reader.snapshot(0, node.now());
    node.run_for(Time::sec(1));
    const auto m = reader.derive(before, reader.snapshot(0, node.now()));
    // At 2.1 GHz the uncore reaches 3.0; ratio 0.7 -> IPC ~ 3.38 (Table IV).
    EXPECT_NEAR(m.ipc, 3.38, 0.1);
    EXPECT_NEAR(m.giga_instructions_per_sec, 2.1 * m.ipc, 0.2);
}

TEST(Counters, StallFractionReported) {
    core::Node node;
    node.set_workload(0, &workloads::memory_stream(), 1);
    node.run_for(Time::ms(10));
    CounterReader reader{node.msrs(), node.sku().nominal_frequency};
    const auto before = reader.snapshot(0, node.now());
    node.run_for(Time::ms(500));
    const auto m = reader.derive(before, reader.snapshot(0, node.now()));
    EXPECT_NEAR(m.stall_fraction, workloads::memory_stream().stall_fraction, 0.02);
}

TEST(Counters, ZeroWindowIsSafe) {
    core::Node node;
    CounterReader reader{node.msrs(), node.sku().nominal_frequency};
    const auto snap = reader.snapshot(0, node.now());
    const auto m = reader.derive(snap, snap);
    EXPECT_EQ(m.wall_seconds, 0.0);
    EXPECT_EQ(m.ipc, 0.0);
}

TEST(Counters, IdleCoreShowsZeroResidency) {
    core::Node node;
    node.set_workload(0, &workloads::while_one(), 1);  // keep system alive
    node.run_for(Time::ms(5));
    CounterReader reader{node.msrs(), node.sku().nominal_frequency};
    const auto before = reader.snapshot(3, node.now());
    node.run_for(Time::sec(1));
    const auto m = reader.derive(before, reader.snapshot(3, node.now()));
    EXPECT_EQ(m.c0_residency, 0.0);
    EXPECT_EQ(m.giga_instructions_per_sec, 0.0);
}

}  // namespace
}  // namespace hsw::perfmon
