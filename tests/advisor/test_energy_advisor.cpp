#include <gtest/gtest.h>

#include "advisor/energy_advisor.hpp"
#include "workloads/mixes.hpp"

namespace hsw::advisor {
namespace {

AdvisorConfig quick(Objective obj) {
    AdvisorConfig cfg;
    cfg.objective = obj;
    cfg.dwell = util::Time::ms(100);
    cfg.frequency_step = 4;
    return cfg;
}

TEST(EnergyAdvisor, PerformanceObjectivePicksFastestPoint) {
    EnergyAdvisor adv{quick(Objective::Performance)};
    const auto rec = adv.recommend(workloads::compute());
    // Nothing in the sweep beats the chosen point.
    for (const auto& p : rec.sweep) {
        EXPECT_LE(p.gips, rec.best.gips + 1e-9);
    }
    EXPECT_EQ(rec.best.cores, 12u);
}

TEST(EnergyAdvisor, MemoryBoundGetsDownclocked) {
    auto cfg = quick(Objective::Energy);
    cfg.performance_tolerance = 0.15;
    EnergyAdvisor adv{cfg};
    const auto rec = adv.recommend(workloads::memory_stream());
    // Fig. 7b: frequency can drop with little bandwidth cost, so the
    // energy-optimal point is below nominal.
    EXPECT_GT(rec.best.set_ghz, 0.0);      // not turbo
    EXPECT_LT(rec.best.set_ghz, 2.5);
    EXPECT_GT(rec.energy_saving_vs_turbo, 0.0);
    EXPECT_LT(rec.performance_loss_vs_turbo, 0.16);
}

TEST(EnergyAdvisor, ComputeBoundKeepsFrequencyUnderTightTolerance) {
    auto cfg = quick(Objective::Energy);
    cfg.performance_tolerance = 0.05;
    EnergyAdvisor adv{cfg};
    const auto rec = adv.recommend(workloads::compute());
    // With only 5 % slack a compute-bound code cannot shed much clock.
    EXPECT_LT(rec.performance_loss_vs_turbo, 0.06);
}

TEST(EnergyAdvisor, PowerCapIsRespected) {
    auto cfg = quick(Objective::PerformanceCapped);
    cfg.power_cap_watts = 200.0;
    EnergyAdvisor adv{cfg};
    const auto rec = adv.recommend(workloads::dgemm());
    EXPECT_LE(rec.best.watts, 200.0 + 1.0);
}

TEST(EnergyAdvisor, SweepContainsBaselineAndVariants) {
    EnergyAdvisor adv{quick(Objective::Energy)};
    const auto rec = adv.recommend(workloads::compute());
    EXPECT_GT(rec.sweep.size(), 10u);
    // The first sweep entry is the all-cores turbo baseline.
    EXPECT_EQ(rec.sweep.front().cores, 12u);
    EXPECT_EQ(rec.sweep.front().set_ghz, 0.0);
    // Concurrency variants were evaluated.
    bool smaller = false;
    for (const auto& p : rec.sweep) smaller |= p.cores < 12;
    EXPECT_TRUE(smaller);
}

TEST(EnergyAdvisor, RenderMentionsTheOperatingPoint) {
    EnergyAdvisor adv{quick(Objective::Energy)};
    const auto rec = adv.recommend(workloads::memory_stream());
    const std::string s = rec.render();
    EXPECT_NE(s.find("cores/socket"), std::string::npos);
    EXPECT_NE(s.find("GIPS"), std::string::npos);
}

}  // namespace
}  // namespace hsw::advisor
