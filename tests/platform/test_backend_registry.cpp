#include <gtest/gtest.h>

#include "arch/sku.hpp"
#include "platform/registry.hpp"

namespace hsw::platform {
namespace {

const arch::Generation kAllGenerations[] = {
    arch::Generation::WestmereEP,  arch::Generation::SandyBridgeEP,
    arch::Generation::IvyBridgeEP, arch::Generation::HaswellEP,
    arch::Generation::HaswellHE,   arch::Generation::SkylakeSP,
};

TEST(BackendRegistry, EveryGenerationHasAMatchingBackend) {
    for (arch::Generation g : kAllGenerations) {
        const PlatformBackend& b = backend_for(g);
        EXPECT_EQ(b.generation(), g) << b.name();
        EXPECT_EQ(b.name(), arch::traits(g).name);
    }
}

TEST(BackendRegistry, AllBackendsListsEnumOrder) {
    const auto& all = all_backends();
    ASSERT_EQ(all.size(), std::size(kAllGenerations));
    for (std::size_t i = 0; i < all.size(); ++i) {
        EXPECT_EQ(all[i]->generation(), kAllGenerations[i]);
    }
}

TEST(BackendRegistry, NameLookupAcceptsSlugAndTraitsName) {
    const PlatformBackend* skx = backend_by_name("skylake-sp");
    ASSERT_NE(skx, nullptr);
    EXPECT_EQ(skx->generation(), arch::Generation::SkylakeSP);
    EXPECT_EQ(backend_by_name("Skylake-SP"), skx);
    EXPECT_EQ(backend_by_name("SKYLAKE-SP"), skx);

    const PlatformBackend* snb = backend_by_name("sandy-bridge-ep");
    ASSERT_NE(snb, nullptr);
    EXPECT_EQ(snb->generation(), arch::Generation::SandyBridgeEP);
    EXPECT_EQ(backend_by_name("Sandy Bridge-EP"), snb);

    EXPECT_EQ(backend_by_name("cascade-lake"), nullptr);
    EXPECT_EQ(backend_by_name(""), nullptr);
}

TEST(BackendRegistry, NameSlugLowercasesAndCollapsesSpaces) {
    EXPECT_EQ(name_slug("Sandy Bridge-EP"), "sandy-bridge-ep");
    EXPECT_EQ(name_slug("Skylake-SP"), "skylake-sp");
    EXPECT_EQ(name_slug("Haswell-EP"), "haswell-ep");
}

TEST(BackendRegistry, SurveySkusMatchTheirTestSystems) {
    EXPECT_EQ(&backend_for(arch::Generation::WestmereEP).survey_sku(),
              &arch::xeon_x5670());
    EXPECT_EQ(&backend_for(arch::Generation::SandyBridgeEP).survey_sku(),
              &arch::xeon_e5_2670());
    EXPECT_EQ(&backend_for(arch::Generation::HaswellEP).survey_sku(),
              &arch::xeon_e5_2680_v3());
    EXPECT_EQ(&backend_for(arch::Generation::SkylakeSP).survey_sku(),
              &arch::xeon_gold_6150());
}

TEST(BackendRegistry, SkylakeIsHwpCapableWithTheHwpMsrSurface) {
    const PlatformBackend& skx = backend_for(arch::Generation::SkylakeSP);
    EXPECT_TRUE(skx.hwp_capable());
    EXPECT_EQ(skx.pcu_policy().max_license_level(), 2u);
    EXPECT_TRUE(skx.pcu_policy().per_die_uncore());
    EXPECT_EQ(skx.extra_msrs().size(), 5u);
}

TEST(BackendRegistry, PreHwpGenerationsStayOnTheHaswellPolicy) {
    for (arch::Generation g : {arch::Generation::WestmereEP,
                               arch::Generation::SandyBridgeEP,
                               arch::Generation::HaswellEP}) {
        const PlatformBackend& b = backend_for(g);
        EXPECT_FALSE(b.hwp_capable()) << b.name();
        EXPECT_EQ(b.pcu_policy().max_license_level(), 1u) << b.name();
        EXPECT_FALSE(b.pcu_policy().per_die_uncore()) << b.name();
        EXPECT_TRUE(b.extra_msrs().empty()) << b.name();
    }
}

}  // namespace
}  // namespace hsw::platform
