#include <gtest/gtest.h>

#include "meter/lmg450.hpp"
#include "util/stats.hpp"

namespace hsw::meter {
namespace {

using util::Power;
using util::Time;

TEST(Lmg450, SamplesTrackTruthWithinSpec) {
    const double truth = 560.0;
    Lmg450 meter{[&] { return Power::watts(truth); }, 7};
    std::vector<double> readings;
    for (int i = 0; i < 1000; ++i) {
        readings.push_back(meter.sample(Time::ms(50 * i)).power.as_watts());
    }
    // Mean unbiased; spread within the 0.07 % + 0.23 W band (2 sigma).
    EXPECT_NEAR(util::mean(readings), truth, 0.1);
    EXPECT_LT(util::stddev(readings), (truth * 0.0007 + 0.23));
}

TEST(Lmg450, AverageOverWindow) {
    double truth = 100.0;
    Lmg450 meter{[&] { return Power::watts(truth); }, 7};
    for (int i = 0; i < 20; ++i) meter.sample(Time::ms(50 * i));
    truth = 300.0;
    for (int i = 20; i < 40; ++i) meter.sample(Time::ms(50 * i));
    EXPECT_NEAR(meter.average(Time::ms(0), Time::ms(1000)).as_watts(), 100.0, 1.0);
    EXPECT_NEAR(meter.average(Time::ms(1000), Time::ms(2000)).as_watts(), 300.0, 1.0);
}

TEST(Lmg450, AverageOfEmptyWindowIsZero) {
    Lmg450 meter{[] { return Power::watts(1.0); }, 7};
    EXPECT_EQ(meter.average(Time::ms(0), Time::ms(100)).as_watts(), 0.0);
}

TEST(Lmg450, ClearResetsSeries) {
    Lmg450 meter{[] { return Power::watts(1.0); }, 7};
    meter.sample(Time::ms(0));
    EXPECT_EQ(meter.series().size(), 1u);
    meter.clear();
    EXPECT_TRUE(meter.series().empty());
}

TEST(Lmg450, SamplePeriodIs20SaPerSecond) {
    EXPECT_EQ(Lmg450::kSamplePeriod.as_ms(), 50.0);
}

}  // namespace
}  // namespace hsw::meter
