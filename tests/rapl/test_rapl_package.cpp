#include <gtest/gtest.h>

#include "arch/calibration.hpp"
#include "msr/addresses.hpp"
#include "msr/msr_file.hpp"
#include "rapl/rapl.hpp"

namespace hsw::rapl {
namespace {

namespace cal = hsw::arch::cal;
using util::Power;
using util::Time;

TEST(RaplPackage, EnergyUnits) {
    RaplPackage pkg{arch::Generation::HaswellEP, 0};
    // Package: 2^-14 J, advertised in MSR_RAPL_POWER_UNIT bits 12:8.
    EXPECT_DOUBLE_EQ(pkg.energy_unit(Domain::Package), 1.0 / 16384.0);
    EXPECT_EQ((pkg.power_unit_msr() >> 8) & 0x1F, 14u);
    // DRAM in mode 1: the 15.3 uJ unit from the registers datasheet --
    // NOT what the unit register advertises (Section IV).
    EXPECT_DOUBLE_EQ(pkg.energy_unit(Domain::Dram), 15.3e-6);
    EXPECT_NE(pkg.energy_unit(Domain::Dram), pkg.energy_unit(Domain::Package));
}

TEST(RaplPackage, UsingGenericUnitForDramOverestimates) {
    // "Using the information provided in [13] would result in unreasonable
    // high values for DRAM power consumption": the generic unit (61 uJ) is
    // ~4x the correct one (15.3 uJ).
    RaplPackage pkg{arch::Generation::HaswellEP, 0};
    const double wrong_over_right =
        pkg.energy_unit(Domain::Package) / pkg.energy_unit(Domain::Dram);
    EXPECT_NEAR(wrong_over_right, 4.0, 0.05);
}

TEST(RaplPackage, CountersAccumulateEnergy) {
    RaplPackage pkg{arch::Generation::HaswellEP, 0};
    pkg.integrate(Power::watts(100), Power::watts(20), ActivityVector{}, Time::sec(1));
    pkg.publish();
    const double pkg_joules = pkg.pkg_energy_raw() * pkg.energy_unit(Domain::Package);
    const double dram_joules = pkg.dram_energy_raw() * pkg.energy_unit(Domain::Dram);
    EXPECT_NEAR(pkg_joules, 100.0, 1.0);
    EXPECT_NEAR(dram_joules, 20.0, 0.5);
}

TEST(RaplPackage, ReadsAreStaleUntilPublish) {
    RaplPackage pkg{arch::Generation::HaswellEP, 0};
    pkg.integrate(Power::watts(100), Power::watts(10), ActivityVector{}, Time::sec(1));
    EXPECT_EQ(pkg.pkg_energy_raw(), 0u);  // counter not refreshed yet
    pkg.publish();
    EXPECT_GT(pkg.pkg_energy_raw(), 0u);
}

TEST(RaplPackage, CounterWrapsAt32Bits) {
    RaplPackage pkg{arch::Generation::HaswellEP, 0};
    // 2^32 * 61 uJ ~ 262 kJ; run ~1.5 wraps at 150 W.
    const double wrap_joules = 4294967296.0 * pkg.energy_unit(Domain::Package);
    const double seconds = wrap_joules * 1.5 / 150.0;
    pkg.integrate(Power::watts(150), Power::zero(), ActivityVector{},
                  Time::from_seconds(seconds));
    pkg.publish();
    // The raw value is the total modulo 2^32: delta arithmetic on uint32
    // still recovers energy across a single wrap.
    const double total = 150.0 * seconds;
    const auto expected =
        static_cast<std::uint32_t>(static_cast<std::uint64_t>(
            total / pkg.energy_unit(Domain::Package)));
    // The measurement backend's 0.2 % sense noise applies to the whole
    // ~2600 s integration here, so the margin is 0.5 % of the total count.
    EXPECT_NEAR(static_cast<double>(pkg.pkg_energy_raw()),
                static_cast<double>(expected),
                0.005 * total / pkg.energy_unit(Domain::Package));
}

TEST(RaplPackage, DramMode0IsGarbageOnHaswell) {
    // "Using DRAM mode 0 will result in unspecified behavior."
    RaplPackage pkg{arch::Generation::HaswellEP, 0, DramMode::Mode0};
    pkg.integrate(Power::watts(100), Power::watts(20), ActivityVector{}, Time::sec(1));
    pkg.publish();
    const auto first = pkg.dram_energy_raw();
    pkg.integrate(Power::watts(100), Power::watts(20), ActivityVector{}, Time::sec(1));
    pkg.publish();
    const auto second = pkg.dram_energy_raw();
    // The counter moves erratically: deltas do not track the 20 J truth.
    const double joules = static_cast<std::uint32_t>(second - first) *
                          pkg.energy_unit(Domain::Dram);
    EXPECT_GT(std::abs(joules - 20.0), 5.0);
}

TEST(RaplPackage, DomainsByGeneration) {
    RaplPackage hsw{arch::Generation::HaswellEP, 0};
    EXPECT_TRUE(hsw.has_domain(Domain::Package));
    EXPECT_TRUE(hsw.has_domain(Domain::Dram));
    EXPECT_FALSE(hsw.has_domain(Domain::Pp0));  // unsupported on Haswell-EP

    RaplPackage snb{arch::Generation::SandyBridgeEP, 0};
    EXPECT_TRUE(snb.has_domain(Domain::Pp0));

    RaplPackage wsm{arch::Generation::WestmereEP, 0};
    EXPECT_FALSE(wsm.has_domain(Domain::Package));
}

TEST(RaplPackage, PowerLimitMsrRoundTrip) {
    RaplPackage pkg{arch::Generation::HaswellEP, 0};
    EXPECT_FALSE(pkg.active_power_limit().has_value());
    // 100 W in 1/8 W units with the enable bit.
    pkg.write_power_limit_msr((100 * 8) | (1ULL << 15));
    ASSERT_TRUE(pkg.active_power_limit().has_value());
    EXPECT_DOUBLE_EQ(pkg.active_power_limit()->as_watts(), 100.0);
    // Clearing the enable bit disables the limit.
    pkg.write_power_limit_msr(100 * 8);
    EXPECT_FALSE(pkg.active_power_limit().has_value());
}

TEST(RaplPackage, AttachExposesMsrsPerCpuRange) {
    msr::MsrFile file;
    RaplPackage pkg0{arch::Generation::HaswellEP, 0};
    RaplPackage pkg1{arch::Generation::HaswellEP, 1};
    pkg0.attach(file, 0, 11);
    pkg1.attach(file, 12, 23);
    pkg0.integrate(Power::watts(100), Power::watts(10), ActivityVector{}, Time::sec(1));
    pkg0.publish();
    EXPECT_GT(file.read(0, msr::MSR_PKG_ENERGY_STATUS), 0u);
    EXPECT_EQ(file.read(12, msr::MSR_PKG_ENERGY_STATUS), 0u);  // socket 1 idle
    // PP0 must fault on Haswell-EP.
    EXPECT_THROW((void)file.read(0, msr::MSR_PP0_ENERGY_STATUS), msr::MsrError);
    // The power limit is writable through the file.
    file.write(0, msr::MSR_PKG_POWER_LIMIT, (90 * 8) | (1ULL << 15));
    EXPECT_DOUBLE_EQ(pkg0.active_power_limit()->as_watts(), 90.0);
}

TEST(RaplPackage, TrueEnergiesTrackIntegration) {
    RaplPackage pkg{arch::Generation::HaswellEP, 0};
    pkg.integrate(Power::watts(50), Power::watts(5), ActivityVector{}, Time::sec(2));
    EXPECT_DOUBLE_EQ(pkg.true_pkg_energy().as_joules(), 100.0);
    EXPECT_DOUBLE_EQ(pkg.true_dram_energy().as_joules(), 10.0);
}

TEST(Calibration, DramUnitConstant) {
    EXPECT_DOUBLE_EQ(cal::kDramEnergyUnitJoules, 15.3e-6);
}

}  // namespace
}  // namespace hsw::rapl
