#include <gtest/gtest.h>

#include "rapl/model.hpp"

namespace hsw::rapl {
namespace {

using util::Power;

TEST(Estimator, MeasuredTracksGroundTruth) {
    RaplEstimator est{arch::RaplBackend::Measured, 1};
    double worst = 0.0;
    for (int i = 0; i < 200; ++i) {
        const double truth = 50.0 + i;
        const double reported =
            est.package_power(Power::watts(truth), ActivityVector{}).as_watts();
        worst = std::max(worst, std::abs(reported - truth) / truth);
    }
    EXPECT_LT(worst, 0.02);  // sense noise is fractions of a percent
}

TEST(Estimator, ModeledIgnoresGroundTruth) {
    RaplEstimator est{arch::RaplBackend::Modeled, 1};
    ActivityVector av;
    av.core_cycles_per_s = 12 * 2.5e9;
    av.uops_per_s = 12 * 2.5e9 * 2.0;
    // Same activity, very different true power -> identical estimate.
    const double a = est.package_power(Power::watts(80), av).as_watts();
    const double b = est.package_power(Power::watts(130), av).as_watts();
    EXPECT_DOUBLE_EQ(a, b);
}

TEST(Estimator, ModeledBiasDependsOnWorkloadMix) {
    // Two workloads with the same true power but different instruction
    // mixes get different modeled readings -- the Figure 2a workload bias.
    RaplEstimator est{arch::RaplBackend::Modeled, 1};
    ActivityVector avx_heavy;
    avx_heavy.core_cycles_per_s = 12 * 2.5e9;
    avx_heavy.uops_per_s = 12 * 2.5e9 * 2.5;
    avx_heavy.avx_ops_per_s = 12 * 2.5e9 * 2.0;
    ActivityVector scalar;
    scalar.core_cycles_per_s = 12 * 2.5e9;
    scalar.uops_per_s = 12 * 2.5e9 * 1.0;
    const Power truth = Power::watts(100);
    EXPECT_GT(est.package_power(truth, avx_heavy).as_watts(),
              est.package_power(truth, scalar).as_watts() * 1.3);
}

TEST(Estimator, NoneBackendReportsZero) {
    RaplEstimator est{arch::RaplBackend::None, 1};
    EXPECT_EQ(est.package_power(Power::watts(100), ActivityVector{}).as_watts(), 0.0);
    EXPECT_EQ(est.dram_power(Power::watts(20), ActivityVector{}).as_watts(), 0.0);
}

TEST(Estimator, ModeledDramScalesWithTraffic) {
    RaplEstimator est{arch::RaplBackend::Modeled, 1};
    ActivityVector lo;
    lo.dram_gbs = 5.0;
    ActivityVector hi;
    hi.dram_gbs = 50.0;
    EXPECT_GT(est.dram_power(Power::watts(20), hi).as_watts(),
              est.dram_power(Power::watts(20), lo).as_watts());
}

}  // namespace
}  // namespace hsw::rapl
