#include <gtest/gtest.h>

#include "survey/fig56_cstates.hpp"

namespace hsw::survey {
namespace {

class Fig56 : public ::testing::Test {
protected:
    static const CstateLatencyResult& c3() {
        static const CstateLatencyResult r = [] {
            CstateSweepConfig cfg;
            cfg.samples_per_point = 12;
            return fig56(cstates::CState::C3, cfg);
        }();
        return r;
    }
    static const CstateLatencyResult& c6() {
        static const CstateLatencyResult r = [] {
            CstateSweepConfig cfg;
            cfg.samples_per_point = 12;
            return fig56(cstates::CState::C6, cfg);
        }();
        return r;
    }
};

TEST_F(Fig56, C3MostlyFrequencyIndependent) {
    const auto& local =
        c3().find(arch::Generation::HaswellEP, cstates::WakeScenario::Local);
    const double spread = [&] {
        double lo = 1e9;
        double hi = 0;
        for (const auto& p : local.points) {
            lo = std::min(lo, p.latency_us);
            hi = std::max(hi, p.latency_us);
        }
        return hi - lo;
    }();
    EXPECT_LT(spread, 2.5);  // only the 1.5 us step above 1.5 GHz
}

TEST_F(Fig56, C6StronglyFrequencyDependent) {
    const auto& local =
        c6().find(arch::Generation::HaswellEP, cstates::WakeScenario::Local);
    const double at_min = local.points.front().latency_us;   // 1.2 GHz
    const double at_max = local.points.back().latency_us;    // 2.5 GHz
    EXPECT_GT(at_min - at_max, 3.0);  // slower at low clocks
}

TEST_F(Fig56, PackageStatesAddLatency) {
    for (const auto* result : {&c3(), &c6()}) {
        const auto& local =
            result->find(arch::Generation::HaswellEP, cstates::WakeScenario::Local);
        const auto& pkg = result->find(arch::Generation::HaswellEP,
                                       cstates::WakeScenario::RemoteIdle);
        for (std::size_t i = 0; i < local.points.size(); ++i) {
            EXPECT_GT(pkg.points[i].latency_us, local.points[i].latency_us + 1.5);
        }
    }
}

TEST_F(Fig56, SandyBridgeSeriesSlower) {
    // The grey comparison series in Figures 5/6.
    const auto& hsw_local =
        c6().find(arch::Generation::HaswellEP, cstates::WakeScenario::Local);
    const auto& snb_local =
        c6().find(arch::Generation::SandyBridgeEP, cstates::WakeScenario::Local);
    // Compare at overlapping frequencies (1.2-2.5 GHz on both).
    EXPECT_GT(snb_local.points.front().latency_us,
              hsw_local.points.front().latency_us + 5.0);
}

TEST_F(Fig56, EverythingBelowAcpiTables) {
    for (const auto& s : c3().series) {
        if (s.generation != arch::Generation::HaswellEP) continue;
        for (const auto& p : s.points) EXPECT_LT(p.latency_us, 33.0);
    }
    for (const auto& s : c6().series) {
        if (s.generation != arch::Generation::HaswellEP) continue;
        for (const auto& p : s.points) EXPECT_LT(p.latency_us, 133.0);
    }
}

TEST_F(Fig56, SixSeriesPerFigure) {
    // 2 generations x 3 scenarios.
    EXPECT_EQ(c3().series.size(), 6u);
    EXPECT_EQ(c6().series.size(), 6u);
    EXPECT_NE(c3().render().find("remote-idle"), std::string::npos);
}

}  // namespace
}  // namespace hsw::survey
