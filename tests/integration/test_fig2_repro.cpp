#include <gtest/gtest.h>

#include "survey/fig2_rapl.hpp"

namespace hsw::survey {
namespace {

using util::Time;

class Fig2 : public ::testing::Test {
protected:
    // Shortened 1 s windows: the equilibria settle within milliseconds.
    static const RaplAccuracyResult& haswell() {
        static const RaplAccuracyResult r =
            fig2_run(arch::Generation::HaswellEP, Time::sec(1));
        return r;
    }
    static const RaplAccuracyResult& sandy_bridge() {
        static const RaplAccuracyResult r =
            fig2_run(arch::Generation::SandyBridgeEP, Time::sec(1));
        return r;
    }
};

TEST_F(Fig2, HaswellQuadraticFitIsNearPerfect) {
    // "an almost perfect correlation ... R^2 > 0.9998" (footnote 2).
    EXPECT_GT(haswell().report.quadratic.r_squared, 0.9995);
}

TEST_F(Fig2, HaswellWorkloadBiasIsSmall) {
    EXPECT_LT(haswell().report.slope_spread, 0.10);
}

TEST_F(Fig2, SandyBridgeShowsWorkloadBias) {
    // Fig. 2a: "a bias towards certain workloads can be noted".
    EXPECT_GT(sandy_bridge().report.slope_spread, 0.20);
    EXPECT_GT(sandy_bridge().report.slope_spread,
              3.0 * haswell().report.slope_spread);
}

TEST_F(Fig2, HaswellAxisRangesMatchFigure) {
    // Fig. 2b x-axis: ~200-600 W AC (full-speed fans); y: up to ~300 W RAPL.
    double min_ac = 1e9;
    double max_ac = 0.0;
    double max_rapl = 0.0;
    for (const auto& p : haswell().report.points) {
        min_ac = std::min(min_ac, p.ac_watts);
        max_ac = std::max(max_ac, p.ac_watts);
        max_rapl = std::max(max_rapl, p.rapl_watts);
    }
    EXPECT_GT(min_ac, 200.0);
    EXPECT_LT(max_ac, 620.0);
    EXPECT_GT(max_ac, 480.0);
    EXPECT_LT(max_rapl, 320.0);
}

TEST_F(Fig2, RaplAlwaysBelowAc) {
    // The wall reading includes PSU losses, fans and the mainboard, so the
    // RAPL domains can never exceed it.
    for (const auto& p : haswell().report.points) {
        EXPECT_LT(p.rapl_watts, p.ac_watts) << p.workload;
    }
}

TEST_F(Fig2, IdleIsTheLowestPoint) {
    const auto& pts = haswell().report.points;
    const auto& idle = pts.front();
    ASSERT_EQ(idle.workload, "idle");
    for (const auto& p : pts) {
        EXPECT_GE(p.ac_watts, idle.ac_watts - 1.0);
    }
}

TEST_F(Fig2, QuadraticCoefficientsNearPaperFit) {
    // Our quadratic is RAPL(AC); inverting the paper's AC(RAPL) fit around
    // the operating range gives a slope near 1/1.097 ~ 0.91 at mid-range.
    const auto& q = haswell().report.quadratic;
    const double slope_mid = 2.0 * q.a * 400.0 + q.b;  // d(RAPL)/d(AC) at 400 W
    EXPECT_NEAR(slope_mid, 1.0 / 1.097, 0.12);
}

}  // namespace
}  // namespace hsw::survey
