// End-to-end trace pipeline: a real node run produces a well-formed
// Chrome trace with the p-state lifecycle visible.
#include <gtest/gtest.h>

#include "core/node.hpp"
#include "sim/trace_json.hpp"
#include "workloads/mixes.hpp"

namespace hsw {
namespace {

using util::Time;

TEST(TracePipeline, NodeRunExportsPstateLifecycle) {
    core::NodeConfig cfg;
    cfg.trace_enabled = true;
    core::Node node{cfg};
    node.set_workload(0, &workloads::while_one(), 1);
    node.run_for(Time::ms(2));
    node.set_pstate(0, util::Frequency::ghz(1.5));
    node.run_for(Time::ms(2));
    node.park(0, cstates::CState::C6);
    node.set_workload(1, &workloads::while_one(), 1);
    node.run_for(Time::ms(1));

    const std::string json = sim::to_chrome_trace_json(node.trace(), "node-run");
    EXPECT_NE(json.find("\"cat\":\"pstate\""), std::string::npos);
    EXPECT_NE(json.find("\"cat\":\"pcu\""), std::string::npos);
    EXPECT_NE(json.find("request"), std::string::npos);
    EXPECT_NE(json.find("change complete"), std::string::npos);
    EXPECT_NE(json.find("node-run"), std::string::npos);

    // The JSON stays parseable-shaped: balanced braces outside strings.
    int depth = 0;
    bool in_string = false;
    for (std::size_t i = 0; i < json.size(); ++i) {
        const char c = json[i];
        if (c == '"' && (i == 0 || json[i - 1] != '\\')) in_string = !in_string;
        if (in_string) continue;
        if (c == '{') ++depth;
        if (c == '}') --depth;
        ASSERT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
}

TEST(TracePipeline, RequestPrecedesOpportunityPrecedesComplete) {
    core::NodeConfig cfg;
    cfg.trace_enabled = true;
    core::Node node{cfg};
    node.set_workload(0, &workloads::while_one(), 1);
    node.run_for(Time::ms(2));
    node.trace().clear();
    node.set_pstate(0, util::Frequency::ghz(1.4));
    node.run_for(Time::ms(2));

    const auto requests = node.trace().filter("pstate", "cpu0");
    const auto completes = node.trace().filter("pstate", "socket0");
    ASSERT_FALSE(requests.empty());
    ASSERT_FALSE(completes.empty());
    // The completion follows the request by the grid wait + switch time.
    const double gap_us = (completes.front().when - requests.front().when).as_us();
    EXPECT_GE(gap_us, 19.0);
    EXPECT_LE(gap_us, 530.0);
}

}  // namespace
}  // namespace hsw
