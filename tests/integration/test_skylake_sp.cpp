// Skylake-SP platform backend end-to-end: HWP MSR surface, EPP steering,
// AVX-512 license levels and per-die uncore grants on a Gold 6150 node
// (Schoene et al.), plus the negative space -- none of it may leak onto the
// Haswell-EP test system.
#include <gtest/gtest.h>

#include "core/node.hpp"
#include "msr/msr_file.hpp"
#include "os/cpufreq.hpp"
#include "pcu/hwp.hpp"
#include "platform/registry.hpp"
#include "workloads/mixes.hpp"

namespace hsw {
namespace {

using util::Frequency;
using util::Time;

core::NodeConfig skx_config() {
    core::NodeConfig cfg;
    cfg.sku = &platform::backend_for(arch::Generation::SkylakeSP).survey_sku();
    return cfg;
}

/// Mean cpu-0 clock over a window, from APERF/MPERF deltas (the paper's
/// Section VI-A: scaling_cur_freq is just the last request).
double mean_ghz(core::Node& node, Time window) {
    const auto a0 = node.msrs().read(0, msr::IA32_APERF);
    const auto m0 = node.msrs().read(0, msr::IA32_MPERF);
    node.run_for(window);
    const auto da = static_cast<double>(node.msrs().read(0, msr::IA32_APERF) - a0);
    const auto dm = static_cast<double>(node.msrs().read(0, msr::IA32_MPERF) - m0);
    return dm > 0.0 ? node.sku().nominal_frequency.as_ghz() * da / dm : 0.0;
}

TEST(SkylakeSp, HwpMsrSurfaceIsInstalled) {
    core::Node node{skx_config()};
    EXPECT_EQ(node.msrs().read(0, msr::MSR_PM_ENABLE), 0u);
    const auto caps =
        pcu::decode_hwp_capabilities(node.msrs().read(0, msr::IA32_HWP_CAPABILITIES));
    const auto expect = pcu::capabilities_for(node.sku());
    EXPECT_EQ(caps.highest, expect.highest);
    EXPECT_EQ(caps.guaranteed, expect.guaranteed);
    EXPECT_EQ(caps.most_efficient, expect.most_efficient);
    EXPECT_EQ(caps.lowest, expect.lowest);
    EXPECT_EQ(node.msrs().read(0, msr::IA32_HWP_STATUS), 0u);
}

TEST(SkylakeSp, HwpMsrsFaultOnHaswell) {
    core::NodeConfig cfg;  // default SKU: the Haswell-EP test system
    core::Node node{cfg};
    ASSERT_FALSE(node.hwp_capable());
    EXPECT_THROW((void)node.msrs().read(0, msr::MSR_PM_ENABLE), msr::MsrError);
    EXPECT_THROW((void)node.msrs().read(0, msr::IA32_HWP_REQUEST), msr::MsrError);
    EXPECT_THROW(node.msrs().write(0, msr::IA32_HWP_REQUEST, 0), msr::MsrError);
}

TEST(SkylakeSp, EppSteersTheAutonomousOperatingPoint) {
    core::Node node{skx_config()};
    node.set_all_workloads(&workloads::firestarter(), 2);
    node.enable_hwp();
    EXPECT_EQ(node.msrs().read(0, msr::MSR_PM_ENABLE), 1u);

    pcu::HwpRequest req;  // min/max/desired = 0: fully autonomous
    req.epp = 0;
    node.set_hwp_request_all(req);
    node.run_for(Time::ms(10));
    const double perf_ghz = mean_ghz(node, Time::ms(50));

    req.epp = 255;
    node.set_hwp_request_all(req);
    node.run_for(Time::ms(10));
    const double save_ghz = mean_ghz(node, Time::ms(50));

    EXPECT_GT(perf_ghz, save_ghz + 0.3)
        << "EPP 0 must clock visibly higher than EPP 255";
    EXPECT_NEAR(save_ghz, node.sku().min_frequency.as_ghz(), 0.2);
}

TEST(SkylakeSp, Avx512WorkloadTakesLicenseTwoAndClocksLower) {
    workloads::Workload avx512 = workloads::firestarter();
    avx512.avx512_fraction = 0.5;

    core::Node node{skx_config()};
    node.set_all_workloads(&workloads::firestarter(), 2);
    node.request_turbo_all();
    node.run_for(Time::ms(10));
    const double avx_ghz = mean_ghz(node, Time::ms(50));
    const unsigned avx_level = node.socket(0).cores()[0].license_level;

    node.set_all_workloads(&avx512, 2);
    node.run_for(Time::ms(10));
    const double avx512_ghz = mean_ghz(node, Time::ms(50));
    const unsigned avx512_level = node.socket(0).cores()[0].license_level;

    EXPECT_EQ(avx_level, 1u);
    EXPECT_EQ(avx512_level, 2u);
    EXPECT_LT(avx512_ghz, avx_ghz) << "512-bit license caps the clock harder";
}

TEST(SkylakeSp, UncoreGrantsAreSplitPerDie) {
    core::Node node{skx_config()};
    node.set_all_workloads(&workloads::firestarter(), 1);
    node.run_for(Time::ms(20));
    const auto& dies = node.socket(0).die_uncore_frequencies();
    ASSERT_EQ(dies.size(), node.socket(0).topology().partitions.size());
    ASSERT_GE(dies.size(), 2u);
    for (const Frequency f : dies) {
        EXPECT_GE(f.as_ghz(), node.sku().uncore_min.as_ghz() - 1e-9);
        EXPECT_LE(f.as_ghz(), node.sku().uncore_max.as_ghz() + 1e-9);
    }
    // Haswell-EP keeps the single socket-wide UFS domain.
    core::Node hsw{core::NodeConfig{}};
    EXPECT_TRUE(hsw.socket(0).die_uncore_frequencies().empty());
}

TEST(SkylakeSp, CpufreqRoutesThroughHwpWhenEnabled) {
    core::Node node{skx_config()};
    os::CpufreqPolicy policy{node, 0};
    EXPECT_FALSE(policy.hwp_active()) << "HWP is opt-in via MSR_PM_ENABLE";

    node.enable_hwp();
    ASSERT_TRUE(policy.hwp_active());

    const Frequency target = node.sku().nominal_frequency;
    policy.set_speed(target);
    const auto req =
        pcu::decode_hwp_request(node.msrs().read(0, msr::IA32_HWP_REQUEST));
    EXPECT_EQ(req.desired_ratio, target.ratio());
    EXPECT_EQ(policy.scaling_cur_freq().ratio(), target.ratio());
}

}  // namespace
}  // namespace hsw
