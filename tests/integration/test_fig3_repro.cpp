#include <gtest/gtest.h>

#include "survey/fig3_pstate.hpp"
#include "survey/fig4_opportunity.hpp"

namespace hsw::survey {
namespace {

class Fig3 : public ::testing::Test {
protected:
    static const PstateLatencyResult& result() {
        static const PstateLatencyResult r = [] {
            PstateLatencyConfig cfg;
            cfg.samples = 300;  // CI variant of the paper's 1000
            return fig3(cfg);
        }();
        return r;
    }
};

TEST_F(Fig3, RandomRequestsUniformBetween21And524) {
    const auto& random = result().series[0].result;
    EXPECT_GT(random.min(), 15.0);
    EXPECT_LT(random.min(), 60.0);
    EXPECT_GT(random.max(), 450.0);
    EXPECT_LT(random.max(), 560.0);
    // Roughly uniform: the quartiles split the range into ~equal mass.
    const auto h = result().histogram(0, 4);
    for (std::size_t bin = 0; bin < 4; ++bin) {
        EXPECT_NEAR(static_cast<double>(h.count(bin)), 75.0, 40.0) << "bin " << bin;
    }
}

TEST_F(Fig3, ImmediateRequestsTakeAFullPeriod) {
    // "Requesting a frequency transition instantly after a frequency change
    // ... leads to around 500 us in the majority of the results."
    const auto& immediate = result().series[1].result;
    EXPECT_NEAR(immediate.median(), 500.0, 40.0);
    const auto h = result().histogram(1, 28);
    EXPECT_GT(h.fraction_in(430.0, 560.0), 0.85);
}

TEST_F(Fig3, FourHundredDelayGivesAboutHundred) {
    const auto& fixed400 = result().series[2].result;
    EXPECT_NEAR(fixed400.median(), 100.0, 35.0);
}

TEST_F(Fig3, FiveHundredDelaySplitsIntoTwoClasses) {
    const auto& fixed500 = result().series[3].result;
    util::Histogram h{0.0, 560.0, 28};
    h.add_all(fixed500.latencies_us);
    const double immediate_class = h.fraction_in(0.0, 150.0);
    const double long_class = h.fraction_in(400.0, 560.0);
    EXPECT_GT(immediate_class, 0.05);
    EXPECT_GT(long_class, 0.4);
    EXPECT_NEAR(immediate_class + long_class, 1.0, 0.02);
}

TEST_F(Fig3, RenderShowsAllFourSeries) {
    const std::string s = result().render();
    EXPECT_NE(s.find("random"), std::string::npos);
    EXPECT_NE(s.find("immediately"), std::string::npos);
    EXPECT_NE(s.find("400 us"), std::string::npos);
    EXPECT_NE(s.find("500 us"), std::string::npos);
}

TEST(Fig4, OpportunityMechanism) {
    const auto r = fig4(0xBEEF);
    // The measured grid period is ~500 us.
    EXPECT_NEAR(r.observed_period_us, 500.0, 10.0);
    // Cores on one socket change together; sockets independently.
    EXPECT_LT(r.same_socket_delta_us, 25.0);
    EXPECT_NE(r.timeline.find("opportunity"), std::string::npos);
    EXPECT_NE(r.timeline.find("request"), std::string::npos);
    EXPECT_NE(r.timeline.find("change complete"), std::string::npos);
}

}  // namespace
}  // namespace hsw::survey
