#include <gtest/gtest.h>

#include "survey/table3_uncore.hpp"

namespace hsw::survey {
namespace {

class Table3 : public ::testing::Test {
protected:
    static const UncoreTableResult& result() {
        static const UncoreTableResult r = table3(util::Time::ms(200));
        return r;
    }
};

TEST_F(Table3, TurboRowReachesUncoreMax) {
    const auto& turbo = result().rows.front();
    ASSERT_TRUE(turbo.turbo);
    EXPECT_NEAR(turbo.active_uncore_ghz, 3.0, 0.02);
    // Passive socket fluctuates 2.9-3.0 at turbo.
    EXPECT_GE(turbo.passive_uncore_ghz, 2.88);
    EXPECT_LE(turbo.passive_uncore_ghz, 3.0);
}

TEST_F(Table3, LadderRowsMatchPaper) {
    // Paper Table III: core setting -> active uncore.
    const std::vector<std::pair<double, double>> expectations{
        {2.5, 2.2}, {2.4, 2.1}, {2.3, 2.0}, {2.2, 1.9}, {2.1, 1.8},
        {2.0, 1.75}, {1.9, 1.65}, {1.8, 1.6}, {1.7, 1.5}, {1.6, 1.4},
        {1.5, 1.3}, {1.4, 1.2}, {1.3, 1.2}, {1.2, 1.2}};
    for (const auto& [set, expected] : expectations) {
        bool found = false;
        for (const auto& row : result().rows) {
            if (!row.turbo && std::abs(row.set_ghz - set) < 1e-9) {
                EXPECT_NEAR(row.active_uncore_ghz, expected, 0.03)
                    << "setting " << set;
                found = true;
            }
        }
        EXPECT_TRUE(found) << "missing row " << set;
    }
}

TEST_F(Table3, PassiveSocketOneStepLower) {
    for (const auto& row : result().rows) {
        if (row.turbo) continue;
        if (row.active_uncore_ghz <= 1.21) {
            // Both at the 1.2 GHz floor.
            EXPECT_NEAR(row.passive_uncore_ghz, 1.2, 0.03);
        } else {
            EXPECT_NEAR(row.active_uncore_ghz - row.passive_uncore_ghz, 0.1, 0.04)
                << "setting " << row.set_ghz;
        }
    }
}

TEST_F(Table3, EpbPerformanceForcesMaximumEverywhere) {
    // Table III footnote: 3.0 GHz if EPB is set to performance.
    for (const auto& row : result().rows) {
        EXPECT_NEAR(row.active_uncore_perf_epb_ghz, 3.0, 0.02)
            << "setting " << row.set_ghz;
    }
}

TEST_F(Table3, FifteenRowsLikeThePaper) {
    EXPECT_EQ(result().rows.size(), 15u);  // turbo + 2.5 .. 1.2
    EXPECT_NE(result().render().find("Turbo"), std::string::npos);
}

}  // namespace
}  // namespace hsw::survey
