#include <gtest/gtest.h>

#include "survey/fig78_bandwidth.hpp"

namespace hsw::survey {
namespace {

class Fig78 : public ::testing::Test {
protected:
    static const Fig7Result& f7() {
        static const Fig7Result r = fig7();
        return r;
    }
    static const Fig8Result& f8() {
        static const Fig8Result r = fig8();
        return r;
    }
};

TEST_F(Fig78, HaswellDramFlatAcrossFrequency) {
    // Fig. 7b: "DRAM performance at maximal concurrency does not depend on
    // the core frequency."
    const auto& hsw = f7().find(arch::Generation::HaswellEP);
    for (const auto& p : hsw.points) {
        EXPECT_NEAR(p.relative_dram, 1.0, 0.03) << p.set_ghz;
    }
}

TEST_F(Fig78, SandyBridgeDramTracksFrequency) {
    const auto& snb = f7().find(arch::Generation::SandyBridgeEP);
    EXPECT_LT(snb.points.front().relative_dram, 0.6);   // at min frequency
    // Monotonically recovering toward 1.0.
    double prev = 0.0;
    for (const auto& p : snb.points) {
        EXPECT_GE(p.relative_dram, prev - 0.01);
        prev = p.relative_dram;
    }
}

TEST_F(Fig78, WestmereDramFlatLikeHaswell) {
    // "The behavior of the Westmere-EP generation with its constant uncore
    // frequency was similar."
    const auto& wsm = f7().find(arch::Generation::WestmereEP);
    for (const auto& p : wsm.points) {
        EXPECT_NEAR(p.relative_dram, 1.0, 0.05) << p.set_ghz;
    }
}

TEST_F(Fig78, HaswellL3TracksCoreFrequency) {
    const auto& hsw = f7().find(arch::Generation::HaswellEP);
    EXPECT_LT(hsw.points.front().relative_l3, 0.65);
    EXPECT_GT(hsw.points.front().relative_l3, 0.40);
}

TEST_F(Fig78, DramSaturatesAroundEightToTenCores) {
    // Fig. 8: saturation at ~8 cores; frequency independent from 10 cores.
    const auto& r = f8();
    const std::size_t top_freq = r.set_ghz.size() - 2;  // 2.5 GHz column
    const double at8 = r.at_dram(7, top_freq);
    const double at12 = r.at_dram(11, top_freq);
    EXPECT_GT(at8 / at12, 0.90);
    // Frequency independence at >= 10 cores: min vs max frequency.
    const double lo_f = r.at_dram(10, 2);
    const double hi_f = r.at_dram(10, top_freq);
    EXPECT_GT(lo_f / hi_f, 0.85);
}

TEST_F(Fig78, L3GrowsWithBothAxes) {
    const auto& r = f8();
    // More threads -> more L3 bandwidth (same frequency).
    for (std::size_t t = 1; t < 12; ++t) {
        EXPECT_GE(r.at_l3(t, 5), r.at_l3(t - 1, 5));
    }
    // More frequency -> more L3 bandwidth (same threads).
    for (std::size_t fi = 1; fi + 1 < r.set_ghz.size(); ++fi) {
        EXPECT_GE(r.at_l3(11, fi), r.at_l3(11, fi - 1));
    }
}

TEST_F(Fig78, HyperThreadingOnlyHelpsBeforeSaturation) {
    const auto& r = f8();
    const std::size_t top_freq = r.set_ghz.size() - 2;
    // 24 threads vs 12 threads at full frequency: DRAM already saturated.
    const double t12 = r.at_dram(11, top_freq);
    const double t24 = r.at_dram(23, top_freq);
    EXPECT_NEAR(t24 / t12, 1.0, 0.05);
    // 2 threads on 1 core vs 1 thread: clear benefit.
    const double t1 = r.at_dram(0, top_freq);
    const double t2_on_1core = r.at_dram(12, top_freq);  // 13 threads fills HT
    (void)t2_on_1core;
    const double l3_t1 = r.at_l3(0, top_freq);
    const double l3_t13 = r.at_l3(12, top_freq);
    EXPECT_GT(l3_t13, l3_t1);  // sanity: more threads, more bandwidth
    EXPECT_GT(t1, 0.0);
}

TEST_F(Fig78, GridDimensions) {
    const auto& r = f8();
    EXPECT_EQ(r.set_ghz.size(), 15u);   // 1.2 .. 2.5 + turbo
    EXPECT_EQ(r.threads.size(), 24u);   // up to 2 threads x 12 cores
    EXPECT_EQ(r.l3_gbs.size(), 24u);
    EXPECT_EQ(r.dram_gbs.size(), 24u);
}

}  // namespace
}  // namespace hsw::survey
