#include <gtest/gtest.h>

#include "core/node.hpp"
#include "msr/addresses.hpp"
#include "workloads/mixes.hpp"

namespace hsw {
namespace {

using util::Time;

/// Run a representative scenario and fingerprint the machine state.
std::vector<std::uint64_t> fingerprint(std::uint64_t seed) {
    core::NodeConfig cfg;
    cfg.seed = seed;
    core::Node node{cfg};
    node.set_all_workloads(&workloads::firestarter(), 2);
    node.request_turbo_all();
    node.run_for(Time::ms(700));
    node.set_pstate_all(util::Frequency::ghz(2.2));
    node.run_for(Time::ms(700));

    std::vector<std::uint64_t> fp;
    for (unsigned cpu : {0u, 5u, 12u, 23u}) {
        fp.push_back(node.msrs().read(cpu, msr::IA32_APERF));
        fp.push_back(node.msrs().read(cpu, msr::IA32_FIXED_CTR0));
    }
    fp.push_back(node.msrs().read(0, msr::MSR_PKG_ENERGY_STATUS));
    fp.push_back(node.msrs().read(12, msr::MSR_PKG_ENERGY_STATUS));
    fp.push_back(node.msrs().read(0, msr::MSR_DRAM_ENERGY_STATUS));
    fp.push_back(node.msrs().read(0, msr::U_MSR_PMON_UCLK_FIXED_CTR));
    fp.push_back(static_cast<std::uint64_t>(node.ac_power().as_watts() * 1e6));
    return fp;
}

TEST(Determinism, IdenticalSeedsReplayExactly) {
    EXPECT_EQ(fingerprint(42), fingerprint(42));
}

TEST(Determinism, DifferentSeedsDiverge) {
    // The grid phases, switching times and noise all derive from the seed.
    EXPECT_NE(fingerprint(42), fingerprint(43));
}

TEST(Determinism, SeedChangesOnlyNoiseNotPhysics) {
    // Different seeds must agree on the physical equilibrium (TDP-limited
    // FIRESTARTER lands at the same average frequency).
    auto avg_freq = [](std::uint64_t seed) {
        core::NodeConfig cfg;
        cfg.seed = seed;
        core::Node node{cfg};
        node.set_all_workloads(&workloads::firestarter(), 2);
        node.request_turbo_all();
        node.run_for(Time::ms(100));
        const auto a0 = node.msrs().read(12, msr::IA32_APERF);
        node.run_for(Time::sec(2));
        const auto a1 = node.msrs().read(12, msr::IA32_APERF);
        return static_cast<double>(a1 - a0) / 2e9;
    };
    EXPECT_NEAR(avg_freq(1), avg_freq(999), 0.03);
}

}  // namespace
}  // namespace hsw
