// Byte-identity against the committed goldens, through the engine, at two
// thread counts. The cheap full-tuning experiments (fig3-fig7 plus the
// cross-generation xgen_c6/skx_* sweeps) regenerate in seconds; their CSV
// artifacts must equal the checked-in
// files byte for byte at jobs=1 and jobs=8 -- the event-engine rewrite's
// whole contract is that no output byte moves.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "engine/survey_experiments.hpp"
#include "obs/accesslog.hpp"
#include "obs/ctx.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

#ifndef HSW_REPO_ROOT
#error "HSW_REPO_ROOT must point at the source tree (set in tests/CMakeLists.txt)"
#endif

namespace hsw::engine {
namespace {

const std::vector<std::string> kCheapExperiments{"fig3",    "fig4",    "fig5",
                                                 "fig6",    "fig7",    "xgen_c6",
                                                 "skx_hwp", "skx_avx512"};

std::string slurp(const std::filesystem::path& path) {
    std::ifstream in{path, std::ios::binary};
    EXPECT_TRUE(in.good()) << "cannot open " << path;
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

RunReport regenerate(unsigned jobs) {
    const auto all = survey_experiments(SurveyTuning{});  // full tuning: golden inputs
    std::vector<Experiment> subset;
    for (const std::string& name : kCheapExperiments) {
        const Experiment* e = find_experiment(all, name);
        if (e != nullptr) subset.push_back(*e);
    }
    EXPECT_EQ(subset.size(), kCheapExperiments.size());

    RunOptions options;
    options.jobs = jobs;
    return run_experiments(subset, options);
}

void expect_artifacts_match_goldens(const RunReport& report) {
    ASSERT_TRUE(report.ok()) << report.summary();
    const std::filesystem::path root{HSW_REPO_ROOT};
    std::size_t csvs = 0;
    for (const Artifact& artifact : report.artifacts) {
        if (artifact.kind != ArtifactKind::Csv) continue;
        ++csvs;
        const std::string golden = slurp(root / artifact.filename);
        EXPECT_EQ(artifact.contents, golden)
            << artifact.filename << " drifted from the committed golden";
    }
    EXPECT_GE(csvs, kCheapExperiments.size());
}

TEST(GoldenArtifacts, SerialRunMatchesCommittedCsvsByteForByte) {
    expect_artifacts_match_goldens(regenerate(1));
}

TEST(GoldenArtifacts, ParallelRunMatchesCommittedCsvsByteForByte) {
    expect_artifacts_match_goldens(regenerate(8));
}

// Telemetry must observe the run without moving a single output byte: the
// acceptance bar for the obs layer is that goldens stay byte-identical with
// metrics, span tracing, a sampled distributed trace context, and the
// access log all live during artifact generation.
TEST(GoldenArtifacts, TracingEnabledRunMatchesCommittedCsvsByteForByte) {
    obs::set_metrics_enabled(true);
    obs::trace::enable();
    obs::accesslog::set_policy(1.0, 0);
    obs::accesslog::set_enabled(true);
    {
        // Every engine span joins one sampled request tree, exactly as if
        // the run arrived over a traced v1.4 query.
        obs::trace::ContextScope scope{obs::trace::make_root(true)};
        expect_artifacts_match_goldens(regenerate(4));
    }
    obs::trace::disable();
    obs::accesslog::set_enabled(false);
    obs::set_metrics_enabled(false);
    EXPECT_GT(obs::trace::recorded_events(), 0u) << "tracing was on but recorded nothing";
    obs::trace::clear();
}

TEST(GoldenArtifacts, JobsReportSimEventsForComputedWork) {
    const RunReport report = regenerate(4);
    ASSERT_TRUE(report.ok());
    std::uint64_t total_events = 0;
    for (const JobStats& j : report.jobs) {
        EXPECT_FALSE(j.cache_hit);  // no cache dir configured
        total_events += j.sim_events;
        if (j.sim_events > 0) {
            EXPECT_GT(j.events_per_sec, 0.0) << j.point;
        }
    }
    EXPECT_GT(total_events, 0u);
}

}  // namespace
}  // namespace hsw::engine
