#include <gtest/gtest.h>

#include "survey/table5_maxpower.hpp"

namespace hsw::survey {
namespace {

class Table5 : public ::testing::Test {
protected:
    static const MaxPowerResult& result() {
        static const MaxPowerResult r = [] {
            MaxPowerConfig cfg;
            cfg.run_time = util::Time::sec(8);  // CI variant
            cfg.window = util::Time::sec(4);
            return table5(cfg);
        }();
        return r;
    }
};

TEST_F(Table5, FirestarterNearPaperPower) {
    // Paper: 559.8 - 561.0 W across all settings.
    for (bool turbo : {false, true}) {
        for (const char* epb : {"power", "bal", "perf"}) {
            const auto& c = result().find("FIRESTARTER", turbo, epb);
            EXPECT_NEAR(c.ac_watts, 560.0, 12.0) << turbo << " " << epb;
        }
    }
}

TEST_F(Table5, LinpackDrawsLessPowerAndRunsSlowest) {
    // The Section VIII observation: LINPACK is both the lowest-power and
    // the lowest-frequency stress test (current-guardband limited).
    const double fs = result().max_ac("FIRESTARTER");
    const double lp = result().max_ac("LINPACK");
    EXPECT_LT(lp, fs - 5.0);
    for (bool turbo : {false, true}) {
        const auto& lp_cell = result().find("LINPACK", turbo, "bal");
        const auto& fs_cell = result().find("FIRESTARTER", turbo, "bal");
        const auto& mp_cell = result().find("mprime", turbo, "bal");
        EXPECT_LT(lp_cell.core_ghz, fs_cell.core_ghz);
        EXPECT_LT(lp_cell.core_ghz, mp_cell.core_ghz);
    }
}

TEST_F(Table5, LinpackFrequencyNearPaper) {
    const auto& c = result().find("LINPACK", true, "bal");
    EXPECT_NEAR(c.core_ghz, 2.28, 0.1);  // paper: 2.27-2.28
}

TEST_F(Table5, MprimeRunsFastest) {
    const auto& mp = result().find("mprime", true, "bal");
    EXPECT_GT(mp.core_ghz, 2.45);
    EXPECT_LT(mp.core_ghz, 2.70);  // paper: up to 2.62
}

TEST_F(Table5, SettingsHaveLittleImpact) {
    // "EPB, turbo mode ... have very little impact on the core frequency
    // and the power consumption."
    for (const char* wl : {"FIRESTARTER", "LINPACK"}) {
        double min_w = 1e9;
        double max_w = 0;
        for (bool turbo : {false, true}) {
            for (const char* epb : {"power", "bal", "perf"}) {
                const auto& c = result().find(wl, turbo, epb);
                min_w = std::min(min_w, c.ac_watts);
                max_w = std::max(max_w, c.ac_watts);
            }
        }
        EXPECT_LT(max_w - min_w, 15.0) << wl;
    }
}

TEST_F(Table5, AllFrequenciesTdpConstrained) {
    // Nobody sustains nominal 2.5 GHz + turbo: every cell sits between the
    // AVX base (2.1) and the all-core turbo region.
    for (const auto& c : result().cells) {
        EXPECT_GE(c.core_ghz, 2.1 - 0.05) << c.workload;
        EXPECT_LE(c.core_ghz, 2.9) << c.workload;
    }
}

TEST_F(Table5, EighteenCells) {
    EXPECT_EQ(result().cells.size(), 18u);  // 3 workloads x 2 settings x 3 EPB
    EXPECT_NE(result().render().find("FIRESTARTER"), std::string::npos);
}

}  // namespace
}  // namespace hsw::survey
