// Cross-cutting property sweeps (TEST_P): invariants that must hold over
// whole parameter grids, not just the paper's example points.
#include <gtest/gtest.h>

#include "core/node.hpp"
#include "pcu/pcu.hpp"
#include "tools/ftalat.hpp"
#include "workloads/mixes.hpp"

namespace hsw {
namespace {

using util::Frequency;
using util::Time;

// --- Section VI-A: "We chose 1.2 and 1.3 GHz, but other frequency pairs
// yield similar results." ---

struct FreqPair {
    unsigned from;
    unsigned to;
};

class FtalatPairSweep : public ::testing::TestWithParam<FreqPair> {};

TEST_P(FtalatPairSweep, LatencyDistributionIndependentOfPair) {
    const auto [from, to] = GetParam();
    core::Node node;
    tools::Ftalat ftalat{node};
    tools::FtalatConfig cfg;
    cfg.from_ratio = from;
    cfg.to_ratio = to;
    cfg.delay_mode = tools::DelayMode::Random;
    cfg.samples = 120;
    const auto r = ftalat.measure(cfg);
    // Same grid-driven distribution regardless of the distance between the
    // start and target frequency.
    EXPECT_GT(r.min(), 12.0) << from << "->" << to;
    EXPECT_LT(r.min(), 80.0) << from << "->" << to;
    EXPECT_GT(r.max(), 420.0) << from << "->" << to;
    EXPECT_LT(r.max(), 580.0) << from << "->" << to;
    EXPECT_NEAR(r.median(), 270.0, 130.0) << from << "->" << to;
}

INSTANTIATE_TEST_SUITE_P(PairsAcrossTheRange, FtalatPairSweep,
                         ::testing::Values(FreqPair{12, 13},   // the paper's pair
                                           FreqPair{12, 25},   // min -> nominal
                                           FreqPair{20, 21},   // mid-range step
                                           FreqPair{24, 14},   // large downward
                                           FreqPair{15, 22})); // upward multi-step

// --- PCU budget invariant: average package power never exceeds the
// effective budget, for every SKU and every stress workload. ---

struct BudgetCase {
    const arch::Sku* sku;
    const workloads::Workload* workload;
};

class PcuBudgetSweep : public ::testing::TestWithParam<BudgetCase> {};

TEST_P(PcuBudgetSweep, AveragePowerWithinBudget) {
    const auto [sku, workload] = GetParam();
    pcu::PcuController controller{*sku, 0};
    pcu::PcuInputs in;
    in.cores.resize(sku->cores);
    for (auto& c : in.cores) {
        c.state = cstates::CState::C0;
        c.requested_ratio = sku->nominal_frequency.ratio() + 1;
        c.avx_fraction = workload->avx_fraction;
        c.stall_fraction = workload->stall_fraction;
        c.cdyn_utilization = workload->cdyn_ht;
    }
    in.uncore_traffic = workload->uncore_traffic;
    in.current_intensity = workload->current_intensity;
    in.fastest_system_core = sku->nominal_frequency;

    double sum = 0.0;
    Time t = Time::zero();
    const int ticks = 100;
    for (int i = 0; i < ticks; ++i) {
        t += Time::us(500);
        sum += controller.evaluate(in, t).estimated_package_power.as_watts();
    }
    const double avg = sum / ticks;
    const double budget = controller.effective_budget(in.current_intensity).as_watts();
    EXPECT_LE(avg, budget + 1.0)
        << sku->model << " running " << workload->name;
    // And the machine is not absurdly underutilized either.
    EXPECT_GT(avg, budget * 0.5);
}

INSTANTIATE_TEST_SUITE_P(
    SkusAndWorkloads, PcuBudgetSweep,
    ::testing::Values(BudgetCase{&arch::xeon_e5_2680_v3(), &workloads::firestarter()},
                      BudgetCase{&arch::xeon_e5_2680_v3(), &workloads::linpack()},
                      BudgetCase{&arch::xeon_e5_2680_v3(), &workloads::mprime()},
                      BudgetCase{&arch::xeon_e5_2680_v3(), &workloads::dgemm()},
                      BudgetCase{&arch::xeon_e5_2667_v3(), &workloads::firestarter()},
                      BudgetCase{&arch::xeon_e5_2667_v3(), &workloads::linpack()},
                      BudgetCase{&arch::xeon_e5_2699_v3(), &workloads::firestarter()},
                      BudgetCase{&arch::xeon_e5_2699_v3(), &workloads::dgemm()}));

// --- APERF/MPERF consistency across every selectable p-state. ---

class PstateSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(PstateSweep, GrantedFrequencyMatchesRequestBelowTdp) {
    const unsigned ratio = GetParam();
    core::Node node;
    node.set_workload(0, &workloads::while_one(), 1);  // negligible power
    node.set_pstate(0, Frequency::from_ratio(ratio));
    node.run_for(Time::ms(3));
    EXPECT_EQ(node.core_frequency(0).ratio(), ratio);
    // The MSR status register agrees.
    EXPECT_EQ((node.msrs().read(0, msr::IA32_PERF_STATUS) >> 8) & 0xFF, ratio);
}

INSTANTIATE_TEST_SUITE_P(AllSelectableRatios, PstateSweep,
                         ::testing::Range(12u, 26u));

// --- Energy counter monotonicity: RAPL counters never run backwards
// (modulo the 32-bit wrap), under any load change pattern. ---

TEST(EnergyMonotonicity, CountersAdvanceUnderLoadChanges) {
    core::Node node;
    std::uint32_t prev_pkg = 0;
    std::uint64_t total = 0;
    const workloads::Workload* phases[] = {
        &workloads::firestarter(), nullptr, &workloads::memory_stream(), nullptr,
        &workloads::dgemm()};
    for (const auto* w : phases) {
        if (w != nullptr) {
            node.set_all_workloads(w, 2);
        } else {
            node.clear_all_workloads();
        }
        node.run_for(Time::ms(300));
        const auto raw = static_cast<std::uint32_t>(
            node.msrs().read(0, msr::MSR_PKG_ENERGY_STATUS));
        const std::uint32_t delta = raw - prev_pkg;  // wrap-safe
        total += delta;
        prev_pkg = raw;
    }
    // ~1.5 s of mixed load on one socket: energy in a plausible band.
    const double joules = static_cast<double>(total) / 16384.0;
    EXPECT_GT(joules, 30.0);
    EXPECT_LT(joules, 400.0);
}

}  // namespace
}  // namespace hsw
