// Haswell-HE (desktop) cross-checks: Section IV notes "similarly good
// results on a Haswell-HE platform, also benefiting from the availability
// of the DRAM domain in contrast to previous generation desktop
// platforms"; Section VI-A notes its p-state requests apply immediately.
#include <gtest/gtest.h>

#include "core/node.hpp"
#include "tools/ftalat.hpp"
#include "tools/rapl_validate.hpp"
#include "workloads/mixes.hpp"

namespace hsw {
namespace {

using util::Frequency;
using util::Time;

core::NodeConfig he_config() {
    core::NodeConfig cfg;
    cfg.sku = &arch::core_i7_4770();
    cfg.sockets = 1;
    return cfg;
}

TEST(HaswellHe, HasMeasuredRaplWithDramDomain) {
    core::Node node{he_config()};
    EXPECT_TRUE(node.socket(0).rapl().has_domain(rapl::Domain::Dram));
    EXPECT_EQ(arch::traits(node.generation()).rapl_backend,
              arch::RaplBackend::Measured);
}

TEST(HaswellHe, RaplTracksTruthLikeTheEpPart) {
    core::Node node{he_config()};
    node.set_all_workloads(&workloads::compute(), 1);
    node.run_for(Time::ms(100));
    const double true_before = node.socket(0).rapl().true_pkg_energy().as_joules();
    const auto window = node.rapl_window(0, Time::sec(1));
    const double true_delta =
        node.socket(0).rapl().true_pkg_energy().as_joules() - true_before;
    EXPECT_NEAR(window.package.as_watts(), true_delta, true_delta * 0.02);
}

TEST(HaswellHe, PstateRequestsApplyImmediately) {
    core::Node node{he_config()};
    tools::Ftalat ftalat{node};
    tools::FtalatConfig cfg;
    cfg.from_ratio = 8;   // 0.8 GHz
    cfg.to_ratio = 9;
    cfg.delay_mode = tools::DelayMode::Random;
    cfg.samples = 80;
    const auto r = ftalat.measure(cfg);
    // Only the legacy ~10 us switching time -- no 500 us grid.
    EXPECT_LT(r.median(), 40.0);
    EXPECT_LT(r.max(), 80.0);
}

TEST(HaswellHe, NoPerCorePstates) {
    // PCPS needs the per-core FIVR arrangement of the EP parts: a desktop
    // part grants one frequency domain. (We model this at the trait level.)
    EXPECT_FALSE(arch::traits(arch::Generation::HaswellHE).per_core_pstates);
    EXPECT_TRUE(arch::traits(arch::Generation::HaswellEP).per_core_pstates);
}

TEST(HaswellHe, FourCoreTopologyIsSingleRing) {
    core::Node node{he_config()};
    EXPECT_EQ(node.socket(0).topology().variant, arch::DieVariant::EightCore);
    EXPECT_EQ(node.socket(0).topology().partitions.size(), 1u);
}

}  // namespace
}  // namespace hsw
