#include <gtest/gtest.h>

#include "survey/table4_firestarter.hpp"

namespace hsw::survey {
namespace {

class Table4 : public ::testing::Test {
protected:
    static const FirestarterSweepResult& result() {
        static const FirestarterSweepResult r = [] {
            FirestarterSweepConfig cfg;
            cfg.samples = 8;  // fast CI variant of the paper's 50
            return table4(cfg);
        }();
        return r;
    }
};

TEST_F(Table4, TurboEquilibriumNearPaper) {
    const auto& t = result().turbo_row();
    // Paper: core 2.30/2.32, uncore 2.33/2.35, GIPS 3.55/3.58.
    EXPECT_NEAR(t.core_ghz[0], 2.30, 0.06);
    EXPECT_NEAR(t.core_ghz[1], 2.32, 0.06);
    EXPECT_NEAR(t.uncore_ghz[0], 2.33, 0.08);
    EXPECT_NEAR(t.gips[0], 3.55, 0.10);
    EXPECT_NEAR(t.gips[1], 3.58, 0.10);
}

TEST_F(Table4, Socket1OutperformsSocket0) {
    // Section III: processor 0 is the less efficient part.
    const auto& t = result().turbo_row();
    EXPECT_GE(t.core_ghz[1], t.core_ghz[0]);
    EXPECT_GE(t.gips[1], t.gips[0]);
}

TEST_F(Table4, TdpLimitedAtAndAbove22) {
    for (const auto& row : result().rows) {
        if (row.turbo || row.set_ghz >= 2.2 - 1e-9) {
            EXPECT_NEAR(row.rapl_pkg_watts[1], 120.0, 1.5)
                << "setting " << (row.turbo ? 0.0 : row.set_ghz);
        }
    }
}

TEST_F(Table4, TwoPointOneRunsBelowTdpWithMaxUncore) {
    const auto& row = result().rows.back();
    ASSERT_NEAR(row.set_ghz, 2.1, 1e-9);
    EXPECT_NEAR(row.core_ghz[1], 2.1, 0.02);       // no throttling
    EXPECT_NEAR(row.uncore_ghz[1], 3.0, 0.02);     // uncore at max turbo
    EXPECT_LT(row.rapl_pkg_watts[1], 120.0);
}

TEST_F(Table4, HeadroomFlowsToUncoreAsSettingDrops) {
    // Monotonic: lower core setting -> higher uncore (2.3 .. 2.1 rows).
    double prev_uncore = 0.0;
    for (const auto& row : result().rows) {
        if (row.turbo || row.set_ghz > 2.35) continue;
        EXPECT_GE(row.uncore_ghz[1], prev_uncore - 0.02)
            << "setting " << row.set_ghz;
        prev_uncore = row.uncore_ghz[1];
    }
}

TEST_F(Table4, DownclockingBeatsTurboByAboutOnePercent) {
    const double turbo_gips = result().turbo_row().gips[1];
    const double best_gips = result().best_by_gips().gips[1];
    const double gain = best_gips / turbo_gips - 1.0;
    EXPECT_GT(gain, 0.002);  // there IS an inversion
    EXPECT_LT(gain, 0.03);   // and it is small, ~1 %
    EXPECT_FALSE(result().best_by_gips().turbo);
}

TEST_F(Table4, RenderListsAllSettings) {
    const std::string s = result().render();
    EXPECT_NE(s.find("Turbo"), std::string::npos);
    EXPECT_NE(s.find("2.1"), std::string::npos);
    EXPECT_EQ(result().rows.size(), 6u);  // turbo, 2.5 .. 2.1
}

}  // namespace
}  // namespace hsw::survey
