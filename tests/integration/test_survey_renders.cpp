// Rendering/formatting checks for the survey layer: the bench binaries'
// human-readable output must name the paper's rows and anchors.
#include <gtest/gtest.h>

#include "survey/table1_microarch.hpp"
#include "survey/table2_system.hpp"

namespace hsw::survey {
namespace {

TEST(Table1Render, ListsAllRows) {
    const auto cmp = table1();
    const std::string s = cmp.render();
    for (const char* row : {"Decode", "Allocation queue", "Execute", "Retire",
                            "Scheduler entries", "ROB entries", "SIMD ISA",
                            "FLOPS/cycle", "Load/store buffers", "L2 bytes/cycle",
                            "Supported memory", "DRAM bandwidth", "QPI speed"}) {
        EXPECT_NE(s.find(row), std::string::npos) << row;
    }
    EXPECT_NE(s.find("AVX2"), std::string::npos);
    EXPECT_NE(s.find("4x DDR4-2133"), std::string::npos);
}

TEST(Table1Render, DerivedRatios) {
    const auto cmp = table1();
    EXPECT_DOUBLE_EQ(cmp.flops_ratio(), 2.0);
    EXPECT_DOUBLE_EQ(cmp.l1_bandwidth_ratio(), 2.0);
    EXPECT_DOUBLE_EQ(cmp.l2_bandwidth_ratio(), 2.0);
    EXPECT_NEAR(cmp.dram_bandwidth_ratio(), 68.2 / 51.2, 1e-9);
}

TEST(Table2Render, MatchesThePaperRows) {
    const auto report = table2(util::Time::ms(500));
    const std::string s = report.render();
    EXPECT_NE(s.find("2x Intel Xeon E5-2680 v3"), std::string::npos);
    EXPECT_NE(s.find("1.2 - 2.5 GHz"), std::string::npos);
    EXPECT_NE(s.find("up to 3.3 GHz"), std::string::npos);
    EXPECT_NE(s.find("2.1 GHz"), std::string::npos);
    EXPECT_NE(s.find("balanced"), std::string::npos);
    EXPECT_NE(s.find("LMG450"), std::string::npos);
    EXPECT_TRUE(report.eet_enabled);
    EXPECT_TRUE(report.ufs_enabled);
    EXPECT_TRUE(report.pcps_enabled);
    EXPECT_NEAR(report.idle_ac_watts, 261.5, 3.0);
}

}  // namespace
}  // namespace hsw::survey
