// Flight recorder: atomic file writes, the rendered document's shape
// (flight metadata + metrics + trace + access-log tail), and dump()'s
// path/naming contract. Crash handlers are exercised end-to-end by the
// CI obs-smoke job, not here -- a unit test must not re-raise SIGSEGV.
#include "obs/flight.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/accesslog.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/minijson.hpp"

using namespace hsw;
namespace flight = obs::flight;

namespace {

/// Flight config, tracing and the access log are process-wide; bracket
/// every test with a clean slate and a scratch dump directory.
class FlightTest : public ::testing::Test {
protected:
    void SetUp() override {
        dir_ = testing::TempDir() + "/hsw_flight_test_" +
               std::to_string(::getpid());
        std::filesystem::remove_all(dir_);
        std::filesystem::create_directories(dir_);
        flight::configure({dir_, "flight-test"});
    }
    void TearDown() override {
        obs::trace::disable();
        obs::trace::clear();
        obs::accesslog::set_enabled(false);
        flight::configure({});
        std::filesystem::remove_all(dir_);
    }

    std::string dir_;
};

std::string read_file(const std::string& path) {
    std::ifstream in{path, std::ios::binary};
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

}  // namespace

TEST_F(FlightTest, WriteTextAtomicRoundTripsAndLeavesNoTempFile) {
    const std::string path = dir_ + "/atomic.txt";
    ASSERT_TRUE(flight::write_text_atomic(path, "payload\n"));
    EXPECT_EQ(read_file(path), "payload\n");
    // Only the final file remains -- the tmp sibling was renamed away.
    std::size_t entries = 0;
    for (const auto& e : std::filesystem::directory_iterator(dir_)) {
        (void)e;
        ++entries;
    }
    EXPECT_EQ(entries, 1u);
}

TEST_F(FlightTest, WriteTextAtomicFailsCleanlyOnMissingDirectory) {
    EXPECT_FALSE(flight::write_text_atomic("/nonexistent-dir/x.json", "x"));
}

TEST_F(FlightTest, WriteTextAtomicReplacesExistingFile) {
    const std::string path = dir_ + "/replace.txt";
    ASSERT_TRUE(flight::write_text_atomic(path, "old"));
    ASSERT_TRUE(flight::write_text_atomic(path, "new"));
    EXPECT_EQ(read_file(path), "new");
}

TEST_F(FlightTest, RenderIsValidJsonWithAllFourSections) {
    obs::trace::enable();
    { obs::trace::Span span{"flight.render", "test"}; }
    obs::accesslog::set_enabled(true);
    obs::accesslog::Record rec;
    rec.trace_id = 0xF11;
    obs::accesslog::set_field(rec.verb, "query");
    obs::accesslog::set_field(rec.outcome, "ok");
    obs::accesslog::record(rec);

    const std::string doc_text = flight::render("unit-test");
    std::string error;
    const auto doc = util::json::parse(doc_text, &error);
    ASSERT_TRUE(doc.has_value()) << error;

    const util::json::Value* meta = doc->find("flight");
    ASSERT_NE(meta, nullptr);
    EXPECT_EQ(meta->number_or("pid", -1),
              static_cast<double>(::getpid()));
    EXPECT_EQ(meta->find("process")->as_string(), "flight-test");
    EXPECT_EQ(meta->find("reason")->as_string(), "unit-test");
    EXPECT_FALSE(meta->find("engine_version")->as_string().empty());
    EXPECT_NE(meta->find("trace_dropped_spans"), nullptr);
    EXPECT_NE(meta->find("accesslog_dropped"), nullptr);

    ASSERT_NE(doc->find("metrics"), nullptr);
    const util::json::Value* trace = doc->find("trace");
    ASSERT_NE(trace, nullptr);
    ASSERT_NE(trace->find("traceEvents"), nullptr);
    EXPECT_TRUE(trace->find("traceEvents")->is_array());

    const util::json::Value* access = doc->find("access_log");
    ASSERT_NE(access, nullptr);
    ASSERT_TRUE(access->is_array());
    ASSERT_EQ(access->as_array().size(), 1u);
    EXPECT_EQ(access->as_array()[0].find("trace_id")->as_string(),
              "0000000000000f11");
}

TEST_F(FlightTest, DumpWritesNamedFileInConfiguredDir) {
    const std::string path = flight::dump("unit");
    ASSERT_FALSE(path.empty());
    const std::string expected = dir_ + "/flight-" +
                                 std::to_string(::getpid()) + "-unit.json";
    EXPECT_EQ(path, expected);
    std::string error;
    EXPECT_TRUE(util::json::parse(read_file(path), &error).has_value()) << error;
}

TEST_F(FlightTest, DumpSanitizesHostileReason) {
    const std::string path = flight::dump("../../etc passwd");
    ASSERT_FALSE(path.empty());
    // Everything unsafe became '_'; the dump stayed inside dir_.
    EXPECT_NE(path.find(dir_ + "/flight-"), std::string::npos);
    EXPECT_EQ(path.find(".."), std::string::npos);
    EXPECT_TRUE(std::filesystem::exists(path));
}

TEST_F(FlightTest, DumpReturnsEmptyOnUnwritableDir) {
    flight::configure({"/nonexistent-dir", "flight-test"});
    EXPECT_TRUE(flight::dump("unit").empty());
}

TEST_F(FlightTest, EmptyProcessFallsBackToAccessLogIdentity) {
    flight::configure({dir_, ""});
    obs::accesslog::set_identity("surveyd:9999");
    const auto doc = util::json::parse(flight::render("x"), nullptr);
    obs::accesslog::set_identity("");
    ASSERT_TRUE(doc.has_value());
    EXPECT_EQ(doc->find("flight")->find("process")->as_string(),
              "surveyd:9999");
}
