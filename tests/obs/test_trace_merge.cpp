// Merging per-process Chrome traces into one fleet timeline: pid
// remapping, process_name metadata injection, error reporting, and the
// text critical-path summary's root/heaviest-child walk.
#include "obs/trace_merge.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/minijson.hpp"

using namespace hsw;
namespace trace_merge = obs::trace_merge;

namespace {

/// One "X" span event with optional trace-context args.
std::string span_event(const std::string& name, double ts, double dur,
                       const std::string& trace_id = "",
                       const std::string& span_id = "",
                       const std::string& parent = "",
                       const std::string& label = "") {
    std::string ev = "{\"name\":\"" + name + "\",\"cat\":\"t\",\"ph\":\"X\"," +
                     "\"pid\":1,\"tid\":7,\"ts\":" + std::to_string(ts) +
                     ",\"dur\":" + std::to_string(dur) + ",\"args\":{";
    bool first = true;
    auto add = [&](const char* k, const std::string& v) {
        if (v.empty()) return;
        if (!first) ev += ',';
        first = false;
        ev += std::string{"\""} + k + "\":\"" + v + "\"";
    };
    add("trace_id", trace_id);
    add("span_id", span_id);
    add("parent_span_id", parent);
    add("label", label);
    ev += "}}";
    return ev;
}

std::string trace_doc(const std::vector<std::string>& events) {
    std::string doc = "{\"traceEvents\":[";
    for (std::size_t i = 0; i < events.size(); ++i) {
        if (i) doc += ',';
        doc += events[i];
    }
    doc += "]}";
    return doc;
}

}  // namespace

TEST(TraceMerge, EmptyInputMergesToValidEmptyTrace) {
    std::string out;
    std::string error;
    ASSERT_TRUE(trace_merge::merge_chrome_traces({}, out, &error)) << error;
    const auto doc = util::json::parse(out, &error);
    ASSERT_TRUE(doc.has_value()) << error;
    EXPECT_TRUE(doc->find("traceEvents")->as_array().empty());
}

TEST(TraceMerge, ProcessesGetDistinctPidsAndNameMetadata) {
    const std::vector<trace_merge::ProcessTrace> inputs = {
        {"router", trace_doc({span_event("router.route", 0, 100)})},
        {"shard0", trace_doc({span_event("server.request", 10, 80)})},
    };
    std::string out;
    ASSERT_TRUE(trace_merge::merge_chrome_traces(inputs, out, nullptr));

    const auto doc = util::json::parse(out, nullptr);
    ASSERT_TRUE(doc.has_value());
    const auto& events = doc->find("traceEvents")->as_array();
    // 2 metadata + 2 spans.
    ASSERT_EQ(events.size(), 4u);

    std::size_t metas = 0;
    for (const auto& ev : events) {
        if (ev.find("ph")->as_string() != "M") continue;
        ++metas;
        EXPECT_EQ(ev.find("name")->as_string(), "process_name");
        const double pid = ev.number_or("pid", -1);
        const std::string pname = ev.find("args")->find("name")->as_string();
        EXPECT_EQ(pname, pid == 1.0 ? "router" : "shard0");
    }
    EXPECT_EQ(metas, 2u);

    // Both span events were remapped away from their original pid 1.
    for (const auto& ev : events) {
        if (ev.find("ph")->as_string() != "X") continue;
        if (ev.find("name")->as_string() == "router.route") {
            EXPECT_EQ(ev.number_or("pid", -1), 1.0);
        } else {
            EXPECT_EQ(ev.number_or("pid", -1), 2.0);
        }
        // tid survives verbatim.
        EXPECT_EQ(ev.number_or("tid", -1), 7.0);
    }
}

TEST(TraceMerge, MalformedInputFailsWithSourceName) {
    const std::vector<trace_merge::ProcessTrace> inputs = {
        {"shard1", "not json at all"},
    };
    std::string out;
    std::string error;
    EXPECT_FALSE(trace_merge::merge_chrome_traces(inputs, out, &error));
    EXPECT_NE(error.find("shard1"), std::string::npos);
}

TEST(TraceMerge, MissingTraceEventsArrayFails) {
    const std::vector<trace_merge::ProcessTrace> inputs = {
        {"shard2", "{\"flight\":{}}"},
    };
    std::string out;
    std::string error;
    EXPECT_FALSE(trace_merge::merge_chrome_traces(inputs, out, &error));
    EXPECT_NE(error.find("shard2"), std::string::npos);
    EXPECT_NE(error.find("traceEvents"), std::string::npos);
}

TEST(TraceMerge, CriticalPathWalksHeaviestChildAcrossProcesses) {
    // One request: client root -> router span -> shard span, plus a
    // lighter sibling under the router that must NOT be on the path.
    const std::vector<trace_merge::ProcessTrace> inputs = {
        {"client", trace_doc({span_event("client.call", 0, 5000, "t1", "a")})},
        {"router",
         trace_doc({span_event("router.route", 100, 4000, "t1", "b", "a"),
                    span_event("router.misc", 100, 10, "t1", "c", "b")})},
        {"shard0", trace_doc({span_event("server.request", 200, 3500, "t1",
                                         "d", "b", "fig3")})},
    };
    std::string merged;
    ASSERT_TRUE(trace_merge::merge_chrome_traces(inputs, merged, nullptr));

    const std::string text = trace_merge::critical_path_summary(merged, 3);
    ASSERT_FALSE(text.empty());
    EXPECT_NE(text.find("trace t1  4 spans  root 5.000 ms"), std::string::npos);
    EXPECT_NE(text.find("client.call [client]"), std::string::npos);
    EXPECT_NE(text.find("router.route [router]"), std::string::npos);
    EXPECT_NE(text.find("server.request [shard0]"), std::string::npos);
    EXPECT_NE(text.find("fig3"), std::string::npos);
    // The heaviest-child walk took server.request over router.misc.
    EXPECT_EQ(text.find("router.misc"), std::string::npos);
    // Indentation reflects depth: the shard hop is nested two levels in.
    EXPECT_NE(text.find("      server.request"), std::string::npos);
}

TEST(TraceMerge, SlowestNOrdersAndTruncates) {
    const std::vector<trace_merge::ProcessTrace> inputs = {
        {"p", trace_doc({span_event("slow", 0, 9000, "t-slow", "s1"),
                         span_event("mid", 0, 5000, "t-mid", "m1"),
                         span_event("fast", 0, 1000, "t-fast", "f1")})},
    };
    std::string merged;
    ASSERT_TRUE(trace_merge::merge_chrome_traces(inputs, merged, nullptr));

    const std::string text = trace_merge::critical_path_summary(merged, 2);
    const auto slow_at = text.find("t-slow");
    const auto mid_at = text.find("t-mid");
    EXPECT_NE(slow_at, std::string::npos);
    EXPECT_NE(mid_at, std::string::npos);
    EXPECT_LT(slow_at, mid_at);
    EXPECT_EQ(text.find("t-fast"), std::string::npos);
}

TEST(TraceMerge, OrphanParentStillRootsTheTrace) {
    // The client's export was lost: the router span references a parent
    // that no collected process has. It must still become the root.
    const std::vector<trace_merge::ProcessTrace> inputs = {
        {"router",
         trace_doc({span_event("router.route", 0, 2000, "t9", "b", "gone")})},
    };
    std::string merged;
    ASSERT_TRUE(trace_merge::merge_chrome_traces(inputs, merged, nullptr));
    const std::string text = trace_merge::critical_path_summary(merged, 1);
    EXPECT_NE(text.find("trace t9"), std::string::npos);
    EXPECT_NE(text.find("router.route [router]"), std::string::npos);
}

TEST(TraceMerge, SpansWithoutTraceContextYieldEmptySummary) {
    const std::vector<trace_merge::ProcessTrace> inputs = {
        {"p", trace_doc({span_event("untagged", 0, 100)})},
    };
    std::string merged;
    ASSERT_TRUE(trace_merge::merge_chrome_traces(inputs, merged, nullptr));
    EXPECT_TRUE(trace_merge::critical_path_summary(merged, 3).empty());
}
