// Span tracing: ring-buffer behavior, the disabled contract, and Chrome
// trace-event JSON export validated with the strict minijson parser.
#include "obs/trace.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "util/minijson.hpp"

using namespace hsw;

namespace {

/// Tracing state is process-wide; bracket every test.
class ObsTraceTest : public ::testing::Test {
protected:
    void TearDown() override {
        obs::trace::disable();
        obs::trace::clear();
    }
};

/// Parses the export and returns the "X" (complete) events.
std::vector<util::json::Value> exported_spans(std::string* json_out = nullptr) {
    const std::string json = obs::trace::export_chrome_json();
    if (json_out) *json_out = json;
    std::string error;
    const auto doc = util::json::parse(json, &error);
    EXPECT_TRUE(doc.has_value()) << error << "\n" << json;
    std::vector<util::json::Value> spans;
    if (!doc || !doc->is_object()) return spans;
    const util::json::Value* events = doc->find("traceEvents");
    EXPECT_NE(events, nullptr);
    if (!events || !events->is_array()) return spans;
    for (const util::json::Value& ev : events->as_array()) {
        const util::json::Value* ph = ev.find("ph");
        if (ph && ph->is_string() && ph->as_string() == "X") spans.push_back(ev);
    }
    return spans;
}

}  // namespace

TEST_F(ObsTraceTest, DisabledSpanRecordsNothing) {
    ASSERT_FALSE(obs::trace::enabled());
    {
        obs::trace::Span span{"noop", "test"};
        EXPECT_FALSE(span.armed());
    }
    EXPECT_EQ(obs::trace::recorded_events(), 0u);
}

TEST_F(ObsTraceTest, SpanRecordsNameCategoryAndTiming) {
    obs::trace::enable();
    {
        obs::trace::Span span{"outer", "test"};
        ASSERT_TRUE(span.armed());
        span.set_label("fig3/point-1");
        span.set_sim_us(1234.5);
        span.set_events(42);
    }
    obs::trace::disable();

    std::string json;
    const auto spans = exported_spans(&json);
    ASSERT_EQ(spans.size(), 1u);
    const util::json::Value& ev = spans[0];
    EXPECT_EQ(ev.find("name")->as_string(), "outer");
    EXPECT_EQ(ev.find("cat")->as_string(), "test");
    EXPECT_EQ(ev.number_or("pid", -1), 1.0);
    EXPECT_GE(ev.number_or("ts", -1), 0.0);
    EXPECT_GE(ev.number_or("dur", -1), 0.0);
    const util::json::Value* args = ev.find("args");
    ASSERT_NE(args, nullptr);
    const util::json::Value* label = args->find("label");
    ASSERT_NE(label, nullptr);
    EXPECT_EQ(label->as_string(), "fig3/point-1");
    EXPECT_DOUBLE_EQ(args->number_or("sim_us", -1), 1234.5);
    EXPECT_DOUBLE_EQ(args->number_or("events", -1), 42.0);

    // Thread-name metadata rides along as an "M" event.
    EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
    EXPECT_NE(json.find("thread_name"), std::string::npos);
}

TEST_F(ObsTraceTest, OverlongLabelIsTruncatedNotCorrupted) {
    obs::trace::enable();
    const std::string longlabel(200, 'x');
    {
        obs::trace::Span span{"labelled", "test"};
        span.set_label(longlabel);
    }
    obs::trace::disable();
    const auto spans = exported_spans();
    ASSERT_EQ(spans.size(), 1u);
    const util::json::Value* args = spans[0].find("args");
    ASSERT_NE(args, nullptr);
    const util::json::Value* label = args->find("label");
    ASSERT_NE(label, nullptr);
    EXPECT_EQ(label->as_string(), std::string(39, 'x'));
}

TEST_F(ObsTraceTest, RingOverflowKeepsNewestAndCountsDrops) {
    obs::trace::enable(16);
    for (int i = 0; i < 100; ++i) {
        obs::trace::Span span{"churn", "test"};
    }
    obs::trace::disable();
    EXPECT_EQ(obs::trace::recorded_events(), 16u);
    EXPECT_EQ(obs::trace::dropped_events(), 84u);
    EXPECT_EQ(exported_spans().size(), 16u);
}

TEST_F(ObsTraceTest, ReEnableClearsPriorEvents) {
    obs::trace::enable();
    { obs::trace::Span span{"first", "test"}; }
    obs::trace::enable();
    { obs::trace::Span span{"second", "test"}; }
    obs::trace::disable();
    const auto spans = exported_spans();
    ASSERT_EQ(spans.size(), 1u);
    EXPECT_EQ(spans[0].find("name")->as_string(), "second");
}

TEST_F(ObsTraceTest, ClearDropsEverything) {
    obs::trace::enable();
    { obs::trace::Span span{"doomed", "test"}; }
    obs::trace::clear();
    EXPECT_EQ(obs::trace::recorded_events(), 0u);
    EXPECT_EQ(exported_spans().size(), 0u);
}

TEST_F(ObsTraceTest, MultiThreadedSpansGetDistinctTids) {
    obs::trace::enable();
    constexpr int kThreads = 4;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([] {
            for (int i = 0; i < 8; ++i) {
                obs::trace::Span span{"worker", "test"};
            }
        });
    }
    for (auto& t : threads) t.join();
    obs::trace::disable();

    const auto spans = exported_spans();
    ASSERT_EQ(spans.size(), static_cast<std::size_t>(kThreads * 8));
    std::vector<double> tids;
    for (const auto& ev : spans) {
        const double tid = ev.number_or("tid", -1);
        EXPECT_GE(tid, 0.0);
        bool seen = false;
        for (const double t : tids) seen = seen || t == tid;
        if (!seen) tids.push_back(tid);
    }
    EXPECT_EQ(tids.size(), static_cast<std::size_t>(kThreads));
}

TEST_F(ObsTraceTest, ExportWhileRecordingIsSafeAndParses) {
    obs::trace::enable();
    std::atomic<bool> stop{false};
    std::thread writer{[&] {
        while (!stop.load(std::memory_order_relaxed)) {
            obs::trace::Span span{"live", "test"};
        }
    }};
    for (int i = 0; i < 20; ++i) {
        std::string error;
        const auto doc = util::json::parse(obs::trace::export_chrome_json(), &error);
        EXPECT_TRUE(doc.has_value()) << error;
    }
    stop.store(true);
    writer.join();
}

TEST_F(ObsTraceTest, WriteChromeJsonRoundTripsThroughDisk) {
    obs::trace::enable();
    { obs::trace::Span span{"disk", "test"}; }
    obs::trace::disable();

    const std::string path =
        testing::TempDir() + "/hsw_trace_test_" + std::to_string(::getpid()) + ".json";
    ASSERT_TRUE(obs::trace::write_chrome_json(path));
    std::FILE* f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::string contents;
    char buf[4096];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) contents.append(buf, n);
    std::fclose(f);
    std::remove(path.c_str());

    EXPECT_EQ(contents, obs::trace::export_chrome_json());
    std::string error;
    EXPECT_TRUE(util::json::parse(contents, &error).has_value()) << error;
}

TEST_F(ObsTraceTest, WriteToUnwritablePathFails) {
    obs::trace::enable();
    obs::trace::disable();
    EXPECT_FALSE(obs::trace::write_chrome_json("/nonexistent-dir/trace.json"));
}

namespace {

/// args.<key> as a string, or "" when absent.
std::string arg_string(const util::json::Value& ev, const char* key) {
    const util::json::Value* args = ev.find("args");
    if (!args) return {};
    const util::json::Value* v = args->find(key);
    return v && v->is_string() ? v->as_string() : std::string{};
}

}  // namespace

TEST_F(ObsTraceTest, SpanWithoutContextExportsNoTraceIds) {
    obs::trace::enable();
    { obs::trace::Span span{"plain", "test"}; }
    obs::trace::disable();
    const auto spans = exported_spans();
    ASSERT_EQ(spans.size(), 1u);
    EXPECT_TRUE(arg_string(spans[0], "trace_id").empty());
    EXPECT_TRUE(arg_string(spans[0], "span_id").empty());
}

TEST_F(ObsTraceTest, NestedSpansFormOneTreeUnderTheContext) {
    obs::trace::enable();
    const auto root = obs::trace::make_root(true);
    ASSERT_TRUE(root.valid());
    ASSERT_TRUE(root.sampled());
    {
        obs::trace::ContextScope scope{root};
        obs::trace::Span outer{"outer", "test"};
        { obs::trace::Span inner{"inner", "test"}; }
    }
    // The scope restored the previous (empty) context on exit.
    EXPECT_FALSE(obs::trace::current_context().valid());
    obs::trace::disable();

    const auto spans = exported_spans();
    ASSERT_EQ(spans.size(), 2u);
    // Ring order: inner closed first.
    const util::json::Value& inner = spans[0];
    const util::json::Value& outer = spans[1];
    ASSERT_EQ(inner.find("name")->as_string(), "inner");
    ASSERT_EQ(outer.find("name")->as_string(), "outer");

    char want_trace[17];
    std::snprintf(want_trace, sizeof want_trace, "%016llx",
                  static_cast<unsigned long long>(root.trace_id));
    EXPECT_EQ(arg_string(outer, "trace_id"), want_trace);
    EXPECT_EQ(arg_string(inner, "trace_id"), want_trace);
    // The inner span parents to the outer span's id; the outer span has
    // no parent (the root context's span_id was 0).
    EXPECT_EQ(arg_string(inner, "parent_span_id"), arg_string(outer, "span_id"));
    EXPECT_TRUE(arg_string(outer, "parent_span_id").empty());
    EXPECT_NE(arg_string(inner, "span_id"), arg_string(outer, "span_id"));
}

TEST_F(ObsTraceTest, SpanContextAccessorMatchesExportedIds) {
    obs::trace::enable();
    const auto root = obs::trace::make_root(true);
    obs::trace::TraceContext seen;
    {
        obs::trace::ContextScope scope{root};
        obs::trace::Span span{"hop", "test"};
        seen = span.context();
        // While the span is open, the thread's context is re-scoped to it.
        EXPECT_EQ(obs::trace::current_context().span_id, seen.span_id);
    }
    obs::trace::disable();
    EXPECT_EQ(seen.trace_id, root.trace_id);
    EXPECT_NE(seen.span_id, 0u);

    const auto spans = exported_spans();
    ASSERT_EQ(spans.size(), 1u);
    char want[17];
    std::snprintf(want, sizeof want, "%016llx",
                  static_cast<unsigned long long>(seen.span_id));
    EXPECT_EQ(arg_string(spans[0], "span_id"), want);
}

TEST_F(ObsTraceTest, RetryAttemptIsExported) {
    obs::trace::enable();
    const auto root = obs::trace::make_root(true);
    {
        obs::trace::ContextScope scope{root};
        obs::trace::Span span{"upstream.call", "router"};
        span.set_retry(2);
    }
    obs::trace::disable();
    const auto spans = exported_spans();
    ASSERT_EQ(spans.size(), 1u);
    const util::json::Value* args = spans[0].find("args");
    ASSERT_NE(args, nullptr);
    EXPECT_EQ(args->number_or("retry", -1), 2.0);
}

TEST_F(ObsTraceTest, ForceCurrentSurvivesSpanExit) {
    // An error deep inside a request must mark the whole request as
    // force-kept: the flag set inside a child span outlives that span.
    obs::trace::enable();
    const auto root = obs::trace::make_root(false);
    {
        obs::trace::ContextScope scope{root};
        {
            obs::trace::Span span{"failing", "test"};
            obs::trace::force_current();
        }
        EXPECT_TRUE(obs::trace::current_context().forced());
        EXPECT_EQ(obs::trace::current_context().span_id, root.span_id);
    }
    obs::trace::disable();
}

TEST_F(ObsTraceTest, ContextPropagatesWithTracingDisabled) {
    // A process with span recording off still forwards the caller's
    // context to downstream hops (pure propagation).
    ASSERT_FALSE(obs::trace::enabled());
    const auto root = obs::trace::make_root(true);
    {
        obs::trace::ContextScope scope{root};
        obs::trace::Span span{"disarmed", "test"};
        EXPECT_FALSE(span.armed());
        // A disarmed span must not re-scope the context.
        EXPECT_EQ(obs::trace::current_context().span_id, root.span_id);
        EXPECT_EQ(obs::trace::current_context().trace_id, root.trace_id);
    }
    EXPECT_EQ(obs::trace::recorded_events(), 0u);
}

TEST_F(ObsTraceTest, NextIdIsNonZeroAndDistinct) {
    const auto a = obs::trace::next_id();
    const auto b = obs::trace::next_id();
    EXPECT_NE(a, 0u);
    EXPECT_NE(b, 0u);
    EXPECT_NE(a, b);
}
