// Fleet-side metrics plumbing: the JSON snapshot round trip, union
// merging across processes, and the labeled / fleet exposition formats
// the router serves to hsw_top --fleet.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

using hsw::obs::CounterSample;
using hsw::obs::GaugeSample;
using hsw::obs::HistogramSample;
using hsw::obs::merge_snapshots;
using hsw::obs::MetricsSnapshot;
using hsw::obs::parse_snapshot_json;
using hsw::obs::render_fleet_json;
using hsw::obs::render_fleet_prometheus;

namespace {

MetricsSnapshot sample_snapshot(std::uint64_t scale) {
    MetricsSnapshot snap;
    snap.counters.push_back({"requests", "", 7 * scale});
    snap.counters.push_back({"rejects", "", scale});
    snap.gauges.push_back({"queue_depth", "", static_cast<std::int64_t>(3 * scale)});
    HistogramSample h;
    h.name = "latency_ms";
    h.bounds = {1.0, 2.0, 4.0};
    h.counts = {5 * scale, 0, 2 * scale, scale};
    h.count = 8 * scale;
    h.sum = 13.5 * static_cast<double>(scale);
    snap.histograms.push_back(std::move(h));
    return snap;
}

}  // namespace

TEST(MetricsMergeTest, JsonSnapshotRoundTripIsLossless) {
    const MetricsSnapshot snap = sample_snapshot(1);
    std::string error;
    const auto parsed = parse_snapshot_json(snap.render_json(), &error);
    ASSERT_TRUE(parsed.has_value()) << error;

    ASSERT_EQ(parsed->counters.size(), 2u);
    EXPECT_EQ(parsed->find_counter("requests")->value, 7u);
    EXPECT_EQ(parsed->find_counter("rejects")->value, 1u);
    EXPECT_EQ(parsed->find_gauge("queue_depth")->value, 3);

    const auto* h = parsed->find_histogram("latency_ms");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->bounds, (std::vector<double>{1.0, 2.0, 4.0}));
    EXPECT_EQ(h->counts, (std::vector<std::uint64_t>{5, 0, 2, 1}));
    EXPECT_EQ(h->count, 8u);
    EXPECT_DOUBLE_EQ(h->sum, 13.5);
    // Buckets survived, so quantiles still work after the round trip.
    EXPECT_FALSE(std::isnan(h->p50()));
}

TEST(MetricsMergeTest, ParseRejectsMalformedSnapshots) {
    std::string error;
    EXPECT_FALSE(parse_snapshot_json("not json at all", &error).has_value());
    EXPECT_FALSE(error.empty());

    EXPECT_FALSE(parse_snapshot_json("[1,2,3]", &error).has_value());
    EXPECT_FALSE(parse_snapshot_json(R"({"counters":{"a":"NaN"}})", &error)
                     .has_value());
    // counts must be bounds+1 long (the +Inf bucket).
    EXPECT_FALSE(
        parse_snapshot_json(
            R"({"histograms":{"h":{"bounds":[1.0],"counts":[1],"count":1,"sum":1.0}}})",
            &error)
            .has_value());
    EXPECT_NE(error.find("histogram"), std::string::npos);
}

TEST(MetricsMergeTest, MergeSumsCountersGaugesAndCompatibleHistograms) {
    const std::vector<MetricsSnapshot> parts = {sample_snapshot(1),
                                                sample_snapshot(2)};
    const MetricsSnapshot merged = merge_snapshots(parts);

    EXPECT_EQ(merged.find_counter("requests")->value, 21u);
    EXPECT_EQ(merged.find_counter("rejects")->value, 3u);
    EXPECT_EQ(merged.find_gauge("queue_depth")->value, 9);

    const auto* h = merged.find_histogram("latency_ms");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->count, 24u);
    EXPECT_DOUBLE_EQ(h->sum, 40.5);
    EXPECT_EQ(h->counts, (std::vector<std::uint64_t>{15, 0, 6, 3}));
}

TEST(MetricsMergeTest, MergeIsUnionOverDisjointNames) {
    MetricsSnapshot a, b;
    a.counters.push_back({"only_a", "", 1});
    b.counters.push_back({"only_b", "", 2});
    const std::vector<MetricsSnapshot> parts = {a, b};
    const MetricsSnapshot merged = merge_snapshots(parts);
    ASSERT_EQ(merged.counters.size(), 2u);
    EXPECT_EQ(merged.find_counter("only_a")->value, 1u);
    EXPECT_EQ(merged.find_counter("only_b")->value, 2u);
}

TEST(MetricsMergeTest, IncompatibleHistogramBoundsDegradeToCountAndSum) {
    MetricsSnapshot a = sample_snapshot(1);
    MetricsSnapshot b = sample_snapshot(1);
    b.histograms[0].bounds = {10.0, 20.0, 40.0};  // different binning

    const std::vector<MetricsSnapshot> parts = {a, b};
    const MetricsSnapshot merged = merge_snapshots(parts);
    const auto* h = merged.find_histogram("latency_ms");
    ASSERT_NE(h, nullptr);
    // Exact aggregates survive; per-bucket detail is dropped, never
    // re-binned by guesswork.
    EXPECT_EQ(h->count, 16u);
    EXPECT_DOUBLE_EQ(h->sum, 27.0);
    EXPECT_TRUE(h->bounds.empty());
    EXPECT_TRUE(h->counts.empty());
    EXPECT_TRUE(std::isnan(h->quantile(0.5)));
}

TEST(MetricsMergeTest, LabeledPrometheusRenderTagsEverySample) {
    const MetricsSnapshot snap = sample_snapshot(1);
    const std::string text = snap.render_prometheus("shard=\"s0\"");
    EXPECT_NE(text.find("requests_total{shard=\"s0\"} 7"), std::string::npos)
        << text;
    EXPECT_NE(text.find("queue_depth{shard=\"s0\"} 3"), std::string::npos);
    // Histogram buckets compose the shard label with le.
    EXPECT_NE(text.find("latency_ms_bucket{shard=\"s0\",le=\"1\"} 5"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("latency_ms_count{shard=\"s0\"} 8"), std::string::npos);
}

TEST(MetricsMergeTest, FleetPrometheusEmitsMergedThenPerShardSeries) {
    const std::vector<std::pair<std::string, MetricsSnapshot>> shards = {
        {"s0", sample_snapshot(1)}, {"s1", sample_snapshot(2)}};
    std::vector<MetricsSnapshot> parts;
    for (const auto& [name, snap] : shards) parts.push_back(snap);
    const MetricsSnapshot merged = merge_snapshots(parts);

    const std::string text = render_fleet_prometheus(merged, shards);
    // One TYPE header per family even with three sample sets.
    std::size_t type_lines = 0, at = 0;
    while ((at = text.find("# TYPE requests counter", at)) !=
           std::string::npos) {
        ++type_lines;
        ++at;
    }
    EXPECT_EQ(type_lines, 1u);
    EXPECT_NE(text.find("requests_total 21"), std::string::npos) << text;
    EXPECT_NE(text.find("requests_total{shard=\"s0\"} 7"), std::string::npos);
    EXPECT_NE(text.find("requests_total{shard=\"s1\"} 14"), std::string::npos);
}

TEST(MetricsMergeTest, FleetJsonStaysParseableAsAPlainSnapshot) {
    const std::vector<std::pair<std::string, MetricsSnapshot>> shards = {
        {"s0", sample_snapshot(1)}, {"s1", sample_snapshot(2)}};
    std::vector<MetricsSnapshot> parts;
    for (const auto& [name, snap] : shards) parts.push_back(snap);
    const MetricsSnapshot merged = merge_snapshots(parts);

    const std::string doc = render_fleet_json(merged, shards);
    // Single-process consumers (hsw_top without --fleet) read the merged
    // top level and never notice the extra "shards" key.
    std::string error;
    const auto reparsed = parse_snapshot_json(doc, &error);
    ASSERT_TRUE(reparsed.has_value()) << error;
    EXPECT_EQ(reparsed->find_counter("requests")->value, 21u);
    // Fleet consumers find the per-shard breakdown.
    EXPECT_NE(doc.find("\"shards\":{\"s0\":{"), std::string::npos) << doc;
    EXPECT_NE(doc.find("\"s1\":{"), std::string::npos);
}
