// Access-log ring: enable/record/drain semantics, overwrite-oldest
// overflow accounting, the tail-based sampling policy, JSON formatting,
// and the background Writer's final-drain guarantee.
#include "obs/accesslog.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/ctx.hpp"
#include "util/minijson.hpp"

using namespace hsw;
namespace accesslog = obs::accesslog;

namespace {

/// Ring state is process-wide; bracket every test and restore the
/// keep-nothing default policy.
class AccessLogTest : public ::testing::Test {
protected:
    void SetUp() override {
        accesslog::set_enabled(false);
        accesslog::configure(64);
        accesslog::set_policy(0.0, 0);
        accesslog::set_identity("");
    }
    void TearDown() override {
        accesslog::set_enabled(false);
        accesslog::set_policy(0.0, 0);
        accesslog::set_identity("");
    }
};

accesslog::Record make_record(std::uint64_t trace_id = 0x1234) {
    accesslog::Record r;
    r.ts_ns = 1;
    r.trace_id = trace_id;
    r.micros = 250;
    r.retries = 0;
    accesslog::set_field(r.verb, "query");
    accesslog::set_field(r.spec, "fig3");
    accesslog::set_field(r.source, "hot");
    accesslog::set_field(r.shard, "shard0");
    accesslog::set_field(r.outcome, "ok");
    return r;
}

std::string read_file(const std::string& path) {
    std::ifstream in{path, std::ios::binary};
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

}  // namespace

TEST_F(AccessLogTest, DisabledRecordIsDropped) {
    ASSERT_FALSE(accesslog::enabled());
    accesslog::record(make_record());
    EXPECT_EQ(accesslog::recorded(), 0u);
    std::vector<accesslog::Record> out;
    accesslog::drain(out);
    EXPECT_TRUE(out.empty());
}

TEST_F(AccessLogTest, RecordDrainRoundTrips) {
    accesslog::set_enabled(true);
    accesslog::record(make_record(0xAB));
    accesslog::record(make_record(0xCD));
    EXPECT_EQ(accesslog::recorded(), 2u);

    std::vector<accesslog::Record> out;
    accesslog::drain(out);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].trace_id, 0xABu);
    EXPECT_EQ(out[1].trace_id, 0xCDu);
    EXPECT_STREQ(out[0].verb, "query");
    EXPECT_STREQ(out[0].outcome, "ok");

    // Everything consumed: a second drain is empty.
    out.clear();
    accesslog::drain(out);
    EXPECT_TRUE(out.empty());
}

TEST_F(AccessLogTest, OverflowOverwritesOldestAndCountsDrops) {
    accesslog::set_enabled(true);  // capacity 64 from SetUp
    for (std::uint64_t i = 0; i < 100; ++i) accesslog::record(make_record(i + 1));
    EXPECT_EQ(accesslog::dropped(), 36u);

    std::vector<accesslog::Record> out;
    accesslog::drain(out);
    ASSERT_EQ(out.size(), 64u);
    // Oldest-first, newest kept: ids 37..100.
    EXPECT_EQ(out.front().trace_id, 37u);
    EXPECT_EQ(out.back().trace_id, 100u);
}

TEST_F(AccessLogTest, TailNeverConsumes) {
    accesslog::set_enabled(true);
    for (std::uint64_t i = 0; i < 10; ++i) accesslog::record(make_record(i + 1));

    const auto newest = accesslog::tail(4);
    ASSERT_EQ(newest.size(), 4u);
    EXPECT_EQ(newest.front().trace_id, 7u);
    EXPECT_EQ(newest.back().trace_id, 10u);

    // The Writer's drain still sees all ten.
    std::vector<accesslog::Record> out;
    accesslog::drain(out);
    EXPECT_EQ(out.size(), 10u);
}

TEST_F(AccessLogTest, ReEnableResetsRingAndCounters) {
    accesslog::set_enabled(true);
    for (int i = 0; i < 100; ++i) accesslog::record(make_record());
    accesslog::set_enabled(false);
    accesslog::set_enabled(true);
    EXPECT_EQ(accesslog::recorded(), 0u);
    EXPECT_EQ(accesslog::dropped(), 0u);
}

TEST_F(AccessLogTest, PolicyKeepsErrorsSlownessAndRetriesRegardlessOfHead) {
    accesslog::set_policy(0.0, 1000);  // keep nothing at head; slow = 1ms
    const obs::trace::TraceContext untraced;
    EXPECT_FALSE(accesslog::should_log(untraced, false, 10, false));
    EXPECT_TRUE(accesslog::should_log(untraced, true, 10, false));    // error
    EXPECT_TRUE(accesslog::should_log(untraced, false, 5000, false)); // slow
    EXPECT_TRUE(accesslog::should_log(untraced, false, 10, true));    // retried
}

TEST_F(AccessLogTest, SampledContextWinsOverHeadFraction) {
    accesslog::set_policy(0.0, 0);
    obs::trace::TraceContext sampled;
    sampled.trace_id = 0x99;
    sampled.flags = obs::trace::kFlagSampled;
    EXPECT_TRUE(accesslog::should_log(sampled, false, 10, false));

    obs::trace::TraceContext unsampled;
    unsampled.trace_id = 0x99;
    EXPECT_FALSE(accesslog::should_log(unsampled, false, 10, false));

    // Keep-everything head policy keeps untraced requests too.
    accesslog::set_policy(1.0, 0);
    const obs::trace::TraceContext untraced;
    EXPECT_TRUE(accesslog::should_log(untraced, false, 10, false));
}

TEST_F(AccessLogTest, ForcedContextIsAlwaysKept) {
    accesslog::set_policy(0.0, 0);
    obs::trace::TraceContext forced;
    forced.trace_id = 0x77;
    forced.flags = obs::trace::kFlagForced;
    EXPECT_TRUE(accesslog::should_log(forced, false, 10, false));
}

TEST_F(AccessLogTest, FormatJsonIsStrictAndCarriesEveryField) {
    accesslog::set_identity("surveyd:7788");
    auto r = make_record(0xDEADBEEF);
    r.deadline_slack_us = 1500;
    r.retries = 2;
    const std::string line = accesslog::format_json(r);

    std::string error;
    const auto doc = util::json::parse(line, &error);
    ASSERT_TRUE(doc.has_value()) << error << "\n" << line;
    EXPECT_EQ(doc->find("trace_id")->as_string(), "00000000deadbeef");
    EXPECT_EQ(doc->number_or("us", -1), 250.0);
    EXPECT_EQ(doc->number_or("deadline_slack_us", -1), 1500.0);
    EXPECT_EQ(doc->number_or("retries", -1), 2.0);
    EXPECT_EQ(doc->find("verb")->as_string(), "query");
    EXPECT_EQ(doc->find("spec")->as_string(), "fig3");
    EXPECT_EQ(doc->find("source")->as_string(), "hot");
    EXPECT_EQ(doc->find("shard")->as_string(), "shard0");
    EXPECT_EQ(doc->find("outcome")->as_string(), "ok");
}

TEST_F(AccessLogTest, RecordStampsEmptyShardWithProcessIdentity) {
    accesslog::set_identity("router");
    accesslog::set_enabled(true);
    auto r = make_record();
    r.shard[0] = '\0';
    accesslog::record(r);
    std::vector<accesslog::Record> out;
    accesslog::drain(out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_STREQ(out[0].shard, "router");
}

TEST_F(AccessLogTest, NoDeadlineFormatsAsJsonNull) {
    auto r = make_record();  // deadline_slack_us stays kNoDeadline
    const std::string line = accesslog::format_json(r);
    const auto doc = util::json::parse(line, nullptr);
    ASSERT_TRUE(doc.has_value());
    const util::json::Value* slack = doc->find("deadline_slack_us");
    ASSERT_NE(slack, nullptr);
    EXPECT_TRUE(slack->is_null());
}

TEST_F(AccessLogTest, WriterDrainsEverythingOnStop) {
    const std::string path = testing::TempDir() + "/hsw_accesslog_test_" +
                             std::to_string(::getpid()) + ".jsonl";
    std::remove(path.c_str());

    accesslog::set_enabled(true);
    accesslog::Writer writer;
    ASSERT_TRUE(writer.start(path));
    for (std::uint64_t i = 0; i < 20; ++i) accesslog::record(make_record(i + 1));
    writer.stop();  // final drain: nothing may be lost

    const std::string contents = read_file(path);
    std::remove(path.c_str());
    std::istringstream lines{contents};
    std::string line;
    std::size_t count = 0;
    while (std::getline(lines, line)) {
        if (line.empty()) continue;
        std::string error;
        EXPECT_TRUE(util::json::parse(line, &error).has_value())
            << error << "\n" << line;
        ++count;
    }
    EXPECT_EQ(count, 20u);
}

TEST_F(AccessLogTest, WriterRefusesUnwritablePath) {
    accesslog::Writer writer;
    EXPECT_FALSE(writer.start("/nonexistent-dir/access.jsonl"));
    writer.stop();  // must be a safe no-op after a failed start
}
