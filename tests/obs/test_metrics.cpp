// Metrics registry: exact sharded merges under thread churn, rendering
// determinism, and the disabled-registry contract.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "util/minijson.hpp"

using namespace hsw;

namespace {

/// Every suite runs against the same process-wide registry, so each test
/// enables, zeroes, and disables around its body.
class ObsMetricsTest : public ::testing::Test {
protected:
    void SetUp() override {
        obs::set_metrics_enabled(true);
        obs::zero_all_metrics();
    }
    void TearDown() override {
        obs::zero_all_metrics();
        obs::set_metrics_enabled(false);
    }
};

}  // namespace

TEST_F(ObsMetricsTest, CounterMergesShardsExactly) {
    obs::Counter& c = obs::counter("test_exact_counter", "test");
    constexpr unsigned kThreads = 8;
    constexpr std::uint64_t kIncsPerThread = 50'000;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&c] {
            for (std::uint64_t i = 0; i < kIncsPerThread; ++i) c.inc();
        });
    }
    for (auto& t : threads) t.join();

    EXPECT_EQ(c.value(), kThreads * kIncsPerThread);
    const obs::MetricsSnapshot snap = obs::snapshot_metrics();
    const obs::CounterSample* sample = snap.find_counter("test_exact_counter");
    ASSERT_NE(sample, nullptr);
    EXPECT_EQ(sample->value, kThreads * kIncsPerThread);
}

TEST_F(ObsMetricsTest, ReRegistrationReturnsTheSameInstrument) {
    obs::Counter& a = obs::counter("test_reregister", "first help wins");
    obs::Counter& b = obs::counter("test_reregister", "ignored");
    EXPECT_EQ(&a, &b);
    a.inc(3);
    EXPECT_EQ(b.value(), 3u);

    const obs::MetricsSnapshot snap = obs::snapshot_metrics();
    const obs::CounterSample* sample = snap.find_counter("test_reregister");
    ASSERT_NE(sample, nullptr);
    EXPECT_EQ(sample->help, "first help wins");
}

TEST_F(ObsMetricsTest, KindCollisionThrows) {
    (void)obs::counter("test_kind_collision");
    EXPECT_THROW((void)obs::gauge("test_kind_collision"), std::logic_error);
    const std::vector<double> bounds{1.0};
    EXPECT_THROW((void)obs::histogram("test_kind_collision", bounds),
                 std::logic_error);
}

TEST_F(ObsMetricsTest, DisabledRegistryDropsEverySample) {
    obs::Counter& c = obs::counter("test_disabled_counter");
    obs::Gauge& g = obs::gauge("test_disabled_gauge");
    const std::vector<double> bounds{1.0, 10.0};
    obs::Histogram& h = obs::histogram("test_disabled_histogram", bounds);

    obs::set_metrics_enabled(false);
    c.inc(100);
    g.set(42);
    h.record(5.0);
    obs::set_metrics_enabled(true);

    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(g.value(), 0);
    EXPECT_EQ(h.count(), 0u);
}

TEST_F(ObsMetricsTest, GaugeSetAndAdd) {
    obs::Gauge& g = obs::gauge("test_gauge");
    g.set(10);
    g.add(5);
    g.add(-8);
    EXPECT_EQ(g.value(), 7);
}

TEST_F(ObsMetricsTest, HistogramBucketsAndQuantiles) {
    const std::vector<double> bounds{1.0, 2.0, 4.0, 8.0};
    obs::Histogram& h = obs::histogram("test_histogram_q", bounds);
    // 100 samples uniform over (0, 10]: 10 per le=1, 10 more per le=2, ...
    for (int i = 1; i <= 100; ++i) h.record(i / 10.0);

    EXPECT_EQ(h.count(), 100u);
    EXPECT_NEAR(h.sum(), 505.0, 0.01);

    const obs::MetricsSnapshot snap = obs::snapshot_metrics();
    const obs::HistogramSample* s = snap.find_histogram("test_histogram_q");
    ASSERT_NE(s, nullptr);
    ASSERT_EQ(s->counts.size(), bounds.size() + 1);
    EXPECT_EQ(s->counts[0], 10u);  // (0, 1]
    EXPECT_EQ(s->counts[1], 10u);  // (1, 2]
    EXPECT_EQ(s->counts[2], 20u);  // (2, 4]
    EXPECT_EQ(s->counts[3], 40u);  // (4, 8]
    EXPECT_EQ(s->counts[4], 20u);  // (8, +Inf)

    // Interpolated estimates track the uniform distribution.
    EXPECT_NEAR(s->quantile(0.10), 1.0, 0.15);
    EXPECT_NEAR(s->p50(), 5.0, 0.5);
    // Rank 90+ lands in the +Inf bucket, which clamps to the last edge.
    EXPECT_DOUBLE_EQ(s->p99(), 8.0);
}

TEST_F(ObsMetricsTest, EmptyHistogramQuantileIsNaN) {
    const std::vector<double> bounds{1.0};
    (void)obs::histogram("test_histogram_empty", bounds);
    const obs::MetricsSnapshot snap = obs::snapshot_metrics();
    const obs::HistogramSample* s = snap.find_histogram("test_histogram_empty");
    ASSERT_NE(s, nullptr);
    EXPECT_TRUE(std::isnan(s->p50()));
}

TEST_F(ObsMetricsTest, ExponentialBoundsGrowGeometrically) {
    const std::vector<double> b = obs::exponential_bounds(0.5, 2.0, 4);
    ASSERT_EQ(b.size(), 4u);
    EXPECT_DOUBLE_EQ(b[0], 0.5);
    EXPECT_DOUBLE_EQ(b[1], 1.0);
    EXPECT_DOUBLE_EQ(b[2], 2.0);
    EXPECT_DOUBLE_EQ(b[3], 4.0);
}

TEST_F(ObsMetricsTest, PrometheusRenderingIsSortedAndWellFormed) {
    obs::counter("test_render_b", "second").inc(2);
    obs::counter("test_render_a", "first").inc(1);
    obs::gauge("test_render_gauge").set(-7);
    const std::vector<double> bounds{1.0, 10.0};
    obs::Histogram& h = obs::histogram("test_render_hist", bounds);
    h.record(0.5);
    h.record(5.0);
    h.record(50.0);

    const std::string text = obs::render_prometheus();
    // Counters gain the _total suffix; registry order is sorted by name.
    const std::size_t pos_a = text.find("test_render_a_total 1");
    const std::size_t pos_b = text.find("test_render_b_total 2");
    ASSERT_NE(pos_a, std::string::npos) << text;
    ASSERT_NE(pos_b, std::string::npos);
    EXPECT_LT(pos_a, pos_b);
    EXPECT_NE(text.find("# TYPE test_render_a counter"), std::string::npos);
    EXPECT_NE(text.find("# HELP test_render_a first"), std::string::npos);
    EXPECT_NE(text.find("test_render_gauge -7"), std::string::npos);
    // Histogram buckets are cumulative and end at +Inf == _count.
    EXPECT_NE(text.find("test_render_hist_bucket{le=\"1\"} 1"), std::string::npos);
    EXPECT_NE(text.find("test_render_hist_bucket{le=\"10\"} 2"), std::string::npos);
    EXPECT_NE(text.find("test_render_hist_bucket{le=\"+Inf\"} 3"), std::string::npos);
    EXPECT_NE(text.find("test_render_hist_count 3"), std::string::npos);

    // Deterministic: two renders of the same state are byte-identical.
    EXPECT_EQ(text, obs::render_prometheus());
}

TEST_F(ObsMetricsTest, JsonRenderingParsesAndCarriesValues) {
    obs::counter("test_json_counter").inc(41);
    obs::gauge("test_json_gauge").set(13);
    const std::vector<double> bounds{1.0, 2.0};
    obs::Histogram& h = obs::histogram("test_json_hist", bounds);
    h.record(0.5);
    h.record(1.5);

    std::string error;
    const auto doc = util::json::parse(obs::render_json(), &error);
    ASSERT_TRUE(doc.has_value()) << error;
    ASSERT_TRUE(doc->is_object());

    const util::json::Value* counters = doc->find("counters");
    ASSERT_NE(counters, nullptr);
    EXPECT_DOUBLE_EQ(counters->number_or("test_json_counter", -1), 41.0);

    const util::json::Value* gauges = doc->find("gauges");
    ASSERT_NE(gauges, nullptr);
    EXPECT_DOUBLE_EQ(gauges->number_or("test_json_gauge", -1), 13.0);

    const util::json::Value* hists = doc->find("histograms");
    ASSERT_NE(hists, nullptr);
    const util::json::Value* hist = hists->find("test_json_hist");
    ASSERT_NE(hist, nullptr);
    EXPECT_DOUBLE_EQ(hist->number_or("count", -1), 2.0);
    const util::json::Value* counts = hist->find("counts");
    ASSERT_NE(counts, nullptr);
    ASSERT_TRUE(counts->is_array());
    EXPECT_EQ(counts->as_array().size(), 3u);
}

TEST_F(ObsMetricsTest, SnapshotUnderConcurrentWritersIsConsistent) {
    // Not an exactness check (writers are live), just TSan fodder plus a
    // monotonicity guarantee: later snapshots never show smaller values.
    obs::Counter& c = obs::counter("test_concurrent_snapshot");
    std::atomic<bool> stop{false};
    std::vector<std::thread> writers;
    writers.reserve(4);
    for (int t = 0; t < 4; ++t) {
        writers.emplace_back([&] {
            while (!stop.load(std::memory_order_relaxed)) c.inc();
        });
    }
    std::uint64_t last = 0;
    for (int i = 0; i < 50; ++i) {
        const obs::MetricsSnapshot snap = obs::snapshot_metrics();
        const obs::CounterSample* s = snap.find_counter("test_concurrent_snapshot");
        ASSERT_NE(s, nullptr);
        EXPECT_GE(s->value, last);
        last = s->value;
    }
    stop.store(true);
    for (auto& t : writers) t.join();
    EXPECT_EQ(c.value(), obs::snapshot_metrics().find_counter("test_concurrent_snapshot")->value);
}
