#include <gtest/gtest.h>

#include "power/vf_curve.hpp"

namespace hsw::power {
namespace {

using util::Frequency;
using util::Voltage;

TEST(VfCurve, VoltageIncreasesWithFrequency) {
    const VfCurve c = VfCurve::core_curve(1);
    double prev = 0.0;
    for (double f = 1.2; f <= 3.3; f += 0.1) {
        const double v = c.voltage_for(Frequency::ghz(f)).as_volts();
        EXPECT_GT(v, prev);
        prev = v;
    }
}

TEST(VfCurve, VoltageInPlausibleRange) {
    const VfCurve c = VfCurve::core_curve(1);
    EXPECT_GT(c.voltage_for(Frequency::ghz(1.2)).as_volts(), 0.6);
    EXPECT_LT(c.voltage_for(Frequency::ghz(3.3)).as_volts(), 1.3);
}

TEST(VfCurve, Socket0NeedsMoreVoltage) {
    // Section III: the first processor's cores run at higher voltage.
    const VfCurve s0 = VfCurve::core_curve(0);
    const VfCurve s1 = VfCurve::core_curve(1);
    for (double f = 1.2; f <= 3.0; f += 0.3) {
        EXPECT_GT(s0.voltage_for(Frequency::ghz(f)).as_volts(),
                  s1.voltage_for(Frequency::ghz(f)).as_volts());
    }
}

TEST(VfCurve, InverseMapRoundTrips) {
    const VfCurve core = VfCurve::core_curve(0);
    const VfCurve uncore = VfCurve::uncore_curve(0);
    for (double f = 1.2; f <= 3.0; f += 0.2) {
        const Voltage v = core.voltage_for(Frequency::ghz(f));
        EXPECT_NEAR(core.frequency_for(v).as_ghz(), f, 1e-9);
        const Voltage vu = uncore.voltage_for(Frequency::ghz(f));
        EXPECT_NEAR(uncore.frequency_for(vu).as_ghz(), f, 1e-9);
    }
}

TEST(VfCurve, UncoreCurveFlatterThanCore) {
    const VfCurve core = VfCurve::core_curve(1);
    const VfCurve uncore = VfCurve::uncore_curve(1);
    const double dc = core.voltage_for(Frequency::ghz(3.0)).as_volts() -
                      core.voltage_for(Frequency::ghz(1.2)).as_volts();
    const double du = uncore.voltage_for(Frequency::ghz(3.0)).as_volts() -
                      uncore.voltage_for(Frequency::ghz(1.2)).as_volts();
    EXPECT_GT(dc, du);
}

TEST(VfCurve, InverseBelowCurveMinimumIsClamped) {
    const VfCurve c = VfCurve::core_curve(1);
    EXPECT_LE(c.frequency_for(Voltage::volts(0.0)).as_ghz(), 0.0);
}

}  // namespace
}  // namespace hsw::power
