#include <gtest/gtest.h>

#include "power/fivr.hpp"
#include "power/mbvr.hpp"

namespace hsw::power {
namespace {

using util::Power;
using util::Time;
using util::Voltage;

TEST(Fivr, ConversionLossMatchesEfficiency) {
    Fivr fivr{Voltage::volts(0.9), 0.90};
    const Power load = Power::watts(90);
    EXPECT_NEAR(fivr.input_power(load).as_watts(), 100.0, 1e-9);
    EXPECT_NEAR(fivr.conversion_loss(load).as_watts(), 10.0, 1e-9);
    EXPECT_EQ(fivr.input_power(Power::zero()).as_watts(), 0.0);
}

TEST(Fivr, RampTimeProportionalToDelta) {
    Fivr fivr{Voltage::volts(0.80), 0.90, 5000.0};
    const Time t1 = fivr.set_voltage(Voltage::volts(0.85));  // 50 mV
    EXPECT_NEAR(t1.as_us(), 10.0, 0.1);
    const Time t2 = fivr.set_voltage(Voltage::volts(0.95));  // 100 mV
    EXPECT_NEAR(t2.as_us(), 20.0, 0.1);
    EXPECT_DOUBLE_EQ(fivr.output_voltage().as_volts(), 0.95);
}

TEST(Fivr, PowerGatingCollapsesOutput) {
    Fivr fivr{Voltage::volts(0.9)};
    EXPECT_FALSE(fivr.gated());
    fivr.gate();
    EXPECT_TRUE(fivr.gated());
    EXPECT_DOUBLE_EQ(fivr.output_voltage().as_volts(), 0.0);
}

TEST(Mbvr, ThreeLanesOnly) {
    // Section II-B: three voltage lanes on Haswell vs five before.
    EXPECT_EQ(Mbvr::kLaneCount, 3u);
}

TEST(Mbvr, SvidControlsLanes) {
    Mbvr mbvr;
    EXPECT_NEAR(mbvr.lane_voltage(MbvrLane::VccIn).as_volts(), 1.8, 1e-9);
    mbvr.svid_set_voltage(MbvrLane::VccIn, Voltage::volts(1.7));
    EXPECT_NEAR(mbvr.lane_voltage(MbvrLane::VccIn).as_volts(), 1.7, 1e-9);
    // DRAM lanes default to DDR4 VDD.
    EXPECT_NEAR(mbvr.lane_voltage(MbvrLane::Vccd01).as_volts(), 1.2, 1e-9);
    EXPECT_NEAR(mbvr.lane_voltage(MbvrLane::Vccd23).as_volts(), 1.2, 1e-9);
}

TEST(Mbvr, PowerStateFollowsEstimatedLoad) {
    Mbvr mbvr;
    mbvr.update_estimated_load(Power::watts(5));
    EXPECT_EQ(mbvr.power_state(), MbvrPowerState::PS2);
    mbvr.update_estimated_load(Power::watts(30));
    EXPECT_EQ(mbvr.power_state(), MbvrPowerState::PS1);
    mbvr.update_estimated_load(Power::watts(150));
    EXPECT_EQ(mbvr.power_state(), MbvrPowerState::PS0);
}

TEST(Mbvr, HeavyLoadStateIsMostEfficient) {
    Mbvr mbvr;
    const Power load = Power::watts(100);
    mbvr.update_estimated_load(Power::watts(150));
    const double loss_ps0 = mbvr.conversion_loss(load).as_watts();
    mbvr.update_estimated_load(Power::watts(5));
    const double loss_ps2 = mbvr.conversion_loss(load).as_watts();
    EXPECT_LT(loss_ps0, loss_ps2);
}

}  // namespace
}  // namespace hsw::power
