#include <gtest/gtest.h>

#include "power/power_model.hpp"
#include "power/psu.hpp"
#include "power/thermal.hpp"

namespace hsw::power {
namespace {

using util::Bandwidth;
using util::Frequency;
using util::Power;
using util::Time;
using util::Voltage;

TEST(PowerModel, GatedCoreConsumesNothing) {
    const CoreActivity gated{.cdyn_utilization = 1.0, .clock_running = false,
                             .power_gated = true};
    EXPECT_EQ(core_power(gated, Voltage::volts(1.0), Frequency::ghz(2.5)).as_watts(), 0.0);
}

TEST(PowerModel, IdleCoreLeaksOnly) {
    const CoreActivity idle{.cdyn_utilization = 0.0, .clock_running = false,
                            .power_gated = false};
    const double leak = core_power(idle, Voltage::volts(0.9), Frequency::ghz(2.5)).as_watts();
    EXPECT_GT(leak, 0.0);
    EXPECT_LT(leak, 1.0);
    // Leakage scales with V^2, not with frequency.
    EXPECT_DOUBLE_EQ(
        core_power(idle, Voltage::volts(0.9), Frequency::ghz(1.2)).as_watts(), leak);
}

TEST(PowerModel, DynamicPowerScalesWithV2F) {
    const CoreActivity busy{.cdyn_utilization = 1.0, .clock_running = true,
                            .power_gated = false};
    const CoreActivity idle{.cdyn_utilization = 0.0, .clock_running = false,
                            .power_gated = false};
    auto dyn = [&](double v, double f) {
        return core_power(busy, Voltage::volts(v), Frequency::ghz(f)).as_watts() -
               core_power(idle, Voltage::volts(v), Frequency::ghz(f)).as_watts();
    };
    // Doubling frequency doubles dynamic power.
    EXPECT_NEAR(dyn(1.0, 2.0), 2.0 * dyn(1.0, 1.0), 1e-9);
    // Doubling voltage quadruples dynamic power.
    EXPECT_NEAR(dyn(1.0, 2.0), 4.0 * dyn(0.5, 2.0), 1e-9);
}

TEST(PowerModel, UncorePowerHasIdleFloor) {
    const double idle = uncore_power(0.0, Voltage::volts(0.9), Frequency::ghz(3.0)).as_watts();
    const double full = uncore_power(1.0, Voltage::volts(0.9), Frequency::ghz(3.0)).as_watts();
    EXPECT_GT(idle, 0.0);
    EXPECT_GT(full, idle);
    EXPECT_LT(idle, full * 0.5);
    // Utilization clamps.
    EXPECT_DOUBLE_EQ(
        uncore_power(2.0, Voltage::volts(0.9), Frequency::ghz(3.0)).as_watts(), full);
    EXPECT_DOUBLE_EQ(
        uncore_power(-1.0, Voltage::volts(0.9), Frequency::ghz(3.0)).as_watts(), idle);
}

TEST(PowerModel, DramPowerBackgroundPlusBandwidth) {
    const double idle = dram_power(Bandwidth::gb_per_sec(0)).as_watts();
    const double busy = dram_power(Bandwidth::gb_per_sec(50)).as_watts();
    EXPECT_GT(idle, 3.0);
    EXPECT_NEAR(busy - idle, 0.35 * 50, 1e-9);
}

TEST(Thermal, ApproachesSteadyState) {
    ThermalModel t;
    const Power load = Power::watts(120);
    const double target = t.steady_state_celsius(load);
    for (int i = 0; i < 600; ++i) t.advance(load, Time::sec(1));
    EXPECT_NEAR(t.temperature_celsius(), target, 0.5);
}

TEST(Thermal, CoolsBackDown) {
    ThermalModel t;
    for (int i = 0; i < 600; ++i) t.advance(Power::watts(120), Time::sec(1));
    const double hot = t.temperature_celsius();
    for (int i = 0; i < 600; ++i) t.advance(Power::zero(), Time::sec(1));
    EXPECT_LT(t.temperature_celsius(), hot);
    EXPECT_NEAR(t.temperature_celsius(), t.steady_state_celsius(Power::zero()), 0.5);
}

TEST(Thermal, HotFlagNearTjMax) {
    ThermalModel t;
    t.reset(ThermalModel::kTjMax - 1.0);
    EXPECT_TRUE(t.hot());
    t.reset(40.0);
    EXPECT_FALSE(t.hot());
}

TEST(AcModel, HaswellMatchesPaperQuadratic) {
    // Footnote 2: P_AC = 0.0003 R^2 + 1.097 R + 225.7.
    const NodeAcModel ac{arch::Generation::HaswellEP};
    EXPECT_NEAR(ac.ac_power(Power::watts(0)).as_watts(), 225.7, 1e-9);
    EXPECT_NEAR(ac.ac_power(Power::watts(100)).as_watts(),
                0.0003 * 1e4 + 1.097 * 100 + 225.7, 1e-9);
    EXPECT_NEAR(ac.ac_power(Power::watts(283)).as_watts(), 560.0, 2.0);
}

TEST(AcModel, InverseRoundTrips) {
    const NodeAcModel ac{arch::Generation::HaswellEP};
    for (double r = 20; r <= 300; r += 40) {
        const Power fwd = ac.ac_power(Power::watts(r));
        EXPECT_NEAR(ac.rapl_power_for_ac(fwd).as_watts(), r, 1e-6);
    }
}

TEST(AcModel, SandyBridgeNodeHasLowerOverhead) {
    const NodeAcModel snb{arch::Generation::SandyBridgeEP};
    const NodeAcModel hsw{arch::Generation::HaswellEP};
    EXPECT_LT(snb.ac_power(Power::watts(0)).as_watts(),
              hsw.ac_power(Power::watts(0)).as_watts());
}

}  // namespace
}  // namespace hsw::power
