#include <gtest/gtest.h>

#include "util/rng.hpp"
#include "util/stats.hpp"

#include <vector>

namespace hsw::util {
namespace {

TEST(Rng, DeterministicReplay) {
    Rng a{42};
    Rng b{42};
    for (int i = 0; i < 1000; ++i) {
        ASSERT_EQ(a.next_u64(), b.next_u64());
    }
}

TEST(Rng, DifferentSeedsDiffer) {
    Rng a{1};
    Rng b{2};
    int equal = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next_u64() == b.next_u64()) ++equal;
    }
    EXPECT_EQ(equal, 0);
}

TEST(Rng, UniformRange) {
    Rng rng{7};
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
    }
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform(3.0, 5.0);
        ASSERT_GE(u, 3.0);
        ASSERT_LT(u, 5.0);
    }
}

TEST(Rng, UniformMeanAndSpread) {
    Rng rng{11};
    std::vector<double> xs;
    xs.reserve(20000);
    for (int i = 0; i < 20000; ++i) xs.push_back(rng.uniform());
    EXPECT_NEAR(mean(xs), 0.5, 0.01);
    EXPECT_NEAR(stddev(xs), 1.0 / std::sqrt(12.0), 0.01);
}

TEST(Rng, UniformU64Unbiased) {
    Rng rng{13};
    std::vector<int> counts(10, 0);
    for (int i = 0; i < 50000; ++i) {
        ++counts[rng.uniform_u64(10)];
    }
    for (int c : counts) {
        EXPECT_NEAR(c, 5000, 350);
    }
}

TEST(Rng, NormalMoments) {
    Rng rng{17};
    std::vector<double> xs;
    xs.reserve(50000);
    for (int i = 0; i < 50000; ++i) xs.push_back(rng.normal(10.0, 2.0));
    EXPECT_NEAR(mean(xs), 10.0, 0.05);
    EXPECT_NEAR(stddev(xs), 2.0, 0.05);
}

TEST(Rng, ForkIndependentStreams) {
    Rng parent{23};
    Rng c1 = parent.fork(1);
    Rng c2 = parent.fork(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i) {
        if (c1.next_u64() == c2.next_u64()) ++equal;
    }
    EXPECT_EQ(equal, 0);
}

TEST(SplitMix64, KnownSequenceIsStable) {
    SplitMix64 sm{0};
    const std::uint64_t first = sm.next();
    SplitMix64 sm2{0};
    EXPECT_EQ(sm2.next(), first);
    EXPECT_NE(sm.next(), first);
}

TEST(Rng, DeriveIsAPureFunctionOfBaseAndLabel) {
    EXPECT_EQ(Rng::derive(42, "fig4/simultaneity"), Rng::derive(42, "fig4/simultaneity"));
    EXPECT_NE(Rng::derive(42, "fig4/simultaneity"), Rng::derive(43, "fig4/simultaneity"));
    EXPECT_NE(Rng::derive(42, "fig4/simultaneity"), Rng::derive(42, "engine/job-seed"));
    // Not the identity and not trivially related to the base.
    EXPECT_NE(Rng::derive(42, "x"), 42u);
    EXPECT_NE(Rng::derive(42, "x"), Rng::derive(42, "y"));
}

TEST(Rng, DeriveIsUsableAtCompileTime) {
    constexpr std::uint64_t at_compile_time = Rng::derive(7, "label");
    EXPECT_EQ(at_compile_time, Rng::derive(7, "label"));
}

TEST(Rng, SplitGivesIndependentDeterministicStreams) {
    Rng parent{99};
    Rng a = parent.split("alpha");
    Rng b = parent.split("beta");
    Rng a_again = parent.split("alpha");

    int equal_ab = 0;
    for (int i = 0; i < 100; ++i) {
        const std::uint64_t va = a.next_u64();
        ASSERT_EQ(va, a_again.next_u64());  // same label -> same stream
        if (va == b.next_u64()) ++equal_ab;
    }
    EXPECT_EQ(equal_ab, 0);  // different labels -> unrelated streams
}

TEST(Rng, SplitDoesNotPerturbTheParent) {
    Rng a{5};
    Rng b{5};
    (void)a.split("child");
    for (int i = 0; i < 10; ++i) ASSERT_EQ(a.next_u64(), b.next_u64());
}

}  // namespace
}  // namespace hsw::util
