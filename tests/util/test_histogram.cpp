#include <gtest/gtest.h>

#include "util/histogram.hpp"
#include "util/stats.hpp"

#include <stdexcept>
#include <vector>

namespace hsw::util {
namespace {

TEST(Histogram, BinAssignment) {
    Histogram h{0.0, 100.0, 10};
    h.add(5.0);    // bin 0
    h.add(15.0);   // bin 1
    h.add(99.9);   // bin 9
    h.add(10.0);   // exactly on the edge -> bin 1
    EXPECT_EQ(h.count(0), 1u);
    EXPECT_EQ(h.count(1), 2u);
    EXPECT_EQ(h.count(9), 1u);
    EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, UnderflowOverflowClampIntoEdgeBins) {
    Histogram h{0.0, 10.0, 5};
    h.add(-1.0);
    h.add(42.0);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.count(0), 1u);
    EXPECT_EQ(h.count(4), 1u);
}

TEST(Histogram, BinEdgesAndCenters) {
    Histogram h{10.0, 20.0, 5};
    EXPECT_DOUBLE_EQ(h.bin_lo(0), 10.0);
    EXPECT_DOUBLE_EQ(h.bin_hi(0), 12.0);
    EXPECT_DOUBLE_EQ(h.bin_center(2), 15.0);
}

TEST(Histogram, ModeBin) {
    Histogram h{0.0, 30.0, 3};
    h.add_all(std::vector<double>{1, 11, 12, 13, 21});
    EXPECT_EQ(h.mode_bin(), 1u);
}

TEST(Histogram, FractionIn) {
    Histogram h{0.0, 100.0, 10};
    h.add_all(std::vector<double>{10, 20, 30, 40});
    EXPECT_DOUBLE_EQ(h.fraction_in(0.0, 25.0), 0.5);
    EXPECT_DOUBLE_EQ(h.fraction_in(90.0, 100.0), 0.0);
}

TEST(Histogram, RenderContainsBars) {
    Histogram h{0.0, 10.0, 2};
    h.add(1.0);
    h.add(1.5);
    h.add(7.0);
    const std::string s = h.render(10);
    EXPECT_NE(s.find('#'), std::string::npos);
    EXPECT_NE(s.find("2 |"), std::string::npos);
}

TEST(Histogram, QuantilesMatchUtilQuantileOnRawSamples) {
    Histogram h{0.0, 100.0, 10};
    std::vector<double> xs;
    for (int i = 1; i <= 99; ++i) xs.push_back(static_cast<double>(i));
    h.add_all(xs);
    EXPECT_DOUBLE_EQ(h.quantile(0.50), quantile(xs, 0.50));
    EXPECT_DOUBLE_EQ(h.p50(), quantile(xs, 0.50));
    EXPECT_DOUBLE_EQ(h.p90(), quantile(xs, 0.90));
    EXPECT_DOUBLE_EQ(h.p99(), quantile(xs, 0.99));
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 99.0);
}

TEST(Histogram, QuantileOfEmptyHistogramIsZero) {
    Histogram h{0.0, 10.0, 2};
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

TEST(Histogram, InvalidConstruction) {
    EXPECT_THROW(Histogram(0.0, 10.0, 0), std::invalid_argument);
    EXPECT_THROW(Histogram(10.0, 10.0, 5), std::invalid_argument);
    EXPECT_THROW(Histogram(10.0, 0.0, 5), std::invalid_argument);
}

}  // namespace
}  // namespace hsw::util
