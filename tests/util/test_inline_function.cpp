#include <gtest/gtest.h>

#include <cstddef>
#include <functional>
#include <memory>
#include <utility>

#include "util/inline_function.hpp"

namespace hsw::util {
namespace {

using Fn = InlineFunction<int(int), 48>;

/// A callable padded to exactly `Bytes` bytes (Bytes >= sizeof(int)).
template <std::size_t Bytes>
struct Padded {
    int base = 0;
    unsigned char pad[Bytes - sizeof(int)] = {};
    int operator()(int x) const { return base + x; }
};

TEST(InlineFunction, InvokesAndForwardsArguments) {
    Fn f{[](int x) { return x * 2; }};
    EXPECT_TRUE(static_cast<bool>(f));
    EXPECT_EQ(f(21), 42);
}

TEST(InlineFunction, EmptyThrowsBadFunctionCall) {
    Fn f;
    EXPECT_FALSE(static_cast<bool>(f));
    EXPECT_THROW(f(1), std::bad_function_call);
}

TEST(InlineFunction, CaptureAtExactBudgetStaysInline) {
    static_assert(Fn::fits_inline<Padded<48>>);
    static_assert(!Fn::fits_inline<Padded<56>>);

    const auto before = inline_function_heap_allocations();
    Fn f{Padded<48>{.base = 100}};
    EXPECT_TRUE(f.is_inline());
    EXPECT_EQ(inline_function_heap_allocations(), before);
    EXPECT_EQ(f(1), 101);
}

TEST(InlineFunction, CaptureOverBudgetFallsBackToHeapOnce) {
    const auto before = inline_function_heap_allocations();
    Fn f{Padded<56>{.base = 7}};
    EXPECT_FALSE(f.is_inline());
    EXPECT_EQ(inline_function_heap_allocations(), before + 1);
    EXPECT_EQ(f(3), 10);

    // Moving a heap-backed wrapper steals the pointer -- no new allocation.
    Fn g{std::move(f)};
    EXPECT_EQ(inline_function_heap_allocations(), before + 1);
    EXPECT_EQ(g(3), 10);
}

TEST(InlineFunction, OverAlignedCallableFallsBackToHeap) {
    struct alignas(2 * alignof(std::max_align_t)) OverAligned {
        int base = 5;
        int operator()(int x) const { return base + x; }
    };
    static_assert(!Fn::fits_inline<OverAligned>);
    Fn f{OverAligned{}};
    EXPECT_FALSE(f.is_inline());
    EXPECT_EQ(f(1), 6);
}

TEST(InlineFunction, MoveOnlyCaptureWorksInline) {
    auto p = std::make_unique<int>(41);
    InlineFunction<int(), 48> f{[p = std::move(p)] { return *p + 1; }};
    EXPECT_TRUE(f.is_inline());
    EXPECT_EQ(f(), 42);

    // Move transfers ownership of the capture; the source goes empty.
    InlineFunction<int(), 48> g{std::move(f)};
    EXPECT_FALSE(static_cast<bool>(f));  // NOLINT(bugprone-use-after-move)
    EXPECT_EQ(g(), 42);
}

TEST(InlineFunction, MutableStateSurvivesMove) {
    InlineFunction<int(), 48> f{[n = 0]() mutable { return ++n; }};
    EXPECT_EQ(f(), 1);
    EXPECT_EQ(f(), 2);
    InlineFunction<int(), 48> g{std::move(f)};
    EXPECT_EQ(g(), 3);
}

TEST(InlineFunction, MoveAssignmentDestroysPreviousCallable) {
    int destroyed = 0;
    struct Tracker {
        int* destroyed;
        bool armed = true;
        Tracker(int* d) : destroyed{d} {}
        Tracker(Tracker&& o) noexcept : destroyed{o.destroyed}, armed{o.armed} {
            o.armed = false;
        }
        ~Tracker() {
            if (armed) ++*destroyed;
        }
        int operator()() const { return 1; }
    };
    InlineFunction<int(), 48> f{Tracker{&destroyed}};
    InlineFunction<int(), 48> g{Tracker{&destroyed}};
    ASSERT_EQ(destroyed, 0);
    f = std::move(g);
    EXPECT_EQ(destroyed, 1);  // f's original callable destroyed
    EXPECT_FALSE(static_cast<bool>(g));  // NOLINT(bugprone-use-after-move)
    EXPECT_EQ(f(), 1);
}

TEST(InlineFunction, ReassignFromLambdaReplacesCallable) {
    InlineFunction<int(int), 48> f{[](int x) { return x; }};
    f = [](int x) { return -x; };
    EXPECT_EQ(f(5), -5);
}

}  // namespace
}  // namespace hsw::util
