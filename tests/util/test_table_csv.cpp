#include <gtest/gtest.h>

#include "util/csv.hpp"
#include "util/table.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace hsw::util {
namespace {

TEST(Table, RendersAlignedColumns) {
    Table t{"title"};
    t.set_header({"a", "long-header"});
    t.add_row({"x", "1"});
    t.add_row({"longer-cell", "2"});
    const std::string s = t.render();
    EXPECT_NE(s.find("title"), std::string::npos);
    EXPECT_NE(s.find("| a           | long-header |"), std::string::npos);
    EXPECT_NE(s.find("| longer-cell | 2           |"), std::string::npos);
}

TEST(Table, PadsShortRows) {
    Table t;
    t.set_header({"a", "b", "c"});
    t.add_row({"1"});
    const std::string s = t.render();
    EXPECT_NE(s.find("| 1 |   |   |"), std::string::npos);
}

TEST(Table, SeparatorInsertsRule) {
    Table t;
    t.set_header({"a"});
    t.add_row({"1"});
    t.add_separator();
    t.add_row({"2"});
    const std::string s = t.render();
    // top + header rule + separator + bottom = 4 horizontal lines total
    std::size_t rules = 0;
    for (std::size_t pos = 0; (pos = s.find("+---", pos)) != std::string::npos; ++pos) {
        ++rules;
    }
    EXPECT_EQ(rules, 4u);
}

TEST(Table, FmtPrecision) {
    EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
    EXPECT_EQ(Table::fmt(2.0, 0), "2");
    EXPECT_EQ(Table::fmt(-1.5, 1), "-1.5");
}

TEST(Csv, EscapesSpecialCharacters) {
    EXPECT_EQ(CsvWriter::escape("plain"), "plain");
    EXPECT_EQ(CsvWriter::escape("with,comma"), "\"with,comma\"");
    EXPECT_EQ(CsvWriter::escape("with\"quote"), "\"with\"\"quote\"");
    EXPECT_EQ(CsvWriter::escape("with\nnewline"), "\"with\nnewline\"");
}

TEST(Csv, WritesFile) {
    const std::string path = ::testing::TempDir() + "hsw_test.csv";
    {
        CsvWriter csv{path};
        csv.write_header({"a", "b"});
        csv.write_row(std::vector<std::string>{"x,y", "1"});
        csv.write_row(std::vector<double>{1.5, 2.25});
    }
    std::ifstream in{path};
    std::stringstream ss;
    ss << in.rdbuf();
    EXPECT_EQ(ss.str(), "a,b\n\"x,y\",1\n1.5,2.25\n");
    std::remove(path.c_str());
}

TEST(Csv, ThrowsOnBadPath) {
    EXPECT_THROW(CsvWriter{"/nonexistent-dir-xyz/file.csv"}, std::runtime_error);
}

}  // namespace
}  // namespace hsw::util
