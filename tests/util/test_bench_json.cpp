#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "util/bench_json.hpp"

namespace hsw::util {
namespace {

TEST(BenchJson, EmptyReportHasSchemaScaffolding) {
    BenchJson b{"bench_x"};
    const std::string s = b.to_string();
    EXPECT_NE(s.find("\"bench\": \"bench_x\""), std::string::npos);
    EXPECT_NE(s.find("\"meta\": {"), std::string::npos);
    EXPECT_NE(s.find("\"runs\": ["), std::string::npos);
}

TEST(BenchJson, KeysKeepInsertionOrder) {
    BenchJson b{"bench_order"};
    b.add_run().set("zeta", 1.0).set("alpha", 2.0).set("mid", 3.0);
    const std::string s = b.to_string();
    const auto z = s.find("\"zeta\"");
    const auto a = s.find("\"alpha\"");
    const auto m = s.find("\"mid\"");
    ASSERT_NE(z, std::string::npos);
    EXPECT_LT(z, a);
    EXPECT_LT(a, m);
}

TEST(BenchJson, DuplicateKeyOverwritesInPlace) {
    BenchJson b{"bench_dup"};
    b.meta().set("quick", true).set("jobs", 4u).set("quick", false);
    const std::string s = b.to_string();
    EXPECT_EQ(s.find("\"quick\": true"), std::string::npos);
    const auto q = s.find("\"quick\": false");
    const auto j = s.find("\"jobs\": 4");
    ASSERT_NE(q, std::string::npos);
    ASSERT_NE(j, std::string::npos);
    EXPECT_LT(q, j);  // overwrite keeps the original position
}

TEST(BenchJson, EscapesStringsAndHandlesNonFinite) {
    BenchJson b{"bench_esc"};
    b.add_run()
        .set("label", "a\"b\\c\nd")
        .set("inf", std::numeric_limits<double>::infinity())
        .set("nan", std::numeric_limits<double>::quiet_NaN());
    const std::string s = b.to_string();
    EXPECT_NE(s.find(R"("label": "a\"b\\c\nd")"), std::string::npos);
    EXPECT_NE(s.find("\"inf\": null"), std::string::npos);
    EXPECT_NE(s.find("\"nan\": null"), std::string::npos);
}

TEST(BenchJson, NumberFormattingRoundTripsBenchValues) {
    BenchJson b{"bench_num"};
    b.add_run()
        .set("events_per_sec", 9979249.25)
        .set("count", std::uint64_t{18446744073709551615ull})
        .set("small", 0.125);
    const std::string s = b.to_string();
    EXPECT_NE(s.find("\"events_per_sec\": 9979249.25"), std::string::npos);
    EXPECT_NE(s.find("\"count\": 18446744073709551615"), std::string::npos);
    EXPECT_NE(s.find("\"small\": 0.125"), std::string::npos);
}

TEST(BenchJson, WriteProducesReadableFile) {
    const std::filesystem::path path =
        std::filesystem::temp_directory_path() / "hsw_bench_json_test.json";
    BenchJson b{"bench_file"};
    b.meta().set("quick", true);
    b.add_run().set("scenario", "s1").set("value", 1.5);
    ASSERT_TRUE(b.write(path.string()));
    std::ifstream in{path};
    std::stringstream read;
    read << in.rdbuf();
    EXPECT_EQ(read.str(), b.to_string());
    std::filesystem::remove(path);
}

TEST(BenchJson, ParseJsonFlagConsumesPath) {
    const char* argv_c[] = {"bench", "--json", "out.json", "--quick"};
    char* argv[4];
    for (int i = 0; i < 4; ++i) argv[i] = const_cast<char*>(argv_c[i]);
    std::string out = "default.json";
    int i = 1;
    EXPECT_TRUE(parse_json_flag(4, argv, i, out));
    EXPECT_EQ(out, "out.json");
    EXPECT_EQ(i, 2);  // advanced past the value; loop ++ lands on --quick
    i = 3;
    EXPECT_FALSE(parse_json_flag(4, argv, i, out));
    EXPECT_EQ(out, "out.json");
}

}  // namespace
}  // namespace hsw::util
