// Strict JSON parser: accepted grammar, rejected malformations, and the
// convenience accessors the dashboards lean on.
#include "util/minijson.hpp"

#include <gtest/gtest.h>

#include <string>

using namespace hsw::util;

TEST(MiniJsonTest, ParsesScalarsArraysAndObjects) {
    std::string error;
    const auto doc = json::parse(
        R"({"b": true, "n": null, "num": -12.5e2, "s": "hi", "arr": [1, 2, 3],
            "nested": {"k": "v"}})",
        &error);
    ASSERT_TRUE(doc.has_value()) << error;
    ASSERT_TRUE(doc->is_object());
    EXPECT_TRUE(doc->find("b")->as_bool());
    EXPECT_TRUE(doc->find("n")->is_null());
    EXPECT_DOUBLE_EQ(doc->find("num")->as_number(), -1250.0);
    EXPECT_EQ(doc->find("s")->as_string(), "hi");
    ASSERT_TRUE(doc->find("arr")->is_array());
    EXPECT_EQ(doc->find("arr")->as_array().size(), 3u);
    const json::Value* nested = doc->find("nested");
    ASSERT_NE(nested, nullptr);
    EXPECT_EQ(nested->find("k")->as_string(), "v");
}

TEST(MiniJsonTest, DecodesEscapes) {
    const auto doc = json::parse(R"(["a\"b", "tab\there", "\u0041\u00e9"])");
    ASSERT_TRUE(doc.has_value());
    const json::Array& arr = doc->as_array();
    EXPECT_EQ(arr[0].as_string(), "a\"b");
    EXPECT_EQ(arr[1].as_string(), "tab\there");
    EXPECT_EQ(arr[2].as_string(), "A\xc3\xa9");  // "Aé" in UTF-8
}

TEST(MiniJsonTest, NumberOrFallsBackCleanly) {
    const auto doc = json::parse(R"({"x": 5, "s": "text"})");
    ASSERT_TRUE(doc.has_value());
    EXPECT_DOUBLE_EQ(doc->number_or("x", -1), 5.0);
    EXPECT_DOUBLE_EQ(doc->number_or("missing", -1), -1.0);
    EXPECT_DOUBLE_EQ(doc->number_or("s", -1), -1.0);  // present but not numeric
    EXPECT_EQ(doc->find("missing"), nullptr);
}

TEST(MiniJsonTest, RejectsMalformedDocuments) {
    const char* bad[] = {
        "",                         // empty
        "{",                        // unterminated object
        "[1, 2",                    // unterminated array
        "{\"k\" 1}",                // missing colon
        "{\"k\": 1,}",              // trailing comma
        "[1] garbage",              // trailing garbage
        "\"unterminated",           // unterminated string
        "\"bad \\q escape\"",       // unknown escape
        "nul",                      // truncated literal
        "{'k': 1}",                 // single quotes
        "\"\\u12\"",                // truncated \u
    };
    for (const char* text : bad) {
        std::string error;
        EXPECT_FALSE(json::parse(text, &error).has_value()) << text;
        EXPECT_FALSE(error.empty()) << text;
    }
}

TEST(MiniJsonTest, RejectsUnescapedControlCharacters) {
    EXPECT_FALSE(json::parse("\"line\nbreak\"").has_value());
}

TEST(MiniJsonTest, DeeplyNestedInputIsBoundedNotFatal) {
    std::string deep;
    for (int i = 0; i < 200; ++i) deep += '[';
    for (int i = 0; i < 200; ++i) deep += ']';
    std::string error;
    EXPECT_FALSE(json::parse(deep, &error).has_value());
    EXPECT_NE(error.find("nesting"), std::string::npos);
}

TEST(MiniJsonTest, ObjectIterationIsSorted) {
    const auto doc = json::parse(R"({"z": 1, "a": 2, "m": 3})");
    ASSERT_TRUE(doc.has_value());
    std::string order;
    for (const auto& [key, value] : doc->as_object()) order += key;
    EXPECT_EQ(order, "amz");
}
