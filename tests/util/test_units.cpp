#include <gtest/gtest.h>

#include "util/units.hpp"

namespace hsw::util {
namespace {

TEST(Time, FactoriesAndAccessors) {
    EXPECT_EQ(Time::ns(5).as_ns(), 5);
    EXPECT_EQ(Time::us(5).as_ns(), 5000);
    EXPECT_EQ(Time::ms(5).as_ns(), 5'000'000);
    EXPECT_EQ(Time::sec(5).as_ns(), 5'000'000'000LL);
    EXPECT_DOUBLE_EQ(Time::us(1500).as_ms(), 1.5);
    EXPECT_DOUBLE_EQ(Time::ms(1500).as_seconds(), 1.5);
}

TEST(Time, FromSecondsRoundsToNearestNs) {
    EXPECT_EQ(Time::from_seconds(1e-9).as_ns(), 1);
    EXPECT_EQ(Time::from_seconds(1.4e-9).as_ns(), 1);
    EXPECT_EQ(Time::from_seconds(1.6e-9).as_ns(), 2);
    EXPECT_EQ(Time::from_seconds(-1.6e-9).as_ns(), -2);
    EXPECT_EQ(Time::from_us(2.5).as_ns(), 2500);
}

TEST(Time, FromSecondsSaturatesInsteadOfOverflowing) {
    // Seconds counts past the int64 nanosecond range used to hit the
    // undefined float->int conversion; they must clamp instead.
    EXPECT_EQ(Time::from_seconds(1e300), Time::max());
    EXPECT_EQ(Time::from_seconds(-1e300), Time::min());
    EXPECT_EQ(Time::from_seconds(std::numeric_limits<double>::infinity()), Time::max());
    EXPECT_EQ(Time::from_seconds(-std::numeric_limits<double>::infinity()), Time::min());
    EXPECT_EQ(Time::from_seconds(std::numeric_limits<double>::quiet_NaN()), Time::zero());
    // The largest representable count still converts exactly.
    EXPECT_EQ(Time::from_seconds(9.0e9).as_ns(), 9'000'000'000'000'000'000LL);
    EXPECT_EQ(Time::from_us(1e300), Time::max());
}

TEST(Time, Arithmetic) {
    const Time a = Time::us(10);
    const Time b = Time::us(4);
    EXPECT_EQ((a + b).as_ns(), 14000);
    EXPECT_EQ((a - b).as_ns(), 6000);
    EXPECT_EQ((a * 3).as_ns(), 30000);
    EXPECT_EQ(a / b, 2);
    EXPECT_EQ((a % b).as_ns(), 2000);
    EXPECT_LT(b, a);
    EXPECT_EQ(Time::zero().as_ns(), 0);
}

TEST(Frequency, RatioEncoding) {
    // P-states encode as 100 MHz BCLK multiples (IA32_PERF_CTL).
    EXPECT_DOUBLE_EQ(Frequency::from_ratio(12).as_ghz(), 1.2);
    EXPECT_DOUBLE_EQ(Frequency::from_ratio(25).as_ghz(), 2.5);
    EXPECT_EQ(Frequency::ghz(2.5).ratio(), 25u);
    EXPECT_EQ(Frequency::ghz(1.25).ratio(), 13u);  // nearest multiple
    EXPECT_EQ(Frequency::mhz(1750).ratio(), 18u);
}

TEST(Frequency, CyclesIn) {
    EXPECT_DOUBLE_EQ(Frequency::ghz(2.0).cycles_in(Time::us(1)), 2000.0);
    EXPECT_DOUBLE_EQ(Frequency::mhz(100).cycles_in(Time::sec(1)), 1e8);
}

TEST(PowerEnergy, Integration) {
    const Power p = Power::watts(120);
    const Energy e = p * Time::sec(2);
    EXPECT_DOUBLE_EQ(e.as_joules(), 240.0);
    EXPECT_DOUBLE_EQ(e.over(Time::sec(4)).as_watts(), 60.0);
    EXPECT_DOUBLE_EQ((Time::ms(500) * p).as_joules(), 60.0);
}

TEST(PowerEnergy, Arithmetic) {
    Power p = Power::watts(10);
    p += Power::watts(5);
    EXPECT_DOUBLE_EQ(p.as_watts(), 15.0);
    EXPECT_DOUBLE_EQ((p - Power::watts(5)).as_watts(), 10.0);
    EXPECT_DOUBLE_EQ((p * 2.0).as_watts(), 30.0);
    EXPECT_DOUBLE_EQ(Power::watts(30) / Power::watts(10), 3.0);

    Energy e = Energy::microjoules(15.3);
    EXPECT_NEAR(e.as_joules(), 15.3e-6, 1e-12);
    e += Energy::joules(1.0);
    EXPECT_NEAR(e.as_microjoules(), 1e6 + 15.3, 1e-6);
}

TEST(Voltage, Basics) {
    EXPECT_DOUBLE_EQ(Voltage::millivolts(900).as_volts(), 0.9);
    EXPECT_DOUBLE_EQ((Voltage::volts(0.9) + Voltage::volts(0.02)).as_millivolts(), 920.0);
    EXPECT_LT(Voltage::volts(0.8), Voltage::volts(0.9));
}

TEST(Bandwidth, Conversions) {
    EXPECT_DOUBLE_EQ(Bandwidth::gb_per_sec(68.2).as_bytes_per_sec(), 68.2e9);
    EXPECT_DOUBLE_EQ(Bandwidth::gib_per_sec(1.0).as_bytes_per_sec(), 1073741824.0);
    EXPECT_DOUBLE_EQ(Bandwidth::gb_per_sec(10) / Bandwidth::gb_per_sec(5), 2.0);
}

}  // namespace
}  // namespace hsw::util
