#include <gtest/gtest.h>

#include "util/rng.hpp"
#include "util/stats.hpp"

#include <cmath>
#include <vector>

namespace hsw::util {
namespace {

TEST(Stats, MeanVarianceStddev) {
    const std::vector<double> xs{2, 4, 4, 4, 5, 5, 7, 9};
    EXPECT_DOUBLE_EQ(mean(xs), 5.0);
    EXPECT_NEAR(variance(xs), 32.0 / 7.0, 1e-12);
    EXPECT_NEAR(stddev(xs), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Stats, EmptyAndSingleton) {
    EXPECT_EQ(mean({}), 0.0);
    EXPECT_EQ(variance({}), 0.0);
    const std::vector<double> one{3.0};
    EXPECT_EQ(variance(one), 0.0);
    EXPECT_TRUE(std::isnan(min_of({})));
    EXPECT_TRUE(std::isnan(max_of({})));
}

TEST(Stats, MedianOddEven) {
    EXPECT_DOUBLE_EQ(median(std::vector<double>{3, 1, 2}), 2.0);
    EXPECT_DOUBLE_EQ(median(std::vector<double>{4, 1, 3, 2}), 2.5);
}

TEST(Stats, Quantiles) {
    const std::vector<double> xs{1, 2, 3, 4, 5};
    EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 5.0);
    EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 2.0);
    EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 3.0);
    // Out-of-range q clamps.
    EXPECT_DOUBLE_EQ(quantile(xs, -1.0), 1.0);
    EXPECT_DOUBLE_EQ(quantile(xs, 2.0), 5.0);
}

TEST(Stats, ConfidenceIntervalShrinksWithN) {
    Rng rng{3};
    std::vector<double> small;
    std::vector<double> large;
    for (int i = 0; i < 10; ++i) small.push_back(rng.normal(0, 1));
    for (int i = 0; i < 1000; ++i) large.push_back(rng.normal(0, 1));
    EXPECT_GT(confidence_halfwidth(small, 0.99), confidence_halfwidth(large, 0.99));
    // 99 % interval is wider than 95 %.
    EXPECT_GT(confidence_halfwidth(small, 0.99), confidence_halfwidth(small, 0.95));
}

TEST(Stats, LinearFitExact) {
    const std::vector<double> x{1, 2, 3, 4};
    const std::vector<double> y{3, 5, 7, 9};  // y = 2x + 1
    const LinearFit f = fit_linear(x, y);
    EXPECT_NEAR(f.slope, 2.0, 1e-12);
    EXPECT_NEAR(f.intercept, 1.0, 1e-12);
    EXPECT_NEAR(f.r_squared, 1.0, 1e-12);
    EXPECT_NEAR(f(10.0), 21.0, 1e-12);
}

TEST(Stats, LinearFitNoisy) {
    Rng rng{5};
    std::vector<double> x;
    std::vector<double> y;
    for (int i = 0; i < 500; ++i) {
        const double xi = rng.uniform(0, 100);
        x.push_back(xi);
        y.push_back(1.097 * xi + 225.7 + rng.normal(0, 0.5));
    }
    const LinearFit f = fit_linear(x, y);
    EXPECT_NEAR(f.slope, 1.097, 0.01);
    EXPECT_NEAR(f.intercept, 225.7, 0.5);
    EXPECT_GT(f.r_squared, 0.999);
}

TEST(Stats, QuadraticFitRecoversPaperCoefficients) {
    // The Figure 2b fit: AC = 0.0003 R^2 + 1.097 R + 225.7.
    std::vector<double> r;
    std::vector<double> ac;
    for (double v = 30; v <= 300; v += 5) {
        r.push_back(v);
        ac.push_back(0.0003 * v * v + 1.097 * v + 225.7);
    }
    const QuadraticFit f = fit_quadratic(r, ac);
    EXPECT_NEAR(f.a, 0.0003, 1e-6);
    EXPECT_NEAR(f.b, 1.097, 1e-4);
    EXPECT_NEAR(f.c, 225.7, 1e-2);
    EXPECT_GT(f.r_squared, 0.999999);
}

TEST(Stats, FitErrorCases) {
    EXPECT_THROW((void)fit_linear(std::vector<double>{1}, std::vector<double>{1}),
                 std::invalid_argument);
    EXPECT_THROW((void)fit_linear(std::vector<double>{1, 2}, std::vector<double>{1}),
                 std::invalid_argument);
    EXPECT_THROW(
        (void)fit_quadratic(std::vector<double>{1, 2}, std::vector<double>{1, 2}),
        std::invalid_argument);
}

TEST(Stats, RunningStatsMatchesBatch) {
    Rng rng{9};
    std::vector<double> xs;
    RunningStats rs;
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.normal(5, 3);
        xs.push_back(x);
        rs.add(x);
    }
    EXPECT_EQ(rs.count(), 1000u);
    EXPECT_NEAR(rs.mean(), mean(xs), 1e-9);
    EXPECT_NEAR(rs.variance(), variance(xs), 1e-9);
    EXPECT_DOUBLE_EQ(rs.min(), min_of(xs));
    EXPECT_DOUBLE_EQ(rs.max(), max_of(xs));
    rs.reset();
    EXPECT_EQ(rs.count(), 0u);
}

TEST(Stats, BestWindowFindsHottestMinute) {
    // Samples at 1 Hz: power ramps up, holds a plateau, then drops.
    std::vector<double> times;
    std::vector<double> values;
    for (int t = 0; t < 300; ++t) {
        times.push_back(t);
        values.push_back(t >= 100 && t < 200 ? 560.0 : 300.0);
    }
    const auto best = best_window(times, values, 60.0);
    EXPECT_NEAR(best.average, 560.0, 1.0);
    EXPECT_GE(best.start_time, 100.0);
    EXPECT_LE(best.start_time, 140.0);
}

TEST(Stats, BestWindowEmpty) {
    const auto best = best_window({}, {}, 60.0);
    EXPECT_EQ(best.average, 0.0);
}

}  // namespace
}  // namespace hsw::util
