#include <gtest/gtest.h>

#include "arch/topology.hpp"

#include <stdexcept>

namespace hsw::arch {
namespace {

// Figure 1 anchors.
TEST(Topology, EightCoreDieSingleRing) {
    for (unsigned cores : {4u, 6u, 8u}) {
        const auto topo = make_die_topology(cores);
        EXPECT_EQ(topo.variant, DieVariant::EightCore) << cores;
        EXPECT_EQ(topo.partitions.size(), 1u);
        EXPECT_EQ(topo.queue_links, 0u);
        EXPECT_EQ(topo.total_channels(), 4u);
    }
}

TEST(Topology, TwelveCoreDieHas8Plus4Partitions) {
    const auto topo = make_die_topology(12);
    EXPECT_EQ(topo.variant, DieVariant::TwelveCore);
    ASSERT_EQ(topo.partitions.size(), 2u);
    EXPECT_EQ(topo.partitions[0].core_ids.size(), 8u);
    EXPECT_EQ(topo.partitions[1].core_ids.size(), 4u);
    EXPECT_EQ(topo.queue_links, 2u);
    // Each partition has an IMC with two channels.
    EXPECT_TRUE(topo.partitions[0].has_imc);
    EXPECT_TRUE(topo.partitions[1].has_imc);
    EXPECT_EQ(topo.total_channels(), 4u);
}

TEST(Topology, TenCoreUsesTwelveCoreDie) {
    const auto topo = make_die_topology(10);
    EXPECT_EQ(topo.variant, DieVariant::TwelveCore);
    EXPECT_EQ(topo.partitions[1].core_ids.size(), 2u);
}

TEST(Topology, EighteenCoreDieHas8Plus10Partitions) {
    const auto topo = make_die_topology(18);
    EXPECT_EQ(topo.variant, DieVariant::EighteenCore);
    ASSERT_EQ(topo.partitions.size(), 2u);
    EXPECT_EQ(topo.partitions[0].core_ids.size(), 8u);
    EXPECT_EQ(topo.partitions[1].core_ids.size(), 10u);
}

TEST(Topology, FourteenAndSixteenUseEighteenCoreDie) {
    EXPECT_EQ(make_die_topology(14).variant, DieVariant::EighteenCore);
    EXPECT_EQ(make_die_topology(16).variant, DieVariant::EighteenCore);
}

TEST(Topology, PartitionOfAndCrossing) {
    const auto topo = make_die_topology(12);
    EXPECT_EQ(topo.partition_of(0), 0u);
    EXPECT_EQ(topo.partition_of(7), 0u);
    EXPECT_EQ(topo.partition_of(8), 1u);
    EXPECT_EQ(topo.partition_of(11), 1u);
    EXPECT_FALSE(topo.crosses_partition(0, 7));
    EXPECT_TRUE(topo.crosses_partition(0, 8));
    EXPECT_THROW((void)topo.partition_of(12), std::out_of_range);
}

TEST(Topology, L3SliceCountEqualsEnabledCores) {
    EXPECT_EQ(make_die_topology(12).l3_slices(), 12u);
    EXPECT_EQ(make_die_topology(6).l3_slices(), 6u);
}

TEST(Topology, InvalidCoreCounts) {
    EXPECT_THROW((void)make_die_topology(0), std::invalid_argument);
    EXPECT_THROW((void)make_die_topology(19), std::invalid_argument);
}

// Property sweep: every supported core count yields a consistent topology.
class TopologySweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(TopologySweep, ConsistentLayout) {
    const unsigned cores = GetParam();
    const auto topo = make_die_topology(cores);
    EXPECT_EQ(topo.enabled_cores, cores);

    // All core ids covered exactly once, contiguous from 0.
    std::size_t total = 0;
    std::vector<bool> seen(cores, false);
    for (const auto& p : topo.partitions) {
        total += p.core_ids.size();
        for (unsigned id : p.core_ids) {
            ASSERT_LT(id, cores);
            EXPECT_FALSE(seen[id]);
            seen[id] = true;
        }
    }
    EXPECT_EQ(total, cores);
    // Four memory channels per socket across all variants (Fig. 1).
    EXPECT_EQ(topo.total_channels(), 4u);
}

INSTANTIATE_TEST_SUITE_P(AllCoreCounts, TopologySweep,
                         ::testing::Range(1u, 19u));

}  // namespace
}  // namespace hsw::arch
