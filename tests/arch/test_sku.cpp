#include <gtest/gtest.h>

#include "arch/sku.hpp"

namespace hsw::arch {
namespace {

using util::Frequency;

// Table II anchors for the paper's test-system part.
TEST(Sku, E52680v3MatchesTable2) {
    const Sku& sku = xeon_e5_2680_v3();
    EXPECT_EQ(sku.cores, 12u);
    EXPECT_DOUBLE_EQ(sku.min_frequency.as_ghz(), 1.2);
    EXPECT_DOUBLE_EQ(sku.nominal_frequency.as_ghz(), 2.5);
    EXPECT_DOUBLE_EQ(sku.max_turbo(1).as_ghz(), 3.3);
    EXPECT_DOUBLE_EQ(sku.avx_base_frequency.as_ghz(), 2.1);
    EXPECT_DOUBLE_EQ(sku.tdp.as_watts(), 120.0);
    EXPECT_DOUBLE_EQ(sku.uncore_max.as_ghz(), 3.0);
    EXPECT_EQ(sku.l3_bytes, 30ull * 1024 * 1024);  // 12 x 2.5 MiB
}

TEST(Sku, TurboBinsMonotonicallyNonIncreasing) {
    for (const Sku* sku : {&xeon_e5_2680_v3(), &xeon_e5_2667_v3(), &xeon_e5_2699_v3(),
                           &xeon_e5_2670(), &xeon_x5670()}) {
        for (std::size_t i = 1; i < sku->turbo_bins.size(); ++i) {
            EXPECT_LE(sku->turbo_bins[i].as_ghz(), sku->turbo_bins[i - 1].as_ghz())
                << sku->model << " bin " << i;
        }
        EXPECT_EQ(sku->turbo_bins.size(), sku->cores) << sku->model;
    }
}

TEST(Sku, AvxTurboBetween28And31ForTestSystem) {
    // Section II-F: "The AVX turbo frequencies are between 2.8 and 3.1 GHz,
    // depending on the number of active cores."
    const Sku& sku = xeon_e5_2680_v3();
    for (unsigned n = 1; n <= sku.cores; ++n) {
        const double f = sku.max_avx_turbo(n).as_ghz();
        EXPECT_GE(f, 2.8);
        EXPECT_LE(f, 3.1);
        // AVX turbo never exceeds the non-AVX bin.
        EXPECT_LE(f, sku.max_turbo(n).as_ghz());
    }
}

TEST(Sku, TurboLookupClampsActiveCores) {
    const Sku& sku = xeon_e5_2680_v3();
    EXPECT_EQ(sku.max_turbo(0).as_ghz(), sku.max_turbo(1).as_ghz());
    EXPECT_EQ(sku.max_turbo(100).as_ghz(), sku.max_turbo(sku.cores).as_ghz());
}

TEST(Sku, SandyBridgeHasNoSeparateAvxLevel) {
    const Sku& sku = xeon_e5_2670();
    EXPECT_TRUE(sku.avx_turbo_bins.empty());
    EXPECT_EQ(sku.avx_base_frequency.as_ghz(), sku.nominal_frequency.as_ghz());
    // Without AVX bins, the AVX lookup falls back to the normal bins.
    EXPECT_EQ(sku.max_avx_turbo(4).as_ghz(), sku.max_turbo(4).as_ghz());
}

TEST(Sku, SelectablePstatesCoverRangePlusTurbo) {
    const Sku& sku = xeon_e5_2680_v3();
    const auto ps = sku.selectable_pstates();
    // 1.2 .. 2.5 in 100 MHz steps = 14 levels, + the turbo request level.
    ASSERT_EQ(ps.size(), 15u);
    EXPECT_DOUBLE_EQ(ps.front().as_ghz(), 1.2);
    EXPECT_DOUBLE_EQ(ps[13].as_ghz(), 2.5);
    EXPECT_EQ(ps.back().ratio(), 26u);  // turbo request encoding
    for (std::size_t i = 1; i < ps.size(); ++i) EXPECT_GT(ps[i], ps[i - 1]);
}

TEST(Sku, DieSiblingsCoverAllVariants) {
    EXPECT_EQ(xeon_e5_2667_v3().cores, 8u);    // 8-core die
    EXPECT_EQ(xeon_e5_2680_v3().cores, 12u);   // 12-core die
    EXPECT_EQ(xeon_e5_2699_v3().cores, 18u);   // 18-core die
}

TEST(Sku, WestmereHasFixedUncoreRange) {
    const Sku& sku = xeon_x5670();
    EXPECT_EQ(sku.uncore_min.as_ghz(), sku.uncore_max.as_ghz());
}

}  // namespace
}  // namespace hsw::arch
