#include <gtest/gtest.h>

#include "arch/topology_render.hpp"

namespace hsw::arch {
namespace {

TEST(TopologyRender, TwelveCoreShowsBothPartitionsAndQueues) {
    const std::string s = render_die_ascii(make_die_topology(12));
    EXPECT_NE(s.find("12-core die"), std::string::npos);
    EXPECT_NE(s.find("ring partition 0 (8 cores)"), std::string::npos);
    EXPECT_NE(s.find("ring partition 1 (4 cores)"), std::string::npos);
    EXPECT_NE(s.find("queue"), std::string::npos);
    EXPECT_NE(s.find("[C00|L3]"), std::string::npos);
    EXPECT_NE(s.find("[C11|L3]"), std::string::npos);
    EXPECT_NE(s.find("IMC"), std::string::npos);
}

TEST(TopologyRender, SingleRingHasNoQueues) {
    const std::string s = render_die_ascii(make_die_topology(8));
    EXPECT_EQ(s.find("queue"), std::string::npos);
    EXPECT_NE(s.find("8-core die"), std::string::npos);
}

TEST(TopologyRender, EighteenCoreShows8Plus10) {
    const std::string s = render_die_ascii(make_die_topology(18));
    EXPECT_NE(s.find("ring partition 0 (8 cores)"), std::string::npos);
    EXPECT_NE(s.find("ring partition 1 (10 cores)"), std::string::npos);
    EXPECT_NE(s.find("[C17|L3]"), std::string::npos);
}

}  // namespace
}  // namespace hsw::arch
