#include <gtest/gtest.h>

#include "arch/microarch.hpp"

namespace hsw::arch {
namespace {

// Table I anchors.
TEST(Microarch, HaswellDoublesFlopsViaFma) {
    const auto& snb = sandy_bridge_ep_params();
    const auto& hsw = haswell_ep_params();
    EXPECT_EQ(snb.flops_per_cycle_double, 8u);
    EXPECT_EQ(hsw.flops_per_cycle_double, 16u);
    EXPECT_FALSE(snb.has_fma);
    EXPECT_TRUE(hsw.has_fma);
}

TEST(Microarch, DecodeAndRetireUnchanged) {
    EXPECT_EQ(sandy_bridge_ep_params().decode_per_cycle,
              haswell_ep_params().decode_per_cycle);
    EXPECT_EQ(sandy_bridge_ep_params().retire_uops_per_cycle,
              haswell_ep_params().retire_uops_per_cycle);
}

TEST(Microarch, OutOfOrderResourcesGrew) {
    const auto& snb = sandy_bridge_ep_params();
    const auto& hsw = haswell_ep_params();
    EXPECT_GT(hsw.execute_uops_per_cycle, snb.execute_uops_per_cycle);
    EXPECT_GT(hsw.scheduler_entries, snb.scheduler_entries);
    EXPECT_GT(hsw.rob_entries, snb.rob_entries);
    EXPECT_GT(hsw.load_buffers, snb.load_buffers);
    EXPECT_GT(hsw.store_buffers, snb.store_buffers);
    EXPECT_EQ(hsw.rob_entries, 192u);
    EXPECT_EQ(hsw.scheduler_entries, 60u);
}

TEST(Microarch, CacheBandwidthDoubled) {
    const auto& snb = sandy_bridge_ep_params();
    const auto& hsw = haswell_ep_params();
    EXPECT_EQ(hsw.l1d_load_bytes_per_cycle, 2 * snb.l1d_load_bytes_per_cycle);
    EXPECT_EQ(hsw.l1d_store_bytes_per_cycle, 2 * snb.l1d_store_bytes_per_cycle);
    EXPECT_EQ(hsw.l2_bytes_per_cycle, 2 * snb.l2_bytes_per_cycle);
}

TEST(Microarch, PlatformNumbers) {
    const auto& hsw = haswell_ep_params();
    EXPECT_DOUBLE_EQ(hsw.dram_bandwidth_gbs, 68.2);
    EXPECT_DOUBLE_EQ(hsw.qpi_speed_gts, 9.6);
    EXPECT_EQ(hsw.supported_memory, "4x DDR4-2133");
    const auto& snb = sandy_bridge_ep_params();
    EXPECT_DOUBLE_EQ(snb.dram_bandwidth_gbs, 51.2);
    EXPECT_DOUBLE_EQ(snb.qpi_speed_gts, 8.0);
}

TEST(Microarch, ParamsForGenerationMapping) {
    EXPECT_EQ(&params_for(Generation::HaswellEP), &haswell_ep_params());
    EXPECT_EQ(&params_for(Generation::HaswellHE), &haswell_ep_params());
    EXPECT_EQ(&params_for(Generation::SandyBridgeEP), &sandy_bridge_ep_params());
    EXPECT_EQ(&params_for(Generation::IvyBridgeEP), &sandy_bridge_ep_params());
    EXPECT_EQ(&params_for(Generation::WestmereEP), &westmere_ep_params());
}

TEST(GenerationTraits, PowerManagementMatrix) {
    const auto hsw = traits(Generation::HaswellEP);
    EXPECT_EQ(hsw.uncore_clocking, UncoreClocking::IndependentUfs);
    EXPECT_EQ(hsw.rapl_backend, RaplBackend::Measured);
    EXPECT_TRUE(hsw.per_core_pstates);
    EXPECT_TRUE(hsw.deferred_pstate_grid);
    EXPECT_TRUE(hsw.has_dram_rapl_domain);
    EXPECT_FALSE(hsw.has_pp0_domain);  // PP0 unsupported on Haswell-EP

    const auto snb = traits(Generation::SandyBridgeEP);
    EXPECT_EQ(snb.uncore_clocking, UncoreClocking::CoupledToCore);
    EXPECT_EQ(snb.rapl_backend, RaplBackend::Modeled);
    EXPECT_FALSE(snb.per_core_pstates);
    EXPECT_FALSE(snb.deferred_pstate_grid);

    const auto wsm = traits(Generation::WestmereEP);
    EXPECT_EQ(wsm.uncore_clocking, UncoreClocking::Fixed);
    EXPECT_EQ(wsm.rapl_backend, RaplBackend::None);

    // Haswell-HE: FIVR and measured RAPL, but immediate p-states.
    const auto he = traits(Generation::HaswellHE);
    EXPECT_EQ(he.rapl_backend, RaplBackend::Measured);
    EXPECT_FALSE(he.deferred_pstate_grid);
    EXPECT_FALSE(he.per_core_pstates);
}

}  // namespace
}  // namespace hsw::arch
