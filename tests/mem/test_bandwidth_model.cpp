#include <gtest/gtest.h>

#include "mem/bandwidth_model.hpp"

namespace hsw::mem {
namespace {

using util::Frequency;

class HswBandwidth : public ::testing::Test {
protected:
    BandwidthModel model{arch::Generation::HaswellEP, 12};
    static constexpr Frequency kUncMax = Frequency::ghz(3.0);
};

TEST_F(HswBandwidth, DramFrequencyIndependentAtFullConcurrency) {
    // Figure 7b: at maximal concurrency DRAM bandwidth does not depend on
    // the core frequency.
    const ConcurrencyConfig full{12, 2};
    const double at_min = model.dram_read(full, Frequency::ghz(1.2), kUncMax).as_gb_per_sec();
    const double at_max = model.dram_read(full, Frequency::ghz(2.5), kUncMax).as_gb_per_sec();
    EXPECT_NEAR(at_min / at_max, 1.0, 0.02);
}

TEST_F(HswBandwidth, DramSaturatesAroundEightCores) {
    // Figure 8: "main memory read bandwidth saturates at 8 cores".
    const Frequency f = Frequency::ghz(2.5);
    const double at8 = model.dram_read({8, 1}, f, kUncMax).as_gb_per_sec();
    const double at12 = model.dram_read({12, 1}, f, kUncMax).as_gb_per_sec();
    EXPECT_GT(at8 / at12, 0.92);
    const double at4 = model.dram_read({4, 1}, f, kUncMax).as_gb_per_sec();
    EXPECT_LT(at4 / at12, 0.60);
}

TEST_F(HswBandwidth, L3CorrelatesWithCoreFrequency) {
    // Figure 7a: L3 bandwidth strongly correlates with the core clock.
    const ConcurrencyConfig full{12, 2};
    const double at_min = model.l3_read(full, Frequency::ghz(1.2), kUncMax).as_gb_per_sec();
    const double at_max = model.l3_read(full, Frequency::ghz(2.5), kUncMax).as_gb_per_sec();
    EXPECT_LT(at_min / at_max, 0.65);
    EXPECT_GT(at_min / at_max, 0.40);
}

TEST_F(HswBandwidth, L3FlattensAtHighFrequencyWithoutPlateau) {
    // "scales linearly with frequency for lower frequencies but flattens at
    // higher frequency levels without converging to a specific plateau".
    const ConcurrencyConfig full{12, 2};
    auto bw = [&](double f) {
        return model.l3_read(full, Frequency::ghz(f), kUncMax).as_gb_per_sec();
    };
    const double low_gain = bw(1.4) / bw(1.2);   // ~ +16.7 % frequency step
    const double high_gain = bw(2.5) / bw(2.3);  // ~ +8.7 % frequency step
    EXPECT_GT(low_gain, 1.10);
    // Still increasing at the top (no plateau) but with diminishing slope.
    EXPECT_GT(high_gain, 1.02);
    EXPECT_LT(high_gain - 1.0, (low_gain - 1.0) * (2.3 / 1.2) * 0.9);
}

TEST_F(HswBandwidth, HyperThreadingHelpsOnlyAtLowConcurrency) {
    const Frequency f = Frequency::ghz(2.5);
    const double ht1 = model.dram_read({2, 1}, f, kUncMax).as_gb_per_sec();
    const double ht2 = model.dram_read({2, 2}, f, kUncMax).as_gb_per_sec();
    EXPECT_GT(ht2, ht1 * 1.1);  // clear benefit at 2 cores
    const double full1 = model.dram_read({12, 1}, f, kUncMax).as_gb_per_sec();
    const double full2 = model.dram_read({12, 2}, f, kUncMax).as_gb_per_sec();
    EXPECT_NEAR(full2 / full1, 1.0, 0.02);  // none at saturation
}

TEST_F(HswBandwidth, L3SlightlySuperlinearAtLowConcurrency) {
    const Frequency f = Frequency::ghz(2.0);
    const double c1 = model.l3_read({1, 1}, f, kUncMax).as_gb_per_sec();
    const double c4 = model.l3_read({4, 1}, f, kUncMax).as_gb_per_sec();
    EXPECT_GT(c4, 4.0 * c1);          // better than linear early on
    EXPECT_LT(c4, 4.0 * c1 * 1.08);   // but only slightly
}

TEST_F(HswBandwidth, MonotonicInCoresAndFrequency) {
    const Frequency f = Frequency::ghz(2.0);
    double prev = 0.0;
    for (unsigned n = 1; n <= 12; ++n) {
        const double bw = model.l3_read({n, 1}, f, kUncMax).as_gb_per_sec();
        EXPECT_GE(bw, prev);
        prev = bw;
    }
    prev = 0.0;
    for (double g = 1.2; g <= 2.51; g += 0.1) {
        const double bw = model.l3_read({6, 1}, Frequency::ghz(g), kUncMax).as_gb_per_sec();
        EXPECT_GT(bw, prev);
        prev = bw;
    }
}

TEST(SnbBandwidth, DramTracksCoreCoupledUncore) {
    // Figure 7b: "On Sandy Bridge-EP, the uncore frequency reflects the core
    // frequency, making DRAM bandwidth highly dependent on core frequency."
    BandwidthModel model{arch::Generation::SandyBridgeEP, 8};
    const ConcurrencyConfig full{8, 2};
    // The uncore clock equals the core clock on SNB.
    const double at_min =
        model.dram_read(full, Frequency::ghz(1.2), Frequency::ghz(1.2)).as_gb_per_sec();
    const double at_max =
        model.dram_read(full, Frequency::ghz(2.6), Frequency::ghz(2.6)).as_gb_per_sec();
    EXPECT_LT(at_min / at_max, 0.6);
}

TEST(WsmBandwidth, DramFlatWithFixedUncore) {
    BandwidthModel model{arch::Generation::WestmereEP, 6};
    const ConcurrencyConfig full{6, 2};
    const Frequency unc = Frequency::ghz(2.66);  // fixed
    const double at_min = model.dram_read(full, Frequency::ghz(1.6), unc).as_gb_per_sec();
    const double at_max = model.dram_read(full, Frequency::ghz(2.93), unc).as_gb_per_sec();
    EXPECT_GT(at_min / at_max, 0.95);
}

TEST(BandwidthSanity, PeaksRespectHardwareLimits) {
    BandwidthModel hsw{arch::Generation::HaswellEP, 12};
    const double peak =
        hsw.dram_read({12, 2}, Frequency::ghz(2.5), Frequency::ghz(3.0)).as_gb_per_sec();
    EXPECT_LE(peak, 68.2);  // below the DDR4 theoretical peak (Table I)
    EXPECT_GT(peak, 45.0);  // but in a realistic stream range
}

// Parameterized sweep: dram_demand_per_core is positive and grows with the
// core clock for every ratio.
class DemandSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(DemandSweep, PositiveAndMonotonic) {
    BandwidthModel model{arch::Generation::HaswellEP, 12};
    const unsigned ratio = GetParam();
    const double demand =
        model.dram_demand_per_core(Frequency::from_ratio(ratio)).as_gb_per_sec();
    EXPECT_GT(demand, 0.0);
    if (ratio > 12) {
        EXPECT_GT(demand, model.dram_demand_per_core(Frequency::from_ratio(ratio - 1))
                              .as_gb_per_sec());
    }
}

INSTANTIATE_TEST_SUITE_P(Ratios, DemandSweep, ::testing::Range(12u, 26u));

}  // namespace
}  // namespace hsw::mem
