#include <gtest/gtest.h>

#include "mem/qpi.hpp"

namespace hsw::mem {
namespace {

using util::Frequency;

TEST(Qpi, LinkBandwidthMatchesTable1) {
    EXPECT_NEAR(QpiLink{arch::Generation::HaswellEP}.raw_bandwidth().as_gb_per_sec(),
                38.4, 1e-9);
    EXPECT_NEAR(QpiLink{arch::Generation::SandyBridgeEP}.raw_bandwidth().as_gb_per_sec(),
                32.0, 1e-9);
    EXPECT_NEAR(QpiLink{arch::Generation::WestmereEP}.raw_bandwidth().as_gb_per_sec(),
                25.6, 1e-9);
}

TEST(Qpi, EffectiveBelowRaw) {
    const QpiLink link{arch::Generation::HaswellEP};
    EXPECT_LT(link.effective_bandwidth().as_gb_per_sec(),
              link.raw_bandwidth().as_gb_per_sec());
    EXPECT_GT(link.effective_bandwidth().as_gb_per_sec(), 25.0);
}

class RemoteMemory : public ::testing::Test {
protected:
    RemoteMemoryModel model{arch::Generation::HaswellEP, 12};
    static constexpr Frequency kCore = Frequency::ghz(2.5);
    static constexpr Frequency kUnc = Frequency::ghz(3.0);
};

TEST_F(RemoteMemory, RemoteBelowLocal) {
    const BandwidthModel local{arch::Generation::HaswellEP, 12};
    const ConcurrencyConfig full{12, 2};
    const double remote =
        model.remote_dram_read(full, kCore, kUnc, kUnc).as_gb_per_sec();
    const double loc = local.dram_read(full, kCore, kUnc).as_gb_per_sec();
    EXPECT_LT(remote, loc);
    EXPECT_GT(remote, 0.3 * loc);  // but not catastrophically so
}

TEST_F(RemoteMemory, CappedByQpiAtFullConcurrency) {
    const ConcurrencyConfig full{12, 2};
    const double remote =
        model.remote_dram_read(full, kCore, kUnc, kUnc).as_gb_per_sec();
    EXPECT_LE(remote, model.link().effective_bandwidth().as_gb_per_sec() + 1e-9);
}

TEST_F(RemoteMemory, HaswellRemoteAlwaysQpiBound) {
    // Across the whole valid uncore range (1.2-3.0 GHz) the Haswell remote
    // IMC cap stays above the QPI payload bandwidth: the link is the
    // binding constraint (uncore slowdowns do not throttle further).
    const ConcurrencyConfig full{12, 2};
    const double fast =
        model.remote_dram_read(full, kCore, kUnc, Frequency::ghz(3.0)).as_gb_per_sec();
    const double slow =
        model.remote_dram_read(full, kCore, kUnc, Frequency::ghz(1.2)).as_gb_per_sec();
    EXPECT_NEAR(fast, model.link().effective_bandwidth().as_gb_per_sec(), 1e-6);
    EXPECT_NEAR(slow, fast, 1e-6);
}

TEST(RemoteMemorySnbThrottle, CoupledUncoreShrinksRemoteImcCap) {
    // On Sandy Bridge-EP the remote IMC capacity drops with the (coupled)
    // remote uncore clock below the QPI payload cap, so a slow remote
    // socket bounds the achievable bandwidth.
    RemoteMemoryModel snb{arch::Generation::SandyBridgeEP, 8};
    const BandwidthModel local_model{arch::Generation::SandyBridgeEP, 8};
    const ConcurrencyConfig full{8, 2};
    const Frequency core = Frequency::ghz(2.6);
    const double slow =
        snb.remote_dram_read(full, core, Frequency::ghz(2.6), Frequency::ghz(1.2))
            .as_gb_per_sec();
    const double remote_cap =
        local_model.dram_read(full, core, Frequency::ghz(1.2)).as_gb_per_sec();
    EXPECT_LT(remote_cap, snb.link().effective_bandwidth().as_gb_per_sec());
    EXPECT_LE(slow, remote_cap + 1e-9);
    // ...and it never exceeds the fast-remote case.
    const double fast =
        snb.remote_dram_read(full, core, Frequency::ghz(2.6), Frequency::ghz(2.6))
            .as_gb_per_sec();
    EXPECT_LE(slow, fast + 1e-9);
}

TEST_F(RemoteMemory, NumaFactorInRealisticRange) {
    const double f = model.numa_factor(ConcurrencyConfig{12, 2}, kCore, kUnc);
    EXPECT_GT(f, 0.40);
    EXPECT_LT(f, 0.85);
}

TEST_F(RemoteMemory, SingleThreadDominatedByLatency) {
    // One thread: the extra QPI hop shows as a bandwidth loss even though
    // the link is nowhere near saturated.
    const ConcurrencyConfig one{1, 1};
    const double remote =
        model.remote_dram_read(one, kCore, kUnc, kUnc).as_gb_per_sec();
    const BandwidthModel local{arch::Generation::HaswellEP, 12};
    const double loc = local.dram_read(one, kCore, kUnc).as_gb_per_sec();
    EXPECT_LT(remote, loc * 0.95);
    EXPECT_LT(remote, model.link().effective_bandwidth().as_gb_per_sec());
}

TEST(RemoteMemorySnb, OlderLinkIsSlower) {
    RemoteMemoryModel hsw{arch::Generation::HaswellEP, 12};
    RemoteMemoryModel wsm{arch::Generation::WestmereEP, 6};
    const ConcurrencyConfig full{6, 2};
    const Frequency core = Frequency::ghz(2.5);
    EXPECT_GT(hsw.remote_dram_read(full, core, Frequency::ghz(3.0), Frequency::ghz(3.0))
                  .as_gb_per_sec(),
              wsm.remote_dram_read(full, core, Frequency::ghz(2.66), Frequency::ghz(2.66))
                  .as_gb_per_sec());
}

}  // namespace
}  // namespace hsw::mem
