#include <gtest/gtest.h>

#include "mem/cache.hpp"

namespace hsw::mem {
namespace {

TEST(Cache, HaswellDoublesL1L2BandwidthOverSandyBridge) {
    const auto& hsw = hierarchy_for(arch::Generation::HaswellEP);
    const auto& snb = hierarchy_for(arch::Generation::SandyBridgeEP);
    EXPECT_EQ(hsw.at(Level::L1D).read_bytes_per_cycle,
              2 * snb.at(Level::L1D).read_bytes_per_cycle);
    EXPECT_EQ(hsw.at(Level::L2).read_bytes_per_cycle,
              2 * snb.at(Level::L2).read_bytes_per_cycle);
}

TEST(Cache, StandardCapacities) {
    const auto& hsw = hierarchy_for(arch::Generation::HaswellEP);
    EXPECT_EQ(hsw.at(Level::L1D).capacity_bytes, 32u * 1024);
    EXPECT_EQ(hsw.at(Level::L2).capacity_bytes, 256u * 1024);
    EXPECT_EQ(hsw.at(Level::L3).capacity_bytes, 2560u * 1024);  // per slice
    EXPECT_EQ(hsw.at(Level::L1D).line_bytes, 64u);
}

TEST(Cache, LatencyIncreasesDownTheHierarchy) {
    for (auto gen : {arch::Generation::HaswellEP, arch::Generation::SandyBridgeEP,
                     arch::Generation::WestmereEP}) {
        const auto& h = hierarchy_for(gen);
        EXPECT_LT(h.at(Level::L1D).latency_cycles, h.at(Level::L2).latency_cycles);
        EXPECT_LT(h.at(Level::L2).latency_cycles, h.at(Level::L3).latency_cycles);
        EXPECT_LT(h.at(Level::L3).latency_cycles, h.at(Level::Dram).latency_cycles);
    }
}

TEST(Cache, WorkingSetLevelResolution) {
    const auto& h = hierarchy_for(arch::Generation::HaswellEP);
    EXPECT_EQ(h.level_for_working_set(16 * 1024, 12), Level::L1D);
    EXPECT_EQ(h.level_for_working_set(128 * 1024, 12), Level::L2);
    // The paper's 17 MB L3 set fits the 30 MiB L3 of the 12-core part.
    EXPECT_EQ(h.level_for_working_set(17u * 1024 * 1024, 12), Level::L3);
    // The 350 MB DRAM set does not.
    EXPECT_EQ(h.level_for_working_set(350u * 1024 * 1024, 12), Level::Dram);
}

TEST(Cache, LevelNames) {
    EXPECT_EQ(name(Level::L1D), "L1D");
    EXPECT_EQ(name(Level::Dram), "DRAM");
}

}  // namespace
}  // namespace hsw::mem
