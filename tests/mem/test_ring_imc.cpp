#include <gtest/gtest.h>

#include "mem/imc.hpp"
#include "mem/ring.hpp"

namespace hsw::mem {
namespace {

using util::Frequency;

TEST(Ring, CapacityScalesWithUncoreClock) {
    const auto topo = arch::make_die_topology(12);
    const RingInterconnect ring{topo, 110.0};
    const double at_15 = ring.capacity(Frequency::ghz(1.5)).as_gb_per_sec();
    const double at_30 = ring.capacity(Frequency::ghz(3.0)).as_gb_per_sec();
    EXPECT_NEAR(at_30, 2.0 * at_15, 1e-9);
}

TEST(Ring, CrossPartitionPathsShareQueues) {
    const auto topo = arch::make_die_topology(12);
    const RingInterconnect ring{topo, 110.0};
    const Frequency unc = Frequency::ghz(3.0);
    // cores 0-7 on partition 0, 8-11 on partition 1 (Fig. 1a).
    EXPECT_DOUBLE_EQ(ring.path_capacity(0, 7, unc).as_gb_per_sec(),
                     ring.capacity(unc).as_gb_per_sec());
    EXPECT_DOUBLE_EQ(ring.path_capacity(0, 9, unc).as_gb_per_sec(),
                     ring.capacity(unc).as_gb_per_sec() *
                         RingInterconnect::kQueueCapacityFraction);
    EXPECT_EQ(ring.cross_partition_penalty_cycles(0, 7), 0u);
    EXPECT_EQ(ring.cross_partition_penalty_cycles(0, 9),
              RingInterconnect::kQueueHopCycles);
}

TEST(Imc, TheoreticalPeakMatchesTable1) {
    // 4 x DDR4-2133 x 8 B = 68.2 GB/s (Table I).
    const Imc hsw{arch::Generation::HaswellEP, 4};
    EXPECT_NEAR(hsw.theoretical_peak().as_gb_per_sec(), 68.2, 0.1);
    // 4 x DDR3-1600 x 8 B = 51.2 GB/s.
    const Imc snb{arch::Generation::SandyBridgeEP, 4};
    EXPECT_NEAR(snb.theoretical_peak().as_gb_per_sec(), 51.2, 0.1);
}

TEST(Imc, SustainedBelowTheoretical) {
    const Imc imc{arch::Generation::HaswellEP, 4};
    EXPECT_LT(imc.sustained_read_peak().as_gb_per_sec(),
              imc.theoretical_peak().as_gb_per_sec());
    EXPECT_GT(imc.sustained_read_peak().as_gb_per_sec(),
              imc.theoretical_peak().as_gb_per_sec() * 0.7);
}

TEST(Imc, ChannelScaling) {
    const Imc two{arch::Generation::HaswellEP, 2};
    const Imc four{arch::Generation::HaswellEP, 4};
    EXPECT_NEAR(four.theoretical_peak().as_gb_per_sec(),
                2.0 * two.theoretical_peak().as_gb_per_sec(), 1e-9);
}

}  // namespace
}  // namespace hsw::mem
