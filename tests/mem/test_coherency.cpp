#include <gtest/gtest.h>

#include "mem/coherency.hpp"

namespace hsw::mem {
namespace {

using util::Frequency;

class Coherency : public ::testing::Test {
protected:
    arch::DieTopology topo = arch::make_die_topology(12);
    CoherencyModel model{arch::Generation::HaswellEP, topo};
    static constexpr Frequency kCore = Frequency::ghz(2.5);
    static constexpr Frequency kUnc = Frequency::ghz(3.0);

    double lat(LineSource s, unsigned req = 0, unsigned hold = 1) const {
        return model.latency_ns(s, req, hold, kCore, kUnc);
    }
};

TEST_F(Coherency, LatencyOrderingDownTheHierarchy) {
    EXPECT_LT(lat(LineSource::OwnL1), lat(LineSource::OwnL2));
    EXPECT_LT(lat(LineSource::OwnL2), lat(LineSource::L3Clean));
    EXPECT_LT(lat(LineSource::L3Clean), lat(LineSource::PeerModified));
    EXPECT_LT(lat(LineSource::PeerModified), lat(LineSource::RemoteL3));
    EXPECT_LT(lat(LineSource::RemoteL3), lat(LineSource::RemoteModified));
    EXPECT_LT(lat(LineSource::L3Clean), lat(LineSource::Dram));
}

TEST_F(Coherency, PlausibleAbsoluteValues) {
    EXPECT_NEAR(lat(LineSource::OwnL1), 1.6, 0.3);        // 4 cyc @ 2.5 GHz
    EXPECT_NEAR(lat(LineSource::L3Clean), 12.1, 2.0);     // ~30-40 cyc total
    EXPECT_GT(lat(LineSource::RemoteModified), 90.0);     // QPI round trip
    EXPECT_GT(lat(LineSource::Dram), 60.0);
    EXPECT_LT(lat(LineSource::Dram), 120.0);
}

TEST_F(Coherency, CrossPartitionTransfersPayTheQueues) {
    // cores 0-7 on partition 0, 8-11 on partition 1 (12-core die, Fig. 1a).
    const double same = model.latency_ns(LineSource::PeerModified, 0, 5, kCore, kUnc);
    const double cross = model.latency_ns(LineSource::PeerModified, 0, 9, kCore, kUnc);
    EXPECT_GT(cross, same + 2.0);
}

TEST_F(Coherency, UncoreClockGovernsOnDieTransfers) {
    // Section II-D: "The uncore frequency has a significant impact on
    // on-die cache-line transfer rates."
    const double fast =
        model.latency_ns(LineSource::PeerModified, 0, 5, kCore, Frequency::ghz(3.0));
    const double slow =
        model.latency_ns(LineSource::PeerModified, 0, 5, kCore, Frequency::ghz(1.2));
    EXPECT_GT(slow, fast * 1.8);
    // Own-cache hits do not care about the uncore.
    EXPECT_DOUBLE_EQ(
        model.latency_ns(LineSource::OwnL1, 0, 0, kCore, Frequency::ghz(3.0)),
        model.latency_ns(LineSource::OwnL1, 0, 0, kCore, Frequency::ghz(1.2)));
}

TEST_F(Coherency, UncoreShareHighestForOnDieTransfers) {
    EXPECT_EQ(model.uncore_share(LineSource::OwnL1), 0.0);
    EXPECT_GT(model.uncore_share(LineSource::PeerModified), 0.5);
    // Remote transfers are dominated by the fixed QPI hop.
    EXPECT_LT(model.uncore_share(LineSource::RemoteModified),
              model.uncore_share(LineSource::PeerModified));
}

TEST_F(Coherency, CoreClockGovernsPrivateHits) {
    const double fast =
        model.latency_ns(LineSource::OwnL2, 0, 0, Frequency::ghz(2.5), kUnc);
    const double slow =
        model.latency_ns(LineSource::OwnL2, 0, 0, Frequency::ghz(1.2), kUnc);
    EXPECT_NEAR(slow / fast, 2.5 / 1.2, 0.01);
}

TEST(CoherencySnb, HaswellNotSlowerOnDie) {
    const auto topo_hsw = arch::make_die_topology(12);
    const auto topo_snb = arch::make_die_topology(8);
    const CoherencyModel hsw{arch::Generation::HaswellEP, topo_hsw};
    const CoherencyModel snb{arch::Generation::SandyBridgeEP, topo_snb};
    const Frequency core = Frequency::ghz(2.5);
    // At its (higher) native uncore clock, Haswell's L3 path is at least
    // as fast as Sandy Bridge's core-coupled one.
    EXPECT_LE(hsw.latency_ns(LineSource::L3Clean, 0, 1, core, Frequency::ghz(3.0)),
              snb.latency_ns(LineSource::L3Clean, 0, 1, core, Frequency::ghz(2.5)) +
                  1.0);
}

}  // namespace
}  // namespace hsw::mem
