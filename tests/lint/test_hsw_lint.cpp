// hsw_lint behaves exactly as documented: each fixture violates one rule,
// the clean and suppressed fixtures pass, and the real tree stays clean
// (that last part is the separate hsw_lint.tree ctest).
#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "hsw_lint/lint.hpp"

namespace {

using hsw::lint::Catalog;
using hsw::lint::Finding;
using hsw::lint::lint_file;
using hsw::lint::lint_tree;

// Set by CMake to tests/lint_fixtures in the source tree.
const char* const kFixtures = HSW_LINT_FIXTURES_DIR;

std::vector<Finding> fixture_findings() {
    static const auto result = lint_tree({kFixtures});
    return result.findings;
}

std::vector<Finding> findings_for(const std::string& file_suffix) {
    std::vector<Finding> out;
    for (const auto& f : fixture_findings()) {
        if (f.path.size() >= file_suffix.size() &&
            f.path.compare(f.path.size() - file_suffix.size(), file_suffix.size(),
                           file_suffix) == 0) {
            out.push_back(f);
        }
    }
    return out;
}

TEST(HswLint, FixtureTreeScansAllFiles) {
    const auto result = lint_tree({kFixtures});
    // 17 .cpp fixtures + the fixture catalog header.
    EXPECT_EQ(result.files_scanned, 18u);
}

TEST(HswLint, WallClockInSimFires) {
    const auto found = findings_for("sim/wallclock_violation.cpp");
    ASSERT_EQ(found.size(), 1u);
    EXPECT_EQ(found[0].rule, "determinism-wallclock");
    EXPECT_EQ(found[0].line, 7);
}

TEST(HswLint, RawRngInSimFires) {
    const auto found = findings_for("sim/rng_violation.cpp");
    ASSERT_EQ(found.size(), 1u);
    EXPECT_EQ(found[0].rule, "determinism-rng");
    EXPECT_EQ(found[0].line, 7);
}

TEST(HswLint, RawSeedRngConstructionInEngineFires) {
    const auto found = findings_for("engine/rng_construct_violation.cpp");
    ASSERT_EQ(found.size(), 1u);
    EXPECT_EQ(found[0].rule, "engine-rng-derive");
    EXPECT_EQ(found[0].line, 7);
}

TEST(HswLint, AllocationInsideHotRegionFires) {
    const auto found = findings_for("engine/hot_alloc_violation.cpp");
    ASSERT_EQ(found.size(), 1u);
    EXPECT_EQ(found[0].rule, "hot-path-alloc");
    EXPECT_EQ(found[0].line, 8);
    // The identical call outside the region (line 14) stayed clean.
}

TEST(HswLint, BlockingSocketCallOnReactorThreadFires) {
    const auto found = findings_for("service/reactor_blocking_violation.cpp");
    ASSERT_EQ(found.size(), 1u);
    EXPECT_EQ(found[0].rule, "reactor-blocking");
    EXPECT_EQ(found[0].line, 10);
    // The allow()-suppressed call on line 13 and the acceptor-thread call
    // outside the region (line 18) both stayed clean.
}

TEST(HswLint, ReactorRegionRuleInlineOnSyntheticSource) {
    // The region markers live in comments, the tokens in code; read_frame
    // (the blocking frame helper) fires, epoll_wait does not.
    const std::string content =
        "// hsw:reactor-thread\n"
        "void loop() { epoll_wait(1, nullptr, 0, -1); read_frame(3); }\n"
        "// hsw:end-reactor-thread\n"
        "void outside() { read_frame(3); }\n";
    const auto found = lint_file("src/service/r.cpp", content, Catalog{});
    ASSERT_EQ(found.size(), 1u);
    EXPECT_EQ(found[0].rule, "reactor-blocking");
    EXPECT_EQ(found[0].line, 2);
}

TEST(HswLint, SharedLockGuardCountsForLockAcrossIo) {
    const std::string content =
        "void f() {\n"
        "    util::SharedLockGuard lock{mu};\n"
        "    printf(\"x\");\n"
        "}\n";
    const auto found = lint_file("src/service/g.cpp", content, Catalog{});
    ASSERT_EQ(found.size(), 1u);
    EXPECT_EQ(found[0].rule, "lock-across-io");
    EXPECT_EQ(found[0].line, 3);
}

TEST(HswLint, IoUnderLockGuardFires) {
    const auto found = findings_for("service/lock_io_violation.cpp");
    ASSERT_EQ(found.size(), 1u);
    EXPECT_EQ(found[0].rule, "lock-across-io");
    EXPECT_EQ(found[0].line, 12);
    // fclose() after lock.unlock() and the second function's fopen() after
    // the guard's scope closed are both clean.
}

TEST(HswLint, LayeringViolationsFirePerInclude) {
    const auto found = findings_for("sim/layering_violation.cpp");
    ASSERT_EQ(found.size(), 2u);
    EXPECT_EQ(found[0].rule, "include-layering");
    EXPECT_EQ(found[1].rule, "include-layering");
}

TEST(HswLint, RouterReachingBelowServiceFires) {
    const auto found = findings_for("router/layering_violation.cpp");
    ASSERT_EQ(found.size(), 2u);
    EXPECT_EQ(found[0].rule, "include-layering");
    EXPECT_EQ(found[1].rule, "include-layering");
}

TEST(HswLint, LowerLayerIncludingRouterFires) {
    const auto found = findings_for("core/includes_router_violation.cpp");
    ASSERT_EQ(found.size(), 1u);
    EXPECT_EQ(found[0].rule, "include-layering");
    EXPECT_EQ(found[0].line, 3);
}

TEST(HswLint, PlatformReachingUpFires) {
    const auto found = findings_for("platform/layering_violation.cpp");
    ASSERT_EQ(found.size(), 2u);
    EXPECT_EQ(found[0].rule, "include-layering");
    EXPECT_EQ(found[1].rule, "include-layering");
}

TEST(HswLint, DeviceModelIncludingPlatformFires) {
    const auto found = findings_for("rapl/includes_platform_violation.cpp");
    ASSERT_EQ(found.size(), 1u);
    EXPECT_EQ(found[0].rule, "include-layering");
    EXPECT_EQ(found[0].line, 3);
}

TEST(HswLint, RawHwpMsrAddressesFire) {
    const auto found = findings_for("pcu/hwp_msr_violation.cpp");
    ASSERT_EQ(found.size(), 2u);
    EXPECT_EQ(found[0].rule, "msr-catalog");
    EXPECT_EQ(found[0].line, 5);
    EXPECT_EQ(found[1].rule, "msr-catalog");
    EXPECT_EQ(found[1].line, 9);
    // The non-catalog 0xFF mask stayed clean.
}

TEST(HswLint, RawMsrAddressFires) {
    const auto found = findings_for("core/msr_violation.cpp");
    ASSERT_EQ(found.size(), 1u);
    EXPECT_EQ(found[0].rule, "msr-catalog");
    EXPECT_EQ(found[0].line, 8);
    // The same value in a string / comment and the non-catalog 0x7FFF mask
    // stayed clean.
}

TEST(HswLint, StdSyncPrimitivesFire) {
    const auto found = findings_for("obs/wrappers_violation.cpp");
    ASSERT_GE(found.size(), 2u);
    for (const auto& f : found) EXPECT_EQ(f.rule, "concurrency-wrappers");
}

TEST(HswLint, AccessLogComputedFieldNameFires) {
    const auto found = findings_for("obs/accesslog_violation.cpp");
    ASSERT_EQ(found.size(), 1u);
    EXPECT_EQ(found[0].rule, "accesslog-literal-field");
    EXPECT_EQ(found[0].line, 11);
    // The literal call on line 10 and the declaration stayed clean.
}

TEST(HswLint, AccessLogLiteralFieldInlineOnSyntheticSource) {
    // Literal names pass; a variable name fires; the declaration (an
    // identifier precedes the call) is exempt.
    const std::string content =
        "void append_field(std::string& out, std::string_view name);\n"
        "void f(std::string& out, const char* k) {\n"
        "    append_field(out, \"us\");\n"
        "    append_field(out, k);\n"
        "}\n";
    const auto found = lint_file("src/obs/a.cpp", content, Catalog{});
    ASSERT_EQ(found.size(), 1u);
    EXPECT_EQ(found[0].rule, "accesslog-literal-field");
    EXPECT_EQ(found[0].line, 4);
}

TEST(HswLint, SuppressionsSilenceFindings) {
    EXPECT_TRUE(findings_for("sim/suppressed.cpp").empty());
}

TEST(HswLint, CleanFileIsClean) {
    EXPECT_TRUE(findings_for("sim/clean.cpp").empty());
}

TEST(HswLint, CatalogFileItselfIsExempt) {
    EXPECT_TRUE(findings_for("msr/addresses.hpp").empty());
}

TEST(HswLint, FormatIsPathLineRuleMessage) {
    const Finding f{"src/sim/x.cpp", 12, "determinism-rng", "no"};
    EXPECT_EQ(hsw::lint::format(f), "src/sim/x.cpp:12: [determinism-rng] no");
}

TEST(HswLint, LintFileRunsWithoutCatalog) {
    // Hex literals cannot be checked without a catalog, but every other
    // rule still runs.
    const auto found =
        lint_file("src/sim/f.cpp", "int x = std::rand();\n", Catalog{});
    ASSERT_EQ(found.size(), 1u);
    EXPECT_EQ(found[0].rule, "determinism-rng");
}

TEST(HswLint, TokensInStringsAndCommentsNeverFire) {
    const std::string content =
        "// std::mutex is mentioned here\n"
        "const char* s = \"std::condition_variable rand() 0x611\";\n";
    Catalog catalog;
    catalog.msr_values.insert(0x611);
    EXPECT_TRUE(lint_file("src/obs/doc.cpp", content, catalog).empty());
}

TEST(HswLint, BlockCommentsSpanLines) {
    const std::string content =
        "/* rand() inside a block comment\n"
        "   still rand() here */\n"
        "int live = std::rand();\n";
    const auto found = lint_file("src/sim/b.cpp", content, Catalog{});
    ASSERT_EQ(found.size(), 1u);
    EXPECT_EQ(found[0].line, 3);
}

}  // namespace
