#include <gtest/gtest.h>

#include "engine/blob.hpp"
#include "engine/spec.hpp"

namespace hsw::engine {
namespace {

TEST(Sha256, KnownVectors) {
    // FIPS 180-4 test vectors.
    EXPECT_EQ(sha256_hex(""),
              "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
    EXPECT_EQ(sha256_hex("abc"),
              "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
    EXPECT_EQ(sha256_hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
              "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, LongInputCrossesBlockBoundaries) {
    // One million 'a' characters (FIPS vector), exercising the multi-block path.
    const std::string a_million(1'000'000, 'a');
    EXPECT_EQ(sha256_hex(a_million),
              "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
    // 55/56/63/64/65 bytes straddle the single- vs two-block padding split.
    for (const std::size_t n : {55u, 56u, 63u, 64u, 65u}) {
        EXPECT_EQ(sha256_hex(std::string(n, 'x')).size(), 64u);
    }
}

TEST(Sha256, Prefix64IsBigEndianDigestHead) {
    const auto digest = sha256("abc");
    EXPECT_EQ(digest_prefix64(digest), 0xba7816bf8f01cfeaULL);
}

TEST(ExperimentSpec, CanonicalTextIsInsertionOrderIndependent) {
    ExperimentSpec a;
    a.experiment = "fig7";
    a.point = "generation=Haswell-EP";
    a.set_param("zeta", "1");
    a.set_param("alpha", "2");

    ExperimentSpec b = a;
    b = ExperimentSpec{};
    b.experiment = "fig7";
    b.point = "generation=Haswell-EP";
    b.set_param("alpha", "2");
    b.set_param("zeta", "1");

    EXPECT_EQ(a.canonical_text(), b.canonical_text());
    EXPECT_EQ(a.hash_hex(), b.hash_hex());

    // Re-setting a parameter replaces, not duplicates.
    b.set_param("alpha", "3");
    b.set_param("alpha", "2");
    EXPECT_EQ(a.canonical_text(), b.canonical_text());
}

TEST(ExperimentSpec, EveryFieldReachesTheHash) {
    ExperimentSpec base;
    base.experiment = "fig3";
    base.set_param("samples", "1000");
    const std::string h0 = base.hash_hex();

    ExperimentSpec s = base;
    s.experiment = "fig4";
    EXPECT_NE(s.hash_hex(), h0);

    s = base;
    s.point = "generation=Haswell-EP";
    EXPECT_NE(s.hash_hex(), h0);

    s = base;
    s.base_seed = 0xDEADBEEF;
    EXPECT_NE(s.hash_hex(), h0);

    s = base;
    s.audit = analysis::AuditMode::Strict;
    EXPECT_NE(s.hash_hex(), h0);

    s = base;
    s.set_param("samples", "1001");
    EXPECT_NE(s.hash_hex(), h0);
}

TEST(ExperimentSpec, JobSeedIsStableAndPointSensitive) {
    ExperimentSpec a;
    a.experiment = "table5";
    a.point = "FIRESTARTER.turbo.perf";
    EXPECT_EQ(a.job_seed(), a.job_seed());

    ExperimentSpec b = a;
    b.point = "FIRESTARTER.turbo.bal";
    EXPECT_NE(a.job_seed(), b.job_seed());

    // Not the base seed itself: jobs never consume the raw user seed.
    EXPECT_NE(a.job_seed(), a.base_seed);
}

TEST(ExperimentSpec, ParamLookup) {
    ExperimentSpec s;
    s.set_param("samples", "40");
    ASSERT_NE(s.param("samples"), nullptr);
    EXPECT_EQ(*s.param("samples"), "40");
    EXPECT_EQ(s.param("absent"), nullptr);
}

TEST(Blob, RoundTripsArbitraryBytes) {
    const BlobSections sections{
        {"csv", "a,b\n1,2\n"},
        {"binary", std::string{"\x00\x01section x 3\n\xff", 17}},
        {"empty", ""},
    };
    const std::string packed = pack_sections(sections);
    const auto unpacked = unpack_sections(packed);
    ASSERT_TRUE(unpacked.has_value());
    EXPECT_EQ(*unpacked, sections);

    EXPECT_EQ(section(packed, "csv"), "a,b\n1,2\n");
    EXPECT_EQ(section(packed, "empty"), "");
    EXPECT_EQ(section(packed, "missing"), std::nullopt);
}

TEST(Blob, RejectsCorruption) {
    const std::string packed = pack_sections({{"csv", "payload"}});
    EXPECT_FALSE(unpack_sections("not a blob").has_value());
    EXPECT_FALSE(unpack_sections(packed.substr(0, packed.size() - 3)).has_value());
    std::string bad_length = packed;
    bad_length.replace(bad_length.find(" 7\n"), 3, " 9\n");
    EXPECT_FALSE(unpack_sections(bad_length).has_value());
}

}  // namespace
}  // namespace hsw::engine
