#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "engine/engine.hpp"
#include "engine/result_cache.hpp"

namespace hsw::engine {
namespace {

namespace fs = std::filesystem;

class ResultCacheTest : public ::testing::Test {
protected:
    void SetUp() override {
        dir_ = fs::temp_directory_path() /
               ("hsw_cache_test_" +
                std::string{::testing::UnitTest::GetInstance()->current_test_info()->name()});
        fs::remove_all(dir_);
    }
    void TearDown() override { fs::remove_all(dir_); }

    static ExperimentSpec spec(const char* point = "all") {
        ExperimentSpec s;
        s.experiment = "fig3";
        s.point = point;
        s.set_param("samples", "40");
        return s;
    }

    fs::path dir_;
};

TEST_F(ResultCacheTest, MissOnEmptyThenHitAfterStore) {
    ResultCache cache{dir_};
    EXPECT_EQ(cache.load(spec()), std::nullopt);
    cache.store(spec(), "payload bytes\nwith newline");
    EXPECT_EQ(cache.load(spec()), "payload bytes\nwith newline");
}

TEST_F(ResultCacheTest, StoreOverwrites) {
    ResultCache cache{dir_};
    cache.store(spec(), "first");
    cache.store(spec(), "second");
    EXPECT_EQ(cache.load(spec()), "second");
}

TEST_F(ResultCacheTest, DifferentSpecsDoNotCollide) {
    ResultCache cache{dir_};
    cache.store(spec("a"), "for a");
    cache.store(spec("b"), "for b");
    EXPECT_EQ(cache.load(spec("a")), "for a");
    EXPECT_EQ(cache.load(spec("b")), "for b");
}

TEST_F(ResultCacheTest, TruncatedEntryIsMissNotCrash) {
    ResultCache cache{dir_};
    cache.store(spec(), "a payload long enough to truncate meaningfully");
    const fs::path entry = cache.entry_path(spec());
    const auto full_size = fs::file_size(entry);
    for (const std::uintmax_t keep : {full_size - 1, full_size / 2,
                                      std::uintmax_t{16}, std::uintmax_t{0}}) {
        fs::resize_file(entry, keep);
        EXPECT_EQ(cache.load(spec()), std::nullopt) << "kept " << keep << " bytes";
    }
}

TEST_F(ResultCacheTest, BitFlippedPayloadIsMiss) {
    ResultCache cache{dir_};
    cache.store(spec(), "payload payload payload");
    const fs::path entry = cache.entry_path(spec());
    std::string bytes;
    {
        std::ifstream in{entry, std::ios::binary};
        bytes.assign(std::istreambuf_iterator<char>{in}, {});
    }
    bytes[bytes.size() - 5] ^= 0x40;  // flip a bit inside the payload
    {
        std::ofstream out{entry, std::ios::binary | std::ios::trunc};
        out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    }
    EXPECT_EQ(cache.load(spec()), std::nullopt);
}

TEST_F(ResultCacheTest, TrailingJunkIsMiss) {
    ResultCache cache{dir_};
    cache.store(spec(), "payload");
    std::ofstream out{cache.entry_path(spec()), std::ios::binary | std::ios::app};
    out << "extra";
    out.close();
    EXPECT_EQ(cache.load(spec()), std::nullopt);
}

TEST_F(ResultCacheTest, CodeVersionSaltInvalidates) {
    ResultCache v1{dir_, "engine-v1"};
    v1.store(spec(), "computed under v1");
    EXPECT_EQ(v1.load(spec()), "computed under v1");

    ResultCache v2{dir_, "engine-v2"};
    EXPECT_EQ(v2.load(spec()), std::nullopt);
    v2.store(spec(), "computed under v2");
    EXPECT_EQ(v2.load(spec()), "computed under v2");
    // Same path, so the v1 entry was superseded, not duplicated.
    EXPECT_EQ(v1.load(spec()), std::nullopt);
}

// Partial rerun through the engine: editing one spec recomputes only that
// job; the untouched jobs all come back as cache hits.
TEST_F(ResultCacheTest, PartialRerunRecomputesOnlyEditedPoints) {
    auto make_experiment = [](const std::string& samples) {
        Experiment e;
        e.name = "synthetic";
        for (const char* point : {"a", "b", "c"}) {
            Job job;
            job.spec.experiment = "synthetic";
            job.spec.point = point;
            job.spec.set_param("samples", point == std::string{"b"} ? samples : "10");
            job.run = [](const ExperimentSpec& s) {
                return s.point + ":" + *s.param("samples");
            };
            e.jobs.push_back(std::move(job));
        }
        e.assemble = [](const std::vector<std::string>& payloads) {
            std::string all;
            for (const auto& p : payloads) all += p + "\n";
            return std::vector<Artifact>{Artifact{"synthetic.csv", ArtifactKind::Csv, all}};
        };
        return e;
    };

    RunOptions options;
    options.cache_dir = dir_;
    const RunReport cold = run_experiments({make_experiment("10")}, options);
    EXPECT_EQ(cold.cache_hits, 0u);
    EXPECT_EQ(cold.cache_misses, 3u);

    const RunReport warm = run_experiments({make_experiment("10")}, options);
    EXPECT_EQ(warm.cache_hits, 3u);
    EXPECT_EQ(warm.cache_misses, 0u);
    ASSERT_EQ(warm.artifacts.size(), 1u);
    EXPECT_EQ(warm.artifacts[0].contents, cold.artifacts[0].contents);

    const RunReport edited = run_experiments({make_experiment("99")}, options);
    EXPECT_EQ(edited.cache_hits, 2u);
    EXPECT_EQ(edited.cache_misses, 1u);
    EXPECT_NE(edited.artifacts[0].contents, cold.artifacts[0].contents);
}

}  // namespace
}  // namespace hsw::engine
