// The engine's core promise: output bytes do not depend on the worker
// count, the schedule, or the cache state. Runs the full (tuned-down)
// survey at --jobs 1 and --jobs 8 and compares every artifact byte for
// byte, then checks the engine against direct serial driver calls.
#include <gtest/gtest.h>

#include <filesystem>
#include <map>

#include "engine/survey_experiments.hpp"
#include "survey/fig78_bandwidth.hpp"
#include "survey/table5_maxpower.hpp"
#include "util/table.hpp"
#include "workloads/mixes.hpp"

namespace hsw::engine {
namespace {

std::map<std::string, std::string> artifact_map(const RunReport& report) {
    std::map<std::string, std::string> out;
    for (const auto& a : report.artifacts) out[a.filename] = a.contents;
    return out;
}

RunReport run_survey(unsigned jobs, std::optional<std::filesystem::path> cache = {}) {
    RunOptions options;
    options.jobs = jobs;
    options.cache_dir = std::move(cache);
    return run_experiments(survey_experiments(SurveyTuning::quick()), options);
}

TEST(EngineDeterminism, Jobs8MatchesJobs1ByteForByteOnEveryArtifact) {
    const RunReport serial = run_survey(1);
    const RunReport parallel = run_survey(8);
    ASSERT_TRUE(serial.ok()) << serial.summary();
    ASSERT_TRUE(parallel.ok()) << parallel.summary();

    const auto a = artifact_map(serial);
    const auto b = artifact_map(parallel);
    ASSERT_EQ(a.size(), b.size());
    // Every figure/table driver is represented: 15 experiments x (csv + render).
    EXPECT_EQ(a.size(), 30u);
    for (const auto& [name, contents] : a) {
        ASSERT_TRUE(b.count(name)) << name;
        EXPECT_EQ(contents, b.at(name)) << "artifact " << name << " differs";
    }
}

TEST(EngineDeterminism, RepeatedRunsAreIdentical) {
    const auto a = artifact_map(run_survey(4));
    const auto b = artifact_map(run_survey(4));
    EXPECT_EQ(a, b);
}

TEST(EngineDeterminism, WarmCacheRunReturnsIdenticalBytesAllHits) {
    const std::filesystem::path dir =
        std::filesystem::temp_directory_path() / "hsw_determinism_cache";
    std::filesystem::remove_all(dir);

    const RunReport cold = run_survey(8, dir);
    ASSERT_TRUE(cold.ok());
    EXPECT_EQ(cold.cache_hits, 0u);

    const RunReport warm = run_survey(8, dir);
    EXPECT_EQ(warm.cache_hits, warm.jobs.size());
    EXPECT_EQ(warm.cache_misses, 0u);
    EXPECT_EQ(artifact_map(cold), artifact_map(warm));
    std::filesystem::remove_all(dir);
}

// The engine's artifacts must agree with calling the serial drivers
// directly, seeded with the same spec-derived seeds -- the parallel fan-out
// may not alter a single byte relative to the plain driver path.
TEST(EngineDeterminism, EngineMatchesDirectDriverCalls) {
    const SurveyTuning tuning = SurveyTuning::quick();
    const auto experiments = survey_experiments(tuning);
    const auto artifacts = artifact_map(run_survey(8));

    // fig7: per-generation driver calls, concatenated in experiment order.
    const Experiment* fig7 = find_experiment(experiments, "fig7");
    ASSERT_NE(fig7, nullptr);
    std::string expected_csv = "generation,set_ghz,relative_l3,relative_dram\n";
    const arch::Generation gens[] = {arch::Generation::WestmereEP,
                                     arch::Generation::SandyBridgeEP,
                                     arch::Generation::HaswellEP};
    for (std::size_t i = 0; i < 3; ++i) {
        const auto series = survey::fig7_generation(
            gens[i], fig7->jobs[i].spec.job_seed(), fig7->jobs[i].spec.audit_config());
        for (const auto& p : series.points) {
            expected_csv += std::string{arch::traits(series.generation).name} + ',' +
                            util::Table::fmt(p.set_ghz, 2) + ',' +
                            util::Table::fmt(p.relative_l3, 4) + ',' +
                            util::Table::fmt(p.relative_dram, 4) + '\n';
        }
    }
    ASSERT_TRUE(artifacts.count("fig7_relative_bandwidth.csv"));
    EXPECT_EQ(artifacts.at("fig7_relative_bandwidth.csv"), expected_csv);

    // table5: one independent cell, computed directly with the job's seed.
    const Experiment* table5 = find_experiment(experiments, "table5");
    ASSERT_NE(table5, nullptr);
    const Job& first_cell = table5->jobs.front();  // FIRESTARTER, fixed, power
    survey::MaxPowerConfig cfg;
    cfg.run_time = tuning.table5_run_time;
    cfg.window = tuning.table5_window;
    cfg.seed = first_cell.spec.job_seed();
    const auto cell = survey::table5_cell(workloads::firestarter(), false,
                                          msr::EpbPolicy::EnergySaving, cfg);
    const std::string expected_row = "FIRESTARTER,2.5,power," +
                                     util::Table::fmt(cell.ac_watts, 1) + ',' +
                                     util::Table::fmt(cell.core_ghz, 2) + '\n';
    ASSERT_TRUE(artifacts.count("table5_maxpower.csv"));
    const std::string& csv = artifacts.at("table5_maxpower.csv");
    const std::size_t header_end = csv.find('\n') + 1;
    EXPECT_EQ(csv.substr(header_end, expected_row.size()), expected_row);
}

}  // namespace
}  // namespace hsw::engine
