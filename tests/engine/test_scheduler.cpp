#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <stdexcept>
#include <thread>

#include "engine/scheduler.hpp"

namespace hsw::engine {
namespace {

TEST(Scheduler, RunsEveryTaskExactlyOnce) {
    SchedulerConfig cfg;
    cfg.threads = 8;
    Scheduler sched{cfg};

    constexpr int kTasks = 200;
    std::vector<std::atomic<int>> runs(kTasks);
    std::vector<Scheduler::Task> tasks;
    for (int i = 0; i < kTasks; ++i) {
        tasks.push_back([&runs, i] { runs[i].fetch_add(1); });
    }
    const auto outcomes = sched.run(std::move(tasks));

    ASSERT_EQ(outcomes.size(), static_cast<std::size_t>(kTasks));
    for (int i = 0; i < kTasks; ++i) {
        EXPECT_EQ(runs[i].load(), 1) << "task " << i;
        EXPECT_TRUE(outcomes[i].ok);
        EXPECT_EQ(outcomes[i].index, static_cast<std::size_t>(i));
        EXPECT_EQ(outcomes[i].attempts, 1u);
    }
    EXPECT_EQ(sched.progress().done.load(), static_cast<std::size_t>(kTasks));
    EXPECT_EQ(sched.progress().failed.load(), 0u);
}

TEST(Scheduler, WorkIsActuallyStolenAcrossThreads) {
    SchedulerConfig cfg;
    cfg.threads = 4;
    Scheduler sched{cfg};

    std::mutex lock;
    std::set<std::thread::id> seen;
    std::vector<Scheduler::Task> tasks;
    for (int i = 0; i < 64; ++i) {
        tasks.push_back([&] {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
            std::lock_guard g{lock};
            seen.insert(std::this_thread::get_id());
        });
    }
    sched.run(std::move(tasks));
    // With 64 x 1 ms tasks on 4 workers, more than one thread must have
    // participated (exact count depends on the host scheduler).
    EXPECT_GT(seen.size(), 1u);
}

TEST(Scheduler, RetriesUntilSuccess) {
    SchedulerConfig cfg;
    cfg.threads = 2;
    cfg.max_attempts = 3;
    Scheduler sched{cfg};

    std::atomic<int> calls{0};
    std::vector<Scheduler::Task> tasks;
    tasks.push_back([&] {
        if (calls.fetch_add(1) < 2) throw std::runtime_error{"transient"};
    });
    const auto outcomes = sched.run(std::move(tasks));

    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_TRUE(outcomes[0].ok);
    EXPECT_EQ(outcomes[0].attempts, 3u);
    EXPECT_EQ(calls.load(), 3);
    EXPECT_EQ(sched.progress().retries.load(), 2u);
    EXPECT_EQ(sched.progress().failed.load(), 0u);
}

TEST(Scheduler, PermanentFailureAfterMaxAttempts) {
    SchedulerConfig cfg;
    cfg.threads = 2;
    cfg.max_attempts = 2;
    Scheduler sched{cfg};

    std::atomic<int> calls{0};
    std::vector<Scheduler::Task> tasks;
    tasks.push_back([&] {
        calls.fetch_add(1);
        throw std::runtime_error{"permanent damage"};
    });
    tasks.push_back([] {});  // the batch keeps going around a failure
    const auto outcomes = sched.run(std::move(tasks));

    EXPECT_FALSE(outcomes[0].ok);
    EXPECT_EQ(outcomes[0].attempts, 2u);
    EXPECT_EQ(outcomes[0].error, "permanent damage");
    EXPECT_EQ(calls.load(), 2);
    EXPECT_TRUE(outcomes[1].ok);
    EXPECT_EQ(sched.progress().failed.load(), 1u);
}

TEST(Scheduler, RetryDeadlineStopsRetrying) {
    SchedulerConfig cfg;
    cfg.threads = 1;
    cfg.max_attempts = 100;
    cfg.retry_deadline = std::chrono::milliseconds(20);
    Scheduler sched{cfg};

    std::atomic<int> calls{0};
    std::vector<Scheduler::Task> tasks;
    tasks.push_back([&] {
        calls.fetch_add(1);
        std::this_thread::sleep_for(std::chrono::milliseconds(25));
        throw std::runtime_error{"always"};
    });
    const auto outcomes = sched.run(std::move(tasks));

    // First attempt finishes past the deadline, so no retry is scheduled
    // despite the generous attempt budget.
    EXPECT_FALSE(outcomes[0].ok);
    EXPECT_EQ(calls.load(), 1);
}

TEST(Scheduler, ListenerSeesEveryFinalOutcome) {
    SchedulerConfig cfg;
    cfg.threads = 4;
    Scheduler sched{cfg};

    std::set<std::size_t> reported;
    sched.set_listener([&](const JobOutcome& o) { reported.insert(o.index); });

    std::vector<Scheduler::Task> tasks;
    for (int i = 0; i < 32; ++i) tasks.push_back([] {});
    sched.run(std::move(tasks));
    EXPECT_EQ(reported.size(), 32u);
}

TEST(Scheduler, NonExceptionResultsAreIndexStable) {
    // Results land by index regardless of which worker ran what.
    SchedulerConfig cfg;
    cfg.threads = 8;
    Scheduler sched{cfg};

    std::vector<int> values(50, 0);
    std::vector<Scheduler::Task> tasks;
    for (int i = 0; i < 50; ++i) {
        tasks.push_back([&values, i] { values[i] = i * i; });
    }
    sched.run(std::move(tasks));
    for (int i = 0; i < 50; ++i) EXPECT_EQ(values[i], i * i);
}

}  // namespace
}  // namespace hsw::engine
