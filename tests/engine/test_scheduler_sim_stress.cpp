// Drives independent event-engine workloads through the work-stealing
// Scheduler -- the shape the survey runs in production (one Simulator per
// job, many jobs per pool). Under TSan this is the data-race check for the
// slab/heap engine and the thread-local dispatch counter; under the plain
// build it pins down that per-job event attribution stays exact no matter
// which worker a job lands on.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "engine/scheduler.hpp"
#include "sim/simulator.hpp"

namespace hsw::engine {
namespace {

using sim::Simulator;
using util::Time;

/// One job's workload: a ring of self-rescheduling one-shots plus
/// periodics with cancel/reschedule churn, sized by `salt` so jobs differ.
std::uint64_t run_workload(std::uint64_t salt) {
    Simulator sim;
    std::uint64_t fired = 0;

    struct Ring {
        Simulator* sim;
        std::uint64_t* fired;
        std::int64_t step_ns;
        void operator()() const {
            ++*fired;
            sim->schedule_after(Time::ns(step_ns), Ring{*this});
        }
    };
    const unsigned rings = 4 + static_cast<unsigned>(salt % 5);
    for (unsigned i = 0; i < rings; ++i) {
        sim.schedule_after(Time::ns(50 + 13 * i),
                           Ring{&sim, &fired, 200 + static_cast<std::int64_t>(i)});
    }

    std::vector<std::uint64_t> pids;
    for (unsigned i = 0; i < 6; ++i) {
        pids.push_back(sim.schedule_periodic(
            Time::ns(100 + i), Time::ns(300 + 11 * (salt % 17) + i),
            [&fired](Time) { ++fired; }));
    }

    for (int slice = 0; slice < 20; ++slice) {
        sim.run_until(sim.now() + Time::us(20));
        // Churn: retire one periodic, plant a replacement.
        const std::size_t victim = slice % pids.size();
        if (sim.cancel_periodic(pids[victim])) {
            pids[victim] = sim.schedule_periodic(
                sim.now() + Time::ns(70), Time::ns(250 + 7 * slice),
                [&fired](Time) { ++fired; });
        }
    }
    EXPECT_EQ(sim.processed_events(), fired);
    return sim.processed_events();
}

TEST(SchedulerSimStress, ParallelSimulatorsAttributeEventsPerJobExactly) {
    constexpr std::size_t kJobs = 24;
    std::vector<std::uint64_t> processed(kJobs, 0);
    std::vector<std::uint64_t> thread_delta(kJobs, 0);

    std::vector<Scheduler::Task> tasks;
    tasks.reserve(kJobs);
    for (std::size_t i = 0; i < kJobs; ++i) {
        tasks.push_back([&, i] {
            // A worker runs one task at a time, so the thread-local counter
            // delta across the body is exactly this job's dispatch count.
            const std::uint64_t before = Simulator::thread_events_processed();
            processed[i] = run_workload(i * 7919);
            thread_delta[i] = Simulator::thread_events_processed() - before;
        });
    }

    SchedulerConfig cfg;
    cfg.threads = 8;
    Scheduler scheduler{cfg};
    const auto outcomes = scheduler.run(std::move(tasks));

    ASSERT_EQ(outcomes.size(), kJobs);
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < kJobs; ++i) {
        EXPECT_TRUE(outcomes[i].ok) << outcomes[i].error;
        EXPECT_GT(processed[i], 1000u) << "job " << i << " barely ran";
        EXPECT_EQ(thread_delta[i], processed[i]) << "job " << i;
        total += processed[i];
    }
    EXPECT_GT(total, kJobs * 1000u);
}

}  // namespace
}  // namespace hsw::engine
