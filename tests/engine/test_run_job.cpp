// engine::run_job / CancelToken / JobIndex: the service-facing entry
// points, plus the ResultCache counter surface they feed.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <string>

#include "engine/cancel.hpp"
#include "engine/engine.hpp"
#include "engine/result_cache.hpp"
#include "engine/survey_experiments.hpp"

using namespace hsw::engine;

namespace {

namespace fs = std::filesystem;

fs::path fresh_dir(const std::string& leaf) {
    const fs::path dir = fs::path{testing::TempDir()} / ("hsw-run-job-" + leaf);
    fs::remove_all(dir);
    return dir;
}

Job counting_job(std::atomic<int>* runs, const std::string& point = "all") {
    Job job;
    job.spec.experiment = "unit";
    job.spec.point = point;
    job.run = [runs](const ExperimentSpec& spec) {
        runs->fetch_add(1);
        return "bytes for " + spec.label();
    };
    return job;
}

}  // namespace

TEST(RunJobTest, ComputesWithoutCache) {
    std::atomic<int> runs{0};
    const Job job = counting_job(&runs);
    const JobResult result = run_job(job);
    EXPECT_EQ(result.payload, "bytes for unit/all");
    EXPECT_EQ(result.source, JobSource::Computed);
    EXPECT_EQ(runs.load(), 1);
}

TEST(RunJobTest, CacheDisciplineComputeStoreThenHit) {
    std::atomic<int> runs{0};
    const Job job = counting_job(&runs);
    ResultCache cache{fresh_dir("discipline")};

    const JobResult first = run_job(job, &cache);
    EXPECT_EQ(first.source, JobSource::Computed);
    const JobResult second = run_job(job, &cache);
    EXPECT_EQ(second.source, JobSource::DiskCache);
    EXPECT_EQ(second.payload, first.payload);
    EXPECT_EQ(runs.load(), 1);

    const auto counters = cache.counters();
    EXPECT_EQ(counters.hits, 1u);
    EXPECT_EQ(counters.misses, 1u);
    EXPECT_EQ(counters.stores, 1u);
}

TEST(RunJobTest, CorruptEntryReadsAsMissAndIsRewritten) {
    std::atomic<int> runs{0};
    const Job job = counting_job(&runs);
    ResultCache cache{fresh_dir("corrupt")};
    (void)run_job(job, &cache);

    // Truncate the entry; the next load must miss, recompute, and re-store.
    const fs::path entry = cache.entry_path(job.spec);
    ASSERT_TRUE(fs::exists(entry));
    fs::resize_file(entry, 4);
    const JobResult again = run_job(job, &cache);
    EXPECT_EQ(again.source, JobSource::Computed);
    EXPECT_EQ(runs.load(), 2);

    const auto counters = cache.counters();
    EXPECT_EQ(counters.misses, 2u);  // cold miss + corrupt-entry miss
    EXPECT_EQ(counters.stores, 2u);
}

TEST(RunJobTest, CancelledTokenPreventsComputation) {
    std::atomic<int> runs{0};
    const Job job = counting_job(&runs);
    CancelToken token;
    token.cancel();
    EXPECT_THROW((void)run_job(job, nullptr, &token), CancelledError);
    EXPECT_EQ(runs.load(), 0);  // doomed work never starts
}

TEST(RunJobTest, ExpiredDeadlineThrowsCancelled) {
    std::atomic<int> runs{0};
    const Job job = counting_job(&runs);
    CancelToken token;
    token.set_deadline(std::chrono::steady_clock::now() -
                       std::chrono::milliseconds{1});
    EXPECT_THROW((void)run_job(job, nullptr, &token), CancelledError);
    EXPECT_EQ(runs.load(), 0);
}

TEST(RunJobTest, FutureDeadlineDoesNotInterfere) {
    std::atomic<int> runs{0};
    const Job job = counting_job(&runs);
    CancelToken token;
    token.set_deadline(std::chrono::steady_clock::now() + std::chrono::hours{1});
    const JobResult result = run_job(job, nullptr, &token);
    EXPECT_EQ(result.payload, "bytes for unit/all");
}

TEST(JobIndexTest, FindsEveryRegisteredJobBySpecHash) {
    const SurveyTuning tuning = SurveyTuning::quick();
    const auto experiments = survey_experiments(tuning);
    const JobIndex index{experiments};

    std::size_t total = 0;
    for (const auto& experiment : experiments) {
        for (const auto& job : experiment.jobs) {
            ++total;
            const Job* found = index.find(job.spec.hash_hex());
            ASSERT_NE(found, nullptr) << job.spec.label();
            EXPECT_EQ(found, &job);  // the index points at the registry's job
            EXPECT_EQ(index.find(job.spec), &job);
        }
    }
    EXPECT_EQ(index.size(), total);
    EXPECT_EQ(index.find("no-such-hash"), nullptr);
}

TEST(JobIndexTest, DistinctTuningsYieldDisjointHashes) {
    SurveyTuning a = SurveyTuning::quick();
    SurveyTuning b = SurveyTuning::quick();
    b.seed = a.seed + 1;
    const auto experiments_a = survey_experiments(a);
    const auto experiments_b = survey_experiments(b);
    const JobIndex index_a{experiments_a};

    // No spec from the reseeded registry resolves in the original index:
    // the content hash covers the seed.
    for (const auto& experiment : experiments_b) {
        for (const auto& job : experiment.jobs) {
            EXPECT_EQ(index_a.find(job.spec), nullptr) << job.spec.label();
        }
    }
}
