// FleetMap: construction validation, deterministic placement, replica-set
// shape, distribution quality, and the minimal-disruption property that
// justifies consistent hashing in the first place.
#include "router/fleet_map.hpp"

#include <gtest/gtest.h>

#include <map>
#include <stdexcept>
#include <string>
#include <vector>

using hsw::router::FleetMap;
using hsw::router::FleetMapConfig;
using hsw::router::ShardEndpoint;

namespace {

std::vector<ShardEndpoint> make_shards(unsigned n) {
    std::vector<ShardEndpoint> out;
    for (unsigned i = 0; i < n; ++i) {
        out.push_back({"shard" + std::to_string(i), "127.0.0.1",
                       static_cast<std::uint16_t>(7000 + i)});
    }
    return out;
}

}  // namespace

TEST(FleetMapTest, ConstructionRejectsDegenerateFleets) {
    EXPECT_THROW(FleetMap({}, {}), std::invalid_argument);

    auto dup_name = make_shards(2);
    dup_name[1].name = dup_name[0].name;
    EXPECT_THROW(FleetMap(dup_name, {}), std::invalid_argument);

    auto dup_addr = make_shards(2);
    dup_addr[1].port = dup_addr[0].port;
    EXPECT_THROW(FleetMap(dup_addr, {}), std::invalid_argument);

    FleetMapConfig no_vnodes;
    no_vnodes.vnodes = 0;
    EXPECT_THROW(FleetMap(make_shards(2), no_vnodes), std::invalid_argument);
}

TEST(FleetMapTest, ReplicasClampToShardCount) {
    FleetMapConfig cfg;
    cfg.replicas = 5;
    const FleetMap map{make_shards(2), cfg};
    EXPECT_EQ(map.replicas(), 2u);
    EXPECT_EQ(map.replica_set("anything").size(), 2u);

    cfg.replicas = 0;  // clamped up: a key always has at least its primary
    const FleetMap one{make_shards(3), cfg};
    EXPECT_EQ(one.replicas(), 1u);
}

TEST(FleetMapTest, PlacementIsDeterministicAcrossInstances) {
    // Ring placement is effectively an on-disk format: two routers built
    // from the same shard list must agree on every key, or a fleet with
    // redundant routers would split its cache locality.
    const FleetMap a{make_shards(5), {}};
    const FleetMap b{make_shards(5), {}};
    for (int i = 0; i < 500; ++i) {
        const std::string key = "key-" + std::to_string(i);
        EXPECT_EQ(a.replica_set(key), b.replica_set(key)) << key;
    }
}

TEST(FleetMapTest, ReplicaSetIsDistinctWithPrimaryFirst) {
    const FleetMap map{make_shards(4), {}};
    for (int i = 0; i < 500; ++i) {
        const std::string key = "key-" + std::to_string(i);
        const auto set = map.replica_set(key);
        ASSERT_EQ(set.size(), 2u);
        EXPECT_NE(set[0], set[1]);
        EXPECT_EQ(set[0], map.primary(key));
        EXPECT_LT(set[0], 4u);
        EXPECT_LT(set[1], 4u);
    }
}

TEST(FleetMapTest, PrimaryDistributionIsRoughlyUniform) {
    // 150 vnodes/shard keeps per-shard key share near 1/N; the assertion
    // band (±40% of fair share) is loose enough to be hash-stable forever
    // while still catching a broken ring (all keys on one shard).
    const unsigned shards = 4;
    const FleetMap map{make_shards(shards), {}};
    std::map<std::size_t, int> owned;
    const int keys = 10000;
    for (int i = 0; i < keys; ++i) {
        owned[map.primary("spec-sha-" + std::to_string(i))]++;
    }
    ASSERT_EQ(owned.size(), shards);
    const int fair = keys / static_cast<int>(shards);
    for (const auto& [shard, count] : owned) {
        EXPECT_GT(count, fair * 6 / 10) << "shard " << shard << " starved";
        EXPECT_LT(count, fair * 14 / 10) << "shard " << shard << " overloaded";
    }
}

TEST(FleetMapTest, RemovingAShardOnlyMovesItsOwnKeys) {
    // The consistent-hashing contract: dropping shard K from the fleet
    // must not move any key whose primary was not K. (Everything K owned
    // redistributes; nothing else churns.)
    const auto five = make_shards(5);
    auto four = five;
    four.pop_back();
    const FleetMap before{five, {}};
    const FleetMap after{four, {}};

    int moved = 0, kept = 0;
    for (int i = 0; i < 2000; ++i) {
        const std::string key = "key-" + std::to_string(i);
        const std::size_t p_before = before.primary(key);
        if (p_before == 4) {
            ++moved;  // owned by the removed shard; must land elsewhere
            EXPECT_LT(after.primary(key), 4u);
        } else {
            ++kept;
            EXPECT_EQ(after.primary(key), p_before) << key;
        }
    }
    // Sanity: the removed shard owned a real share of the key space.
    EXPECT_GT(moved, 100);
    EXPECT_GT(kept, 1000);
}
