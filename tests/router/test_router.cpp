// Router behaviour over the in-process LocalTransport: content routing,
// connection pooling, replica failover, health ejection/readmission, the
// v1.1 legacy capability probe, and fleet metrics aggregation.
#include "router/router.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "obs/ctx.hpp"
#include "obs/trace.hpp"
#include "router/local_transport.hpp"
#include "service/protocol.hpp"
#include "util/minijson.hpp"

using namespace hsw;
using router::FleetMap;
using router::LocalTransport;
using router::Router;
using router::RouterConfig;
using router::ShardEndpoint;
using service::protocol::ErrorCode;
using service::protocol::MetricsFormat;
using service::protocol::Request;
using service::protocol::Response;
using service::protocol::Verb;

namespace {

enum Mode : int { kOk, kOverloaded, kUnknownExperiment, kLegacyV11, kPreV14 };

struct ShardSim {
    std::string name;
    std::atomic<int> mode{kOk};
    std::atomic<int> queries{0};
    std::atomic<std::uint64_t> last_trace_id{0};
};

constexpr const char* kShardMetricsJson =
    "{\"counters\":{\"fixture_requests\":3},\"gauges\":{},\"histograms\":{}}";

struct Fixture {
    LocalTransport transport;
    std::vector<std::unique_ptr<ShardSim>> sims;
    std::vector<ShardEndpoint> endpoints;

    explicit Fixture(unsigned shards) {
        for (unsigned i = 0; i < shards; ++i) {
            auto sim = std::make_unique<ShardSim>();
            sim->name = "s" + std::to_string(i);
            endpoints.push_back({sim->name, "127.0.0.1",
                                 static_cast<std::uint16_t>(9000 + i)});
            transport.add_endpoint(
                endpoints.back().address(),
                [sim = sim.get()](const Request& request) {
                    Response r;
                    if (request.verb == Verb::Health) {
                        if (sim->mode == kLegacyV11) {
                            r.code = ErrorCode::MalformedRequest;
                            r.payload = "unknown verb";
                        } else {
                            r.payload = "ok";
                        }
                        return r;
                    }
                    if (request.verb == Verb::Metrics) {
                        r.payload = kShardMetricsJson;
                        return r;
                    }
                    if (request.verb == Verb::Query) {
                        sim->queries.fetch_add(1);
                        sim->last_trace_id = request.trace_id;
                    }
                    if (sim->mode == kPreV14 && request.has_trace()) {
                        r.code = ErrorCode::MalformedRequest;
                        r.payload = "unknown request field: trace";
                        return r;
                    }
                    if (sim->mode == kOverloaded) {
                        r.code = ErrorCode::Overloaded;
                        r.payload = "queue full";
                        return r;
                    }
                    if (sim->mode == kUnknownExperiment) {
                        r.code = ErrorCode::UnknownExperiment;
                        r.payload = "no such experiment";
                        return r;
                    }
                    r.payload = sim->name;  // who served this query
                    return r;
                });
            sims.push_back(std::move(sim));
        }
    }

    /// Deterministic test config: no background prober, no backoff sleeps.
    RouterConfig config() const {
        RouterConfig cfg;
        cfg.probe_interval = std::chrono::milliseconds{0};
        cfg.backoff_base = std::chrono::milliseconds{0};
        cfg.eject_after = 2;
        return cfg;
    }

    Router make_router() { return Router{FleetMap{endpoints, {}}, transport, config()}; }

    ShardSim& sim_named(const std::string& name) {
        for (auto& s : sims) {
            if (s->name == name) return *s;
        }
        throw std::logic_error{"no sim " + name};
    }

    std::string address_of(const std::string& name) {
        for (const auto& ep : endpoints) {
            if (ep.name == name) return ep.address();
        }
        throw std::logic_error{"no endpoint " + name};
    }
};

Request query(const std::string& point = "all") {
    Request req;
    req.verb = Verb::Query;
    req.experiment = "fig3";
    req.point = point;
    return req;
}

/// Names of the query's replica set, primary first.
std::vector<std::string> replica_names(const Router& router, const Request& req) {
    const auto key = service::protocol::route_key(req);
    std::vector<std::string> out;
    for (const std::size_t idx : router.fleet().replica_set(key)) {
        out.push_back(router.fleet().shards()[idx].name);
    }
    return out;
}

}  // namespace

TEST(RouterTest, RoutesByContentAndReusesPooledConnections) {
    Fixture fx{2};
    Router router = fx.make_router();
    const Request req = query();
    const auto replicas = replica_names(router, req);

    const Response first = router.handle(req);
    ASSERT_TRUE(first.ok());
    EXPECT_EQ(first.payload, replicas[0]);  // primary served it

    const Response second = router.handle(req);
    EXPECT_EQ(second.payload, replicas[0]);

    // Steady state is zero dials: both calls rode one pooled connection.
    const std::string primary_addr = fx.address_of(replicas[0]);
    EXPECT_EQ(fx.transport.dials(primary_addr), 1u);
    EXPECT_EQ(fx.transport.calls(primary_addr), 2u);

    const auto stats = router.stats();
    EXPECT_EQ(stats.queries, 2u);
    EXPECT_EQ(stats.forwarded, 2u);
    EXPECT_EQ(stats.failovers, 0u);
}

TEST(RouterTest, TransportFailureFailsOverToReplica) {
    Fixture fx{2};
    Router router = fx.make_router();
    const Request req = query();
    const auto replicas = replica_names(router, req);

    fx.transport.set_down(fx.address_of(replicas[0]), true);
    const Response response = router.handle(req);
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response.payload, replicas[1]);

    const auto stats = router.stats();
    EXPECT_EQ(stats.failovers, 1u);
    EXPECT_EQ(stats.unavailable, 0u);
}

TEST(RouterTest, OverloadedFailsOverButAuthoritativeErrorsReturnAsIs) {
    Fixture fx{2};
    Router router = fx.make_router();
    const Request req = query();
    const auto replicas = replica_names(router, req);

    // Overloaded is a property of one replica's queue; the other can help.
    fx.sim_named(replicas[0]).mode = kOverloaded;
    const Response ok = router.handle(req);
    ASSERT_TRUE(ok.ok());
    EXPECT_EQ(ok.payload, replicas[1]);

    // UnknownExperiment is a property of the request; no failover, one
    // upstream attempt only.
    const auto before = router.stats().forwarded;
    fx.sim_named(replicas[0]).mode = kUnknownExperiment;
    const Response err = router.handle(req);
    EXPECT_EQ(err.code, ErrorCode::UnknownExperiment);
    EXPECT_EQ(router.stats().forwarded, before + 1);
}

TEST(RouterTest, ExhaustedReplicaSetReturnsUnavailable) {
    Fixture fx{2};
    Router router = fx.make_router();
    const Request req = query();

    for (const auto& ep : fx.endpoints) fx.transport.set_down(ep.address(), true);
    const Response response = router.handle(req);
    EXPECT_EQ(response.code, ErrorCode::Unavailable);

    const auto stats = router.stats();
    EXPECT_EQ(stats.unavailable, 1u);
    // max_passes=3 replica-set walks => two backoff passes between them.
    EXPECT_EQ(stats.retry_passes, 2u);
}

TEST(RouterTest, AllOverloadedReportsTheHonestUpstreamError) {
    Fixture fx{2};
    Router router = fx.make_router();
    for (auto& sim : fx.sims) sim->mode = kOverloaded;
    const Response response = router.handle(query());
    // Exhaustion with live-but-overloaded shards keeps the shard's answer
    // instead of masking it as a transport outage.
    EXPECT_EQ(response.code, ErrorCode::Overloaded);
}

TEST(RouterTest, RepeatedFailuresEjectAndProbeReadmits) {
    Fixture fx{2};
    Router router = fx.make_router();
    const Request req = query();
    const auto replicas = replica_names(router, req);
    const std::string primary_addr = fx.address_of(replicas[0]);

    // eject_after=2: each routed query fails the primary once before the
    // replica serves it.
    fx.transport.set_down(primary_addr, true);
    EXPECT_TRUE(router.handle(req).ok());
    EXPECT_TRUE(router.handle(req).ok());

    auto health = router.shard_health();
    const auto primary_health = [&]() {
        for (const auto& h : health) {
            if (h.name == replicas[0]) return h;
        }
        return router::ShardHealth{};
    };
    EXPECT_TRUE(primary_health().ejected);
    EXPECT_EQ(primary_health().ejections, 1u);

    // Ejected shards are skipped entirely: no new dial attempts.
    const auto dials_when_ejected = fx.transport.dials(primary_addr);
    EXPECT_TRUE(router.handle(req).ok());
    EXPECT_EQ(fx.transport.dials(primary_addr), dials_when_ejected);

    // Shard comes back; a probe sweep readmits it and routing resumes.
    fx.transport.set_down(primary_addr, false);
    router.probe_now();
    health = router.shard_health();
    EXPECT_FALSE(primary_health().ejected);
    EXPECT_EQ(primary_health().readmissions, 1u);
    EXPECT_EQ(router.handle(req).payload, replicas[0]);
}

TEST(RouterTest, LegacyV11ShardIsProbedViaMetricsFallback) {
    Fixture fx{2};
    Router router = fx.make_router();
    const Request req = query();
    const auto replicas = replica_names(router, req);
    const std::string primary_addr = fx.address_of(replicas[0]);

    // The primary is an old v1.1 build: it serves queries but answers the
    // v1.2 `health` verb with MalformedRequest("unknown verb").
    fx.sim_named(replicas[0]).mode = kLegacyV11;

    // Eject it via transport failures, then bring it back.
    fx.transport.set_down(primary_addr, true);
    EXPECT_TRUE(router.handle(req).ok());
    EXPECT_TRUE(router.handle(req).ok());
    fx.transport.set_down(primary_addr, false);

    // The probe tries `health`, learns the peer is legacy, and proves
    // liveness through `metrics` on the same connection.
    router.probe_now();
    for (const auto& h : router.shard_health()) {
        if (h.name == replicas[0]) {
            EXPECT_FALSE(h.ejected);
            EXPECT_TRUE(h.legacy);
            EXPECT_EQ(h.readmissions, 1u);
        }
    }
}

TEST(RouterTest, AllReplicasEjectedStillTriesRatherThanFailingBlind) {
    Fixture fx{2};
    Router router = fx.make_router();
    const Request req = query();

    // Run both shards to ejection...
    for (const auto& ep : fx.endpoints) fx.transport.set_down(ep.address(), true);
    EXPECT_EQ(router.handle(req).code, ErrorCode::Unavailable);
    for (const auto& h : router.shard_health()) EXPECT_TRUE(h.ejected);

    // ...then recover them WITHOUT a probe pass. Routing must still try
    // (and succeed), because skipping every ejected replica would turn a
    // recovered fleet into a permanent outage.
    for (const auto& ep : fx.endpoints) fx.transport.set_down(ep.address(), false);
    EXPECT_TRUE(router.handle(req).ok());
}

TEST(RouterTest, MetricsVerbAggregatesTheWholeFleet) {
    Fixture fx{2};
    Router router = fx.make_router();

    Request req;
    req.verb = Verb::Metrics;
    req.format = MetricsFormat::Json;
    const Response response = router.handle(req);
    ASSERT_TRUE(response.ok());

    // Merged top level: both shards' fixture counter summed.
    EXPECT_NE(response.payload.find("\"fixture_requests\":6"), std::string::npos)
        << response.payload;
    // Per-shard breakdown plus the router's own pseudo-shard.
    EXPECT_NE(response.payload.find("\"shards\":{"), std::string::npos);
    EXPECT_NE(response.payload.find("\"s0\":{"), std::string::npos);
    EXPECT_NE(response.payload.find("\"s1\":{"), std::string::npos);
    EXPECT_NE(response.payload.find("\"router\":{"), std::string::npos);
}

TEST(RouterTest, ControlVerbsAnswerLocally) {
    Fixture fx{2};
    Router router = fx.make_router();

    EXPECT_EQ(router.handle([] { Request r; r.verb = Verb::Ping; return r; }()).payload,
              "pong");
    EXPECT_EQ(
        router.handle([] { Request r; r.verb = Verb::Health; return r; }()).payload,
        "ok");
    EXPECT_NE(
        router.handle([] { Request r; r.verb = Verb::Stats; return r; }())
            .payload.find("router.queries 0"),
        std::string::npos);

    EXPECT_FALSE(router.shutdown_requested());
    EXPECT_EQ(
        router.handle([] { Request r; r.verb = Verb::Shutdown; return r; }()).payload,
        "draining");
    EXPECT_TRUE(router.shutdown_requested());
    EXPECT_EQ(
        router.handle([] { Request r; r.verb = Verb::Health; return r; }()).payload,
        "draining");

    // None of that touched a shard.
    for (const auto& ep : fx.endpoints) {
        EXPECT_EQ(fx.transport.calls(ep.address()), 0u);
    }
}

// --- v1.4: trace propagation through failover --------------------------------

namespace {

/// Parsed-enough view of the exported span ring for trace assertions.
struct SpanView {
    std::string name;
    std::string trace_id;
    double retry = 0;
};

std::vector<SpanView> exported_span_views() {
    const std::string json = obs::trace::export_chrome_json();
    std::string error;
    const auto doc = hsw::util::json::parse(json, &error);
    EXPECT_TRUE(doc.has_value()) << error;
    std::vector<SpanView> out;
    if (!doc) return out;
    for (const auto& ev : doc->find("traceEvents")->as_array()) {
        const auto* ph = ev.find("ph");
        if (!ph || !ph->is_string() || ph->as_string() != "X") continue;
        SpanView v;
        v.name = ev.find("name")->as_string();
        if (const auto* args = ev.find("args")) {
            if (const auto* tid = args->find("trace_id")) {
                if (tid->is_string()) v.trace_id = tid->as_string();
            }
            v.retry = args->number_or("retry", 0);
        }
        out.push_back(std::move(v));
    }
    return out;
}

}  // namespace

TEST(RouterTest, FailoverKeepsTraceIdMarksRetryAndForcesSampling) {
    obs::trace::enable();
    Fixture fx{2};
    Router router = fx.make_router();
    const Request req = query();
    const auto replicas = replica_names(router, req);
    fx.transport.set_down(fx.address_of(replicas[0]), true);

    const auto root = obs::trace::make_root(true);
    {
        obs::trace::ContextScope scope{root};
        const Response response = router.handle(req);
        ASSERT_TRUE(response.ok());
        EXPECT_EQ(response.payload, replicas[1]);
        // The failover forced the request: the completion point (access
        // log, downstream hops) must see the tail-keep override.
        EXPECT_TRUE(obs::trace::current_context().forced());
    }
    obs::trace::disable();

    // The surviving replica served the SAME trace, not a fresh one.
    char want_trace[17];
    std::snprintf(want_trace, sizeof want_trace, "%016llx",
                  static_cast<unsigned long long>(root.trace_id));
    EXPECT_EQ(fx.sim_named(replicas[1]).last_trace_id.load(), root.trace_id);

    // Span tree: router.route plus one upstream.call per attempt, all
    // under the root's trace_id; the failover attempt is marked retry=1.
    const auto spans = exported_span_views();
    obs::trace::clear();
    std::size_t routes = 0, attempts = 0, retries = 0;
    for (const auto& span : spans) {
        if (span.name == "router.route") {
            ++routes;
            EXPECT_EQ(span.trace_id, want_trace);
        }
        if (span.name == "upstream.call") {
            ++attempts;
            EXPECT_EQ(span.trace_id, want_trace);
            if (span.retry > 0) {
                ++retries;
                EXPECT_EQ(span.retry, 1.0);
            }
        }
    }
    EXPECT_EQ(routes, 1u);
    EXPECT_EQ(attempts, 2u);
    EXPECT_EQ(retries, 1u);
}

TEST(RouterTest, PreV14ShardFallsBackThroughTheLeaseSeam) {
    // The shard rejects traced requests with the capability probe answer.
    // The pooled connection's Lease must strip, retry once, memoize, and
    // never probe again on that connection.
    Fixture fx{1};
    for (auto& sim : fx.sims) sim->mode = kPreV14;
    Router router = fx.make_router();
    const Request req = query();

    const auto root = obs::trace::make_root(true);
    obs::trace::ContextScope scope{root};
    const Response first = router.handle(req);
    ASSERT_TRUE(first.ok()) << first.payload;
    // The serving call arrived stripped.
    EXPECT_EQ(fx.sims[0]->last_trace_id.load(), 0u);
    // Probe + stripped retry = 2 upstream calls.
    EXPECT_EQ(fx.sims[0]->queries.load(), 2);

    // Second traced request: the memo skips the probe round-trip.
    const Response second = router.handle(req);
    ASSERT_TRUE(second.ok());
    EXPECT_EQ(fx.sims[0]->queries.load(), 3);
    EXPECT_EQ(fx.sims[0]->last_trace_id.load(), 0u);

    // No failover was charged for the capability fallback.
    EXPECT_EQ(router.stats().failovers, 0u);
}

TEST(RouterTest, V14ShardSeesTheRoutedTraceContext) {
    Fixture fx{1};
    Router router = fx.make_router();
    const Request req = query();

    const auto root = obs::trace::make_root(true);
    obs::trace::ContextScope scope{root};
    const Response response = router.handle(req);
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(fx.sims[0]->last_trace_id.load(), root.trace_id);
    EXPECT_EQ(fx.sims[0]->queries.load(), 1);
}
