#include <gtest/gtest.h>

#include "analysis/invariant_checker.hpp"
#include "arch/calibration.hpp"
#include "arch/sku.hpp"
#include "core/node.hpp"

namespace hsw::analysis {
namespace {

namespace cal = hsw::arch::cal;
using util::Frequency;
using util::Power;
using util::Time;

sim::TraceRecord rec(Time when, std::string category, std::string subject,
                     std::string detail) {
    return sim::TraceRecord{when, std::move(category), std::move(subject),
                            std::move(detail), 0.0};
}

InvariantChecker make_checker() { return InvariantChecker{AuditConfig::warn()}; }

// --- one violation scenario per invariant -----------------------------------

TEST(InvariantChecker, FlagsBackwardsTraceTime) {
    auto chk = make_checker();
    chk.observe_trace(rec(Time::us(10), "pstate", "cpu0", "request"));
    chk.observe_trace(rec(Time::us(5), "pstate", "cpu0", "request"));
    EXPECT_EQ(chk.sink().count(Invariant::TimeMonotonic), 1u);
    EXPECT_EQ(chk.sink().total(), 1u);
}

TEST(InvariantChecker, FlagsEnergyCounterRegression) {
    auto chk = make_checker();
    const double unit = 6.103515625e-05;  // 2^-14 J, the HSW-EP pkg unit
    const Power bound = Power::watts(260.0);
    chk.observe_energy_counter("socket0.pkg", Time::ms(1), 1'000'000, unit, bound);
    // A decrease decodes (via the wrap) to ~2^32 counts in 1 ms: impossible.
    chk.observe_energy_counter("socket0.pkg", Time::ms(2), 999'000, unit, bound);
    EXPECT_EQ(chk.sink().count(Invariant::EnergyCounter), 1u);
}

TEST(InvariantChecker, AcceptsLegitimateCounterWrap) {
    auto chk = make_checker();
    const double unit = 6.103515625e-05;
    const Power bound = Power::watts(260.0);
    // 100 W for 100 ms = 10 J = ~163840 counts across the 2^32 boundary.
    chk.observe_energy_counter("socket0.pkg", Time::ms(100), 0xFFFF0000u, unit, bound);
    chk.observe_energy_counter("socket0.pkg", Time::ms(200), 0x00018000u, unit, bound);
    EXPECT_TRUE(chk.clean());
}

TEST(InvariantChecker, FlagsPackagePowerOutsideEnvelope) {
    auto chk = make_checker();
    const arch::Sku& sku = arch::xeon_e5_2680_v3();  // TDP 120 W
    // Above the TDP * 1.5 + 10 W instantaneous peak envelope: flagged on the
    // very first sample, no excursion allowance applies.
    chk.observe_package_power(sku, Time::ms(1), 0, Power::watts(200.0), true);
    // Below the active idle floor while a core is in C0.
    chk.observe_package_power(sku, Time::ms(2), 0, Power::watts(0.1), true);
    // Negative even while fully idle.
    chk.observe_package_power(sku, Time::ms(3), 1, Power::watts(-1.0), false);
    EXPECT_EQ(chk.sink().count(Invariant::PackagePower), 3u);
}

TEST(InvariantChecker, ToleratesBriefCappingExcursionFlagsSustained) {
    auto chk = make_checker();
    const arch::Sku& sku = arch::xeon_e5_2680_v3();  // bound = 120 * 1.15 + 10
    // A spike above the capping bound (but under the peak envelope) that the
    // PCU reins in within its ~500 us reaction time: not a violation.
    chk.observe_package_power(sku, Time::us(100), 0, Power::watts(160.0), true);
    chk.observe_package_power(sku, Time::us(400), 0, Power::watts(160.0), true);
    chk.observe_package_power(sku, Time::us(700), 0, Power::watts(120.0), true);
    EXPECT_EQ(chk.sink().count(Invariant::PackagePower), 0u);
    // The same level sustained past the excursion allowance: every sample
    // after the allowance elapses is a capping violation.
    for (int i = 0; i < 10; ++i) {
        chk.observe_package_power(sku, Time::ms(10) + Time::us(100) * i, 0,
                                  Power::watts(160.0), true);
    }
    EXPECT_EQ(chk.sink().count(Invariant::PackagePower), 2u);  // at 800/900 us in
}

TEST(InvariantChecker, FlagsCoreClockOutsidePstateRange) {
    auto chk = make_checker();
    const arch::Sku& sku = arch::xeon_e5_2680_v3();  // 1.2 .. 3.3 GHz
    chk.observe_core(sku, Time::ms(1), 0, cstates::CState::C0, Frequency::ghz(3.5),
                     false);
    chk.observe_core(sku, Time::ms(2), 1, cstates::CState::C0, Frequency::ghz(0.8),
                     false);
    EXPECT_EQ(chk.sink().count(Invariant::CoreFrequency), 2u);
}

TEST(InvariantChecker, FlagsLicensedCoreAboveAvxBin) {
    auto chk = make_checker();
    const arch::Sku& sku = arch::xeon_e5_2680_v3();  // AVX 1-core turbo 3.1 GHz
    // 3.3 GHz is a legal non-AVX clock but above the AVX license bin.
    chk.observe_core(sku, Time::ms(1), 0, cstates::CState::C0, sku.max_turbo(1), true);
    EXPECT_EQ(chk.sink().count(Invariant::AvxLicense), 1u);
    EXPECT_EQ(chk.sink().count(Invariant::CoreFrequency), 0u);
}

TEST(InvariantChecker, FlagsUncoreClockOutsideUfsBounds) {
    auto chk = make_checker();
    const arch::Sku& sku = arch::xeon_e5_2680_v3();  // uncore 1.2 .. 3.0 GHz
    chk.observe_uncore(sku, Time::ms(1), 0, Frequency::ghz(3.4), false, 30);
    chk.observe_uncore(sku, Time::ms(2), 0, Frequency::ghz(0.9), false, 30);
    EXPECT_EQ(chk.sink().count(Invariant::UncoreFrequency), 2u);
}

TEST(InvariantChecker, UncoreRespectsMsrClampAndHaltedClock) {
    auto chk = make_checker();
    const arch::Sku& sku = arch::xeon_e5_2680_v3();
    // An UNCORE_RATIO_LIMIT cap of 10 (1.0 GHz) legitimately pulls the
    // uncore below the UFS hardware floor.
    chk.observe_uncore(sku, Time::ms(1), 0, Frequency::ghz(1.0), false, 10);
    // A halted clock (PC3/PC6) reads 0 Hz: not a scaling violation.
    chk.observe_uncore(sku, Time::ms(2), 0, Frequency::zero(), true, 30);
    EXPECT_TRUE(chk.clean());
}

TEST(InvariantChecker, FlagsOpportunityGridViolations) {
    auto chk = make_checker();
    // Spacing way off the ~500 us grid.
    chk.observe_trace(rec(Time::us(500), "pcu", "socket0", "opportunity"));
    chk.observe_trace(rec(Time::us(1200), "pcu", "socket0", "opportunity"));
    EXPECT_EQ(chk.sink().count(Invariant::PstateGrid), 1u);
    // A grant with no preceding opportunity on that socket.
    chk.observe_trace(rec(Time::us(1300), "pstate", "socket1", "change complete"));
    EXPECT_EQ(chk.sink().count(Invariant::PstateGrid), 2u);
    // A grant far outside the 19-24 us switching window after the opportunity.
    chk.observe_trace(rec(Time::us(1400), "pstate", "socket0", "change complete"));
    EXPECT_EQ(chk.sink().count(Invariant::PstateGrid), 3u);
}

TEST(InvariantChecker, AcceptsWellFormedGrantSequence) {
    auto chk = make_checker();
    const Time t0 = Time::us(500);
    const Time t1 = t0 + cal::kPstateOpportunityPeriod;
    chk.observe_trace(rec(t0, "pcu", "socket0", "opportunity"));
    chk.observe_trace(rec(t1, "pcu", "socket0", "opportunity"));
    chk.observe_trace(rec(t1 + Time::us(21), "pstate", "socket0", "change complete"));
    EXPECT_TRUE(chk.clean());
}

TEST(InvariantChecker, LegacyPartsAreExemptFromGridSemantics) {
    auto chk = make_checker();
    // SNB-EP applies requests immediately: a grant with no opportunity is
    // the designed behavior, not a violation.
    chk.observe_trace(rec(Time::us(100), "pstate", "socket0", "change complete"),
                      /*deferred_grid=*/false);
    EXPECT_TRUE(chk.clean());
}

TEST(InvariantChecker, FlagsResidencyRegressionAndOverflow) {
    auto chk = make_checker();
    const double tsc = 2.5e9;
    chk.observe_residency("cpu0", Time::ms(1), 1000.0, 2000.0, tsc);
    // Counter moving backwards.
    chk.observe_residency("cpu0", Time::ms(2), 500.0, 2000.0, tsc);
    EXPECT_EQ(chk.sink().count(Invariant::Residency), 1u);
    // C3+C6 accumulation exceeding elapsed wall time (1 ms = 2.5e6 ticks,
    // bound ~3.5e6 with slack; claim 8e6).
    chk.observe_residency("cpu1", Time::ms(1), 0.0, 0.0, tsc);
    chk.observe_residency("cpu1", Time::ms(2), 4.0e6, 4.0e6, tsc);
    EXPECT_EQ(chk.sink().count(Invariant::Residency), 2u);
}

TEST(InvariantChecker, FlagsBadMsrWriteThroughTheLinter) {
    auto chk = make_checker();
    chk.observe_msr_write(Time::ms(1), 0, msr::IA32_PERF_STATUS, 0x1900);
    EXPECT_EQ(chk.sink().count(Invariant::MsrAccess), 1u);
    chk.observe_msr_read(Time::ms(2), 0, msr::MSR_PKG_ENERGY_STATUS);
    EXPECT_EQ(chk.sink().total(), 1u);
}

// --- mode semantics ----------------------------------------------------------

TEST(InvariantChecker, StrictFinishThrowsOnViolations) {
    InvariantChecker chk{AuditConfig::strict()};
    chk.observe_msr_write(Time::ms(1), 0, msr::IA32_PERF_STATUS, 1);
    EXPECT_FALSE(chk.clean());
    EXPECT_THROW(chk.finish(), AuditError);
}

TEST(InvariantChecker, StrictFinishIsQuietWhenClean) {
    InvariantChecker chk{AuditConfig::strict()};
    EXPECT_NO_THROW(chk.finish());
}

TEST(InvariantChecker, OffModeNeverAttaches) {
    core::NodeConfig cfg;
    core::Node node{cfg};
    InvariantChecker chk{AuditConfig::off()};
    chk.attach(node);
    EXPECT_FALSE(chk.attached());
    EXPECT_NO_THROW(chk.finish());
}

// --- attached to a live node -------------------------------------------------

TEST(InvariantChecker, AttachedNodeRunsCleanUnderStrictAudit) {
    core::NodeConfig cfg;
    cfg.seed = 0xABCDEF;
    core::Node node{cfg};
    InvariantChecker chk{AuditConfig::strict()};
    chk.attach(node);
    ASSERT_TRUE(chk.attached());
    node.set_pstate(0, Frequency::from_ratio(14));
    node.run_for(Time::ms(5));
    EXPECT_NO_THROW(chk.finish());
    EXPECT_TRUE(chk.clean()) << chk.report();
    chk.detach();
    EXPECT_FALSE(chk.attached());
}

TEST(InvariantChecker, AttachedCheckerLintsNodeMsrTraffic) {
    core::NodeConfig cfg;
    core::Node node{cfg};
    InvariantChecker chk{AuditConfig::warn()};
    chk.attach(node);
    // An out-of-catalog read through the node's MSR file is observed even
    // though the MsrFile itself throws #GP.
    EXPECT_THROW((void)node.msrs().read(0, 0x1234), msr::MsrError);
    EXPECT_EQ(chk.sink().count(Invariant::MsrAccess), 1u);
    chk.detach();
}

}  // namespace
}  // namespace hsw::analysis
