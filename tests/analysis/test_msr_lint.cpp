#include <gtest/gtest.h>

#include "analysis/msr_lint.hpp"

namespace hsw::analysis {
namespace {

using util::Time;

TEST(MsrCatalog, CoversEveryKnownAddressSorted) {
    const auto cat = msr_catalog();
    ASSERT_FALSE(cat.empty());
    for (std::size_t i = 1; i < cat.size(); ++i) {
        EXPECT_LT(cat[i - 1].address, cat[i].address) << "catalog not address-sorted";
    }
    // Spot-check semantics: status registers are read-only, control
    // registers writable with the architected field widths.
    ASSERT_NE(msr_lookup(msr::IA32_PERF_STATUS), nullptr);
    EXPECT_FALSE(msr_lookup(msr::IA32_PERF_STATUS)->writable);
    ASSERT_NE(msr_lookup(msr::IA32_PERF_CTL), nullptr);
    EXPECT_TRUE(msr_lookup(msr::IA32_PERF_CTL)->writable);
    EXPECT_EQ(msr_lookup(msr::IA32_PERF_CTL)->write_width_bits, 16u);
    EXPECT_EQ(msr_lookup(msr::IA32_ENERGY_PERF_BIAS)->write_width_bits, 4u);
    EXPECT_FALSE(msr_lookup(msr::MSR_PKG_ENERGY_STATUS)->writable);
    EXPECT_EQ(msr_lookup(0xDEAD), nullptr);
}

TEST(MsrLinter, CleanAccessesProduceNoDiagnostics) {
    DiagnosticSink sink;
    MsrLinter lint{sink};
    EXPECT_TRUE(lint.check_read(Time::us(1), 0, msr::MSR_PKG_ENERGY_STATUS));
    EXPECT_TRUE(lint.check_write(Time::us(2), 0, msr::IA32_PERF_CTL, 12u << 8));
    EXPECT_TRUE(lint.check_write(Time::us(3), 3, msr::IA32_ENERGY_PERF_BIAS, 15));
    EXPECT_TRUE(sink.empty());
}

TEST(MsrLinter, FlagsUnknownAddressOnReadAndWrite) {
    DiagnosticSink sink;
    MsrLinter lint{sink};
    EXPECT_FALSE(lint.check_read(Time::us(1), 0, 0x1234));
    EXPECT_FALSE(lint.check_write(Time::us(2), 1, 0x1234, 0));
    EXPECT_EQ(sink.total(), 2u);
    EXPECT_EQ(sink.count(Invariant::MsrAccess), 2u);
    EXPECT_EQ(sink.diagnostics()[0].subject, "msr 0x1234");
}

TEST(MsrLinter, RejectsWriteToReadOnlyRegister) {
    DiagnosticSink sink;
    MsrLinter lint{sink};
    EXPECT_FALSE(lint.check_write(Time::us(5), 2, msr::MSR_PKG_ENERGY_STATUS, 42));
    ASSERT_EQ(sink.total(), 1u);
    const Diagnostic& d = sink.diagnostics().front();
    EXPECT_EQ(d.invariant, Invariant::MsrAccess);
    EXPECT_NE(d.message.find("read-only"), std::string::npos);
    EXPECT_NE(d.message.find("MSR_PKG_ENERGY_STATUS"), std::string::npos);
}

TEST(MsrLinter, RejectsValueWiderThanTheArchitectedField) {
    DiagnosticSink sink;
    MsrLinter lint{sink};
    // EPB is a 4-bit hint: 15 is the widest legal value, 16 overflows.
    EXPECT_TRUE(lint.check_write(Time::us(1), 0, msr::IA32_ENERGY_PERF_BIAS, 15));
    EXPECT_FALSE(lint.check_write(Time::us(2), 0, msr::IA32_ENERGY_PERF_BIAS, 16));
    // PERF_CTL carries the ratio in bits 15:8; bit 16 and up is junk.
    EXPECT_FALSE(lint.check_write(Time::us(3), 0, msr::IA32_PERF_CTL, 1u << 16));
    EXPECT_EQ(sink.total(), 2u);
    EXPECT_DOUBLE_EQ(sink.diagnostics()[0].bound, 15.0);
}

TEST(DiagnosticSink, CountsEverythingButRetainsOnlyCapacity) {
    DiagnosticSink sink{4};
    MsrLinter lint{sink};
    for (int i = 0; i < 10; ++i) {
        lint.check_write(Time::us(i), 0, msr::MSR_PKG_ENERGY_STATUS, 1);
    }
    EXPECT_EQ(sink.total(), 10u);
    EXPECT_EQ(sink.diagnostics().size(), 4u);
    EXPECT_FALSE(sink.summary().empty());
    sink.clear();
    EXPECT_TRUE(sink.empty());
}

}  // namespace
}  // namespace hsw::analysis
