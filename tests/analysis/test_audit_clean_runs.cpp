// The reproduction sweeps double as invariant tests: each figure driver runs
// under a strict audit and must finish without a single diagnostic. Sweep
// sizes are the fast CI variants used by the repro tests.
#include <gtest/gtest.h>

#include "analysis/audit_config.hpp"
#include "survey/fig2_rapl.hpp"
#include "survey/fig3_pstate.hpp"
#include "survey/fig4_opportunity.hpp"
#include "survey/fig56_cstates.hpp"
#include "survey/fig78_bandwidth.hpp"
#include "survey/skx_hwp.hpp"

namespace hsw::survey {
namespace {

using util::Time;

analysis::AuditConfig strict() { return analysis::AuditConfig::strict(); }

TEST(AuditCleanRuns, Fig2RaplSweepHaswell) {
    EXPECT_NO_THROW(
        (void)fig2_run(arch::Generation::HaswellEP, Time::sec(1), 0xC0FFEE, strict()));
}

TEST(AuditCleanRuns, Fig2RaplSweepSandyBridge) {
    EXPECT_NO_THROW(
        (void)fig2_run(arch::Generation::SandyBridgeEP, Time::sec(1), 0xC0FFEE, strict()));
}

TEST(AuditCleanRuns, Fig3PstateLatencies) {
    PstateLatencyConfig cfg;
    cfg.samples = 120;
    cfg.audit = strict();
    EXPECT_NO_THROW((void)fig3(cfg));
}

TEST(AuditCleanRuns, Fig4OpportunityMechanism) {
    EXPECT_NO_THROW((void)fig4(0xC0FFEE, strict()));
}

TEST(AuditCleanRuns, Fig5CstateC3Sweep) {
    CstateSweepConfig cfg;
    cfg.samples_per_point = 8;
    cfg.audit = strict();
    EXPECT_NO_THROW((void)fig56(cstates::CState::C3, cfg));
}

TEST(AuditCleanRuns, Fig6CstateC6Sweep) {
    CstateSweepConfig cfg;
    cfg.samples_per_point = 8;
    cfg.audit = strict();
    EXPECT_NO_THROW((void)fig56(cstates::CState::C6, cfg));
}

TEST(AuditCleanRuns, Fig7RelativeBandwidth) {
    EXPECT_NO_THROW((void)fig7(0xC0FFEE, strict()));
}

TEST(AuditCleanRuns, Fig8BandwidthGrid) {
    EXPECT_NO_THROW((void)fig8(0xC0FFEE, strict()));
}

TEST(AuditCleanRuns, Fig2RaplSweepSkylakeSp) {
    EXPECT_NO_THROW(
        (void)fig2_run(arch::Generation::SkylakeSP, Time::sec(1), 0xC0FFEE, strict()));
}

TEST(AuditCleanRuns, SkxHwpEppLadder) {
    SkxSweepConfig cfg;
    cfg.settle = Time::ms(10);
    cfg.window = Time::ms(50);
    cfg.audit = strict();
    EXPECT_NO_THROW((void)skx_hwp_epp(cfg));
}

TEST(AuditCleanRuns, SkxAvx512LicenseSweep) {
    SkxSweepConfig cfg;
    cfg.settle = Time::ms(10);
    cfg.window = Time::ms(50);
    cfg.audit = strict();
    EXPECT_NO_THROW((void)skx_avx512_license(cfg));
}

}  // namespace
}  // namespace hsw::survey
