#include <gtest/gtest.h>

#include "cstates/cstate.hpp"

#include <vector>

namespace hsw::cstates {
namespace {

TEST(CState, Predicates) {
    EXPECT_TRUE(executing(CState::C0));
    EXPECT_FALSE(executing(CState::C1));
    EXPECT_TRUE(power_gated(CState::C6));
    EXPECT_FALSE(power_gated(CState::C3));
    EXPECT_EQ(name(CState::C3), "C3");
    EXPECT_EQ(name(PackageCState::PC6), "PC6");
}

TEST(PackageState, AnyActiveCoreInSystemBlocksDeepSleep) {
    // Section V-A: package C-states "are not used when there is still any
    // core active in the system -- even if this core is located on the
    // other processor".
    const std::vector<CState> all_c6(12, CState::C6);
    EXPECT_EQ(resolve_package_state(all_c6, /*any_core_active_in_system=*/true),
              PackageCState::PC0);
    EXPECT_EQ(resolve_package_state(all_c6, false), PackageCState::PC6);
}

TEST(PackageState, ShallowestCoreLimitsDepth) {
    std::vector<CState> states(4, CState::C6);
    states[2] = CState::C3;
    EXPECT_EQ(resolve_package_state(states, false), PackageCState::PC3);
    states[2] = CState::C1;
    EXPECT_EQ(resolve_package_state(states, false), PackageCState::PC2);
    states[2] = CState::C0;
    EXPECT_EQ(resolve_package_state(states, false), PackageCState::PC0);
}

TEST(PackageState, UncoreClockHaltsOnlyInDeepStates) {
    EXPECT_FALSE(uncore_clock_halted(PackageCState::PC0));
    EXPECT_FALSE(uncore_clock_halted(PackageCState::PC2));
    EXPECT_TRUE(uncore_clock_halted(PackageCState::PC3));
    EXPECT_TRUE(uncore_clock_halted(PackageCState::PC6));
}

TEST(Acpi, ReportedLatenciesMatchTables) {
    // Section VI-B: ACPI tables report 33 us (C3) and 133 us (C6).
    EXPECT_EQ(acpi_reported_latency(CState::C3).as_us(), 33.0);
    EXPECT_EQ(acpi_reported_latency(CState::C6).as_us(), 133.0);
    EXPECT_EQ(acpi_reported_latency(CState::C0).as_ns(), 0);
    EXPECT_GT(acpi_reported_latency(CState::C1).as_us(), 0.0);
}

}  // namespace
}  // namespace hsw::cstates
