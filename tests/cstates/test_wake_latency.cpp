#include <gtest/gtest.h>

#include "cstates/wake_latency.hpp"
#include "util/rng.hpp"

namespace hsw::cstates {
namespace {

using util::Frequency;
using util::Time;

class HswLatency : public ::testing::Test {
protected:
    WakeLatencyModel model{arch::Generation::HaswellEP};
};

TEST_F(HswLatency, C1BelowTwoMicroseconds) {
    // "Transitions from C1 are below 1.6 us for local ... up to 2.1 us for
    // remote measurement (at 1.2 GHz core frequency)".
    for (double f = 1.2; f <= 2.5; f += 0.1) {
        EXPECT_LE(model.mean_latency(CState::C1, Frequency::ghz(f),
                                     WakeScenario::Local).as_us(), 1.6);
    }
    EXPECT_LE(model.mean_latency(CState::C1, Frequency::ghz(1.2),
                                 WakeScenario::RemoteActive).as_us(), 2.1);
}

TEST_F(HswLatency, C3MostlyFrequencyIndependentWithStepAbove1500) {
    // "mostly independent of the core frequencies. However, the latency is
    // 1.5 us higher when frequencies are greater than 1.5 GHz".
    const double lo = model.mean_latency(CState::C3, Frequency::ghz(1.2),
                                         WakeScenario::Local).as_us();
    const double lo2 = model.mean_latency(CState::C3, Frequency::ghz(1.5),
                                          WakeScenario::Local).as_us();
    const double hi = model.mean_latency(CState::C3, Frequency::ghz(2.5),
                                         WakeScenario::Local).as_us();
    EXPECT_NEAR(lo, lo2, 0.01);
    EXPECT_NEAR(hi - lo, 1.5, 0.01);
}

TEST_F(HswLatency, PackageC3AddsTwoToFourMicroseconds) {
    for (double f = 1.2; f <= 2.5; f += 0.1) {
        const double remote = model.mean_latency(CState::C3, Frequency::ghz(f),
                                                 WakeScenario::RemoteActive).as_us();
        const double pkg = model.mean_latency(CState::C3, Frequency::ghz(f),
                                              WakeScenario::RemoteIdle).as_us();
        EXPECT_GE(pkg - remote, 2.0 - 0.01) << f;
        EXPECT_LE(pkg - remote, 4.0 + 0.01) << f;
    }
}

TEST_F(HswLatency, C6AddsTwoToEightOverC3DependingOnFrequency) {
    const double add_fast = model.mean_latency(CState::C6, Frequency::ghz(2.5),
                                               WakeScenario::Local).as_us() -
                            model.mean_latency(CState::C3, Frequency::ghz(2.5),
                                               WakeScenario::Local).as_us();
    const double add_slow = model.mean_latency(CState::C6, Frequency::ghz(1.2),
                                               WakeScenario::Local).as_us() -
                            model.mean_latency(CState::C3, Frequency::ghz(1.2),
                                               WakeScenario::Local).as_us();
    EXPECT_NEAR(add_fast, 2.0, 0.1);
    EXPECT_NEAR(add_slow, 8.0, 0.1);
}

TEST_F(HswLatency, PackageC6AddsEightOverPackageC3) {
    const double pkg_c3 = model.mean_latency(CState::C3, Frequency::ghz(2.0),
                                             WakeScenario::RemoteIdle).as_us();
    const double pkg_c6 = model.mean_latency(CState::C6, Frequency::ghz(2.0),
                                             WakeScenario::RemoteIdle).as_us();
    // C6 adds its core-level extra plus the 8 us package C6 restart.
    EXPECT_GT(pkg_c6 - pkg_c3, 8.0);
}

TEST_F(HswLatency, MeasuredBelowAcpiTables) {
    // The Section VI-B punchline.
    for (double f = 1.2; f <= 2.5; f += 0.1) {
        for (auto scenario : {WakeScenario::Local, WakeScenario::RemoteActive,
                              WakeScenario::RemoteIdle}) {
            EXPECT_LT(model.mean_latency(CState::C3, Frequency::ghz(f), scenario).as_us(),
                      33.0);
            EXPECT_LT(model.mean_latency(CState::C6, Frequency::ghz(f), scenario).as_us(),
                      133.0);
        }
    }
}

TEST_F(HswLatency, CstateFasterThanPstateTransitions) {
    // "the c-state transitions happen faster than p-state transitions".
    EXPECT_LT(model.mean_latency(CState::C6, Frequency::ghz(1.2),
                                 WakeScenario::RemoteIdle).as_us(), 40.0);
}

TEST(SnbLatency, SlowerThanHaswell) {
    const WakeLatencyModel hsw{arch::Generation::HaswellEP};
    const WakeLatencyModel snb{arch::Generation::SandyBridgeEP};
    for (double f = 1.2; f <= 2.5; f += 0.3) {
        EXPECT_GT(snb.mean_latency(CState::C3, Frequency::ghz(f),
                                   WakeScenario::Local).as_us(),
                  hsw.mean_latency(CState::C3, Frequency::ghz(f),
                                   WakeScenario::Local).as_us());
        EXPECT_GT(snb.mean_latency(CState::C6, Frequency::ghz(f),
                                   WakeScenario::Local).as_us(),
                  hsw.mean_latency(CState::C6, Frequency::ghz(f),
                                   WakeScenario::Local).as_us());
    }
}

TEST(WakeSamples, NoisyButNonNegativeAndUnbiased) {
    const WakeLatencyModel model{arch::Generation::HaswellEP};
    util::Rng rng{5};
    double sum = 0.0;
    const int n = 2000;
    for (int i = 0; i < n; ++i) {
        const Time t = model.sample(CState::C3, Frequency::ghz(2.0),
                                    WakeScenario::Local, rng);
        ASSERT_GE(t.as_us(), 0.0);
        sum += t.as_us();
    }
    const double mean_latency = model.mean_latency(CState::C3, Frequency::ghz(2.0),
                                                   WakeScenario::Local).as_us();
    EXPECT_NEAR(sum / n, mean_latency, 0.05);
}

// Property sweep: latency ordering local <= remote-active <= remote-idle
// holds for every state and frequency.
struct OrderingParam {
    CState state;
    int freq_x10;
};

class ScenarioOrdering : public ::testing::TestWithParam<OrderingParam> {};

TEST_P(ScenarioOrdering, LocalFastestPackageSlowest) {
    const WakeLatencyModel model{arch::Generation::HaswellEP};
    const auto [state, fx10] = GetParam();
    const Frequency f = Frequency::ghz(fx10 / 10.0);
    const double local = model.mean_latency(state, f, WakeScenario::Local).as_us();
    const double remote = model.mean_latency(state, f, WakeScenario::RemoteActive).as_us();
    const double pkg = model.mean_latency(state, f, WakeScenario::RemoteIdle).as_us();
    EXPECT_LE(local, remote);
    EXPECT_LE(remote, pkg);
}

INSTANTIATE_TEST_SUITE_P(
    StatesAndFrequencies, ScenarioOrdering,
    ::testing::Values(OrderingParam{CState::C3, 12}, OrderingParam{CState::C3, 18},
                      OrderingParam{CState::C3, 25}, OrderingParam{CState::C6, 12},
                      OrderingParam{CState::C6, 18}, OrderingParam{CState::C6, 25}));

}  // namespace
}  // namespace hsw::cstates
