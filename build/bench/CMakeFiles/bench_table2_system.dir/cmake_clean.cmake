file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_system.dir/bench_table2_system.cpp.o"
  "CMakeFiles/bench_table2_system.dir/bench_table2_system.cpp.o.d"
  "bench_table2_system"
  "bench_table2_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
