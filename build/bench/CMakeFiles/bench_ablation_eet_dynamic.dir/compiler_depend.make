# Empty compiler generated dependencies file for bench_ablation_eet_dynamic.
# This may be replaced when dependencies are built.
