# Empty compiler generated dependencies file for bench_table4_firestarter.
# This may be replaced when dependencies are built.
