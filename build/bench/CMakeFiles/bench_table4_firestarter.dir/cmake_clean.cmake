file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_firestarter.dir/bench_table4_firestarter.cpp.o"
  "CMakeFiles/bench_table4_firestarter.dir/bench_table4_firestarter.cpp.o.d"
  "bench_table4_firestarter"
  "bench_table4_firestarter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_firestarter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
