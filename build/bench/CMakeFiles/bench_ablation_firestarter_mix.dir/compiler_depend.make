# Empty compiler generated dependencies file for bench_ablation_firestarter_mix.
# This may be replaced when dependencies are built.
