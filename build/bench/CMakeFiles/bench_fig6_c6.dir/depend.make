# Empty dependencies file for bench_fig6_c6.
# This may be replaced when dependencies are built.
