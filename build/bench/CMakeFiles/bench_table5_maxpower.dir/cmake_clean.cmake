file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_maxpower.dir/bench_table5_maxpower.cpp.o"
  "CMakeFiles/bench_table5_maxpower.dir/bench_table5_maxpower.cpp.o.d"
  "bench_table5_maxpower"
  "bench_table5_maxpower.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_maxpower.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
