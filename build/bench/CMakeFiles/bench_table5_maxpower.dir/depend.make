# Empty dependencies file for bench_table5_maxpower.
# This may be replaced when dependencies are built.
