file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_opportunity.dir/bench_fig4_opportunity.cpp.o"
  "CMakeFiles/bench_fig4_opportunity.dir/bench_fig4_opportunity.cpp.o.d"
  "bench_fig4_opportunity"
  "bench_fig4_opportunity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_opportunity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
