# Empty compiler generated dependencies file for bench_fig4_opportunity.
# This may be replaced when dependencies are built.
