file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_rapl.dir/bench_fig2_rapl.cpp.o"
  "CMakeFiles/bench_fig2_rapl.dir/bench_fig2_rapl.cpp.o.d"
  "bench_fig2_rapl"
  "bench_fig2_rapl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_rapl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
