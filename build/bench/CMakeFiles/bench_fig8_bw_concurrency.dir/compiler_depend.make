# Empty compiler generated dependencies file for bench_fig8_bw_concurrency.
# This may be replaced when dependencies are built.
