file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_bw_concurrency.dir/bench_fig8_bw_concurrency.cpp.o"
  "CMakeFiles/bench_fig8_bw_concurrency.dir/bench_fig8_bw_concurrency.cpp.o.d"
  "bench_fig8_bw_concurrency"
  "bench_fig8_bw_concurrency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_bw_concurrency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
