# Empty dependencies file for bench_fig7_bw_frequency.
# This may be replaced when dependencies are built.
