file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_microarch.dir/bench_table1_microarch.cpp.o"
  "CMakeFiles/bench_table1_microarch.dir/bench_table1_microarch.cpp.o.d"
  "bench_table1_microarch"
  "bench_table1_microarch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_microarch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
