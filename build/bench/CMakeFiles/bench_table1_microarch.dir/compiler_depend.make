# Empty compiler generated dependencies file for bench_table1_microarch.
# This may be replaced when dependencies are built.
