# Empty compiler generated dependencies file for bench_ablation_opportunity.
# This may be replaced when dependencies are built.
