file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_opportunity.dir/bench_ablation_opportunity.cpp.o"
  "CMakeFiles/bench_ablation_opportunity.dir/bench_ablation_opportunity.cpp.o.d"
  "bench_ablation_opportunity"
  "bench_ablation_opportunity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_opportunity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
