# Empty compiler generated dependencies file for bench_ablation_rapl_backend.
# This may be replaced when dependencies are built.
