# Empty compiler generated dependencies file for bench_ablation_ufs.
# This may be replaced when dependencies are built.
