file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_ufs.dir/bench_ablation_ufs.cpp.o"
  "CMakeFiles/bench_ablation_ufs.dir/bench_ablation_ufs.cpp.o.d"
  "bench_ablation_ufs"
  "bench_ablation_ufs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ufs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
