# Empty dependencies file for bench_fig5_c3.
# This may be replaced when dependencies are built.
