file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_dvfs_vs_dct.dir/bench_ablation_dvfs_vs_dct.cpp.o"
  "CMakeFiles/bench_ablation_dvfs_vs_dct.dir/bench_ablation_dvfs_vs_dct.cpp.o.d"
  "bench_ablation_dvfs_vs_dct"
  "bench_ablation_dvfs_vs_dct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_dvfs_vs_dct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
