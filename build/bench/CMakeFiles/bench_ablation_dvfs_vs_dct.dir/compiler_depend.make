# Empty compiler generated dependencies file for bench_ablation_dvfs_vs_dct.
# This may be replaced when dependencies are built.
