file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_uncore.dir/bench_table3_uncore.cpp.o"
  "CMakeFiles/bench_table3_uncore.dir/bench_table3_uncore.cpp.o.d"
  "bench_table3_uncore"
  "bench_table3_uncore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_uncore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
