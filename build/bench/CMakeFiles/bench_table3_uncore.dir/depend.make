# Empty dependencies file for bench_table3_uncore.
# This may be replaced when dependencies are built.
