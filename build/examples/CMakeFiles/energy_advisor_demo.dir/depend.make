# Empty dependencies file for energy_advisor_demo.
# This may be replaced when dependencies are built.
