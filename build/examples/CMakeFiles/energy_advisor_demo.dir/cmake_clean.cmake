file(REMOVE_RECURSE
  "CMakeFiles/energy_advisor_demo.dir/energy_advisor_demo.cpp.o"
  "CMakeFiles/energy_advisor_demo.dir/energy_advisor_demo.cpp.o.d"
  "energy_advisor_demo"
  "energy_advisor_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/energy_advisor_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
