file(REMOVE_RECURSE
  "CMakeFiles/cluster_imbalance.dir/cluster_imbalance.cpp.o"
  "CMakeFiles/cluster_imbalance.dir/cluster_imbalance.cpp.o.d"
  "cluster_imbalance"
  "cluster_imbalance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_imbalance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
