# Empty compiler generated dependencies file for cluster_imbalance.
# This may be replaced when dependencies are built.
