file(REMOVE_RECURSE
  "CMakeFiles/idle_governor_sim.dir/idle_governor_sim.cpp.o"
  "CMakeFiles/idle_governor_sim.dir/idle_governor_sim.cpp.o.d"
  "idle_governor_sim"
  "idle_governor_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idle_governor_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
