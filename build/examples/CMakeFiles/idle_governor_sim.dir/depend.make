# Empty dependencies file for idle_governor_sim.
# This may be replaced when dependencies are built.
