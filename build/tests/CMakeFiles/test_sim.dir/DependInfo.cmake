
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/test_simulator.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_simulator.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_simulator.cpp.o.d"
  "/root/repo/tests/sim/test_trace.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_trace.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_trace.cpp.o.d"
  "/root/repo/tests/sim/test_trace_json.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_trace_json.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_trace_json.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/survey/CMakeFiles/hsw_survey.dir/DependInfo.cmake"
  "/root/repo/build/src/tools/CMakeFiles/hsw_tools.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/hsw_os.dir/DependInfo.cmake"
  "/root/repo/build/src/advisor/CMakeFiles/hsw_advisor.dir/DependInfo.cmake"
  "/root/repo/build/src/perfmon/CMakeFiles/hsw_perfmon.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hsw_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hsw_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/pcu/CMakeFiles/hsw_pcu.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/hsw_power.dir/DependInfo.cmake"
  "/root/repo/build/src/cstates/CMakeFiles/hsw_cstates.dir/DependInfo.cmake"
  "/root/repo/build/src/rapl/CMakeFiles/hsw_rapl.dir/DependInfo.cmake"
  "/root/repo/build/src/msr/CMakeFiles/hsw_msr.dir/DependInfo.cmake"
  "/root/repo/build/src/meter/CMakeFiles/hsw_meter.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/hsw_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/hsw_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/hsw_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hsw_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
