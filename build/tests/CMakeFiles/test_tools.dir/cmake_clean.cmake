file(REMOVE_RECURSE
  "CMakeFiles/test_tools.dir/tools/test_cstate_probe.cpp.o"
  "CMakeFiles/test_tools.dir/tools/test_cstate_probe.cpp.o.d"
  "CMakeFiles/test_tools.dir/tools/test_ftalat.cpp.o"
  "CMakeFiles/test_tools.dir/tools/test_ftalat.cpp.o.d"
  "CMakeFiles/test_tools.dir/tools/test_membench.cpp.o"
  "CMakeFiles/test_tools.dir/tools/test_membench.cpp.o.d"
  "CMakeFiles/test_tools.dir/tools/test_perfctr.cpp.o"
  "CMakeFiles/test_tools.dir/tools/test_perfctr.cpp.o.d"
  "CMakeFiles/test_tools.dir/tools/test_rapl_validate.cpp.o"
  "CMakeFiles/test_tools.dir/tools/test_rapl_validate.cpp.o.d"
  "test_tools"
  "test_tools.pdb"
  "test_tools[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tools.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
