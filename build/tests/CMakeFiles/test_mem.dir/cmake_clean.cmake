file(REMOVE_RECURSE
  "CMakeFiles/test_mem.dir/mem/test_bandwidth_model.cpp.o"
  "CMakeFiles/test_mem.dir/mem/test_bandwidth_model.cpp.o.d"
  "CMakeFiles/test_mem.dir/mem/test_cache.cpp.o"
  "CMakeFiles/test_mem.dir/mem/test_cache.cpp.o.d"
  "CMakeFiles/test_mem.dir/mem/test_coherency.cpp.o"
  "CMakeFiles/test_mem.dir/mem/test_coherency.cpp.o.d"
  "CMakeFiles/test_mem.dir/mem/test_qpi.cpp.o"
  "CMakeFiles/test_mem.dir/mem/test_qpi.cpp.o.d"
  "CMakeFiles/test_mem.dir/mem/test_ring_imc.cpp.o"
  "CMakeFiles/test_mem.dir/mem/test_ring_imc.cpp.o.d"
  "test_mem"
  "test_mem.pdb"
  "test_mem[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
