file(REMOVE_RECURSE
  "CMakeFiles/test_arch.dir/arch/test_microarch.cpp.o"
  "CMakeFiles/test_arch.dir/arch/test_microarch.cpp.o.d"
  "CMakeFiles/test_arch.dir/arch/test_sku.cpp.o"
  "CMakeFiles/test_arch.dir/arch/test_sku.cpp.o.d"
  "CMakeFiles/test_arch.dir/arch/test_topology.cpp.o"
  "CMakeFiles/test_arch.dir/arch/test_topology.cpp.o.d"
  "CMakeFiles/test_arch.dir/arch/test_topology_render.cpp.o"
  "CMakeFiles/test_arch.dir/arch/test_topology_render.cpp.o.d"
  "test_arch"
  "test_arch.pdb"
  "test_arch[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
