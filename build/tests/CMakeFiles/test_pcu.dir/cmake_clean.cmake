file(REMOVE_RECURSE
  "CMakeFiles/test_pcu.dir/pcu/test_avx_license.cpp.o"
  "CMakeFiles/test_pcu.dir/pcu/test_avx_license.cpp.o.d"
  "CMakeFiles/test_pcu.dir/pcu/test_pcu_controller.cpp.o"
  "CMakeFiles/test_pcu.dir/pcu/test_pcu_controller.cpp.o.d"
  "CMakeFiles/test_pcu.dir/pcu/test_turbo.cpp.o"
  "CMakeFiles/test_pcu.dir/pcu/test_turbo.cpp.o.d"
  "CMakeFiles/test_pcu.dir/pcu/test_uncore_policy.cpp.o"
  "CMakeFiles/test_pcu.dir/pcu/test_uncore_policy.cpp.o.d"
  "CMakeFiles/test_pcu.dir/pcu/test_uncore_ratio_limit.cpp.o"
  "CMakeFiles/test_pcu.dir/pcu/test_uncore_ratio_limit.cpp.o.d"
  "test_pcu"
  "test_pcu.pdb"
  "test_pcu[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pcu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
