file(REMOVE_RECURSE
  "CMakeFiles/test_os.dir/os/test_cpufreq.cpp.o"
  "CMakeFiles/test_os.dir/os/test_cpufreq.cpp.o.d"
  "CMakeFiles/test_os.dir/os/test_idle_governor.cpp.o"
  "CMakeFiles/test_os.dir/os/test_idle_governor.cpp.o.d"
  "CMakeFiles/test_os.dir/os/test_sysfs.cpp.o"
  "CMakeFiles/test_os.dir/os/test_sysfs.cpp.o.d"
  "test_os"
  "test_os.pdb"
  "test_os[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
