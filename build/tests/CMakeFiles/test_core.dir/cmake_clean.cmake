file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_node_avx_generations.cpp.o"
  "CMakeFiles/test_core.dir/core/test_node_avx_generations.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_node_basics.cpp.o"
  "CMakeFiles/test_core.dir/core/test_node_basics.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_node_cstates.cpp.o"
  "CMakeFiles/test_core.dir/core/test_node_cstates.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_node_power.cpp.o"
  "CMakeFiles/test_core.dir/core/test_node_power.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_node_residency.cpp.o"
  "CMakeFiles/test_core.dir/core/test_node_residency.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
