# Empty dependencies file for test_perfmon_meter.
# This may be replaced when dependencies are built.
