file(REMOVE_RECURSE
  "CMakeFiles/test_perfmon_meter.dir/meter/test_lmg450.cpp.o"
  "CMakeFiles/test_perfmon_meter.dir/meter/test_lmg450.cpp.o.d"
  "CMakeFiles/test_perfmon_meter.dir/perfmon/test_counters.cpp.o"
  "CMakeFiles/test_perfmon_meter.dir/perfmon/test_counters.cpp.o.d"
  "test_perfmon_meter"
  "test_perfmon_meter.pdb"
  "test_perfmon_meter[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_perfmon_meter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
