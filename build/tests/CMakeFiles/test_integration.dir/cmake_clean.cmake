file(REMOVE_RECURSE
  "CMakeFiles/test_integration.dir/integration/test_determinism.cpp.o"
  "CMakeFiles/test_integration.dir/integration/test_determinism.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/test_fig2_repro.cpp.o"
  "CMakeFiles/test_integration.dir/integration/test_fig2_repro.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/test_fig3_repro.cpp.o"
  "CMakeFiles/test_integration.dir/integration/test_fig3_repro.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/test_fig56_repro.cpp.o"
  "CMakeFiles/test_integration.dir/integration/test_fig56_repro.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/test_fig78_repro.cpp.o"
  "CMakeFiles/test_integration.dir/integration/test_fig78_repro.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/test_haswell_he.cpp.o"
  "CMakeFiles/test_integration.dir/integration/test_haswell_he.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/test_property_sweeps.cpp.o"
  "CMakeFiles/test_integration.dir/integration/test_property_sweeps.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/test_survey_renders.cpp.o"
  "CMakeFiles/test_integration.dir/integration/test_survey_renders.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/test_table3_repro.cpp.o"
  "CMakeFiles/test_integration.dir/integration/test_table3_repro.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/test_table4_repro.cpp.o"
  "CMakeFiles/test_integration.dir/integration/test_table4_repro.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/test_table5_repro.cpp.o"
  "CMakeFiles/test_integration.dir/integration/test_table5_repro.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/test_trace_pipeline.cpp.o"
  "CMakeFiles/test_integration.dir/integration/test_trace_pipeline.cpp.o.d"
  "test_integration"
  "test_integration.pdb"
  "test_integration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
