# Empty compiler generated dependencies file for test_cstates.
# This may be replaced when dependencies are built.
