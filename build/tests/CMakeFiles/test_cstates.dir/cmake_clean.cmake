file(REMOVE_RECURSE
  "CMakeFiles/test_cstates.dir/cstates/test_cstate.cpp.o"
  "CMakeFiles/test_cstates.dir/cstates/test_cstate.cpp.o.d"
  "CMakeFiles/test_cstates.dir/cstates/test_wake_latency.cpp.o"
  "CMakeFiles/test_cstates.dir/cstates/test_wake_latency.cpp.o.d"
  "test_cstates"
  "test_cstates.pdb"
  "test_cstates[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cstates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
