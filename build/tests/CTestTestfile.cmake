# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_arch[1]_include.cmake")
include("/root/repo/build/tests/test_msr[1]_include.cmake")
include("/root/repo/build/tests/test_power[1]_include.cmake")
include("/root/repo/build/tests/test_cstates[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_pcu[1]_include.cmake")
include("/root/repo/build/tests/test_rapl[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_advisor[1]_include.cmake")
include("/root/repo/build/tests/test_perfmon_meter[1]_include.cmake")
include("/root/repo/build/tests/test_os[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_tools[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
