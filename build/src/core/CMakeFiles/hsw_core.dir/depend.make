# Empty dependencies file for hsw_core.
# This may be replaced when dependencies are built.
