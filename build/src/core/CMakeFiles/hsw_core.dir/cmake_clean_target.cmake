file(REMOVE_RECURSE
  "libhsw_core.a"
)
