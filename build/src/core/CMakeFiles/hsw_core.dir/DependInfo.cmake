
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/node.cpp" "src/core/CMakeFiles/hsw_core.dir/node.cpp.o" "gcc" "src/core/CMakeFiles/hsw_core.dir/node.cpp.o.d"
  "/root/repo/src/core/socket.cpp" "src/core/CMakeFiles/hsw_core.dir/socket.cpp.o" "gcc" "src/core/CMakeFiles/hsw_core.dir/socket.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/hsw_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hsw_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/hsw_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/msr/CMakeFiles/hsw_msr.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/hsw_power.dir/DependInfo.cmake"
  "/root/repo/build/src/cstates/CMakeFiles/hsw_cstates.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/hsw_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/pcu/CMakeFiles/hsw_pcu.dir/DependInfo.cmake"
  "/root/repo/build/src/rapl/CMakeFiles/hsw_rapl.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/hsw_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/meter/CMakeFiles/hsw_meter.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
