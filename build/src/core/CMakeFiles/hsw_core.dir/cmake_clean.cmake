file(REMOVE_RECURSE
  "CMakeFiles/hsw_core.dir/node.cpp.o"
  "CMakeFiles/hsw_core.dir/node.cpp.o.d"
  "CMakeFiles/hsw_core.dir/socket.cpp.o"
  "CMakeFiles/hsw_core.dir/socket.cpp.o.d"
  "libhsw_core.a"
  "libhsw_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsw_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
