file(REMOVE_RECURSE
  "libhsw_mem.a"
)
