
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/bandwidth_model.cpp" "src/mem/CMakeFiles/hsw_mem.dir/bandwidth_model.cpp.o" "gcc" "src/mem/CMakeFiles/hsw_mem.dir/bandwidth_model.cpp.o.d"
  "/root/repo/src/mem/cache.cpp" "src/mem/CMakeFiles/hsw_mem.dir/cache.cpp.o" "gcc" "src/mem/CMakeFiles/hsw_mem.dir/cache.cpp.o.d"
  "/root/repo/src/mem/coherency.cpp" "src/mem/CMakeFiles/hsw_mem.dir/coherency.cpp.o" "gcc" "src/mem/CMakeFiles/hsw_mem.dir/coherency.cpp.o.d"
  "/root/repo/src/mem/imc.cpp" "src/mem/CMakeFiles/hsw_mem.dir/imc.cpp.o" "gcc" "src/mem/CMakeFiles/hsw_mem.dir/imc.cpp.o.d"
  "/root/repo/src/mem/qpi.cpp" "src/mem/CMakeFiles/hsw_mem.dir/qpi.cpp.o" "gcc" "src/mem/CMakeFiles/hsw_mem.dir/qpi.cpp.o.d"
  "/root/repo/src/mem/ring.cpp" "src/mem/CMakeFiles/hsw_mem.dir/ring.cpp.o" "gcc" "src/mem/CMakeFiles/hsw_mem.dir/ring.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/hsw_util.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/hsw_arch.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
