file(REMOVE_RECURSE
  "CMakeFiles/hsw_mem.dir/bandwidth_model.cpp.o"
  "CMakeFiles/hsw_mem.dir/bandwidth_model.cpp.o.d"
  "CMakeFiles/hsw_mem.dir/cache.cpp.o"
  "CMakeFiles/hsw_mem.dir/cache.cpp.o.d"
  "CMakeFiles/hsw_mem.dir/coherency.cpp.o"
  "CMakeFiles/hsw_mem.dir/coherency.cpp.o.d"
  "CMakeFiles/hsw_mem.dir/imc.cpp.o"
  "CMakeFiles/hsw_mem.dir/imc.cpp.o.d"
  "CMakeFiles/hsw_mem.dir/qpi.cpp.o"
  "CMakeFiles/hsw_mem.dir/qpi.cpp.o.d"
  "CMakeFiles/hsw_mem.dir/ring.cpp.o"
  "CMakeFiles/hsw_mem.dir/ring.cpp.o.d"
  "libhsw_mem.a"
  "libhsw_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsw_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
