# Empty dependencies file for hsw_mem.
# This may be replaced when dependencies are built.
