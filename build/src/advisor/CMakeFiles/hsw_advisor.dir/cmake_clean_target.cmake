file(REMOVE_RECURSE
  "libhsw_advisor.a"
)
