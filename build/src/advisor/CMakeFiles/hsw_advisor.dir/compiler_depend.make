# Empty compiler generated dependencies file for hsw_advisor.
# This may be replaced when dependencies are built.
