file(REMOVE_RECURSE
  "CMakeFiles/hsw_advisor.dir/energy_advisor.cpp.o"
  "CMakeFiles/hsw_advisor.dir/energy_advisor.cpp.o.d"
  "libhsw_advisor.a"
  "libhsw_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsw_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
