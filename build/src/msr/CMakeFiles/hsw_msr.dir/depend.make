# Empty dependencies file for hsw_msr.
# This may be replaced when dependencies are built.
