file(REMOVE_RECURSE
  "libhsw_msr.a"
)
