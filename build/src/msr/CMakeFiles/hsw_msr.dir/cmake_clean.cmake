file(REMOVE_RECURSE
  "CMakeFiles/hsw_msr.dir/msr_file.cpp.o"
  "CMakeFiles/hsw_msr.dir/msr_file.cpp.o.d"
  "libhsw_msr.a"
  "libhsw_msr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsw_msr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
