file(REMOVE_RECURSE
  "libhsw_sim.a"
)
