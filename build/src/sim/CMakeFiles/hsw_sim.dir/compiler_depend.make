# Empty compiler generated dependencies file for hsw_sim.
# This may be replaced when dependencies are built.
