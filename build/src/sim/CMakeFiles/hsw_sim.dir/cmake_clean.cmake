file(REMOVE_RECURSE
  "CMakeFiles/hsw_sim.dir/simulator.cpp.o"
  "CMakeFiles/hsw_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/hsw_sim.dir/trace.cpp.o"
  "CMakeFiles/hsw_sim.dir/trace.cpp.o.d"
  "CMakeFiles/hsw_sim.dir/trace_json.cpp.o"
  "CMakeFiles/hsw_sim.dir/trace_json.cpp.o.d"
  "libhsw_sim.a"
  "libhsw_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsw_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
