file(REMOVE_RECURSE
  "CMakeFiles/hsw_arch.dir/microarch.cpp.o"
  "CMakeFiles/hsw_arch.dir/microarch.cpp.o.d"
  "CMakeFiles/hsw_arch.dir/sku.cpp.o"
  "CMakeFiles/hsw_arch.dir/sku.cpp.o.d"
  "CMakeFiles/hsw_arch.dir/topology.cpp.o"
  "CMakeFiles/hsw_arch.dir/topology.cpp.o.d"
  "CMakeFiles/hsw_arch.dir/topology_render.cpp.o"
  "CMakeFiles/hsw_arch.dir/topology_render.cpp.o.d"
  "libhsw_arch.a"
  "libhsw_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsw_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
