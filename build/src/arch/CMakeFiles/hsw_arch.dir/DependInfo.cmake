
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arch/microarch.cpp" "src/arch/CMakeFiles/hsw_arch.dir/microarch.cpp.o" "gcc" "src/arch/CMakeFiles/hsw_arch.dir/microarch.cpp.o.d"
  "/root/repo/src/arch/sku.cpp" "src/arch/CMakeFiles/hsw_arch.dir/sku.cpp.o" "gcc" "src/arch/CMakeFiles/hsw_arch.dir/sku.cpp.o.d"
  "/root/repo/src/arch/topology.cpp" "src/arch/CMakeFiles/hsw_arch.dir/topology.cpp.o" "gcc" "src/arch/CMakeFiles/hsw_arch.dir/topology.cpp.o.d"
  "/root/repo/src/arch/topology_render.cpp" "src/arch/CMakeFiles/hsw_arch.dir/topology_render.cpp.o" "gcc" "src/arch/CMakeFiles/hsw_arch.dir/topology_render.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/hsw_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
