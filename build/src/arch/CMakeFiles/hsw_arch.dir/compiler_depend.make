# Empty compiler generated dependencies file for hsw_arch.
# This may be replaced when dependencies are built.
