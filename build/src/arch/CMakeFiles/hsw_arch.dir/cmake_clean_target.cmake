file(REMOVE_RECURSE
  "libhsw_arch.a"
)
