file(REMOVE_RECURSE
  "libhsw_tools.a"
)
