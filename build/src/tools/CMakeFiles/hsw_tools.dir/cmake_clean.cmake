file(REMOVE_RECURSE
  "CMakeFiles/hsw_tools.dir/cstate_probe.cpp.o"
  "CMakeFiles/hsw_tools.dir/cstate_probe.cpp.o.d"
  "CMakeFiles/hsw_tools.dir/ftalat.cpp.o"
  "CMakeFiles/hsw_tools.dir/ftalat.cpp.o.d"
  "CMakeFiles/hsw_tools.dir/membench.cpp.o"
  "CMakeFiles/hsw_tools.dir/membench.cpp.o.d"
  "CMakeFiles/hsw_tools.dir/perfctr.cpp.o"
  "CMakeFiles/hsw_tools.dir/perfctr.cpp.o.d"
  "CMakeFiles/hsw_tools.dir/rapl_validate.cpp.o"
  "CMakeFiles/hsw_tools.dir/rapl_validate.cpp.o.d"
  "libhsw_tools.a"
  "libhsw_tools.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsw_tools.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
