# Empty dependencies file for hsw_tools.
# This may be replaced when dependencies are built.
