file(REMOVE_RECURSE
  "libhsw_util.a"
)
