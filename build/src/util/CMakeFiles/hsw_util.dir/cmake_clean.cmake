file(REMOVE_RECURSE
  "CMakeFiles/hsw_util.dir/csv.cpp.o"
  "CMakeFiles/hsw_util.dir/csv.cpp.o.d"
  "CMakeFiles/hsw_util.dir/histogram.cpp.o"
  "CMakeFiles/hsw_util.dir/histogram.cpp.o.d"
  "CMakeFiles/hsw_util.dir/stats.cpp.o"
  "CMakeFiles/hsw_util.dir/stats.cpp.o.d"
  "CMakeFiles/hsw_util.dir/table.cpp.o"
  "CMakeFiles/hsw_util.dir/table.cpp.o.d"
  "libhsw_util.a"
  "libhsw_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsw_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
