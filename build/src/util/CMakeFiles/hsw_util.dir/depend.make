# Empty dependencies file for hsw_util.
# This may be replaced when dependencies are built.
