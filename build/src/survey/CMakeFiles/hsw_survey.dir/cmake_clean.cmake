file(REMOVE_RECURSE
  "CMakeFiles/hsw_survey.dir/fig2_rapl.cpp.o"
  "CMakeFiles/hsw_survey.dir/fig2_rapl.cpp.o.d"
  "CMakeFiles/hsw_survey.dir/fig3_pstate.cpp.o"
  "CMakeFiles/hsw_survey.dir/fig3_pstate.cpp.o.d"
  "CMakeFiles/hsw_survey.dir/fig4_opportunity.cpp.o"
  "CMakeFiles/hsw_survey.dir/fig4_opportunity.cpp.o.d"
  "CMakeFiles/hsw_survey.dir/fig56_cstates.cpp.o"
  "CMakeFiles/hsw_survey.dir/fig56_cstates.cpp.o.d"
  "CMakeFiles/hsw_survey.dir/fig56_csv.cpp.o"
  "CMakeFiles/hsw_survey.dir/fig56_csv.cpp.o.d"
  "CMakeFiles/hsw_survey.dir/fig78_bandwidth.cpp.o"
  "CMakeFiles/hsw_survey.dir/fig78_bandwidth.cpp.o.d"
  "CMakeFiles/hsw_survey.dir/table1_microarch.cpp.o"
  "CMakeFiles/hsw_survey.dir/table1_microarch.cpp.o.d"
  "CMakeFiles/hsw_survey.dir/table2_system.cpp.o"
  "CMakeFiles/hsw_survey.dir/table2_system.cpp.o.d"
  "CMakeFiles/hsw_survey.dir/table3_uncore.cpp.o"
  "CMakeFiles/hsw_survey.dir/table3_uncore.cpp.o.d"
  "CMakeFiles/hsw_survey.dir/table4_firestarter.cpp.o"
  "CMakeFiles/hsw_survey.dir/table4_firestarter.cpp.o.d"
  "CMakeFiles/hsw_survey.dir/table5_maxpower.cpp.o"
  "CMakeFiles/hsw_survey.dir/table5_maxpower.cpp.o.d"
  "libhsw_survey.a"
  "libhsw_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsw_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
