# Empty compiler generated dependencies file for hsw_survey.
# This may be replaced when dependencies are built.
