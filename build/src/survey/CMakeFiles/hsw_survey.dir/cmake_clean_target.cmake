file(REMOVE_RECURSE
  "libhsw_survey.a"
)
