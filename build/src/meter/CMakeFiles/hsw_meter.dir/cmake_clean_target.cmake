file(REMOVE_RECURSE
  "libhsw_meter.a"
)
