file(REMOVE_RECURSE
  "CMakeFiles/hsw_meter.dir/lmg450.cpp.o"
  "CMakeFiles/hsw_meter.dir/lmg450.cpp.o.d"
  "libhsw_meter.a"
  "libhsw_meter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsw_meter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
