
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/meter/lmg450.cpp" "src/meter/CMakeFiles/hsw_meter.dir/lmg450.cpp.o" "gcc" "src/meter/CMakeFiles/hsw_meter.dir/lmg450.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/hsw_util.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/hsw_arch.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
