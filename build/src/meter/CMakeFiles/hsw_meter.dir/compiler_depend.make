# Empty compiler generated dependencies file for hsw_meter.
# This may be replaced when dependencies are built.
