file(REMOVE_RECURSE
  "CMakeFiles/hsw_pcu.dir/avx_license.cpp.o"
  "CMakeFiles/hsw_pcu.dir/avx_license.cpp.o.d"
  "CMakeFiles/hsw_pcu.dir/pcu.cpp.o"
  "CMakeFiles/hsw_pcu.dir/pcu.cpp.o.d"
  "CMakeFiles/hsw_pcu.dir/turbo.cpp.o"
  "CMakeFiles/hsw_pcu.dir/turbo.cpp.o.d"
  "CMakeFiles/hsw_pcu.dir/uncore_scaling.cpp.o"
  "CMakeFiles/hsw_pcu.dir/uncore_scaling.cpp.o.d"
  "libhsw_pcu.a"
  "libhsw_pcu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsw_pcu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
