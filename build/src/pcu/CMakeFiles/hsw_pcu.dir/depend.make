# Empty dependencies file for hsw_pcu.
# This may be replaced when dependencies are built.
