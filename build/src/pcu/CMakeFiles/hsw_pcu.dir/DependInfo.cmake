
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pcu/avx_license.cpp" "src/pcu/CMakeFiles/hsw_pcu.dir/avx_license.cpp.o" "gcc" "src/pcu/CMakeFiles/hsw_pcu.dir/avx_license.cpp.o.d"
  "/root/repo/src/pcu/pcu.cpp" "src/pcu/CMakeFiles/hsw_pcu.dir/pcu.cpp.o" "gcc" "src/pcu/CMakeFiles/hsw_pcu.dir/pcu.cpp.o.d"
  "/root/repo/src/pcu/turbo.cpp" "src/pcu/CMakeFiles/hsw_pcu.dir/turbo.cpp.o" "gcc" "src/pcu/CMakeFiles/hsw_pcu.dir/turbo.cpp.o.d"
  "/root/repo/src/pcu/uncore_scaling.cpp" "src/pcu/CMakeFiles/hsw_pcu.dir/uncore_scaling.cpp.o" "gcc" "src/pcu/CMakeFiles/hsw_pcu.dir/uncore_scaling.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/hsw_util.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/hsw_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/hsw_power.dir/DependInfo.cmake"
  "/root/repo/build/src/msr/CMakeFiles/hsw_msr.dir/DependInfo.cmake"
  "/root/repo/build/src/cstates/CMakeFiles/hsw_cstates.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
