file(REMOVE_RECURSE
  "libhsw_pcu.a"
)
