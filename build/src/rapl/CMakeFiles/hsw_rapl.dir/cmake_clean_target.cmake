file(REMOVE_RECURSE
  "libhsw_rapl.a"
)
