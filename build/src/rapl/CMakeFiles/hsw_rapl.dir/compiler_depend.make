# Empty compiler generated dependencies file for hsw_rapl.
# This may be replaced when dependencies are built.
