file(REMOVE_RECURSE
  "CMakeFiles/hsw_rapl.dir/model.cpp.o"
  "CMakeFiles/hsw_rapl.dir/model.cpp.o.d"
  "CMakeFiles/hsw_rapl.dir/rapl.cpp.o"
  "CMakeFiles/hsw_rapl.dir/rapl.cpp.o.d"
  "libhsw_rapl.a"
  "libhsw_rapl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsw_rapl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
