# Empty dependencies file for hsw_perfmon.
# This may be replaced when dependencies are built.
