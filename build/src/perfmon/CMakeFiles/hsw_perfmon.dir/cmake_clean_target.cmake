file(REMOVE_RECURSE
  "libhsw_perfmon.a"
)
