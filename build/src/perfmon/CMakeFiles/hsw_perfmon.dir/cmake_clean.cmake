file(REMOVE_RECURSE
  "CMakeFiles/hsw_perfmon.dir/counters.cpp.o"
  "CMakeFiles/hsw_perfmon.dir/counters.cpp.o.d"
  "libhsw_perfmon.a"
  "libhsw_perfmon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsw_perfmon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
