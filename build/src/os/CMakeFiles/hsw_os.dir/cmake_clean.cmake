file(REMOVE_RECURSE
  "CMakeFiles/hsw_os.dir/cpufreq.cpp.o"
  "CMakeFiles/hsw_os.dir/cpufreq.cpp.o.d"
  "CMakeFiles/hsw_os.dir/idle_governor.cpp.o"
  "CMakeFiles/hsw_os.dir/idle_governor.cpp.o.d"
  "CMakeFiles/hsw_os.dir/perf_events.cpp.o"
  "CMakeFiles/hsw_os.dir/perf_events.cpp.o.d"
  "CMakeFiles/hsw_os.dir/sysfs.cpp.o"
  "CMakeFiles/hsw_os.dir/sysfs.cpp.o.d"
  "libhsw_os.a"
  "libhsw_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsw_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
