# Empty compiler generated dependencies file for hsw_os.
# This may be replaced when dependencies are built.
