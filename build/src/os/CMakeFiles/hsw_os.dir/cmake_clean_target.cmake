file(REMOVE_RECURSE
  "libhsw_os.a"
)
