file(REMOVE_RECURSE
  "CMakeFiles/hsw_cstates.dir/cstate.cpp.o"
  "CMakeFiles/hsw_cstates.dir/cstate.cpp.o.d"
  "CMakeFiles/hsw_cstates.dir/wake_latency.cpp.o"
  "CMakeFiles/hsw_cstates.dir/wake_latency.cpp.o.d"
  "libhsw_cstates.a"
  "libhsw_cstates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsw_cstates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
