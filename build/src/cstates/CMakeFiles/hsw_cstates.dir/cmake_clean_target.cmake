file(REMOVE_RECURSE
  "libhsw_cstates.a"
)
