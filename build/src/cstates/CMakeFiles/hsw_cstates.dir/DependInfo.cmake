
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cstates/cstate.cpp" "src/cstates/CMakeFiles/hsw_cstates.dir/cstate.cpp.o" "gcc" "src/cstates/CMakeFiles/hsw_cstates.dir/cstate.cpp.o.d"
  "/root/repo/src/cstates/wake_latency.cpp" "src/cstates/CMakeFiles/hsw_cstates.dir/wake_latency.cpp.o" "gcc" "src/cstates/CMakeFiles/hsw_cstates.dir/wake_latency.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/hsw_util.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/hsw_arch.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
