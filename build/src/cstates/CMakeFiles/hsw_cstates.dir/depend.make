# Empty dependencies file for hsw_cstates.
# This may be replaced when dependencies are built.
