
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/asm_emitter.cpp" "src/workloads/CMakeFiles/hsw_workloads.dir/asm_emitter.cpp.o" "gcc" "src/workloads/CMakeFiles/hsw_workloads.dir/asm_emitter.cpp.o.d"
  "/root/repo/src/workloads/firestarter.cpp" "src/workloads/CMakeFiles/hsw_workloads.dir/firestarter.cpp.o" "gcc" "src/workloads/CMakeFiles/hsw_workloads.dir/firestarter.cpp.o.d"
  "/root/repo/src/workloads/mixes.cpp" "src/workloads/CMakeFiles/hsw_workloads.dir/mixes.cpp.o" "gcc" "src/workloads/CMakeFiles/hsw_workloads.dir/mixes.cpp.o.d"
  "/root/repo/src/workloads/payload_workload.cpp" "src/workloads/CMakeFiles/hsw_workloads.dir/payload_workload.cpp.o" "gcc" "src/workloads/CMakeFiles/hsw_workloads.dir/payload_workload.cpp.o.d"
  "/root/repo/src/workloads/workload.cpp" "src/workloads/CMakeFiles/hsw_workloads.dir/workload.cpp.o" "gcc" "src/workloads/CMakeFiles/hsw_workloads.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/hsw_util.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/hsw_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/hsw_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
