# Empty compiler generated dependencies file for hsw_workloads.
# This may be replaced when dependencies are built.
