file(REMOVE_RECURSE
  "CMakeFiles/hsw_workloads.dir/asm_emitter.cpp.o"
  "CMakeFiles/hsw_workloads.dir/asm_emitter.cpp.o.d"
  "CMakeFiles/hsw_workloads.dir/firestarter.cpp.o"
  "CMakeFiles/hsw_workloads.dir/firestarter.cpp.o.d"
  "CMakeFiles/hsw_workloads.dir/mixes.cpp.o"
  "CMakeFiles/hsw_workloads.dir/mixes.cpp.o.d"
  "CMakeFiles/hsw_workloads.dir/payload_workload.cpp.o"
  "CMakeFiles/hsw_workloads.dir/payload_workload.cpp.o.d"
  "CMakeFiles/hsw_workloads.dir/workload.cpp.o"
  "CMakeFiles/hsw_workloads.dir/workload.cpp.o.d"
  "libhsw_workloads.a"
  "libhsw_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsw_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
