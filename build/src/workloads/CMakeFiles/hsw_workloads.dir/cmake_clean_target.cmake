file(REMOVE_RECURSE
  "libhsw_workloads.a"
)
