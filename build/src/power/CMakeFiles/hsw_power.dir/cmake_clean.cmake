file(REMOVE_RECURSE
  "CMakeFiles/hsw_power.dir/fivr.cpp.o"
  "CMakeFiles/hsw_power.dir/fivr.cpp.o.d"
  "CMakeFiles/hsw_power.dir/mbvr.cpp.o"
  "CMakeFiles/hsw_power.dir/mbvr.cpp.o.d"
  "CMakeFiles/hsw_power.dir/power_model.cpp.o"
  "CMakeFiles/hsw_power.dir/power_model.cpp.o.d"
  "CMakeFiles/hsw_power.dir/psu.cpp.o"
  "CMakeFiles/hsw_power.dir/psu.cpp.o.d"
  "CMakeFiles/hsw_power.dir/thermal.cpp.o"
  "CMakeFiles/hsw_power.dir/thermal.cpp.o.d"
  "CMakeFiles/hsw_power.dir/vf_curve.cpp.o"
  "CMakeFiles/hsw_power.dir/vf_curve.cpp.o.d"
  "libhsw_power.a"
  "libhsw_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsw_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
