file(REMOVE_RECURSE
  "libhsw_power.a"
)
