
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/power/fivr.cpp" "src/power/CMakeFiles/hsw_power.dir/fivr.cpp.o" "gcc" "src/power/CMakeFiles/hsw_power.dir/fivr.cpp.o.d"
  "/root/repo/src/power/mbvr.cpp" "src/power/CMakeFiles/hsw_power.dir/mbvr.cpp.o" "gcc" "src/power/CMakeFiles/hsw_power.dir/mbvr.cpp.o.d"
  "/root/repo/src/power/power_model.cpp" "src/power/CMakeFiles/hsw_power.dir/power_model.cpp.o" "gcc" "src/power/CMakeFiles/hsw_power.dir/power_model.cpp.o.d"
  "/root/repo/src/power/psu.cpp" "src/power/CMakeFiles/hsw_power.dir/psu.cpp.o" "gcc" "src/power/CMakeFiles/hsw_power.dir/psu.cpp.o.d"
  "/root/repo/src/power/thermal.cpp" "src/power/CMakeFiles/hsw_power.dir/thermal.cpp.o" "gcc" "src/power/CMakeFiles/hsw_power.dir/thermal.cpp.o.d"
  "/root/repo/src/power/vf_curve.cpp" "src/power/CMakeFiles/hsw_power.dir/vf_curve.cpp.o" "gcc" "src/power/CMakeFiles/hsw_power.dir/vf_curve.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/hsw_util.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/hsw_arch.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
