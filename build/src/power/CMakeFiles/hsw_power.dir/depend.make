# Empty dependencies file for hsw_power.
# This may be replaced when dependencies are built.
