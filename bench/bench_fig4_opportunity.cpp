// Reproduces Figure 4: the presumed p-state change mechanism -- a request
// latches until the next ~500 us PCU opportunity, then completes after the
// switching time. Also verifies the Section VI-A parallel observation:
// cores of one socket switch simultaneously, sockets independently.
#include "engine_bench_main.hpp"

int main() { return hsw::bench::engine_bench_main({"fig4"}); }
