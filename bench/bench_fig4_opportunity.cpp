// Reproduces Figure 4: the presumed p-state change mechanism -- a request
// latches until the next ~500 us PCU opportunity, then completes after the
// switching time. Also verifies the Section VI-A parallel observation:
// cores of one socket switch simultaneously, sockets independently.
#include <cstdio>

#include "survey/fig4_opportunity.hpp"

int main() {
    const auto result = hsw::survey::fig4();
    std::printf("%s\n", result.render().c_str());
    return 0;
}
