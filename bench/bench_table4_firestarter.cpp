// Reproduces Table IV: FIRESTARTER with different frequency settings. The
// shape to reproduce: at and above the 2.2 GHz setting both packages are
// TDP limited; lowering the setting frees budget that the PCU gives to the
// uncore; GIPS peaks around the 2.2-2.3 GHz settings (~1 % above turbo).
#include <cstdio>

#include "survey/table4_firestarter.hpp"
#include "util/table.hpp"

int main() {
    hsw::survey::FirestarterSweepConfig cfg;
    cfg.samples = 50;  // the paper's 50 one-second samples
    const auto result = hsw::survey::table4(cfg);
    std::printf("%s\n", result.render().c_str());

    const auto& turbo = result.turbo_row();
    const auto& best = result.best_by_gips();
    std::printf("turbo GIPS (P1): %.3f; best GIPS (P1): %.3f at %s GHz (+%.1f %%)\n",
                turbo.gips[1], best.gips[1],
                best.turbo ? "turbo" : hsw::util::Table::fmt(best.set_ghz, 1).c_str(),
                (best.gips[1] / turbo.gips[1] - 1.0) * 100.0);
    std::puts("paper: +1 % when reducing the setting from turbo to 2.3 GHz;\n"
              "uncore rises from ~2.35 (turbo) to 3.0 GHz (2.1 setting).");
    return 0;
}
