// Reproduces Table IV: FIRESTARTER with different frequency settings. The
// shape to reproduce: at and above the 2.2 GHz setting both packages are
// TDP limited; lowering the setting frees budget that the PCU gives to the
// uncore; GIPS peaks around the 2.2-2.3 GHz settings (~1 % above turbo).
#include "engine_bench_main.hpp"

int main() {
    return hsw::bench::engine_bench_main(
        {"table4"},
        "paper anchors: +1 % GIPS when reducing the setting from turbo to 2.3 GHz;\n"
        "uncore rises from ~2.35 (turbo) to 3.0 GHz (2.1 setting).");
}
