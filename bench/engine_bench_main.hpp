// Shared main() body for the figure/table reproduction benches.
//
// Every bench now routes through the experiment engine -- the same code
// path as tools/hsw_survey -- so the CSV it drops next to the binary is
// byte-identical to the hsw_survey artifact for that experiment. Benches
// run serially (jobs=1, no cache): they are the reference runs the
// parallel engine is validated against.
#pragma once

#include <cstdio>
#include <initializer_list>

#include "engine/survey_experiments.hpp"

namespace hsw::bench {

inline int engine_bench_main(std::initializer_list<const char*> names,
                             const char* anchors = nullptr) {
    const auto all = engine::survey_experiments(engine::SurveyTuning{});
    std::vector<engine::Experiment> subset;
    for (const char* name : names) {
        const engine::Experiment* e = engine::find_experiment(all, name);
        if (!e) {
            std::fprintf(stderr, "no experiment named '%s'\n", name);
            return 1;
        }
        subset.push_back(*e);
    }

    engine::RunOptions options;
    options.jobs = 1;
    options.cache_dir.reset();
    const engine::RunReport report = engine::run_experiments(subset, options);

    for (const auto& artifact : report.artifacts) {
        if (artifact.kind == engine::ArtifactKind::Render) {
            std::printf("%s\n", artifact.contents.c_str());
        }
    }
    engine::write_artifacts(report, ".", /*renders=*/false);
    for (const auto& artifact : report.artifacts) {
        if (artifact.kind == engine::ArtifactKind::Csv) {
            std::printf("data written to %s\n", artifact.filename.c_str());
        }
    }
    if (anchors) std::printf("%s\n", anchors);
    if (!report.ok()) {
        std::fputs(report.summary().c_str(), stderr);
        return 1;
    }
    return 0;
}

}  // namespace hsw::bench
