// Ablation: the opportunity-grid period. Figure 3's latency distribution
// is a direct function of the ~500 us PCU grid; this bench re-measures the
// random-request histogram on a legacy (immediate) part and reports how
// the distribution collapses: Haswell-EP spreads over [~21, ~524] us while
// Haswell-HE (no deferred grid) switches in tens of microseconds.
#include <cstdio>

#include "arch/sku.hpp"
#include "core/node.hpp"
#include "tools/ftalat.hpp"
#include "util/table.hpp"

using namespace hsw;

namespace {

tools::FtalatResult run(const arch::Sku& sku, unsigned samples) {
    core::NodeConfig cfg;
    cfg.sku = &sku;
    cfg.sockets = 2;
    core::Node node{cfg};
    tools::Ftalat ftalat{node};
    tools::FtalatConfig fc;
    fc.samples = samples;
    fc.delay_mode = tools::DelayMode::Random;
    fc.from_ratio = sku.min_frequency.ratio();
    fc.to_ratio = sku.min_frequency.ratio() + 1;
    return ftalat.measure(fc);
}

}  // namespace

int main() {
    // A Haswell-HE-like part: same silicon features, immediate p-states.
    static arch::Sku haswell_he = arch::xeon_e5_2680_v3();
    haswell_he.generation = arch::Generation::HaswellHE;

    util::Table t{"opportunity-grid ablation: random-request p-state latency"};
    t.set_header({"part", "min [us]", "median [us]", "max [us]"});
    const auto ep = run(arch::xeon_e5_2680_v3(), 400);
    t.add_row({"Haswell-EP (500 us grid)", util::Table::fmt(ep.min(), 0),
               util::Table::fmt(ep.median(), 0), util::Table::fmt(ep.max(), 0)});
    const auto he = run(haswell_he, 400);
    t.add_row({"Haswell-HE (immediate)", util::Table::fmt(he.min(), 0),
               util::Table::fmt(he.median(), 0), util::Table::fmt(he.max(), 0)});
    std::printf("%s\n", t.render().c_str());
    std::puts("paper Section VI-A: \"on previous processors (including Haswell-HE),\n"
              "p-state transition requests are always carried out immediately\".");
    return 0;
}
