// Reproduces Figure 7: relative L3 and DRAM read bandwidth at maximum
// concurrency, normalized to base frequency, for Westmere-EP,
// Sandy Bridge-EP and Haswell-EP. Shape anchors: HSW DRAM flat (frequency
// independent), SNB DRAM ~proportional to core clock, Westmere flat;
// HSW L3 strongly correlated with core frequency.
#include <cstdio>

#include "survey/fig78_bandwidth.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

int main() {
    const auto result = hsw::survey::fig7();
    std::printf("%s\n", result.render().c_str());

    hsw::util::CsvWriter csv{"fig7_relative_bandwidth.csv"};
    csv.write_header({"generation", "set_ghz", "relative_l3", "relative_dram"});
    for (const auto& s : result.series) {
        for (const auto& p : s.points) {
            csv.write_row(std::vector<std::string>{
                std::string{hsw::arch::traits(s.generation).name},
                hsw::util::Table::fmt(p.set_ghz, 2),
                hsw::util::Table::fmt(p.relative_l3, 4),
                hsw::util::Table::fmt(p.relative_dram, 4)});
        }
    }

    const auto& hswep = result.find(hsw::arch::Generation::HaswellEP);
    const auto& snb = result.find(hsw::arch::Generation::SandyBridgeEP);
    std::printf("shape check at the lowest p-state:\n"
                "  HSW DRAM relative: %.3f (paper: ~1.0, frequency independent)\n"
                "  SNB DRAM relative: %.3f (paper: strongly reduced)\n"
                "  HSW L3 relative:   %.3f (paper: ~f/f_base)\n",
                hswep.points.front().relative_dram, snb.points.front().relative_dram,
                hswep.points.front().relative_l3);
    return 0;
}
