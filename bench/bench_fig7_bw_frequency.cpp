// Reproduces Figure 7: relative L3 and DRAM read bandwidth at maximum
// concurrency, normalized to base frequency, for Westmere-EP,
// Sandy Bridge-EP and Haswell-EP. Shape anchors: HSW DRAM flat (frequency
// independent), SNB DRAM ~proportional to core clock, Westmere flat;
// HSW L3 strongly correlated with core frequency.
#include "engine_bench_main.hpp"

int main() {
    return hsw::bench::engine_bench_main(
        {"fig7"},
        "paper anchors at the lowest p-state: HSW DRAM relative ~1.0 (frequency\n"
        "independent), SNB DRAM strongly reduced, HSW L3 ~f/f_base.");
}
