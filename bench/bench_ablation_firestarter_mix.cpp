// Ablation: is the FIRESTARTER group mix actually power-maximal?
//
// Section VIII motivates the 27.8/62.7/7.1/0.8/1.6 % reg/L1/L2/L3/mem mix
// as the one that keeps execution units, decoders and data paths busy at
// once. This bench derives workload profiles *from the payload structure*
// (workloads::workload_from_payload) for a family of mixes and measures
// the node power each one sustains under the TDP-limited PCU -- the
// paper's mix should sit at or near the top.
#include <cstdio>

#include "core/node.hpp"
#include "util/table.hpp"
#include "workloads/payload_workload.hpp"

using namespace hsw;
using util::Time;

namespace {

double measure_ac_watts(const workloads::Workload& w) {
    core::Node node;
    node.set_all_workloads(&w, 2);
    node.request_turbo_all();
    node.run_for(Time::ms(100));
    const Time t0 = node.now();
    node.run_for(Time::sec(2));
    return node.meter().average(t0, node.now()).as_watts();
}

}  // namespace

int main() {
    struct Mix {
        const char* label;
        std::array<double, 5> ratios;  // reg, L1, L2, L3, mem
    };
    const Mix mixes[] = {
        {"paper mix (27.8/62.7/7.1/0.8/1.6)", {0.278, 0.627, 0.071, 0.008, 0.016}},
        {"registers only", {1.0, 0.0, 0.0, 0.0, 0.0}},
        {"L1 only", {0.0, 1.0, 0.0, 0.0, 0.0}},
        {"no memory levels (50/50 reg+L1)", {0.5, 0.5, 0.0, 0.0, 0.0}},
        {"L2 heavy", {0.2, 0.3, 0.5, 0.0, 0.0}},
        {"L3 heavy", {0.2, 0.3, 0.0, 0.5, 0.0}},
        {"DRAM heavy", {0.2, 0.3, 0.0, 0.0, 0.5}},
        {"uniform", {0.2, 0.2, 0.2, 0.2, 0.2}},
    };

    util::Table t{"FIRESTARTER mix ablation: node AC power under each payload"};
    t.set_header({"mix", "est. IPC (HT)", "AC power [W]"});
    double paper_watts = 0.0;
    double best_other = 0.0;
    for (const auto& mix : mixes) {
        const auto payload = workloads::payload_with_ratios(mix.ratios);
        const workloads::Workload w =
            workloads::workload_from_payload(payload, mix.label);
        const double watts = measure_ac_watts(w);
        if (&mix == &mixes[0]) {
            paper_watts = watts;
        } else {
            best_other = std::max(best_other, watts);
        }
        t.add_row({mix.label, util::Table::fmt(payload.estimated_ipc(true), 2),
                   util::Table::fmt(watts, 1)});
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("paper mix: %.1f W; best alternative: %.1f W (%+.1f W)\n",
                paper_watts, best_other, best_other - paper_watts);
    std::puts("Expected: the paper's mix is at or near the maximum -- pure-register\n"
              "payloads underuse the data paths, memory-heavy payloads stall the\n"
              "execution units (Section VIII / [30]).");
    return 0;
}
