// google-benchmark microbenchmarks of the simulator itself: event-queue
// throughput, node step rate, PCU evaluation cost, and the full-sweep
// harness primitives. These bound how large an experiment the harness can
// sweep per wall-clock second.
#include <benchmark/benchmark.h>

#include "core/node.hpp"
#include "pcu/pcu.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "workloads/firestarter.hpp"
#include "workloads/mixes.hpp"

using namespace hsw;
using util::Time;

namespace {

void BM_EventQueueSchedule(benchmark::State& state) {
    sim::Simulator sim;
    std::int64_t t = 1;
    for (auto _ : state) {
        sim.schedule_at(Time::ns(t++), [] {});
        if (t % 1024 == 0) sim.run_until(Time::ns(t));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventQueueSchedule);

void BM_EventQueueChurn(benchmark::State& state) {
    for (auto _ : state) {
        sim::Simulator sim;
        for (int i = 0; i < 1000; ++i) {
            sim.schedule_at(Time::us(i), [] {});
        }
        sim.run_all();
        benchmark::DoNotOptimize(sim.processed_events());
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueChurn);

void BM_PcuEvaluate(benchmark::State& state) {
    pcu::PcuController pcu{arch::xeon_e5_2680_v3(), 0};
    pcu::PcuInputs in;
    in.cores.resize(12);
    for (auto& c : in.cores) {
        c.state = cstates::CState::C0;
        c.requested_ratio = 26;
        c.avx_fraction = 0.95;
        c.stall_fraction = 0.06;
        c.cdyn_utilization = 1.0;
    }
    in.uncore_traffic = 1.0;
    in.current_intensity = 0.85;
    in.fastest_system_core = util::Frequency::ghz(2.5);
    std::int64_t t = 0;
    for (auto _ : state) {
        auto out = pcu.evaluate(in, Time::us(t += 500));
        benchmark::DoNotOptimize(out);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PcuEvaluate);

void BM_NodeSimulatedSecond(benchmark::State& state) {
    core::Node node;
    node.set_all_workloads(&workloads::firestarter(), 2);
    node.request_turbo_all();
    node.run_for(Time::ms(50));
    for (auto _ : state) {
        node.run_for(Time::sec(1));
        benchmark::DoNotOptimize(node.now());
    }
    state.SetLabel("simulated seconds per iteration: 1");
}
BENCHMARK(BM_NodeSimulatedSecond);

void BM_FirestarterPayloadGen(benchmark::State& state) {
    for (auto _ : state) {
        workloads::FirestarterPayload payload{560};
        benchmark::DoNotOptimize(payload.analyze());
    }
}
BENCHMARK(BM_FirestarterPayloadGen);

void BM_RaplWindowRead(benchmark::State& state) {
    core::Node node;
    node.set_all_workloads(&workloads::compute(), 1);
    node.run_for(Time::ms(50));
    for (auto _ : state) {
        benchmark::DoNotOptimize(node.rapl_power_over(Time::ms(100)));
    }
}
BENCHMARK(BM_RaplWindowRead);

}  // namespace

BENCHMARK_MAIN();
