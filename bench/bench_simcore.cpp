// Microbenchmarks of the discrete-event simulation core.
//
// Each scenario stresses one shape of the event engine the survey leans on:
//
//   oneshot_churn    schedule N one-shots, drain, repeat -- raw queue
//                    throughput including slab/heap growth
//   pending_density  a self-sustaining ring of H in-flight events -- how
//                    dispatch cost scales with heap depth
//   periodic_heavy   P free-running periodic tasks (the RAPL-refresh /
//                    meter-sampling shape) -- the dominant event mix of a
//                    Node simulation
//   cancel_churn     schedule-then-cancel half the events -- cancellation
//                    cost and bookkeeping hygiene
//   node_second      a full dual-socket Node simulating wall-clock time --
//                    the end-to-end number the survey's cold path sees
//
// Per-scenario output: events/sec plus p50/p99 of per-event dispatch time
// sampled over fixed-size chunks. Results go to stderr (human) and, with
// --json <path>, to a BenchJson file (machine). CI tracks the committed
// BENCH_simcore.json and fails on >25 % events/sec regression of the
// periodic-heavy sweep.
//
//   bench_simcore [--quick] [--telemetry] [--json <path>]
//
// --telemetry turns the obs metrics registry and span tracing on for the
// whole run, measuring the instrumented-but-enabled configuration; CI runs
// the periodic-heavy gate both ways to keep the telemetry tax honest.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/node.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/simulator.hpp"
#include "util/bench_json.hpp"
#include "util/stats.hpp"
#include "workloads/mixes.hpp"

using namespace hsw;
using util::Time;

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
    return std::chrono::duration<double, std::milli>{Clock::now() - t0}.count();
}

/// p50/p99 of per-event cost across chunks (each chunk = `events_per_chunk`
/// dispatches timed together; single-event timing would measure the clock).
util::QuantileSummary chunk_quantiles(const std::vector<double>& chunk_ms,
                                      double events_per_chunk) {
    if (chunk_ms.empty() || events_per_chunk <= 0) return {};
    std::vector<double> per_event_ns;
    per_event_ns.reserve(chunk_ms.size());
    for (const double ms : chunk_ms) {
        per_event_ns.push_back(ms * 1e6 / events_per_chunk);
    }
    return util::quantile_summary(per_event_ns);
}

void report(util::BenchJson& json, const char* scenario, unsigned size,
            std::uint64_t events, double wall_ms,
            const util::QuantileSummary& chunks) {
    const double events_per_sec = wall_ms > 0 ? static_cast<double>(events) / (wall_ms * 1e-3) : 0.0;
    json.add_run()
        .set("scenario", scenario)
        .set("size", size)
        .set("events", events)
        .set("wall_ms", wall_ms)
        .set("events_per_sec", events_per_sec)
        .set("p50_ns_per_event", chunks.p50)
        .set("p99_ns_per_event", chunks.p99);
    std::fprintf(stderr,
                 "%-16s size=%-6u %10llu events %9.1f ms %12.0f ev/s  "
                 "p50 %6.1f ns  p99 %6.1f ns\n",
                 scenario, size, static_cast<unsigned long long>(events), wall_ms,
                 events_per_sec, chunks.p50, chunks.p99);
}

void bench_oneshot_churn(util::BenchJson& json, unsigned batch, unsigned repeats) {
    sim::Simulator sim;
    std::uint64_t fired = 0;
    std::vector<double> chunk_ms;
    chunk_ms.reserve(repeats);
    const auto t0 = Clock::now();
    for (unsigned r = 0; r < repeats; ++r) {
        const auto c0 = Clock::now();
        const Time base = sim.now();
        for (unsigned i = 0; i < batch; ++i) {
            sim.schedule_at(base + Time::ns(i + 1), [&fired] { ++fired; });
        }
        sim.run_until(base + Time::ns(batch + 1));
        chunk_ms.push_back(ms_since(c0));
    }
    report(json, "oneshot_churn", batch, fired, ms_since(t0),
           chunk_quantiles(chunk_ms, batch));
}

void bench_pending_density(util::BenchJson& json, unsigned pending, unsigned rounds) {
    sim::Simulator sim;
    std::uint64_t fired = 0;
    // A ring of `pending` events; each firing reschedules itself one full
    // ring period ahead, so heap occupancy stays constant at `pending`.
    struct Ring {
        sim::Simulator* sim;
        std::uint64_t* fired;
        std::int64_t step_ns;
        void operator()() const {
            ++*fired;
            auto self = *this;
            sim->schedule_after(Time::ns(step_ns), self);
        }
    };
    for (unsigned i = 0; i < pending; ++i) {
        sim.schedule_at(Time::ns(i + 1), Ring{&sim, &fired, static_cast<std::int64_t>(pending)});
    }
    const std::uint64_t target = static_cast<std::uint64_t>(pending) * rounds;
    std::vector<double> chunk_ms;
    chunk_ms.reserve(rounds);
    const auto t0 = Clock::now();
    for (unsigned r = 0; r < rounds; ++r) {
        const auto c0 = Clock::now();
        sim.run_until(sim.now() + Time::ns(pending));
        chunk_ms.push_back(ms_since(c0));
    }
    const double wall = ms_since(t0);
    (void)target;
    report(json, "pending_density", pending, fired, wall,
           chunk_quantiles(chunk_ms, pending));
}

void bench_periodic_heavy(util::BenchJson& json, unsigned tasks, unsigned slices,
                          Time slice) {
    sim::Simulator sim;
    std::uint64_t fired = 0;
    for (unsigned i = 0; i < tasks; ++i) {
        // Staggered phases and co-prime-ish periods so fires spread out
        // instead of landing on one tick -- the Node's RAPL/meter shape.
        const Time period = Time::us(7) + Time::ns(13 * (i % 97));
        sim.schedule_periodic(Time::ns(i + 1), period, [&fired](Time) { ++fired; });
    }
    std::vector<double> chunk_ms;
    chunk_ms.reserve(slices);
    std::vector<std::uint64_t> chunk_events;
    chunk_events.reserve(slices);
    const auto t0 = Clock::now();
    std::uint64_t last = 0;
    for (unsigned s = 0; s < slices; ++s) {
        const auto c0 = Clock::now();
        sim.run_until(sim.now() + slice);
        chunk_ms.push_back(ms_since(c0));
        chunk_events.push_back(fired - last);
        last = fired;
    }
    const double wall = ms_since(t0);
    // Events per chunk is near-constant; use the mean for the quantiles.
    const double mean_events =
        chunk_events.empty() ? 0.0 : static_cast<double>(fired) / static_cast<double>(chunk_events.size());
    report(json, "periodic_heavy", tasks, fired, wall,
           chunk_quantiles(chunk_ms, mean_events));
}

void bench_cancel_churn(util::BenchJson& json, unsigned batch, unsigned repeats) {
    sim::Simulator sim;
    std::uint64_t fired = 0;
    std::vector<sim::EventId> ids;
    ids.reserve(batch);
    const auto t0 = Clock::now();
    std::uint64_t scheduled = 0;
    for (unsigned r = 0; r < repeats; ++r) {
        const Time base = sim.now();
        ids.clear();
        for (unsigned i = 0; i < batch; ++i) {
            ids.push_back(sim.schedule_at(base + Time::ns(i + 1), [&fired] { ++fired; }));
        }
        scheduled += batch;
        for (unsigned i = 0; i < batch; i += 2) sim.cancel(ids[i]);
        sim.run_until(base + Time::ns(batch + 1));
    }
    report(json, "cancel_churn", batch, scheduled, ms_since(t0), util::QuantileSummary{});
}

void bench_node_second(util::BenchJson& json, Time simulated) {
    // Best of three: a full Node window is short enough that one descheduled
    // tick skews the reading, and the interesting number is the engine's
    // capability, not the host's worst moment.
    double best_wall = 0.0;
    std::uint64_t events = 0;
    for (int attempt = 0; attempt < 3; ++attempt) {
        core::Node node;
        node.set_all_workloads(&workloads::firestarter(), 2);
        node.request_turbo_all();
        node.run_for(Time::ms(50));  // settle p-states before measuring
        const std::uint64_t before = node.simulator().processed_events();
        const auto t0 = Clock::now();
        node.run_for(simulated);
        const double wall = ms_since(t0);
        events = node.simulator().processed_events() - before;
        if (attempt == 0 || wall < best_wall) best_wall = wall;
    }
    report(json, "node_second", static_cast<unsigned>(simulated.as_ms()), events,
           best_wall, util::QuantileSummary{});
}

}  // namespace

int main(int argc, char** argv) {
    bool quick = false;
    bool telemetry = false;
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            quick = true;
        } else if (std::strcmp(argv[i], "--telemetry") == 0) {
            telemetry = true;
        } else if (util::parse_json_flag(argc, argv, i, json_path)) {
            // handled
        } else {
            std::fprintf(stderr, "usage: %s [--quick] [--telemetry] [--json <path>]\n",
                         argv[0]);
            return 2;
        }
    }

    if (telemetry) {
        obs::set_metrics_enabled(true);
        obs::trace::enable();
    }

    util::BenchJson json{"simcore"};
    json.meta().set("quick", quick).set("telemetry", telemetry);

    const unsigned scale = quick ? 1 : 8;

    for (const unsigned batch : {1024u, 16384u}) {
        bench_oneshot_churn(json, batch, 24 * scale);
    }
    for (const unsigned pending : {256u, 4096u, 32768u}) {
        bench_pending_density(json, pending, quick ? 12 : 48);
    }
    // periodic_heavy keeps its full shape even under --quick: it is the
    // CI-gated scenario, and the committed BENCH_simcore.json baseline is
    // full-mode, so the comparison must be apples-to-apples. It only costs
    // ~0.4 s.
    for (const unsigned tasks : {64u, 1024u}) {
        bench_periodic_heavy(json, tasks, 32, Time::us(2000));
    }
    bench_cancel_churn(json, 8192, 12 * scale);
    bench_node_second(json, quick ? Time::ms(200) : Time::sec(1));

    std::fputs(json.to_string().c_str(), stdout);
    if (!json_path.empty() && !json.write(json_path)) return 1;
    return 0;
}
