// Reproduces Figure 5: C3 wake-up latencies for the local, remote-active
// and remote-idle (package C3) scenarios vs core frequency, Haswell-EP
// with the Sandy Bridge-EP comparison series. Anchors: ~independent of
// frequency, +1.5 us above 1.5 GHz, package C3 adds 2-4 us, all below the
// 33 us ACPI claim.
#include "engine_bench_main.hpp"

int main() { return hsw::bench::engine_bench_main({"fig5"}); }
