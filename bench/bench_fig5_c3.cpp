// Reproduces Figure 5: C3 wake-up latencies for the local, remote-active
// and remote-idle (package C3) scenarios vs core frequency, Haswell-EP
// with the Sandy Bridge-EP comparison series. Anchors: ~independent of
// frequency, +1.5 us above 1.5 GHz, package C3 adds 2-4 us, all below the
// 33 us ACPI claim.
#include <cstdio>

#include "survey/fig56_cstates.hpp"
#include "survey/fig56_csv.hpp"

int main() {
    const auto result = hsw::survey::fig56(hsw::cstates::CState::C3);
    std::printf("%s\n", result.render().c_str());
    hsw::survey::dump_fig56_csv(result, "fig5_c3_latencies.csv");
    std::puts("series written to fig5_c3_latencies.csv");
    return 0;
}
