// Measures full-survey wall time through the experiment engine at
// jobs in {1, 2, 4, 8}, cold cache vs warm cache, and emits the numbers
// through the shared BenchJson reporter (stdout + bench_engine_scaling.json,
// or --json <path>). The interesting ratios: cold(1)/cold(8) is the
// scheduler's parallel speedup (bounded by the longest unsplittable job,
// Table IV); warm/cold is the cache win (warm reruns only verify content
// hashes, target < 10 % of cold).
//
//   bench_engine_scaling [--quick] [--max-jobs N] [--json PATH]
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "engine/survey_experiments.hpp"
#include "util/bench_json.hpp"

using namespace hsw;

namespace {

struct RunNumbers {
    double wall_ms = 0.0;
    std::uint64_t sim_events = 0;
    double events_per_sec = 0.0;
};

RunNumbers run_once(const std::vector<engine::Experiment>& experiments, unsigned jobs,
                    const std::filesystem::path& cache_dir) {
    engine::RunOptions options;
    options.jobs = jobs;
    options.cache_dir = cache_dir;
    const engine::RunReport report = engine::run_experiments(experiments, options);
    if (!report.ok()) {
        std::fprintf(stderr, "engine run failed:\n%s", report.summary().c_str());
        std::exit(1);
    }
    RunNumbers n;
    n.wall_ms = report.wall_ms;
    double body_ms = 0.0;
    for (const auto& j : report.jobs) {
        n.sim_events += j.sim_events;
        if (!j.cache_hit) body_ms += j.wall_ms;
    }
    if (body_ms > 0.0) {
        n.events_per_sec = static_cast<double>(n.sim_events) / (body_ms / 1000.0);
    }
    return n;
}

}  // namespace

int main(int argc, char** argv) {
    bool quick = false;
    unsigned max_jobs = 8;
    std::string json_path = "bench_engine_scaling.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            quick = true;
        } else if (std::strcmp(argv[i], "--max-jobs") == 0 && i + 1 < argc) {
            max_jobs = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
        } else if (util::parse_json_flag(argc, argv, i, json_path)) {
            // consumed "--json <path>"
        } else {
            std::fprintf(stderr, "usage: %s [--quick] [--max-jobs N] [--json PATH]\n",
                         argv[0]);
            return 2;
        }
    }

    const engine::SurveyTuning tuning =
        quick ? engine::SurveyTuning::quick() : engine::SurveyTuning{};
    const auto experiments = engine::survey_experiments(tuning);

    util::BenchJson out{"bench_engine_scaling"};
    out.meta().set("quick", quick).set("max_jobs", max_jobs);
    for (unsigned jobs = 1; jobs <= max_jobs; jobs *= 2) {
        const std::filesystem::path cache_dir =
            ".hsw-scaling-cache-jobs" + std::to_string(jobs);
        std::filesystem::remove_all(cache_dir);
        const RunNumbers cold = run_once(experiments, jobs, cache_dir);
        const RunNumbers warm = run_once(experiments, jobs, cache_dir);
        std::filesystem::remove_all(cache_dir);

        out.add_run()
            .set("jobs", jobs)
            .set("cold_ms", cold.wall_ms)
            .set("warm_ms", warm.wall_ms)
            .set("warm_over_cold", cold.wall_ms > 0 ? warm.wall_ms / cold.wall_ms : 0.0)
            .set("sim_events", cold.sim_events)
            .set("events_per_sec", cold.events_per_sec);
        std::fprintf(stderr, "jobs=%u cold=%.0f ms warm=%.0f ms %.2fM events/sec\n",
                     jobs, cold.wall_ms, warm.wall_ms, cold.events_per_sec / 1e6);
    }

    const std::string json = out.to_string();
    std::fputs(json.c_str(), stdout);
    if (!out.write(json_path)) return 1;
    return 0;
}
