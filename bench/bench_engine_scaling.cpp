// Measures full-survey wall time through the experiment engine at
// jobs in {1, 2, 4, 8}, cold cache vs warm cache, and emits the numbers
// as JSON (stdout + bench_engine_scaling.json). The interesting ratios:
// cold(1)/cold(8) is the scheduler's parallel speedup (bounded by the
// longest unsplittable job, Table IV); warm/cold is the cache win (warm
// reruns only verify content hashes, target < 10 % of cold).
//
//   bench_engine_scaling [--quick] [--max-jobs N]
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "engine/survey_experiments.hpp"

using namespace hsw;

namespace {

double run_once(const std::vector<engine::Experiment>& experiments, unsigned jobs,
                const std::filesystem::path& cache_dir) {
    engine::RunOptions options;
    options.jobs = jobs;
    options.cache_dir = cache_dir;
    const engine::RunReport report = engine::run_experiments(experiments, options);
    if (!report.ok()) {
        std::fprintf(stderr, "engine run failed:\n%s", report.summary().c_str());
        std::exit(1);
    }
    return report.wall_ms;
}

}  // namespace

int main(int argc, char** argv) {
    bool quick = false;
    unsigned max_jobs = 8;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            quick = true;
        } else if (std::strcmp(argv[i], "--max-jobs") == 0 && i + 1 < argc) {
            max_jobs = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
        } else {
            std::fprintf(stderr, "usage: %s [--quick] [--max-jobs N]\n", argv[0]);
            return 2;
        }
    }

    const engine::SurveyTuning tuning =
        quick ? engine::SurveyTuning::quick() : engine::SurveyTuning{};
    const auto experiments = engine::survey_experiments(tuning);

    std::string json = "{\n  \"quick\": ";
    json += quick ? "true" : "false";
    json += ",\n  \"runs\": [\n";
    bool first = true;
    for (unsigned jobs = 1; jobs <= max_jobs; jobs *= 2) {
        const std::filesystem::path cache_dir =
            ".hsw-scaling-cache-jobs" + std::to_string(jobs);
        std::filesystem::remove_all(cache_dir);
        const double cold_ms = run_once(experiments, jobs, cache_dir);
        const double warm_ms = run_once(experiments, jobs, cache_dir);
        std::filesystem::remove_all(cache_dir);

        char line[160];
        std::snprintf(line, sizeof line,
                      "    %s{\"jobs\": %u, \"cold_ms\": %.1f, \"warm_ms\": %.1f, "
                      "\"warm_over_cold\": %.3f}",
                      first ? "" : ",", jobs, cold_ms, warm_ms,
                      cold_ms > 0 ? warm_ms / cold_ms : 0.0);
        json += line;
        json += '\n';
        first = false;
        std::fprintf(stderr, "jobs=%u cold=%.0f ms warm=%.0f ms\n", jobs, cold_ms,
                     warm_ms);
    }
    json += "  ]\n}\n";

    std::fputs(json.c_str(), stdout);
    std::FILE* f = std::fopen("bench_engine_scaling.json", "w");
    if (f) {
        std::fputs(json.c_str(), f);
        std::fclose(f);
    }
    return 0;
}
