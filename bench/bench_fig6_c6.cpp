// Reproduces Figure 6: C6 wake-up latencies. Anchors: strongly frequency
// dependent (2-8 us over C3, more at low clocks), package C6 adds 8 us
// over package C3, all far below the 133 us ACPI claim.
#include "engine_bench_main.hpp"

int main() { return hsw::bench::engine_bench_main({"fig6"}); }
