// Reproduces Figure 6: C6 wake-up latencies. Anchors: strongly frequency
// dependent (2-8 us over C3, more at low clocks), package C6 adds 8 us
// over package C3, all far below the 133 us ACPI claim.
#include <cstdio>

#include "survey/fig56_cstates.hpp"
#include "survey/fig56_csv.hpp"

int main() {
    const auto result = hsw::survey::fig56(hsw::cstates::CState::C6);
    std::printf("%s\n", result.render().c_str());
    hsw::survey::dump_fig56_csv(result, "fig6_c6_latencies.csv");
    std::puts("series written to fig6_c6_latencies.csv");
    return 0;
}
