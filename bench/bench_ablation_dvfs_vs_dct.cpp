// Ablation: DVFS vs DCT in dynamic scenarios -- the paper's concluding
// claim (Section IX): "this can indicate a reduced effectiveness for DVFS
// on Haswell-EP in very dynamic scenarios, while DCT becomes a more viable
// approach for energy efficiency optimizations."
//
// A workload alternates between a compute phase (wants all cores at full
// clock) and a memory phase (frequency/concurrency barely matter). Three
// strategies react at each phase boundary:
//   static -- do nothing (all cores, nominal clock),
//   DVFS   -- request 1.2 GHz for memory phases, nominal for compute; the
//             request only takes effect at the next ~500 us PCU opportunity
//             plus switching time (Fig. 3),
//   DCT    -- park half the cores in C6 for memory phases and wake them for
//             compute; C6 transitions cost ~20 us (Fig. 6).
// At short phase periods DVFS's savings evaporate (the clock is wrong for
// most of each phase) while DCT keeps working.
#include <cstdio>

#include "core/node.hpp"
#include "msr/addresses.hpp"
#include "util/table.hpp"
#include "workloads/mixes.hpp"

using namespace hsw;
using util::Frequency;
using util::Time;

namespace {

enum class Strategy { Static, Dvfs, Dct };

struct Outcome {
    double gips = 0.0;
    double joules_per_ginstr = 0.0;
};

Outcome run(Strategy strategy, Time phase_period, Time total) {
    core::Node node;
    const unsigned per_socket = node.cores_per_socket();
    node.set_all_workloads(&workloads::compute(), 1);
    node.set_pstate_all(node.sku().nominal_frequency);
    node.run_for(Time::ms(20));

    auto instructions = [&] {
        double sum = 0.0;
        for (unsigned s = 0; s < node.socket_count(); ++s) {
            sum += static_cast<double>(
                node.msrs().read(node.cpu_id(s, 0), msr::IA32_FIXED_CTR0));
        }
        return sum;  // sampled core per socket; cores run identically
    };
    auto energy = [&] {
        double sum = 0.0;
        for (unsigned s = 0; s < node.socket_count(); ++s) {
            sum += node.socket(s).rapl().true_pkg_energy().as_joules() +
                   node.socket(s).rapl().true_dram_energy().as_joules();
        }
        return sum;
    };

    const double i0 = instructions();
    const double e0 = energy();
    const Time start = node.now();

    bool memory_phase = false;
    while (node.now() - start < total) {
        node.run_for(phase_period);
        memory_phase = !memory_phase;
        const workloads::Workload* phase_wl =
            memory_phase ? &workloads::memory_stream() : &workloads::compute();

        switch (strategy) {
            case Strategy::Static:
                node.set_all_workloads(phase_wl, 1);
                break;
            case Strategy::Dvfs:
                node.set_all_workloads(phase_wl, 1);
                node.set_pstate_all(memory_phase ? node.sku().min_frequency
                                                 : node.sku().nominal_frequency);
                break;
            case Strategy::Dct:
                for (unsigned s = 0; s < node.socket_count(); ++s) {
                    for (unsigned c = 0; c < per_socket; ++c) {
                        const unsigned cpu = node.cpu_id(s, c);
                        const bool parked_half = c >= per_socket / 2;
                        if (memory_phase && parked_half) {
                            node.park(cpu, cstates::CState::C6);
                        } else {
                            // Waking through the IPI path costs the C6
                            // latency; set_workload after wake-up.
                            node.set_workload(cpu, phase_wl, 1);
                        }
                    }
                }
                break;
        }
    }

    const double seconds = (node.now() - start).as_seconds();
    Outcome o;
    const double ginstr = (instructions() - i0) * 1e-9;
    o.gips = ginstr / seconds;
    o.joules_per_ginstr = ginstr > 0.0 ? (energy() - e0) / ginstr : 0.0;
    return o;
}

}  // namespace

int main() {
    const Time total = Time::ms(400);
    util::Table t{
        "DVFS vs DCT under phase-alternating load (compute <-> memory)\n"
        "energy in J per 10^9 instructions of the sampled cores (lower = better)"};
    t.set_header({"phase period [ms]", "static J/Gi", "DVFS J/Gi", "DCT J/Gi",
                  "DVFS saving", "DCT saving"});

    double dvfs_saving_fast = 0.0;
    double dct_saving_fast = 0.0;
    double dvfs_saving_slow = 0.0;
    bool first = true;
    for (double period_ms : {1.0, 2.0, 5.0, 20.0, 100.0}) {
        const Time period = Time::from_us(period_ms * 1000.0);
        const Outcome s = run(Strategy::Static, period, total);
        const Outcome v = run(Strategy::Dvfs, period, total);
        const Outcome d = run(Strategy::Dct, period, total);
        const double dvfs_saving = 1.0 - v.joules_per_ginstr / s.joules_per_ginstr;
        const double dct_saving = 1.0 - d.joules_per_ginstr / s.joules_per_ginstr;
        if (first) {
            dvfs_saving_fast = dvfs_saving;
            dct_saving_fast = dct_saving;
            first = false;
        }
        dvfs_saving_slow = dvfs_saving;
        t.add_row({util::Table::fmt(period_ms, 0),
                   util::Table::fmt(s.joules_per_ginstr, 2),
                   util::Table::fmt(v.joules_per_ginstr, 2),
                   util::Table::fmt(d.joules_per_ginstr, 2),
                   util::Table::fmt(dvfs_saving * 100.0, 1) + " %",
                   util::Table::fmt(dct_saving * 100.0, 1) + " %"});
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("at 1 ms phases: DVFS saves %.1f %%, DCT saves %.1f %%;\n"
                "at 100 ms phases DVFS recovers to %.1f %%.\n",
                dvfs_saving_fast * 100.0, dct_saving_fast * 100.0,
                dvfs_saving_slow * 100.0);
    std::puts("paper Section IX: dynamic scenarios reduce DVFS effectiveness on\n"
              "Haswell-EP (p-state changes wait for the ~500 us grid) while DCT\n"
              "(fast C6 transitions) remains viable.");
    return 0;
}
