// Multi-shard fleet rig: throughput through a Router over 1/4/8
// in-process SurveyService shards (LocalTransport, so syscall cost does
// not drown the effect being measured), emitted through BenchJson
// (stdout + bench_fleet_throughput.json, or --json <path>).
//
// What sharding buys a cache-fronted fleet on one box is *aggregate
// hot-cache capacity*: every shard runs the same fixed per-shard budget
// (1/5 of the working set here), so one shard can keep at most ~20% of
// the set memory-resident while eight shards -- each owning only its
// consistent-hash partition -- hold all of it. The scenarios:
//
//   hot   a prewarmed working set accessed uniformly at random. Requests
//         that hit a shard's hot cache cost ~6 us; the remainder fall to
//         that shard's disk cache (read + SHA-256 verify, ~45 us). As the
//         shard count grows, each shard's partition shrinks into its
//         budget and the fleet's hot-hit ratio -- and throughput -- climbs.
//   warm  every request is a brand-new spec, so every request computes.
//         Compute shares one machine's cores regardless of shard count;
//         this leg documents the honest ceiling (expect ~flat scaling on
//         a small box) rather than letting the hot numbers imply fleet
//         magic.
//
// The rig also asserts correctness while it measures:
//
//   * byte identity: every routed payload must equal the payload a
//     standalone (unsharded) service computes for the same spec;
//   * failover under load: a 4-shard hot run kills one shard's transport
//     mid-run and requires zero client-visible failures.
//
//   bench_fleet_throughput [--requests N] [--clients N] [--specs N] [--json PATH]
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "router/local_transport.hpp"
#include "router/router.hpp"
#include "service/service.hpp"
#include "util/bench_json.hpp"
#include "util/stats.hpp"

using namespace hsw;

namespace {

service::protocol::Request make_request(std::uint64_t seed) {
    service::protocol::Request req;
    req.verb = service::protocol::Verb::Query;
    req.experiment = "fig3";
    req.quick = true;
    req.seed = seed;
    return req;
}

/// Deterministic uniform draw for request i (splitmix64 finalizer), so
/// the access pattern is random -- LRU's stationary regime -- instead of
/// a cyclic scan, LRU's pathological one.
std::uint64_t draw(std::uint64_t i) {
    std::uint64_t z = i + 0x9E3779B97F4A7C15ull;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

/// One router in front of `shard_count` in-process services, every shard
/// with the same hot-cache byte budget and its own disk-cache directory.
struct Fleet {
    router::LocalTransport transport;
    std::vector<std::unique_ptr<service::SurveyService>> services;
    std::unique_ptr<router::Router> rtr;

    Fleet(unsigned shard_count, unsigned clients, std::size_t hot_budget_bytes,
          const std::filesystem::path& disk_root) {
        std::vector<router::ShardEndpoint> endpoints;
        for (unsigned i = 0; i < shard_count; ++i) {
            service::ServiceConfig cfg;
            cfg.workers = 2;
            cfg.hot_cache.max_bytes = hot_budget_bytes;
            // One internal cache shard: the budget is the budget, with no
            // per-internal-shard slop -- this bench measures capacity.
            cfg.hot_cache.shards = 1;
            cfg.disk_cache_dir = disk_root / ("shard" + std::to_string(i));
            auto svc = std::make_unique<service::SurveyService>(cfg);
            endpoints.push_back({"s" + std::to_string(i), "127.0.0.1",
                                 static_cast<std::uint16_t>(9100 + i)});
            transport.add_endpoint(
                endpoints.back().address(),
                [svc = svc.get()](const service::protocol::Request& req) {
                    return svc->handle(req);
                });
            services.push_back(std::move(svc));
        }
        router::RouterConfig cfg;
        cfg.probe_interval = std::chrono::milliseconds{0};  // no prober noise
        cfg.eject_after = 2;
        cfg.backoff_base = std::chrono::milliseconds{1};
        cfg.max_idle_per_shard = clients;  // steady state: zero dials
        rtr = std::make_unique<router::Router>(
            router::FleetMap{std::move(endpoints), {}}, transport, cfg);
    }
};

struct Measurement {
    double wall_s = 0.0;
    double p50_ms = 0.0;
    double p99_ms = 0.0;
    double requests_per_s = 0.0;
    std::uint64_t failed = 0;
    std::uint64_t hot = 0, disk = 0, computed = 0;
};

/// `clients` threads drive `requests` total queries through the router.
/// next_seed selects each request's spec. mid_run (optional) fires once in
/// the main thread when roughly half the requests have completed.
template <typename NextSeed, typename MidRun>
Measurement measure(router::Router& rtr, unsigned clients, unsigned requests,
                    NextSeed next_seed, MidRun mid_run) {
    std::vector<std::vector<double>> latencies(clients);
    std::atomic<std::uint64_t> failed{0};
    std::atomic<std::uint64_t> hot{0}, disk{0}, computed{0};
    std::atomic<std::uint64_t> done{0};
    std::vector<std::thread> threads;
    const auto t0 = std::chrono::steady_clock::now();
    for (unsigned c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
            for (unsigned i = c; i < requests; i += clients) {
                const auto req = make_request(next_seed(i));
                const auto q0 = std::chrono::steady_clock::now();
                const auto response = rtr.handle(req);
                const auto q1 = std::chrono::steady_clock::now();
                if (!response.ok()) {
                    failed.fetch_add(1, std::memory_order_relaxed);
                } else {
                    using Source = service::protocol::Source;
                    if (response.source == Source::HotCache) {
                        hot.fetch_add(1, std::memory_order_relaxed);
                    } else if (response.source == Source::DiskCache) {
                        disk.fetch_add(1, std::memory_order_relaxed);
                    } else if (response.source == Source::Computed) {
                        computed.fetch_add(1, std::memory_order_relaxed);
                    }
                }
                latencies[c].push_back(
                    std::chrono::duration<double, std::milli>{q1 - q0}.count());
                done.fetch_add(1, std::memory_order_relaxed);
            }
        });
    }
    mid_run(done, requests);
    for (auto& t : threads) t.join();

    Measurement m;
    m.wall_s =
        std::chrono::duration<double>{std::chrono::steady_clock::now() - t0}.count();
    m.failed = failed.load();
    m.hot = hot.load();
    m.disk = disk.load();
    m.computed = computed.load();
    std::vector<double> all;
    for (const auto& slice : latencies) {
        all.insert(all.end(), slice.begin(), slice.end());
    }
    if (!all.empty()) {
        const util::QuantileSummary q = util::quantile_summary(all);
        m.p50_ms = q.p50;
        m.p99_ms = q.p99;
        m.requests_per_s = static_cast<double>(all.size()) / m.wall_s;
    }
    return m;
}

void no_mid_run(std::atomic<std::uint64_t>&, unsigned) {}

}  // namespace

int main(int argc, char** argv) {
    unsigned requests = 40000;
    unsigned warm_requests = 300;
    unsigned clients = 16;
    unsigned spec_count = 128;
    std::string json_path = "bench_fleet_throughput.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--requests") == 0 && i + 1 < argc) {
            requests = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
        } else if (std::strcmp(argv[i], "--clients") == 0 && i + 1 < argc) {
            clients = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
        } else if (std::strcmp(argv[i], "--specs") == 0 && i + 1 < argc) {
            spec_count = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
        } else if (util::parse_json_flag(argc, argv, i, json_path)) {
            // consumed "--json <path>"
        } else {
            std::fprintf(
                stderr,
                "usage: %s [--requests N] [--clients N] [--specs N] [--json PATH]\n",
                argv[0]);
            return 2;
        }
    }

    const std::filesystem::path scratch =
        std::filesystem::temp_directory_path() / "hsw_fleet_bench";
    std::filesystem::remove_all(scratch);

    // Reference payloads from a standalone, unsharded service: every
    // routed response must be byte-identical to these, at every shard
    // count -- that is the content-addressing contract failover relies on.
    // Their total size also defines the working set the cache budget is
    // sized against.
    std::vector<std::string> reference(spec_count);
    std::size_t working_set_bytes = 0;
    {
        service::ServiceConfig cfg;
        cfg.workers = 2;
        service::SurveyService direct{cfg};
        for (unsigned s = 0; s < spec_count; ++s) {
            const auto response = direct.handle(make_request(s));
            if (!response.ok()) {
                std::fprintf(stderr, "direct query %u failed: %s\n", s,
                             response.payload.c_str());
                return 1;
            }
            reference[s] = std::string{response.payload_view()};
            working_set_bytes += reference[s].size();
        }
    }
    // Per-shard budget: one shard keeps ~1/5 of the set resident; a shard
    // in an 8-way fleet owns ~1/8 of the keys (ring imbalance ~±10%),
    // which fits with margin.
    const std::size_t hot_budget = working_set_bytes / 5;

    util::BenchJson out{"bench_fleet_throughput"};
    out.meta()
        .set("clients", clients)
        .set("requests", requests)
        .set("specs", spec_count)
        .set("working_set_bytes", static_cast<std::uint64_t>(working_set_bytes))
        .set("hot_budget_bytes_per_shard", static_cast<std::uint64_t>(hot_budget));

    double hot_1shard = 0.0;
    for (const unsigned shard_count : {1u, 4u, 8u}) {
        Fleet fleet{shard_count, clients, hot_budget,
                    scratch / std::to_string(shard_count)};

        // Prewarm + byte-identity gate: each spec routes to its primary
        // (computing it into that shard's disk cache), and the routed
        // bytes must match the unsharded reference. A second pass settles
        // the hot caches into their steady state.
        for (unsigned pass = 0; pass < 2; ++pass) {
            for (unsigned s = 0; s < spec_count; ++s) {
                const auto response = fleet.rtr->handle(make_request(s));
                if (!response.ok() || response.payload_view() != reference[s]) {
                    std::fprintf(stderr,
                                 "shards=%u spec=%u: routed response diverged "
                                 "from direct service\n",
                                 shard_count, s);
                    return 1;
                }
            }
        }

        const auto hot = measure(
            *fleet.rtr, clients, requests,
            [spec_count](unsigned i) { return draw(i) % spec_count; }, no_mid_run);
        // Warm leg: seeds beyond the working set, so every request is a
        // fresh spec and computes.
        const auto warm = measure(
            *fleet.rtr, clients, warm_requests,
            [spec_count, shard_count](unsigned i) {
                return 1000000u + shard_count * 100000u + i;
            },
            no_mid_run);
        if (hot.failed != 0 || warm.failed != 0) {
            std::fprintf(stderr, "shards=%u: %llu requests failed\n", shard_count,
                         static_cast<unsigned long long>(hot.failed + warm.failed));
            return 1;
        }
        if (shard_count == 1) hot_1shard = hot.requests_per_s;

        const double hot_ratio =
            hot.hot + hot.disk + hot.computed > 0
                ? static_cast<double>(hot.hot) /
                      static_cast<double>(hot.hot + hot.disk + hot.computed)
                : 0.0;
        out.add_run()
            .set("scenario", "hot")
            .set("shards", shard_count)
            .set("req_per_s", hot.requests_per_s)
            .set("p50_ms", hot.p50_ms)
            .set("p99_ms", hot.p99_ms)
            .set("hot_hit_ratio", hot_ratio)
            .set("disk_hits", hot.disk)
            .set("speedup_vs_1shard",
                 hot_1shard > 0 ? hot.requests_per_s / hot_1shard : 1.0);
        out.add_run()
            .set("scenario", "warm")
            .set("shards", shard_count)
            .set("req_per_s", warm.requests_per_s)
            .set("p50_ms", warm.p50_ms)
            .set("p99_ms", warm.p99_ms);
        std::fprintf(stderr,
                     "shards=%u hot %9.1f req/s (hot%% %4.1f, p50 %7.4f ms, "
                     "x%.2f)  warm %7.1f req/s\n",
                     shard_count, hot.requests_per_s, 100.0 * hot_ratio,
                     hot.p50_ms,
                     hot_1shard > 0 ? hot.requests_per_s / hot_1shard : 1.0,
                     warm.requests_per_s);
    }

    // Failover under load: 4 shards, hot traffic, one shard's transport
    // dies mid-run. Failover must absorb it -- zero client-visible
    // failures is a hard gate, not a statistic.
    {
        Fleet fleet{4, clients, hot_budget, scratch / "failover"};
        for (unsigned s = 0; s < spec_count; ++s) {
            (void)fleet.rtr->handle(make_request(s));
        }
        const std::string victim = fleet.rtr->fleet().shards()[0].address();
        const auto kill_mid_run = [&](std::atomic<std::uint64_t>& done,
                                      unsigned total) {
            while (done.load(std::memory_order_relaxed) < total / 2) {
                std::this_thread::sleep_for(std::chrono::milliseconds{1});
            }
            fleet.transport.set_down(victim, true);
        };
        const auto m = measure(
            *fleet.rtr, clients, requests,
            [spec_count](unsigned i) { return draw(i) % spec_count; },
            kill_mid_run);
        const auto stats = fleet.rtr->stats();
        out.add_run()
            .set("scenario", "failover-under-load")
            .set("shards", 4u)
            .set("req_per_s", m.requests_per_s)
            .set("p99_ms", m.p99_ms)
            .set("failed_requests", m.failed)
            .set("failovers", stats.failovers)
            .set("ejections",
                 [&] {
                     std::uint64_t n = 0;
                     for (const auto& h : stats.shards) n += h.ejections;
                     return n;
                 }());
        std::fprintf(stderr,
                     "failover: %9.1f req/s, %llu failed, %llu failovers\n",
                     m.requests_per_s, static_cast<unsigned long long>(m.failed),
                     static_cast<unsigned long long>(stats.failovers));
        if (m.failed != 0) {
            std::fprintf(stderr, "FAIL: shard death leaked %llu client errors\n",
                         static_cast<unsigned long long>(m.failed));
            return 1;
        }
    }

    std::error_code ec;
    std::filesystem::remove_all(scratch, ec);

    const std::string json = out.to_string();
    std::fputs(json.c_str(), stdout);
    if (!out.write(json_path)) return 1;
    return 0;
}
