// Reproduces Figure 3: histograms of p-state transition latencies between
// 1.2 and 1.3 GHz under four request-timing regimes (4 x 1000 samples).
// Shape anchors: random -> uniform in [~21, ~524] us; immediate -> ~500 us;
// 400 us delay -> ~100 us; 500 us delay -> bimodal.
#include <cstdio>

#include "survey/fig3_pstate.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

int main() {
    hsw::survey::PstateLatencyConfig cfg;
    cfg.samples = 1000;
    const auto result = hsw::survey::fig3(cfg);
    std::printf("%s\n", result.render().c_str());

    hsw::util::CsvWriter csv{"fig3_pstate_latencies.csv"};
    csv.write_header({"series", "latency_us"});
    for (const auto& s : result.series) {
        for (double v : s.result.latencies_us) {
            csv.write_row(std::vector<std::string>{s.label, hsw::util::Table::fmt(v, 2)});
        }
    }
    std::puts("raw samples written to fig3_pstate_latencies.csv");
    return 0;
}
