// Reproduces Figure 3: histograms of p-state transition latencies between
// 1.2 and 1.3 GHz under four request-timing regimes (4 x 1000 samples).
// Shape anchors: random -> uniform in [~21, ~524] us; immediate -> ~500 us;
// 400 us delay -> ~100 us; 500 us delay -> bimodal.
#include "engine_bench_main.hpp"

int main() { return hsw::bench::engine_bench_main({"fig3"}); }
