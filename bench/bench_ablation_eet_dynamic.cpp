// Ablation: energy-efficient turbo vs phase-changing workloads.
//
// Section II-E: EET "monitors the number of stall cycles ... However, the
// monitoring mechanism polls the stall data only sporadically (the patent
// lists a period of 1 ms). Therefore, EET may impair performance and
// energy efficiency of workloads that change their characteristics at an
// unfavorable rate."
//
// This bench alternates compute and memory phases at a sweep of phase
// periods and compares achieved GIPS with EET active (EPB balanced) vs
// EET neutralized (EPB performance). Near the 1 ms polling period the
// stale stall snapshot makes EET demote turbo during *compute* phases --
// the performance dip the paper predicts. Slow alternation lets EET act
// correctly and the gap closes.
#include <cstdio>

#include "core/node.hpp"
#include "msr/addresses.hpp"
#include "perfmon/counters.hpp"
#include "util/table.hpp"
#include "workloads/mixes.hpp"

using namespace hsw;
using util::Time;

namespace {

double run_dynamic(msr::EpbPolicy epb, Time phase_period, Time total) {
    core::Node node;
    node.set_epb(epb);
    node.request_turbo_all();
    node.set_all_workloads(&workloads::compute(), 1);
    node.run_for(Time::ms(20));

    perfmon::CounterReader reader{node.msrs(), node.sku().nominal_frequency};
    const auto before = reader.snapshot(node.cpu_id(1, 0), node.now());
    const Time start = node.now();
    bool memory_phase = false;
    while (node.now() - start < total) {
        node.run_for(phase_period);
        memory_phase = !memory_phase;
        node.set_all_workloads(
            memory_phase ? &workloads::memory_stream() : &workloads::compute(), 1);
        // Keep the turbo request across workload changes.
        node.request_turbo_all();
    }
    const auto after = reader.snapshot(node.cpu_id(1, 0), node.now());
    return reader.derive(before, after).giga_instructions_per_sec;
}

}  // namespace

int main() {
    const Time total = Time::ms(600);
    util::Table t{
        "EET vs phase-alternating workloads (compute <-> memory), turbo requested"};
    t.set_header({"phase period [ms]", "GIPS (EET active)", "GIPS (EET off)",
                  "EET-induced loss"});

    double worst_loss = 0.0;
    double worst_period = 0.0;
    double slow_loss = 0.0;
    for (double period_ms : {0.6, 1.0, 1.6, 2.5, 5.0, 12.0, 60.0}) {
        const Time period = Time::from_us(period_ms * 1000.0);
        const double with_eet = run_dynamic(msr::EpbPolicy::Balanced, period, total);
        const double without = run_dynamic(msr::EpbPolicy::Performance, period, total);
        const double loss = 1.0 - with_eet / without;
        if (loss > worst_loss) {
            worst_loss = loss;
            worst_period = period_ms;
        }
        slow_loss = loss;  // last iteration = slowest alternation
        t.add_row({util::Table::fmt(period_ms, 1), util::Table::fmt(with_eet, 2),
                   util::Table::fmt(without, 2),
                   util::Table::fmt(loss * 100.0, 1) + " %"});
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("worst EET-induced loss: %.1f %% at a %.1f ms phase period;\n"
                "at slow alternation the loss shrinks to %.1f %%.\n",
                worst_loss * 100.0, worst_period, slow_loss * 100.0);
    std::puts("paper Section II-E: EET \"may impair performance ... of workloads\n"
              "that change their characteristics at an unfavorable rate\".");
    return 0;
}
