// Reproduces Figure 8: L3 (17 MB) and DRAM (350 MB) read bandwidth over
// the full concurrency x frequency grid on Haswell-EP. Shape anchors:
// DRAM saturates at ~8 cores and becomes frequency independent at >= 10
// cores; L3 scales with both; HT helps only at low concurrency.
#include "engine_bench_main.hpp"

int main() { return hsw::bench::engine_bench_main({"fig8"}); }
