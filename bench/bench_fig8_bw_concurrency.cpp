// Reproduces Figure 8: L3 (17 MB) and DRAM (350 MB) read bandwidth over
// the full concurrency x frequency grid on Haswell-EP. Shape anchors:
// DRAM saturates at ~8 cores and becomes frequency independent at >= 10
// cores; L3 scales with both; HT helps only at low concurrency.
#include <cstdio>

#include "survey/fig78_bandwidth.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

int main() {
    const auto result = hsw::survey::fig8();
    std::printf("%s\n", result.render().c_str());

    hsw::util::CsvWriter csv{"fig8_bandwidth_grid.csv"};
    csv.write_header({"threads", "set_ghz", "l3_gbs", "dram_gbs"});
    for (std::size_t ti = 0; ti < result.threads.size(); ++ti) {
        for (std::size_t fi = 0; fi < result.set_ghz.size(); ++fi) {
            csv.write_row(std::vector<std::string>{
                std::to_string(result.threads[ti]),
                hsw::util::Table::fmt(result.set_ghz[fi], 1),
                hsw::util::Table::fmt(result.l3_gbs[ti][fi], 2),
                hsw::util::Table::fmt(result.dram_gbs[ti][fi], 2)});
        }
    }
    std::puts("grid written to fig8_bandwidth_grid.csv");
    return 0;
}
