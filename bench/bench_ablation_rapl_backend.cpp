// Ablation: modeled vs measured RAPL on the *same* machine.
//
// Figure 2 compares different machines (SNB node vs HSW node), so PSU and
// workload effects mix with the backend change. Here the identical
// Haswell-EP node is measured once through the measured backend and once
// through a modeled estimator fed the same activity -- isolating how much
// of the Fig. 2 improvement is the backend itself.
#include <cstdio>
#include <string>
#include <vector>

#include "core/node.hpp"
#include "rapl/model.hpp"
#include "tools/rapl_validate.hpp"
#include "util/table.hpp"
#include "workloads/mixes.hpp"

using namespace hsw;
using util::Time;

int main() {
    core::Node node;
    tools::RaplValidator validator{node};

    // Collect points with the real (measured) backend, and re-estimate each
    // point with a modeled estimator from the same activity vector.
    rapl::RaplEstimator modeled{arch::RaplBackend::Modeled, 7};

    std::vector<tools::RaplSamplePoint> measured_pts;
    std::vector<tools::RaplSamplePoint> modeled_pts;

    const unsigned max_cores = node.cores_per_socket();
    for (const workloads::Workload* w : workloads::rapl_validation_set()) {
        for (unsigned cores : {1u, max_cores / 2, max_cores}) {
            auto p = validator.run_point(w, cores, 1, Time::sec(2));
            measured_pts.push_back(p);

            // Feed the modeled estimator the same machine activity.
            rapl::ActivityVector av;
            const double f = node.core_frequency(node.cpu_id(0, 0)).as_ghz() * 1e9;
            av.core_cycles_per_s = f * cores;
            av.uops_per_s = f * cores * w->ipc_unity_noht * 1.12;
            av.avx_ops_per_s = f * cores * w->ipc_unity_noht * w->avx_fraction;
            av.dram_gbs = node.socket(0).current_dram_traffic().as_gb_per_sec();
            av.uncore_cycles_per_s = node.uncore_frequency(0).as_hz();
            const double est =
                2.0 * (modeled.package_power(util::Power::watts(p.rapl_watts / 2.0), av)
                           .as_watts() +
                       modeled.dram_power(util::Power::watts(8.0), av).as_watts());
            auto q = p;
            q.rapl_watts = est;
            modeled_pts.push_back(q);
        }
    }

    const auto measured_report = tools::analyze(measured_pts);
    const auto modeled_report = tools::analyze(modeled_pts);

    util::Table t{"RAPL backend ablation on the same Haswell-EP node"};
    t.set_header({"backend", "global linear R^2", "per-workload slope spread"});
    t.add_row({"measured (FIVR sense)", util::Table::fmt(measured_report.linear.r_squared, 5),
               util::Table::fmt(measured_report.slope_spread * 100.0, 1) + " %"});
    t.add_row({"modeled (event counts)", util::Table::fmt(modeled_report.linear.r_squared, 5),
               util::Table::fmt(modeled_report.slope_spread * 100.0, 1) + " %"});
    std::printf("%s\n", t.render().c_str());
    std::puts("Expected: the modeled backend shows a much larger per-workload bias\n"
              "even with machine, PSU and workloads held constant -- the accuracy\n"
              "gain of Haswell RAPL is the measurement backend (Section IV).");
    return 0;
}
