// Reproduces Figure 2: RAPL (package+DRAM, both sockets) vs AC reference
// power on Sandy Bridge-EP (modeled RAPL, per-workload bias -> linear fit
// per workload, poor global fit) and Haswell-EP (measured RAPL -> one
// quadratic fit, R^2 > 0.999). Runs through the experiment engine and
// dumps the scatter data as CSV next to the binary for external plotting.
#include "engine_bench_main.hpp"

int main() {
    return hsw::bench::engine_bench_main(
        {"fig2a", "fig2b"},
        "paper anchors: SNB per-workload slopes spread widely (modeled RAPL);\n"
        "HSW collapses onto one quadratic with R^2 > 0.9998 (measured RAPL).");
}
