// Reproduces Figure 2: RAPL (package+DRAM, both sockets) vs AC reference
// power on Sandy Bridge-EP (modeled RAPL, per-workload bias -> linear fit
// per workload, poor global fit) and Haswell-EP (measured RAPL -> one
// quadratic fit, R^2 > 0.999). Dumps the scatter data as CSV next to the
// binary for external plotting.
#include <cstdio>

#include "survey/fig2_rapl.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

using namespace hsw;

namespace {
void dump_csv(const survey::RaplAccuracyResult& r, const char* path) {
    util::CsvWriter csv{path};
    csv.write_header({"workload", "cores_per_socket", "threads_per_core", "ac_watts",
                      "rapl_watts"});
    for (const auto& p : r.report.points) {
        csv.write_row({p.workload, std::to_string(p.active_cores_per_socket),
                       std::to_string(p.threads_per_core),
                       util::Table::fmt(p.ac_watts, 2), util::Table::fmt(p.rapl_watts, 2)});
    }
}
}  // namespace

int main() {
    const auto snb = survey::fig2_run(arch::Generation::SandyBridgeEP);
    std::printf("%s\n", snb.render().c_str());
    dump_csv(snb, "fig2a_sandy_bridge.csv");

    const auto hsw_result = survey::fig2_run(arch::Generation::HaswellEP);
    std::printf("%s\n", hsw_result.render().c_str());
    dump_csv(hsw_result, "fig2b_haswell.csv");

    std::printf("shape check: SNB per-workload slope spread %.1f %% vs HSW %.1f %%;\n"
                "HSW quadratic R^2 = %.5f (paper: > 0.9998)\n",
                snb.report.slope_spread * 100.0, hsw_result.report.slope_spread * 100.0,
                hsw_result.report.quadratic.r_squared);
    return 0;
}
