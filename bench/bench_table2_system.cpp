// Reproduces Table II: the test system summary including the measured idle
// AC power at maximum fan speed (paper: 261.5 W).
#include <cstdio>

#include "survey/table2_system.hpp"

int main() {
    const auto report = hsw::survey::table2();
    std::printf("%s\n", report.render().c_str());
    std::printf("paper-vs-measured: idle AC 261.5 W vs %.1f W\n", report.idle_ac_watts);
    return 0;
}
