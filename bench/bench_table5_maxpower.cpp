// Reproduces Table V: node power maximization -- FIRESTARTER vs LINPACK vs
// mprime under {2.5 GHz, turbo} x EPB {power, balanced, performance}, HT
// off. Shape anchors: FIRESTARTER and mprime ~560 W, LINPACK ~548 W with
// the lowest measured frequency (~2.28 GHz); EPB/turbo have little impact.
#include "engine_bench_main.hpp"

int main() {
    return hsw::bench::engine_bench_main(
        {"table5"},
        "paper anchors: max AC 561.0 (FIRESTARTER) / 548.6 (LINPACK) / 561.3 W\n"
        "(mprime); LINPACK also runs at the lowest frequency (TDP/current-limited).");
}
