// Reproduces Table V: node power maximization -- FIRESTARTER vs LINPACK vs
// mprime under {2.5 GHz, turbo} x EPB {power, balanced, performance}, HT
// off. Shape anchors: FIRESTARTER and mprime ~560 W, LINPACK ~548 W with
// the lowest measured frequency (~2.28 GHz); EPB/turbo have little impact.
#include <cstdio>

#include "survey/table5_maxpower.hpp"

int main() {
    hsw::survey::MaxPowerConfig cfg;
    cfg.run_time = hsw::util::Time::sec(70);
    cfg.window = hsw::util::Time::sec(60);  // the paper's 1-minute window
    const auto result = hsw::survey::table5(cfg);
    std::printf("%s\n", result.render().c_str());

    std::printf("max AC: FIRESTARTER %.1f W, LINPACK %.1f W, mprime %.1f W\n",
                result.max_ac("FIRESTARTER"), result.max_ac("LINPACK"),
                result.max_ac("mprime"));
    std::puts("paper: 561.0 / 548.6 / 561.3 W; LINPACK also runs at the lowest\n"
              "frequency (TDP/current-limited).");
    return 0;
}
