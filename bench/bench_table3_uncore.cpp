// Reproduces Table III: uncore frequencies in the single-threaded
// no-memory-stalls scenario, active vs passive processor, plus the
// EPB=performance column (3.0 GHz).
#include "engine_bench_main.hpp"

int main() {
    return hsw::bench::engine_bench_main(
        {"table3"},
        "paper anchors: turbo -> 3.0 GHz; 2.5 -> 2.2; 2.0 -> 1.75; 1.4-1.2 -> 1.2;\n"
        "passive socket one 100 MHz step lower; EPB=performance -> 3.0 GHz.");
}
