// Ablation: what if the uncore did NOT scale independently?
//
// Re-runs the Table IV frequency sweep while pinning the workload into the
// UFS regimes: the FIRESTARTER profile (tracking UFS), a no-stall variant
// (ladder only -- the uncore never absorbs freed budget), and a
// stall-heavy variant (uncore always at max). Without the budget-to-uncore
// reassignment, the paper's "lower setting -> more IPS" inversion
// disappears -- quantifying how much of Table IV is UFS.
#include <cstdio>

#include "core/node.hpp"
#include "perfmon/counters.hpp"
#include "util/table.hpp"
#include "workloads/mixes.hpp"

using namespace hsw;
using util::Frequency;
using util::Time;

namespace {

struct Point {
    double core_ghz;
    double uncore_ghz;
    double gips;
};

Point measure(core::Node& node, const workloads::Workload& w, unsigned ratio) {
    node.set_all_workloads(&w, 2);
    node.set_pstate_all(Frequency::from_ratio(ratio));
    node.run_for(Time::ms(50));
    perfmon::CounterReader reader{node.msrs(), node.sku().nominal_frequency};
    const auto before = reader.snapshot(node.cpu_id(1, 0), node.now());
    node.run_for(Time::sec(2));
    const auto after = reader.snapshot(node.cpu_id(1, 0), node.now());
    const auto m = reader.derive(before, after);
    return Point{m.effective_frequency.as_ghz(), m.uncore_frequency.as_ghz(),
                 m.giga_instructions_per_sec / 2.0};
}

}  // namespace

int main() {
    // Variants of FIRESTARTER that pin the UFS policy branch.
    workloads::Workload no_stall = workloads::firestarter();
    no_stall.name = "FS (no-stall variant)";
    no_stall.stall_fraction = 0.0;   // ladder regime: no budget reassignment
    no_stall.ipc_uncore_sens = 0.0;  // and no IPC benefit from uncore

    workloads::Workload stall_heavy = workloads::firestarter();
    stall_heavy.name = "FS (stall-heavy variant)";
    stall_heavy.stall_fraction = 0.5;  // uncore pinned at max from the start

    const workloads::Workload* variants[] = {&workloads::firestarter(), &no_stall,
                                             &stall_heavy};

    for (const auto* w : variants) {
        core::Node node;
        util::Table t{std::string{"UFS ablation: "} + std::string{w->name}};
        t.set_header({"setting [GHz]", "core [GHz]", "uncore [GHz]", "GIPS/thread"});
        double turbo_gips = 0.0;
        double best_gips = 0.0;
        const unsigned nominal = node.sku().nominal_frequency.ratio();
        for (unsigned r = nominal + 1; r >= 21; --r) {
            const Point p = measure(node, *w, r);
            if (r == nominal + 1) turbo_gips = p.gips;
            best_gips = std::max(best_gips, p.gips);
            t.add_row({r == nominal + 1 ? "Turbo" : util::Table::fmt(r / 10.0, 1),
                       util::Table::fmt(p.core_ghz, 2), util::Table::fmt(p.uncore_ghz, 2),
                       util::Table::fmt(p.gips, 3)});
        }
        std::printf("%s", t.render().c_str());
        std::printf("downclocking gain vs turbo: %+.1f %%\n\n",
                    (best_gips / turbo_gips - 1.0) * 100.0);
    }
    std::puts("Expected: the tracking-UFS FIRESTARTER shows the Table IV inversion;\n"
              "the no-stall variant does not (freed budget buys nothing).");
    return 0;
}
