// Measures survey-service throughput and latency through an in-process
// SurveyService at client concurrency in {1, 4, 16}, for three cache
// states, and emits the numbers through the shared BenchJson reporter
// (stdout + bench_service_throughput.json, or --json <path>):
//
//   cold           nothing cached: every request computes
//   warm-disk      on-disk ResultCache populated, hot cache disabled
//   hot            in-memory hot cache populated
//
// plus two socket scenarios that push the same hot traffic through a real
// SurveyServer (epoll reactor) over loopback TCP:
//
//   hot-socket     one request per round-trip (a pre-v1.3 client)
//   hot-pipelined  32 requests per v1.3 batch frame per round-trip
//
// The interesting ratios: hot/cold p50 is the hot-cache win (a shard-mutex
// lookup versus a full computation), warm-disk/hot is the cost of the disk
// probe + SHA-256 verify the hot cache saves, and requests/s at 16 clients
// versus 1 shows how far coalescing + sharding keep concurrent identical
// queries from serializing. hot-pipelined/hot-socket is the batching win:
// syscalls and wakeups amortized over the window.
//
// --telemetry turns the whole observability stack on for the run --
// metrics registry, span tracing, and the access log with a keep-everything
// policy draining to a scratch file -- so the CI scaling gate measures the
// hot path with logging live, not idealized.
//
//   bench_service_throughput [--requests N] [--experiment NAME]
//                            [--telemetry] [--json PATH]
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "obs/accesslog.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "service/server.hpp"
#include "service/service.hpp"
#include "util/bench_json.hpp"
#include "util/stats.hpp"

using namespace hsw;

namespace {

struct Scenario {
    const char* label;
    bool disk_cache = false;
    bool hot_cache = false;
    bool prewarm = false;
};

struct Measurement {
    double wall_s = 0.0;
    double p50_ms = 0.0;
    double p99_ms = 0.0;
    double requests_per_s = 0.0;
};

service::protocol::Request make_request(const std::string& experiment) {
    service::protocol::Request req;
    req.verb = service::protocol::Verb::Query;
    req.experiment = experiment;
    req.quick = true;  // quick tuning keeps a bench run in seconds
    return req;
}

Measurement measure(service::SurveyService& svc, const std::string& experiment,
                    unsigned clients, unsigned requests) {
    std::vector<std::vector<double>> latencies(clients);
    std::vector<std::thread> threads;
    const auto t0 = std::chrono::steady_clock::now();
    for (unsigned c = 0; c < clients; ++c) {
        threads.emplace_back([&svc, &latencies, &experiment, c, clients, requests] {
            const auto req = make_request(experiment);
            for (unsigned i = c; i < requests; i += clients) {
                const auto q0 = std::chrono::steady_clock::now();
                const auto result = svc.query(req);
                const auto q1 = std::chrono::steady_clock::now();
                if (!result.ok()) {
                    std::fprintf(stderr, "query failed: %s\n", result.message.c_str());
                    std::exit(1);
                }
                latencies[c].push_back(
                    std::chrono::duration<double, std::milli>{q1 - q0}.count());
            }
        });
    }
    for (auto& t : threads) t.join();

    Measurement m;
    m.wall_s =
        std::chrono::duration<double>{std::chrono::steady_clock::now() - t0}.count();
    std::vector<double> all;
    for (const auto& slice : latencies) {
        all.insert(all.end(), slice.begin(), slice.end());
    }
    if (!all.empty()) {
        const util::QuantileSummary q = util::quantile_summary(all);
        m.p50_ms = q.p50;
        m.p99_ms = q.p99;
        m.requests_per_s = static_cast<double>(all.size()) / m.wall_s;
    }
    return m;
}

/// Same hot traffic, but through a real loopback socket: each client
/// thread owns one connection and sends `pipeline` identical requests per
/// round-trip (1 = the classic request/response lockstep). Latency is the
/// window round-trip -- what a pipelining caller actually observes.
Measurement measure_socket(std::uint16_t port, const std::string& experiment,
                           unsigned clients, unsigned requests,
                           unsigned pipeline) {
    std::vector<std::vector<double>> latencies(clients);
    std::vector<std::thread> threads;
    const auto t0 = std::chrono::steady_clock::now();
    for (unsigned c = 0; c < clients; ++c) {
        threads.emplace_back([&latencies, &experiment, port, c, clients, requests,
                              pipeline] {
            service::ServiceClient client{"127.0.0.1", port};
            const auto req = make_request(experiment);
            unsigned mine = 0;
            for (unsigned i = c; i < requests; i += clients) ++mine;
            while (mine > 0) {
                const unsigned window =
                    pipeline < mine ? pipeline : mine;
                mine -= window;
                const auto q0 = std::chrono::steady_clock::now();
                if (window == 1 && pipeline == 1) {
                    const auto response = client.call(req);
                    if (!response.ok()) {
                        std::fprintf(stderr, "socket query failed: %s\n",
                                     response.payload.c_str());
                        std::exit(1);
                    }
                } else {
                    const std::vector<service::protocol::Request> batch(window, req);
                    const auto responses = client.call_pipelined(batch);
                    for (const auto& response : responses) {
                        if (!response.ok()) {
                            std::fprintf(stderr, "pipelined query failed: %s\n",
                                         response.payload.c_str());
                            std::exit(1);
                        }
                    }
                }
                const auto q1 = std::chrono::steady_clock::now();
                const double ms =
                    std::chrono::duration<double, std::milli>{q1 - q0}.count();
                for (unsigned j = 0; j < window; ++j) latencies[c].push_back(ms);
            }
        });
    }
    for (auto& t : threads) t.join();

    Measurement m;
    m.wall_s =
        std::chrono::duration<double>{std::chrono::steady_clock::now() - t0}.count();
    std::vector<double> all;
    for (const auto& slice : latencies) {
        all.insert(all.end(), slice.begin(), slice.end());
    }
    if (!all.empty()) {
        const util::QuantileSummary q = util::quantile_summary(all);
        m.p50_ms = q.p50;
        m.p99_ms = q.p99;
        m.requests_per_s = static_cast<double>(all.size()) / m.wall_s;
    }
    return m;
}

}  // namespace

int main(int argc, char** argv) {
    unsigned requests = 64;
    std::string experiment = "fig3";
    std::string json_path = "bench_service_throughput.json";
    bool telemetry = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--requests") == 0 && i + 1 < argc) {
            requests = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
        } else if (std::strcmp(argv[i], "--experiment") == 0 && i + 1 < argc) {
            experiment = argv[++i];
        } else if (std::strcmp(argv[i], "--telemetry") == 0) {
            telemetry = true;
        } else if (util::parse_json_flag(argc, argv, i, json_path)) {
            // consumed "--json <path>"
        } else {
            std::fprintf(stderr,
                         "usage: %s [--requests N] [--experiment NAME] "
                         "[--telemetry] [--json PATH]\n",
                         argv[0]);
            return 2;
        }
    }

    obs::accesslog::Writer access_log_writer;
    if (telemetry) {
        // Worst-case observability tax: every request traced, every
        // request kept by the access log, drain thread live.
        obs::set_metrics_enabled(true);
        obs::trace::enable();
        obs::accesslog::set_policy(1.0, 0);
        obs::accesslog::set_identity("bench");
        obs::accesslog::set_enabled(true);
        if (!access_log_writer.start(".hsw-service-bench-access.jsonl")) {
            std::fprintf(stderr, "cannot open access-log scratch file\n");
            return 1;
        }
    }

    const std::filesystem::path disk_dir = ".hsw-service-bench-cache";
    const Scenario scenarios[] = {
        // Cold: no caches at all, every request recomputes -- the baseline.
        {"cold", false, false, false},
        // Warm disk: results on disk, hot cache off, so every request pays
        // the file read + hash verify.
        {"warm-disk", true, false, true},
        // Hot: in-memory cache populated; requests cost a shard lookup.
        {"hot", false, true, true},
    };
    const unsigned client_counts[] = {1, 4, 16};

    util::BenchJson out{"bench_service_throughput"};
    out.meta()
        .set("experiment", experiment)
        .set("requests", requests)
        .set("telemetry", telemetry);
    for (const Scenario& scenario : scenarios) {
        for (const unsigned clients : client_counts) {
            std::filesystem::remove_all(disk_dir);
            service::ServiceConfig cfg;
            cfg.workers = 4;
            if (scenario.disk_cache) cfg.disk_cache_dir = disk_dir;
            if (!scenario.hot_cache) cfg.hot_cache.max_bytes = 0;
            service::SurveyService svc{cfg};
            if (scenario.prewarm) {
                const auto warmup = svc.query(make_request(experiment));
                if (!warmup.ok()) {
                    std::fprintf(stderr, "warmup failed: %s\n",
                                 warmup.message.c_str());
                    return 1;
                }
            }

            const Measurement m = measure(svc, experiment, clients, requests);
            out.add_run()
                .set("scenario", scenario.label)
                .set("clients", clients)
                .set("req_per_s", m.requests_per_s)
                .set("p50_ms", m.p50_ms)
                .set("p99_ms", m.p99_ms);
            std::fprintf(stderr,
                         "%-9s clients=%-2u %8.1f req/s  p50 %7.3f ms  p99 %7.3f ms\n",
                         scenario.label, clients, m.requests_per_s, m.p50_ms,
                         m.p99_ms);
        }
    }
    std::filesystem::remove_all(disk_dir);

    // Socket scenarios: the same hot traffic through the epoll reactor.
    struct SocketScenario {
        const char* label;
        unsigned pipeline;
    };
    const SocketScenario socket_scenarios[] = {
        {"hot-socket", 1},
        {"hot-pipelined", 32},
    };
    for (const SocketScenario& scenario : socket_scenarios) {
        for (const unsigned clients : client_counts) {
            service::ServerConfig cfg;
            cfg.service.workers = 4;
            service::SurveyServer server{cfg};
            server.start();
            {
                service::ServiceClient warm{"127.0.0.1", server.port()};
                const auto warmup = warm.call(make_request(experiment));
                if (!warmup.ok()) {
                    std::fprintf(stderr, "socket warmup failed: %s\n",
                                 warmup.payload.c_str());
                    return 1;
                }
            }
            const Measurement m = measure_socket(server.port(), experiment,
                                                 clients, requests,
                                                 scenario.pipeline);
            server.stop();
            out.add_run()
                .set("scenario", scenario.label)
                .set("clients", clients)
                .set("req_per_s", m.requests_per_s)
                .set("p50_ms", m.p50_ms)
                .set("p99_ms", m.p99_ms);
            std::fprintf(stderr,
                         "%-13s clients=%-2u %8.1f req/s  p50 %7.3f ms  p99 %7.3f ms\n",
                         scenario.label, clients, m.requests_per_s, m.p50_ms,
                         m.p99_ms);
        }
    }

    if (telemetry) {
        access_log_writer.stop();
        std::filesystem::remove(".hsw-service-bench-access.jsonl");
    }

    const std::string json = out.to_string();
    std::fputs(json.c_str(), stdout);
    if (!out.write(json_path)) return 1;
    return 0;
}
