// Measures survey-service throughput and latency through an in-process
// SurveyService at client concurrency in {1, 4, 16}, for three cache
// states, and emits the numbers through the shared BenchJson reporter
// (stdout + bench_service_throughput.json, or --json <path>):
//
//   cold       nothing cached: every request computes
//   warm-disk  on-disk ResultCache populated, hot cache disabled
//   hot        in-memory hot cache populated
//
// The interesting ratios: hot/cold p50 is the hot-cache win (a shard-mutex
// lookup versus a full computation), warm-disk/hot is the cost of the disk
// probe + SHA-256 verify the hot cache saves, and requests/s at 16 clients
// versus 1 shows how far coalescing + sharding keep concurrent identical
// queries from serializing.
//
//   bench_service_throughput [--requests N] [--experiment NAME] [--json PATH]
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "service/service.hpp"
#include "util/bench_json.hpp"
#include "util/stats.hpp"

using namespace hsw;

namespace {

struct Scenario {
    const char* label;
    bool disk_cache = false;
    bool hot_cache = false;
    bool prewarm = false;
};

struct Measurement {
    double wall_s = 0.0;
    double p50_ms = 0.0;
    double p99_ms = 0.0;
    double requests_per_s = 0.0;
};

service::protocol::Request make_request(const std::string& experiment) {
    service::protocol::Request req;
    req.verb = service::protocol::Verb::Query;
    req.experiment = experiment;
    req.quick = true;  // quick tuning keeps a bench run in seconds
    return req;
}

Measurement measure(service::SurveyService& svc, const std::string& experiment,
                    unsigned clients, unsigned requests) {
    std::vector<std::vector<double>> latencies(clients);
    std::vector<std::thread> threads;
    const auto t0 = std::chrono::steady_clock::now();
    for (unsigned c = 0; c < clients; ++c) {
        threads.emplace_back([&svc, &latencies, &experiment, c, clients, requests] {
            const auto req = make_request(experiment);
            for (unsigned i = c; i < requests; i += clients) {
                const auto q0 = std::chrono::steady_clock::now();
                const auto result = svc.query(req);
                const auto q1 = std::chrono::steady_clock::now();
                if (!result.ok()) {
                    std::fprintf(stderr, "query failed: %s\n", result.message.c_str());
                    std::exit(1);
                }
                latencies[c].push_back(
                    std::chrono::duration<double, std::milli>{q1 - q0}.count());
            }
        });
    }
    for (auto& t : threads) t.join();

    Measurement m;
    m.wall_s =
        std::chrono::duration<double>{std::chrono::steady_clock::now() - t0}.count();
    std::vector<double> all;
    for (const auto& slice : latencies) {
        all.insert(all.end(), slice.begin(), slice.end());
    }
    if (!all.empty()) {
        const util::QuantileSummary q = util::quantile_summary(all);
        m.p50_ms = q.p50;
        m.p99_ms = q.p99;
        m.requests_per_s = static_cast<double>(all.size()) / m.wall_s;
    }
    return m;
}

}  // namespace

int main(int argc, char** argv) {
    unsigned requests = 64;
    std::string experiment = "fig3";
    std::string json_path = "bench_service_throughput.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--requests") == 0 && i + 1 < argc) {
            requests = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
        } else if (std::strcmp(argv[i], "--experiment") == 0 && i + 1 < argc) {
            experiment = argv[++i];
        } else if (util::parse_json_flag(argc, argv, i, json_path)) {
            // consumed "--json <path>"
        } else {
            std::fprintf(stderr,
                         "usage: %s [--requests N] [--experiment NAME] [--json PATH]\n",
                         argv[0]);
            return 2;
        }
    }

    const std::filesystem::path disk_dir = ".hsw-service-bench-cache";
    const Scenario scenarios[] = {
        // Cold: no caches at all, every request recomputes -- the baseline.
        {"cold", false, false, false},
        // Warm disk: results on disk, hot cache off, so every request pays
        // the file read + hash verify.
        {"warm-disk", true, false, true},
        // Hot: in-memory cache populated; requests cost a shard lookup.
        {"hot", false, true, true},
    };
    const unsigned client_counts[] = {1, 4, 16};

    util::BenchJson out{"bench_service_throughput"};
    out.meta().set("experiment", experiment).set("requests", requests);
    for (const Scenario& scenario : scenarios) {
        for (const unsigned clients : client_counts) {
            std::filesystem::remove_all(disk_dir);
            service::ServiceConfig cfg;
            cfg.workers = 4;
            if (scenario.disk_cache) cfg.disk_cache_dir = disk_dir;
            if (!scenario.hot_cache) cfg.hot_cache.max_bytes = 0;
            service::SurveyService svc{cfg};
            if (scenario.prewarm) {
                const auto warmup = svc.query(make_request(experiment));
                if (!warmup.ok()) {
                    std::fprintf(stderr, "warmup failed: %s\n",
                                 warmup.message.c_str());
                    return 1;
                }
            }

            const Measurement m = measure(svc, experiment, clients, requests);
            out.add_run()
                .set("scenario", scenario.label)
                .set("clients", clients)
                .set("req_per_s", m.requests_per_s)
                .set("p50_ms", m.p50_ms)
                .set("p99_ms", m.p99_ms);
            std::fprintf(stderr,
                         "%-9s clients=%-2u %8.1f req/s  p50 %7.3f ms  p99 %7.3f ms\n",
                         scenario.label, clients, m.requests_per_s, m.p50_ms,
                         m.p99_ms);
        }
    }
    std::filesystem::remove_all(disk_dir);

    const std::string json = out.to_string();
    std::fputs(json.c_str(), stdout);
    if (!out.write(json_path)) return 1;
    return 0;
}
