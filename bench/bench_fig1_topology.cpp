// Reproduces Figure 1: the partitioned ring layouts of the Haswell-EP
// dies. The 12-core die (used for 10/12-core units) pairs an 8-core and a
// 4-core partition; the 18-core die pairs 8 and 10; each partition has an
// IMC with two DDR4 channels, joined by buffered queues.
#include <cstdio>

#include "arch/topology_render.hpp"

int main() {
    for (unsigned cores : {8u, 12u, 18u}) {
        const auto topo = hsw::arch::make_die_topology(cores);
        std::printf("%s\n", hsw::arch::render_die_ascii(topo).c_str());
    }
    std::puts("paper Figure 1: in the default configuration this complexity is\n"
              "not exposed to software; transfers between partitions ride the\n"
              "queues (see mem/ring and mem/coherency for the latency cost).");
    return 0;
}
