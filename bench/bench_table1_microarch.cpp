// Reproduces Table I: Sandy Bridge-EP vs Haswell-EP microarchitecture,
// with the derived ratio checks the paper's Section II-A highlights.
#include <cstdio>

#include "survey/table1_microarch.hpp"

int main() {
    const auto cmp = hsw::survey::table1();
    std::printf("%s\n", cmp.render().c_str());
    std::printf("derived checks:\n");
    std::printf("  FLOPS/cycle ratio (FMA):      %.1fx (paper: 2x)\n", cmp.flops_ratio());
    std::printf("  L1D bandwidth ratio:          %.1fx (paper: doubled)\n",
                cmp.l1_bandwidth_ratio());
    std::printf("  L2 bandwidth ratio:           %.1fx (paper: doubled)\n",
                cmp.l2_bandwidth_ratio());
    std::printf("  DRAM peak ratio (DDR4/DDR3):  %.2fx (68.2/51.2 GB/s)\n",
                cmp.dram_bandwidth_ratio());
    return 0;
}
