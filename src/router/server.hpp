// RouterServer: the TCP face of a Router.
//
// Composes the same FrameServer front-end the shards use, so a fleet
// client is just a ServiceClient pointed at the router -- same protocol,
// same framing, same verbs. The `shutdown` verb stops the *router
// process* only; shards are independent daemons with their own lifecycle
// (hsw_fleet tears them down explicitly).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "router/router.hpp"
#include "service/frame_server.hpp"

namespace hsw::router {

struct RouterServerConfig {
    std::string bind_address = "127.0.0.1";
    /// 0 = kernel-assigned ephemeral port (read it back via port()).
    std::uint16_t port = 0;
    unsigned max_connections = 128;
};

class RouterServer {
public:
    /// `router` must outlive the server. Throws std::runtime_error on
    /// socket failure.
    RouterServer(Router& router, RouterServerConfig cfg = {});

    RouterServer(const RouterServer&) = delete;
    RouterServer& operator=(const RouterServer&) = delete;

    [[nodiscard]] std::uint16_t port() const { return frontend_->port(); }
    void start() { frontend_->start(); }
    void wait() { frontend_->wait(); }
    void stop() { frontend_->stop(); }
    [[nodiscard]] bool stopped() const { return frontend_->stopped(); }
    [[nodiscard]] Router& router() { return router_; }

private:
    Router& router_;
    std::unique_ptr<service::FrameServer> frontend_;
};

}  // namespace hsw::router
