#include "router/server.hpp"

#include <utility>

namespace hsw::router {

RouterServer::RouterServer(Router& router, RouterServerConfig cfg)
    : router_{router} {
    service::FrameServerConfig front;
    front.bind_address = std::move(cfg.bind_address);
    front.port = cfg.port;
    front.max_connections = cfg.max_connections;
    // Distinct prefix: in a fleet scrape, front-door connection counters
    // must not sum into the shards' hsw_server_* family.
    front.metric_prefix = "hsw_router_server";
    frontend_ = std::make_unique<service::FrameServer>(
        std::move(front),
        [router = &router_](const service::protocol::Request& request) {
            return router->handle(request);
        },
        [router = &router_] { router->stop(); });
    // Ping and health never touch an upstream; answer them on the reactor.
    frontend_->set_fast_handler(
        [router = &router_](const service::protocol::Request& request)
            -> std::optional<service::protocol::Response> {
            using service::protocol::Verb;
            if (request.verb != Verb::Ping && request.verb != Verb::Health) {
                return std::nullopt;
            }
            return router->handle(request);
        });
    // A client batch becomes one pipelined upstream batch per shard
    // instead of N independent round-trips across the handler pool.
    frontend_->set_batch_handler(
        [router = &router_](const std::vector<service::protocol::Request>& batch) {
            return router->handle_batch(batch);
        });
}

}  // namespace hsw::router
