#include "router/server.hpp"

#include <utility>

namespace hsw::router {

RouterServer::RouterServer(Router& router, RouterServerConfig cfg)
    : router_{router} {
    service::FrameServerConfig front;
    front.bind_address = std::move(cfg.bind_address);
    front.port = cfg.port;
    front.max_connections = cfg.max_connections;
    // Distinct prefix: in a fleet scrape, front-door connection counters
    // must not sum into the shards' hsw_server_* family.
    front.metric_prefix = "hsw_router_server";
    frontend_ = std::make_unique<service::FrameServer>(
        std::move(front),
        [router = &router_](const service::protocol::Request& request) {
            return router->handle(request);
        },
        [router = &router_] { router->stop(); });
}

}  // namespace hsw::router
