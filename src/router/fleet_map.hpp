// FleetMap: consistent-hash placement of route keys onto shards.
//
// Each shard contributes `vnodes` points to a 64-bit hash ring
// (placement_hash of "host:port#<i>"); a route key looks up clockwise
// from its own hash. Virtual nodes smooth the per-shard share of key
// space (150 points puts a fleet's imbalance in the ±10% range), and the
// clockwise walk yields the *replica set*: the first R distinct shards
// encountered, primary first. Consistent hashing's point is minimal
// disruption -- removing a shard moves only the keys it owned, which for
// a cache-fronted fleet means a topology change invalidates 1/N of the
// fleet's hot-cache locality instead of all of it.
//
// FleetMap is immutable after construction: the router builds one at
// startup and consults it lock-free from every connection thread.
// Liveness (ejection/readmission) is layered on top by the Router, which
// skips unhealthy replicas at dispatch time rather than rebuilding the
// ring -- so a flapping shard never churns key placement.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hsw::router {

/// One shard endpoint. `name` labels metrics and logs; host:port is the
/// dial address.
struct ShardEndpoint {
    std::string name;
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;

    [[nodiscard]] std::string address() const {
        return host + ":" + std::to_string(port);
    }
};

struct FleetMapConfig {
    /// Ring points per shard.
    unsigned vnodes = 150;
    /// Replica set size: a key's query may be served by its primary or by
    /// the next replicas-1 distinct shards clockwise. Clamped to the
    /// shard count.
    unsigned replicas = 2;
};

class FleetMap {
public:
    /// Throws std::invalid_argument when `shards` is empty, a name or
    /// address repeats, or cfg.vnodes is zero.
    FleetMap(std::vector<ShardEndpoint> shards, FleetMapConfig cfg = {});

    [[nodiscard]] const std::vector<ShardEndpoint>& shards() const {
        return shards_;
    }
    [[nodiscard]] unsigned replicas() const { return replicas_; }

    /// Shard indices (into shards()) that may serve `route_key`: primary
    /// first, then the clockwise failover order. Size == replicas().
    [[nodiscard]] std::vector<std::size_t> replica_set(
        std::string_view route_key) const;

    /// Primary shard index for `route_key` (replica_set front, cheaper).
    [[nodiscard]] std::size_t primary(std::string_view route_key) const;

private:
    struct Point {
        std::uint64_t hash;
        std::size_t shard;
    };

    /// First ring point clockwise of `h` (wrapping).
    [[nodiscard]] std::size_t lower_point(std::uint64_t h) const;

    std::vector<ShardEndpoint> shards_;
    std::vector<Point> ring_;  // sorted by hash
    unsigned replicas_ = 1;
};

}  // namespace hsw::router
