#include "router/router.hpp"

#include <algorithm>
#include <chrono>
#include <map>
#include <utility>

#include "obs/accesslog.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/hash.hpp"

namespace hsw::router {

namespace {

using service::protocol::ErrorCode;
using service::protocol::MetricsFormat;
using service::protocol::Request;
using service::protocol::Response;
using service::protocol::Verb;

obs::Counter& queries_counter() {
    static obs::Counter& c =
        obs::counter("hsw_router_queries", "Query verbs routed to the fleet");
    return c;
}
obs::Counter& attempts_counter() {
    static obs::Counter& c = obs::counter("hsw_router_upstream_attempts",
                                          "Upstream query attempts (incl. retries)");
    return c;
}
obs::Counter& failovers_counter() {
    static obs::Counter& c = obs::counter(
        "hsw_router_failovers", "Query attempts served by a non-primary replica");
    return c;
}
obs::Counter& retry_passes_counter() {
    static obs::Counter& c = obs::counter(
        "hsw_router_retry_passes", "Backoff sleeps between replica-set walks");
    return c;
}
obs::Counter& unavailable_counter() {
    static obs::Counter& c = obs::counter(
        "hsw_router_unavailable", "Queries that exhausted every replica");
    return c;
}
obs::Counter& ejections_counter() {
    static obs::Counter& c =
        obs::counter("hsw_router_ejections", "Shards ejected by health tracking");
    return c;
}
obs::Counter& readmissions_counter() {
    static obs::Counter& c = obs::counter(
        "hsw_router_readmissions", "Ejected shards readmitted after a good probe");
    return c;
}
obs::Histogram& route_latency_histogram() {
    // 10 us .. ~84 s in x2 steps, matching the shard-side request
    // histogram so fleet merges stay bucket-compatible.
    static obs::Histogram& h = obs::histogram(
        "hsw_router_query_latency_ms", obs::exponential_bounds(0.01, 2.0, 23),
        "Routed query end-to-end latency in milliseconds");
    return h;
}

/// "unknown verb" from parse_request is the protocol's capability-probe
/// answer: the peer predates the verb we sent.
bool is_unknown_verb(const Response& response) {
    return response.code == ErrorCode::MalformedRequest &&
           response.payload.find("unknown verb") != std::string::npos;
}

/// Stamp the thread's current trace context onto an outgoing upstream
/// request (the upstream.call span is the parent for the shard's spans).
void stamp_trace(Request& request) {
    const obs::trace::TraceContext ctx = obs::trace::current_context();
    if (!ctx.valid()) return;
    request.trace_id = ctx.trace_id;
    request.trace_parent = ctx.span_id;
    request.trace_flags = ctx.flags;
}

/// One access-log line per routed query, emitted where the outcome (and
/// the retry count) is finally known.
void log_routed_access(const Request& request, const Response& response,
                       std::string_view route_key_hex,
                       std::string_view shard_name, std::uint32_t retries,
                       std::uint64_t micros) {
    if (!obs::accesslog::enabled()) return;
    const obs::trace::TraceContext ctx = obs::trace::current_context();
    if (!obs::accesslog::should_log(ctx, !response.ok(), micros, retries > 0)) {
        return;
    }
    obs::accesslog::Record rec;
    rec.trace_id = ctx.trace_id;
    rec.micros = micros;
    rec.retries = retries;
    if (request.deadline_ms > 0) {
        rec.deadline_slack_us =
            static_cast<std::int64_t>(request.deadline_ms) * 1000 -
            static_cast<std::int64_t>(micros);
    }
    obs::accesslog::set_field(rec.verb, service::protocol::name(request.verb));
    obs::accesslog::set_field(rec.spec, route_key_hex.substr(0, 16));
    obs::accesslog::set_field(rec.shard, shard_name);
    obs::accesslog::set_field(
        rec.source, response.ok() ? service::protocol::name(response.source)
                                  : std::string_view{"none"});
    obs::accesslog::set_field(
        rec.outcome, response.ok() ? std::string_view{"ok"}
                                   : service::protocol::name(response.code));
    obs::accesslog::record(rec);
}

}  // namespace

std::string RouterStats::render() const {
    std::string out;
    out += "router.queries " + std::to_string(queries) + "\n";
    out += "router.forwarded " + std::to_string(forwarded) + "\n";
    out += "router.failovers " + std::to_string(failovers) + "\n";
    out += "router.retry_passes " + std::to_string(retry_passes) + "\n";
    out += "router.unavailable " + std::to_string(unavailable) + "\n";
    for (const auto& s : shards) {
        out += "shard." + s.name + ".state ";
        out += s.ejected ? "ejected" : "live";
        if (s.legacy) out += " (legacy v1.1)";
        out += "\n";
        out += "shard." + s.name + ".consecutive_failures " +
               std::to_string(s.consecutive_failures) + "\n";
        out += "shard." + s.name + ".ejections " + std::to_string(s.ejections) +
               "\n";
        out += "shard." + s.name + ".readmissions " +
               std::to_string(s.readmissions) + "\n";
    }
    return out;
}

Router::Router(FleetMap map, Transport& transport, RouterConfig cfg)
    : map_{std::move(map)},
      transport_{transport},
      cfg_{cfg},
      jitter_state_{cfg.jitter_seed} {
    shards_.reserve(map_.shards().size());
    for (const auto& endpoint : map_.shards()) {
        auto shard = std::make_unique<Shard>();
        shard->pool = std::make_unique<ConnectionPool>(
            transport_, endpoint, cfg_.transport, cfg_.max_idle_per_shard);
        shards_.push_back(std::move(shard));
    }
    if (cfg_.probe_interval.count() > 0) {
        prober_ = std::thread{[this] { prober_loop(); }};
    }
}

Router::~Router() { stop(); }

void Router::stop() {
    {
        util::LockGuard lock{prober_lock_};
        if (prober_stop_) return;
        prober_stop_ = true;
    }
    prober_cv_.notify_all();
    if (prober_.joinable()) prober_.join();
}

Response Router::handle(const Request& request) {
    Response response;
    switch (request.verb) {
        case Verb::Ping:
            response.payload = "pong";
            return response;
        case Verb::Health:
            response.payload = shutdown_requested() ? "draining" : "ok";
            return response;
        case Verb::Stats:
            response.payload = stats().render();
            return response;
        case Verb::Shutdown:
            shutdown_requested_.store(true, std::memory_order_release);
            response.payload = "draining";
            return response;
        case Verb::Metrics:
            return aggregate_metrics(request.format);
        case Verb::TraceDump:
            // The router answers with its *own* spans; a collector merges
            // them with per-shard trace_dump payloads (see hsw_trace).
            response.payload = obs::trace::export_chrome_json();
            return response;
        case Verb::Dump: {
            const std::string path = obs::flight::dump("verb");
            if (path.empty()) {
                response.code = ErrorCode::Internal;
                response.payload = "flight dump failed (dir missing or unwritable)";
            } else {
                response.payload = path;
            }
            return response;
        }
        case Verb::Query:
            return route_query(request);
    }
    response.code = ErrorCode::MalformedRequest;
    response.payload = "unhandled verb";
    return response;
}

bool Router::retriable(ErrorCode code) {
    // Overloaded: this replica's queue is full, another may have room.
    // ShuttingDown: the shard is draining; its replicas are not.
    // Everything else is a property of the request or of the fleet's data,
    // not of the replica that answered -- retrying elsewhere cannot help,
    // and DeadlineExceeded means the client's budget is already spent.
    return code == ErrorCode::Overloaded || code == ErrorCode::ShuttingDown;
}

std::chrono::milliseconds Router::backoff_delay(unsigned pass) {
    const auto base = cfg_.backoff_base.count();
    if (base <= 0) return std::chrono::milliseconds{0};
    // Deterministic jitter: a splitmix64 walk seeded by cfg_.jitter_seed.
    // No global RNG, reproducible under test.
    const std::uint64_t draw =
        util::mix64(jitter_state_.fetch_add(0x9E3779B97F4A7C15ULL,
                                            std::memory_order_relaxed));
    const long long exp = base << (pass - 1 < 16 ? pass - 1 : 16);
    const long long jitter = static_cast<long long>(
        draw % static_cast<std::uint64_t>(base));
    const long long capped =
        std::min<long long>(exp + jitter, cfg_.backoff_max.count());
    return std::chrono::milliseconds{capped};
}

void Router::note_success(Shard& shard) {
    shard.consecutive_failures.store(0, std::memory_order_relaxed);
    if (shard.ejected.exchange(false, std::memory_order_acq_rel)) {
        shard.readmissions.fetch_add(1, std::memory_order_relaxed);
        readmissions_counter().inc();
    }
}

void Router::note_failure(Shard& shard) {
    const std::uint64_t failures =
        shard.consecutive_failures.fetch_add(1, std::memory_order_relaxed) + 1;
    if (failures >= cfg_.eject_after &&
        !shard.ejected.exchange(true, std::memory_order_acq_rel)) {
        shard.ejections.fetch_add(1, std::memory_order_relaxed);
        ejections_counter().inc();
        // Idle connections to a misbehaving shard are suspect: drop them
        // so readmission starts from fresh dials.
        shard.pool->clear_idle();
    }
}

Response Router::route_query(const Request& request) {
    queries_counter().inc();
    queries_.fetch_add(1, std::memory_order_relaxed);
    // The frame server installs the request's trace context before its
    // handler runs, but route_query is also reached bare (batch rescue
    // path, tests): adopt the wire context only when the thread carries
    // none, so an existing server.request parent edge is preserved.
    std::optional<obs::trace::ContextScope> inbound_scope;
    if (!obs::trace::current_context().valid() && request.has_trace()) {
        inbound_scope.emplace(obs::trace::TraceContext{
            request.trace_id, request.trace_parent, request.trace_flags});
    }
    obs::trace::Span span{"router.route", "router"};
    span.set_label(request.experiment + "/" + request.point);
    const auto t0 = std::chrono::steady_clock::now();

    const std::string key = service::protocol::route_key(request);
    const std::vector<std::size_t> replicas = map_.replica_set(key);

    Response last_error;
    last_error.code = ErrorCode::Unavailable;
    last_error.payload = "no replica reachable";

    const auto elapsed_us = [&t0] {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - t0)
                .count());
    };
    std::uint32_t attempt = 0;
    for (unsigned pass = 0; pass < cfg_.max_passes; ++pass) {
        if (pass > 0) {
            retry_passes_.fetch_add(1, std::memory_order_relaxed);
            retry_passes_counter().inc();
            std::this_thread::sleep_for(backoff_delay(pass));
        }
        bool all_ejected = true;
        for (const std::size_t idx : replicas) {
            if (!shards_[idx]->ejected.load(std::memory_order_acquire)) {
                all_ejected = false;
                break;
            }
        }
        for (std::size_t i = 0; i < replicas.size(); ++i) {
            Shard& shard = *shards_[replicas[i]];
            // Skip ejected replicas -- unless every candidate is ejected,
            // in which case trying beats failing without evidence.
            if (!all_ejected && shard.ejected.load(std::memory_order_acquire)) {
                continue;
            }
            const std::string& shard_name = map_.shards()[replicas[i]].name;
            forwarded_.fetch_add(1, std::memory_order_relaxed);
            attempts_counter().inc();
            if (i > 0) {
                failovers_.fetch_add(1, std::memory_order_relaxed);
                failovers_counter().inc();
            }
            try {
                // Every attempt is its own child span under router.route;
                // the retry annotation plus the forced-sampling override
                // make failover hops stand out (and survive tail
                // sampling) without changing the shared trace_id.
                obs::trace::Span upstream_span{"upstream.call", "router"};
                upstream_span.set_label(shard_name);
                if (attempt > 0) {
                    upstream_span.set_retry(attempt);
                    obs::trace::force_current();
                }
                ++attempt;
                Request traced = request;
                stamp_trace(traced);
                auto lease = shard.pool->acquire();
                Response response = lease.call(traced);
                note_success(shard);
                if (!retriable(response.code)) {
                    route_latency_histogram().record(
                        std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - t0)
                            .count());
                    log_routed_access(request, response, key, shard_name,
                                      attempt - 1, elapsed_us());
                    return response;
                }
                last_error = std::move(response);
            } catch (const TransportError& e) {
                note_failure(shard);
                obs::trace::force_current();
                last_error.code = ErrorCode::Unavailable;
                last_error.payload = std::string{"transport: "} + e.what();
            }
        }
    }
    unavailable_.fetch_add(1, std::memory_order_relaxed);
    unavailable_counter().inc();
    log_routed_access(request, last_error, key, {},
                      attempt > 0 ? attempt - 1 : 0, elapsed_us());
    // Exhausted: either Unavailable (nothing answered) or the last
    // Overloaded/ShuttingDown the fleet gave us -- both are honest.
    return last_error;
}

std::vector<Response> Router::handle_batch(const std::vector<Request>& requests) {
    std::vector<Response> responses(requests.size());
    // Group query sub-requests by the shard that would serve them today:
    // the first live replica of each route key (or the primary when the
    // whole replica set is ejected -- same "try anyway" rule as
    // route_query). Everything else answers locally.
    std::map<std::size_t, std::vector<std::size_t>> by_shard;
    for (std::size_t i = 0; i < requests.size(); ++i) {
        const Request& request = requests[i];
        if (request.verb != Verb::Query) {
            responses[i] = handle(request);
            responses[i].tag = request.tag;
            continue;
        }
        const std::vector<std::size_t> replicas =
            map_.replica_set(service::protocol::route_key(request));
        std::size_t target = replicas.front();
        for (const std::size_t idx : replicas) {
            if (!shards_[idx]->ejected.load(std::memory_order_acquire)) {
                target = idx;
                break;
            }
        }
        by_shard[target].push_back(i);
    }

    for (const auto& [shard_index, indices] : by_shard) {
        Shard& shard = *shards_[shard_index];
        std::vector<Request> group;
        group.reserve(indices.size());
        for (const std::size_t idx : indices) group.push_back(requests[idx]);
        queries_counter().inc(group.size());
        queries_.fetch_add(group.size(), std::memory_order_relaxed);
        forwarded_.fetch_add(group.size(), std::memory_order_relaxed);
        attempts_counter().inc(group.size());

        bool delivered = false;
        try {
            auto lease = shard.pool->acquire();
            std::vector<Response> group_responses = lease.call_batch(group);
            note_success(shard);
            for (std::size_t j = 0; j < indices.size(); ++j) {
                responses[indices[j]] = std::move(group_responses[j]);
            }
            delivered = true;
        } catch (const TransportError&) {
            note_failure(shard);
        }
        for (const std::size_t idx : indices) {
            // Slow path: the whole group's upstream died, or this one
            // answer is retriable elsewhere. route_query owns failover,
            // backoff, and the Unavailable verdict.
            if (!delivered || retriable(responses[idx].code)) {
                responses[idx] = route_query(requests[idx]);
                responses[idx].tag = requests[idx].tag;
            }
        }
    }
    return responses;
}

bool Router::probe_shard(std::size_t index) {
    Shard& shard = *shards_[index];
    Request probe;
    probe.verb =
        shard.legacy.load(std::memory_order_acquire) ? Verb::Metrics : Verb::Health;
    probe.format = MetricsFormat::Json;
    try {
        auto lease = shard.pool->acquire();
        Response response = lease.call(probe);
        bool healthy = false;
        if (probe.verb == Verb::Health && is_unknown_verb(response)) {
            // Legacy v1.1 shard: remember, and probe via `metrics` from
            // now on (a served metrics verb proves liveness just as well).
            shard.legacy.store(true, std::memory_order_release);
            Request fallback;
            fallback.verb = Verb::Metrics;
            fallback.format = MetricsFormat::Json;
            healthy = lease.call(fallback).ok();
        } else if (probe.verb == Verb::Health) {
            healthy = response.ok() && response.payload == "ok";
        } else {
            healthy = response.ok();
        }
        if (healthy) {
            note_success(shard);
            return true;
        }
        note_failure(shard);
        return false;
    } catch (const TransportError&) {
        note_failure(shard);
        return false;
    }
}

void Router::probe_now() {
    for (std::size_t i = 0; i < shards_.size(); ++i) {
        // Healthy shards prove themselves on live traffic; probing is for
        // the ejected (so they can come back) and a first-contact sweep
        // would add startup noise, so skip live shards entirely.
        if (shards_[i]->ejected.load(std::memory_order_acquire)) {
            probe_shard(i);
        }
    }
}

void Router::prober_loop() {
    util::LockGuard lock{prober_lock_};
    while (!prober_stop_) {
        prober_cv_.wait_for(lock, cfg_.probe_interval);
        if (prober_stop_) break;
        lock.unlock();
        probe_now();
        lock.lock();
    }
}

Response Router::aggregate_metrics(MetricsFormat format) {
    std::vector<std::pair<std::string, obs::MetricsSnapshot>> shards;
    Request scrape;
    scrape.verb = Verb::Metrics;
    scrape.format = MetricsFormat::Json;
    for (std::size_t i = 0; i < shards_.size(); ++i) {
        Shard& shard = *shards_[i];
        if (shard.ejected.load(std::memory_order_acquire)) {
            // An ejected shard still appears in the fleet document -- as a
            // synthesized one-gauge snapshot -- so dashboards (hsw_top
            // --fleet) can mark it instead of silently losing the row.
            obs::MetricsSnapshot synthesized;
            obs::GaugeSample ejected_gauge;
            ejected_gauge.name = "router_shard_ejected";
            ejected_gauge.help =
                "Shard currently ejected from routing (router-synthesized)";
            ejected_gauge.value = 1;
            synthesized.gauges.push_back(std::move(ejected_gauge));
            shards.emplace_back(map_.shards()[i].name, std::move(synthesized));
            continue;
        }
        try {
            auto lease = shard.pool->acquire();
            const Response response = lease.call(scrape);
            if (!response.ok()) continue;
            if (auto snap = obs::parse_snapshot_json(response.payload_view())) {
                shards.emplace_back(map_.shards()[i].name, std::move(*snap));
            }
            note_success(shard);
        } catch (const TransportError&) {
            note_failure(shard);
        }
    }
    // The router's own process counters ride along as one more part, so
    // the merged fleet document includes front-door traffic. Ring-overflow
    // gauges refresh first, like the shards do for their own scrapes.
    obs::trace::publish_overflow_metrics();
    obs::accesslog::publish_overflow_metrics();
    shards.emplace_back("router", obs::snapshot_metrics());

    std::vector<obs::MetricsSnapshot> parts;
    parts.reserve(shards.size());
    for (const auto& [name, snap] : shards) parts.push_back(snap);
    const obs::MetricsSnapshot merged = obs::merge_snapshots(parts);

    Response response;
    response.payload = format == MetricsFormat::Json
                           ? obs::render_fleet_json(merged, shards)
                           : obs::render_fleet_prometheus(merged, shards);
    return response;
}

RouterStats Router::stats() const {
    RouterStats s;
    s.queries = queries_.load(std::memory_order_relaxed);
    s.forwarded = forwarded_.load(std::memory_order_relaxed);
    s.failovers = failovers_.load(std::memory_order_relaxed);
    s.retry_passes = retry_passes_.load(std::memory_order_relaxed);
    s.unavailable = unavailable_.load(std::memory_order_relaxed);
    s.shards = shard_health();
    return s;
}

std::vector<ShardHealth> Router::shard_health() const {
    std::vector<ShardHealth> out;
    out.reserve(shards_.size());
    for (std::size_t i = 0; i < shards_.size(); ++i) {
        const Shard& shard = *shards_[i];
        ShardHealth h;
        h.name = map_.shards()[i].name;
        h.ejected = shard.ejected.load(std::memory_order_acquire);
        h.legacy = shard.legacy.load(std::memory_order_acquire);
        h.consecutive_failures =
            shard.consecutive_failures.load(std::memory_order_relaxed);
        h.ejections = shard.ejections.load(std::memory_order_relaxed);
        h.readmissions = shard.readmissions.load(std::memory_order_relaxed);
        out.push_back(std::move(h));
    }
    return out;
}

}  // namespace hsw::router
