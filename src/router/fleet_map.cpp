#include "router/fleet_map.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

#include "util/hash.hpp"

namespace hsw::router {

FleetMap::FleetMap(std::vector<ShardEndpoint> shards, FleetMapConfig cfg)
    : shards_{std::move(shards)} {
    if (shards_.empty()) throw std::invalid_argument{"FleetMap: no shards"};
    if (cfg.vnodes == 0) throw std::invalid_argument{"FleetMap: vnodes == 0"};
    std::set<std::string> names, addresses;
    for (const auto& s : shards_) {
        if (s.name.empty()) throw std::invalid_argument{"FleetMap: unnamed shard"};
        if (!names.insert(s.name).second) {
            throw std::invalid_argument{"FleetMap: duplicate shard name " + s.name};
        }
        if (!addresses.insert(s.address()).second) {
            throw std::invalid_argument{"FleetMap: duplicate address " + s.address()};
        }
    }
    replicas_ = std::max(1u, std::min<unsigned>(cfg.replicas,
                                                static_cast<unsigned>(shards_.size())));

    // Ring points hash the *address*, not the name: renaming a shard must
    // not move keys, but re-homing it to a new port is a topology change.
    ring_.reserve(shards_.size() * cfg.vnodes);
    for (std::size_t i = 0; i < shards_.size(); ++i) {
        const std::string base = shards_[i].address() + "#";
        for (unsigned v = 0; v < cfg.vnodes; ++v) {
            ring_.push_back({util::placement_hash(base + std::to_string(v)), i});
        }
    }
    std::sort(ring_.begin(), ring_.end(), [](const Point& a, const Point& b) {
        // Tie-break on shard index so two shards landing on the same hash
        // (vanishingly rare, but possible) order deterministically.
        return a.hash != b.hash ? a.hash < b.hash : a.shard < b.shard;
    });
}

std::size_t FleetMap::lower_point(std::uint64_t h) const {
    const auto it = std::lower_bound(
        ring_.begin(), ring_.end(), h,
        [](const Point& p, std::uint64_t key) { return p.hash < key; });
    return it == ring_.end() ? 0 : static_cast<std::size_t>(it - ring_.begin());
}

std::vector<std::size_t> FleetMap::replica_set(std::string_view route_key) const {
    std::vector<std::size_t> out;
    out.reserve(replicas_);
    std::size_t at = lower_point(util::placement_hash(route_key));
    for (std::size_t walked = 0; walked < ring_.size() && out.size() < replicas_;
         ++walked) {
        const std::size_t shard = ring_[at].shard;
        if (std::find(out.begin(), out.end(), shard) == out.end()) {
            out.push_back(shard);
        }
        at = (at + 1) % ring_.size();
    }
    return out;
}

std::size_t FleetMap::primary(std::string_view route_key) const {
    return ring_[lower_point(util::placement_hash(route_key))].shard;
}

}  // namespace hsw::router
