// Upstream transport seam + persistent connection pooling.
//
// The Router talks to shards through the Transport interface so the
// failover machinery is testable (and benchable) without sockets:
// TcpTransport dials real hsw_surveyd processes with connect/IO timeouts;
// LocalTransport (tests, bench) maps endpoints onto in-process
// SurveyService handlers with controllable fault injection.
//
// ConnectionPool keeps idle connections per shard so the steady state is
// zero dials: a lease checks a connection out, call() rides it, and the
// destructor returns it -- unless the call threw, in which case the
// connection is presumed poisoned (a half-read frame is unrecoverable on
// a pipelined byte stream) and dropped on the floor.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>
#include <vector>

#include "router/fleet_map.hpp"
#include "service/protocol.hpp"
#include "util/sync.hpp"

namespace hsw::router {

/// Transport-level failure: dial refused/timed out, write failed, peer
/// closed mid-response. Distinct from a *protocol* error response, which
/// arrives as a parsed Response with a code. The router retries transport
/// errors on the next replica; whether to retry an error response depends
/// on its code.
class TransportError : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

struct TransportOptions {
    /// TCP connect() budget. Zero = OS default (blocking connect).
    std::chrono::milliseconds connect_timeout{1000};
    /// Per-call socket send/receive budget (SO_SNDTIMEO/SO_RCVTIMEO).
    /// Zero = unbounded. A shard that accepted the connection but stopped
    /// answering surfaces as TransportError after this long instead of
    /// hanging the router's connection thread forever.
    std::chrono::milliseconds io_timeout{10000};
};

/// One upstream protocol channel. Not thread-safe; the pool hands each
/// connection to one lease at a time.
class Connection {
public:
    virtual ~Connection() = default;
    /// Round-trips one request. Throws TransportError on any I/O or
    /// framing failure; the connection must then be discarded.
    [[nodiscard]] virtual service::protocol::Response call(
        const service::protocol::Request& request) = 0;
    /// Round-trips many requests, responses in request order. The base
    /// implementation loops over call(); TcpConnection overrides it with
    /// v1.3 wire pipelining (one batch frame, tagged responses), falling
    /// back to the sequential loop against pre-v1.3 shards. Throws
    /// TransportError as call() does; the connection is then poisoned.
    [[nodiscard]] virtual std::vector<service::protocol::Response> call_batch(
        const std::vector<service::protocol::Request>& requests) {
        std::vector<service::protocol::Response> responses;
        responses.reserve(requests.size());
        for (const auto& request : requests) responses.push_back(call(request));
        return responses;
    }

    /// v1.4 trace-header capability memo, per connection (a pool may span
    /// a fleet upgrade; each fresh dial re-probes). Maintained by
    /// ConnectionPool::Lease::call for every transport; TcpConnection
    /// shares it with the wire-pipelined batch path.
    std::optional<bool> trace_supported;
};

class Transport {
public:
    virtual ~Transport() = default;
    /// Dials `endpoint`. Throws TransportError on failure or timeout.
    [[nodiscard]] virtual std::unique_ptr<Connection> connect(
        const ShardEndpoint& endpoint, const TransportOptions& options) = 0;
};

/// Real sockets: non-blocking connect with a deadline, then blocking
/// frame I/O under SO_SNDTIMEO/SO_RCVTIMEO.
class TcpTransport final : public Transport {
public:
    [[nodiscard]] std::unique_ptr<Connection> connect(
        const ShardEndpoint& endpoint, const TransportOptions& options) override;
};

/// Checked-out connections per shard with an idle free-list.
class ConnectionPool {
public:
    ConnectionPool(Transport& transport, ShardEndpoint endpoint,
                   TransportOptions options, std::size_t max_idle = 8)
        : transport_{transport},
          endpoint_{std::move(endpoint)},
          options_{options},
          max_idle_{max_idle} {}

    /// RAII checkout. `call()` forwards to the connection and, on
    /// TransportError, marks the connection broken (the destructor then
    /// closes instead of recycling it).
    class Lease {
    public:
        Lease(ConnectionPool& pool, std::unique_ptr<Connection> conn)
            : pool_{&pool}, conn_{std::move(conn)} {}
        ~Lease() {
            if (conn_ && !broken_) pool_->give_back(std::move(conn_));
        }
        Lease(Lease&&) = default;
        Lease(const Lease&) = delete;
        Lease& operator=(const Lease&) = delete;
        Lease& operator=(Lease&&) = delete;

        [[nodiscard]] service::protocol::Response call(
            const service::protocol::Request& request) {
            try {
                service::protocol::Request outbound = request;
                if (conn_->trace_supported == false) outbound.clear_trace();
                auto response = conn_->call(outbound);
                if (outbound.has_trace()) {
                    if (service::protocol::is_unknown_trace_field(response)) {
                        // Pre-v1.4 shard: memoize on the connection, strip
                        // the header and retry once. Works for any
                        // Transport -- the seam is above the wire.
                        conn_->trace_supported = false;
                        outbound.clear_trace();
                        response = conn_->call(outbound);
                    } else {
                        conn_->trace_supported = true;
                    }
                }
                return response;
            } catch (...) {
                broken_ = true;
                throw;
            }
        }

        [[nodiscard]] std::vector<service::protocol::Response> call_batch(
            const std::vector<service::protocol::Request>& requests) {
            try {
                return conn_->call_batch(requests);
            } catch (...) {
                broken_ = true;
                throw;
            }
        }

    private:
        ConnectionPool* pool_;
        std::unique_ptr<Connection> conn_;
        bool broken_ = false;
    };

    /// Reuses an idle connection or dials a fresh one (TransportError on
    /// dial failure).
    [[nodiscard]] Lease acquire() EXCLUDES(lock_);

    /// Drops every idle connection (a health prober calls this when the
    /// shard gets ejected, so readmission starts from fresh dials).
    void clear_idle() EXCLUDES(lock_);

    [[nodiscard]] const ShardEndpoint& endpoint() const { return endpoint_; }
    [[nodiscard]] std::size_t idle_count() const EXCLUDES(lock_);

private:
    friend class Lease;
    void give_back(std::unique_ptr<Connection> conn) EXCLUDES(lock_);

    Transport& transport_;
    ShardEndpoint endpoint_;
    TransportOptions options_;
    std::size_t max_idle_;
    mutable util::Mutex lock_;
    std::vector<std::unique_ptr<Connection>> idle_ GUARDED_BY(lock_);
};

}  // namespace hsw::router
