// Router: the fleet front door for hsw-survey-rpc.
//
// A query routes by its content identity (protocol::route_key, the
// SHA-256 of the spec's canonical fields) through the FleetMap's
// consistent-hash ring to an ordered replica set: primary first, then the
// clockwise failover candidates. Every replica serves any spec
// byte-identically (results are content-addressed), so failing over and
// retrying is always safe -- the only cost is a colder cache on the
// non-primary shard.
//
// Failure handling, in layers:
//
//   * Per-attempt: a TransportError (dial refused, IO timeout, peer died
//     mid-frame) moves to the next replica immediately and counts against
//     the shard's health. Overloaded / ShuttingDown responses also fail
//     over -- another replica can genuinely help. Everything else
//     (UnknownExperiment, DeadlineExceeded, Internal...) is authoritative
//     and returns to the client as-is.
//   * Per-pass: when one walk of the replica set yields nothing, the
//     router backs off (exponential, jittered, capped) and walks again,
//     up to max_passes. Exhaustion returns ErrorCode::Unavailable.
//   * Health: eject_after consecutive failures eject a shard -- routing
//     skips it (unless every replica is ejected; then it tries anyway
//     rather than fail without evidence). A background prober revisits
//     ejected shards with the v1.2 `health` verb and readmits on success.
//     Shards that answer `health` with MalformedRequest ("unknown verb")
//     are remembered as legacy v1.1 peers and probed via `metrics`.
//
// Non-query verbs are fleet-level: `metrics` fans out to every shard,
// merges the snapshots (obs::merge_snapshots) and answers with the fleet
// document (per-shard breakdown included); `stats` renders the router's
// own routing/health counters; `ping` and `health` answer locally.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "router/fleet_map.hpp"
#include "router/upstream.hpp"
#include "service/protocol.hpp"
#include "util/sync.hpp"

namespace hsw::router {

struct RouterConfig {
    FleetMapConfig fleet;
    TransportOptions transport;
    /// Walks over the replica set before giving up (1 = no retry pass).
    unsigned max_passes = 3;
    /// Backoff before pass p is base * 2^(p-1) + jitter(0..base), capped.
    std::chrono::milliseconds backoff_base{10};
    std::chrono::milliseconds backoff_max{200};
    /// Seed for the deterministic jitter sequence (no global RNG).
    std::uint64_t jitter_seed = 0x5EED;
    /// Consecutive transport failures before a shard is ejected.
    unsigned eject_after = 3;
    /// Health prober cadence; zero disables the prober thread entirely
    /// (ejected shards then only readmit via a successful routed call).
    std::chrono::milliseconds probe_interval{250};
    /// Idle upstream connections kept per shard.
    std::size_t max_idle_per_shard = 8;
};

/// Point-in-time health of one shard, as stats()/shard_health() report it.
struct ShardHealth {
    std::string name;
    bool ejected = false;
    bool legacy = false;  // answered `health` with "unknown verb" (v1.1 peer)
    std::uint64_t consecutive_failures = 0;
    std::uint64_t ejections = 0;
    std::uint64_t readmissions = 0;
};

struct RouterStats {
    std::uint64_t queries = 0;       // query verbs routed
    std::uint64_t forwarded = 0;     // upstream attempts (>= queries)
    std::uint64_t failovers = 0;     // attempts on a non-primary replica
    std::uint64_t retry_passes = 0;  // backoff sleeps taken
    std::uint64_t unavailable = 0;   // replica sets exhausted
    std::vector<ShardHealth> shards;

    /// Multi-line text block (the router's `stats` verb payload).
    [[nodiscard]] std::string render() const;
};

class Router {
public:
    /// `transport` must outlive the router.
    Router(FleetMap map, Transport& transport, RouterConfig cfg = {});
    ~Router();

    Router(const Router&) = delete;
    Router& operator=(const Router&) = delete;

    /// Full verb dispatch; safe from any number of threads concurrently.
    [[nodiscard]] service::protocol::Response handle(
        const service::protocol::Request& request);

    /// Batch dispatch for the v1.3 front door: query sub-requests are
    /// grouped by target shard (first live replica of each route key) and
    /// forwarded as one pipelined upstream batch per shard; non-query
    /// verbs answer locally via handle(). A group whose upstream dies --
    /// or any sub-request that comes back retriable (Overloaded,
    /// ShuttingDown) -- re-routes through route_query() for the full
    /// per-replica failover treatment, so batch semantics are exactly
    /// "N independent queries, faster". Returns one response per
    /// request, in request order.
    [[nodiscard]] std::vector<service::protocol::Response> handle_batch(
        const std::vector<service::protocol::Request>& requests);

    /// Stops the prober thread; idempotent. handle() keeps working (a
    /// stopped router just loses background readmission).
    void stop();

    [[nodiscard]] bool shutdown_requested() const {
        return shutdown_requested_.load(std::memory_order_acquire);
    }

    [[nodiscard]] const FleetMap& fleet() const { return map_; }
    [[nodiscard]] RouterStats stats() const;
    [[nodiscard]] std::vector<ShardHealth> shard_health() const;

    /// One prober sweep over every ejected (or never-probed) shard; the
    /// background thread calls this on its cadence, tests call it
    /// directly for determinism.
    void probe_now();

private:
    struct Shard {
        // Liveness is all-atomic: routing reads it on every attempt and
        // must never contend with the prober.
        std::atomic<std::uint64_t> consecutive_failures{0};
        std::atomic<bool> ejected{false};
        std::atomic<bool> legacy{false};
        std::atomic<std::uint64_t> ejections{0};
        std::atomic<std::uint64_t> readmissions{0};
        std::unique_ptr<ConnectionPool> pool;
    };

    [[nodiscard]] service::protocol::Response route_query(
        const service::protocol::Request& request);
    [[nodiscard]] service::protocol::Response aggregate_metrics(
        service::protocol::MetricsFormat format);
    /// True when the response code should be answered by another replica.
    [[nodiscard]] static bool retriable(service::protocol::ErrorCode code);
    void note_success(Shard& shard);
    void note_failure(Shard& shard);
    /// Probes one shard (health verb, metrics fallback); true on success.
    bool probe_shard(std::size_t index);
    void prober_loop();
    [[nodiscard]] std::chrono::milliseconds backoff_delay(unsigned pass);

    FleetMap map_;
    Transport& transport_;
    RouterConfig cfg_;
    std::vector<std::unique_ptr<Shard>> shards_;

    std::atomic<std::uint64_t> queries_{0}, forwarded_{0}, failovers_{0},
        retry_passes_{0}, unavailable_{0};
    std::atomic<std::uint64_t> jitter_state_;
    std::atomic<bool> shutdown_requested_{false};

    util::Mutex prober_lock_;
    util::CondVar prober_cv_;
    bool prober_stop_ GUARDED_BY(prober_lock_) = false;
    std::thread prober_;
};

}  // namespace hsw::router
