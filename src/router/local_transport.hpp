// In-process Transport for tests and benches.
//
// Maps shard addresses onto handler callbacks (typically
// SurveyService::handle of an in-process service instance), so the whole
// router -- ring placement, pooling, failover, health probing, metrics
// aggregation -- exercises without sockets. Fault injection is per
// endpoint: set_down() makes new dials *and* in-flight connections throw
// TransportError, which is exactly what killing a shard process does to
// the TCP transport.
//
// This matters beyond convenience: the scaling bench measures shard-count
// speedup on contended hot paths, and syscall time on a loopback socket
// would otherwise dominate the very contention being measured.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "router/upstream.hpp"
#include "util/sync.hpp"

namespace hsw::router {

class LocalTransport final : public Transport {
public:
    using Handler = std::function<service::protocol::Response(
        const service::protocol::Request&)>;

    /// Registers (or replaces) the handler serving `address` ("host:port").
    void add_endpoint(const std::string& address, Handler handler)
        EXCLUDES(lock_);

    /// Down endpoints refuse new dials and poison live connections.
    void set_down(const std::string& address, bool down) EXCLUDES(lock_);

    /// Dial / call tallies for assertions.
    [[nodiscard]] std::uint64_t dials(const std::string& address) const
        EXCLUDES(lock_);
    [[nodiscard]] std::uint64_t calls(const std::string& address) const
        EXCLUDES(lock_);

    [[nodiscard]] std::unique_ptr<Connection> connect(
        const ShardEndpoint& endpoint, const TransportOptions& options) override
        EXCLUDES(lock_);

private:
    struct Endpoint {
        Handler handler;
        std::atomic<bool> down{false};
        std::atomic<std::uint64_t> dials{0};
        std::atomic<std::uint64_t> calls{0};
    };

    class LocalConnection final : public Connection {
    public:
        explicit LocalConnection(std::shared_ptr<Endpoint> endpoint)
            : endpoint_{std::move(endpoint)} {}
        [[nodiscard]] service::protocol::Response call(
            const service::protocol::Request& request) override {
            if (endpoint_->down.load(std::memory_order_acquire)) {
                throw TransportError{"endpoint down"};
            }
            endpoint_->calls.fetch_add(1, std::memory_order_relaxed);
            return endpoint_->handler(request);
        }

    private:
        std::shared_ptr<Endpoint> endpoint_;
    };

    [[nodiscard]] std::shared_ptr<Endpoint> find(const std::string& address) const
        EXCLUDES(lock_);

    mutable util::Mutex lock_;
    std::map<std::string, std::shared_ptr<Endpoint>> endpoints_ GUARDED_BY(lock_);
};

}  // namespace hsw::router
