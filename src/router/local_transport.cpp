#include "router/local_transport.hpp"

#include <utility>

namespace hsw::router {

void LocalTransport::add_endpoint(const std::string& address, Handler handler) {
    auto endpoint = std::make_shared<Endpoint>();
    endpoint->handler = std::move(handler);
    util::LockGuard lock{lock_};
    endpoints_[address] = std::move(endpoint);
}

std::shared_ptr<LocalTransport::Endpoint> LocalTransport::find(
    const std::string& address) const {
    util::LockGuard lock{lock_};
    const auto it = endpoints_.find(address);
    return it == endpoints_.end() ? nullptr : it->second;
}

void LocalTransport::set_down(const std::string& address, bool down) {
    if (const auto endpoint = find(address)) {
        endpoint->down.store(down, std::memory_order_release);
    }
}

std::uint64_t LocalTransport::dials(const std::string& address) const {
    const auto endpoint = find(address);
    return endpoint ? endpoint->dials.load(std::memory_order_relaxed) : 0;
}

std::uint64_t LocalTransport::calls(const std::string& address) const {
    const auto endpoint = find(address);
    return endpoint ? endpoint->calls.load(std::memory_order_relaxed) : 0;
}

std::unique_ptr<Connection> LocalTransport::connect(
    const ShardEndpoint& endpoint, const TransportOptions& /*options*/) {
    const auto state = find(endpoint.address());
    if (!state) {
        throw TransportError{"no such endpoint: " + endpoint.address()};
    }
    if (state->down.load(std::memory_order_acquire)) {
        throw TransportError{"connect(" + endpoint.address() + ") refused"};
    }
    state->dials.fetch_add(1, std::memory_order_relaxed);
    return std::make_unique<LocalConnection>(state);
}

}  // namespace hsw::router
