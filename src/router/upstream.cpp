#include "router/upstream.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <system_error>
#include <utility>

namespace hsw::router {

namespace {

using service::protocol::Request;
using service::protocol::Response;

void close_quietly(int fd) {
    if (fd >= 0) ::close(fd);
}

timeval to_timeval(std::chrono::milliseconds ms) {
    timeval tv{};
    tv.tv_sec = static_cast<time_t>(ms.count() / 1000);
    tv.tv_usec = static_cast<suseconds_t>((ms.count() % 1000) * 1000);
    return tv;
}

[[noreturn]] void throw_errno(const std::string& what) {
    throw TransportError{what + ": " + std::system_category().message(errno)};
}

/// connect() with a deadline: non-blocking connect, poll for writability,
/// then read back SO_ERROR. Returns the connected fd or throws.
int dial(const ShardEndpoint& endpoint, const TransportOptions& options) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) throw_errno("socket()");

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(endpoint.port);
    if (::inet_pton(AF_INET, endpoint.host.c_str(), &addr.sin_addr) != 1) {
        close_quietly(fd);
        throw TransportError{"bad IPv4 address: " + endpoint.host};
    }

    const bool bounded = options.connect_timeout.count() > 0;
    if (bounded) {
        const int flags = ::fcntl(fd, F_GETFL, 0);
        ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    }
    int rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr);
    if (rc != 0 && errno == EINPROGRESS && bounded) {
        pollfd pfd{fd, POLLOUT, 0};
        const int ready =
            ::poll(&pfd, 1, static_cast<int>(options.connect_timeout.count()));
        if (ready <= 0) {
            close_quietly(fd);
            throw TransportError{"connect(" + endpoint.address() +
                                 ") timed out after " +
                                 std::to_string(options.connect_timeout.count()) +
                                 " ms"};
        }
        int err = 0;
        socklen_t len = sizeof err;
        ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
        if (err != 0) {
            close_quietly(fd);
            errno = err;
            throw_errno("connect(" + endpoint.address() + ")");
        }
        rc = 0;
    }
    if (rc != 0) {
        const int saved = errno;
        close_quietly(fd);
        errno = saved;
        throw_errno("connect(" + endpoint.address() + ")");
    }
    if (bounded) {
        const int flags = ::fcntl(fd, F_GETFL, 0);
        ::fcntl(fd, F_SETFL, flags & ~O_NONBLOCK);
    }

    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    if (options.io_timeout.count() > 0) {
        const timeval tv = to_timeval(options.io_timeout);
        ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
        ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
    }
    return fd;
}

class TcpConnection final : public Connection {
public:
    explicit TcpConnection(int fd) : fd_{fd} {}
    ~TcpConnection() override { close_quietly(fd_); }
    TcpConnection(const TcpConnection&) = delete;
    TcpConnection& operator=(const TcpConnection&) = delete;

    Response call(const Request& request) override {
        if (!service::protocol::write_frame(fd_, request.encode())) {
            throw TransportError{"upstream write failed"};
        }
        const auto frame = service::protocol::read_frame(fd_);
        if (!frame) {
            // read_frame folds EOF, EAGAIN (SO_RCVTIMEO expiry) and
            // truncation together; all of them poison the stream.
            throw TransportError{"upstream closed or timed out mid-response"};
        }
        std::string error;
        const auto response = service::protocol::parse_response(*frame, &error);
        if (!response) throw TransportError{"bad upstream response: " + error};
        return *response;
    }

    std::vector<Response> call_batch(
        const std::vector<Request>& requests) override {
        try {
            // Shares the base-class trace memo with the Lease's
            // single-call fallback, so a legacy verdict learned either way
            // covers both paths.
            return service::protocol::call_batch_over_fd(
                fd_, requests, batch_supported_, trace_supported);
        } catch (const TransportError&) {
            throw;
        } catch (const std::runtime_error& e) {
            throw TransportError{std::string{"upstream batch: "} + e.what()};
        }
    }

private:
    int fd_;
    /// v1.3 capability memo, per connection (a pool may span a fleet
    /// upgrade; each fresh dial re-probes).
    std::optional<bool> batch_supported_;
};

}  // namespace

std::unique_ptr<Connection> TcpTransport::connect(const ShardEndpoint& endpoint,
                                                  const TransportOptions& options) {
    return std::make_unique<TcpConnection>(dial(endpoint, options));
}

ConnectionPool::Lease ConnectionPool::acquire() {
    {
        util::LockGuard lock{lock_};
        if (!idle_.empty()) {
            auto conn = std::move(idle_.back());
            idle_.pop_back();
            return Lease{*this, std::move(conn)};
        }
    }
    return Lease{*this, transport_.connect(endpoint_, options_)};
}

void ConnectionPool::clear_idle() {
    std::vector<std::unique_ptr<Connection>> doomed;
    {
        util::LockGuard lock{lock_};
        doomed.swap(idle_);
    }
    // close() outside the lock
}

std::size_t ConnectionPool::idle_count() const {
    util::LockGuard lock{lock_};
    return idle_.size();
}

void ConnectionPool::give_back(std::unique_ptr<Connection> conn) {
    util::LockGuard lock{lock_};
    if (idle_.size() < max_idle_) idle_.push_back(std::move(conn));
    // else: drop, closing in conn's destructor after we release the lock
    // would be nicer, but an over-budget return is rare and close() on a
    // healthy socket does not block.
}

}  // namespace hsw::router
