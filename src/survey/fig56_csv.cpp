#include "survey/fig56_csv.hpp"

#include "util/csv.hpp"
#include "util/table.hpp"

namespace hsw::survey {

void dump_fig56_csv(const CstateLatencyResult& result, const std::string& path) {
    util::CsvWriter csv{path};
    csv.write_header({"generation", "scenario", "freq_ghz", "latency_us", "stddev_us"});
    for (const auto& s : result.series) {
        for (const auto& p : s.points) {
            csv.write_row(std::vector<std::string>{
                std::string{arch::traits(s.generation).name},
                std::string{cstates::name(s.scenario)}, util::Table::fmt(p.freq_ghz, 1),
                util::Table::fmt(p.latency_us, 3), util::Table::fmt(p.stddev_us, 3)});
        }
    }
}

}  // namespace hsw::survey
