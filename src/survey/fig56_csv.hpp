// CSV export helpers for the Figure 5/6 latency series.
#pragma once

#include <string>

#include "survey/fig56_cstates.hpp"

namespace hsw::survey {

void dump_fig56_csv(const CstateLatencyResult& result, const std::string& path);

}  // namespace hsw::survey
