// Figure 4: the presumed p-state change mechanism -- requests latch until
// the next ~500 us PCU opportunity; cores on the same socket switch
// together, sockets switch independently. Produces an annotated timeline
// trace and the simultaneity measurements.
#pragma once

#include <string>

#include "analysis/audit_config.hpp"
#include "util/units.hpp"

namespace hsw::survey {

struct OpportunityResult {
    std::string timeline;             // rendered trace of one request cycle
    double same_socket_delta_us = 0;  // |t_a - t_b| for cores on one socket
    double cross_socket_delta_us = 0; // |t_a - t_b| across sockets
    double observed_period_us = 0;    // measured opportunity grid period

    [[nodiscard]] std::string render() const;
};

[[nodiscard]] OpportunityResult fig4(std::uint64_t seed = 0xC0FFEE,
                                     const analysis::AuditConfig& audit = {});

}  // namespace hsw::survey
