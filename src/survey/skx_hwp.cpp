#include "survey/skx_hwp.hpp"

#include <vector>

#include "analysis/invariant_checker.hpp"
#include "arch/generation.hpp"
#include "core/node.hpp"
#include "msr/addresses.hpp"
#include "pcu/hwp.hpp"
#include "platform/registry.hpp"
#include "util/table.hpp"
#include "workloads/mixes.hpp"

namespace hsw::survey {

namespace {

core::NodeConfig skx_node_config(const SkxSweepConfig& cfg) {
    core::NodeConfig ncfg;
    ncfg.seed = cfg.seed;
    ncfg.sku = &platform::backend_for(arch::Generation::SkylakeSP).survey_sku();
    return ncfg;
}

struct WindowSample {
    double core_ghz = 0.0;
    double uncore_ghz = 0.0;
    double pkg_watts = 0.0;
};

/// Mean cpu-0 frequency over the window from APERF/MPERF deltas (the only
/// reliable frequency observation; see os/cpufreq.hpp), plus socket-0 RAPL
/// package power and the instantaneous uncore clock at the window's end.
WindowSample measure_window(core::Node& node, util::Time window) {
    const auto a0 = node.msrs().read(0, msr::IA32_APERF);
    const auto m0 = node.msrs().read(0, msr::IA32_MPERF);
    const auto w = node.rapl_window(0, window);
    const auto da = static_cast<double>(node.msrs().read(0, msr::IA32_APERF) - a0);
    const auto dm = static_cast<double>(node.msrs().read(0, msr::IA32_MPERF) - m0);
    WindowSample s;
    s.core_ghz = dm > 0.0 ? node.sku().nominal_frequency.as_ghz() * da / dm : 0.0;
    s.uncore_ghz = node.uncore_frequency(0).as_ghz();
    s.pkg_watts = w.package.as_watts();
    return s;
}

}  // namespace

std::string HwpEppResult::render() const {
    util::Table t{"Skylake-SP HWP: EPP ladder under FIRESTARTER (autonomous request)"};
    t.set_header({"EPP", "core [GHz]", "uncore [GHz]", "RAPL pkg [W]"});
    for (const auto& p : points) {
        t.add_row({std::to_string(p.epp), util::Table::fmt(p.core_ghz, 2),
                   util::Table::fmt(p.uncore_ghz, 2),
                   util::Table::fmt(p.rapl_pkg_watts, 1)});
    }
    return t.render();
}

HwpEppResult skx_hwp_epp(const SkxSweepConfig& cfg) {
    core::Node node{skx_node_config(cfg)};
    analysis::InvariantChecker checker{cfg.audit};
    checker.attach(node);

    node.set_all_workloads(&workloads::firestarter(), 2);
    node.enable_hwp();

    HwpEppResult result;
    const unsigned ladder[] = {0, 32, 64, 96, 128, 160, 192, 224, 255};
    for (unsigned epp : ladder) {
        pcu::HwpRequest req;  // min/max/desired = 0: fully autonomous
        req.epp = epp;
        node.set_hwp_request_all(req);
        node.run_for(cfg.settle);
        const auto s = measure_window(node, cfg.window);
        result.points.push_back(HwpEppPoint{epp, s.core_ghz, s.uncore_ghz, s.pkg_watts});
    }
    checker.finish();
    return result;
}

std::string Avx512LicenseResult::render() const {
    util::Table t{"Skylake-SP AVX-512 license levels vs 512-bit density (turbo request)"};
    t.set_header({"avx512 fraction", "license", "core [GHz]", "RAPL pkg [W]"});
    for (const auto& p : points) {
        t.add_row({util::Table::fmt(p.avx512_fraction, 2),
                   std::to_string(p.license_level), util::Table::fmt(p.core_ghz, 2),
                   util::Table::fmt(p.rapl_pkg_watts, 1)});
    }
    return t.render();
}

Avx512LicenseResult skx_avx512_license(const SkxSweepConfig& cfg) {
    const double fracs[] = {0.0, 0.05, 0.2, 0.5, 1.0};

    // FIRESTARTER variants with increasing 512-bit density. The vector is
    // declared before the node so the workload pointers outlive it.
    std::vector<workloads::Workload> variants;
    variants.reserve(std::size(fracs));
    for (double f : fracs) {
        workloads::Workload w = workloads::firestarter();
        w.avx512_fraction = f;
        variants.push_back(w);
    }

    core::Node node{skx_node_config(cfg)};
    analysis::InvariantChecker checker{cfg.audit};
    checker.attach(node);

    Avx512LicenseResult result;
    for (std::size_t i = 0; i < variants.size(); ++i) {
        node.set_all_workloads(&variants[i], 2);
        node.request_turbo_all();
        node.run_for(cfg.settle);
        const auto s = measure_window(node, cfg.window);
        result.points.push_back(Avx512LicensePoint{
            fracs[i], node.socket(0).cores()[0].license_level, s.core_ghz,
            s.pkg_watts});
    }
    checker.finish();
    return result;
}

}  // namespace hsw::survey
