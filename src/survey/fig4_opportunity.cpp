#include "survey/fig4_opportunity.hpp"

#include <cmath>
#include <cstdio>

#include "analysis/invariant_checker.hpp"
#include "core/node.hpp"
#include "tools/ftalat.hpp"
#include "util/rng.hpp"
#include "workloads/mixes.hpp"

namespace hsw::survey {

std::string OpportunityResult::render() const {
    std::string out = "Figure 4: p-state change mechanism (request -> opportunity -> "
                      "complete)\n\n";
    out += timeline;
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "\nobserved opportunity period : %.1f us (paper: ~500 us)\n"
                  "same-socket completion delta: %.1f us (cores switch together)\n"
                  "cross-socket completion delta: %.1f us (sockets independent)\n",
                  observed_period_us, same_socket_delta_us, cross_socket_delta_us);
    out += buf;
    return out;
}

OpportunityResult fig4(std::uint64_t seed, const analysis::AuditConfig& audit) {
    OpportunityResult result;

    // --- timeline of one request cycle, with tracing on ---
    {
        core::NodeConfig cfg;
        cfg.seed = seed;
        cfg.trace_enabled = true;
        core::Node node{cfg};
        analysis::InvariantChecker checker{audit};
        checker.attach(node);
        node.set_workload(0, &workloads::while_one(), 1);
        node.set_pstate(0, util::Frequency::from_ratio(12));
        node.run_for(util::Time::ms(3));
        node.trace().clear();
        node.set_pstate(0, util::Frequency::from_ratio(13));
        node.run_for(util::Time::ms(2));

        // Keep only the interesting categories.
        std::string timeline;
        for (const auto& rec : node.trace().records()) {
            if (rec.category == "pstate" || rec.category == "pcu") {
                char line[256];
                std::snprintf(line, sizeof line, "[%10.1f us] %-6s %-10s %s\n",
                              rec.when.as_us(), rec.category.c_str(),
                              rec.subject.c_str(), rec.detail.c_str());
                timeline += line;
            }
        }
        result.timeline = timeline;

        // Measure the grid period from consecutive socket-0 opportunities.
        const auto opps = node.trace().filter("pcu", "socket0");
        if (opps.size() >= 3) {
            double sum = 0.0;
            for (std::size_t i = 1; i < opps.size(); ++i) {
                sum += (opps[i].when - opps[i - 1].when).as_us();
            }
            result.observed_period_us = sum / static_cast<double>(opps.size() - 1);
        }
        checker.finish();
    }

    // --- simultaneity: same socket vs different sockets ---
    {
        core::NodeConfig cfg;
        cfg.seed = util::Rng::derive(seed, "fig4/simultaneity");
        core::Node node{cfg};
        analysis::InvariantChecker checker{audit};
        checker.attach(node);
        tools::Ftalat ftalat{node};
        const auto same = ftalat.measure_pair(node.cpu_id(0, 0), node.cpu_id(0, 3), 12, 13);
        result.same_socket_delta_us = std::abs((same.change_a - same.change_b).as_us());
        const auto cross = ftalat.measure_pair(node.cpu_id(0, 0), node.cpu_id(1, 0), 12, 13);
        result.cross_socket_delta_us = std::abs((cross.change_a - cross.change_b).as_us());
        checker.finish();
    }

    return result;
}

}  // namespace hsw::survey
