// Table III: uncore frequencies in the single-threaded no-memory-stalls
// scenario (while(1) on one core of processor 0), for every core frequency
// setting, on both the active and the passive processor; plus the
// EPB=performance variant (3.0 GHz).
#pragma once

#include <string>
#include <vector>

#include "core/node.hpp"
#include "util/units.hpp"

namespace hsw::survey {

struct UncoreTableRow {
    double set_ghz = 0.0;          // 0 = turbo request
    bool turbo = false;
    double active_uncore_ghz = 0.0;   // processor 0 (runs the thread)
    double passive_uncore_ghz = 0.0;  // processor 1 (idle)
    double active_uncore_perf_epb_ghz = 0.0;  // EPB = performance
};

struct UncoreTableResult {
    std::vector<UncoreTableRow> rows;
    [[nodiscard]] std::string render() const;
};

/// `dwell`: measurement time per setting (the paper uses 10 s; shorter is
/// fine in simulation since the uncore settles within a few PCU periods).
[[nodiscard]] UncoreTableResult table3(util::Time dwell = util::Time::sec(1),
                                       std::uint64_t seed = 0xC0FFEE);

}  // namespace hsw::survey
