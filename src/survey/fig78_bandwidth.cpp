#include "survey/fig78_bandwidth.hpp"

#include <stdexcept>

#include "analysis/invariant_checker.hpp"
#include "arch/sku.hpp"
#include "core/node.hpp"
#include "platform/registry.hpp"
#include "util/table.hpp"

namespace hsw::survey {

std::string Fig7Result::render() const {
    util::Table t{
        "Figure 7 data: relative L3 / DRAM read bandwidth at max concurrency\n"
        "(normalized to the bandwidth at base frequency)"};
    t.set_header({"generation", "set [GHz]", "L3 rel.", "DRAM rel."});
    for (const auto& s : series) {
        for (const auto& p : s.points) {
            t.add_row({std::string{arch::traits(s.generation).name},
                       util::Table::fmt(p.set_ghz, 2), util::Table::fmt(p.relative_l3, 3),
                       util::Table::fmt(p.relative_dram, 3)});
        }
        t.add_separator();
    }
    return t.render();
}

const RelativeBandwidthSeries& Fig7Result::find(arch::Generation g) const {
    for (const auto& s : series) {
        if (s.generation == g) return s;
    }
    throw std::out_of_range{"no such generation series"};
}

RelativeBandwidthSeries fig7_generation(arch::Generation generation, std::uint64_t seed,
                                        const analysis::AuditConfig& audit) {
    core::NodeConfig cfg;
    cfg.seed = seed;
    cfg.sku = &platform::backend_for(generation).survey_sku();
    core::Node node{cfg};
    analysis::InvariantChecker checker{audit};
    checker.attach(node);
    tools::Membench bench{node, 1};

    const unsigned cores = node.cores_per_socket();
    RelativeBandwidthSeries series;
    series.generation = generation;

    // Baseline at nominal frequency, maximum thread concurrency.
    const auto base = bench.measure(cores, 2, node.sku().nominal_frequency);

    for (unsigned r = node.sku().min_frequency.ratio();
         r <= node.sku().nominal_frequency.ratio(); ++r) {
        const auto p = bench.measure(cores, 2, util::Frequency::from_ratio(r));
        series.points.push_back(RelativeBandwidthPoint{
            p.set_ghz,
            base.l3_gbs > 0 ? p.l3_gbs / base.l3_gbs : 0.0,
            base.dram_gbs > 0 ? p.dram_gbs / base.dram_gbs : 0.0});
    }
    checker.finish();
    return series;
}

Fig7Result fig7(std::uint64_t seed, const analysis::AuditConfig& audit) {
    Fig7Result result;
    const arch::Generation gens[] = {arch::Generation::WestmereEP,
                                     arch::Generation::SandyBridgeEP,
                                     arch::Generation::HaswellEP};
    for (arch::Generation g : gens) {
        result.series.push_back(fig7_generation(g, seed, audit));
    }
    return result;
}

std::string Fig8Result::render() const {
    std::string out;
    auto grid = [&](const std::vector<std::vector<double>>& g, const char* title) {
        util::Table t{title};
        std::vector<std::string> header{"threads \\ set GHz"};
        for (double f : set_ghz) {
            header.push_back(f == 0.0 ? "Turbo" : util::Table::fmt(f, 1));
        }
        t.set_header(std::move(header));
        for (std::size_t ti = 0; ti < threads.size(); ++ti) {
            std::vector<std::string> row{std::to_string(threads[ti])};
            for (std::size_t fi = 0; fi < set_ghz.size(); ++fi) {
                row.push_back(util::Table::fmt(g[ti][fi], 1));
            }
            t.add_row(std::move(row));
        }
        out += t.render();
        out += "\n";
    };
    grid(l3_gbs, "Figure 8 data: L3 read bandwidth (GB/s), threads x frequency");
    grid(dram_gbs, "Figure 8 data: DRAM read bandwidth (GB/s), threads x frequency");
    return out;
}

Fig8Result fig8(std::uint64_t seed, const analysis::AuditConfig& audit) {
    core::NodeConfig cfg;
    cfg.seed = seed;
    core::Node node{cfg};
    analysis::InvariantChecker checker{audit};
    checker.attach(node);
    tools::Membench bench{node, 1};

    Fig8Result result;
    const unsigned nominal = node.sku().nominal_frequency.ratio();
    for (unsigned r = node.sku().min_frequency.ratio(); r <= nominal; ++r) {
        result.set_ghz.push_back(util::Frequency::from_ratio(r).as_ghz());
    }
    result.set_ghz.push_back(0.0);  // turbo request, rendered as "Turbo"

    const unsigned cores = node.cores_per_socket();
    for (unsigned t = 1; t <= 2 * cores; ++t) result.threads.push_back(t);

    for (unsigned t : result.threads) {
        // Threads fill physical cores first, then second hardware threads,
        // as the paper's pinning does.
        const unsigned used_cores = std::min(t, cores);
        const unsigned threads_per_core = t > cores ? 2 : 1;
        std::vector<double> l3_row;
        std::vector<double> dram_row;
        for (double f : result.set_ghz) {
            const util::Frequency setting =
                f == 0.0 ? util::Frequency::from_ratio(nominal + 1)
                         : util::Frequency::ghz(f);
            const auto p = bench.measure(used_cores, threads_per_core, setting);
            l3_row.push_back(p.l3_gbs);
            dram_row.push_back(p.dram_gbs);
        }
        result.l3_gbs.push_back(std::move(l3_row));
        result.dram_gbs.push_back(std::move(dram_row));
    }
    checker.finish();
    return result;
}

}  // namespace hsw::survey
