#include "survey/table2_system.hpp"

#include "arch/generation.hpp"
#include "util/table.hpp"

namespace hsw::survey {

std::string SystemReport::render() const {
    util::Table t{"Table II: test system details"};
    t.set_header({"Property", "Value"});
    t.add_row({"Processor", "2x " + processor});
    t.add_row({"Frequency range (selectable p-states)",
               util::Table::fmt(min_ghz, 1) + " - " + util::Table::fmt(nominal_ghz, 1) +
                   " GHz"});
    t.add_row({"Turbo frequency", "up to " + util::Table::fmt(max_turbo_ghz, 1) + " GHz"});
    t.add_row({"AVX base frequency", util::Table::fmt(avx_base_ghz, 1) + " GHz"});
    t.add_row({"Energy perf. bias", epb});
    t.add_row({"Energy-efficient turbo (EET)", eet_enabled ? "enabled" : "disabled"});
    t.add_row({"Uncore frequency scaling (UFS)", ufs_enabled ? "enabled" : "disabled"});
    t.add_row({"Per-core p-states (PCPS)", pcps_enabled ? "enabled" : "disabled"});
    t.add_row({"Idle power (fan speed maximum)",
               util::Table::fmt(idle_ac_watts, 1) + " W"});
    t.add_row({"Power meter", "ZES LMG450 (model), 0.07 % + 0.23 W"});
    return t.render();
}

SystemReport table2(util::Time idle_window) {
    core::Node node;  // the default config *is* the paper's test system
    node.clear_all_workloads();
    node.run_for(util::Time::ms(100));  // settle

    const util::Time t0 = node.now();
    node.run_for(idle_window);
    const util::Time t1 = node.now();

    const auto& sku = node.sku();
    const auto traits = arch::traits(sku.generation);
    SystemReport r;
    r.processor = std::string{sku.model};
    r.min_ghz = sku.min_frequency.as_ghz();
    r.nominal_ghz = sku.nominal_frequency.as_ghz();
    r.max_turbo_ghz = sku.turbo_bins.front().as_ghz();
    r.avx_base_ghz = sku.avx_base_frequency.as_ghz();
    r.epb = "balanced";
    r.eet_enabled = true;
    r.ufs_enabled = traits.uncore_clocking == arch::UncoreClocking::IndependentUfs;
    r.pcps_enabled = traits.per_core_pstates;
    r.idle_ac_watts = node.meter().average(t0, t1).as_watts();
    return r;
}

}  // namespace hsw::survey
