#include "survey/table1_microarch.hpp"

#include "util/table.hpp"

namespace hsw::survey {

double MicroarchComparison::flops_ratio() const {
    return static_cast<double>(hsw->flops_per_cycle_double) /
           static_cast<double>(snb->flops_per_cycle_double);
}

double MicroarchComparison::l1_bandwidth_ratio() const {
    return static_cast<double>(hsw->l1d_load_bytes_per_cycle +
                               hsw->l1d_store_bytes_per_cycle) /
           static_cast<double>(snb->l1d_load_bytes_per_cycle +
                               snb->l1d_store_bytes_per_cycle);
}

double MicroarchComparison::l2_bandwidth_ratio() const {
    return static_cast<double>(hsw->l2_bytes_per_cycle) /
           static_cast<double>(snb->l2_bytes_per_cycle);
}

double MicroarchComparison::dram_bandwidth_ratio() const {
    return hsw->dram_bandwidth_gbs / snb->dram_bandwidth_gbs;
}

std::string MicroarchComparison::render() const {
    util::Table t{"Table I: Comparison of Sandy Bridge and Haswell microarchitecture"};
    t.set_header({"Microarchitecture", std::string{snb->name}, std::string{hsw->name}});
    auto u = [](unsigned v) { return std::to_string(v); };
    t.add_row({"Decode (x86/cycle)", u(snb->decode_per_cycle), u(hsw->decode_per_cycle)});
    t.add_row({"Allocation queue",
               u(snb->allocation_queue) + (snb->allocation_queue_per_thread ? "/thread" : ""),
               u(hsw->allocation_queue) + (hsw->allocation_queue_per_thread ? "/thread" : "")});
    t.add_row({"Execute (uops/cycle)", u(snb->execute_uops_per_cycle),
               u(hsw->execute_uops_per_cycle)});
    t.add_row({"Retire (uops/cycle)", u(snb->retire_uops_per_cycle),
               u(hsw->retire_uops_per_cycle)});
    t.add_row({"Scheduler entries", u(snb->scheduler_entries), u(hsw->scheduler_entries)});
    t.add_row({"ROB entries", u(snb->rob_entries), u(hsw->rob_entries)});
    t.add_row({"INT/FP register file",
               u(snb->int_register_file) + "/" + u(snb->fp_register_file),
               u(hsw->int_register_file) + "/" + u(hsw->fp_register_file)});
    t.add_row({"SIMD ISA", std::string{snb->simd_isa}, std::string{hsw->simd_isa}});
    t.add_row({"FPU width", snb->has_fma ? "2x256 bit FMA" : "2x256 bit (1 add, 1 mul)",
               hsw->has_fma ? "2x256 bit FMA" : "2x256 bit (1 add, 1 mul)"});
    t.add_row({"FLOPS/cycle (double)", u(snb->flops_per_cycle_double),
               u(hsw->flops_per_cycle_double)});
    t.add_row({"Load/store buffers", u(snb->load_buffers) + "/" + u(snb->store_buffers),
               u(hsw->load_buffers) + "/" + u(hsw->store_buffers)});
    t.add_row({"L1D load+store (B/cycle)",
               u(snb->l1d_load_bytes_per_cycle) + "+" + u(snb->l1d_store_bytes_per_cycle),
               u(hsw->l1d_load_bytes_per_cycle) + "+" + u(hsw->l1d_store_bytes_per_cycle)});
    t.add_row({"L2 bytes/cycle", u(snb->l2_bytes_per_cycle), u(hsw->l2_bytes_per_cycle)});
    t.add_row({"Supported memory", std::string{snb->supported_memory},
               std::string{hsw->supported_memory}});
    t.add_row({"DRAM bandwidth (GB/s)", util::Table::fmt(snb->dram_bandwidth_gbs, 1),
               util::Table::fmt(hsw->dram_bandwidth_gbs, 1)});
    t.add_row({"QPI speed (GT/s)", util::Table::fmt(snb->qpi_speed_gts, 1),
               util::Table::fmt(hsw->qpi_speed_gts, 1)});
    return t.render();
}

MicroarchComparison table1() {
    return MicroarchComparison{&arch::sandy_bridge_ep_params(), &arch::haswell_ep_params()};
}

}  // namespace hsw::survey
