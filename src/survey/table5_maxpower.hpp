// Table V: maximum node power consumption -- FIRESTARTER vs LINPACK vs
// mprime across {2.5 GHz, turbo} x EPB {power, balanced, performance},
// Hyper-Threading off. For each configuration the highest-average AC window
// is extracted (the paper uses 1 minute) together with the measured core
// frequency over that window.
#pragma once

#include <string>
#include <vector>

#include "msr/msr_file.hpp"
#include "util/units.hpp"
#include "workloads/workload.hpp"

namespace hsw::survey {

struct MaxPowerCell {
    std::string workload;
    bool turbo_setting = false;   // false = fixed 2.5 GHz request
    std::string epb;              // "power" / "bal" / "perf"
    double ac_watts = 0.0;        // best window average
    double core_ghz = 0.0;        // measured over the same window
};

struct MaxPowerResult {
    std::vector<MaxPowerCell> cells;
    [[nodiscard]] std::string render() const;
    [[nodiscard]] const MaxPowerCell& find(const std::string& workload, bool turbo,
                                           const std::string& epb) const;
    /// Max/min AC over all cells for a workload (power constancy summary).
    [[nodiscard]] double max_ac(const std::string& workload) const;
};

struct MaxPowerConfig {
    util::Time run_time = util::Time::sec(30);
    util::Time window = util::Time::sec(10);  // paper: 60 s over a 1000 s run
    std::uint64_t seed = 0xC0FFEE;
};

[[nodiscard]] MaxPowerResult table5(const MaxPowerConfig& cfg = {});

/// One Table V cell (workload x frequency setting x EPB) on its own node --
/// the independent unit the experiment engine fans out; table5() is the
/// ordered loop over all 18 cells.
[[nodiscard]] MaxPowerCell table5_cell(const workloads::Workload& w, bool turbo_setting,
                                       msr::EpbPolicy epb, const MaxPowerConfig& cfg = {});

}  // namespace hsw::survey
