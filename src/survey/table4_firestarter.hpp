// Table IV: FIRESTARTER under different frequency settings (turbo, 2.5 ..
// 2.1 GHz) with Hyper-Threading. Reports the median over per-second LIKWID
// samples of core frequency, uncore frequency and GIPS (instructions per
// second of one hardware thread), for both processors.
//
// The headline result: lowering the setting from turbo to 2.3 GHz *raises*
// IPS by ~1 % because the PCU reassigns the freed power budget to the
// uncore.
#pragma once

#include <string>
#include <vector>

#include "core/node.hpp"
#include "util/units.hpp"

namespace hsw::survey {

struct FirestarterRow {
    bool turbo = false;
    double set_ghz = 0.0;
    double core_ghz[2] = {0.0, 0.0};    // median, per socket
    double uncore_ghz[2] = {0.0, 0.0};
    double gips[2] = {0.0, 0.0};        // per hardware thread
    double rapl_pkg_watts[2] = {0.0, 0.0};
};

struct FirestarterSweepResult {
    std::vector<FirestarterRow> rows;
    [[nodiscard]] std::string render() const;
    /// Best row by socket-1 GIPS (the paper's crossover discussion).
    [[nodiscard]] const FirestarterRow& best_by_gips() const;
    [[nodiscard]] const FirestarterRow& turbo_row() const;
};

struct FirestarterSweepConfig {
    unsigned samples = 50;              // per-second samples per setting
    util::Time sample_period = util::Time::sec(1);
    bool hyperthreading = true;
    std::uint64_t seed = 0xC0FFEE;
};

[[nodiscard]] FirestarterSweepResult table4(const FirestarterSweepConfig& cfg = {});

}  // namespace hsw::survey
