// Figure 3: histogram of p-state transition latencies (1.2 <-> 1.3 GHz)
// under four request-timing regimes: random, immediately after the last
// change, 400 us after, and ~500 us after (the racy case).
#pragma once

#include <string>
#include <vector>

#include "analysis/audit_config.hpp"
#include "tools/ftalat.hpp"
#include "util/histogram.hpp"

namespace hsw::survey {

struct PstateLatencySeries {
    std::string label;
    tools::FtalatResult result;
};

struct PstateLatencyResult {
    std::vector<PstateLatencySeries> series;
    [[nodiscard]] std::string render(std::size_t bins = 28) const;
    [[nodiscard]] util::Histogram histogram(std::size_t idx, std::size_t bins = 28) const;
};

struct PstateLatencyConfig {
    unsigned samples = 1000;
    std::uint64_t seed = 0xC0FFEE;
    /// Invariant audit applied to the node for the whole run (off by default).
    analysis::AuditConfig audit;
};

[[nodiscard]] PstateLatencyResult fig3(const PstateLatencyConfig& cfg = {});

}  // namespace hsw::survey
