#include "survey/fig2_rapl.hpp"

#include "analysis/invariant_checker.hpp"
#include "arch/sku.hpp"
#include "platform/registry.hpp"
#include "util/table.hpp"

namespace hsw::survey {

std::string RaplAccuracyResult::render() const {
    const auto traits = arch::traits(generation);
    util::Table t{std::string{"Figure 2 data: RAPL (pkg+DRAM, both sockets) vs AC -- "} +
                  std::string{traits.name}};
    t.set_header({"workload", "cores/socket", "thr/core", "AC (W)", "RAPL (W)"});
    for (const auto& p : report.points) {
        t.add_row({p.workload, std::to_string(p.active_cores_per_socket),
                   std::to_string(p.threads_per_core), util::Table::fmt(p.ac_watts, 1),
                   util::Table::fmt(p.rapl_watts, 1)});
    }
    std::string out = t.render();
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "linear fit   : RAPL = %.4f * AC %+.1f   (R^2 = %.5f)\n"
                  "quadratic fit: a=%.6f b=%.4f c=%.1f     (R^2 = %.5f)\n"
                  "per-workload slope spread: %.1f %%  (%s backend)\n",
                  report.linear.slope, report.linear.intercept, report.linear.r_squared,
                  report.quadratic.a, report.quadratic.b, report.quadratic.c,
                  report.quadratic.r_squared, report.slope_spread * 100.0,
                  traits.rapl_backend == arch::RaplBackend::Measured ? "measured"
                                                                     : "modeled");
    out += buf;
    return out;
}

RaplAccuracyResult fig2_run(arch::Generation generation, util::Time window,
                            std::uint64_t seed, const analysis::AuditConfig& audit) {
    core::NodeConfig cfg;
    cfg.seed = seed;
    cfg.sku = &platform::backend_for(generation).survey_sku();
    core::Node node{cfg};
    analysis::InvariantChecker checker{audit};
    checker.attach(node);
    tools::RaplValidator validator{node};
    RaplAccuracyResult result{generation, validator.run_suite(window)};
    checker.finish();
    return result;
}

}  // namespace hsw::survey
