// Figures 5/6: C3 and C6 wake-up latencies vs core frequency for the three
// scenarios (local / remote-active / remote-idle aka package state), on
// Haswell-EP with the Sandy Bridge-EP comparison series.
#pragma once

#include <string>
#include <vector>

#include "analysis/audit_config.hpp"
#include "arch/generation.hpp"
#include "cstates/cstate.hpp"
#include "cstates/wake_latency.hpp"
#include "util/units.hpp"

namespace hsw::survey {

struct CstateLatencyPoint {
    double freq_ghz = 0.0;
    double latency_us = 0.0;   // mean over probe samples
    double stddev_us = 0.0;
};

struct CstateLatencySeries {
    arch::Generation generation;
    cstates::CState state;
    cstates::WakeScenario scenario;
    std::vector<CstateLatencyPoint> points;
};

struct CstateLatencyResult {
    cstates::CState state;  // C3 for Fig. 5, C6 for Fig. 6
    std::vector<CstateLatencySeries> series;
    [[nodiscard]] std::string render() const;
    [[nodiscard]] const CstateLatencySeries& find(arch::Generation g,
                                                  cstates::WakeScenario s) const;
};

struct CstateSweepConfig {
    unsigned samples_per_point = 40;
    std::uint64_t seed = 0xC0FFEE;
    /// Invariant audit applied to each node built for the sweep (off by
    /// default).
    analysis::AuditConfig audit;
};

/// Fig. 5 (state = C3) or Fig. 6 (state = C6).
[[nodiscard]] CstateLatencyResult fig56(cstates::CState state,
                                        const CstateSweepConfig& cfg = {});

/// One generation's share of the Fig. 5/6 sweep (all three scenarios on a
/// node built for `generation`). This is the independent unit the
/// experiment engine fans out: fig56() is exactly the concatenation of
/// fig56_generation() over [Haswell-EP, Sandy Bridge-EP], so parallel
/// per-generation jobs reproduce the serial sweep byte for byte.
[[nodiscard]] std::vector<CstateLatencySeries> fig56_generation(
    cstates::CState state, arch::Generation generation, const CstateSweepConfig& cfg = {});

}  // namespace hsw::survey
