#include "survey/table4_firestarter.hpp"

#include <array>
#include <stdexcept>

#include "perfmon/counters.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workloads/mixes.hpp"

namespace hsw::survey {

namespace {

FirestarterRow measure_setting(core::Node& node, util::Frequency setting, bool turbo,
                               const FirestarterSweepConfig& cfg) {
    node.set_pstate_all(setting);
    node.run_for(util::Time::ms(20));  // settle PCU equilibrium/dither

    perfmon::CounterReader reader{node.msrs(), node.sku().nominal_frequency};

    // Sample one core per processor once per second, LIKWID-style.
    std::vector<double> core_f[2];
    std::vector<double> uncore_f[2];
    std::vector<double> gips[2];
    std::vector<double> pkg_w[2];

    perfmon::CounterSnapshot prev[2] = {
        reader.snapshot(node.cpu_id(0, 0), node.now()),
        reader.snapshot(node.cpu_id(1, 0), node.now()),
    };
    auto rapl_prev = std::array{
        node.socket(0).rapl().true_pkg_energy().as_joules(),
        node.socket(1).rapl().true_pkg_energy().as_joules(),
    };

    const double threads = cfg.hyperthreading ? 2.0 : 1.0;
    for (unsigned i = 0; i < cfg.samples; ++i) {
        node.run_for(cfg.sample_period);
        for (unsigned s = 0; s < 2; ++s) {
            const auto snap = reader.snapshot(node.cpu_id(s, 0), node.now());
            const auto m = reader.derive(prev[s], snap);
            prev[s] = snap;
            core_f[s].push_back(m.effective_frequency.as_ghz());
            uncore_f[s].push_back(m.uncore_frequency.as_ghz());
            gips[s].push_back(m.giga_instructions_per_sec / threads);
            const double e = node.socket(s).rapl().true_pkg_energy().as_joules();
            pkg_w[s].push_back((e - rapl_prev[s]) / cfg.sample_period.as_seconds());
            rapl_prev[s] = e;
        }
    }

    FirestarterRow row;
    row.turbo = turbo;
    row.set_ghz = turbo ? 0.0 : setting.as_ghz();
    for (unsigned s = 0; s < 2; ++s) {
        row.core_ghz[s] = util::median(core_f[s]);
        row.uncore_ghz[s] = util::median(uncore_f[s]);
        row.gips[s] = util::median(gips[s]);
        row.rapl_pkg_watts[s] = util::median(pkg_w[s]);
    }
    return row;
}

}  // namespace

std::string FirestarterSweepResult::render() const {
    util::Table t{
        "Table IV: FIRESTARTER performance at different frequency settings\n"
        "(Hyper-Threading, turbo enabled; GIPS = per hardware thread)"};
    t.set_header({"Setting [GHz]", "core P0", "core P1", "uncore P0", "uncore P1",
                  "GIPS P0", "GIPS P1", "pkg W P0", "pkg W P1"});
    for (const auto& r : rows) {
        t.add_row({r.turbo ? "Turbo" : util::Table::fmt(r.set_ghz, 1),
                   util::Table::fmt(r.core_ghz[0], 2), util::Table::fmt(r.core_ghz[1], 2),
                   util::Table::fmt(r.uncore_ghz[0], 2),
                   util::Table::fmt(r.uncore_ghz[1], 2), util::Table::fmt(r.gips[0], 2),
                   util::Table::fmt(r.gips[1], 2),
                   util::Table::fmt(r.rapl_pkg_watts[0], 1),
                   util::Table::fmt(r.rapl_pkg_watts[1], 1)});
    }
    return t.render();
}

const FirestarterRow& FirestarterSweepResult::best_by_gips() const {
    if (rows.empty()) throw std::logic_error{"empty sweep"};
    const FirestarterRow* best = &rows.front();
    for (const auto& r : rows) {
        if (r.gips[1] > best->gips[1]) best = &r;
    }
    return *best;
}

const FirestarterRow& FirestarterSweepResult::turbo_row() const {
    for (const auto& r : rows) {
        if (r.turbo) return r;
    }
    throw std::logic_error{"no turbo row"};
}

FirestarterSweepResult table4(const FirestarterSweepConfig& cfg) {
    core::NodeConfig node_cfg;
    node_cfg.seed = cfg.seed;
    core::Node node{node_cfg};

    node.set_all_workloads(&workloads::firestarter(), cfg.hyperthreading ? 2 : 1);

    FirestarterSweepResult result;
    const unsigned nominal = node.sku().nominal_frequency.ratio();
    result.rows.push_back(
        measure_setting(node, util::Frequency::from_ratio(nominal + 1), true, cfg));
    for (unsigned r = nominal; r >= 21; --r) {
        result.rows.push_back(
            measure_setting(node, util::Frequency::from_ratio(r), false, cfg));
    }
    return result;
}

}  // namespace hsw::survey
