// Table I: Sandy Bridge-EP vs Haswell-EP microarchitecture comparison.
//
// Renders the parameter database side by side and cross-checks the derived
// quantities the rest of the simulator relies on (peak FLOPS/cycle, L1/L2
// bandwidth doubling, DRAM peak).
#pragma once

#include <string>

#include "arch/microarch.hpp"

namespace hsw::survey {

struct MicroarchComparison {
    const arch::MicroarchParams* snb;
    const arch::MicroarchParams* hsw;

    /// Derived checks (Table I's punchlines).
    [[nodiscard]] double flops_ratio() const;        // 2x from FMA
    [[nodiscard]] double l1_bandwidth_ratio() const; // 2x
    [[nodiscard]] double l2_bandwidth_ratio() const; // 2x
    [[nodiscard]] double dram_bandwidth_ratio() const;

    [[nodiscard]] std::string render() const;
};

[[nodiscard]] MicroarchComparison table1();

}  // namespace hsw::survey
