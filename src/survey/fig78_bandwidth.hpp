// Figure 7: relative L3 / DRAM read bandwidth at maximum concurrency vs
// core frequency, normalized to base frequency, across generations
// (Westmere-EP / Sandy Bridge-EP / Haswell-EP).
// Figure 8: absolute L3 and DRAM read bandwidth over the full
// (concurrency x frequency) grid on Haswell-EP.
#pragma once

#include <string>
#include <vector>

#include "analysis/audit_config.hpp"
#include "arch/generation.hpp"
#include "tools/membench.hpp"
#include "util/units.hpp"

namespace hsw::survey {

// --- Figure 7 ---

struct RelativeBandwidthPoint {
    double set_ghz = 0.0;
    double relative_l3 = 0.0;    // normalized to base frequency
    double relative_dram = 0.0;
};

struct RelativeBandwidthSeries {
    arch::Generation generation;
    std::vector<RelativeBandwidthPoint> points;
};

struct Fig7Result {
    std::vector<RelativeBandwidthSeries> series;
    [[nodiscard]] std::string render() const;
    [[nodiscard]] const RelativeBandwidthSeries& find(arch::Generation g) const;
};

[[nodiscard]] Fig7Result fig7(std::uint64_t seed = 0xC0FFEE,
                              const analysis::AuditConfig& audit = {});

/// One generation's Fig. 7 series (own node, own audit pass) -- the
/// independent unit the experiment engine fans out; fig7() is the ordered
/// concatenation over [Westmere-EP, Sandy Bridge-EP, Haswell-EP].
[[nodiscard]] RelativeBandwidthSeries fig7_generation(
    arch::Generation generation, std::uint64_t seed = 0xC0FFEE,
    const analysis::AuditConfig& audit = {});

// --- Figure 8 ---

struct Fig8Result {
    std::vector<double> set_ghz;            // frequency axis (ascending, turbo last)
    std::vector<unsigned> threads;          // concurrency axis (1..2*cores)
    // grids indexed [thread_idx][freq_idx]
    std::vector<std::vector<double>> l3_gbs;
    std::vector<std::vector<double>> dram_gbs;
    [[nodiscard]] std::string render() const;
    [[nodiscard]] double at_l3(unsigned thread_idx, unsigned freq_idx) const {
        return l3_gbs.at(thread_idx).at(freq_idx);
    }
    [[nodiscard]] double at_dram(unsigned thread_idx, unsigned freq_idx) const {
        return dram_gbs.at(thread_idx).at(freq_idx);
    }
};

[[nodiscard]] Fig8Result fig8(std::uint64_t seed = 0xC0FFEE,
                              const analysis::AuditConfig& audit = {});

}  // namespace hsw::survey
