#include "survey/table3_uncore.hpp"

#include "msr/addresses.hpp"
#include "util/table.hpp"
#include "workloads/mixes.hpp"

namespace hsw::survey {

namespace {

/// Uncore frequency of a socket measured LIKWID-style: UBOXFIX delta / time.
double measure_uncore_ghz(core::Node& node, unsigned socket, util::Time dwell) {
    const unsigned cpu = node.cpu_id(socket, 0);
    const auto before = node.msrs().read(cpu, msr::U_MSR_PMON_UCLK_FIXED_CTR);
    node.run_for(dwell);
    const auto after = node.msrs().read(cpu, msr::U_MSR_PMON_UCLK_FIXED_CTR);
    return static_cast<double>(after - before) / dwell.as_seconds() * 1e-9;
}

UncoreTableRow measure_setting(core::Node& node, util::Frequency setting, bool turbo,
                               util::Time dwell) {
    node.set_pstate_all(setting);
    node.run_for(util::Time::ms(5));  // a few opportunity periods to settle

    UncoreTableRow row;
    row.set_ghz = turbo ? 0.0 : setting.as_ghz();
    row.turbo = turbo;
    // Measure both sockets over the same window: split the dwell.
    const unsigned cpu0 = node.cpu_id(0, 0);
    const unsigned cpu1 = node.cpu_id(1, 0);
    const auto b0 = node.msrs().read(cpu0, msr::U_MSR_PMON_UCLK_FIXED_CTR);
    const auto b1 = node.msrs().read(cpu1, msr::U_MSR_PMON_UCLK_FIXED_CTR);
    node.run_for(dwell);
    const auto a0 = node.msrs().read(cpu0, msr::U_MSR_PMON_UCLK_FIXED_CTR);
    const auto a1 = node.msrs().read(cpu1, msr::U_MSR_PMON_UCLK_FIXED_CTR);
    row.active_uncore_ghz =
        static_cast<double>(a0 - b0) / dwell.as_seconds() * 1e-9;
    row.passive_uncore_ghz =
        static_cast<double>(a1 - b1) / dwell.as_seconds() * 1e-9;
    return row;
}

}  // namespace

std::string UncoreTableResult::render() const {
    util::Table t{
        "Table III: uncore frequencies, single-threaded no-memory-stalls scenario\n"
        "(while(1) on processor 0; uncore in GHz)"};
    t.set_header({"Core setting [GHz]", "Active uncore", "Passive uncore",
                  "Active uncore (EPB=perf)"});
    for (const auto& r : rows) {
        t.add_row({r.turbo ? "Turbo" : util::Table::fmt(r.set_ghz, 1),
                   util::Table::fmt(r.active_uncore_ghz, 2),
                   util::Table::fmt(r.passive_uncore_ghz, 2),
                   util::Table::fmt(r.active_uncore_perf_epb_ghz, 2)});
    }
    return t.render();
}

UncoreTableResult table3(util::Time dwell, std::uint64_t seed) {
    core::NodeConfig cfg;
    cfg.seed = seed;
    core::Node node{cfg};

    // One busy loop on core 0 of processor 0; everything else parked.
    node.clear_all_workloads();
    node.set_workload(node.cpu_id(0, 0), &workloads::while_one(), 1);

    UncoreTableResult result;

    // Turbo row first, then 2.5 down to 1.2 GHz (the paper's columns).
    const unsigned nominal = node.sku().nominal_frequency.ratio();
    std::vector<std::pair<util::Frequency, bool>> settings;
    settings.emplace_back(util::Frequency::from_ratio(nominal + 1), true);
    for (unsigned r = nominal; r >= node.sku().min_frequency.ratio(); --r) {
        settings.emplace_back(util::Frequency::from_ratio(r), false);
    }

    for (const auto& [setting, turbo] : settings) {
        node.set_epb(msr::EpbPolicy::Balanced);
        UncoreTableRow row = measure_setting(node, setting, turbo, dwell);
        // EPB=performance variant (Table III footnote: 3.0 GHz).
        node.set_epb(msr::EpbPolicy::Performance);
        node.run_for(util::Time::ms(5));
        row.active_uncore_perf_epb_ghz = measure_uncore_ghz(node, 0, dwell);
        node.set_epb(msr::EpbPolicy::Balanced);
        result.rows.push_back(row);
    }
    return result;
}

}  // namespace hsw::survey
