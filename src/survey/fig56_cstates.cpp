#include "survey/fig56_cstates.hpp"

#include <stdexcept>

#include "analysis/invariant_checker.hpp"
#include "arch/sku.hpp"
#include "core/node.hpp"
#include "platform/registry.hpp"
#include "tools/cstate_probe.hpp"
#include "util/table.hpp"

namespace hsw::survey {

std::string CstateLatencyResult::render() const {
    util::Table t{std::string{"Figure "} + (state == cstates::CState::C3 ? "5" : "6") +
                  " data: " + std::string{cstates::name(state)} +
                  " wake-up latencies (us) vs core frequency"};
    t.set_header({"generation", "scenario", "frequency [GHz]", "latency [us]", "stddev"});
    for (const auto& s : series) {
        for (const auto& p : s.points) {
            t.add_row({std::string{arch::traits(s.generation).name},
                       std::string{cstates::name(s.scenario)},
                       util::Table::fmt(p.freq_ghz, 1), util::Table::fmt(p.latency_us, 2),
                       util::Table::fmt(p.stddev_us, 2)});
        }
        t.add_separator();
    }
    return t.render();
}

const CstateLatencySeries& CstateLatencyResult::find(arch::Generation g,
                                                     cstates::WakeScenario s) const {
    for (const auto& ser : series) {
        if (ser.generation == g && ser.scenario == s) return ser;
    }
    throw std::out_of_range{"no such series"};
}

std::vector<CstateLatencySeries> fig56_generation(cstates::CState state,
                                                  arch::Generation generation,
                                                  const CstateSweepConfig& cfg) {
    const cstates::WakeScenario scenarios[] = {cstates::WakeScenario::Local,
                                               cstates::WakeScenario::RemoteActive,
                                               cstates::WakeScenario::RemoteIdle};

    core::NodeConfig node_cfg;
    node_cfg.seed = cfg.seed;
    node_cfg.sku = &platform::backend_for(generation).survey_sku();
    core::Node node{node_cfg};
    analysis::InvariantChecker checker{cfg.audit};
    checker.attach(node);
    tools::CstateProbe probe{node};

    std::vector<CstateLatencySeries> out;
    for (cstates::WakeScenario scenario : scenarios) {
        CstateLatencySeries series;
        series.generation = generation;
        series.state = state;
        series.scenario = scenario;

        const unsigned min_r = node.sku().min_frequency.ratio();
        const unsigned max_r = node.sku().nominal_frequency.ratio();
        for (unsigned r = min_r; r <= max_r; ++r) {
            tools::CstateProbeConfig pc;
            pc.state = state;
            pc.scenario = scenario;
            pc.core_frequency = util::Frequency::from_ratio(r);
            pc.samples = cfg.samples_per_point;
            const auto pr = probe.measure(pc);
            series.points.push_back(
                CstateLatencyPoint{pc.core_frequency.as_ghz(), pr.mean(), pr.stddev()});
        }
        out.push_back(std::move(series));
    }
    checker.finish();
    return out;
}

CstateLatencyResult fig56(cstates::CState state, const CstateSweepConfig& cfg) {
    CstateLatencyResult result;
    result.state = state;

    const arch::Generation generations[] = {arch::Generation::HaswellEP,
                                            arch::Generation::SandyBridgeEP};
    for (arch::Generation gen : generations) {
        auto series = fig56_generation(state, gen, cfg);
        for (auto& s : series) result.series.push_back(std::move(s));
    }
    return result;
}

}  // namespace hsw::survey
