#include "survey/table5_maxpower.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/node.hpp"
#include "msr/addresses.hpp"
#include "perfmon/counters.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workloads/mixes.hpp"

namespace hsw::survey {

MaxPowerCell table5_cell(const workloads::Workload& w, bool turbo_setting,
                         msr::EpbPolicy epb, const MaxPowerConfig& cfg) {
    core::NodeConfig node_cfg;
    node_cfg.seed = cfg.seed;
    core::Node node{node_cfg};

    node.set_epb(epb);
    node.set_all_workloads(&w, 1);  // Hyper-Threading not active (Table V)
    if (turbo_setting) {
        node.request_turbo_all();
    } else {
        node.set_pstate_all(util::Frequency::ghz(2.5));
    }
    node.run_for(util::Time::ms(100));  // settle

    // Record frequency samples once per meter sample so the best AC window
    // can be paired with the frequency over the same window.
    perfmon::CounterReader reader{node.msrs(), node.sku().nominal_frequency};
    std::vector<double> times;
    std::vector<double> freqs;
    auto prev = reader.snapshot(node.cpu_id(0, 0), node.now());
    const util::Time start = node.now();
    const util::Time step = util::Time::ms(250);
    while (node.now() - start < cfg.run_time) {
        node.run_for(step);
        const auto snap = reader.snapshot(node.cpu_id(0, 0), node.now());
        const auto m = reader.derive(prev, snap);
        prev = snap;
        times.push_back(node.now().as_seconds());
        freqs.push_back(m.effective_frequency.as_ghz());
    }

    // Best AC window from the LMG450 series.
    std::vector<double> ac_times;
    std::vector<double> ac_values;
    for (const auto& s : node.meter().series()) {
        if (s.when >= start) {
            ac_times.push_back(s.when.as_seconds());
            ac_values.push_back(s.power.as_watts());
        }
    }
    const auto best = util::best_window(ac_times, ac_values, cfg.window.as_seconds());

    // Mean frequency over that window.
    std::vector<double> window_freqs;
    for (std::size_t i = 0; i < times.size(); ++i) {
        if (times[i] >= best.start_time &&
            times[i] < best.start_time + cfg.window.as_seconds()) {
            window_freqs.push_back(freqs[i]);
        }
    }

    MaxPowerCell cell;
    cell.workload = std::string{w.name};
    cell.turbo_setting = turbo_setting;
    cell.epb = epb == msr::EpbPolicy::Performance ? "perf"
               : epb == msr::EpbPolicy::Balanced  ? "bal"
                                                  : "power";
    cell.ac_watts = best.average;
    cell.core_ghz = window_freqs.empty() ? util::mean(freqs) : util::mean(window_freqs);
    return cell;
}

std::string MaxPowerResult::render() const {
    util::Table t{
        "Table V: average power and measured core frequency over the best window\n"
        "(Hyper-Threading not active)"};
    t.set_header({"Selected", "EPB", "FIRESTARTER", "LINPACK", "mprime"});
    auto row_for = [&](bool turbo, const std::string& epb, const char* metric) {
        std::vector<std::string> row{
            std::string{turbo ? "Turbo" : "2500 MHz"} + " " + metric, epb};
        for (const char* wl : {"FIRESTARTER", "LINPACK", "mprime"}) {
            const auto& c = find(wl, turbo, epb);
            row.push_back(metric == std::string{"power"}
                              ? util::Table::fmt(c.ac_watts, 1)
                              : util::Table::fmt(c.core_ghz, 2));
        }
        t.add_row(std::move(row));
    };
    for (const char* metric : {"power", "freq"}) {
        for (bool turbo : {false, true}) {
            for (const char* epb : {"power", "bal", "perf"}) row_for(turbo, epb, metric);
        }
        t.add_separator();
    }
    return t.render();
}

const MaxPowerCell& MaxPowerResult::find(const std::string& workload, bool turbo,
                                         const std::string& epb) const {
    for (const auto& c : cells) {
        if (c.workload == workload && c.turbo_setting == turbo && c.epb == epb) return c;
    }
    throw std::out_of_range{"no such Table V cell"};
}

double MaxPowerResult::max_ac(const std::string& workload) const {
    double best = 0.0;
    for (const auto& c : cells) {
        if (c.workload == workload) best = std::max(best, c.ac_watts);
    }
    return best;
}

MaxPowerResult table5(const MaxPowerConfig& cfg) {
    MaxPowerResult result;
    const workloads::Workload* wls[] = {&workloads::firestarter(), &workloads::linpack(),
                                        &workloads::mprime()};
    for (const auto* w : wls) {
        for (bool turbo : {false, true}) {
            for (msr::EpbPolicy epb : {msr::EpbPolicy::EnergySaving,
                                       msr::EpbPolicy::Balanced,
                                       msr::EpbPolicy::Performance}) {
                result.cells.push_back(table5_cell(*w, turbo, epb, cfg));
            }
        }
    }
    return result;
}

}  // namespace hsw::survey
