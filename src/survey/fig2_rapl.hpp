// Figure 2: RAPL vs AC reference power, Sandy Bridge-EP (modeled RAPL,
// per-workload bias) vs Haswell-EP (measured RAPL, single quadratic).
#pragma once

#include <string>

#include "arch/generation.hpp"
#include "tools/rapl_validate.hpp"
#include "util/units.hpp"

namespace hsw::survey {

struct RaplAccuracyResult {
    arch::Generation generation;
    tools::RaplValidationReport report;

    [[nodiscard]] std::string render() const;
};

/// Run the Fig. 2 suite on a freshly built node of the given generation.
[[nodiscard]] RaplAccuracyResult fig2_run(arch::Generation generation,
                                          util::Time window = util::Time::sec(4),
                                          std::uint64_t seed = 0xC0FFEE);

}  // namespace hsw::survey
