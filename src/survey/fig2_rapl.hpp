// Figure 2: RAPL vs AC reference power, Sandy Bridge-EP (modeled RAPL,
// per-workload bias) vs Haswell-EP (measured RAPL, single quadratic).
#pragma once

#include <string>

#include "analysis/audit_config.hpp"
#include "arch/generation.hpp"
#include "tools/rapl_validate.hpp"
#include "util/units.hpp"

namespace hsw::survey {

struct RaplAccuracyResult {
    arch::Generation generation;
    tools::RaplValidationReport report;

    [[nodiscard]] std::string render() const;
};

/// Run the Fig. 2 suite on a freshly built node of the given generation.
/// `audit` attaches an analysis::InvariantChecker to the node for the whole
/// sweep (off by default; strict mode throws analysis::AuditError on any
/// model-invariant violation).
[[nodiscard]] RaplAccuracyResult fig2_run(arch::Generation generation,
                                          util::Time window = util::Time::sec(4),
                                          std::uint64_t seed = 0xC0FFEE,
                                          const analysis::AuditConfig& audit = {});

}  // namespace hsw::survey
