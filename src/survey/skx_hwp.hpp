// Skylake-SP cross-generation extensions: the HWP/EPP ladder sweep and the
// AVX-512 license-level sweep (Schöne et al.'s follow-up survey methodology
// applied to the simulated Skylake-SP backend). Both run on a node built
// from the Skylake-SP platform backend's survey SKU (Xeon Gold 6150).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/audit_config.hpp"
#include "util/units.hpp"

namespace hsw::survey {

struct SkxSweepConfig {
    /// Settle time after each setting change before the measurement window
    /// opens (covers several PCU opportunity periods plus ramp).
    util::Time settle = util::Time::ms(50);
    /// Measurement window per sweep point.
    util::Time window = util::Time::ms(500);
    std::uint64_t seed = 0xC0FFEE;
    analysis::AuditConfig audit;
};

/// One EPP setting under full FIRESTARTER load with HWP enabled and an
/// autonomous request (min/max/desired = 0): where the EPP ladder lands.
struct HwpEppPoint {
    unsigned epp = 0;
    double core_ghz = 0.0;    // APERF/MPERF-derived mean, cpu 0
    double uncore_ghz = 0.0;  // socket 0
    double rapl_pkg_watts = 0.0;
};

struct HwpEppResult {
    std::vector<HwpEppPoint> points;
    [[nodiscard]] std::string render() const;
};

/// Sweep the EPP ladder 0..255 with HWP enabled (MSR_PM_ENABLE,
/// IA32_HWP_REQUEST written through the MSR file, like an OS would).
[[nodiscard]] HwpEppResult skx_hwp_epp(const SkxSweepConfig& cfg = {});

/// One AVX-512 density point at the turbo request: the license level the
/// PCU settles on and the frequency/power cost of holding it.
struct Avx512LicensePoint {
    double avx512_fraction = 0.0;
    unsigned license_level = 0;  // 0 none, 1 AVX, 2 AVX-512
    double core_ghz = 0.0;
    double rapl_pkg_watts = 0.0;
};

struct Avx512LicenseResult {
    std::vector<Avx512LicensePoint> points;
    [[nodiscard]] std::string render() const;
};

/// Sweep FIRESTARTER variants with increasing 512-bit instruction density
/// across the two-level license model.
[[nodiscard]] Avx512LicenseResult skx_avx512_license(const SkxSweepConfig& cfg = {});

}  // namespace hsw::survey
