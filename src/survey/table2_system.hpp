// Table II: test system details, including the measured idle power at
// maximum fan speed (261.5 W in the paper).
#pragma once

#include <string>

#include "core/node.hpp"

namespace hsw::survey {

struct SystemReport {
    std::string processor;
    double min_ghz = 0.0;
    double nominal_ghz = 0.0;
    double max_turbo_ghz = 0.0;
    double avx_base_ghz = 0.0;
    std::string epb;
    bool eet_enabled = true;
    bool ufs_enabled = true;
    bool pcps_enabled = true;
    double idle_ac_watts = 0.0;

    [[nodiscard]] std::string render() const;
};

/// Builds the paper's test system and measures its idle AC power.
[[nodiscard]] SystemReport table2(util::Time idle_window = util::Time::sec(4));

}  // namespace hsw::survey
