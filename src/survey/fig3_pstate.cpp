#include "survey/fig3_pstate.hpp"

#include "analysis/invariant_checker.hpp"
#include "core/node.hpp"

namespace hsw::survey {

util::Histogram PstateLatencyResult::histogram(std::size_t idx, std::size_t bins) const {
    util::Histogram h{0.0, 560.0, bins};
    h.add_all(series.at(idx).result.latencies_us);
    return h;
}

std::string PstateLatencyResult::render(std::size_t bins) const {
    std::string out;
    char buf[256];
    for (std::size_t i = 0; i < series.size(); ++i) {
        const auto& s = series[i];
        std::snprintf(buf, sizeof buf,
                      "--- %s: n=%zu min=%.1f us median=%.1f us max=%.1f us "
                      "(99%% CI +-%.1f us)\n",
                      s.label.c_str(), s.result.latencies_us.size(), s.result.min(),
                      s.result.median(), s.result.max(), s.result.ci99());
        out += buf;
        out += histogram(i, bins).render(46);
    }
    return out;
}

PstateLatencyResult fig3(const PstateLatencyConfig& cfg) {
    core::NodeConfig node_cfg;
    node_cfg.seed = cfg.seed;
    core::Node node{node_cfg};
    analysis::InvariantChecker checker{cfg.audit};
    checker.attach(node);
    tools::Ftalat ftalat{node};

    auto run = [&](tools::DelayMode mode, util::Time fixed, std::string label) {
        tools::FtalatConfig fc;
        fc.cpu = 0;
        fc.from_ratio = 12;  // 1.2 GHz
        fc.to_ratio = 13;    // 1.3 GHz
        fc.delay_mode = mode;
        fc.fixed_delay = fixed;
        fc.samples = cfg.samples;
        return PstateLatencySeries{std::move(label), ftalat.measure(fc)};
    };

    PstateLatencyResult result;
    result.series.push_back(
        run(tools::DelayMode::Random, util::Time::zero(), "random request times"));
    result.series.push_back(run(tools::DelayMode::Immediate, util::Time::zero(),
                                "immediately after last change"));
    result.series.push_back(
        run(tools::DelayMode::Fixed, util::Time::us(400), "400 us after last change"));
    result.series.push_back(
        run(tools::DelayMode::Fixed, util::Time::us(500), "500 us after last change"));
    checker.finish();
    return result;
}

}  // namespace hsw::survey
