// RAPL counter device (Section IV).
//
// Exposes the MSR-level semantics software actually deals with:
//  - raw 32-bit energy counters that wrap,
//  - a package energy unit advertised in MSR_RAPL_POWER_UNIT (2^-14 J),
//  - a DRAM domain whose *correct* unit (15.3 uJ in mode 1) is NOT the one
//    in MSR_RAPL_POWER_UNIT -- using the generic unit yields "unreasonable
//    high values for DRAM power consumption",
//  - DRAM mode 0 producing unspecified values on Haswell-EP,
//  - no PP0 domain on Haswell-EP,
//  - counters that refresh on a ~1 ms cadence,
//  - MSR_PKG_POWER_LIMIT: a writable power cap handed to the PCU.
#pragma once

#include <cstdint>
#include <optional>

#include "arch/generation.hpp"
#include "msr/msr_file.hpp"
#include "rapl/model.hpp"
#include "util/units.hpp"

namespace hsw::rapl {

using util::Energy;
using util::Power;
using util::Time;

enum class Domain { Package, Pp0, Dram };

enum class DramMode {
    Mode0,  // legacy BIOS option: unspecified behavior on Haswell-EP
    Mode1,  // supported mode; energy unit 15.3 uJ
};

class RaplPackage {
public:
    RaplPackage(arch::Generation generation, unsigned socket_id,
                DramMode dram_mode = DramMode::Mode1,
                std::uint64_t noise_seed = 1);

    /// Accumulate true consumption over an interval; the socket calls this
    /// every time machine state changes or a periodic tick fires.
    void integrate(Power pkg_true, Power dram_true, const ActivityVector& av, Time dt);

    /// Publish the accumulated energy into the raw counters (the ~1 ms MSR
    /// refresh); reads between publishes see the last published value.
    void publish();

    /// Raw 32-bit counter values as read from the MSRs.
    [[nodiscard]] std::uint32_t pkg_energy_raw() const { return pkg_raw_; }
    [[nodiscard]] std::uint32_t dram_energy_raw() const { return dram_raw_; }

    /// MSR_RAPL_POWER_UNIT content (power unit 1/8 W, ESU 2^-14 J, time
    /// unit 976 us -- the Haswell encoding).
    [[nodiscard]] std::uint64_t power_unit_msr() const;

    /// Joules per raw count for a domain under the configured mode; this is
    /// what a *correct* reader must use (Section IV).
    [[nodiscard]] double energy_unit(Domain d) const;

    /// True accumulated energies (ground truth, for validation harnesses).
    [[nodiscard]] Energy true_pkg_energy() const { return true_pkg_; }
    [[nodiscard]] Energy true_dram_energy() const { return true_dram_; }

    [[nodiscard]] bool has_domain(Domain d) const;
    [[nodiscard]] DramMode dram_mode() const { return dram_mode_; }

    /// Package power-limit register (MSR 0x610): the PCU consults this.
    void write_power_limit_msr(std::uint64_t value);
    [[nodiscard]] std::uint64_t power_limit_msr() const { return power_limit_raw_; }
    /// Enabled PL1 limit in watts, if set.
    [[nodiscard]] std::optional<Power> active_power_limit() const;

    /// Hook all RAPL MSRs of this package into an MSR file. `cpu_matches`
    /// decides whether a cpu number belongs to this package.
    void attach(msr::MsrFile& file, unsigned first_cpu, unsigned last_cpu);

private:
    arch::Generation generation_;
    DramMode dram_mode_;
    RaplEstimator estimator_;
    util::Rng mode0_rng_;

    Energy true_pkg_;
    Energy true_dram_;
    Energy reported_pkg_;   // estimator output, pre-quantization
    Energy reported_dram_;
    std::uint32_t pkg_raw_ = 0;
    std::uint32_t dram_raw_ = 0;
    std::uint64_t power_limit_raw_;
    unsigned first_cpu_ = 0;
    unsigned last_cpu_ = 0;
};

}  // namespace hsw::rapl
