#include "rapl/rapl.hpp"

#include <cmath>

#include "arch/calibration.hpp"
#include "msr/addresses.hpp"

namespace hsw::rapl {

namespace cal = hsw::arch::cal;

namespace {
// Default PKG_POWER_LIMIT: PL1 enabled at TDP is configured by firmware;
// we start with the enable bit clear, meaning "TDP from the SKU".
constexpr std::uint64_t kPowerLimitEnableBit = 1ULL << 15;
constexpr double kPowerLimitUnitWatts = 0.125;  // 1/8 W per the unit MSR
}  // namespace

RaplPackage::RaplPackage(arch::Generation generation, unsigned socket_id,
                         DramMode dram_mode, std::uint64_t noise_seed)
    : generation_{generation},
      dram_mode_{dram_mode},
      estimator_{arch::traits(generation).rapl_backend,
                 noise_seed * 7919 + socket_id},
      mode0_rng_{noise_seed * 104729 + socket_id},
      power_limit_raw_{0} {}

void RaplPackage::integrate(Power pkg_true, Power dram_true, const ActivityVector& av,
                            Time dt) {
    true_pkg_ += pkg_true * dt;
    true_dram_ += dram_true * dt;
    reported_pkg_ += estimator_.package_power(pkg_true, av) * dt;
    reported_dram_ += estimator_.dram_power(dram_true, av) * dt;
}

void RaplPackage::publish() {
    pkg_raw_ = static_cast<std::uint32_t>(
        static_cast<std::uint64_t>(reported_pkg_.as_joules() / energy_unit(Domain::Package)));

    if (dram_mode_ == DramMode::Mode0 && arch::traits(generation_).dram_mode0_garbage) {
        // "Using DRAM mode 0 will result in unspecified behavior": the
        // counter advances erratically and is useless for measurement.
        dram_raw_ += static_cast<std::uint32_t>(mode0_rng_.uniform_u64(1u << 18));
        return;
    }
    dram_raw_ = static_cast<std::uint32_t>(
        static_cast<std::uint64_t>(reported_dram_.as_joules() / energy_unit(Domain::Dram)));
}

std::uint64_t RaplPackage::power_unit_msr() const {
    // Bits 3:0 power unit = 3 (1/8 W), bits 12:8 energy status unit = 14
    // (2^-14 J), bits 19:16 time unit = 10 (976 us).
    return (10ULL << 16) | (14ULL << 8) | 3ULL;
}

double RaplPackage::energy_unit(Domain d) const {
    if (d == Domain::Dram && dram_mode_ == DramMode::Mode1 &&
        arch::traits(generation_).fixed_dram_energy_unit) {
        // The documented-elsewhere 15.3 uJ unit (Section IV): NOT what the
        // generic unit register advertises. Haswell introduced it;
        // Skylake-SP keeps the fixed DRAM unit.
        return cal::kDramEnergyUnitJoules;
    }
    return cal::kPackageEnergyUnitJoules;
}

bool RaplPackage::has_domain(Domain d) const {
    const auto t = arch::traits(generation_);
    switch (d) {
        case Domain::Package: return t.rapl_backend != arch::RaplBackend::None;
        case Domain::Pp0: return t.has_pp0_domain;
        case Domain::Dram: return t.has_dram_rapl_domain;
    }
    return false;
}

void RaplPackage::write_power_limit_msr(std::uint64_t value) { power_limit_raw_ = value; }

std::optional<Power> RaplPackage::active_power_limit() const {
    if ((power_limit_raw_ & kPowerLimitEnableBit) == 0) return std::nullopt;
    const double watts = static_cast<double>(power_limit_raw_ & 0x7FFF) * kPowerLimitUnitWatts;
    return Power::watts(watts);
}

void RaplPackage::attach(msr::MsrFile& file, unsigned first_cpu, unsigned last_cpu) {
    first_cpu_ = first_cpu;
    last_cpu_ = last_cpu;
    // The handlers below capture `this`; the package outlives the MSR file
    // inside Node, which owns both. Registration is scoped to this
    // package's CPU range so each socket answers for its own cores.
    file.register_msr_range(msr::MSR_RAPL_POWER_UNIT, first_cpu, last_cpu,
                            [this](unsigned) { return power_unit_msr(); });
    file.register_msr_range(msr::MSR_PKG_ENERGY_STATUS, first_cpu, last_cpu,
                            [this](unsigned) {
                                return static_cast<std::uint64_t>(pkg_energy_raw());
                            });
    if (has_domain(Domain::Dram)) {
        file.register_msr_range(msr::MSR_DRAM_ENERGY_STATUS, first_cpu, last_cpu,
                                [this](unsigned) {
                                    return static_cast<std::uint64_t>(dram_energy_raw());
                                });
    }
    if (has_domain(Domain::Pp0)) {
        file.register_msr_range(
            msr::MSR_PP0_ENERGY_STATUS, first_cpu, last_cpu, [this](unsigned) {
                // PP0 mirrors a core share of the package on parts that have it.
                return static_cast<std::uint64_t>(reported_pkg_.as_joules() * 0.7 /
                                                  energy_unit(Domain::Package));
            });
    }
    file.register_msr_range(
        msr::MSR_PKG_POWER_LIMIT, first_cpu, last_cpu,
        [this](unsigned) { return power_limit_msr(); },
        [this](unsigned, std::uint64_t v) { write_power_limit_msr(v); });
}

}  // namespace hsw::rapl
