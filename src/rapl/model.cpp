#include "rapl/model.hpp"

namespace hsw::rapl {

namespace {

// Event weights of the modeled (Sandy Bridge) estimator. These are
// deliberately *not* a perfect inverse of the ground-truth power model:
// the estimator assumes nominal voltage and charges flat energy per event,
// which is exactly why its output is biased per workload class.
constexpr double kIdleWatts = 9.0;                 // per socket
constexpr double kJoulesPerGigaCycle = 2.6;        // core clock tree estimate
constexpr double kJoulesPerGigaUop = 1.9;
constexpr double kJoulesPerGigaAvxOp = 3.4;
constexpr double kJoulesPerGB = 0.30;              // uncore/IMC events
constexpr double kJoulesPerGigaUncoreCycle = 1.1;

// Haswell measurement noise (current-sense ADC), relative one sigma.
constexpr double kMeasurementNoise = 0.002;

}  // namespace

RaplEstimator::RaplEstimator(arch::RaplBackend backend, std::uint64_t noise_seed)
    : backend_{backend}, rng_{noise_seed} {}

Power RaplEstimator::package_power(Power true_power, const ActivityVector& av) {
    switch (backend_) {
        case arch::RaplBackend::None:
            return Power::zero();
        case arch::RaplBackend::Measured: {
            const double noisy =
                true_power.as_watts() * (1.0 + rng_.normal(0.0, kMeasurementNoise));
            return Power::watts(noisy);
        }
        case arch::RaplBackend::Modeled: {
            const double watts = kIdleWatts +
                                 kJoulesPerGigaCycle * av.core_cycles_per_s * 1e-9 +
                                 kJoulesPerGigaUop * av.uops_per_s * 1e-9 +
                                 kJoulesPerGigaAvxOp * av.avx_ops_per_s * 1e-9 +
                                 kJoulesPerGigaUncoreCycle * av.uncore_cycles_per_s * 1e-9;
            return Power::watts(watts);
        }
    }
    return Power::zero();
}

Power RaplEstimator::dram_power(Power true_power, const ActivityVector& av) {
    switch (backend_) {
        case arch::RaplBackend::None:
            return Power::zero();
        case arch::RaplBackend::Measured: {
            const double noisy =
                true_power.as_watts() * (1.0 + rng_.normal(0.0, kMeasurementNoise));
            return Power::watts(noisy);
        }
        case arch::RaplBackend::Modeled:
            // Event-count estimate: background guess plus per-byte energy.
            return Power::watts(3.0 + kJoulesPerGB * av.dram_gbs);
    }
    return Power::zero();
}

}  // namespace hsw::rapl
