// RAPL backends (Section IV).
//
// Pre-Haswell RAPL *models* energy from event counts with weights that
// ignore voltage and workload specifics -- so different workloads map to
// different RAPL-vs-AC lines (Figure 2a). Haswell RAPL *measures* at the
// FIVRs, so one quadratic (PSU-shaped) relation fits all workloads
// (Figure 2b).
#pragma once

#include "arch/generation.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace hsw::rapl {

using util::Power;

/// Per-second machine activity rates a modeled-RAPL implementation can see
/// through its event counters.
struct ActivityVector {
    double core_cycles_per_s = 0.0;  // sum over cores, unhalted
    double uops_per_s = 0.0;
    double avx_ops_per_s = 0.0;
    double dram_gbs = 0.0;           // DRAM traffic
    double uncore_cycles_per_s = 0.0;
};

class RaplEstimator {
public:
    RaplEstimator(arch::RaplBackend backend, std::uint64_t noise_seed);

    /// Package power as RAPL would report it, given the ground truth and
    /// the observable activity.
    [[nodiscard]] Power package_power(Power true_power, const ActivityVector& av);

    /// DRAM power as RAPL would report it.
    [[nodiscard]] Power dram_power(Power true_power, const ActivityVector& av);

    [[nodiscard]] arch::RaplBackend backend() const { return backend_; }

private:
    arch::RaplBackend backend_;
    util::Rng rng_;
};

}  // namespace hsw::rapl
