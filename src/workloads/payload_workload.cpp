#include "workloads/payload_workload.hpp"

#include <algorithm>
#include <cmath>

namespace hsw::workloads {

namespace {

// Per-level dynamic-power weights: how much switching activity one group
// targeting the level causes, relative to a register-only FMA group
// (execution units dominate; data movement through bigger structures costs
// more per byte but stalls reduce issue rate, [30]).
constexpr std::array<double, 5> kGroupPowerWeight{1.00, 1.08, 0.98, 0.72, 0.55};

// Per-level DRAM traffic contribution (GB/s per core at full issue rate)
// of one 100 % share of that group type.
constexpr std::array<double, 5> kGroupDramGBs{0.0, 0.0, 0.0, 0.0, 230.0};

// Per-level off-core stall contribution at 100 % share.
constexpr std::array<double, 5> kGroupStall{0.0, 0.01, 0.10, 0.55, 0.95};

}  // namespace

FirestarterPayload payload_with_ratios(const std::array<double, 5>& ratios,
                                       std::size_t groups) {
    // Normalize and synthesize a payload with the requested mix by building
    // it group-by-group with the same low-discrepancy scheme the canonical
    // constructor uses -- reuse it by scaling counts.
    double total = 0.0;
    for (double r : ratios) total += std::max(0.0, r);
    if (total <= 0.0) total = 1.0;

    // Largest-remainder apportionment of the (normalized) custom ratios.
    std::array<std::size_t, 5> counts{};
    std::size_t assigned = 0;
    std::array<double, 5> remainders{};
    for (std::size_t i = 0; i < 5; ++i) {
        const double exact = std::max(0.0, ratios[i]) / total * static_cast<double>(groups);
        counts[i] = static_cast<std::size_t>(exact);
        remainders[i] = exact - static_cast<double>(counts[i]);
        assigned += counts[i];
    }
    while (assigned < groups) {
        const std::size_t best = static_cast<std::size_t>(std::distance(
            remainders.begin(), std::max_element(remainders.begin(), remainders.end())));
        ++counts[best];
        remainders[best] = -1.0;
        ++assigned;
    }
    return FirestarterPayload::from_counts(counts);
}

Workload workload_from_payload(const FirestarterPayload& payload, std::string_view name) {
    const PayloadProperties p = payload.analyze();

    double power_weight = 0.0;
    double dram = 0.0;
    double stall = 0.0;
    for (std::size_t i = 0; i < 5; ++i) {
        power_weight += p.target_ratios[i] * kGroupPowerWeight[i];
        dram += p.target_ratios[i] * kGroupDramGBs[i];
        stall += p.target_ratios[i] * kGroupStall[i];
    }

    const double ipc_ht = payload.estimated_ipc(true);
    const double ipc_noht = payload.estimated_ipc(false);
    // Power scales with activity = weight * issue-rate share; stalled
    // payloads burn less in the cores.
    const double issue_share_ht = ipc_ht / 3.1;
    const double issue_share_noht = ipc_noht / 2.8;

    Workload w;
    w.name = name;
    w.cdyn_ht = power_weight * issue_share_ht;
    w.cdyn_noht = 0.88 * power_weight * issue_share_noht;
    w.uncore_traffic = std::min(1.0, 0.3 + 3.0 * (p.target_ratios[3] + p.target_ratios[4]) +
                                         0.8 * p.target_ratios[1]);
    w.dram_gbs_per_core = std::min(dram * issue_share_ht, 5.0);
    w.ipc_unity_ht = ipc_ht;
    w.ipc_unity_noht = ipc_noht;
    w.ipc_uncore_sens = 0.944 * (stall / 0.03);  // canonical payload ~0.03
    w.avx_fraction = p.avx_fraction * 1.9;       // slot share vs count share
    w.avx_fraction = std::min(w.avx_fraction, 1.0);
    w.stall_fraction = std::clamp(stall * 2.0, 0.0, 0.95);
    w.current_intensity = std::min(1.0, 0.9 * power_weight);
    return w;
}

}  // namespace hsw::workloads
