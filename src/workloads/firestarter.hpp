// FIRESTARTER payload generator (Section VIII, [23]).
//
// The stress loop is built from groups of four instructions (I1..I4) that
// fit the 16-byte fetch window, one group per memory level:
//   I1: packed-double FMA on registers, or a store to the level,
//   I2: FMA, fused with a load for the cache/memory levels,
//   I3: shift,
//   I4: xor (reg) or pointer-increment add (cache/memory levels).
// Groups are mixed at 27.8 % reg / 62.7 % L1 / 7.1 % L2 / 0.8 % L3 /
// 1.6 % mem, and the loop must overflow the uop cache while fitting in L1I.
#pragma once

#include <array>
#include <cstddef>
#include <string>
#include <vector>

#include "workloads/workload.hpp"

namespace hsw::workloads {

enum class GroupTarget { Reg, L1, L2, L3, Mem };

[[nodiscard]] constexpr const char* name(GroupTarget t) {
    switch (t) {
        case GroupTarget::Reg: return "reg";
        case GroupTarget::L1: return "L1";
        case GroupTarget::L2: return "L2";
        case GroupTarget::L3: return "L3";
        case GroupTarget::Mem: return "mem";
    }
    return "?";
}

enum class Op { Fma, Store, FmaLoad, Shift, Xor, AddPtr };

struct Instruction {
    Op op;
    bool is_avx;       // 256-bit operand
    unsigned bytes;    // encoded length
    unsigned uops;
    bool loads;
    bool stores;
    double flops;      // double-precision FLOPs contributed
};

struct InstructionGroup {
    GroupTarget target;
    std::array<Instruction, 4> instructions;
    [[nodiscard]] unsigned bytes() const;
    [[nodiscard]] unsigned uops() const;
    [[nodiscard]] double flops() const;
};

/// Builds the canonical group for a memory level.
[[nodiscard]] InstructionGroup make_group(GroupTarget target);

struct PayloadProperties {
    std::size_t group_count = 0;
    std::size_t instruction_count = 0;
    std::size_t code_bytes = 0;
    std::size_t uop_count = 0;
    double flops_per_group_avg = 0.0;
    double avx_fraction = 0.0;        // AVX instructions / all instructions
    double load_fraction = 0.0;
    double store_fraction = 0.0;
    bool exceeds_uop_cache = false;   // required for full decoder activity
    bool fits_l1i = false;            // required to avoid fetch stalls
    std::array<double, 5> target_ratios{};  // reg,L1,L2,L3,mem achieved
};

class FirestarterPayload {
public:
    /// Generate a loop of `group_count` groups at the paper's ratios using
    /// largest-remainder apportionment and deterministic interleaving.
    /// Default size is chosen to overflow the uop cache but fit in L1I.
    explicit FirestarterPayload(std::size_t group_count = 560);

    /// Build a payload with explicit per-target group counts
    /// (reg, L1, L2, L3, mem), interleaved with the same low-discrepancy
    /// scheme. Used by experiments that vary the mix.
    [[nodiscard]] static FirestarterPayload from_counts(
        const std::array<std::size_t, 5>& counts);

    [[nodiscard]] const std::vector<InstructionGroup>& groups() const { return groups_; }
    [[nodiscard]] PayloadProperties analyze() const;

    /// Human-readable assembly-like listing (for the quickstart example).
    [[nodiscard]] std::string disassemble(std::size_t max_groups = 16) const;

    /// Estimated IPC on Haswell-EP given threading (decoder-limited group
    /// issue derated by memory-group stalls). Reproduces the paper's
    /// 3.1 (HT) / 2.8 (no HT).
    [[nodiscard]] double estimated_ipc(bool hyperthreading) const;

private:
    struct EmptyTag {};
    explicit FirestarterPayload(EmptyTag) {}  // used by from_counts

    std::vector<InstructionGroup> groups_;
};

}  // namespace hsw::workloads
