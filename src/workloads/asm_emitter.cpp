#include "workloads/asm_emitter.hpp"

#include <cstdio>

namespace hsw::workloads {

namespace {

/// Pointer register per memory level (reg groups use none).
const char* pointer_reg(GroupTarget t) {
    switch (t) {
        case GroupTarget::L1: return "%r9";
        case GroupTarget::L2: return "%r10";
        case GroupTarget::L3: return "%r11";
        case GroupTarget::Mem: return "%r12";
        case GroupTarget::Reg: return nullptr;
    }
    return nullptr;
}

}  // namespace

std::string emit_asm(const FirestarterPayload& payload, const AsmEmitOptions& opt) {
    std::string out;
    char line[256];

    out += "# FIRESTARTER-style stress kernel, generated from the group IR\n";
    out += "# (groups of 4 instructions in 16-byte fetch windows; Section VIII)\n";
    out += "\t.text\n";
    std::snprintf(line, sizeof line, "\t.globl %s\n\t.type %s, @function\n",
                  opt.function_name.c_str(), opt.function_name.c_str());
    out += line;
    std::snprintf(line, sizeof line, "%s:\n", opt.function_name.c_str());
    out += line;

    // Prologue: rdi = buffer base, rsi = iteration count.
    out += "\t# rdi: 64-byte aligned work buffer, rsi: loop iterations\n";
    out += "\tpush %r12\n";
    out += "\tlea (%rdi), %r9          # L1 pointer\n";
    std::snprintf(line, sizeof line, "\tlea %zu(%%rdi), %%r10   # L2 pointer\n",
                  opt.l1_span);
    out += line;
    std::snprintf(line, sizeof line, "\tlea %zu(%%rdi), %%r11   # L3 pointer\n",
                  opt.l1_span + opt.l2_span);
    out += line;
    std::snprintf(line, sizeof line, "\tlea %zu(%%rdi), %%r12   # mem pointer\n",
                  opt.l1_span + opt.l2_span + opt.l3_span);
    out += line;
    out += "\tmov $0x5555555555555555, %r8\n";
    out += "\tvmovapd (%rdi), %ymm14    # multiplicand constant\n";
    out += "\tvmovapd 32(%rdi), %ymm15  # addend constant\n";
    out += "\t.align 16\n";
    std::snprintf(line, sizeof line, ".L%s_loop:\n", opt.function_name.c_str());
    out += line;

    unsigned data_reg = 0;  // rotate through ymm0..ymm13
    auto next_reg = [&] {
        const unsigned r = data_reg;
        data_reg = (data_reg + 1) % 14;
        return r;
    };

    for (const auto& g : payload.groups()) {
        const char* ptr = pointer_reg(g.target);
        const unsigned a = next_reg();
        std::snprintf(line, sizeof line, "\t# group: %s\n", name(g.target));
        out += line;
        for (const auto& i : g.instructions) {
            switch (i.op) {
                case Op::Fma:
                    std::snprintf(line, sizeof line,
                                  "\tvfmadd231pd %%ymm14, %%ymm15, %%ymm%u\n", a);
                    break;
                case Op::Store:
                    std::snprintf(line, sizeof line,
                                  "\tvmovapd %%ymm%u, (%s)\n", a, ptr);
                    break;
                case Op::FmaLoad:
                    std::snprintf(line, sizeof line,
                                  "\tvfmadd231pd 32(%s), %%ymm15, %%ymm%u\n", ptr, a);
                    break;
                case Op::Shift:
                    std::snprintf(line, sizeof line, "\tshr $1, %%r8\n");
                    break;
                case Op::Xor:
                    std::snprintf(line, sizeof line, "\txor %%r13d, %%r13d\n");
                    break;
                case Op::AddPtr:
                    std::snprintf(line, sizeof line, "\tadd $64, %s\n", ptr);
                    break;
            }
            out += line;
        }
    }

    // Wrap the pointers so each level's working set stays resident.
    out += "\t# wrap level pointers to their spans\n";
    struct Wrap {
        const char* reg;
        std::size_t offset;
        std::size_t span;
    };
    const Wrap wraps[] = {{"%r9", 0, opt.l1_span},
                          {"%r10", opt.l1_span, opt.l2_span},
                          {"%r11", opt.l1_span + opt.l2_span, opt.l3_span},
                          {"%r12", opt.l1_span + opt.l2_span + opt.l3_span,
                           opt.mem_span}};
    for (const auto& w : wraps) {
        std::snprintf(line, sizeof line,
                      "\tlea %zu(%%rdi), %%r13\n\tcmp %%r13, %s\n"
                      "\tcmovae %%r13, %s\n",
                      w.offset, w.reg, w.reg);
        out += line;
        (void)w.span;  // the cmov resets to the level base on overflow
    }

    std::snprintf(line, sizeof line,
                  "\tdec %%rsi\n\tjnz .L%s_loop\n", opt.function_name.c_str());
    out += line;
    out += "\tpop %r12\n";
    out += "\tret\n";
    std::snprintf(line, sizeof line, "\t.size %s, .-%s\n", opt.function_name.c_str(),
                  opt.function_name.c_str());
    out += line;
    return out;
}

AsmStats analyze_asm(const std::string& text) {
    AsmStats stats;
    std::size_t pos = 0;
    while (pos < text.size()) {
        std::size_t eol = text.find('\n', pos);
        if (eol == std::string::npos) eol = text.size();
        const std::string_view ln{text.data() + pos, eol - pos};
        pos = eol + 1;
        if (ln.empty()) continue;
        if (ln.find(':') != std::string_view::npos &&
            ln.find("\t") != 0) {
            ++stats.label_count;
            continue;
        }
        if (ln[0] != '\t' || ln.size() < 2 || ln[1] == '.' || ln[1] == '#') continue;
        ++stats.instruction_lines;
        if (ln.find("vfmadd231pd") != std::string_view::npos) {
            ++stats.fma_count;
            if (ln.find("(%r") != std::string_view::npos) ++stats.load_fma_count;
        }
        if (ln.find("vmovapd %ymm") != std::string_view::npos &&
            ln.find(", (") != std::string_view::npos) {
            ++stats.store_count;
        }
    }
    return stats;
}

}  // namespace hsw::workloads
