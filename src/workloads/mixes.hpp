// Workload registry: the Figure 2 microbenchmarks, the Table V stress
// tests, and the Table III probe. Power/IPC parameters are calibrated so
// the TDP-limited equilibria land on the paper's measured operating points
// (see arch/calibration.hpp for the derivation anchors).
#pragma once

#include <span>

#include "workloads/workload.hpp"

namespace hsw::workloads {

// --- Figure 2 microbenchmarks (RAPL validation, Section IV) ---
[[nodiscard]] const Workload& sinus();
[[nodiscard]] const Workload& busy_wait();
[[nodiscard]] const Workload& memory_stream();
[[nodiscard]] const Workload& compute();
[[nodiscard]] const Workload& dgemm();
[[nodiscard]] const Workload& sqrt_loop();

/// All Fig. 2 microbenchmarks (excluding idle, which is "no workload").
[[nodiscard]] std::span<const Workload* const> rapl_validation_set();

// --- Section V / Table III probe ---
/// while(1) loop: no memory accesses at all (uncore lower-bound scenario).
[[nodiscard]] const Workload& while_one();

// --- Section VII membench kernels ---
/// Streaming reads over a 17 MB set: L3 resident, no DRAM traffic.
[[nodiscard]] const Workload& l3_stream();

// --- Section VIII stress tests (Table V) ---
[[nodiscard]] const Workload& firestarter();
[[nodiscard]] const Workload& linpack();
[[nodiscard]] const Workload& mprime();

}  // namespace hsw::workloads
