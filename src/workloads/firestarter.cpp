#include "workloads/firestarter.hpp"

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "arch/calibration.hpp"

namespace hsw::workloads {

namespace cal = hsw::arch::cal;

unsigned InstructionGroup::bytes() const {
    unsigned b = 0;
    for (const auto& i : instructions) b += i.bytes;
    return b;
}

unsigned InstructionGroup::uops() const {
    unsigned u = 0;
    for (const auto& i : instructions) u += i.uops;
    return u;
}

double InstructionGroup::flops() const {
    double f = 0.0;
    for (const auto& i : instructions) f += i.flops;
    return f;
}

InstructionGroup make_group(GroupTarget target) {
    // A 256-bit FMA performs 4 fused multiply-adds = 8 double FLOPs.
    constexpr double kFmaFlops = 8.0;
    const bool reg = target == GroupTarget::Reg;

    // I1: packed double FMA working on registers (reg, mem) or a store to
    // the respective cache level (L1, L2, L3).
    Instruction i1;
    if (reg || target == GroupTarget::Mem) {
        i1 = {Op::Fma, true, 4, 1, false, false, kFmaFlops};
    } else {
        i1 = {Op::Store, true, 4, 1, false, true, 0.0};
    }
    // I2: FMA, combined with a load for the cache/memory levels.
    const Instruction i2 = reg
        ? Instruction{Op::Fma, true, 4, 1, false, false, kFmaFlops}
        : Instruction{Op::FmaLoad, true, 5, 1, true, false, kFmaFlops};
    // I3: right shift.
    const Instruction i3{Op::Shift, false, 3, 1, false, false, 0.0};
    // I4: xor (reg) or pointer-increment add.
    const Instruction i4 = reg
        ? Instruction{Op::Xor, false, 3, 1, false, false, 0.0}
        : Instruction{Op::AddPtr, false, 4, 1, false, false, 0.0};

    return InstructionGroup{target, {i1, i2, i3, i4}};
}

namespace {

/// Largest-remainder apportionment of `total` groups to the paper's ratios.
std::array<std::size_t, 5> apportion(std::size_t total) {
    const std::array<double, 5> ratios{cal::kFsRegRatio, cal::kFsL1Ratio, cal::kFsL2Ratio,
                                       cal::kFsL3Ratio, cal::kFsMemRatio};
    std::array<std::size_t, 5> counts{};
    std::array<double, 5> remainders{};
    std::size_t assigned = 0;
    for (std::size_t i = 0; i < 5; ++i) {
        const double exact = ratios[i] * static_cast<double>(total);
        counts[i] = static_cast<std::size_t>(exact);
        remainders[i] = exact - static_cast<double>(counts[i]);
        assigned += counts[i];
    }
    while (assigned < total) {
        const std::size_t best = static_cast<std::size_t>(std::distance(
            remainders.begin(), std::max_element(remainders.begin(), remainders.end())));
        ++counts[best];
        remainders[best] = -1.0;
        ++assigned;
    }
    return counts;
}

constexpr std::array<GroupTarget, 5> kTargets{GroupTarget::Reg, GroupTarget::L1,
                                              GroupTarget::L2, GroupTarget::L3,
                                              GroupTarget::Mem};

}  // namespace

FirestarterPayload::FirestarterPayload(std::size_t group_count) {
    *this = from_counts(apportion(group_count));
}

FirestarterPayload FirestarterPayload::from_counts(
    const std::array<std::size_t, 5>& counts) {
    std::size_t group_count = 0;
    for (std::size_t c : counts) group_count += c;

    // Deterministic low-discrepancy interleaving: at every step emit the
    // target whose achieved fraction lags its goal the most, spreading the
    // rare L3/mem groups evenly through the loop.
    FirestarterPayload payload{EmptyTag{}};
    std::array<std::size_t, 5> emitted{};
    payload.groups_.reserve(group_count);
    for (std::size_t step = 0; step < group_count; ++step) {
        std::size_t best = 0;
        double best_deficit = -1e300;
        for (std::size_t i = 0; i < 5; ++i) {
            if (emitted[i] >= counts[i]) continue;
            const double goal = static_cast<double>(counts[i]) *
                                static_cast<double>(step + 1) /
                                static_cast<double>(group_count);
            const double deficit = goal - static_cast<double>(emitted[i]);
            if (deficit > best_deficit) {
                best_deficit = deficit;
                best = i;
            }
        }
        ++emitted[best];
        payload.groups_.push_back(make_group(kTargets[best]));
    }
    return payload;
}

PayloadProperties FirestarterPayload::analyze() const {
    PayloadProperties p;
    p.group_count = groups_.size();
    std::size_t avx = 0;
    std::size_t loads = 0;
    std::size_t stores = 0;
    double flops = 0.0;
    std::array<std::size_t, 5> per_target{};
    for (const auto& g : groups_) {
        p.code_bytes += g.bytes();
        p.uop_count += g.uops();
        p.instruction_count += g.instructions.size();
        flops += g.flops();
        per_target[static_cast<std::size_t>(g.target)]++;
        for (const auto& i : g.instructions) {
            if (i.is_avx) ++avx;
            if (i.loads) ++loads;
            if (i.stores) ++stores;
        }
    }
    if (p.instruction_count > 0) {
        p.avx_fraction = static_cast<double>(avx) / static_cast<double>(p.instruction_count);
        p.load_fraction = static_cast<double>(loads) / static_cast<double>(p.instruction_count);
        p.store_fraction =
            static_cast<double>(stores) / static_cast<double>(p.instruction_count);
    }
    if (p.group_count > 0) {
        p.flops_per_group_avg = flops / static_cast<double>(p.group_count);
        for (std::size_t i = 0; i < 5; ++i) {
            p.target_ratios[i] =
                static_cast<double>(per_target[i]) / static_cast<double>(p.group_count);
        }
    }
    p.exceeds_uop_cache = p.uop_count > cal::kUopCacheCapacityUops;
    p.fits_l1i = p.code_bytes <= cal::kL1ICapacityBytes;
    return p;
}

std::string FirestarterPayload::disassemble(std::size_t max_groups) const {
    static constexpr const char* kOpNames[] = {
        "vfmadd231pd ymm, ymm, ymm", "vmovapd [ptr], ymm",
        "vfmadd231pd ymm, ymm, [ptr]", "shr r, 1", "xor r, r", "add ptr, 64"};
    std::string out;
    char line[128];
    const std::size_t n = std::min(max_groups, groups_.size());
    for (std::size_t g = 0; g < n; ++g) {
        std::snprintf(line, sizeof line, "; group %zu (%s)\n", g, name(groups_[g].target));
        out += line;
        for (const auto& i : groups_[g].instructions) {
            std::snprintf(line, sizeof line, "  %s\n",
                          kOpNames[static_cast<std::size_t>(i.op)]);
            out += line;
        }
    }
    if (groups_.size() > n) out += "; ...\n";
    return out;
}

double FirestarterPayload::estimated_ipc(bool hyperthreading) const {
    // Ideally one 4-instruction group issues per cycle (16-byte fetch
    // window). Cache/memory groups stall the pipeline in proportion to
    // their level's latency; a second hardware thread hides part of that.
    const PayloadProperties p = analyze();
    // Average stall cycles added per group, by target level.
    constexpr std::array<double, 5> stall_per_group{0.0, 0.05, 0.45, 2.5, 9.0};
    double stall = 0.0;
    for (std::size_t i = 0; i < 5; ++i) stall += p.target_ratios[i] * stall_per_group[i];
    const double hiding = hyperthreading ? 0.55 : 0.45;  // latency hidden
    const double cycles_per_group = 1.0 + stall * (1.0 - hiding);
    const double ideal = static_cast<double>(cal::kFsGroupInstructions);
    const double frontend = hyperthreading ? 0.854 : 0.78;  // decode/alloc share
    return ideal / cycles_per_group * frontend;
}

}  // namespace hsw::workloads
