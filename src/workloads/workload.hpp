// Workload intermediate representation.
//
// A workload is characterized by what it does to the machine: execution-unit
// utilization (cdyn), instruction throughput and its sensitivity to the
// core/uncore clock ratio, AVX density (triggers the AVX frequency license),
// off-core stall fraction (input to UFS and EET), and DRAM traffic. The
// simulated cores integrate these properties over time; the same profiles
// drive the power model and the performance counters.
#pragma once

#include <string_view>
#include <vector>

#include "util/units.hpp"

namespace hsw::workloads {

using util::Time;

enum class Modulation {
    Constant,   // steady utilization (FIRESTARTER's design goal)
    Sinusoid,   // smoothly varying load (the paper's "sinus" microbenchmark)
    SquareWave, // phase-alternating load (mprime's changing FFT kernels)
};

struct Workload {
    std::string_view name;

    // --- power inputs ---
    /// Dynamic-capacitance utilization relative to the FIRESTARTER payload
    /// with Hyper-Threading (= 1.0), per core.
    double cdyn_ht = 0.0;
    /// Same with one thread per core.
    double cdyn_noht = 0.0;
    /// Uncore traffic intensity in [0, 1] (ring/L3/IMC activity).
    double uncore_traffic = 0.0;
    /// Local DRAM read+write traffic per active core (GB/s at nominal clock).
    double dram_gbs_per_core = 0.0;

    // --- performance inputs ---
    /// Core IPC when core and uncore run at the same clock, with HT.
    double ipc_unity_ht = 0.0;
    /// Same with one thread per core.
    double ipc_unity_noht = 0.0;
    /// d(IPC)/d(f_core/f_uncore): how much relatively slower uncore hurts.
    double ipc_uncore_sens = 0.0;
    /// Fraction of 256-bit AVX/FMA instructions (AVX license trigger).
    double avx_fraction = 0.0;
    /// Fraction of 512-bit instructions (AVX-512 license trigger on
    /// Skylake-SP; ignored by generations without the second level).
    double avx512_fraction = 0.0;
    /// Off-core stall cycle fraction (UFS/EET input).
    double stall_fraction = 0.0;
    /// Peak-current intensity in [0, 1]; high-current code (LINPACK) makes
    /// the PCU budget conservatively below TDP (Section VIII discussion).
    double current_intensity = 0.0;

    // --- time variation ---
    Modulation modulation = Modulation::Constant;
    double modulation_period_s = 0.0;
    double modulation_depth = 0.0;  // peak-to-trough fraction of cdyn

    /// Utilization multiplier at simulation time `t` (1.0 for constant load).
    [[nodiscard]] double modulation_factor(Time t) const;

    /// Effective cdyn at time `t` for the given threading.
    [[nodiscard]] double cdyn_at(Time t, bool hyperthreading) const;

    /// Core IPC for a clock ratio r = f_core / f_uncore.
    [[nodiscard]] double ipc(double core_uncore_ratio, bool hyperthreading) const;
};

/// The idle pseudo-workload (no runnable thread).
[[nodiscard]] const Workload& idle();

}  // namespace hsw::workloads
