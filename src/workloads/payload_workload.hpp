// Bridge from a FIRESTARTER payload *structure* to an executable workload
// profile: the power/IPC characteristics are derived from the instruction
// groups rather than hand-calibrated. This lets experiments vary the group
// ratios and observe the node-level power response (the Section VIII
// design question: which mix maximizes consumption?).
#pragma once

#include "workloads/firestarter.hpp"
#include "workloads/workload.hpp"

namespace hsw::workloads {

/// Derive a workload profile from a payload. The canonical payload (the
/// paper's ratios) maps to cdyn ~= 1.0 and the published IPC anchors; other
/// mixes scale by their execution-unit, decoder and data-transfer
/// utilization ([30]: power = f(EU utilization, data transfers)).
[[nodiscard]] Workload workload_from_payload(const FirestarterPayload& payload,
                                             std::string_view name = "custom payload");

/// Group ratio vector (reg, L1, L2, L3, mem) -> payload of `groups` groups.
[[nodiscard]] FirestarterPayload payload_with_ratios(const std::array<double, 5>& ratios,
                                                     std::size_t groups = 560);

}  // namespace hsw::workloads
