// x86-64 assembly emission for FIRESTARTER payloads.
//
// Turns the instruction-group IR into a complete AT&T-syntax GNU assembler
// translation unit: buffer setup, register allocation (ymm0-ymm13 data,
// ymm14/15 constants; one pointer register per memory level), the unrolled
// group loop, and a loop-count epilogue. The emitted code follows the
// Section VIII structure: 4-instruction groups aligned to the 16-byte
// fetch window, per-level pointer strides sized so each level's accesses
// stay resident in the intended cache.
#pragma once

#include <string>

#include "workloads/firestarter.hpp"

namespace hsw::workloads {

struct AsmEmitOptions {
    std::string function_name = "firestarter_kernel";
    /// Bytes accessed per pointer before wrapping (per memory level:
    /// L1, L2, L3, mem). Defaults follow FIRESTARTER: stay inside the level.
    std::size_t l1_span = 24 * 1024;
    std::size_t l2_span = 192 * 1024;
    std::size_t l3_span = 2 * 1024 * 1024;
    std::size_t mem_span = 64 * 1024 * 1024;
};

/// Emit a standalone .s translation unit for the payload.
[[nodiscard]] std::string emit_asm(const FirestarterPayload& payload,
                                   const AsmEmitOptions& options = {});

/// Statistics over the emitted text (for tests and reporting).
struct AsmStats {
    std::size_t instruction_lines = 0;
    std::size_t fma_count = 0;
    std::size_t store_count = 0;
    std::size_t load_fma_count = 0;
    std::size_t label_count = 0;
};
[[nodiscard]] AsmStats analyze_asm(const std::string& text);

}  // namespace hsw::workloads
