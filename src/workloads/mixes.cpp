#include "workloads/mixes.hpp"

#include <array>

#include "arch/calibration.hpp"

namespace hsw::workloads {

namespace cal = hsw::arch::cal;

const Workload& sinus() {
    static constexpr Workload w{
        .name = "sinus",
        .cdyn_ht = 0.62,
        .cdyn_noht = 0.56,
        .uncore_traffic = 0.30,
        .dram_gbs_per_core = 0.6,
        .ipc_unity_ht = 1.6,
        .ipc_unity_noht = 1.4,
        .ipc_uncore_sens = 0.2,
        .avx_fraction = 0.1,
        .stall_fraction = 0.10,
        .current_intensity = 0.4,
        .modulation = Modulation::Sinusoid,
        .modulation_period_s = 2.0,
        .modulation_depth = 0.7,
    };
    return w;
}

const Workload& busy_wait() {
    static constexpr Workload w{
        .name = "busy wait",
        .cdyn_ht = 0.38,
        .cdyn_noht = 0.34,
        .uncore_traffic = 0.05,
        .dram_gbs_per_core = 0.0,
        .ipc_unity_ht = 0.6,
        .ipc_unity_noht = 0.5,
        .ipc_uncore_sens = 0.0,
        .avx_fraction = 0.0,
        .stall_fraction = 0.01,
        .current_intensity = 0.2,
    };
    return w;
}

const Workload& memory_stream() {
    static constexpr Workload w{
        .name = "memory",
        .cdyn_ht = 0.50,
        .cdyn_noht = 0.46,
        .uncore_traffic = 0.95,
        .dram_gbs_per_core = 4.8,
        .ipc_unity_ht = 0.45,
        .ipc_unity_noht = 0.40,
        .ipc_uncore_sens = 0.25,
        .avx_fraction = 0.3,
        .stall_fraction = 0.80,
        .current_intensity = 0.35,
    };
    return w;
}

const Workload& compute() {
    static constexpr Workload w{
        .name = "compute",
        .cdyn_ht = 0.72,
        .cdyn_noht = 0.65,
        .uncore_traffic = 0.10,
        .dram_gbs_per_core = 0.1,
        .ipc_unity_ht = 2.2,
        .ipc_unity_noht = 2.0,
        .ipc_uncore_sens = 0.05,
        .avx_fraction = 0.2,
        .stall_fraction = 0.02,
        .current_intensity = 0.5,
    };
    return w;
}

const Workload& dgemm() {
    static constexpr Workload w{
        .name = "dgemm",
        .cdyn_ht = 1.05,
        .cdyn_noht = 0.97,
        .uncore_traffic = 0.55,
        .dram_gbs_per_core = 1.5,
        .ipc_unity_ht = 2.6,
        .ipc_unity_noht = 2.4,
        .ipc_uncore_sens = 0.3,
        .avx_fraction = 0.92,
        .stall_fraction = 0.05,
        .current_intensity = 0.95,
    };
    return w;
}

const Workload& sqrt_loop() {
    static constexpr Workload w{
        .name = "sqrt",
        .cdyn_ht = 0.48,
        .cdyn_noht = 0.44,
        .uncore_traffic = 0.05,
        .dram_gbs_per_core = 0.0,
        .ipc_unity_ht = 0.5,
        .ipc_unity_noht = 0.4,
        .ipc_uncore_sens = 0.0,
        .avx_fraction = 0.4,
        .stall_fraction = 0.02,
        .current_intensity = 0.3,
    };
    return w;
}

std::span<const Workload* const> rapl_validation_set() {
    static const std::array<const Workload*, 6> set{
        &sinus(), &busy_wait(), &memory_stream(), &compute(), &dgemm(), &sqrt_loop()};
    return set;
}

const Workload& while_one() {
    static constexpr Workload w{
        .name = "while(1)",
        .cdyn_ht = 0.42,
        .cdyn_noht = 0.40,
        .uncore_traffic = 0.04,
        .dram_gbs_per_core = 0.0,
        .ipc_unity_ht = 1.0,
        .ipc_unity_noht = 1.0,
        .ipc_uncore_sens = 0.0,
        .avx_fraction = 0.0,
        .stall_fraction = 0.0,  // "does not access any memory" => no stalls
        .current_intensity = 0.2,
    };
    return w;
}

const Workload& l3_stream() {
    static constexpr Workload w{
        .name = "L3 stream",
        .cdyn_ht = 0.55,
        .cdyn_noht = 0.50,
        .uncore_traffic = 1.0,    // all traffic stays on the ring/L3
        .dram_gbs_per_core = 0.0, // the 17 MB set fits the 30 MiB L3
        .ipc_unity_ht = 0.9,
        .ipc_unity_noht = 0.8,
        .ipc_uncore_sens = 0.35,
        .avx_fraction = 0.3,
        .stall_fraction = 0.55,   // L3-latency bound: UFS goes to max
        .current_intensity = 0.35,
    };
    return w;
}

const Workload& firestarter() {
    // The reference payload: cdyn_ht defines 1.0; the Hyper-Threading power
    // delta and the IPC anchors (3.1 HT / 2.8 no-HT, uncore sensitivity
    // 0.944) come straight from the paper (Sections VI/VIII, Table IV).
    static const Workload w{
        .name = "FIRESTARTER",
        .cdyn_ht = 1.00,
        .cdyn_noht = 0.88,
        .uncore_traffic = 1.00,
        .dram_gbs_per_core = 3.7,  // 1.6 % mem group ratio, streaming
        .ipc_unity_ht = cal::kFsIpcHt - cal::kFsIpcUncoreSensitivity * 0.0,
        .ipc_unity_noht = cal::kFsIpcNoHt,
        .ipc_uncore_sens = cal::kFsIpcUncoreSensitivity,
        .avx_fraction = 0.95,
        .stall_fraction = 0.06,  // moderate: uncore tracks the core clock
        .current_intensity = 0.85,
    };
    return w;
}

const Workload& linpack() {
    // Dense FMA bursts with synchronization/memory phases. The very high
    // current intensity makes the PCU budget below TDP, which is why the
    // paper measures both lower frequency (2.27-2.28 GHz) *and* lower power
    // (~548 W vs ~560 W) than the other stress tests.
    static constexpr Workload w{
        .name = "LINPACK",
        .cdyn_ht = 1.10,
        .cdyn_noht = 1.00,
        .uncore_traffic = 0.80,
        .dram_gbs_per_core = 4.0,
        .ipc_unity_ht = 2.9,
        .ipc_unity_noht = 2.6,
        .ipc_uncore_sens = 0.5,
        .avx_fraction = 0.97,
        .stall_fraction = 0.06,
        .current_intensity = 1.00,
        .modulation = Modulation::SquareWave,
        .modulation_period_s = 7.0,
        .modulation_depth = 0.12,  // panel factorization vs update phases
    };
    return w;
}

const Workload& mprime() {
    // Large-FFT torture test: lower execution-unit density than the FMA
    // kernels, so the TDP equilibrium sits at a higher frequency
    // (2.45-2.62 GHz in Table V) with less constant power.
    static constexpr Workload w{
        .name = "mprime",
        .cdyn_ht = 0.80,
        .cdyn_noht = 0.72,
        .uncore_traffic = 0.90,
        .dram_gbs_per_core = 3.7,
        .ipc_unity_ht = 2.3,
        .ipc_unity_noht = 2.1,
        .ipc_uncore_sens = 0.4,
        .avx_fraction = 0.75,
        .stall_fraction = 0.12,
        .current_intensity = 0.6,
        .modulation = Modulation::SquareWave,
        .modulation_period_s = 11.0,
        .modulation_depth = 0.08,  // FFT size changes
    };
    return w;
}

}  // namespace hsw::workloads
