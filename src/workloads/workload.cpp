#include "workloads/workload.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace hsw::workloads {

double Workload::modulation_factor(Time t) const {
    switch (modulation) {
        case Modulation::Constant:
            return 1.0;
        case Modulation::Sinusoid: {
            const double phase = 2.0 * std::numbers::pi * t.as_seconds() /
                                 std::max(modulation_period_s, 1e-9);
            return 1.0 - modulation_depth * 0.5 + modulation_depth * 0.5 * std::sin(phase);
        }
        case Modulation::SquareWave: {
            const double period = std::max(modulation_period_s, 1e-9);
            const bool high = std::fmod(t.as_seconds(), period) < period * 0.5;
            return high ? 1.0 : 1.0 - modulation_depth;
        }
    }
    return 1.0;
}

double Workload::cdyn_at(Time t, bool hyperthreading) const {
    return (hyperthreading ? cdyn_ht : cdyn_noht) * modulation_factor(t);
}

double Workload::ipc(double core_uncore_ratio, bool hyperthreading) const {
    const double unity = hyperthreading ? ipc_unity_ht : ipc_unity_noht;
    return std::max(0.05, unity - ipc_uncore_sens * (core_uncore_ratio - 1.0));
}

const Workload& idle() {
    static constexpr Workload w{.name = "idle"};
    return w;
}

}  // namespace hsw::workloads
