#include "sim/trace_json.hpp"

#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace hsw::sim {

namespace {

/// Appends the JSON-escaped bytes of `s` to `out` -- no temporary strings
/// on the serialization path.
void append_escaped(std::string& out, std::string_view s) {
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            default: out += c;
        }
    }
}

void append_format(std::string& out, const char* fmt, double value) {
    char buf[64];
    std::snprintf(buf, sizeof buf, fmt, value);
    out += buf;
}

}  // namespace

std::string to_chrome_trace_json(const Trace& trace, const std::string& process_name) {
    std::string out = "{\"traceEvents\":[";
    // ~96 bytes of JSON scaffolding per record plus the payload strings;
    // one up-front reservation keeps the append loop realloc-free.
    out.reserve(128 + trace.size() * 128);

    out += R"({"name":"process_name","ph":"M","pid":1,"args":{"name":")";
    append_escaped(out, process_name);
    out += R"("}})";

    for (std::size_t i = 0; i < trace.size(); ++i) {
        const TraceView r = trace.view(i);
        // Instant event on the subject's "thread" row.
        out += R"(,{"name":")";
        append_escaped(out, r.detail);
        out += R"(","cat":")";
        append_escaped(out, r.category);
        out += R"(","ph":"i","ts":)";
        append_format(out, "%.3f", r.when.as_us());
        out += R"(,"pid":1,"tid":")";
        append_escaped(out, r.subject);
        out += R"(","s":"t","args":{"value":)";
        append_format(out, "%g", r.value);
        out += "}}";
        // Counter series for valued records (renders as a graph).
        if (r.value != 0.0) {
            out += R"(,{"name":")";
            append_escaped(out, r.subject);
            out += '.';
            append_escaped(out, r.category);
            out += R"(","ph":"C","ts":)";
            append_format(out, "%.3f", r.when.as_us());
            out += R"(,"pid":1,"args":{"value":)";
            append_format(out, "%g", r.value);
            out += "}}";
        }
    }
    out += "],\"displayTimeUnit\":\"ms\"}";
    return out;
}

void write_chrome_trace(const Trace& trace, const std::string& path,
                        const std::string& process_name) {
    std::ofstream out{path};
    if (!out) throw std::runtime_error{"write_chrome_trace: cannot open " + path};
    out << to_chrome_trace_json(trace, process_name);
}

}  // namespace hsw::sim
