#include "sim/trace_json.hpp"

#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace hsw::sim {

namespace {

std::string escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            default: out += c;
        }
    }
    return out;
}

}  // namespace

std::string to_chrome_trace_json(const Trace& trace, const std::string& process_name) {
    std::string out = "{\"traceEvents\":[";
    char buf[512];
    bool first = true;

    auto append = [&](const std::string& event) {
        if (!first) out += ',';
        first = false;
        out += event;
    };

    // Process metadata.
    std::snprintf(buf, sizeof buf,
                  R"({"name":"process_name","ph":"M","pid":1,"args":{"name":"%s"}})",
                  escape(process_name).c_str());
    append(buf);

    for (const auto& r : trace.records()) {
        // Instant event on the subject's "thread" row.
        std::snprintf(buf, sizeof buf,
                      R"({"name":"%s","cat":"%s","ph":"i","ts":%.3f,"pid":1,)"
                      R"("tid":"%s","s":"t","args":{"value":%g}})",
                      escape(r.detail).c_str(), escape(r.category).c_str(),
                      r.when.as_us(), escape(r.subject).c_str(), r.value);
        append(buf);
        // Counter series for valued records (renders as a graph).
        if (r.value != 0.0) {
            std::snprintf(buf, sizeof buf,
                          R"({"name":"%s.%s","ph":"C","ts":%.3f,"pid":1,)"
                          R"("args":{"value":%g}})",
                          escape(r.subject).c_str(), escape(r.category).c_str(),
                          r.when.as_us(), r.value);
            append(buf);
        }
    }
    out += "],\"displayTimeUnit\":\"ms\"}";
    return out;
}

void write_chrome_trace(const Trace& trace, const std::string& path,
                        const std::string& process_name) {
    std::ofstream out{path};
    if (!out) throw std::runtime_error{"write_chrome_trace: cannot open " + path};
    out << to_chrome_trace_json(trace, process_name);
}

}  // namespace hsw::sim
