#include "sim/trace.hpp"

#include <cstdio>

namespace hsw::sim {

void Trace::record(util::Time when, std::string_view category, std::string_view subject,
                   std::string_view detail, double value) {
    if (!enabled_ && observers_.empty()) return;
    TraceRecord rec{when, std::string{category}, std::string{subject},
                    std::string{detail}, value};
    for (const auto& [id, observer] : observers_) observer(rec);
    if (enabled_) records_.push_back(std::move(rec));
}

std::vector<TraceRecord> Trace::filter(std::string_view category) const {
    std::vector<TraceRecord> out;
    for (const auto& r : records_) {
        if (r.category == category) out.push_back(r);
    }
    return out;
}

std::vector<TraceRecord> Trace::filter(std::string_view category,
                                       std::string_view subject) const {
    std::vector<TraceRecord> out;
    for (const auto& r : records_) {
        if (r.category == category && r.subject == subject) out.push_back(r);
    }
    return out;
}

std::string Trace::render() const {
    std::string out;
    char buf[256];
    for (const auto& r : records_) {
        std::snprintf(buf, sizeof buf, "[%12.3f us] %-8s %-16s %s (%.3f)\n",
                      r.when.as_us(), r.category.c_str(), r.subject.c_str(),
                      r.detail.c_str(), r.value);
        out += buf;
    }
    return out;
}

}  // namespace hsw::sim
