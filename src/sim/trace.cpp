#include "sim/trace.hpp"

#include <algorithm>
#include <cstdio>

namespace hsw::sim {

namespace {

/// Grow-by-doubling with a small floor, so bursty tracing settles into
/// amortized O(1) appends without a thousand tiny reallocations first.
template <typename Vec>
void grow_for_append(Vec& v, std::size_t extra) {
    const std::size_t needed = v.size() + extra;
    if (needed <= v.capacity()) return;
    v.reserve(std::max({needed, v.capacity() * 2, std::size_t{64}}));
}

}  // namespace

Trace::TagId Trace::intern(std::string_view tag) {
    for (std::size_t i = 0; i < tags_.size(); ++i) {
        if (tags_[i] == tag) return static_cast<TagId>(i);
    }
    tags_.emplace_back(tag);
    return static_cast<TagId>(tags_.size() - 1);
}

std::string_view Trace::detail_at(std::size_t i) const {
    const std::uint32_t end = detail_ends_[i];
    const std::uint32_t begin = i == 0 ? 0 : detail_ends_[i - 1];
    return std::string_view{detail_arena_.data() + begin, end - begin};
}

void Trace::append_row(util::Time when, TagId category, TagId subject,
                       std::string_view detail, double value) {
    grow_for_append(whens_, 1);
    grow_for_append(values_, 1);
    grow_for_append(categories_, 1);
    grow_for_append(subjects_, 1);
    grow_for_append(detail_ends_, 1);
    grow_for_append(detail_arena_, detail.size());
    whens_.push_back(when);
    values_.push_back(value);
    categories_.push_back(category);
    subjects_.push_back(subject);
    detail_arena_.insert(detail_arena_.end(), detail.begin(), detail.end());
    detail_ends_.push_back(static_cast<std::uint32_t>(detail_arena_.size()));
}

void Trace::record(util::Time when, std::string_view category, std::string_view subject,
                   std::string_view detail, double value) {
    if (!enabled_ && observers_.empty()) return;
    const TraceView view{when, category, subject, detail, value};
    for (const auto& [id, observer] : observers_) observer(view);
    if (enabled_) append_row(when, intern(category), intern(subject), detail, value);
}

void Trace::append_n(std::string_view category, std::string_view subject,
                     std::string_view detail, std::span<const Sample> samples) {
    if ((!enabled_ && observers_.empty()) || samples.empty()) return;
    for (const auto& [id, observer] : observers_) {
        for (const Sample& s : samples) {
            observer(TraceView{s.when, category, subject, detail, s.value});
        }
    }
    if (!enabled_) return;
    const TagId cat = intern(category);
    const TagId subj = intern(subject);
    grow_for_append(whens_, samples.size());
    grow_for_append(values_, samples.size());
    grow_for_append(categories_, samples.size());
    grow_for_append(subjects_, samples.size());
    grow_for_append(detail_ends_, samples.size());
    grow_for_append(detail_arena_, detail.size() * samples.size());
    for (const Sample& s : samples) {
        whens_.push_back(s.when);
        values_.push_back(s.value);
        categories_.push_back(cat);
        subjects_.push_back(subj);
        detail_arena_.insert(detail_arena_.end(), detail.begin(), detail.end());
        detail_ends_.push_back(static_cast<std::uint32_t>(detail_arena_.size()));
    }
}

void Trace::reserve(std::size_t records, std::size_t detail_bytes) {
    whens_.reserve(records);
    values_.reserve(records);
    categories_.reserve(records);
    subjects_.reserve(records);
    detail_ends_.reserve(records);
    detail_arena_.reserve(detail_bytes);
}

TraceView Trace::view(std::size_t i) const {
    return TraceView{whens_[i], tags_[categories_[i]], tags_[subjects_[i]],
                     detail_at(i), values_[i]};
}

std::vector<TraceRecord> Trace::records() const {
    std::vector<TraceRecord> out;
    out.reserve(size());
    for (std::size_t i = 0; i < size(); ++i) {
        const TraceView v = view(i);
        out.push_back(TraceRecord{v.when, std::string{v.category}, std::string{v.subject},
                                  std::string{v.detail}, v.value});
    }
    return out;
}

std::vector<TraceRecord> Trace::filter(std::string_view category) const {
    std::vector<TraceRecord> out;
    for (std::size_t i = 0; i < size(); ++i) {
        const TraceView v = view(i);
        if (v.category != category) continue;
        out.push_back(TraceRecord{v.when, std::string{v.category}, std::string{v.subject},
                                  std::string{v.detail}, v.value});
    }
    return out;
}

std::vector<TraceRecord> Trace::filter(std::string_view category,
                                       std::string_view subject) const {
    std::vector<TraceRecord> out;
    for (std::size_t i = 0; i < size(); ++i) {
        const TraceView v = view(i);
        if (v.category != category || v.subject != subject) continue;
        out.push_back(TraceRecord{v.when, std::string{v.category}, std::string{v.subject},
                                  std::string{v.detail}, v.value});
    }
    return out;
}

void Trace::clear() {
    whens_.clear();
    values_.clear();
    categories_.clear();
    subjects_.clear();
    detail_ends_.clear();
    detail_arena_.clear();
    tags_.clear();
}

std::string Trace::render() const {
    std::string out;
    char buf[256];
    for (std::size_t i = 0; i < size(); ++i) {
        const TraceView r = view(i);
        std::snprintf(buf, sizeof buf, "[%12.3f us] %-8.*s %-16.*s %.*s (%.3f)\n",
                      r.when.as_us(), static_cast<int>(r.category.size()),
                      r.category.data(), static_cast<int>(r.subject.size()),
                      r.subject.data(), static_cast<int>(r.detail.size()),
                      r.detail.data(), r.value);
        out += buf;
    }
    return out;
}

}  // namespace hsw::sim
