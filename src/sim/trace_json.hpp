// Chrome trace-event export (chrome://tracing / Perfetto "traceEvents"
// JSON). Each trace record becomes an instant event; frequency-valued
// records additionally emit counter events so p-state/uncore timelines
// render as graphs.
#pragma once

#include <string>

#include "sim/trace.hpp"

namespace hsw::sim {

/// Serialize to the Trace Event Format. `process_name` labels the pid row.
[[nodiscard]] std::string to_chrome_trace_json(const Trace& trace,
                                               const std::string& process_name =
                                                   "haswell-survey");

/// Convenience: write the JSON to a file; throws std::runtime_error on
/// failure.
void write_chrome_trace(const Trace& trace, const std::string& path,
                        const std::string& process_name = "haswell-survey");

}  // namespace hsw::sim
