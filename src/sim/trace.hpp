// Timeline trace recorder.
//
// Components emit (time, category, subject, value) records; the Figure 4
// bench uses this to show the request -> opportunity -> complete sequence of
// p-state changes, and tests use it to assert event ordering.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "util/units.hpp"

namespace hsw::sim {

struct TraceRecord {
    util::Time when;
    std::string category;  // e.g. "pstate", "cstate", "rapl"
    std::string subject;   // e.g. "socket0.core3"
    std::string detail;    // free-form, e.g. "request 12->13"
    double value = 0.0;
};

class Trace {
public:
    using Observer = std::function<void(const TraceRecord&)>;
    using ObserverId = std::uint64_t;

    void enable(bool on = true) { enabled_ = on; }
    [[nodiscard]] bool enabled() const { return enabled_; }

    /// Install a tap that sees every record as it is emitted, even while
    /// recording is disabled (the analysis layer audits the event stream
    /// without paying for record storage). Multiple observers coexist --
    /// registration never displaces another component's tap, so an audit
    /// checker and an engine metrics probe can watch the same node. Each
    /// observer belongs to this Trace (and therefore to one Node): nodes
    /// owned by different worker threads never share observer state.
    ObserverId add_observer(Observer observer) {
        observers_.emplace_back(next_observer_id_, std::move(observer));
        return next_observer_id_++;
    }

    /// Remove one observer by the id add_observer returned. Unknown ids
    /// are ignored (the observer may already be gone).
    void remove_observer(ObserverId id) {
        std::erase_if(observers_, [id](const auto& o) { return o.first == id; });
    }

    [[nodiscard]] std::size_t observer_count() const { return observers_.size(); }

    void record(util::Time when, std::string_view category, std::string_view subject,
                std::string_view detail, double value = 0.0);

    [[nodiscard]] const std::vector<TraceRecord>& records() const { return records_; }

    /// All records of one category, in time order.
    [[nodiscard]] std::vector<TraceRecord> filter(std::string_view category) const;

    /// All records of one category and subject.
    [[nodiscard]] std::vector<TraceRecord> filter(std::string_view category,
                                                  std::string_view subject) const;

    void clear() { records_.clear(); }

    /// Render as a readable timeline ("[  123.456 us] pstate socket0.core3 ...").
    [[nodiscard]] std::string render() const;

private:
    bool enabled_ = false;
    ObserverId next_observer_id_ = 1;
    std::vector<std::pair<ObserverId, Observer>> observers_;
    std::vector<TraceRecord> records_;
};

}  // namespace hsw::sim
