// Timeline trace recorder.
//
// Components emit (time, category, subject, detail, value) records; the
// Figure 4 bench uses this to show the request -> opportunity -> complete
// sequence of p-state changes, and tests use it to assert event ordering.
//
// Storage is structure-of-arrays: times and values in flat vectors,
// category/subject interned (they are low-cardinality: "pstate"/"cpu3"
// style tags), details appended to one grow-by-doubling byte arena. A
// recorded sample therefore costs no per-record string allocations, and
// serializers (render, chrome-trace JSON) walk the columns without
// materializing row objects. `records()`/`filter()` still hand out owning
// TraceRecord rows for tests and offline analysis.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/units.hpp"

namespace hsw::sim {

/// Owning row, materialized on demand (tests, offline filtering).
struct TraceRecord {
    util::Time when;
    std::string category;  // e.g. "pstate", "cstate", "rapl"
    std::string subject;   // e.g. "socket0.core3"
    std::string detail;    // free-form, e.g. "request 12->13"
    double value = 0.0;
};

/// Non-owning row view -- what observers and serializers see. Valid only
/// for the duration of the observer call / until the trace mutates.
struct TraceView {
    util::Time when;
    std::string_view category;
    std::string_view subject;
    std::string_view detail;
    double value = 0.0;

    TraceView() = default;
    TraceView(util::Time w, std::string_view c, std::string_view s, std::string_view d,
              double v)
        : when{w}, category{c}, subject{s}, detail{d}, value{v} {}
    TraceView(const TraceRecord& r)  // NOLINT(*-explicit-*): same row, borrowed
        : when{r.when}, category{r.category}, subject{r.subject}, detail{r.detail},
          value{r.value} {}
};

class Trace {
public:
    using Observer = std::function<void(const TraceView&)>;
    using ObserverId = std::uint64_t;

    /// One (time, value) pair for bulk appends.
    struct Sample {
        util::Time when;
        double value = 0.0;
    };

    void enable(bool on = true) { enabled_ = on; }
    [[nodiscard]] bool enabled() const { return enabled_; }

    /// Install a tap that sees every record as it is emitted, even while
    /// recording is disabled (the analysis layer audits the event stream
    /// without paying for record storage). Multiple observers coexist --
    /// registration never displaces another component's tap, so an audit
    /// checker and an engine metrics probe can watch the same node. Each
    /// observer belongs to this Trace (and therefore to one Node): nodes
    /// owned by different worker threads never share observer state.
    ObserverId add_observer(Observer observer) {
        observers_.emplace_back(next_observer_id_, std::move(observer));
        return next_observer_id_++;
    }

    /// Remove one observer by the id add_observer returned. Unknown ids
    /// are ignored (the observer may already be gone).
    void remove_observer(ObserverId id) {
        std::erase_if(observers_, [id](const auto& o) { return o.first == id; });
    }

    [[nodiscard]] std::size_t observer_count() const { return observers_.size(); }

    void record(util::Time when, std::string_view category, std::string_view subject,
                std::string_view detail, double value = 0.0);

    /// Bulk append: `samples.size()` records sharing one category/subject/
    /// detail tag. Interns the tags once and grows each column once --
    /// the path for components that batch samples (meters, sweeps) instead
    /// of tracing point-wise.
    void append_n(std::string_view category, std::string_view subject,
                  std::string_view detail, std::span<const Sample> samples);

    /// Pre-size the columns (records) and the detail arena (bytes).
    void reserve(std::size_t records, std::size_t detail_bytes = 0);

    [[nodiscard]] std::size_t size() const { return whens_.size(); }
    [[nodiscard]] bool empty() const { return whens_.empty(); }

    /// Borrowing access to record `i` (0 <= i < size()).
    [[nodiscard]] TraceView view(std::size_t i) const;

    /// All records, materialized as owning rows in time order.
    [[nodiscard]] std::vector<TraceRecord> records() const;

    /// All records of one category, in time order.
    [[nodiscard]] std::vector<TraceRecord> filter(std::string_view category) const;

    /// All records of one category and subject.
    [[nodiscard]] std::vector<TraceRecord> filter(std::string_view category,
                                                  std::string_view subject) const;

    void clear();

    /// Render as a readable timeline ("[  123.456 us] pstate socket0.core3 ...").
    [[nodiscard]] std::string render() const;

private:
    using TagId = std::uint32_t;

    TagId intern(std::string_view tag);
    void append_row(util::Time when, TagId category, TagId subject,
                    std::string_view detail, double value);
    [[nodiscard]] std::string_view detail_at(std::size_t i) const;

    bool enabled_ = false;
    ObserverId next_observer_id_ = 1;
    std::vector<std::pair<ObserverId, Observer>> observers_;

    // Columns (SoA). detail_ends_[i] is the arena offset one past record
    // i's detail bytes; record i's detail starts at detail_ends_[i - 1].
    std::vector<util::Time> whens_;
    std::vector<double> values_;
    std::vector<TagId> categories_;
    std::vector<TagId> subjects_;
    std::vector<std::uint32_t> detail_ends_;
    std::vector<char> detail_arena_;

    // Tag interner: low cardinality, linear probe beats a hash map here.
    std::vector<std::string> tags_;
};

}  // namespace hsw::sim
