// Discrete-event simulation kernel.
//
// The simulator owns a priority queue of timestamped callbacks. Ties are
// broken by insertion sequence number, so runs are bit-for-bit replayable.
// Components (PCU, RAPL, meter, workload phases) schedule themselves;
// between events all machine state is constant and quantities integrate in
// closed form, which is what makes minute-long simulated experiments run in
// milliseconds of host time.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <unordered_set>
#include <vector>

#include "util/units.hpp"

namespace hsw::sim {

using util::Time;

/// Handle for cancelling a scheduled event.
struct EventId {
    std::uint64_t seq = 0;
    [[nodiscard]] bool valid() const { return seq != 0; }
};

class Simulator {
public:
    using Callback = std::function<void()>;

    Simulator() = default;
    Simulator(const Simulator&) = delete;
    Simulator& operator=(const Simulator&) = delete;

    [[nodiscard]] Time now() const { return now_; }

    /// Schedule `cb` at absolute time `t` (must be >= now()).
    EventId schedule_at(Time t, Callback cb);

    /// Schedule `cb` after a relative delay.
    EventId schedule_after(Time dt, Callback cb) { return schedule_at(now_ + dt, std::move(cb)); }

    /// Cancel a pending event. Returns false if it already fired or was
    /// cancelled before.
    bool cancel(EventId id);

    /// Schedule `cb(now)` at `start`, then every `period` forever.
    /// The returned id cancels the *current* pending occurrence; the periodic
    /// chain stops once cancelled through `cancel_periodic`.
    std::uint64_t schedule_periodic(Time start, Time period, std::function<void(Time)> cb);
    void cancel_periodic(std::uint64_t periodic_id);

    /// Run all events with timestamp <= t, then set now() = t.
    void run_until(Time t);

    /// Process the single next event if any; returns false when idle.
    bool step();

    /// Run until the event queue drains (use with care: periodic tasks never
    /// drain; prefer run_until).
    void run_all();

    [[nodiscard]] std::size_t pending_events() const;
    [[nodiscard]] std::uint64_t processed_events() const { return processed_; }

private:
    struct Event {
        Time when;
        std::uint64_t seq;
        Callback cb;
        bool operator>(const Event& o) const {
            if (when != o.when) return when > o.when;
            return seq > o.seq;
        }
    };

    void reschedule_periodic(std::uint64_t periodic_id, Time next, Time period,
                             std::shared_ptr<std::function<void(Time)>> cb);

    Time now_ = Time::zero();
    std::uint64_t next_seq_ = 1;
    std::uint64_t next_periodic_ = 1;
    std::uint64_t processed_ = 0;
    std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
    std::unordered_set<std::uint64_t> cancelled_;
    std::unordered_set<std::uint64_t> dead_periodics_;
};

}  // namespace hsw::sim
