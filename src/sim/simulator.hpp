// Discrete-event simulation kernel.
//
// The simulator owns a slab of event records indexed by an intrusive 4-ary
// min-heap. Ties are broken by insertion sequence number, so runs are
// bit-for-bit replayable. Components (PCU, RAPL, meter, workload phases)
// schedule themselves; between events all machine state is constant and
// quantities integrate in closed form, which is what makes minute-long
// simulated experiments run in milliseconds of host time.
//
// Hot-path design (the engine fans one survey into 32 simulator-bound jobs,
// so dispatch cost is cold-query latency):
//  - Callbacks are util::InlineFunction: captures up to kCallbackInlineBytes
//    live inside the event record, so steady-state scheduling and dispatch
//    never touch the allocator.
//  - Event records live in a slab with a free list; the heap stores
//    (when, seq, slot) entries, so sift comparisons never leave the compact
//    heap array, and each record knows its heap position, which makes
//    cancel() an O(log n) in-heap removal instead of a tombstone.
//  - Periodic events are first-class records: the period is stored in the
//    event, and after each fire the top entry's key is bumped in place and
//    restored with a single sift-down -- no per-tick closure chain, no
//    pop-then-push round trip.
//
// Determinism: events are dispatched in strict (when, seq) order, and seq
// numbers are allocated in exactly the same program order as the previous
// std::function-based engine (a periodic's next occurrence takes its seq
// *after* the callback body ran, like the old reschedule chain did), so
// every byte of survey output is preserved.
#pragma once

#include <concepts>
#include <cstdint>
#include <limits>
#include <unordered_map>
#include <vector>

#include "util/inline_function.hpp"
#include "util/units.hpp"

namespace hsw::sim {

using util::Time;

/// Handle for cancelling a scheduled one-shot event.
struct EventId {
    std::uint64_t seq = 0;
    std::uint32_t slot = 0;
    [[nodiscard]] bool valid() const { return seq != 0; }
};

class Simulator {
public:
    /// Inline capture budget for event callbacks. Sized for the largest
    /// hot-path capture (the PCU grant-apply lambda: this + socket id +
    /// PcuOutputs) so every scheduling call in the simulation core stays
    /// allocation-free.
    static constexpr std::size_t kCallbackInlineBytes = 88;
    using Callback = util::InlineFunction<void(Time), kCallbackInlineBytes>;

    Simulator() = default;
    Simulator(const Simulator&) = delete;
    Simulator& operator=(const Simulator&) = delete;

    [[nodiscard]] Time now() const { return now_; }

    /// Schedule `cb` at absolute time `t` (must be >= now()).
    template <typename F>
        requires std::invocable<std::decay_t<F>&>
    EventId schedule_at(Time t, F&& cb) {
        return schedule_raw(
            t, Callback{[fn = std::forward<F>(cb)](Time) mutable { fn(); }},
            Time::zero(), 0);
    }

    /// Schedule `cb` after a relative delay.
    template <typename F>
        requires std::invocable<std::decay_t<F>&>
    EventId schedule_after(Time dt, F&& cb) {
        return schedule_at(now_ + dt, std::forward<F>(cb));
    }

    /// Cancel a pending one-shot. O(log n) in-heap removal. Returns false
    /// for stale ids (already fired, already cancelled, or never scheduled)
    /// without retaining any per-id state.
    bool cancel(EventId id);

    /// Schedule `cb(fire_time)` at `start`, then every `period` (> 0)
    /// forever, until cancelled through `cancel_periodic`. The event record
    /// is rescheduled in place -- a free-running periodic costs zero
    /// allocations per tick.
    template <typename F>
        requires std::invocable<std::decay_t<F>&, Time>
    std::uint64_t schedule_periodic(Time start, Time period, F&& cb) {
        const std::uint64_t pid = next_periodic_++;
        schedule_raw(start, Callback{std::forward<F>(cb)}, period, pid);
        return pid;
    }

    /// Stop a periodic chain. Returns false for stale ids (unknown or
    /// already cancelled) without retaining any per-id state. Safe to call
    /// from inside the periodic's own callback.
    bool cancel_periodic(std::uint64_t periodic_id);

    /// Run all events with timestamp <= t, then set now() = t.
    void run_until(Time t);

    /// Process the single next event if any; returns false when idle.
    bool step();

    /// Run until the event queue drains (use with care: periodic tasks never
    /// drain; prefer run_until).
    void run_all();

    /// Exact number of scheduled-and-not-yet-fired events (periodic chains
    /// count their single pending occurrence).
    [[nodiscard]] std::size_t pending_events() const { return heap_.size(); }
    [[nodiscard]] std::uint64_t processed_events() const { return processed_; }

    /// Events dispatched by any Simulator on the calling thread since
    /// thread start. The experiment engine samples this around a job to
    /// report events/sec per job without threading a counter through the
    /// opaque job closure.
    [[nodiscard]] static std::uint64_t thread_events_processed();

    /// Capacity snapshot for allocation-freeness tests: steady state means
    /// none of these change across a dispatch window.
    struct MemoryStats {
        std::size_t slab_capacity = 0;  // event records allocated
        std::size_t heap_capacity = 0;  // heap index vector capacity
        std::size_t live_events = 0;    // scheduled or mid-dispatch
        std::size_t free_slots = 0;     // slab records on the free list
    };
    [[nodiscard]] MemoryStats memory_stats() const;

    ~Simulator();

private:
    static constexpr std::uint32_t kNpos = std::numeric_limits<std::uint32_t>::max();

    struct Event {
        Time when;
        std::uint64_t seq = 0;
        Time period = Time::zero();     // zero => one-shot
        std::uint64_t periodic_id = 0;  // nonzero => periodic
        std::uint32_t heap_pos = kNpos;
        std::uint32_t next_free = kNpos;
        bool live = false;     // slot holds a scheduled (or running) event
        bool running = false;  // periodic currently inside its callback
        Callback cb;
    };

    /// Heap entries carry their own ordering key: sift compares stay inside
    /// the (hot, compact) heap array instead of chasing slab records, which
    /// is what keeps dispatch memory-bound work to one stream.
    struct HeapEntry {
        Time when;
        std::uint64_t seq = 0;
        std::uint32_t slot = 0;
    };

    EventId schedule_raw(Time t, Callback cb, Time period, std::uint64_t periodic_id);
    std::uint32_t acquire_slot();
    void release_slot(std::uint32_t slot);

    /// Push accumulated schedule/dispatch/cancel deltas into the obs
    /// registry. Deltas are plain members so step() -- the CI-gated hot
    /// path -- never touches an atomic; run_until/run_all/dtor flush.
    void flush_telemetry();

    [[nodiscard]] static bool heap_less(const HeapEntry& a, const HeapEntry& b) {
        if (a.when != b.when) return a.when < b.when;
        return a.seq < b.seq;
    }
    void heap_push(HeapEntry entry);
    void heap_remove(std::uint32_t slot);
    void sift_up(std::size_t pos);
    void sift_down(std::size_t pos);

    Time now_ = Time::zero();
    std::uint64_t next_seq_ = 1;
    std::uint64_t next_periodic_ = 1;
    std::uint64_t processed_ = 0;
    std::uint64_t scheduled_total_ = 0;   // schedule_raw calls (incl. periodics)
    std::uint64_t cancelled_total_ = 0;   // successful cancel/cancel_periodic
    std::uint64_t heap_peak_ = 0;         // max heap depth seen
    std::uint64_t flushed_processed_ = 0;
    std::uint64_t flushed_scheduled_ = 0;
    std::uint64_t flushed_cancelled_ = 0;
    std::vector<Event> slab_;
    std::vector<HeapEntry> heap_;  // ordered by (when, seq)
    std::uint32_t free_head_ = kNpos;
    std::unordered_map<std::uint64_t, std::uint32_t> periodic_slots_;
};

}  // namespace hsw::sim
