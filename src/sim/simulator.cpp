#include "sim/simulator.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace hsw::sim {

namespace {
thread_local std::uint64_t g_thread_events = 0;
}  // namespace

std::uint64_t Simulator::thread_events_processed() { return g_thread_events; }

Simulator::~Simulator() { flush_telemetry(); }

void Simulator::flush_telemetry() {
    // Counter::inc is a no-op (one relaxed load) on a disabled registry,
    // so the deltas are simply advanced either way.
    static obs::Counter& c_processed = obs::counter(
        "hsw_sim_events_processed", "Events dispatched by the simulation kernel");
    static obs::Counter& c_scheduled = obs::counter(
        "hsw_sim_events_scheduled", "Events scheduled (one-shots and periodic starts)");
    static obs::Counter& c_cancelled = obs::counter(
        "hsw_sim_events_cancelled", "Events removed from the heap before firing");
    static obs::Gauge& g_heap_peak = obs::gauge(
        "hsw_sim_heap_peak", "Deepest event-heap occupancy seen by any simulator");
    c_processed.inc(processed_ - flushed_processed_);
    c_scheduled.inc(scheduled_total_ - flushed_scheduled_);
    c_cancelled.inc(cancelled_total_ - flushed_cancelled_);
    flushed_processed_ = processed_;
    flushed_scheduled_ = scheduled_total_;
    flushed_cancelled_ = cancelled_total_;
    if (static_cast<std::int64_t>(heap_peak_) > g_heap_peak.value()) {
        g_heap_peak.set(static_cast<std::int64_t>(heap_peak_));
    }
}

// --- slab -------------------------------------------------------------------

std::uint32_t Simulator::acquire_slot() {
    if (free_head_ != kNpos) {
        const std::uint32_t slot = free_head_;
        free_head_ = slab_[slot].next_free;
        slab_[slot].next_free = kNpos;
        return slot;
    }
    slab_.emplace_back();
    return static_cast<std::uint32_t>(slab_.size() - 1);
}

void Simulator::release_slot(std::uint32_t slot) {
    Event& ev = slab_[slot];
    ev.live = false;
    ev.running = false;
    ev.periodic_id = 0;
    ev.cb.reset();  // drop captured state promptly, not at slot reuse
    ev.next_free = free_head_;
    free_head_ = slot;
}

// --- 4-ary heap of (when, seq, slot) entries --------------------------------

void Simulator::sift_up(std::size_t pos) {
    const HeapEntry entry = heap_[pos];
    while (pos > 0) {
        const std::size_t parent = (pos - 1) / 4;
        if (!heap_less(entry, heap_[parent])) break;
        heap_[pos] = heap_[parent];
        slab_[heap_[pos].slot].heap_pos = static_cast<std::uint32_t>(pos);
        pos = parent;
    }
    heap_[pos] = entry;
    slab_[entry.slot].heap_pos = static_cast<std::uint32_t>(pos);
}

void Simulator::sift_down(std::size_t pos) {
    const HeapEntry entry = heap_[pos];
    const std::size_t n = heap_.size();
    for (;;) {
        const std::size_t first = 4 * pos + 1;
        if (first >= n) break;
        std::size_t best = first;
        const std::size_t last = std::min(first + 4, n);
        for (std::size_t c = first + 1; c < last; ++c) {
            if (heap_less(heap_[c], heap_[best])) best = c;
        }
        if (!heap_less(heap_[best], entry)) break;
        heap_[pos] = heap_[best];
        slab_[heap_[pos].slot].heap_pos = static_cast<std::uint32_t>(pos);
        pos = best;
    }
    heap_[pos] = entry;
    slab_[entry.slot].heap_pos = static_cast<std::uint32_t>(pos);
}

void Simulator::heap_push(HeapEntry entry) {
    heap_.push_back(entry);
    sift_up(heap_.size() - 1);
}

void Simulator::heap_remove(std::uint32_t slot) {
    const std::size_t pos = slab_[slot].heap_pos;
    assert(pos < heap_.size() && heap_[pos].slot == slot);
    slab_[slot].heap_pos = kNpos;
    const HeapEntry moved = heap_.back();
    heap_.pop_back();
    if (pos == heap_.size()) return;  // removed the tail entry
    heap_[pos] = moved;
    slab_[moved.slot].heap_pos = static_cast<std::uint32_t>(pos);
    sift_down(pos);
    if (slab_[moved.slot].heap_pos == pos) sift_up(pos);
}

// --- scheduling -------------------------------------------------------------

EventId Simulator::schedule_raw(Time t, Callback cb, Time period,
                                std::uint64_t periodic_id) {
    if (t < now_) throw std::invalid_argument{"Simulator::schedule_at: time in the past"};
    if (periodic_id != 0 && period <= Time::zero()) {
        throw std::invalid_argument{"Simulator::schedule_periodic: period must be > 0"};
    }
    const std::uint32_t slot = acquire_slot();
    Event& ev = slab_[slot];
    ev.when = t;
    ev.seq = next_seq_++;
    ev.period = period;
    ev.periodic_id = periodic_id;
    ev.live = true;
    ev.running = false;
    ev.cb = std::move(cb);
    heap_push(HeapEntry{ev.when, ev.seq, slot});
    if (periodic_id != 0) periodic_slots_.emplace(periodic_id, slot);
    ++scheduled_total_;
    if (heap_.size() > heap_peak_) heap_peak_ = heap_.size();
    return EventId{ev.seq, slot};
}

bool Simulator::cancel(EventId id) {
    if (!id.valid() || id.slot >= slab_.size()) return false;
    const Event& ev = slab_[id.slot];
    // Stale ids (already fired, already cancelled, reused slot) fail the
    // seq match; periodic occurrences are not cancellable through this API.
    if (!ev.live || ev.seq != id.seq || ev.periodic_id != 0) return false;
    heap_remove(id.slot);
    release_slot(id.slot);
    ++cancelled_total_;
    return true;
}

bool Simulator::cancel_periodic(std::uint64_t periodic_id) {
    const auto it = periodic_slots_.find(periodic_id);
    if (it == periodic_slots_.end()) return false;  // stale: keep no state
    const std::uint32_t slot = it->second;
    periodic_slots_.erase(it);
    Event& ev = slab_[slot];
    assert(ev.live && ev.periodic_id == periodic_id);
    if (ev.running) {
        // Cancelled from inside its own callback: step() owns the slot and
        // will release it instead of rescheduling.
        ev.live = false;
        ++cancelled_total_;
        return true;
    }
    heap_remove(slot);
    release_slot(slot);
    ++cancelled_total_;
    return true;
}

// --- dispatch ---------------------------------------------------------------

// hsw:hot-path -- step() is the engine's innermost loop: slot reuse and
// in-place heap rewrites only, no allocation, no blocking (hsw_lint
// enforces this region).
bool Simulator::step() {
    if (heap_.empty()) return false;
    const std::uint32_t slot = heap_.front().slot;
    Event& ev = slab_[slot];
    assert(ev.when >= now_);
    now_ = ev.when;
    const Time fired = ev.when;
    ++processed_;
    ++g_thread_events;

    if (ev.periodic_id == 0) {
        heap_remove(slot);
        // Move the callback out and free the slot before invoking: the
        // callback may schedule (reusing this slot) or grow the slab.
        Callback cb = std::move(ev.cb);
        release_slot(slot);
        cb(fired);
        return true;
    }

    // Periodic: the record stays at the top of the heap while its callback
    // runs -- nothing the callback can schedule orders before (fired, seq),
    // so the root cannot be displaced. The next occurrence then takes its
    // seq *after* the callback body (events the callback schedules keep
    // their pre-rewrite tie-break order) and a single sift-down restores
    // heap order, instead of a pop-then-push round trip.
    ev.running = true;
    Callback cb = std::move(ev.cb);
    try {
        cb(fired);
    } catch (...) {
        Event& after = slab_[slot];  // the callback may have grown the slab
        if (after.live) periodic_slots_.erase(after.periodic_id);
        heap_remove(slot);
        release_slot(slot);
        throw;
    }
    Event& after = slab_[slot];
    after.running = false;
    if (!after.live) {
        // cancel_periodic() ran inside the callback.
        heap_remove(slot);
        release_slot(slot);
        return true;
    }
    after.cb = std::move(cb);
    after.when = fired + after.period;
    after.seq = next_seq_++;
    const std::size_t pos = after.heap_pos;
    heap_[pos].when = after.when;
    heap_[pos].seq = after.seq;
    sift_down(pos);
    return true;
}
// hsw:end-hot-path

void Simulator::run_until(Time t) {
    obs::trace::Span span{"sim.run_until", "sim"};
    const std::uint64_t before = processed_;
    while (!heap_.empty() && heap_.front().when <= t) step();
    if (now_ < t) now_ = t;
    if (span.armed()) {
        span.set_events(processed_ - before);
        span.set_sim_us(t.as_us());
    }
    flush_telemetry();
}

void Simulator::run_all() {
    obs::trace::Span span{"sim.run_all", "sim"};
    const std::uint64_t before = processed_;
    while (step()) {
    }
    if (span.armed()) {
        span.set_events(processed_ - before);
        span.set_sim_us(now_.as_us());
    }
    flush_telemetry();
}

Simulator::MemoryStats Simulator::memory_stats() const {
    MemoryStats stats;
    stats.slab_capacity = slab_.capacity();
    stats.heap_capacity = heap_.capacity();
    std::size_t free_count = 0;
    for (std::uint32_t s = free_head_; s != kNpos; s = slab_[s].next_free) ++free_count;
    stats.free_slots = free_count;
    stats.live_events = slab_.size() - free_count;
    return stats;
}

}  // namespace hsw::sim
