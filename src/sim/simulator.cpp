#include "sim/simulator.hpp"

#include <cassert>
#include <memory>
#include <stdexcept>

namespace hsw::sim {

EventId Simulator::schedule_at(Time t, Callback cb) {
    if (t < now_) throw std::invalid_argument{"Simulator::schedule_at: time in the past"};
    const std::uint64_t seq = next_seq_++;
    queue_.push(Event{t, seq, std::move(cb)});
    return EventId{seq};
}

bool Simulator::cancel(EventId id) {
    if (!id.valid()) return false;
    // Lazy cancellation: remember the seq; the event is dropped when popped.
    return cancelled_.insert(id.seq).second;
}

std::uint64_t Simulator::schedule_periodic(Time start, Time period,
                                           std::function<void(Time)> cb) {
    const std::uint64_t pid = next_periodic_++;
    auto shared = std::make_shared<std::function<void(Time)>>(std::move(cb));
    reschedule_periodic(pid, start, period, shared);
    return pid;
}

void Simulator::cancel_periodic(std::uint64_t periodic_id) {
    dead_periodics_.insert(periodic_id);
}

void Simulator::reschedule_periodic(std::uint64_t pid, Time next, Time period,
                                    std::shared_ptr<std::function<void(Time)>> cb) {
    schedule_at(next, [this, pid, next, period, cb] {
        if (dead_periodics_.contains(pid)) {
            dead_periodics_.erase(pid);
            return;
        }
        (*cb)(next);
        reschedule_periodic(pid, next + period, period, cb);
    });
}

bool Simulator::step() {
    while (!queue_.empty()) {
        Event ev = queue_.top();
        queue_.pop();
        if (cancelled_.erase(ev.seq) > 0) continue;  // skip cancelled
        assert(ev.when >= now_);
        now_ = ev.when;
        ++processed_;
        ev.cb();
        return true;
    }
    return false;
}

void Simulator::run_until(Time t) {
    while (!queue_.empty() && queue_.top().when <= t) {
        if (!step()) break;
    }
    if (now_ < t) now_ = t;
}

void Simulator::run_all() {
    while (step()) {
    }
}

std::size_t Simulator::pending_events() const {
    // cancelled_ entries still sit in the queue until popped.
    return queue_.size() >= cancelled_.size() ? queue_.size() - cancelled_.size() : 0;
}

}  // namespace hsw::sim
