// The survey service's request/response protocol.
//
// Transport framing is a 4-byte big-endian payload length followed by the
// payload -- trivially parseable from any language, bounded so a garbage
// length can't allocate unbounded memory. Frame payloads are line-based
// text headers (in the spirit of the spec's canonical serialization:
// inspectable with a pager) followed by length-prefixed raw bytes:
//
//   hsw-survey-rpc v1\n
//   verb query\n
//   experiment fig3\n
//   point *\n                  ("*" = whole experiment, assembled artifacts)
//   seed 0x0000000000c0ffee\n
//   audit off\n
//   quick 0\n
//   deadline-ms 5000\n         (0 = no deadline)
//
// Since v1.1 a `metrics` verb scrapes the process-wide obs registry:
//
//   hsw-survey-rpc v1\n
//   verb metrics\n
//   format prometheus\n        (or "json")
//   deadline-ms 0\n
//
// The response payload is the exposition text. Parsers accept a magic of
// "hsw-survey-rpc v1" or "hsw-survey-rpc v1.<minor>" so future minor
// revisions can self-identify without breaking v1.0 peers.
//
// Since v1.2 a `health` verb gives fleet routers a cheap liveness /
// readiness probe (response payload "ok" while serving, "draining" once
// shutdown began). Pre-v1.2 servers answer it with MalformedRequest
// ("unknown verb"); a router treats that as "legacy shard, probe via
// metrics instead".
//
// Since v1.3 requests and responses may carry a `tag` header (non-zero
// u64, chosen by the client) and a `batch` frame can carry many requests
// at once for pipelining:
//
//   hsw-survey-rpc v1\n
//   verb batch\n
//   count 3\n
//   <u32-BE len><encoded sub-request> x 3
//
// The server answers a batch with `count` individual response frames,
// each echoing its sub-request's tag. Tagged responses may arrive in any
// order (the server coalesces and flushes completions as they land);
// untagged traffic keeps strict request order, so v1.0-v1.2 clients are
// untouched. A pre-v1.3 server answers a batch frame with
// MalformedRequest ("unknown verb") -- clients treat that one response as
// a capability probe and fall back to single-request framing.
//
// Since v1.4 any request may carry a distributed trace context header
// between `tag` and `deadline-ms`:
//
//   trace <trace_id> <parent_span_id> <flags>\n
//
// All three fields are hex/decimal u64-u64-u32 (encoders emit 0x-hex
// ids). The header is pure telemetry: it never participates in
// route_key, never changes payload bytes, and a pre-v1.4 server rejects
// it with MalformedRequest ("unknown request field: trace") -- clients
// treat that as a capability probe (see is_unknown_trace_field), strip
// the header and retry, remembering the peer is legacy. v1.4 also adds
// two debug verbs: `trace_dump` (response payload = the server's Chrome
// trace-event JSON export) and `dump` (server writes a flight-recorder
// snapshot; response payload = the file path).
//
// Responses carry a status, a structured error code on rejection, the
// payload's provenance (hot cache / disk cache / computed) on success, and
// the payload bytes. A whole-experiment payload is a blob (see
// engine/blob.hpp) with one section per artifact, named "csv:<filename>"
// or "render:<filename>" in assembly order; a single-point payload is the
// job's raw payload blob, byte-identical to what the batch engine caches.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/audit_config.hpp"

namespace hsw::service::protocol {

inline constexpr std::string_view kMagic = "hsw-survey-rpc v1";

/// Protocol minor revision. The magic line stays "v1" on the wire (so v1.0
/// peers interoperate untouched); parsers accept an optional ".<minor>"
/// suffix, and the minor gates additive capabilities only:
///   v1.1  adds the `metrics` verb and its `format` field.
///   v1.2  adds the `health` verb and the Unavailable error code.
///   v1.3  adds the `tag` request/response header and `batch` frames for
///         request pipelining (out-of-order-safe tagged responses).
///   v1.4  adds the optional `trace` request header (distributed trace
///         context) and the `trace_dump` / `dump` debug verbs.
/// A v1.0 server answers a v1.1-only verb with MalformedRequest ("unknown
/// verb"), which v1.1 clients treat as "server predates metrics"; the same
/// capability probe covers `health` against v1.1 shards, `batch` against
/// v1.2 shards, and the `trace` header against v1.3 shards ("unknown
/// request field: trace").
inline constexpr unsigned kProtocolMinor = 4;

/// Hard ceiling on a single frame, request or response. Large enough for
/// any assembled survey artifact set, small enough that a malicious or
/// corrupt length prefix cannot balloon memory.
inline constexpr std::uint32_t kMaxFrameBytes = 64u << 20;

/// Ceiling on sub-requests per v1.3 batch frame. Generous for pipelining
/// (hsw_query caps --pipeline far lower) while bounding the per-frame
/// work a single connection can queue against the admission controller.
inline constexpr std::uint32_t kMaxBatchRequests = 1024;

enum class Verb { Ping, Query, Stats, Shutdown, Metrics, Health, TraceDump, Dump };

/// Exposition format for the `metrics` verb (v1.1).
enum class MetricsFormat { Prometheus, Json };

/// Structured rejection reasons; the numeric value is wire ABI, append only.
enum class ErrorCode {
    None = 0,
    MalformedRequest = 1,
    UnknownExperiment = 2,
    UnknownPoint = 3,
    Overloaded = 4,        // admission control: bounded queue full
    DeadlineExceeded = 5,  // request deadline elapsed before completion
    ShuttingDown = 6,      // service is draining
    Internal = 7,          // job threw; message carries the what()
    Unavailable = 8,       // v1.2: router exhausted every replica of a shard
};

/// Provenance of a successful response's payload. A whole-experiment query
/// reports the *worst* source over its jobs (computed > disk > hot), so
/// "hot" means every job was served from memory.
enum class Source { HotCache, DiskCache, Computed };

[[nodiscard]] std::string_view name(Verb v);
[[nodiscard]] std::string_view name(ErrorCode c);
[[nodiscard]] std::string_view name(Source s);
[[nodiscard]] std::string_view name(MetricsFormat f);

struct Request {
    Verb verb = Verb::Ping;
    std::string experiment;     // query only
    std::string point = "*";    // "*" = all points, assembled
    std::uint64_t seed = 0xC0FFEE;
    analysis::AuditMode audit = analysis::AuditMode::Off;
    bool quick = false;         // SurveyTuning::quick() parameters
    std::uint32_t deadline_ms = 0;  // 0 = none
    MetricsFormat format = MetricsFormat::Prometheus;  // metrics verb only
    /// v1.3 pipelining correlation id; 0 = untagged (strict-order reply).
    /// Chosen by the client, echoed verbatim on the response, and excluded
    /// from route_key (it never affects payload bytes).
    std::uint64_t tag = 0;
    /// v1.4 distributed trace context (obs/ctx.hpp semantics); trace_id 0
    /// means "no context" and the header is omitted from the wire. Like
    /// tag, never part of route_key and never affects payload bytes.
    std::uint64_t trace_id = 0;
    std::uint64_t trace_parent = 0;   // caller's span_id
    std::uint32_t trace_flags = 0;    // kFlagSampled / kFlagForced

    [[nodiscard]] bool has_trace() const { return trace_id != 0; }
    /// Remove the trace header (for retrying against a pre-v1.4 peer).
    void clear_trace() { trace_id = trace_parent = 0; trace_flags = 0; }

    [[nodiscard]] std::string encode() const;
};

/// nullopt on malformed input; `error` (when non-null) gets a one-line
/// reason suitable for a MalformedRequest response.
[[nodiscard]] std::optional<Request> parse_request(std::string_view text,
                                                   std::string* error = nullptr);

/// Stable routing identity of a query: the SHA-256 hex digest of the
/// request's canonical identity fields (experiment, point, seed, audit,
/// quick). Deliberately excludes deadline-ms and format -- two queries
/// that would produce byte-identical payloads route identically, so a
/// fleet's hot caches see every repeat of a spec on the same shard. A
/// whole-experiment query ("point *") routes as one unit for the same
/// reason. Non-query verbs hash their verb name (callers normally route
/// those by policy, not by key).
[[nodiscard]] std::string route_key(const Request& req);

struct Response {
    ErrorCode code = ErrorCode::None;  // None == success
    Source source = Source::Computed;  // success only
    std::string payload;  // artifacts blob / job blob / stats text / error detail
    /// Zero-copy alternative to `payload`: when set it IS the payload
    /// (hot-cache hits hand the cached allocation straight to the encoder;
    /// no multi-MB copy per response). `payload` is ignored while this is
    /// non-null. parse_response always fills `payload`.
    std::shared_ptr<const std::string> shared_payload;
    /// v1.3: echo of the request's tag; 0 = untagged.
    std::uint64_t tag = 0;

    [[nodiscard]] bool ok() const { return code == ErrorCode::None; }
    [[nodiscard]] std::string_view payload_view() const {
        return shared_payload ? std::string_view{*shared_payload}
                              : std::string_view{payload};
    }
    [[nodiscard]] std::string encode() const;
    /// The header portion of encode() -- everything through the
    /// "payload-bytes N\n" line, without the payload bytes. The reactor
    /// writes header + payload_view() as one writev, so a cached payload
    /// is never copied into a per-response string.
    [[nodiscard]] std::string encode_header() const;
};

[[nodiscard]] std::optional<Response> parse_response(std::string_view text,
                                                     std::string* error = nullptr);

/// True when `resp` is the pre-v1.4 rejection of the `trace` request
/// header: MalformedRequest whose detail names the trace field. Clients
/// treat it as a capability probe -- strip the header, retry, and
/// remember the peer is legacy (the request is otherwise well-formed, so
/// any other MalformedRequest stays a real error).
[[nodiscard]] bool is_unknown_trace_field(const Response& resp);

// --- v1.3 batch frames (request pipelining) ---

/// Cheap structural probe: does this frame start with the v1.x magic and
/// `verb batch`? True means parse_batch() is the right parser (its failure
/// is then a malformed *batch*, answered with one MalformedRequest frame
/// for the whole batch); false means the frame is a plain single request.
[[nodiscard]] bool looks_like_batch(std::string_view text);

/// Encodes many requests into one batch frame (see the header comment for
/// the wire layout). Caller keeps sub-request tags unique if it wants to
/// correlate the out-of-order responses.
[[nodiscard]] std::string encode_batch(const std::vector<Request>& requests);

/// nullopt (with `error` set) on any structural or sub-request defect:
/// bad count, count/body mismatch, truncated length prefix, oversized
/// batch, or an unparseable sub-request. A batch is rejected whole.
[[nodiscard]] std::optional<std::vector<Request>> parse_batch(
    std::string_view text, std::string* error = nullptr);

// --- Frame I/O over file descriptors (sockets, pipes) ---

/// Writes the 4-byte length prefix plus the payload; retries short writes.
/// False on any I/O error or when `payload` exceeds kMaxFrameBytes.
bool write_frame(int fd, std::string_view payload);

/// Reads one frame. nullopt on clean EOF before the first byte, on a
/// truncated frame, on I/O error, or on an oversized length prefix.
[[nodiscard]] std::optional<std::string> read_frame(int fd);

/// Client-side pipelining over a connected fd, shared by ServiceClient
/// and the router's upstream connections: tags every sub-request, writes
/// one batch frame, then reorders the (possibly out-of-order) tagged
/// responses back into request order. `batch_supported` is the
/// capability memo for this peer: nullopt means the call doubles as a
/// probe -- a pre-v1.3 peer answers the unknown `batch` verb with one
/// MalformedRequest frame, and the helper falls back to sequential
/// call/response, recording false so later calls skip the probe. Caller-
/// assigned nonzero tags are preserved; sub-requests the caller left
/// untagged come back untagged. Throws std::runtime_error on transport
/// or framing failure (the stream is then poisoned).
///
/// `trace_supported` is the v1.4 capability memo, independent of the
/// batch one (a v1.3 peer pipelines fine but rejects the trace header):
/// false strips trace headers before sending; nullopt lets the first
/// traced request double as a probe -- on "unknown request field: trace"
/// the helper records false, strips, and retries, so a legacy peer costs
/// one extra round-trip once per connection and is transparent after.
[[nodiscard]] std::vector<Response> call_batch_over_fd(
    int fd, const std::vector<Request>& requests,
    std::optional<bool>& batch_supported, std::optional<bool>& trace_supported);

/// Overload with no trace memo: probes (and forgets) per call.
[[nodiscard]] std::vector<Response> call_batch_over_fd(
    int fd, const std::vector<Request>& requests,
    std::optional<bool>& batch_supported);

}  // namespace hsw::service::protocol
