// Generic loopback TCP front-end for hsw-survey-rpc handlers.
//
// FrameServer owns the accept loop, the thread-per-connection serving
// model, and the shutdown choreography; what it serves is a callback.
// SurveyServer (a shard) and RouterServer (the fleet front door) are both
// thin compositions over it: parse a frame, hand the Request to the
// handler, write the Response back. Connections may pipeline any number
// of requests; a handler that blocks only stalls its own connection
// thread, never accept().
//
// Shutdown paths converge on stop(): the `shutdown` verb, a signal
// handler, or the owner calling it directly. stop() closes the listening
// socket (unblocking accept), shuts down open connection sockets
// (unblocking read_frame), joins every thread, then runs the drain hook.
// The `shutdown` verb is special-cased here because the connection thread
// that received it cannot join itself: a dedicated stopper thread drives
// the teardown and the destructor reaps it.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>  // std::once_flag
#include <string>
#include <thread>
#include <vector>

#include "service/protocol.hpp"
#include "util/sync.hpp"

namespace hsw::service {

struct FrameServerConfig {
    /// Loopback only by default; this is a measurement service, not an
    /// internet-facing one.
    std::string bind_address = "127.0.0.1";
    /// 0 = kernel-assigned ephemeral port (read it back via port()).
    std::uint16_t port = 0;
    /// Concurrent connections; excess connects receive one Overloaded
    /// response and are closed.
    unsigned max_connections = 64;
    /// Prefix for the front-end's obs metrics: "<prefix>_connections",
    /// "<prefix>_connections_refused", "<prefix>_frames",
    /// "<prefix>_frames_malformed", "<prefix>_open_connections". Distinct
    /// prefixes keep a router and a shard distinguishable in one scrape.
    std::string metric_prefix = "hsw_server";
};

class FrameServer {
public:
    /// Answers one parsed request; runs on the connection thread. The
    /// handler owns admission control for its own work -- FrameServer only
    /// caps concurrent connections.
    using Handler = std::function<protocol::Response(const protocol::Request&)>;

    /// Binds and listens; throws std::runtime_error on socket failure.
    /// `on_drain` (may be null) runs inside stop() after every connection
    /// thread has been joined -- e.g. SurveyService::drain().
    FrameServer(FrameServerConfig cfg, Handler handler,
                std::function<void()> on_drain = {});
    ~FrameServer();

    FrameServer(const FrameServer&) = delete;
    FrameServer& operator=(const FrameServer&) = delete;

    /// The bound port (useful with cfg.port == 0).
    [[nodiscard]] std::uint16_t port() const { return port_; }

    /// Runs the accept loop on a background thread and returns.
    void start();

    /// Blocks until the server has stopped (shutdown verb or stop()).
    void wait() EXCLUDES(stopped_lock_);

    /// Idempotent: stop accepting, finish in-flight connections, run the
    /// drain hook, join all threads.
    void stop();

    [[nodiscard]] bool stopped() const;

private:
    void accept_loop();
    void serve_connection(int fd);

    FrameServerConfig cfg_;
    Handler handler_;
    std::function<void()> on_drain_;
    std::atomic<int> listen_fd_{-1};
    std::uint16_t port_ = 0;

    // Front-end metrics, resolved once from cfg_.metric_prefix.
    struct Metrics;
    std::unique_ptr<Metrics> metrics_;

    std::thread acceptor_;
    // Spawned by the `shutdown` verb so the connection thread itself is
    // never asked to join itself; reaped by the destructor.
    util::Mutex stopper_lock_;
    std::thread stopper_ GUARDED_BY(stopper_lock_);
    util::Mutex connections_lock_;
    std::vector<std::thread> connections_ GUARDED_BY(connections_lock_);
    // Sockets currently served; stop() shuts them down to unblock reads.
    // Entries are removed (under the lock) before close(), so a shutdown
    // can never hit a recycled descriptor.
    std::vector<int> open_fds_ GUARDED_BY(connections_lock_);
    std::atomic<unsigned> open_connections_{0};
    std::atomic<bool> stopping_{false};
    std::atomic<bool> stopped_{false};
    std::once_flag stop_once_;
    util::Mutex stopped_lock_;
    util::CondVar stopped_cv_;
};

}  // namespace hsw::service
